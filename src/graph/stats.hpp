#pragma once
/// \file stats.hpp
/// Communication-graph statistics, including the hop-bytes metric that
/// routing-unaware mappers optimize (§III-A discusses why hop-bytes is the
/// wrong objective under adaptive routing — we implement it both as a
/// baseline objective and for reporting).

#include <vector>

#include "graph/comm_graph.hpp"
#include "topology/torus.hpp"

namespace rahtm {

/// Summary statistics of a communication graph.
struct GraphStats {
  RankId ranks = 0;
  std::size_t flows = 0;
  Volume totalVolume = 0;
  int maxDegree = 0;
  double avgVolumePerFlow = 0;
};

GraphStats computeStats(const CommGraph& g);

/// Hop-bytes of \p g under a placement: Σ_flows bytes * minimal-hop-distance.
/// \p nodeOfRank maps each graph vertex to a node of \p t.
double hopBytes(const CommGraph& g, const Torus& t,
                const std::vector<NodeId>& nodeOfRank);

/// Average hops weighted by bytes (hop-bytes / total bytes); 0 for an
/// empty graph.
double avgWeightedHops(const CommGraph& g, const Torus& t,
                       const std::vector<NodeId>& nodeOfRank);

}  // namespace rahtm
