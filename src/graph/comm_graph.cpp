#include "graph/comm_graph.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <set>
#include <string>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace rahtm {

CommGraph::CommGraph(RankId numRanks) : numRanks_(numRanks) {
  RAHTM_REQUIRE(numRanks >= 0, "CommGraph: negative rank count");
}

void CommGraph::ensureRanks(RankId numRanks) {
  numRanks_ = std::max(numRanks_, numRanks);
}

void CommGraph::addFlow(RankId src, RankId dst, Volume bytes) {
  RAHTM_REQUIRE(src >= 0 && dst >= 0, "addFlow: negative rank id");
  RAHTM_REQUIRE(bytes >= 0, "addFlow: negative volume");
  ensureRanks(std::max(src, dst) + 1);
  if (src == dst || bytes == 0) return;
  const std::uint64_t k = key(src, dst);
  const auto it = index_.find(k);
  if (it != index_.end()) {
    flows_[it->second].bytes += bytes;
  } else {
    index_.emplace(k, flows_.size());
    flows_.push_back(Flow{src, dst, bytes});
  }
}

void CommGraph::addExchange(RankId a, RankId b, Volume bytes) {
  addFlow(a, b, bytes);
  addFlow(b, a, bytes);
}

Volume CommGraph::volume(RankId src, RankId dst) const {
  const auto it = index_.find(key(src, dst));
  return it == index_.end() ? 0 : flows_[it->second].bytes;
}

Volume CommGraph::totalVolume() const {
  Volume v = 0;
  for (const Flow& f : flows_) v += f.bytes;
  return v;
}

int CommGraph::maxDegree() const {
  std::vector<std::set<RankId>> peers(static_cast<std::size_t>(numRanks_));
  for (const Flow& f : flows_) {
    peers[static_cast<std::size_t>(f.src)].insert(f.dst);
    peers[static_cast<std::size_t>(f.dst)].insert(f.src);
  }
  std::size_t best = 0;
  for (const auto& p : peers) best = std::max(best, p.size());
  return static_cast<int>(best);
}

std::vector<Flow> CommGraph::undirectedFlows() const {
  std::map<std::pair<RankId, RankId>, Volume> acc;
  for (const Flow& f : flows_) {
    const auto k = std::minmax(f.src, f.dst);
    acc[{k.first, k.second}] += f.bytes;
  }
  std::vector<Flow> out;
  out.reserve(acc.size());
  for (const auto& [pair, vol] : acc) {
    out.push_back(Flow{pair.first, pair.second, vol});
  }
  return out;
}

CommGraph CommGraph::relabeled(const std::vector<RankId>& perm) const {
  RAHTM_REQUIRE(perm.size() == static_cast<std::size_t>(numRanks_),
                "relabeled: permutation size mismatch");
  std::vector<bool> seen(perm.size(), false);
  for (const RankId p : perm) {
    RAHTM_REQUIRE(p >= 0 && p < numRanks_ && !seen[static_cast<std::size_t>(p)],
                  "relabeled: not a bijection");
    seen[static_cast<std::size_t>(p)] = true;
  }
  CommGraph out(numRanks_);
  for (const Flow& f : flows_) {
    out.addFlow(perm[static_cast<std::size_t>(f.src)],
                perm[static_cast<std::size_t>(f.dst)], f.bytes);
  }
  return out;
}

bool operator==(const CommGraph& a, const CommGraph& b) {
  if (a.numRanks_ != b.numRanks_ || a.flows_.size() != b.flows_.size())
    return false;
  for (const Flow& f : a.flows_) {
    if (b.volume(f.src, f.dst) != f.bytes) return false;
  }
  return true;
}

FlowIncidence buildFlowIncidence(const CommGraph& g) {
  const auto& flows = g.flows();
  return FlowIncidence::build(
      flows.size(), static_cast<std::size_t>(g.numRanks()),
      [&flows](std::size_t i) {
        return std::pair<std::size_t, std::size_t>{
            static_cast<std::size_t>(flows[i].src),
            static_cast<std::size_t>(flows[i].dst)};
      });
}

ContractionResult contract(const CommGraph& g,
                           const std::vector<ClusterId>& clusterOf,
                           ClusterId numClusters) {
  RAHTM_REQUIRE(clusterOf.size() == static_cast<std::size_t>(g.numRanks()),
                "contract: assignment size mismatch");
  for (const ClusterId c : clusterOf) {
    RAHTM_REQUIRE(c >= 0 && c < numClusters, "contract: cluster id out of range");
  }
  ContractionResult r;
  r.clusterGraph = CommGraph(numClusters);
  r.intraClusterVolume = 0;
  r.interClusterVolume = 0;
  for (const Flow& f : g.flows()) {
    const ClusterId cs = clusterOf[static_cast<std::size_t>(f.src)];
    const ClusterId cd = clusterOf[static_cast<std::size_t>(f.dst)];
    if (cs == cd) {
      r.intraClusterVolume += f.bytes;
    } else {
      r.interClusterVolume += f.bytes;
      r.clusterGraph.addFlow(cs, cd, f.bytes);
    }
  }
  return r;
}

void writeCommGraph(std::ostream& os, const CommGraph& g) {
  os << "ranks " << g.numRanks() << "\n";
  for (const Flow& f : g.flows()) {
    os << f.src << ' ' << f.dst << ' ' << f.bytes << "\n";
  }
}

CommGraph readCommGraph(std::istream& is) {
  std::string line;
  CommGraph g;
  bool sawHeader = false;
  int lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    const auto t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    const auto fields = splitWhitespace(t);
    if (!sawHeader) {
      if (fields.size() != 2 || fields[0] != "ranks") {
        throw ParseError("comm graph line " + std::to_string(lineNo) +
                         ": expected 'ranks <N>'");
      }
      g = CommGraph(static_cast<RankId>(parseInt(fields[1])));
      sawHeader = true;
      continue;
    }
    if (fields.size() != 3) {
      throw ParseError("comm graph line " + std::to_string(lineNo) +
                       ": expected '<src> <dst> <bytes>'");
    }
    g.addFlow(static_cast<RankId>(parseInt(fields[0])),
              static_cast<RankId>(parseInt(fields[1])), parseDouble(fields[2]));
  }
  if (!sawHeader) throw ParseError("comm graph: missing 'ranks' header");
  return g;
}

}  // namespace rahtm
