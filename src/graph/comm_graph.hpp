#pragma once
/// \file comm_graph.hpp
/// The application communication graph: vertices are MPI ranks (or clusters
/// of ranks after contraction) and directed weighted edges are point-to-point
/// communication flows. This is the sole application-side input RAHTM needs
/// (§III-A): who talks to whom, and how much.

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "obs/mem.hpp"

namespace rahtm {

/// One directed point-to-point flow.
struct Flow {
  RankId src = kInvalidRank;
  RankId dst = kInvalidRank;
  Volume bytes = 0;

  friend bool operator==(const Flow& a, const Flow& b) {
    return a.src == b.src && a.dst == b.dst && a.bytes == b.bytes;
  }
};

/// A directed, weighted communication graph over dense rank ids.
/// Parallel edges are coalesced; self-flows are dropped (a rank talking to
/// itself never touches the network).
class CommGraph {
 public:
  CommGraph() = default;
  explicit CommGraph(RankId numRanks);

  RankId numRanks() const { return numRanks_; }
  /// Grow the vertex set (never shrinks).
  void ensureRanks(RankId numRanks);

  /// Accumulate \p bytes onto the (src,dst) flow. Self-flows are ignored.
  void addFlow(RankId src, RankId dst, Volume bytes);

  /// Add \p bytes in both directions (convenience for symmetric exchanges).
  void addExchange(RankId a, RankId b, Volume bytes);

  const std::vector<Flow>& flows() const { return flows_; }
  std::size_t numFlows() const { return flows_.size(); }

  /// Volume currently recorded from \p src to \p dst (0 if absent).
  Volume volume(RankId src, RankId dst) const;

  /// Sum of all flow volumes.
  Volume totalVolume() const;

  /// Max over ranks of (number of distinct peers, in + out).
  int maxDegree() const;

  /// Undirected view: sum of both directions per unordered pair, each pair
  /// reported once with src < dst.
  std::vector<Flow> undirectedFlows() const;

  /// Returns a graph with vertex ids renumbered by \p perm
  /// (new id = perm[old id]); perm must be a bijection.
  CommGraph relabeled(const std::vector<RankId>& perm) const;

  friend bool operator==(const CommGraph& a, const CommGraph& b);

 private:
  RankId numRanks_ = 0;
  std::vector<Flow> flows_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // (src,dst) -> flows_ idx

  static std::uint64_t key(RankId src, RankId dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
           static_cast<std::uint32_t>(dst);
  }
};

/// CSR incidence lists over a flow array: for each bucket (vertex, child
/// block, ...), the indices of the flows with at least one endpoint in the
/// bucket, in ascending flow order. A flow whose endpoints map to the same
/// bucket is listed once. This is the shared building block of every
/// incremental evaluator (delta_eval, the merge beam): "which flows must be
/// re-routed when this bucket moves?" answered in O(degree).
class FlowIncidence {
 public:
  FlowIncidence() = default;

  std::size_t numBuckets() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Flow indices touching \p bucket (ascending).
  struct Span {
    const std::uint32_t* data = nullptr;
    std::size_t size = 0;
    const std::uint32_t* begin() const { return data; }
    const std::uint32_t* end() const { return data + size; }
  };
  Span of(std::size_t bucket) const {
    const std::size_t lo = offsets_[bucket];
    return {flowIds_.data() + lo, offsets_[bucket + 1] - lo};
  }

  /// Build incidence of \p numFlows flows over \p buckets buckets.
  /// \p endpoints(i) returns the (bucketA, bucketB) pair of flow i.
  template <typename EndpointsFn>
  static FlowIncidence build(std::size_t numFlows, std::size_t buckets,
                             EndpointsFn&& endpoints) {
    FlowIncidence inc;
    inc.offsets_.assign(buckets + 1, 0);
    for (std::size_t i = 0; i < numFlows; ++i) {
      const auto [a, b] = endpoints(i);
      ++inc.offsets_[a + 1];
      if (b != a) ++inc.offsets_[b + 1];
    }
    for (std::size_t k = 1; k <= buckets; ++k) {
      inc.offsets_[k] += inc.offsets_[k - 1];
    }
    inc.flowIds_.resize(inc.offsets_[buckets]);
    std::vector<std::size_t> cursor(inc.offsets_.begin(),
                                    inc.offsets_.end() - 1);
    for (std::size_t i = 0; i < numFlows; ++i) {
      const auto [a, b] = endpoints(i);
      inc.flowIds_[cursor[a]++] = static_cast<std::uint32_t>(i);
      if (b != a) inc.flowIds_[cursor[b]++] = static_cast<std::uint32_t>(i);
    }
    inc.mem_.set(static_cast<std::int64_t>(
        inc.offsets_.capacity() * sizeof(std::size_t) +
        inc.flowIds_.capacity() * sizeof(std::uint32_t)));
    return inc;
  }

  /// Bytes currently charged to the flow_incidence account for this CSR.
  std::int64_t footprintBytes() const { return mem_.bytes(); }

 private:
  std::vector<std::size_t> offsets_;     ///< size numBuckets + 1
  std::vector<std::uint32_t> flowIds_;
  /// CSR footprint, charged to the flow_incidence account; copies of the
  /// incidence (delta_eval holds one by value) each carry their own tally.
  obs::MemAccount mem_{obs::MemAccountId::FlowIncidence};
};

/// Incidence of \p g's flows over its vertices: of(v) = indices into
/// g.flows() of the flows with src == v or dst == v.
FlowIncidence buildFlowIncidence(const CommGraph& g);

/// Result of contracting a graph by a cluster assignment.
struct ContractionResult {
  CommGraph clusterGraph;     ///< flows between distinct clusters
  Volume intraClusterVolume;  ///< volume absorbed inside clusters
  Volume interClusterVolume;  ///< volume remaining between clusters
};

/// Contract \p g by \p clusterOf (size = numRanks, values in
/// [0, numClusters)). Intra-cluster flows are absorbed (they become
/// intra-node traffic after mapping); inter-cluster flows are accumulated.
ContractionResult contract(const CommGraph& g,
                           const std::vector<ClusterId>& clusterOf,
                           ClusterId numClusters);

/// Serialize / parse a simple line-oriented text format:
///   ranks <N>
///   <src> <dst> <bytes>   (one line per flow)
void writeCommGraph(std::ostream& os, const CommGraph& g);
CommGraph readCommGraph(std::istream& is);

}  // namespace rahtm
