#include "graph/stats.hpp"

#include "common/error.hpp"

namespace rahtm {

GraphStats computeStats(const CommGraph& g) {
  GraphStats s;
  s.ranks = g.numRanks();
  s.flows = g.numFlows();
  s.totalVolume = g.totalVolume();
  s.maxDegree = g.maxDegree();
  s.avgVolumePerFlow = s.flows == 0 ? 0 : s.totalVolume / static_cast<double>(s.flows);
  return s;
}

double hopBytes(const CommGraph& g, const Torus& t,
                const std::vector<NodeId>& nodeOfRank) {
  RAHTM_REQUIRE(nodeOfRank.size() >= static_cast<std::size_t>(g.numRanks()),
                "hopBytes: placement too small");
  double hb = 0;
  for (const Flow& f : g.flows()) {
    const NodeId u = nodeOfRank[static_cast<std::size_t>(f.src)];
    const NodeId v = nodeOfRank[static_cast<std::size_t>(f.dst)];
    RAHTM_REQUIRE(u >= 0 && v >= 0, "hopBytes: unmapped rank");
    hb += f.bytes * static_cast<double>(t.distance(u, v));
  }
  return hb;
}

double avgWeightedHops(const CommGraph& g, const Torus& t,
                       const std::vector<NodeId>& nodeOfRank) {
  const Volume total = g.totalVolume();
  if (total == 0) return 0;
  return hopBytes(g, t, nodeOfRank) / total;
}

}  // namespace rahtm
