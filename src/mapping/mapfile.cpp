#include "mapping/mapfile.hpp"

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace rahtm {

void writeMapfile(std::ostream& os, const Mapping& m, const Torus& topo) {
  os << "# rahtm mapfile: " << topo.describe() << ", " << m.numRanks()
     << " ranks\n";
  for (RankId r = 0; r < m.numRanks(); ++r) {
    const NodeId n = m.nodeOf(r);
    RAHTM_REQUIRE(n != kInvalidNode, "writeMapfile: incomplete mapping");
    const Coord c = topo.coordOf(n);
    for (std::size_t d = 0; d < c.size(); ++d) os << c[d] << ' ';
    os << m.slotOf(r) << "\n";
  }
}

Mapping readMapfile(std::istream& is, const Torus& topo) {
  std::vector<std::pair<NodeId, int>> entries;
  std::string line;
  int lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    const auto t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    const auto fields = splitWhitespace(t);
    if (fields.size() != topo.ndims() + 1) {
      throw ParseError("mapfile line " + std::to_string(lineNo) + ": expected " +
                       std::to_string(topo.ndims() + 1) + " fields, got " +
                       std::to_string(fields.size()));
    }
    Coord c(topo.ndims(), 0);
    for (std::size_t d = 0; d < topo.ndims(); ++d) {
      const auto v = parseInt(fields[d]);
      if (v < 0 || v >= topo.extent(d)) {
        throw ParseError("mapfile line " + std::to_string(lineNo) +
                         ": coordinate " + std::to_string(v) +
                         " out of range for dimension " + std::to_string(d));
      }
      c[d] = static_cast<std::int32_t>(v);
    }
    const auto slot = parseInt(fields[topo.ndims()]);
    if (slot < 0) {
      throw ParseError("mapfile line " + std::to_string(lineNo) +
                       ": negative slot");
    }
    entries.push_back({topo.nodeId(c), static_cast<int>(slot)});
  }
  Mapping m(static_cast<RankId>(entries.size()));
  for (std::size_t r = 0; r < entries.size(); ++r) {
    m.assign(static_cast<RankId>(r), entries[r].first, entries[r].second);
  }
  return m;
}

}  // namespace rahtm
