#pragma once
/// \file hilbert.hpp
/// Hilbert space-filling-curve mapping (§IV "Other mappings").
///
/// The paper applies a Hilbert curve to the four equal power-of-two
/// dimensions of the BG/Q partition (A,B,C,D, all of extent 4) and traverses
/// the remaining dimensions (E and T) in dimension order. This module
/// implements the d-dimensional Hilbert curve via Skilling's transpose
/// algorithm and the corresponding mapper.

#include <cstdint>
#include <vector>

#include "mapping/mapping.hpp"

namespace rahtm {

/// Coordinates of position \p index on the \p ndims-dimensional Hilbert
/// curve through a 2^bits-per-side grid. index ∈ [0, 2^(ndims*bits)).
/// Consecutive indices are grid neighbours (unit step in one dimension).
std::vector<std::uint32_t> hilbertIndexToCoords(std::uint64_t index, int bits,
                                                int ndims);

/// Inverse of hilbertIndexToCoords.
std::uint64_t hilbertCoordsToIndex(const std::vector<std::uint32_t>& coords,
                                   int bits);

/// Hilbert-curve mapper: the largest group of dimensions sharing an equal
/// power-of-two extent (>= 2) is traversed along a Hilbert curve; all other
/// dimensions plus T are traversed in dimension order (T fastest), exactly
/// mirroring the paper's "Hilbert over ABCD, then ET" construction.
class HilbertMapper final : public TaskMapper {
 public:
  Mapping map(const CommGraph& graph, const Torus& topo,
              int concentration) override;
  std::string name() const override { return "Hilbert"; }
};

}  // namespace rahtm
