#include "mapping/mapping.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"

namespace rahtm {

Mapping::Mapping(RankId numRanks)
    : nodes_(static_cast<std::size_t>(numRanks), kInvalidNode),
      slots_(static_cast<std::size_t>(numRanks), -1) {
  RAHTM_REQUIRE(numRanks >= 0, "Mapping: negative rank count");
}

void Mapping::assign(RankId rank, NodeId node, int slot) {
  RAHTM_REQUIRE(rank >= 0 && rank < numRanks(), "Mapping::assign: bad rank");
  RAHTM_REQUIRE(node >= 0, "Mapping::assign: bad node");
  RAHTM_REQUIRE(slot >= 0, "Mapping::assign: bad slot");
  nodes_[static_cast<std::size_t>(rank)] = node;
  slots_[static_cast<std::size_t>(rank)] = slot;
}

NodeId Mapping::nodeOf(RankId rank) const {
  RAHTM_REQUIRE(rank >= 0 && rank < numRanks(), "Mapping::nodeOf: bad rank");
  return nodes_[static_cast<std::size_t>(rank)];
}

int Mapping::slotOf(RankId rank) const {
  RAHTM_REQUIRE(rank >= 0 && rank < numRanks(), "Mapping::slotOf: bad rank");
  return slots_[static_cast<std::size_t>(rank)];
}

bool Mapping::complete() const {
  return std::all_of(nodes_.begin(), nodes_.end(),
                     [](NodeId n) { return n != kInvalidNode; });
}

std::string Mapping::validate(const Torus& topo, int concentration) const {
  std::vector<std::set<int>> slotsUsed(
      static_cast<std::size_t>(topo.numNodes()));
  for (RankId r = 0; r < numRanks(); ++r) {
    const NodeId n = nodes_[static_cast<std::size_t>(r)];
    const int s = slots_[static_cast<std::size_t>(r)];
    if (n == kInvalidNode) {
      return "rank " + std::to_string(r) + " is unmapped";
    }
    if (n < 0 || n >= topo.numNodes()) {
      return "rank " + std::to_string(r) + " mapped to invalid node " +
             std::to_string(n);
    }
    if (s < 0 || s >= concentration) {
      return "rank " + std::to_string(r) + " has invalid slot " +
             std::to_string(s);
    }
    auto& used = slotsUsed[static_cast<std::size_t>(n)];
    if (!used.insert(s).second) {
      return "node " + std::to_string(n) + " slot " + std::to_string(s) +
             " assigned twice";
    }
  }
  return {};
}

std::vector<RankId> Mapping::ranksOnNode(NodeId node) const {
  std::vector<std::pair<int, RankId>> found;
  for (RankId r = 0; r < numRanks(); ++r) {
    if (nodes_[static_cast<std::size_t>(r)] == node) {
      found.push_back({slots_[static_cast<std::size_t>(r)], r});
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<RankId> out;
  out.reserve(found.size());
  for (const auto& [slot, r] : found) out.push_back(r);
  return out;
}

}  // namespace rahtm
