#include "mapping/rubik.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "topology/subcube.hpp"

namespace rahtm {

RubikMapper::RubikMapper(RubikConfig config) : config_(std::move(config)) {
  RAHTM_REQUIRE(config_.appShape.size() == config_.appTile.size(),
                "RubikMapper: appShape/appTile rank mismatch");
  for (std::size_t d = 0; d < config_.appShape.size(); ++d) {
    RAHTM_REQUIRE(config_.appTile[d] >= 1 &&
                      config_.appShape[d] % config_.appTile[d] == 0,
                  "RubikMapper: tile must divide the app grid");
  }
}

RubikMapper RubikMapper::autoFor(RankId ranks, const Torus& topo,
                                 int concentration) {
  RAHTM_REQUIRE(ranks == topo.numNodes() * concentration,
                "RubikMapper::autoFor: ranks != nodes * concentration");
  RubikConfig cfg;

  // Squarest 2D factorization of the rank count.
  std::int32_t bestA = 1;
  for (std::int32_t a = 1;
       static_cast<std::int64_t>(a) * a <= static_cast<std::int64_t>(ranks); ++a) {
    if (ranks % a == 0) bestA = a;
  }
  cfg.appShape = Shape{bestA, static_cast<std::int32_t>(ranks / bestA)};

  // Machine block: halve the largest extent repeatedly until the block holds
  // a reasonable sub-torus (16 nodes, or the whole machine if smaller).
  Shape block = topo.shape();
  auto blockVolume = [&block]() {
    std::int64_t v = 1;
    for (std::size_t d = 0; d < block.size(); ++d) v *= block[d];
    return v;
  };
  const std::int64_t targetNodes = std::min<std::int64_t>(16, topo.numNodes());
  while (blockVolume() > targetNodes) {
    std::size_t largest = 0;
    for (std::size_t d = 1; d < block.size(); ++d) {
      if (block[d] > block[largest]) largest = d;
    }
    RAHTM_REQUIRE(block[largest] % 2 == 0,
                  "RubikMapper::autoFor: cannot halve odd extent");
    block[largest] /= 2;
  }
  cfg.machineBlock = block;

  // Tile volume = block nodes * concentration; squarest tile that divides
  // the app grid.
  const std::int64_t tileVolume = blockVolume() * concentration;
  Shape bestTile;
  double bestScore = -1;
  const Shape maxPerDim = cfg.appShape;
  for (const Shape& t : orderedFactorizations(tileVolume, maxPerDim)) {
    bool divides = true;
    for (std::size_t d = 0; d < t.size(); ++d) {
      divides &= (cfg.appShape[d] % t[d] == 0);
    }
    if (!divides) continue;
    // Prefer square-ish tiles (maximize min/max ratio).
    std::int32_t lo = t[0], hi = t[0];
    for (std::size_t d = 1; d < t.size(); ++d) {
      lo = std::min(lo, t[d]);
      hi = std::max(hi, t[d]);
    }
    const double score = static_cast<double>(lo) / static_cast<double>(hi);
    if (score > bestScore) {
      bestScore = score;
      bestTile = t;
    }
  }
  RAHTM_REQUIRE(!bestTile.empty(),
                "RubikMapper::autoFor: no tile shape divides the app grid");
  cfg.appTile = bestTile;
  return RubikMapper(cfg);
}

Mapping RubikMapper::map(const CommGraph& graph, const Torus& topo,
                         int concentration) {
  const RankId ranks = graph.numRanks();
  RAHTM_REQUIRE(ranks == topo.numNodes() * concentration,
                "RubikMapper: ranks != nodes * concentration");

  std::int64_t appVolume = 1;
  for (std::size_t d = 0; d < config_.appShape.size(); ++d) {
    appVolume *= config_.appShape[d];
  }
  RAHTM_REQUIRE(appVolume == ranks,
                "RubikMapper: app grid volume != rank count");

  // Application side: tiles in row-major order of the tile grid; within a
  // tile, ranks in row-major order of their local position.
  const Torus appGrid = Torus::mesh(config_.appShape);
  Shape tileGridShape(config_.appShape.size(), 0);
  for (std::size_t d = 0; d < config_.appShape.size(); ++d) {
    tileGridShape[d] = config_.appShape[d] / config_.appTile[d];
  }
  const Torus tileGrid = Torus::mesh(tileGridShape);
  const Torus tileLocal = Torus::mesh(config_.appTile);

  // Machine side: blocks of the torus in row-major order.
  const auto blocks = partitionIntoBlocks(topo, config_.machineBlock);
  RAHTM_REQUIRE(static_cast<std::int64_t>(blocks.size()) == tileGrid.numNodes(),
                "RubikMapper: tile count != block count");
  const std::int64_t ranksPerTile = tileLocal.numNodes();
  RAHTM_REQUIRE(
      ranksPerTile == blocks[0].numNodes() * concentration,
      "RubikMapper: tile volume != block nodes * concentration");

  Mapping m(ranks);
  for (RankId r = 0; r < ranks; ++r) {
    const Coord appPos = appGrid.coordOf(r);
    Coord tilePos(appPos.size(), 0);
    Coord local(appPos.size(), 0);
    for (std::size_t d = 0; d < appPos.size(); ++d) {
      tilePos[d] = appPos[d] / config_.appTile[d];
      local[d] = appPos[d] % config_.appTile[d];
    }
    const std::int64_t tileIdx = tileGrid.nodeId(tilePos);
    const std::int64_t localIdx = tileLocal.nodeId(local);
    const SubcubeView& block = blocks[static_cast<std::size_t>(tileIdx)];
    const auto nodeLocal = static_cast<NodeId>(localIdx / concentration);
    const int slot = static_cast<int>(localIdx % concentration);
    m.assign(r, block.parentNodeOf(nodeLocal), slot);
  }
  return m;
}

}  // namespace rahtm
