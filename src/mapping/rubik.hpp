#pragma once
/// \file rubik.hpp
/// Rubik-style Hierarchical Tiling (RHT) — the paper's strongest baseline.
///
/// Rubik [18] lets an expert tile the application's logical process grid and
/// map each tile onto a sub-torus of the machine. The paper's configuration
/// tiles the application space with 4x4 tiles mapped to 4x2x2 sub-tori. This
/// mapper reproduces that family: partition the application grid into equal
/// tiles, partition the machine into equal blocks, pair tile i with block i
/// (row-major order on both grids), and fill each block in dimension order
/// with T fastest.

#include "mapping/mapping.hpp"

namespace rahtm {

struct RubikConfig {
  /// Logical shape of the application's rank grid; product must equal the
  /// number of ranks. Rank r sits at the row-major position r in this grid.
  Shape appShape;
  /// Tile shape in the application grid (must divide appShape element-wise).
  Shape appTile;
  /// Machine block shape (must divide the torus extents element-wise).
  /// The tile volume must equal block volume * concentration, and the
  /// number of tiles must equal the number of blocks.
  Shape machineBlock;
};

class RubikMapper final : public TaskMapper {
 public:
  explicit RubikMapper(RubikConfig config);

  /// Derive a reasonable configuration automatically: the app grid is the
  /// squarest 2D factorization of the rank count, tiles hold exactly one
  /// machine block's worth of ranks, and the machine block is the torus'
  /// densest corner block of matching volume.
  static RubikMapper autoFor(RankId ranks, const Torus& topo,
                             int concentration);

  Mapping map(const CommGraph& graph, const Torus& topo,
              int concentration) override;
  std::string name() const override { return "RHT"; }

  const RubikConfig& config() const { return config_; }

 private:
  RubikConfig config_;
};

}  // namespace rahtm
