#pragma once
/// \file permutation.hpp
/// Dimension-permutation mappers — the "ABCDET-style" mappings of §II-B.
///
/// On BG/Q the runtime can assign ranks by traversing the 5 torus dimensions
/// (A..E) plus the intra-node dimension T in any permutation order, with the
/// rightmost letter of the spec varying fastest. The default ABCDET mapping
/// fills each node's T slots first, then walks E, then D, and so on. The
/// paper compares against ABCDET (baseline), TABCDE and ACEBDT.

#include <string>
#include <vector>

#include "mapping/mapping.hpp"

namespace rahtm {

/// Maps ranks by a dimension-order traversal spec such as "ABCDET".
/// Letters A.. name torus dimensions 0.. in order; 'T' names the intra-node
/// slot dimension. Every topology dimension and 'T' must appear exactly once.
class PermutationMapper final : public TaskMapper {
 public:
  explicit PermutationMapper(std::string spec);

  Mapping map(const CommGraph& graph, const Torus& topo,
              int concentration) override;
  std::string name() const override { return spec_; }

  /// Parse a spec against a concrete dimensionality; returns the traversal
  /// order as dimension indices (topology dims 0..n-1; T encoded as n).
  /// Throws ParseError if letters are missing/duplicated/out of range.
  static std::vector<int> parseSpec(const std::string& spec,
                                    std::size_t ndims);

 private:
  std::string spec_;
};

/// The BG/Q default mapping (== PermutationMapper("ABCDET") for any
/// dimensionality): rank r goes to node r / c, slot r % c.
class DefaultMapper final : public TaskMapper {
 public:
  Mapping map(const CommGraph& graph, const Torus& topo,
              int concentration) override;
  std::string name() const override { return "ABCDET"; }
};

/// Uniformly random placement (seeded), as a sanity baseline.
class RandomMapper final : public TaskMapper {
 public:
  explicit RandomMapper(std::uint64_t seed = 42) : seed_(seed) {}
  Mapping map(const CommGraph& graph, const Torus& topo,
              int concentration) override;
  std::string name() const override { return "Random"; }

 private:
  std::uint64_t seed_;
};

}  // namespace rahtm
