#include "mapping/hilbert.hpp"

#include <map>

#include "common/error.hpp"
#include "common/math.hpp"

namespace rahtm {

// Skilling's transpose algorithm ("Programming the Hilbert curve", J.
// Skilling, AIP Conf. Proc. 707, 2004). The Hilbert index is held in
// "transposed" form: bit k of X[i] holds index bit (k*ndims + i) counted
// from the most significant end.

namespace {

void transposeToAxes(std::vector<std::uint32_t>& x, int bits, int ndims) {
  const std::uint32_t top = std::uint32_t{2} << (bits - 1);
  // Gray decode by H ^ (H/2).
  std::uint32_t t = x[static_cast<std::size_t>(ndims) - 1] >> 1;
  for (int i = ndims - 1; i > 0; --i) {
    x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i) - 1];
  }
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != top; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = ndims - 1; i >= 0; --i) {
      if (x[static_cast<std::size_t>(i)] & q) {
        x[0] ^= p;  // invert low bits of x[0]
      } else {
        t = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<std::size_t>(i)] ^= t;
      }
    }
  }
}

void axesToTranspose(std::vector<std::uint32_t>& x, int bits, int ndims) {
  const std::uint32_t top = std::uint32_t{1} << (bits - 1);
  // Inverse undo.
  for (std::uint32_t q = top; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < ndims; ++i) {
      if (x[static_cast<std::size_t>(i)] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t t = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<std::size_t>(i)] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < ndims; ++i) {
    x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i) - 1];
  }
  std::uint32_t t = 0;
  for (std::uint32_t q = top; q > 1; q >>= 1) {
    if (x[static_cast<std::size_t>(ndims) - 1] & q) t ^= q - 1;
  }
  for (int i = 0; i < ndims; ++i) x[static_cast<std::size_t>(i)] ^= t;
}

}  // namespace

std::vector<std::uint32_t> hilbertIndexToCoords(std::uint64_t index, int bits,
                                                int ndims) {
  RAHTM_REQUIRE(bits >= 1 && bits <= 20, "hilbert: bits out of range");
  RAHTM_REQUIRE(ndims >= 1 && ndims <= 10, "hilbert: ndims out of range");
  std::vector<std::uint32_t> x(static_cast<std::size_t>(ndims), 0);
  if (ndims == 1) {
    x[0] = static_cast<std::uint32_t>(index);
    return x;
  }
  // Distribute the index bits round-robin (MSB first) into transposed form.
  const int totalBits = bits * ndims;
  for (int bit = 0; bit < totalBits; ++bit) {
    const int fromTop = totalBits - 1 - bit;  // 0 == most significant
    const int k = fromTop / ndims;            // round (0 == top bit layer)
    const int i = fromTop % ndims;            // axis
    if (index & (std::uint64_t{1} << bit)) {
      x[static_cast<std::size_t>(i)] |= std::uint32_t{1} << (bits - 1 - k);
    }
  }
  transposeToAxes(x, bits, ndims);
  return x;
}

std::uint64_t hilbertCoordsToIndex(const std::vector<std::uint32_t>& coords,
                                   int bits) {
  const int ndims = static_cast<int>(coords.size());
  RAHTM_REQUIRE(bits >= 1 && bits <= 20, "hilbert: bits out of range");
  RAHTM_REQUIRE(ndims >= 1 && ndims <= 10, "hilbert: ndims out of range");
  if (ndims == 1) return coords[0];
  std::vector<std::uint32_t> x = coords;
  axesToTranspose(x, bits, ndims);
  std::uint64_t index = 0;
  const int totalBits = bits * ndims;
  for (int bit = 0; bit < totalBits; ++bit) {
    const int fromTop = totalBits - 1 - bit;
    const int k = fromTop / ndims;
    const int i = fromTop % ndims;
    if (x[static_cast<std::size_t>(i)] & (std::uint32_t{1} << (bits - 1 - k))) {
      index |= std::uint64_t{1} << bit;
    }
  }
  return index;
}

Mapping HilbertMapper::map(const CommGraph& graph, const Torus& topo,
                           int concentration) {
  const RankId ranks = graph.numRanks();
  RAHTM_REQUIRE(ranks == topo.numNodes() * concentration,
                "HilbertMapper: ranks != nodes * concentration");

  // Pick the largest group of dimensions sharing an equal power-of-two
  // extent >= 2 (ties broken toward the larger extent).
  std::map<std::int32_t, std::vector<std::size_t>> byExtent;
  for (std::size_t d = 0; d < topo.ndims(); ++d) {
    if (topo.extent(d) >= 2 && isPowerOfTwo(topo.extent(d))) {
      byExtent[topo.extent(d)].push_back(d);
    }
  }
  std::vector<std::size_t> hilbertDims;
  for (const auto& [extent, dims] : byExtent) {
    if (dims.size() >= hilbertDims.size()) hilbertDims = dims;
  }
  RAHTM_REQUIRE(!hilbertDims.empty(),
                "HilbertMapper: no power-of-two dimensions to curve over");
  const int hBits = ilog2(topo.extent(hilbertDims[0]));
  const int hDims = static_cast<int>(hilbertDims.size());

  // Remaining dimensions, traversed dimension-order (T fastest).
  std::vector<std::size_t> restDims;
  for (std::size_t d = 0; d < topo.ndims(); ++d) {
    bool inHilbert = false;
    for (const std::size_t h : hilbertDims) inHilbert |= (h == d);
    if (!inHilbert) restDims.push_back(d);
  }
  std::int64_t restProduct = 1;
  for (const std::size_t d : restDims) restProduct *= topo.extent(d);

  Mapping m(ranks);
  for (RankId r = 0; r < ranks; ++r) {
    std::int64_t rest = r;
    const int slot = static_cast<int>(rest % concentration);
    rest /= concentration;
    // Rest dimensions in dimension order, rightmost fastest.
    Coord c(topo.ndims(), 0);
    for (std::size_t pos = restDims.size(); pos-- > 0;) {
      const std::size_t d = restDims[pos];
      c[d] = static_cast<std::int32_t>(rest % topo.extent(d));
      rest /= topo.extent(d);
    }
    // Leading digits walk the Hilbert curve through the curved dims.
    const auto hc =
        hilbertIndexToCoords(static_cast<std::uint64_t>(rest), hBits, hDims);
    for (int i = 0; i < hDims; ++i) {
      c[hilbertDims[static_cast<std::size_t>(i)]] =
          static_cast<std::int32_t>(hc[static_cast<std::size_t>(i)]);
    }
    m.assign(r, topo.nodeId(c), slot);
  }
  return m;
}

}  // namespace rahtm
