#include "mapping/permutation.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rahtm {

PermutationMapper::PermutationMapper(std::string spec) : spec_(std::move(spec)) {
  RAHTM_REQUIRE(!spec_.empty(), "PermutationMapper: empty spec");
}

std::vector<int> PermutationMapper::parseSpec(const std::string& spec,
                                              std::size_t ndims) {
  if (spec.size() != ndims + 1) {
    throw ParseError("mapping spec '" + spec + "' must name " +
                     std::to_string(ndims) + " dimensions plus T");
  }
  std::vector<int> order;
  std::vector<bool> seen(ndims + 1, false);
  for (const char ch : spec) {
    int dim;
    if (ch == 'T' || ch == 't') {
      dim = static_cast<int>(ndims);
    } else if (ch >= 'A' && ch < 'A' + static_cast<int>(ndims)) {
      dim = ch - 'A';
    } else if (ch >= 'a' && ch < 'a' + static_cast<int>(ndims)) {
      dim = ch - 'a';
    } else {
      throw ParseError(std::string("mapping spec: bad dimension letter '") +
                       ch + "'");
    }
    if (seen[static_cast<std::size_t>(dim)]) {
      throw ParseError(std::string("mapping spec: duplicate letter '") + ch +
                       "'");
    }
    seen[static_cast<std::size_t>(dim)] = true;
    order.push_back(dim);
  }
  return order;
}

Mapping PermutationMapper::map(const CommGraph& graph, const Torus& topo,
                               int concentration) {
  const auto order = parseSpec(spec_, topo.ndims());
  const RankId ranks = graph.numRanks();
  RAHTM_REQUIRE(
      ranks == topo.numNodes() * concentration,
      "PermutationMapper: ranks != nodes * concentration");

  // Extended extents: topology dims plus T (= concentration).
  std::vector<std::int64_t> extent(topo.ndims() + 1);
  for (std::size_t d = 0; d < topo.ndims(); ++d) extent[d] = topo.extent(d);
  extent[topo.ndims()] = concentration;

  Mapping m(ranks);
  for (RankId r = 0; r < ranks; ++r) {
    // Decompose the rank in mixed radix following the traversal order with
    // the rightmost spec letter varying fastest.
    std::vector<std::int64_t> digit(extent.size(), 0);
    std::int64_t rest = r;
    for (std::size_t pos = order.size(); pos-- > 0;) {
      const int dim = order[pos];
      digit[static_cast<std::size_t>(dim)] =
          rest % extent[static_cast<std::size_t>(dim)];
      rest /= extent[static_cast<std::size_t>(dim)];
    }
    Coord c(topo.ndims(), 0);
    for (std::size_t d = 0; d < topo.ndims(); ++d) {
      c[d] = static_cast<std::int32_t>(digit[d]);
    }
    m.assign(r, topo.nodeId(c), static_cast<int>(digit[topo.ndims()]));
  }
  return m;
}

Mapping DefaultMapper::map(const CommGraph& graph, const Torus& topo,
                           int concentration) {
  const RankId ranks = graph.numRanks();
  RAHTM_REQUIRE(ranks == topo.numNodes() * concentration,
                "DefaultMapper: ranks != nodes * concentration");
  Mapping m(ranks);
  for (RankId r = 0; r < ranks; ++r) {
    m.assign(r, static_cast<NodeId>(r / concentration),
             static_cast<int>(r % concentration));
  }
  return m;
}

Mapping RandomMapper::map(const CommGraph& graph, const Torus& topo,
                          int concentration) {
  const RankId ranks = graph.numRanks();
  RAHTM_REQUIRE(ranks == topo.numNodes() * concentration,
                "RandomMapper: ranks != nodes * concentration");
  std::vector<RankId> perm(static_cast<std::size_t>(ranks));
  for (RankId r = 0; r < ranks; ++r) perm[static_cast<std::size_t>(r)] = r;
  Rng rng(seed_);
  rng.shuffle(perm);
  Mapping m(ranks);
  for (RankId i = 0; i < ranks; ++i) {
    const RankId r = perm[static_cast<std::size_t>(i)];
    m.assign(r, static_cast<NodeId>(i / concentration),
             static_cast<int>(i % concentration));
  }
  return m;
}

}  // namespace rahtm
