#pragma once
/// \file mapping.hpp
/// A task mapping: the assignment of every application rank to a compute
/// node and an intra-node slot (the "T dimension" in BG/Q terminology).

#include <string>
#include <vector>

#include "common/types.hpp"
#include "graph/comm_graph.hpp"
#include "topology/torus.hpp"

namespace rahtm {

class Mapping {
 public:
  Mapping() = default;
  explicit Mapping(RankId numRanks);

  RankId numRanks() const { return static_cast<RankId>(nodes_.size()); }

  /// Place \p rank on (\p node, \p slot).
  void assign(RankId rank, NodeId node, int slot);

  NodeId nodeOf(RankId rank) const;
  int slotOf(RankId rank) const;

  /// Per-rank node vector (for the load evaluators).
  const std::vector<NodeId>& nodeVector() const { return nodes_; }

  /// True iff every rank has been assigned a node.
  bool complete() const;

  /// Validate against a topology: all nodes in range, at most
  /// \p concentration ranks per node, distinct slots within a node.
  /// Returns an empty string if valid, else a description of the violation.
  std::string validate(const Torus& topo, int concentration) const;

  /// Ranks placed on \p node, ordered by slot.
  std::vector<RankId> ranksOnNode(NodeId node) const;

  /// Exact (node AND slot) equality — the bit-identity the serve layer's
  /// determinism gates compare.
  friend bool operator==(const Mapping& a, const Mapping& b) {
    return a.nodes_ == b.nodes_ && a.slots_ == b.slots_;
  }
  friend bool operator!=(const Mapping& a, const Mapping& b) {
    return !(a == b);
  }

 private:
  std::vector<NodeId> nodes_;
  std::vector<int> slots_;
};

/// Common interface for every mapper in the study (baselines and RAHTM).
class TaskMapper {
 public:
  virtual ~TaskMapper() = default;

  /// Produce a complete mapping of \p graph.numRanks() ranks onto \p topo
  /// with \p concentration ranks per node. Requires
  /// numRanks == topo.numNodes() * concentration.
  virtual Mapping map(const CommGraph& graph, const Torus& topo,
                      int concentration) = 0;

  /// Short name used in reports ("ABCDET", "Hilbert", "RAHTM", ...).
  virtual std::string name() const = 0;
};

}  // namespace rahtm
