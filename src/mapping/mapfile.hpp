#pragma once
/// \file mapfile.hpp
/// BG/Q-style mapfile I/O. The BG/Q MPI runtime accepts an explicit mapfile
/// with one line per rank giving its torus coordinates plus the intra-node
/// slot; RAHTM is an offline tool, so this is its deliverable format (§II-B:
/// "The MPI runtime allows for arbitrary task-to-node mappings that can be
/// read from a file").

#include <iosfwd>

#include "mapping/mapping.hpp"

namespace rahtm {

/// Write one line per rank: "<c0> <c1> ... <c{n-1}> <slot>".
/// Lines are ordered by rank.
void writeMapfile(std::ostream& os, const Mapping& m, const Torus& topo);

/// Parse a mapfile produced by writeMapfile (or by hand). '#' starts a
/// comment. Throws ParseError on malformed lines, coordinates out of range,
/// or a rank count that does not match the line count.
Mapping readMapfile(std::istream& is, const Torus& topo);

}  // namespace rahtm
