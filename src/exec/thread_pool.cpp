#include "exec/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/flight_recorder.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"

namespace rahtm::exec {

namespace {

/// Set while a thread is executing tasks of some pool's region; reentrant
/// parallelFor calls detect it and run inline instead of deadlocking on the
/// (busy) workers.
thread_local bool tlInParallelRegion = false;

}  // namespace

/// One parallel region: tasks are claimed by atomically incrementing
/// `next`; `finished` counts completed tasks. `active` (guarded by the pool
/// mutex) counts workers still inside the region — the caller only returns
/// once it reaches zero, so the stack-allocated Job can never be touched by
/// a laggard worker afterwards.
struct ThreadPool::Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> finished{0};
  std::atomic<std::int64_t> busyUs{0};  ///< task time, for the gauge
  bool timed = false;
  int active = 0;            ///< workers inside the region (under the mutex)
  std::exception_ptr error;  ///< first task exception (under the mutex)
};

ThreadPool::ThreadPool(int threads) : threadCount_(resolveThreads(threads)) {
  workers_.reserve(static_cast<std::size_t>(threadCount_ - 1));
  for (int i = 1; i < threadCount_; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::inParallelRegion() { return tlInParallelRegion; }

int ThreadPool::resolveThreads(int requested) {
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::max(1, requested);
}

void ThreadPool::workerLoop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      wake_.wait(lk, [this] {
        return stop_ || (job_ != nullptr &&
                         job_->next.load(std::memory_order_relaxed) < job_->n);
      });
      if (stop_) return;
      job = job_;
      ++job->active;
    }
    runTasks(*job);
    {
      std::lock_guard<std::mutex> lk(mu_);
      --job->active;
    }
    done_.notify_all();
  }
}

void ThreadPool::runTasks(Job& job) {
  const bool wasInRegion = tlInParallelRegion;
  tlInParallelRegion = true;
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) break;
    obs::FlightRecorder::instance().record(
        obs::FrEvent::PoolTaskBegin, static_cast<std::int64_t>(i),
        static_cast<std::int64_t>(job.n));
    const auto t0 = job.timed ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
    try {
      (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.timed) {
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      job.busyUs.fetch_add(us, std::memory_order_relaxed);
    }
    job.finished.fetch_add(1, std::memory_order_release);
    obs::Heartbeats::instance().beat(obs::Pulse::PoolTasks);
    obs::FlightRecorder::instance().record(
        obs::FrEvent::PoolTaskEnd, static_cast<std::int64_t>(i),
        static_cast<std::int64_t>(job.n));
  }
  tlInParallelRegion = wasInRegion;
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || tlInParallelRegion) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Job job;
  job.fn = &fn;
  job.n = n;
  job.timed = obs::metrics() != nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (job_ != nullptr) {
      // Another thread is driving a region on this pool; don't queue behind
      // it — inline execution preserves both progress and determinism.
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    job_ = &job;
  }
  const auto t0 = job.timed ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point{};
  wake_.notify_all();
  runTasks(job);
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_.wait(lk, [&job] {
      return job.finished.load(std::memory_order_acquire) == job.n &&
             job.active == 0;
    });
    job_ = nullptr;
  }
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    const auto wallUs = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    reg->counter("exec.pool.regions").add(1);
    reg->counter("exec.pool.tasks").add(static_cast<std::int64_t>(n));
    if (wallUs > 0) {
      reg->gauge("exec.pool.utilization")
          .set(static_cast<double>(job.busyUs.load(std::memory_order_relaxed)) /
               (static_cast<double>(wallUs) * threadCount_));
    }
  }
  if (job.error) std::rethrow_exception(job.error);
}

bool ThreadPool::tryGang(std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  if (n == 0) return true;
  if (tlInParallelRegion || n > static_cast<std::size_t>(threadCount_)) {
    return false;
  }
  if (n == 1) {
    // A one-thread gang needs no workers — run it here (still outside any
    // region, so the task may itself use parallelFor).
    fn(0);
    return true;
  }
  Job job;
  job.fn = &fn;
  job.n = n;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (job_ != nullptr || stop_) return false;
    job_ = &job;
  }
  wake_.notify_all();
  runTasks(job);
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_.wait(lk, [&job] {
      return job.finished.load(std::memory_order_acquire) == job.n &&
             job.active == 0;
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
  return true;
}

int threadsFromEnv() {
  const char* v = std::getenv("RAHTM_THREADS");
  if (v == nullptr || *v == '\0') return 1;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed < 0) return 1;
  return static_cast<int>(parsed);
}

}  // namespace rahtm::exec
