#pragma once
/// \file spin_barrier.hpp
/// A centralized sense-reversing spin barrier for tightly-coupled parallel
/// loops.
///
/// `ThreadPool::parallelFor` synchronizes once per region through a mutex +
/// condition variable — fine for coarse fork-join phases, far too heavy for
/// algorithms that must synchronize every iteration (the cycle-level network
/// simulator crosses a barrier three times per simulated cycle). SpinBarrier
/// is the complementary primitive: a fixed set of participants repeatedly
/// calls arriveAndWait(), each call costing one atomic RMW plus a short spin
/// (escalating to std::this_thread::yield() so oversubscribed runs do not
/// burn a core per waiter).
///
/// Memory ordering: every write performed by a participant before
/// arriveAndWait() happens-before every read performed by any participant
/// after the matching return (release on the generation bump, acquire on the
/// spin load and on the last arriver's RMW) — the property the simulator's
/// shard/mailbox handoff relies on.
///
/// A barrier constructed with one participant degenerates to a few relaxed
/// atomic operations, so serial and parallel runs share one code path.

#include <atomic>
#include <cstdint>
#include <thread>

namespace rahtm::exec {

class SpinBarrier {
 public:
  explicit SpinBarrier(int participants)
      : remaining_(participants), participants_(participants) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  int participants() const { return participants_; }

  void arriveAndWait() {
    // The generation must be read before announcing arrival: once the last
    // participant bumps it, a stale read would spin on the wrong value.
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arriver: re-arm the count for the next phase, then open the
      // barrier. The release on the bump publishes every participant's
      // pre-barrier writes (their acq_rel arrivals chain into this RMW).
      remaining_.store(participants_, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    int spins = 0;
    while (generation_.load(std::memory_order_acquire) == gen) {
      if (++spins > kSpinLimit) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }

 private:
  static constexpr int kSpinLimit = 4096;
  std::atomic<int> remaining_;
  std::atomic<std::uint64_t> generation_{0};
  const int participants_;
};

}  // namespace rahtm::exec
