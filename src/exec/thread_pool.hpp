#pragma once
/// \file thread_pool.hpp
/// Deterministic fork-join execution for the compute phases.
///
/// The RAHTM pipeline's hot loops (phase-2 subproblem waves, annealing
/// restarts, the final-refinement pair) are embarrassingly parallel: every
/// task writes only to its own index-addressed result slot. `ThreadPool`
/// provides exactly that shape — a fixed set of workers plus a blocking
/// `parallelFor(n, fn)` — and nothing else (no futures, no task graph), so
/// the determinism contract is easy to audit:
///
///   * task i receives only its index; any randomness must come from a
///     stream pre-split by index before the fork;
///   * tasks never reduce concurrently — callers collect into slots and
///     reduce in index order after the join;
///   * therefore results are bit-identical for every thread count,
///     including 1 (where everything runs inline on the caller).
///
/// Nesting: the calling thread participates in the loop, and a
/// `parallelFor` issued from inside a worker runs inline (serial). This
/// makes nested use safe by construction — the pin wave can parallelize
/// across sibling subproblems while each subproblem's annealing restarts
/// transparently degrade to serial, and a single-subproblem wave (the root
/// level) leaves the pool free for the restarts instead.
///
/// Telemetry: when a metrics registry is installed, each parallel region
/// updates the `exec.pool.utilization` gauge (busy time / (threads × wall
/// time) of the region) and the `exec.pool.tasks` / `exec.pool.regions`
/// counters.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rahtm::exec {

class ThreadPool {
 public:
  /// A pool running at \p threads total concurrency (workers + the calling
  /// thread). `threads <= 1` spawns no workers and runs everything inline;
  /// `threads == 0` means one per hardware thread.
  explicit ThreadPool(int threads = 1);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (including the caller).
  int numThreads() const { return threadCount_; }

  /// Run fn(0) .. fn(n-1), returning after all calls complete. The caller
  /// executes tasks too. The first exception thrown by a task is rethrown
  /// here (remaining tasks still run). Reentrant calls — from inside a
  /// task, or while another thread drives a region — run inline.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Gang-schedule fn(0) .. fn(n-1) on n *distinct* threads, or refuse.
  /// parallelFor degrades to inline serial execution whenever true
  /// concurrency is unavailable (busy pool, nested call) — correct for
  /// independent tasks, fatal for tasks that synchronize with each other
  /// through a barrier (the inline gang would deadlock on itself). tryGang
  /// returns false *without running anything* in those situations; callers
  /// fall back to a one-participant gang. Requires n <= numThreads(); a
  /// thread blocked inside its task cannot be handed a second one, so a
  /// true return guarantees n distinct threads participated.
  bool tryGang(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Resolve a configured thread count: 0 -> hardware concurrency,
  /// anything else clamped to >= 1.
  static int resolveThreads(int requested);

  /// True while the calling thread is executing tasks of some pool's
  /// parallel region. Algorithms that gang-schedule workers (e.g. the
  /// simulator's per-cycle barrier loop) must check this and fall back to a
  /// single participant — a nested parallelFor runs its tasks inline on one
  /// thread, which would deadlock a multi-participant barrier.
  static bool inParallelRegion();

 private:
  struct Job;

  void workerLoop();
  void runTasks(Job& job);

  int threadCount_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_;  ///< workers wait for a job (or stop)
  std::condition_variable done_;  ///< the caller waits for job completion
  Job* job_ = nullptr;            ///< the active parallel region, if any
  bool stop_ = false;
};

/// Thread count requested via the RAHTM_THREADS environment variable;
/// 1 (serial) when unset or unparsable. 0 means "all hardware threads"
/// (resolved at pool construction).
int threadsFromEnv();

}  // namespace rahtm::exec
