#include "lp/model.hpp"

#include <cmath>
#include <limits>
#include <map>

namespace rahtm::lp {

double infinity() { return std::numeric_limits<double>::infinity(); }

VarId Model::addVariable(const std::string& name, double lb, double ub,
                         VarType type, double objCoeff) {
  if (type == VarType::Binary) {
    lb = 0;
    ub = 1;
  }
  RAHTM_REQUIRE(lb <= ub, "addVariable: empty bound interval for " + name);
  vars_.push_back(Variable{name, lb, ub, type, objCoeff});
  return static_cast<VarId>(vars_.size() - 1);
}

VarId Model::addContinuous(const std::string& name, double lb, double ub,
                           double objCoeff) {
  return addVariable(name, lb, ub, VarType::Continuous, objCoeff);
}

VarId Model::addBinary(const std::string& name, double objCoeff) {
  return addVariable(name, 0, 1, VarType::Binary, objCoeff);
}

void Model::setObjectiveCoeff(VarId v, double coeff) {
  variable(v).objCoeff = coeff;
}

void Model::addConstraint(const std::string& name, std::vector<Term> terms,
                          Sense sense, double rhs) {
  std::map<VarId, double> coalesced;
  for (const Term& t : terms) {
    RAHTM_REQUIRE(t.var >= 0 && t.var < static_cast<VarId>(vars_.size()),
                  "addConstraint: bad variable in " + name);
    coalesced[t.var] += t.coeff;
  }
  Constraint c;
  c.name = name;
  c.sense = sense;
  c.rhs = rhs;
  for (const auto& [v, coeff] : coalesced) {
    if (coeff != 0) c.terms.push_back(Term{v, coeff});
  }
  cons_.push_back(std::move(c));
}

const Variable& Model::variable(VarId v) const {
  RAHTM_REQUIRE(v >= 0 && v < static_cast<VarId>(vars_.size()),
                "variable: bad id");
  return vars_[static_cast<std::size_t>(v)];
}

Variable& Model::variable(VarId v) {
  RAHTM_REQUIRE(v >= 0 && v < static_cast<VarId>(vars_.size()),
                "variable: bad id");
  return vars_[static_cast<std::size_t>(v)];
}

const Constraint& Model::constraint(std::size_t i) const {
  RAHTM_REQUIRE(i < cons_.size(), "constraint: bad index");
  return cons_[i];
}

bool Model::hasIntegers() const {
  for (const Variable& v : vars_) {
    if (v.type != VarType::Continuous) return true;
  }
  return false;
}

double Model::objectiveValue(const std::vector<double>& x) const {
  RAHTM_REQUIRE(x.size() == vars_.size(), "objectiveValue: size mismatch");
  double obj = 0;
  for (std::size_t i = 0; i < vars_.size(); ++i) obj += vars_[i].objCoeff * x[i];
  return obj;
}

bool Model::isFeasible(const std::vector<double>& x, double tol) const {
  if (x.size() != vars_.size()) return false;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (x[i] < vars_[i].lb - tol || x[i] > vars_[i].ub + tol) return false;
    if (vars_[i].type != VarType::Continuous &&
        std::abs(x[i] - std::round(x[i])) > tol)
      return false;
  }
  for (const Constraint& c : cons_) {
    double lhs = 0;
    for (const Term& t : c.terms) lhs += t.coeff * x[static_cast<std::size_t>(t.var)];
    switch (c.sense) {
      case Sense::LessEq:
        if (lhs > c.rhs + tol) return false;
        break;
      case Sense::GreaterEq:
        if (lhs < c.rhs - tol) return false;
        break;
      case Sense::Equal:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace rahtm::lp
