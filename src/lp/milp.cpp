#include "lp/milp.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/timer.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rahtm::lp {

namespace {

struct Node {
  // Bound tightenings relative to the root model, as (var, lb, ub).
  struct BoundFix {
    VarId var;
    double lb, ub;
  };
  std::vector<BoundFix> fixes;
  double bound = 0;  // parent LP objective (a valid lower bound when minimizing)

  bool operator<(const Node& other) const {
    return bound > other.bound;  // min-heap on bound (best-first)
  }
};

/// Index of the most fractional integer variable, or -1 if integral.
int mostFractional(const Model& model, const std::vector<double>& x,
                   double tol) {
  int best = -1;
  double bestDist = tol;
  for (std::size_t j = 0; j < model.numVariables(); ++j) {
    if (model.variable(static_cast<VarId>(j)).type == VarType::Continuous)
      continue;
    const double frac = x[j] - std::floor(x[j]);
    const double dist = std::min(frac, 1 - frac);
    if (dist > bestDist) {
      bestDist = dist;
      best = static_cast<int>(j);
    }
  }
  return best;
}

}  // namespace

MilpSolution solveMilp(const Model& rootModel, const MilpOptions& opts) {
  obs::ScopedSpan span(obs::tracer(), "lp.milp.solve", "lp");
  Timer timer;
  MilpSolution result;
  const double minimize =
      rootModel.objectiveSense() == Objective::Minimize ? 1.0 : -1.0;

  // Working model whose bounds we mutate per node (cheaper than copying the
  // constraint matrix for every node).
  Model model = rootModel;

  std::priority_queue<Node> open;
  open.push(Node{{}, -1e300});

  double incumbentObj = 1e300;  // in minimize-space
  result.bestBound = -1e300;

  auto tryIncumbent = [&](const std::vector<double>& x) {
    if (!rootModel.isFeasible(x, opts.intTol * 10)) return;
    const double obj = minimize * rootModel.objectiveValue(x);
    if (obj < incumbentObj - opts.gapTol) {
      incumbentObj = obj;
      result.x = x;
      result.hasIncumbent = true;
      result.incumbentTrail.emplace_back(result.nodesExplored,
                                         minimize * obj);
      obs::FlightRecorder::instance().record(
          obs::FrEvent::MilpIncumbent, result.nodesExplored,
          static_cast<std::int64_t>(minimize * obj));
      if (obs::Tracer* t = obs::tracer()) {
        t->instant("milp.incumbent", "lp",
                   {{"objective", obs::jsonDouble(minimize * obj)},
                    {"node", obs::jsonInt(result.nodesExplored)}});
      }
    }
  };

  if (!opts.warmStart.empty()) tryIncumbent(opts.warmStart);

  bool unresolvedNodes = false;
  SolveStatus finalStatus = SolveStatus::Optimal;
  while (!open.empty()) {
    if (opts.maxNodes > 0 && result.nodesExplored >= opts.maxNodes) {
      finalStatus = SolveStatus::NodeLimit;
      break;
    }
    if (opts.timeLimitSec > 0 && timer.seconds() > opts.timeLimitSec) {
      finalStatus = SolveStatus::TimeLimit;
      break;
    }
    Node node = open.top();
    open.pop();
    if (node.bound >= incumbentObj - opts.gapTol) continue;  // pruned
    ++result.nodesExplored;
    obs::Heartbeats::instance().beat(obs::Pulse::MilpNodes);
    if ((result.nodesExplored & 255) == 0) {
      obs::FlightRecorder::instance().record(
          obs::FrEvent::MilpNodes, result.nodesExplored,
          static_cast<std::int64_t>(open.size()));
    }

    // Apply node bounds.
    std::vector<std::pair<VarId, std::pair<double, double>>> saved;
    saved.reserve(node.fixes.size());
    bool emptyDomain = false;
    for (const auto& f : node.fixes) {
      Variable& v = model.variable(f.var);
      saved.push_back({f.var, {v.lb, v.ub}});
      v.lb = std::max(v.lb, f.lb);
      v.ub = std::min(v.ub, f.ub);
      if (v.lb > v.ub) emptyDomain = true;
    }

    if (!emptyDomain) {
      // Give the relaxation only the remaining MILP budget, so one long
      // LP solve cannot blow through the solver's time limit.
      SimplexOptions sopts = opts.simplex;
      if (opts.timeLimitSec > 0) {
        const double left = opts.timeLimitSec - timer.seconds();
        sopts.timeLimitSec = sopts.timeLimitSec > 0
                                 ? std::min(sopts.timeLimitSec, left)
                                 : left;
      }
      const LpSolution relax = solveLp(model, sopts);
      result.lpPivots += relax.pivots;
      if (relax.status == SolveStatus::IterLimit) {
        // Numerical trouble or iteration exhaustion: the node is dropped
        // but optimality may no longer be claimed.
        unresolvedNodes = true;
      }
      if (relax.status == SolveStatus::Optimal) {
        const double bound = minimize * relax.objective;
        if (bound < incumbentObj - opts.gapTol) {
          const int branchVar = mostFractional(model, relax.x, opts.intTol);
          if (branchVar < 0) {
            tryIncumbent(relax.x);
          } else {
            if (opts.roundingHeuristic) {
              const auto rounded = opts.roundingHeuristic(model, relax.x);
              if (!rounded.empty()) tryIncumbent(rounded);
            }
            const double xv = relax.x[static_cast<std::size_t>(branchVar)];
            Node down = node;
            down.bound = bound;
            down.fixes.push_back(
                {branchVar, -infinity(), std::floor(xv)});
            Node up = node;
            up.bound = bound;
            up.fixes.push_back({branchVar, std::ceil(xv), infinity()});
            open.push(std::move(down));
            open.push(std::move(up));
          }
        }
      } else if (relax.status == SolveStatus::Unbounded) {
        // An unbounded relaxation at the root means the MILP is unbounded
        // (integrality cannot bound a cone). Deeper nodes inherit it.
        finalStatus = SolveStatus::Unbounded;
        // Restore bounds before leaving.
        for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
          model.variable(it->first).lb = it->second.first;
          model.variable(it->first).ub = it->second.second;
        }
        break;
      }
      // Infeasible or iteration-limited nodes are fathomed.
    }

    // Restore bounds.
    for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
      model.variable(it->first).lb = it->second.first;
      model.variable(it->first).ub = it->second.second;
    }
  }

  // Best bound: min over remaining open nodes (or incumbent if tree emptied).
  double openBound = incumbentObj;
  if (finalStatus != SolveStatus::Optimal) {
    // Remaining nodes hold the weakest proven bound.
    if (!open.empty()) openBound = std::min(openBound, open.top().bound);
  }
  result.bestBound = minimize * openBound;

  if (finalStatus == SolveStatus::Optimal && unresolvedNodes) {
    finalStatus = SolveStatus::IterLimit;  // cannot certify optimality
  }
  if (finalStatus == SolveStatus::Optimal) {
    result.status =
        result.hasIncumbent ? SolveStatus::Optimal : SolveStatus::Infeasible;
  } else {
    result.status = finalStatus;
  }
  if (result.hasIncumbent) {
    result.objective = minimize * incumbentObj;
  }
  span.attr("status", toString(result.status));
  span.attr("nodes", static_cast<std::int64_t>(result.nodesExplored));
  span.attr("lp_pivots", static_cast<std::int64_t>(result.lpPivots));
  if (result.hasIncumbent) span.attr("objective", result.objective);
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->counter("lp.milp.solves").add(1);
    reg->counter("lp.milp.nodes").add(result.nodesExplored);
    reg->counter("lp.milp.incumbents")
        .add(static_cast<std::int64_t>(result.incumbentTrail.size()));
    reg->histogram("lp.milp.nodes_per_solve", obs::expBuckets(1, 2, 20))
        .observe(static_cast<double>(result.nodesExplored));
  }
  return result;
}

}  // namespace rahtm::lp
