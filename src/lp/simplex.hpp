#pragma once
/// \file simplex.hpp
/// Dense bounded-variable primal simplex, two-phase (artificial start).
///
/// This is the LP engine under the MILP branch-and-bound (milp.hpp) and the
/// optimal-routing MCL evaluator (routing/lp_routing.hpp). It handles the
/// model sizes RAHTM produces at leaf level (hundreds of rows/columns) in
/// milliseconds to seconds; it is not meant as a general-purpose LP code.
///
/// Implementation notes:
///  * Variables carry finite lower bounds after standardization (>= rows are
///    negated to <= rows; slacks are [0,inf) or fixed [0,0] for equalities),
///    so nonbasic variables always rest on a bound.
///  * Artificial columns are virtual (±e_i); they start basic, are never
///    allowed to re-enter, and are pinned to zero after phase 1.
///  * Dantzig pricing with a Bland fallback after a stall guarantees
///    termination.

#include <vector>

#include "lp/model.hpp"

namespace rahtm::lp {

enum class SolveStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterLimit,
  NodeLimit,   // used by MILP
  TimeLimit,
};

const char* toString(SolveStatus s);

struct LpSolution {
  SolveStatus status = SolveStatus::IterLimit;
  double objective = 0;
  std::vector<double> x;  ///< values of the model's variables
  long pivots = 0;        ///< basis changes across both phases
};

struct SimplexOptions {
  double tol = 1e-8;          ///< feasibility / pricing tolerance
  long maxIterations = -1;    ///< -1: automatic (scales with model size)
  int refactorEvery = 128;    ///< rebuild the tableau every N pivots
  /// Wall-clock budget for one solve in seconds (<= 0: none). Checked
  /// periodically inside the pivot loop; exhaustion returns IterLimit —
  /// this is how the MILP's time limit interrupts a long relaxation.
  double timeLimitSec = -1;
};

/// Solve the continuous relaxation of \p model (integrality is ignored).
LpSolution solveLp(const Model& model, const SimplexOptions& opts = {});

}  // namespace rahtm::lp
