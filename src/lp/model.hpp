#pragma once
/// \file model.hpp
/// Declarative LP / MILP model: variables with bounds and types, linear
/// constraints, and a linear objective. The paper solved its Table II
/// formulation with CPLEX; this library provides its own solver stack
/// (simplex.hpp, milp.hpp) over this model type.

#include <string>
#include <vector>

#include "common/error.hpp"

namespace rahtm::lp {

/// Variable index within a Model.
using VarId = int;

enum class VarType { Continuous, Binary, Integer };

enum class Sense { LessEq, Equal, GreaterEq };

enum class Objective { Minimize, Maximize };

/// +infinity for bounds.
double infinity();

struct Variable {
  std::string name;
  double lb = 0;
  double ub = 0;
  VarType type = VarType::Continuous;
  double objCoeff = 0;
};

/// One linear term: coefficient * variable.
struct Term {
  VarId var = -1;
  double coeff = 0;
};

struct Constraint {
  std::string name;
  std::vector<Term> terms;
  Sense sense = Sense::LessEq;
  double rhs = 0;
};

class Model {
 public:
  /// Add a variable; returns its id. Binary variables get bounds [0,1]
  /// regardless of the arguments passed.
  VarId addVariable(const std::string& name, double lb, double ub,
                    VarType type = VarType::Continuous, double objCoeff = 0);

  /// Convenience wrappers.
  VarId addContinuous(const std::string& name, double lb, double ub,
                      double objCoeff = 0);
  VarId addBinary(const std::string& name, double objCoeff = 0);

  void setObjectiveCoeff(VarId v, double coeff);
  void setObjective(Objective sense) { objective_ = sense; }
  Objective objectiveSense() const { return objective_; }

  /// Add constraint Σ terms (sense) rhs. Duplicate variables within a
  /// constraint are coalesced.
  void addConstraint(const std::string& name, std::vector<Term> terms,
                     Sense sense, double rhs);

  std::size_t numVariables() const { return vars_.size(); }
  std::size_t numConstraints() const { return cons_.size(); }
  const Variable& variable(VarId v) const;
  Variable& variable(VarId v);
  const Constraint& constraint(std::size_t i) const;
  const std::vector<Variable>& variables() const { return vars_; }
  const std::vector<Constraint>& constraints() const { return cons_; }

  /// True iff any variable is Binary or Integer.
  bool hasIntegers() const;

  /// Evaluate the objective at a point.
  double objectiveValue(const std::vector<double>& x) const;

  /// Verify that \p x satisfies all bounds and constraints within \p tol.
  bool isFeasible(const std::vector<double>& x, double tol = 1e-6) const;

 private:
  std::vector<Variable> vars_;
  std::vector<Constraint> cons_;
  Objective objective_ = Objective::Minimize;
};

}  // namespace rahtm::lp
