#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heartbeat.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"

namespace rahtm::lp {

const char* toString(SolveStatus s) {
  switch (s) {
    case SolveStatus::Optimal: return "optimal";
    case SolveStatus::Infeasible: return "infeasible";
    case SolveStatus::Unbounded: return "unbounded";
    case SolveStatus::IterLimit: return "iteration-limit";
    case SolveStatus::NodeLimit: return "node-limit";
    case SolveStatus::TimeLimit: return "time-limit";
  }
  return "?";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class ColState : std::uint8_t { Basic, AtLower, AtUpper };

/// Dense bounded-variable simplex working state.
class Simplex {
 public:
  Simplex(const Model& model, const SimplexOptions& opts)
      : model_(model), opts_(opts) {
    standardize();
  }

  LpSolution run() {
    LpSolution out;
    struct PivotExport {
      // Export the pivot count on every return path.
      const Simplex& s;
      LpSolution& o;
      ~PivotExport() { o.pivots = s.pivots_; }
    } pivotExport{*this, out};
    // ---- Phase 1: minimize sum of artificials ----
    setPhase1Costs();
    if (!refactorize()) {
      out.status = SolveStatus::IterLimit;
      return out;
    }
    SolveStatus s1 = iterate();
    if (s1 == SolveStatus::IterLimit) {
      out.status = s1;
      return out;
    }
    if (phaseObjective() > 1e-6) {
      out.status = SolveStatus::Infeasible;
      return out;
    }
    // Pin artificials to zero so they can never carry value again.
    for (int a = 0; a < m_; ++a) {
      ub_[nStored_ + a] = 0;
    }
    // ---- Phase 2: real objective ----
    setPhase2Costs();
    if (!refactorize()) {
      out.status = SolveStatus::IterLimit;
      return out;
    }
    SolveStatus s2 = iterate();
    out.status = s2;
    if (s2 != SolveStatus::Optimal) return out;

    // Extract structural variable values.
    std::vector<double> full(static_cast<std::size_t>(nTotal_), 0);
    for (int j = 0; j < nTotal_; ++j) {
      if (state_[j] == ColState::AtLower) full[j] = lb_[j];
      else if (state_[j] == ColState::AtUpper) full[j] = ub_[j];
    }
    for (int i = 0; i < m_; ++i) full[basis_[i]] = beta_[i];
    out.x.assign(full.begin(), full.begin() + static_cast<long>(model_.numVariables()));
    out.objective = model_.objectiveValue(out.x);
    return out;
  }

 private:
  // --- Standard form -------------------------------------------------------
  // Columns: [0, nVars) structural, [nVars, nStored) slacks,
  // [nStored, nTotal) virtual artificials (column = sign_i * e_i).
  void standardize() {
    const auto nVars = static_cast<int>(model_.numVariables());
    m_ = static_cast<int>(model_.numConstraints());
    nStored_ = nVars + m_;
    nTotal_ = nStored_ + m_;

    lb_.assign(nTotal_, 0);
    ub_.assign(nTotal_, kInf);
    cost_.assign(nTotal_, 0);
    const double sign = model_.objectiveSense() == Objective::Minimize ? 1 : -1;
    for (int j = 0; j < nVars; ++j) {
      const Variable& v = model_.variable(j);
      RAHTM_REQUIRE(std::isfinite(v.lb),
                    "simplex: variables must have finite lower bounds");
      lb_[j] = v.lb;
      ub_[j] = v.ub;
      cost_[j] = sign * v.objCoeff;
    }

    // Rows: >= rows are negated into <= rows; every row gets a slack.
    a_.assign(static_cast<std::size_t>(m_) * nStored_, 0);
    b_.assign(m_, 0);
    for (int i = 0; i < m_; ++i) {
      const Constraint& c = model_.constraint(static_cast<std::size_t>(i));
      const double rowSign = (c.sense == Sense::GreaterEq) ? -1 : 1;
      for (const Term& t : c.terms) {
        a_[static_cast<std::size_t>(i) * nStored_ + t.var] += rowSign * t.coeff;
      }
      b_[i] = rowSign * c.rhs;
      const int slack = nVars + i;
      a_[static_cast<std::size_t>(i) * nStored_ + slack] = 1;
      if (c.sense == Sense::Equal) ub_[slack] = 0;  // slack fixed at 0
    }

    // Initial point: all stored columns nonbasic at lower bound.
    state_.assign(nTotal_, ColState::AtLower);
    basis_.resize(m_);
    artSign_.assign(m_, 1.0);
    std::vector<double> resid(b_);
    for (int j = 0; j < nStored_; ++j) {
      if (lb_[j] == 0) continue;
      for (int i = 0; i < m_; ++i) {
        resid[i] -= a_[static_cast<std::size_t>(i) * nStored_ + j] * lb_[j];
      }
    }
    for (int i = 0; i < m_; ++i) {
      artSign_[i] = resid[i] >= 0 ? 1.0 : -1.0;
      basis_[i] = nStored_ + i;
      state_[nStored_ + i] = ColState::Basic;
    }

    tableau_.assign(static_cast<std::size_t>(m_) * nStored_, 0);
    beta_.assign(m_, 0);
    redCost_.assign(nStored_, 0);

    // The two m x nStored matrices dominate; everything else is O(m + n).
    mem_.set(static_cast<std::int64_t>(
        (a_.capacity() + tableau_.capacity() + b_.capacity() +
         lb_.capacity() + ub_.capacity() + cost_.capacity() +
         activeCost_.capacity() + artSign_.capacity() + beta_.capacity() +
         redCost_.capacity()) *
            sizeof(double) +
        basis_.capacity() * sizeof(int) +
        state_.capacity() * sizeof(ColState)));
  }

  void setPhase1Costs() {
    phase1_ = true;
    activeCost_.assign(nTotal_, 0);
    for (int a = 0; a < m_; ++a) activeCost_[nStored_ + a] = 1;
  }

  void setPhase2Costs() {
    phase1_ = false;
    activeCost_ = cost_;
  }

  double colLower(int j) const { return lb_[j]; }
  double colUpper(int j) const { return ub_[j]; }

  /// Original column j (stored or virtual) into out[m].
  void originalColumn(int j, std::vector<double>& out) const {
    out.assign(m_, 0);
    if (j < nStored_) {
      for (int i = 0; i < m_; ++i) {
        out[i] = a_[static_cast<std::size_t>(i) * nStored_ + j];
      }
    } else {
      out[j - nStored_] = artSign_[j - nStored_];
    }
  }

  /// Rebuild B^-1-applied tableau, basic values and reduced costs from the
  /// original data (Gauss-Jordan with partial pivoting). Returns false when
  /// accumulated pivoting error has left the basis numerically singular —
  /// callers abandon the solve with IterLimit, which the MILP layer treats
  /// as an unresolved (never silently pruned) node.
  bool refactorize() {
    // Build the basis matrix augmented with identity.
    std::vector<double> binv(static_cast<std::size_t>(m_) * m_, 0);
    std::vector<double> bmat(static_cast<std::size_t>(m_) * m_, 0);
    std::vector<double> col;
    for (int k = 0; k < m_; ++k) {
      originalColumn(basis_[k], col);
      for (int i = 0; i < m_; ++i) bmat[static_cast<std::size_t>(i) * m_ + k] = col[i];
      binv[static_cast<std::size_t>(k) * m_ + k] = 1;
    }
    // Invert bmat into binv (Gauss-Jordan, partial pivoting).
    for (int p = 0; p < m_; ++p) {
      int pivRow = p;
      double best = std::abs(bmat[static_cast<std::size_t>(p) * m_ + p]);
      for (int i = p + 1; i < m_; ++i) {
        const double v = std::abs(bmat[static_cast<std::size_t>(i) * m_ + p]);
        if (v > best) {
          best = v;
          pivRow = i;
        }
      }
      if (best <= 1e-12) return false;  // numerically singular basis
      if (pivRow != p) {
        for (int j = 0; j < m_; ++j) {
          std::swap(bmat[static_cast<std::size_t>(pivRow) * m_ + j],
                    bmat[static_cast<std::size_t>(p) * m_ + j]);
          std::swap(binv[static_cast<std::size_t>(pivRow) * m_ + j],
                    binv[static_cast<std::size_t>(p) * m_ + j]);
        }
      }
      const double piv = bmat[static_cast<std::size_t>(p) * m_ + p];
      for (int j = 0; j < m_; ++j) {
        bmat[static_cast<std::size_t>(p) * m_ + j] /= piv;
        binv[static_cast<std::size_t>(p) * m_ + j] /= piv;
      }
      for (int i = 0; i < m_; ++i) {
        if (i == p) continue;
        const double f = bmat[static_cast<std::size_t>(i) * m_ + p];
        if (f == 0) continue;
        for (int j = 0; j < m_; ++j) {
          bmat[static_cast<std::size_t>(i) * m_ + j] -=
              f * bmat[static_cast<std::size_t>(p) * m_ + j];
          binv[static_cast<std::size_t>(i) * m_ + j] -=
              f * binv[static_cast<std::size_t>(p) * m_ + j];
        }
      }
    }

    // tableau = binv * A_stored
    for (int i = 0; i < m_; ++i) {
      for (int j = 0; j < nStored_; ++j) {
        tableau_[static_cast<std::size_t>(i) * nStored_ + j] = 0;
      }
    }
    for (int i = 0; i < m_; ++i) {
      for (int k = 0; k < m_; ++k) {
        const double f = binv[static_cast<std::size_t>(i) * m_ + k];
        if (f == 0) continue;
        const double* arow = &a_[static_cast<std::size_t>(k) * nStored_];
        double* trow = &tableau_[static_cast<std::size_t>(i) * nStored_];
        for (int j = 0; j < nStored_; ++j) trow[j] += f * arow[j];
      }
    }

    // beta = binv * (b - A_N x_N)
    std::vector<double> resid(b_);
    for (int j = 0; j < nTotal_; ++j) {
      if (state_[j] == ColState::Basic) continue;
      const double xj = (state_[j] == ColState::AtLower) ? lb_[j] : ub_[j];
      if (xj == 0) continue;
      originalColumn(j, colBuf_);
      for (int i = 0; i < m_; ++i) resid[i] -= colBuf_[i] * xj;
    }
    for (int i = 0; i < m_; ++i) {
      double v = 0;
      for (int k = 0; k < m_; ++k) {
        v += binv[static_cast<std::size_t>(i) * m_ + k] * resid[k];
      }
      beta_[i] = v;
    }

    // y = c_B^T binv ; reduced costs for stored columns.
    std::vector<double> y(m_, 0);
    for (int k = 0; k < m_; ++k) {
      const double cb = activeCost_[basis_[k]];
      if (cb == 0) continue;
      for (int j = 0; j < m_; ++j) {
        y[j] += cb * binv[static_cast<std::size_t>(k) * m_ + j];
      }
    }
    for (int j = 0; j < nStored_; ++j) {
      double d = activeCost_[j];
      for (int i = 0; i < m_; ++i) {
        d -= y[i] * a_[static_cast<std::size_t>(i) * nStored_ + j];
      }
      redCost_[j] = d;
    }
    return true;
  }

  double phaseObjective() const {
    double obj = 0;
    for (int i = 0; i < m_; ++i) {
      obj += activeCost_[basis_[i]] * beta_[i];
    }
    // Nonbasic columns with nonzero active cost (phase 2 only).
    for (int j = 0; j < nTotal_; ++j) {
      if (state_[j] == ColState::Basic || activeCost_[j] == 0) continue;
      obj += activeCost_[j] * ((state_[j] == ColState::AtLower) ? lb_[j] : ub_[j]);
    }
    return obj;
  }

  /// One simplex phase; returns Optimal / Unbounded / IterLimit.
  SolveStatus iterate() {
    const long maxIters =
        opts_.maxIterations > 0
            ? opts_.maxIterations
            : 200L * (m_ + nStored_) + 20000L;
    long stall = 0;
    int sincePivot = 0;
    double lastObj = phaseObjective();
    for (long iter = 0; iter < maxIters; ++iter) {
      if (opts_.timeLimitSec > 0 && (iter & 63) == 0 &&
          timer_.seconds() > opts_.timeLimitSec) {
        return SolveStatus::IterLimit;
      }
      const bool bland = stall > 2L * m_ + 50;
      const int enter = chooseEntering(bland);
      if (enter < 0) return SolveStatus::Optimal;

      // Direction: +1 entering rises from lower bound, -1 falls from upper.
      const double sigma = (state_[enter] == ColState::AtLower) ? 1.0 : -1.0;

      // Ratio test over basic variables + the entering bound flip.
      double tMax = colUpper(enter) - colLower(enter);  // bound-flip distance
      int leaveRow = -1;
      double leaveBound = 0;  // bound the leaving variable hits
      for (int i = 0; i < m_; ++i) {
        // The entering column is always stored (artificials never re-enter).
        const double alpha =
            tableau_[static_cast<std::size_t>(i) * nStored_ + enter];
        const double step = sigma * alpha;
        const int bj = basis_[i];
        if (step > opts_.tol) {
          const double room = (beta_[i] - colLower(bj)) / step;
          if (room < tMax) {
            tMax = std::max(room, 0.0);
            leaveRow = i;
            leaveBound = colLower(bj);
          }
        } else if (step < -opts_.tol) {
          if (colUpper(bj) == kInf) continue;
          const double room = (colUpper(bj) - beta_[i]) / (-step);
          if (room < tMax) {
            tMax = std::max(room, 0.0);
            leaveRow = i;
            leaveBound = colUpper(bj);
          }
        }
      }

      if (tMax == kInf) return SolveStatus::Unbounded;

      if (leaveRow < 0) {
        // Bound flip: entering moves across its interval, no basis change.
        applyBoundFlip(enter, sigma, tMax);
      } else {
        applyPivot(enter, sigma, tMax, leaveRow, leaveBound);
        ++pivots_;
        obs::Heartbeats::instance().beat(obs::Pulse::SimplexPivots);
        if ((pivots_ & 4095) == 0) {
          obs::FlightRecorder::instance().record(obs::FrEvent::SimplexPivots,
                                                 pivots_, m_);
        }
        if (++sincePivot >= opts_.refactorEvery) {
          if (!refactorize()) return SolveStatus::IterLimit;
          sincePivot = 0;
        }
      }

      const double obj = phaseObjective();
      if (obj < lastObj - 1e-12) {
        stall = 0;
        lastObj = obj;
      } else {
        ++stall;
      }
    }
    return SolveStatus::IterLimit;
  }

  int chooseEntering(bool bland) const {
    int best = -1;
    double bestScore = opts_.tol;
    for (int j = 0; j < nStored_; ++j) {
      if (state_[j] == ColState::Basic) continue;
      if (colLower(j) == colUpper(j)) continue;  // fixed, cannot move
      double viol = 0;
      if (state_[j] == ColState::AtLower && redCost_[j] < -opts_.tol) {
        viol = -redCost_[j];
      } else if (state_[j] == ColState::AtUpper && redCost_[j] > opts_.tol) {
        viol = redCost_[j];
      } else {
        continue;
      }
      if (bland) return j;  // first eligible index
      if (viol > bestScore) {
        bestScore = viol;
        best = j;
      }
    }
    return best;
  }

  void applyBoundFlip(int enter, double sigma, double t) {
    for (int i = 0; i < m_; ++i) {
      beta_[i] -= sigma * t *
                  tableau_[static_cast<std::size_t>(i) * nStored_ + enter];
    }
    state_[enter] = (state_[enter] == ColState::AtLower) ? ColState::AtUpper
                                                         : ColState::AtLower;
  }

  void applyPivot(int enter, double sigma, double t, int leaveRow,
                  double leaveBound) {
    const int leave = basis_[leaveRow];
    // New basic values before the elimination step.
    for (int i = 0; i < m_; ++i) {
      if (i == leaveRow) continue;
      beta_[i] -= sigma * t *
                  tableau_[static_cast<std::size_t>(i) * nStored_ + enter];
    }
    const double enterStart =
        (state_[enter] == ColState::AtLower) ? colLower(enter) : colUpper(enter);
    const double enterValue = enterStart + sigma * t;

    // Gauss-Jordan elimination on the entering column.
    double* prow = &tableau_[static_cast<std::size_t>(leaveRow) * nStored_];
    const double piv = prow[enter];
    RAHTM_REQUIRE(std::abs(piv) > 1e-12, "simplex: zero pivot");
    for (int j = 0; j < nStored_; ++j) prow[j] /= piv;
    for (int i = 0; i < m_; ++i) {
      if (i == leaveRow) continue;
      double* row = &tableau_[static_cast<std::size_t>(i) * nStored_];
      const double f = row[enter];
      if (f == 0) continue;
      for (int j = 0; j < nStored_; ++j) row[j] -= f * prow[j];
    }
    const double dEnter = redCost_[enter];
    if (dEnter != 0) {
      for (int j = 0; j < nStored_; ++j) redCost_[j] -= dEnter * prow[j];
    }

    // Book-keeping.
    basis_[leaveRow] = enter;
    beta_[leaveRow] = enterValue;
    state_[enter] = ColState::Basic;
    if (leave < nStored_) {
      state_[leave] = (leaveBound == colLower(leave)) ? ColState::AtLower
                                                      : ColState::AtUpper;
    } else {
      state_[leave] = ColState::AtLower;  // artificial leaves at 0
    }
  }

  const Model& model_;
  SimplexOptions opts_;

  int m_ = 0;        // rows
  int nStored_ = 0;  // structural + slack columns
  int nTotal_ = 0;   // + artificials

  std::vector<double> a_;        // m x nStored original matrix
  std::vector<double> b_;        // rhs
  std::vector<double> lb_, ub_;  // per column (incl. artificials)
  std::vector<double> cost_;     // phase-2 costs
  std::vector<double> activeCost_;
  std::vector<double> artSign_;  // artificial column signs

  std::vector<double> tableau_;  // m x nStored
  std::vector<double> beta_;     // basic values
  std::vector<double> redCost_;  // reduced costs (stored columns)
  std::vector<int> basis_;
  std::vector<ColState> state_;
  bool phase1_ = true;
  long pivots_ = 0;
  Timer timer_;  ///< started at construction; enforces timeLimitSec

  mutable std::vector<double> colBuf_;
  obs::MemAccount mem_{obs::MemAccountId::Lp};
};

}  // namespace

namespace {

/// One metrics touch per solve — never per pivot.
void recordSolve(const LpSolution& out) {
  obs::MetricsRegistry* reg = obs::metrics();
  if (reg == nullptr) return;
  reg->counter("lp.simplex.solves").add(1);
  reg->counter("lp.simplex.pivots").add(out.pivots);
  reg->histogram("lp.simplex.pivots_per_solve", obs::expBuckets(1, 2, 20))
      .observe(static_cast<double>(out.pivots));
}

}  // namespace

LpSolution solveLp(const Model& model, const SimplexOptions& opts) {
  if (model.numConstraints() == 0) {
    // Pure bound problem: each variable sits on its best bound.
    LpSolution out;
    out.status = SolveStatus::Optimal;
    out.x.resize(model.numVariables());
    const double sign = model.objectiveSense() == Objective::Minimize ? 1 : -1;
    for (std::size_t j = 0; j < model.numVariables(); ++j) {
      const Variable& v = model.variable(static_cast<VarId>(j));
      const double c = sign * v.objCoeff;
      if (c > 0) {
        out.x[j] = v.lb;
      } else if (c < 0) {
        if (!std::isfinite(v.ub)) {
          out.status = SolveStatus::Unbounded;
          recordSolve(out);
          return out;
        }
        out.x[j] = v.ub;
      } else {
        out.x[j] = v.lb;
      }
    }
    out.objective = model.objectiveValue(out.x);
    recordSolve(out);
    return out;
  }
  Simplex s(model, opts);
  LpSolution out = s.run();
  recordSolve(out);
  return out;
}

}  // namespace rahtm::lp
