#pragma once
/// \file milp.hpp
/// Branch-and-bound MILP solver over the simplex LP engine.
///
/// RAHTM's leaf subproblems (Table II) are small mixed-integer programs; the
/// paper solved them with CPLEX. This solver uses best-first search with
/// most-fractional branching and returns the best incumbent found when a
/// node or time budget is exhausted — the hierarchical pipeline treats a
/// budget-limited incumbent the same way the paper treats a long CPLEX run
/// cut short.

#include <functional>
#include <utility>
#include <vector>

#include "lp/simplex.hpp"

namespace rahtm::lp {

struct MilpOptions {
  SimplexOptions simplex;
  long maxNodes = 200000;     ///< branch-and-bound node budget
  double timeLimitSec = 0;    ///< 0: no limit
  double intTol = 1e-6;       ///< integrality tolerance
  double gapTol = 1e-9;       ///< absolute optimality gap for termination
  /// Optional callback turning a (fractional) relaxation point into a
  /// feasible incumbent; returns empty vector when it cannot.
  std::function<std::vector<double>(const Model&, const std::vector<double>&)>
      roundingHeuristic;
  /// Optional feasible starting point. Installed as the initial incumbent
  /// (after a feasibility check), giving the search an immediate pruning
  /// cutoff — essential on symmetric models where integral relaxations are
  /// rare.
  std::vector<double> warmStart;
};

struct MilpSolution {
  SolveStatus status = SolveStatus::Infeasible;
  double objective = 0;        ///< incumbent objective (valid if hasIncumbent)
  double bestBound = 0;        ///< proven bound on the optimum
  bool hasIncumbent = false;
  std::vector<double> x;       ///< incumbent point
  long nodesExplored = 0;
  long lpPivots = 0;           ///< simplex pivots across all relaxations
  /// Incumbent trajectory: (nodes explored when found, objective), in
  /// discovery order. The last entry is the returned incumbent.
  std::vector<std::pair<long, double>> incumbentTrail;
};

/// Solve \p model to optimality or budget exhaustion.
MilpSolution solveMilp(const Model& model, const MilpOptions& opts = {});

}  // namespace rahtm::lp
