#include "topology/presets.hpp"

namespace rahtm {

Torus bgqPartition512() { return Torus::torus(Shape{4, 4, 4, 4, 2}); }

Torus bgqPartition128() { return Torus::torus(Shape{4, 4, 4, 2}); }

Torus torus32() { return Torus::torus(Shape{2, 2, 2, 2, 2}); }

}  // namespace rahtm
