#include "topology/subcube.hpp"

#include "common/error.hpp"

namespace rahtm {

namespace {
Torus makeLocal(const Torus& parent, const Coord& origin, const Shape& extent) {
  RAHTM_REQUIRE(origin.size() == parent.ndims() &&
                    extent.size() == parent.ndims(),
                "SubcubeView: dimension mismatch");
  SmallVec<std::uint8_t, kMaxDims> wrap(extent.size(), 0);
  for (std::size_t d = 0; d < extent.size(); ++d) {
    RAHTM_REQUIRE(extent[d] >= 1, "SubcubeView: extent must be positive");
    RAHTM_REQUIRE(origin[d] >= 0 && origin[d] + extent[d] <= parent.extent(d),
                  "SubcubeView: block exceeds parent");
    wrap[d] = (extent[d] == parent.extent(d) && parent.wraps(d)) ? 1 : 0;
  }
  return Torus::mixed(extent, wrap);
}
}  // namespace

SubcubeView::SubcubeView(const Torus& parent, const Coord& origin,
                         const Shape& extent)
    : parent_(&parent),
      origin_(origin),
      extent_(extent),
      local_(makeLocal(parent, origin, extent)) {}

std::int64_t SubcubeView::numNodes() const { return local_.numNodes(); }

Coord SubcubeView::toParent(const Coord& local) const {
  RAHTM_REQUIRE(local_.contains(local), "toParent: local coord out of range");
  Coord p(local.size(), 0);
  for (std::size_t d = 0; d < local.size(); ++d) p[d] = origin_[d] + local[d];
  return p;
}

Coord SubcubeView::toLocal(const Coord& parentCoord) const {
  RAHTM_REQUIRE(containsParent(parentCoord), "toLocal: coord outside block");
  Coord l(parentCoord.size(), 0);
  for (std::size_t d = 0; d < parentCoord.size(); ++d) {
    l[d] = parentCoord[d] - origin_[d];
  }
  return l;
}

bool SubcubeView::containsParent(const Coord& parentCoord) const {
  if (parentCoord.size() != extent_.size()) return false;
  for (std::size_t d = 0; d < extent_.size(); ++d) {
    if (parentCoord[d] < origin_[d] || parentCoord[d] >= origin_[d] + extent_[d])
      return false;
  }
  return true;
}

NodeId SubcubeView::localNodeId(const Coord& local) const {
  return local_.nodeId(local);
}

Coord SubcubeView::localCoordOf(NodeId local) const {
  return local_.coordOf(local);
}

NodeId SubcubeView::parentNodeOf(NodeId local) const {
  return parent_->nodeId(toParent(local_.coordOf(local)));
}

Torus SubcubeView::localTopology() const { return local_; }

std::vector<SubcubeView> partitionIntoBlocks(const Torus& t,
                                             const Shape& blockShape) {
  RAHTM_REQUIRE(blockShape.size() == t.ndims(),
                "partitionIntoBlocks: dimension mismatch");
  Shape grid(blockShape.size(), 0);
  for (std::size_t d = 0; d < blockShape.size(); ++d) {
    RAHTM_REQUIRE(blockShape[d] >= 1 && t.extent(d) % blockShape[d] == 0,
                  "partitionIntoBlocks: block shape must divide extents");
    grid[d] = t.extent(d) / blockShape[d];
  }
  const Torus gridTopo = Torus::mesh(grid);
  std::vector<SubcubeView> out;
  out.reserve(static_cast<std::size_t>(gridTopo.numNodes()));
  for (NodeId g = 0; g < gridTopo.numNodes(); ++g) {
    const Coord gc = gridTopo.coordOf(g);
    Coord origin(gc.size(), 0);
    for (std::size_t d = 0; d < gc.size(); ++d) origin[d] = gc[d] * blockShape[d];
    out.emplace_back(t, origin, blockShape);
  }
  return out;
}

}  // namespace rahtm
