#include "topology/fattree.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace rahtm {

FatTree::FatTree(std::vector<int> downArity, std::vector<int> multiplicity)
    : downArity_(std::move(downArity)), multiplicity_(std::move(multiplicity)) {
  RAHTM_REQUIRE(!downArity_.empty(), "FatTree: need at least one level");
  RAHTM_REQUIRE(downArity_.size() == multiplicity_.size(),
                "FatTree: arity/multiplicity size mismatch");
  for (std::size_t k = 0; k < downArity_.size(); ++k) {
    RAHTM_REQUIRE(downArity_[k] >= 2, "FatTree: arity must be >= 2");
    RAHTM_REQUIRE(multiplicity_[k] >= 1, "FatTree: multiplicity must be >= 1");
  }
  groupSize_.resize(downArity_.size());
  for (std::size_t k = 0; k < downArity_.size(); ++k) {
    numNodes_ *= downArity_[k];
    groupSize_[k] = numNodes_;
  }
}

FatTree FatTree::uniform(int arity, int levels, bool fat) {
  std::vector<int> arities(static_cast<std::size_t>(levels), arity);
  std::vector<int> mult(static_cast<std::size_t>(levels), 1);
  if (fat) {
    int m = 1;
    for (int k = 0; k < levels; ++k) {
      mult[static_cast<std::size_t>(k)] = m;
      m *= 2;
    }
  }
  return FatTree(std::move(arities), std::move(mult));
}

int FatTree::downArity(int level) const {
  RAHTM_REQUIRE(level >= 0 && level < levels(), "downArity: bad level");
  return downArity_[static_cast<std::size_t>(level)];
}

int FatTree::multiplicity(int level) const {
  RAHTM_REQUIRE(level >= 0 && level < levels(), "multiplicity: bad level");
  return multiplicity_[static_cast<std::size_t>(level)];
}

std::int64_t FatTree::groupsAt(int level) const {
  RAHTM_REQUIRE(level >= 0 && level <= levels(), "groupsAt: bad level");
  if (level == 0) return numNodes_;
  return numNodes_ / groupSize_[static_cast<std::size_t>(level) - 1];
}

std::int64_t FatTree::groupOf(NodeId node, int level) const {
  RAHTM_REQUIRE(node >= 0 && node < numNodes_, "groupOf: bad node");
  RAHTM_REQUIRE(level >= 0 && level <= levels(), "groupOf: bad level");
  if (level == 0) return node;
  return node / groupSize_[static_cast<std::size_t>(level) - 1];
}

int FatTree::ncaLevel(NodeId a, NodeId b) const {
  for (int level = 0; level <= levels(); ++level) {
    if (groupOf(a, level) == groupOf(b, level)) return level;
  }
  RAHTM_REQUIRE(false, "ncaLevel: nodes share no ancestor (impossible)");
  return levels();
}

std::string FatTree::describe() const {
  std::ostringstream os;
  os << "fattree";
  for (std::size_t k = 0; k < downArity_.size(); ++k) {
    os << ' ' << downArity_[k] << ":" << multiplicity_[k];
  }
  os << " (" << numNodes_ << " nodes)";
  return os.str();
}

FatTreeLoads::FatTreeLoads(const FatTree& tree) : tree_(&tree) {
  up_.resize(static_cast<std::size_t>(tree.levels()));
  down_.resize(static_cast<std::size_t>(tree.levels()));
  for (int k = 0; k < tree.levels(); ++k) {
    // Bundles between level-k units and their level-(k+1) switch: one per
    // level-k unit; level-0 units are the compute nodes themselves.
    up_[static_cast<std::size_t>(k)]
        .assign(static_cast<std::size_t>(tree.groupsAt(k)), 0.0);
    down_[static_cast<std::size_t>(k)]
        .assign(static_cast<std::size_t>(tree.groupsAt(k)), 0.0);
  }
}

void FatTreeLoads::addFlow(NodeId src, NodeId dst, double volume) {
  if (src == dst || volume == 0) return;
  const int nca = tree_->ncaLevel(src, dst);
  for (int k = 0; k < nca; ++k) {
    up_[static_cast<std::size_t>(k)]
       [static_cast<std::size_t>(tree_->groupOf(src, k))] += volume;
    down_[static_cast<std::size_t>(k)]
         [static_cast<std::size_t>(tree_->groupOf(dst, k))] += volume;
  }
}

double FatTreeLoads::maxLinkLoad() const {
  double best = 0;
  for (int k = 0; k < tree_->levels(); ++k) {
    const double m = tree_->multiplicity(k);
    for (const double v : up_[static_cast<std::size_t>(k)]) {
      best = std::max(best, v / m);
    }
    for (const double v : down_[static_cast<std::size_t>(k)]) {
      best = std::max(best, v / m);
    }
  }
  return best;
}

double FatTreeLoads::levelVolume(int level) const {
  RAHTM_REQUIRE(level >= 0 && level < tree_->levels(),
                "levelVolume: bad level");
  double total = 0;
  for (const double v : up_[static_cast<std::size_t>(level)]) total += v;
  for (const double v : down_[static_cast<std::size_t>(level)]) total += v;
  return total;
}

}  // namespace rahtm
