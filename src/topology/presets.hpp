#pragma once
/// \file presets.hpp
/// Canonical topologies used throughout the experiments.

#include "topology/torus.hpp"

namespace rahtm {

/// The BG/Q partition the paper evaluates on: a 4x4x4x4x2 5D torus
/// (512 nodes). Dimensions are conventionally named A,B,C,D,E.
Torus bgqPartition512();

/// A scaled-down stand-in with the same structure (power-of-two extents,
/// one short dimension): 4x4x4x2 = 128 nodes.
Torus bgqPartition128();

/// The smallest 5D structure: 2x2x2x2x2 = 32 nodes.
Torus torus32();

/// Conventional names of the BG/Q torus dimensions.
inline constexpr const char* kBgqDimNames = "ABCDE";

}  // namespace rahtm
