#pragma once
/// \file torus.hpp
/// Mixed-radix k-ary n-torus / n-mesh topology model.
///
/// Nodes are identified by dense ids in row-major (last dimension fastest)
/// order of their coordinates. Directed channels are identified by
/// (node, dimension, direction) triples; a torus dimension of extent 2
/// contributes *two* physical channels between its node pair (the regular
/// and the wraparound link), which is exactly the "2-ary torus == 2-ary mesh
/// with double-wide links" equivalence the paper exploits in §III-C.

#include <cstdint>
#include <optional>
#include <string>

#include "common/small_vec.hpp"
#include "common/types.hpp"

namespace rahtm {

/// Direction along a dimension: +1 ("plus") or -1 ("minus").
enum class Dir : std::int8_t { Plus = 0, Minus = 1 };

inline Dir opposite(Dir d) { return d == Dir::Plus ? Dir::Minus : Dir::Plus; }
inline int dirStep(Dir d) { return d == Dir::Plus ? 1 : -1; }

/// Per-dimension description of the minimal route from a source to a
/// destination: number of hops, canonical direction, and whether the
/// opposite direction is equally minimal (torus tie at exactly k/2).
struct MinimalOffset {
  std::int32_t steps = 0;   ///< hops needed in this dimension
  Dir dir = Dir::Plus;      ///< canonical minimal direction
  bool tie = false;         ///< both directions minimal (steps == extent/2)
};

/// A mixed-radix torus or mesh (wraparound configurable per dimension).
class Torus {
 public:
  /// Torus with wraparound in every dimension.
  static Torus torus(const Shape& dims);
  /// Mesh (no wraparound in any dimension).
  static Torus mesh(const Shape& dims);
  /// Mixed: \p wrap[i] selects wraparound for dimension i.
  static Torus mixed(const Shape& dims, const SmallVec<std::uint8_t, kMaxDims>& wrap);

  std::size_t ndims() const { return dims_.size(); }
  std::int32_t extent(std::size_t dim) const { return dims_.at(dim); }
  const Shape& shape() const { return dims_; }
  bool wraps(std::size_t dim) const { return wrap_.at(dim) != 0; }
  std::int64_t numNodes() const { return numNodes_; }

  /// Dense node id of a coordinate (row-major, last dimension fastest).
  NodeId nodeId(const Coord& c) const;
  /// Coordinate of a node id.
  Coord coordOf(NodeId id) const;
  /// True iff every coordinate entry lies within the extents.
  bool contains(const Coord& c) const;

  /// Neighbor of \p c one step along \p dim in direction \p dir, or nullopt
  /// at a mesh boundary / in a degenerate (extent-1) dimension.
  std::optional<Coord> neighbor(const Coord& c, std::size_t dim, Dir dir) const;

  /// --- Directed channels -------------------------------------------------
  /// Channels are dense: id = (node * ndims + dim) * 2 + dir. Some ids are
  /// invalid (mesh boundaries, extent-1 dimensions); use channelValid().
  std::int64_t numChannelSlots() const {
    return numNodes_ * static_cast<std::int64_t>(ndims()) * 2;
  }
  ChannelId channelId(NodeId node, std::size_t dim, Dir dir) const;
  bool channelValid(NodeId node, std::size_t dim, Dir dir) const;
  /// Number of valid directed channels.
  std::int64_t numChannels() const;

  /// Decompose a channel id back into (node, dim, dir).
  struct ChannelRef {
    NodeId node;
    std::size_t dim;
    Dir dir;
  };
  ChannelRef channelRef(ChannelId id) const;
  /// Destination node of a (valid) channel.
  NodeId channelDst(ChannelId id) const;

  /// --- Minimal routing geometry -------------------------------------------
  /// Minimal per-dimension offset from \p src to \p dst along \p dim.
  MinimalOffset minimalOffset(const Coord& src, const Coord& dst,
                              std::size_t dim) const;
  /// Hop distance of a minimal route (sum of per-dimension steps).
  std::int32_t distance(const Coord& src, const Coord& dst) const;
  std::int32_t distance(NodeId src, NodeId dst) const;
  /// Largest possible hop distance in this topology (network diameter).
  std::int32_t diameter() const;

  /// Human-readable form, e.g. "torus 4x4x4x2".
  std::string describe() const;

  friend bool operator==(const Torus& a, const Torus& b) {
    return a.dims_ == b.dims_ && a.wrap_ == b.wrap_;
  }

 private:
  Torus(const Shape& dims, const SmallVec<std::uint8_t, kMaxDims>& wrap);

  Shape dims_;
  SmallVec<std::uint8_t, kMaxDims> wrap_;
  SmallVec<std::int64_t, kMaxDims> stride_;
  std::int64_t numNodes_ = 0;
};

}  // namespace rahtm
