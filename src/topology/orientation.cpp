#include "topology/orientation.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace rahtm {

Orientation Orientation::identity(std::size_t ndims) {
  Orientation o;
  o.perm.resize(ndims);
  o.flip.resize(ndims, 0);
  for (std::size_t i = 0; i < ndims; ++i) o.perm[i] = static_cast<std::int8_t>(i);
  return o;
}

bool Orientation::isIdentity() const {
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != static_cast<std::int8_t>(i) || flip[i] != 0) return false;
  }
  return true;
}

Coord Orientation::apply(const Coord& c, const Shape& shape) const {
  RAHTM_REQUIRE(c.size() == perm.size() && shape.size() == perm.size(),
                "Orientation::apply: dimension mismatch");
  Coord out(c.size(), 0);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const std::size_t src = static_cast<std::size_t>(perm[i]);
    const std::int32_t v = c[src];
    out[i] = flip[i] ? (shape[src] - 1 - v) : v;
  }
  return out;
}

Shape Orientation::applyToShape(const Shape& shape) const {
  RAHTM_REQUIRE(shape.size() == perm.size(),
                "Orientation::applyToShape: dimension mismatch");
  Shape out(shape.size(), 0);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    out[i] = shape[static_cast<std::size_t>(perm[i])];
  }
  return out;
}

Orientation Orientation::then(const Orientation& b) const {
  RAHTM_REQUIRE(perm.size() == b.perm.size(),
                "Orientation::then: dimension mismatch");
  // out[i] = b applied after *this:
  //   (a.then(b)).perm[i] = a.perm[b.perm[i]]
  //   flip combines xor, where b's flip acts on the intermediate dim.
  Orientation out;
  out.perm.resize(perm.size());
  out.flip.resize(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const auto mid = static_cast<std::size_t>(b.perm[i]);
    out.perm[i] = perm[mid];
    out.flip[i] = static_cast<std::uint8_t>(b.flip[i] ^ flip[mid]);
  }
  return out;
}

Orientation Orientation::inverse() const {
  Orientation out;
  out.perm.resize(perm.size());
  out.flip.resize(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const auto j = static_cast<std::size_t>(perm[i]);
    out.perm[j] = static_cast<std::int8_t>(i);
    out.flip[j] = flip[i];
  }
  return out;
}

std::string Orientation::describe() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (i) os << ' ';
    os << (flip[i] ? "-" : "+") << static_cast<int>(perm[i]);
  }
  os << ']';
  return os.str();
}

std::vector<Orientation> enumerateOrientations(const Shape& shape) {
  const std::size_t n = shape.size();
  // Enumerate permutations that only exchange equal-extent dimensions.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);

  std::vector<Orientation> out;
  std::vector<std::int8_t> perm(n);
  std::vector<bool> used(n, false);

  // Depth-first over positions; at each position try every unused source
  // dimension with a matching extent.
  auto rec = [&](auto&& self, std::size_t pos) -> void {
    if (pos == n) {
      // Expand flips over non-degenerate dimensions.
      SmallVec<std::size_t, kMaxDims> flippable;
      for (std::size_t i = 0; i < n; ++i) {
        if (shape[static_cast<std::size_t>(perm[i])] > 1) flippable.push_back(i);
      }
      const std::size_t combos = std::size_t{1} << flippable.size();
      for (std::size_t mask = 0; mask < combos; ++mask) {
        Orientation o;
        o.perm.resize(n);
        o.flip.resize(n, 0);
        for (std::size_t i = 0; i < n; ++i) o.perm[i] = perm[i];
        for (std::size_t b = 0; b < flippable.size(); ++b) {
          if (mask & (std::size_t{1} << b)) o.flip[flippable[b]] = 1;
        }
        out.push_back(o);
      }
      return;
    }
    for (std::size_t src = 0; src < n; ++src) {
      if (used[src] || shape[src] != shape[pos]) continue;
      used[src] = true;
      perm[pos] = static_cast<std::int8_t>(src);
      self(self, pos + 1);
      used[src] = false;
    }
  };
  rec(rec, 0);
  return out;
}

std::int64_t countOrientations(const Shape& shape) {
  // Product over extent-groups of (group size)! times 2^(non-degenerate dims).
  std::int64_t permCount = 1;
  for (std::size_t i = 0; i < shape.size(); ++i) {
    // multiplicity of shape[i] among dims [0..i]
    std::int64_t m = 0;
    for (std::size_t j = 0; j <= i; ++j) {
      if (shape[j] == shape[i]) ++m;
    }
    permCount *= m;
  }
  std::int64_t flips = 1;
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] > 1) flips *= 2;
  }
  return permCount * flips;
}

}  // namespace rahtm
