#pragma once
/// \file orientation.hpp
/// Signed-permutation symmetries ("rotations and reorientations", §III-D).
///
/// The merge phase of RAHTM reorients mapped blocks inside their slot of the
/// parent subcube. For a 2-ary n-cube these symmetries form the
/// hyperoctahedral group B_n with |B_n| = 2^n · n!. For general block shapes
/// only dimensions of equal extent may be permuted, and only dimensions with
/// extent > 1 contribute a flip, so degenerate dimensions do not inflate the
/// search space.

#include <cstdint>
#include <string>
#include <vector>

#include "common/small_vec.hpp"

namespace rahtm {

/// A signed permutation acting on coordinates within a block of a given
/// shape: output coordinate i reads input dimension perm[i], optionally
/// mirrored (flip) within that dimension's extent.
struct Orientation {
  SmallVec<std::int8_t, kMaxDims> perm;   ///< perm[i] = source dim of target dim i
  SmallVec<std::uint8_t, kMaxDims> flip;  ///< flip[i] = mirror target dim i

  std::size_t ndims() const { return perm.size(); }

  /// The identity orientation on \p ndims dimensions.
  static Orientation identity(std::size_t ndims);

  bool isIdentity() const;

  /// Apply to a local coordinate within a block of shape \p shape
  /// (shape is the block shape *before* the orientation is applied).
  Coord apply(const Coord& c, const Shape& shape) const;

  /// Shape of the block after applying this orientation.
  Shape applyToShape(const Shape& shape) const;

  /// Composition: (a.then(b)) applies a first, then b. Requires that the
  /// intermediate shape is valid for b.
  Orientation then(const Orientation& b) const;

  /// Inverse orientation (apply(inverse().apply(c)) == c).
  Orientation inverse() const;

  std::string describe() const;

  friend bool operator==(const Orientation& a, const Orientation& b) {
    return a.perm == b.perm && a.flip == b.flip;
  }
};

/// Enumerate every orientation that maps a block of shape \p shape onto
/// itself: permutations within groups of equal-extent dimensions, times
/// mirror flips of non-degenerate dimensions. For a 2-ary n-cube this is
/// the full hyperoctahedral group (2^n · n! elements).
std::vector<Orientation> enumerateOrientations(const Shape& shape);

/// Number of orientations enumerateOrientations() would return.
std::int64_t countOrientations(const Shape& shape);

}  // namespace rahtm
