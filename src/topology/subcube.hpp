#pragma once
/// \file subcube.hpp
/// Axis-aligned sub-blocks of a torus. RAHTM's hierarchy decomposes the
/// machine into nested subcubes; each subproblem is solved on the subcube's
/// local mesh (the wraparound edges of the full torus do not exist inside a
/// proper sub-block, which is what makes the C3 minimality constraint of the
/// MILP valid — §III-C).

#include <vector>

#include "topology/torus.hpp"

namespace rahtm {

/// A view of the axis-aligned block [origin, origin + extent) of a parent
/// torus. Local coordinates are 0-based within the block.
class SubcubeView {
 public:
  SubcubeView(const Torus& parent, const Coord& origin, const Shape& extent);

  const Torus& parent() const { return *parent_; }
  const Coord& origin() const { return origin_; }
  const Shape& extent() const { return extent_; }
  std::int64_t numNodes() const;

  /// Local coordinate -> parent coordinate.
  Coord toParent(const Coord& local) const;
  /// Parent coordinate -> local coordinate; requires containment.
  Coord toLocal(const Coord& parentCoord) const;
  /// True iff the parent coordinate lies inside this block.
  bool containsParent(const Coord& parentCoord) const;

  /// Local node id (row-major within the block) of a local coordinate.
  NodeId localNodeId(const Coord& local) const;
  Coord localCoordOf(NodeId local) const;

  /// Parent node id of a local node id.
  NodeId parentNodeOf(NodeId local) const;

  /// The block as a standalone topology. A dimension keeps wraparound only
  /// if the block spans the parent's full (wrapped) extent in it; every
  /// proper sub-dimension becomes a mesh dimension.
  Torus localTopology() const;

 private:
  const Torus* parent_;
  Coord origin_;
  Shape extent_;
  Torus local_;
};

/// Partition \p t into a grid of equally-shaped blocks of shape
/// \p blockShape. Every extent must divide evenly. Blocks are returned in
/// row-major order of their grid position.
std::vector<SubcubeView> partitionIntoBlocks(const Torus& t,
                                             const Shape& blockShape);

}  // namespace rahtm
