#include "topology/torus.hpp"

#include <sstream>

#include "common/error.hpp"

namespace rahtm {

Torus::Torus(const Shape& dims, const SmallVec<std::uint8_t, kMaxDims>& wrap)
    : dims_(dims), wrap_(wrap) {
  RAHTM_REQUIRE(!dims.empty(), "Torus: need at least one dimension");
  RAHTM_REQUIRE(dims.size() == wrap.size(), "Torus: dims/wrap size mismatch");
  numNodes_ = 1;
  stride_.resize(dims.size());
  for (std::size_t d = 0; d < dims.size(); ++d) {
    RAHTM_REQUIRE(dims[d] >= 1, "Torus: extents must be positive");
  }
  // Row-major: last dimension has stride 1.
  for (std::size_t d = dims.size(); d-- > 0;) {
    stride_[d] = numNodes_;
    numNodes_ *= dims[d];
  }
}

Torus Torus::torus(const Shape& dims) {
  SmallVec<std::uint8_t, kMaxDims> wrap(dims.size(), 1);
  return Torus(dims, wrap);
}

Torus Torus::mesh(const Shape& dims) {
  SmallVec<std::uint8_t, kMaxDims> wrap(dims.size(), 0);
  return Torus(dims, wrap);
}

Torus Torus::mixed(const Shape& dims,
                   const SmallVec<std::uint8_t, kMaxDims>& wrap) {
  return Torus(dims, wrap);
}

NodeId Torus::nodeId(const Coord& c) const {
  RAHTM_REQUIRE(contains(c), "nodeId: coordinate out of range");
  std::int64_t id = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) id += c[d] * stride_[d];
  return static_cast<NodeId>(id);
}

Coord Torus::coordOf(NodeId id) const {
  RAHTM_REQUIRE(id >= 0 && id < numNodes_, "coordOf: node id out of range");
  Coord c(dims_.size(), 0);
  std::int64_t rest = id;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    c[d] = static_cast<std::int32_t>(rest / stride_[d]);
    rest %= stride_[d];
  }
  return c;
}

bool Torus::contains(const Coord& c) const {
  if (c.size() != dims_.size()) return false;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (c[d] < 0 || c[d] >= dims_[d]) return false;
  }
  return true;
}

std::optional<Coord> Torus::neighbor(const Coord& c, std::size_t dim,
                                     Dir dir) const {
  RAHTM_REQUIRE(dim < dims_.size(), "neighbor: bad dimension");
  const std::int32_t k = dims_[dim];
  if (k == 1) return std::nullopt;
  Coord n = c;
  std::int32_t x = c[dim] + dirStep(dir);
  if (x < 0 || x >= k) {
    if (!wraps(dim)) return std::nullopt;
    x = (x + k) % k;
  }
  n[dim] = x;
  return n;
}

ChannelId Torus::channelId(NodeId node, std::size_t dim, Dir dir) const {
  RAHTM_REQUIRE(node >= 0 && node < numNodes_, "channelId: bad node");
  RAHTM_REQUIRE(dim < dims_.size(), "channelId: bad dimension");
  return (static_cast<std::int64_t>(node) * static_cast<std::int64_t>(ndims()) +
          static_cast<std::int64_t>(dim)) *
             2 +
         static_cast<std::int64_t>(dir);
}

bool Torus::channelValid(NodeId node, std::size_t dim, Dir dir) const {
  return neighbor(coordOf(node), dim, dir).has_value();
}

std::int64_t Torus::numChannels() const {
  std::int64_t count = 0;
  for (NodeId n = 0; n < numNodes_; ++n) {
    const Coord c = coordOf(n);
    for (std::size_t d = 0; d < ndims(); ++d) {
      if (neighbor(c, d, Dir::Plus)) ++count;
      if (neighbor(c, d, Dir::Minus)) ++count;
    }
  }
  return count;
}

Torus::ChannelRef Torus::channelRef(ChannelId id) const {
  RAHTM_REQUIRE(id >= 0 && id < numChannelSlots(), "channelRef: bad channel");
  const auto dir = static_cast<Dir>(id & 1);
  const std::int64_t rest = id >> 1;
  const auto dim = static_cast<std::size_t>(rest % static_cast<std::int64_t>(ndims()));
  const auto node = static_cast<NodeId>(rest / static_cast<std::int64_t>(ndims()));
  return ChannelRef{node, dim, dir};
}

NodeId Torus::channelDst(ChannelId id) const {
  const ChannelRef ref = channelRef(id);
  const auto n = neighbor(coordOf(ref.node), ref.dim, ref.dir);
  RAHTM_REQUIRE(n.has_value(), "channelDst: invalid channel");
  return nodeId(*n);
}

MinimalOffset Torus::minimalOffset(const Coord& src, const Coord& dst,
                                   std::size_t dim) const {
  RAHTM_REQUIRE(dim < dims_.size(), "minimalOffset: bad dimension");
  RAHTM_REQUIRE(contains(src) && contains(dst), "minimalOffset: bad coords");
  const std::int32_t k = dims_[dim];
  const std::int32_t delta = dst[dim] - src[dim];
  MinimalOffset off;
  if (delta == 0) return off;
  if (!wraps(dim)) {
    off.steps = delta > 0 ? delta : -delta;
    off.dir = delta > 0 ? Dir::Plus : Dir::Minus;
    return off;
  }
  const std::int32_t fwd = ((delta % k) + k) % k;  // hops going Plus
  const std::int32_t bwd = k - fwd;                // hops going Minus
  if (fwd < bwd) {
    off.steps = fwd;
    off.dir = Dir::Plus;
  } else if (bwd < fwd) {
    off.steps = bwd;
    off.dir = Dir::Minus;
  } else {  // exactly k/2: both directions are minimal
    off.steps = fwd;
    off.dir = Dir::Plus;
    off.tie = true;
  }
  return off;
}

std::int32_t Torus::distance(const Coord& src, const Coord& dst) const {
  std::int32_t hops = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    hops += minimalOffset(src, dst, d).steps;
  }
  return hops;
}

std::int32_t Torus::distance(NodeId src, NodeId dst) const {
  return distance(coordOf(src), coordOf(dst));
}

std::int32_t Torus::diameter() const {
  std::int32_t d = 0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    d += wraps(i) ? dims_[i] / 2 : dims_[i] - 1;
  }
  return d;
}

std::string Torus::describe() const {
  std::ostringstream os;
  bool allWrap = true;
  bool noneWrap = true;
  for (std::size_t d = 0; d < ndims(); ++d) {
    (wraps(d) ? noneWrap : allWrap) = false;
  }
  os << (allWrap ? "torus " : (noneWrap ? "mesh " : "mixed "));
  for (std::size_t d = 0; d < ndims(); ++d) {
    if (d) os << 'x';
    os << dims_[d];
    if (!allWrap && !noneWrap) os << (wraps(d) ? "t" : "m");
  }
  return os.str();
}

}  // namespace rahtm
