#pragma once
/// \file fattree.hpp
/// Fat-tree topology and channel-load model — the §VI applicability claim:
/// "leaf-level topology partitions can be other structures such as trees
/// ... RAHTM can be extended to other topologies like fat-trees".
///
/// The machine is a tree of switch levels above the compute nodes. Level k
/// groups `downArity[k]` level-(k-1) units under one switch, connected by a
/// bundle of `multiplicity[k]` parallel links (1 = tapered tree; larger
/// values fatten the upper levels; doubling per level approximates the
/// classic non-blocking fat-tree). Routing is the standard up/down
/// nearest-common-ancestor scheme with uniform spreading across each
/// bundle's parallel links, so per-physical-link expected loads — and the
/// MCL — have a closed form, exactly mirroring the torus MAR model.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rahtm {

class FatTree {
 public:
  /// \p downArity[k] = children per level-(k+1) switch (k = 0 names the
  /// leaf level grouping compute nodes); \p multiplicity[k] = parallel
  /// links in each level-(k+1) bundle. Both lists share one length (the
  /// number of switch levels).
  FatTree(std::vector<int> downArity, std::vector<int> multiplicity);

  /// Convenience: constant-arity tree of the given depth; multiplicities
  /// all 1 (a "skinny" tapered tree) or doubling per level ("fat").
  static FatTree uniform(int arity, int levels, bool fat);

  int levels() const { return static_cast<int>(downArity_.size()); }
  std::int64_t numNodes() const { return numNodes_; }
  int downArity(int level) const;
  int multiplicity(int level) const;

  /// Number of level-\p level groups (level 0 = compute nodes).
  std::int64_t groupsAt(int level) const;
  /// Group of \p node at \p level (level 0 returns the node itself).
  std::int64_t groupOf(NodeId node, int level) const;
  /// Lowest level at which two nodes share a group (0 iff equal).
  int ncaLevel(NodeId a, NodeId b) const;

  std::string describe() const;

 private:
  std::vector<int> downArity_;
  std::vector<int> multiplicity_;
  std::vector<std::int64_t> groupSize_;  // nodes per level-(k+1) group
  std::int64_t numNodes_ = 1;
};

/// Per-bundle loads under up/down (nearest-common-ancestor) routing.
/// A flow with NCA at level L climbs the up bundle of its source-side
/// group at levels 1..L and descends the down bundles on the destination
/// side.
class FatTreeLoads {
 public:
  explicit FatTreeLoads(const FatTree& tree);

  /// Accumulate a flow of \p volume from node \p src to node \p dst.
  void addFlow(NodeId src, NodeId dst, double volume);

  /// Maximum per-physical-link load (bundle load / bundle multiplicity).
  double maxLinkLoad() const;
  /// Total volume crossing the bundles of \p level (diagnostics).
  double levelVolume(int level) const;

 private:
  const FatTree* tree_;
  // up_[k][g] / down_[k][g]: bundle between level-k group g and its parent
  // switch (k from 0 = compute-node uplinks... we index by child level).
  std::vector<std::vector<double>> up_;
  std::vector<std::vector<double>> down_;
};

}  // namespace rahtm
