#include "simnet/simulator.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/spin_barrier.hpp"
#include "exec/thread_pool.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heartbeat.hpp"
#include "obs/json.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/delta_eval.hpp"
#include "routing/route_cache.hpp"

namespace rahtm::simnet {

namespace {

struct Packet {
  std::int32_t flits;
  NodeId dst;
  std::int64_t readyCycle;  ///< first cycle this packet may transmit
  std::int32_t msgId;       ///< owning message (for dependency tracking)
};

enum class QueueKind : std::uint8_t { Link, Injection, Local };

struct Queue {
  std::deque<Packet> packets;
  std::int64_t flitsQueued = 0;   ///< total flits waiting (adaptivity signal)
  std::int32_t headProgress = 0;  ///< flits of the head packet already sent
  QueueKind kind = QueueKind::Link;
  NodeId node = kInvalidNode;     ///< owning node (Injection/Local) ...
  NodeId linkDst = kInvalidNode;  ///< ... or downstream node (Link)
  bool inActiveList = false;
  std::int64_t flitsCarried = 0;  ///< stats: flits transmitted on this queue
};

struct MessageState {
  RankId src;
  RankId dst;
  std::int32_t stage;
  std::int64_t flitsLeft;
  bool local;
};

/// A packet that completed its current queue and needs a routing decision
/// at node `at` (Injection/Link handoff). Produced by the drain phase,
/// consumed by the destination shard's route phase.
struct Handoff {
  Packet pkt;
  NodeId at;
};

/// A message's flits arriving at their destination this cycle. Produced by
/// the drain phase, consumed serially so rank advancement stays in one
/// deterministic global order.
struct Delivery {
  std::int32_t msgId;
  std::int32_t flits;
};

/// Per-shard mutable state, cache-line separated so neighbouring shards
/// driven by different workers do not false-share.
struct alignas(64) Shard {
  std::vector<std::ptrdiff_t> active;  ///< queue indices with packets waiting
  std::vector<Delivery> deliveries;    ///< this cycle's arrivals, drain order
  Rng rng{0};                          ///< pre-split adaptive tie-break stream
  std::int64_t networkFlits = 0;
  std::int64_t localFlits = 0;
  std::int64_t flitHops = 0;
};

/// One (src shard -> dst shard) mailbox, padded like Shard: during the
/// route phase adjacent boxes are drained by different workers.
struct alignas(64) Mailbox {
  std::vector<Handoff> box;
};

/// Multi-stage network simulation with per-rank stage dependencies.
/// A single stage degenerates to barrier semantics (simulatePhase).
///
/// Parallel cycle stepping (DESIGN.md §12): the queue array is sharded by a
/// contiguous node partition whose shard count depends only on the topology
/// — never on the thread count — and every simulated cycle runs as three
/// phases separated by spin barriers:
///
///   A. drain   (parallel, shard-local): each shard transmits from its own
///      queues. Completed packets become Handoffs in per-(src,dst)-shard
///      mailboxes or Deliveries in the shard's arrival list; no queue
///      outside the shard is read or written.
///   B. route   (parallel, shard-local): each shard consumes its incoming
///      mailboxes in source-shard index order, making routing decisions
///      (which read only this shard's queue occupancies and consume only
///      this shard's pre-split RNG stream) and enqueueing locally.
///   C. deliver (serial): arrivals are applied in shard index order — rank
///      stage advancement and the resulting injections happen in one global
///      deterministic order.
///
/// Work only moves across shards through the index-order-merged mailboxes
/// and the serial delivery phase, so the PhaseResult is bit-identical for
/// every worker count, including 1 (where the barriers degenerate to a few
/// uncontended atomic operations).
///
/// Deliberate semantic refinement over the old single-pass loop: adaptive
/// routing decisions for packets handed off in cycle t observe queue
/// occupancies after cycle t's drain (phase B follows phase A) instead of a
/// processing-order-dependent mid-drain snapshot, and a message's packets
/// released at phase start are interleaved round-robin with co-located
/// ranks' packets at the shared NIC (see loadStages).
class IterationSim {
 public:
  IterationSim(const Torus& topo, const Mapping& mapping,
               const SimConfig& config)
      : topo_(topo), mapping_(mapping), cfg_(config) {
    RAHTM_REQUIRE(cfg_.bytesPerFlit > 0 && cfg_.packetFlits > 0 &&
                      cfg_.localBandwidth > 0 && cfg_.injectionBandwidth > 0,
                  "SimConfig: parameters must be positive");
    const std::size_t slots = static_cast<std::size_t>(topo.numChannelSlots());
    const std::size_t nodes = static_cast<std::size_t>(topo.numNodes());
    queues_.resize(slots + 2 * nodes);
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
      const Coord c = topo.coordOf(n);
      for (std::size_t d = 0; d < topo.ndims(); ++d) {
        for (const Dir dir : {Dir::Plus, Dir::Minus}) {
          const auto nb = topo.neighbor(c, d, dir);
          if (!nb) continue;
          Queue& q = queues_[static_cast<std::size_t>(topo.channelId(n, d, dir))];
          q.kind = QueueKind::Link;
          q.node = n;
          q.linkDst = topo.nodeId(*nb);
        }
      }
      queues_[slots + static_cast<std::size_t>(n)].kind = QueueKind::Injection;
      queues_[slots + static_cast<std::size_t>(n)].node = n;
      queues_[slots + nodes + static_cast<std::size_t>(n)].kind = QueueKind::Local;
      queues_[slots + nodes + static_cast<std::size_t>(n)].node = n;
    }
    slots_ = slots;
    nodes_ = nodes;

    // Shard layout: a balanced contiguous node partition. The shard count
    // is a pure function of the topology — thread counts only decide how
    // shards are distributed over workers, never where state lives or in
    // which order it merges.
    shardCount_ = static_cast<int>(std::min<std::size_t>(kMaxShards, nodes));
    shardCount_ = std::max(shardCount_, 1);
    shardOfNode_.resize(nodes);
    for (std::size_t n = 0; n < nodes; ++n) {
      shardOfNode_[n] = static_cast<std::int32_t>(
          n * static_cast<std::size_t>(shardCount_) / nodes);
    }
    shardOfQueue_.resize(queues_.size());
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      const std::size_t owner =
          i < slots_ ? i / (topo_.ndims() * 2)
                     : (i < slots_ + nodes_ ? i - slots_ : i - slots_ - nodes_);
      shardOfQueue_[i] = shardOfNode_[owner];
    }
    shards_.resize(static_cast<std::size_t>(shardCount_));
    mail_.resize(static_cast<std::size_t>(shardCount_) *
                 static_cast<std::size_t>(shardCount_));
    // Pre-split one RNG stream per shard: shard s's draws are consumed only
    // by routing decisions made at shard s's nodes, in mailbox merge order.
    Rng root(cfg_.seed);
    for (Shard& s : shards_) s.rng = root.split();

    // Telemetry hooks are resolved once here: sampling inside the cycle
    // loop must not pay the registry lookup per cycle.
    if (obs::MetricsRegistry* reg = obs::metrics()) {
      hQueue_ = &reg->histogram("simnet.link_queue_flits",
                                obs::expBuckets(1, 2, 16));
      hChan_ = &reg->histogram("simnet.link_channel_flits",
                               obs::expBuckets(16, 2, 24));
    }
    accountBytes();
  }

  PhaseResult run(const std::vector<Phase>& stages) {
    obs::ScopedSpan span(obs::tracer(), "simnet.run", "simnet");
    obs::PhaseScope phase("simnet.run");
    span.attr("stages", static_cast<std::int64_t>(stages.size()));
    loadStages(stages);
    if (cfg_.linkCapture != nullptr) {
      cfg_.linkCapture->channels.clear();
      cfg_.linkCapture->samples.clear();
      cfg_.linkCapture->sampleCycles = cfg_.statSampleCycles;
    }
    sampling_ = (hQueue_ != nullptr || cfg_.linkCapture != nullptr) &&
                cfg_.statSampleCycles > 0;

    // Worker count: bounded by the shard count, and forced to 1 when we are
    // already inside a pool region (a nested parallelFor runs inline on one
    // thread, which would deadlock the barrier).
    int requested = cfg_.pool != nullptr
                        ? cfg_.pool->numThreads()
                        : exec::ThreadPool::resolveThreads(cfg_.threads);
    if (exec::ThreadPool::inParallelRegion()) requested = 1;
    workers_ = std::max(1, std::min(requested, shardCount_));
    barrier_.emplace(workers_);

    cycle_ = 0;
    done_ = false;
    if (remaining_ <= 0) {
      done_ = true;
    } else {
      if (sampling_) sampleQueueOccupancy(0);
      liveness(0);
    }
    const auto body = [this](std::size_t w) { workerBody(static_cast<int>(w)); };
    if (workers_ > 1 && cfg_.pool != nullptr) {
      if (!cfg_.pool->tryGang(static_cast<std::size_t>(workers_), body)) {
        // The shared pool cannot supply a true gang right now (another
        // region in flight). Degrade to one participant — same result,
        // since work partition and merge order never depend on workers_.
        workers_ = 1;
        barrier_.emplace(1);
        workerBody(0);
      }
    } else if (workers_ > 1) {
      exec::ThreadPool own(workers_);
      own.parallelFor(static_cast<std::size_t>(workers_), body);
    } else {
      workerBody(0);
    }
    span.attr("sim_workers", static_cast<std::int64_t>(workers_));
    if (error_) std::rethrow_exception(error_);
    accountBytes();  // mailbox / active-list growth during the run

    PhaseResult result;
    result.cycles = cycle_;
    for (const Shard& s : shards_) {
      result.networkFlits += s.networkFlits;
      result.localFlits += s.localFlits;
      result.flitHops += s.flitHops;
    }
    // Closing occupancy sample: the loop samples only on statSampleCycles
    // boundaries, which misses the endgame drain (and leaves sub-period
    // runs with just the cycle-0 point). One final observation at the
    // makespan closes the series before stats are finalized.
    if (sampling_) sampleQueueOccupancy(cycle_);
    double maxCh = 0;
    double sumCh = 0;
    std::int64_t validCh = 0;
    result.dimFlits.assign(topo_.ndims(), 0.0);
    for (std::size_t i = 0; i < slots_; ++i) {
      const Queue& q = queues_[i];
      if (q.linkDst == kInvalidNode) continue;
      ++validCh;
      sumCh += static_cast<double>(q.flitsCarried);
      maxCh = std::max(maxCh, static_cast<double>(q.flitsCarried));
      // Channel ids are laid out (node * ndims + dim) * 2 + dir.
      result.dimFlits[(i >> 1) % topo_.ndims()] +=
          static_cast<double>(q.flitsCarried);
      if (hChan_) hChan_->observe(static_cast<double>(q.flitsCarried));
      if (cfg_.linkCapture != nullptr) {
        ChannelLoad cl;
        cl.src = q.node;
        cl.dst = q.linkDst;
        cl.dim = static_cast<std::int32_t>((i >> 1) % topo_.ndims());
        cl.dir = static_cast<std::int32_t>(i & 1);
        cl.flits = q.flitsCarried;
        cfg_.linkCapture->channels.push_back(cl);
      }
    }
    result.maxChannelFlits = maxCh;
    result.avgChannelFlits = validCh ? sumCh / static_cast<double>(validCh) : 0;
    span.attr("cycles", result.cycles);
    span.attr("network_flits", result.networkFlits);
    span.attr("max_channel_flits", result.maxChannelFlits);
    if (obs::MetricsRegistry* reg = obs::metrics()) {
      reg->counter("simnet.runs").add(1);
      reg->counter("simnet.cycles").add(result.cycles);
      reg->counter("simnet.network_flits").add(result.networkFlits);
      reg->counter("simnet.local_flits").add(result.localFlits);
      reg->counter("simnet.flit_hops").add(result.flitHops);
      for (std::size_t d = 0; d < result.dimFlits.size(); ++d) {
        reg->gauge("simnet.dim_flits." + std::to_string(d))
            .set(result.dimFlits[d]);
      }
    }
    return result;
  }

 private:
  static constexpr std::size_t kMaxShards = 16;

  /// A packet staged during the phase-0 release, before the per-queue
  /// round-robin merge (see loadStages).
  struct StagedPacket {
    std::ptrdiff_t queue;  ///< target queue index
    std::int32_t seq;      ///< position within its rank's train for `queue`
    Packet pkt;
  };

  void loadStages(const std::vector<Phase>& stages) {
    const auto ranks = static_cast<std::size_t>(mapping_.numRanks());
    numStages_ = static_cast<std::int32_t>(stages.size());
    messages_.clear();
    sentBy_.assign(ranks, {});
    pendingSend_.assign(ranks, std::vector<std::int32_t>(stages.size(), 0));
    pendingRecv_.assign(ranks, std::vector<std::int32_t>(stages.size(), 0));
    rankStage_.assign(ranks, -1);
    remaining_ = 0;

    for (std::size_t s = 0; s < stages.size(); ++s) {
      for (const Message& msg : stages[s]) {
        RAHTM_REQUIRE(msg.src >= 0 && msg.src < mapping_.numRanks() &&
                          msg.dst >= 0 && msg.dst < mapping_.numRanks(),
                      "simulate: message rank out of range");
        RAHTM_REQUIRE(msg.bytes >= 0, "simulate: negative message size");
        const NodeId srcNode = mapping_.nodeOf(msg.src);
        const NodeId dstNode = mapping_.nodeOf(msg.dst);
        RAHTM_REQUIRE(srcNode >= 0 && srcNode < static_cast<NodeId>(nodes_) &&
                          dstNode >= 0 && dstNode < static_cast<NodeId>(nodes_),
                      "simulate: rank mapped off-topology");
        MessageState m;
        m.src = msg.src;
        m.dst = msg.dst;
        m.stage = static_cast<std::int32_t>(s);
        m.flitsLeft = std::max<std::int64_t>(
            1, (msg.bytes + cfg_.bytesPerFlit - 1) / cfg_.bytesPerFlit);
        m.local = (srcNode == dstNode);
        const auto id = static_cast<std::int32_t>(messages_.size());
        messages_.push_back(m);
        sentBy_[static_cast<std::size_t>(msg.src)].push_back(id);
        ++pendingSend_[static_cast<std::size_t>(msg.src)][s];
        ++pendingRecv_[static_cast<std::size_t>(msg.dst)][s];
        remaining_ += m.flitsLeft;  // counted in flits for simplicity
      }
    }

    // Release stage 0 for every rank (cascades past empty stages). The
    // packets are first staged per rank, then co-located ranks' trains are
    // merged round-robin per shared queue — packet k of every rank before
    // packet k+1 of any — so ranks sharing a node share the NIC fairly
    // instead of rank r's entire train queueing ahead of rank r+1's.
    loading_ = true;
    staged_.clear();
    for (std::size_t r = 0; r < ranks; ++r) {
      stagedSeqInj_ = 0;
      stagedSeqLoc_ = 0;
      advanceRank(static_cast<RankId>(r), -1);
    }
    loading_ = false;
    std::stable_sort(staged_.begin(), staged_.end(),
                     [](const StagedPacket& a, const StagedPacket& b) {
                       if (a.queue != b.queue) return a.queue < b.queue;
                       return a.seq < b.seq;
                     });
    for (const StagedPacket& sp : staged_) enqueue(sp.queue, sp.pkt, -1);
    staged_.clear();
    // Post-load is the queue population's high-water mark for typical
    // phases (every released packet is enqueued, nothing has drained yet).
    accountBytes();
  }

  /// Recompute the footprint charged to the simnet account: the sharded
  /// queue array with its live packets, mailboxes, message table and
  /// per-rank dependency state. Called at construction, after stage
  /// loading and at end-of-run — never inside the cycle loop.
  void accountBytes() {
    std::size_t b = queues_.capacity() * sizeof(Queue);
    for (const Queue& q : queues_) b += q.packets.size() * sizeof(Packet);
    b += shardOfNode_.capacity() * sizeof(std::int32_t) +
         shardOfQueue_.capacity() * sizeof(std::int32_t) +
         shards_.capacity() * sizeof(Shard) + mail_.capacity() * sizeof(Mailbox);
    for (const Shard& s : shards_) {
      b += s.active.capacity() * sizeof(std::ptrdiff_t) +
           s.deliveries.capacity() * sizeof(Delivery);
    }
    for (const Mailbox& mb : mail_) b += mb.box.capacity() * sizeof(Handoff);
    b += messages_.capacity() * sizeof(MessageState) +
         rankStage_.capacity() * sizeof(std::int32_t) +
         staged_.capacity() * sizeof(StagedPacket);
    for (const auto& v : sentBy_) b += v.capacity() * sizeof(std::int32_t);
    for (const auto& v : pendingSend_) b += v.capacity() * sizeof(std::int32_t);
    for (const auto& v : pendingRecv_) b += v.capacity() * sizeof(std::int32_t);
    b += (sentBy_.capacity() + pendingSend_.capacity() +
          pendingRecv_.capacity()) *
         sizeof(std::vector<std::int32_t>);
    mem_.set(static_cast<std::int64_t>(b));
  }

  /// Inject every stage-\p s message of \p rank.
  void injectRank(RankId rank, std::int32_t s, std::int64_t cycle) {
    const NodeId node = mapping_.nodeOf(rank);
    for (const std::int32_t id : sentBy_[static_cast<std::size_t>(rank)]) {
      const MessageState& m = messages_[static_cast<std::size_t>(id)];
      if (m.stage != s) continue;
      const std::ptrdiff_t qIdx =
          m.local ? static_cast<std::ptrdiff_t>(slots_ + nodes_ +
                                                static_cast<std::size_t>(node))
                  : static_cast<std::ptrdiff_t>(slots_ +
                                                static_cast<std::size_t>(node));
      std::int64_t flits = m.flitsLeft;
      const NodeId dstNode = mapping_.nodeOf(m.dst);
      while (flits > 0) {
        const auto p = static_cast<std::int32_t>(
            std::min<std::int64_t>(flits, cfg_.packetFlits));
        if (loading_) {
          std::int32_t& seq = m.local ? stagedSeqLoc_ : stagedSeqInj_;
          staged_.push_back(StagedPacket{qIdx, seq++, Packet{p, dstNode, 0, id}});
        } else {
          enqueue(qIdx, Packet{p, dstNode, 0, id}, cycle);
        }
        flits -= p;
      }
    }
  }

  /// Advance \p rank past every stage whose sends and receives are done.
  void advanceRank(RankId rank, std::int64_t cycle) {
    auto& stage = rankStage_[static_cast<std::size_t>(rank)];
    while (stage + 1 < numStages_) {
      if (stage >= 0) {
        const auto s = static_cast<std::size_t>(stage);
        if (pendingSend_[static_cast<std::size_t>(rank)][s] > 0 ||
            pendingRecv_[static_cast<std::size_t>(rank)][s] > 0) {
          return;
        }
      }
      ++stage;
      injectRank(rank, stage, cycle);
    }
  }

  void enqueue(std::ptrdiff_t qIdx, Packet pkt, std::int64_t cycle) {
    Queue& q = queues_[static_cast<std::size_t>(qIdx)];
    pkt.readyCycle = cycle + 1;
    q.flitsQueued += pkt.flits;
    q.packets.push_back(pkt);
    if (!q.inActiveList) {
      q.inActiveList = true;
      shards_[static_cast<std::size_t>(
                  shardOfQueue_[static_cast<std::size_t>(qIdx)])]
          .active.push_back(qIdx);
    }
  }

  /// Pick the output channel queue at \p at for a packet headed to \p dst,
  /// drawing tie-break randomness from \p rng (the owning shard's stream).
  std::size_t chooseOutput(NodeId at, NodeId dst, Rng& rng) {
    const Coord ca = topo_.coordOf(at);
    const Coord cd = topo_.coordOf(dst);

    SmallVec<std::size_t, 2 * kMaxDims> candidates;
    SmallVec<std::int32_t, 2 * kMaxDims> steps;
    for (std::size_t d = 0; d < topo_.ndims(); ++d) {
      const MinimalOffset off = topo_.minimalOffset(ca, cd, d);
      if (off.steps == 0) continue;
      if (cfg_.routing == RoutingMode::DimensionOrder) {
        return static_cast<std::size_t>(topo_.channelId(at, d, off.dir));
      }
      for (const Dir dir : {off.dir, opposite(off.dir)}) {
        if (dir != off.dir && !off.tie) continue;
        candidates.push_back(
            static_cast<std::size_t>(topo_.channelId(at, d, dir)));
        steps.push_back(off.steps);
      }
    }
    RAHTM_REQUIRE(!candidates.empty(), "chooseOutput: no productive channel");

    if (cfg_.routing == RoutingMode::UniformMinimal) {
      // Sample the next hop with probability proportional to the number of
      // minimal paths continuing through it; tie directions split their
      // dimension's weight evenly.
      double weightSum = 0;
      SmallVec<double, 2 * kMaxDims> weight(candidates.size(), 0);
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        int share = 0;
        for (std::size_t j = 0; j < candidates.size(); ++j) {
          if ((candidates[i] >> 1) % topo_.ndims() ==
              (candidates[j] >> 1) % topo_.ndims()) {
            ++share;
          }
        }
        weight[i] = static_cast<double>(steps[i]) / share;
        weightSum += weight[i];
      }
      double pick = rng.nextDouble() * weightSum;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        pick -= weight[i];
        if (pick <= 0) return candidates[i];
      }
      return candidates.back();
    }

    // MinimalAdaptive: least-occupied candidate, uniform random tie-break
    // (without it every packet herds onto the first dimension while queues
    // are still empty).
    std::size_t best = SIZE_MAX;
    std::int64_t bestOcc = 0;
    std::size_t tieCount = 0;
    for (const std::size_t idx : candidates) {
      const std::int64_t occ = queues_[idx].flitsQueued;
      if (best == SIZE_MAX || occ < bestOcc) {
        best = idx;
        bestOcc = occ;
        tieCount = 1;
      } else if (occ == bestOcc) {
        ++tieCount;
        if (rng.nextBounded(tieCount) == 0) best = idx;  // reservoir pick
      }
    }
    return best;
  }

  void deliverFlits(std::int32_t msgId, std::int32_t flits,
                    std::int64_t cycle) {
    remaining_ -= flits;
    MessageState& m = messages_[static_cast<std::size_t>(msgId)];
    m.flitsLeft -= flits;
    RAHTM_REQUIRE(m.flitsLeft >= 0, "simulate: over-delivered message");
    if (m.flitsLeft == 0) {
      const auto s = static_cast<std::size_t>(m.stage);
      --pendingSend_[static_cast<std::size_t>(m.src)][s];
      --pendingRecv_[static_cast<std::size_t>(m.dst)][s];
      advanceRank(m.src, cycle);
      if (m.dst != m.src) advanceRank(m.dst, cycle);
    }
  }

  /// Observe the occupancy of every valid link queue (telemetry sample),
  /// into the histogram and/or the link-capture time series.
  void sampleQueueOccupancy(std::int64_t cycle) {
    LinkLoadSample sample;
    sample.cycle = cycle;
    for (std::size_t i = 0; i < slots_; ++i) {
      const Queue& q = queues_[i];
      if (q.linkDst == kInvalidNode) continue;
      if (hQueue_ != nullptr) {
        hQueue_->observe(static_cast<double>(q.flitsQueued));
      }
      sample.queuedFlits += q.flitsQueued;
      sample.maxQueueFlits = std::max(sample.maxQueueFlits, q.flitsQueued);
      if (!q.packets.empty()) ++sample.activeLinks;
    }
    if (cfg_.linkCapture != nullptr) cfg_.linkCapture->samples.push_back(sample);
  }

  void liveness(std::int64_t c) {
    // Batched: one striped fetch_add per 64 cycles, a ring event per 4096.
    if ((c & 63) == 0) {
      obs::Heartbeats::instance().beat(obs::Pulse::SimnetCycles, 64);
      if ((c & 4095) == 0) {
        obs::FlightRecorder::instance().record(obs::FrEvent::SimnetEpoch, c,
                                               remaining_);
      }
    }
  }

  /// Phase A: transmit from this shard's active queues. Completed packets
  /// become mailbox handoffs or deliveries; no other shard's state is
  /// touched, so all shards drain concurrently.
  void drainShard(int s) {
    Shard& shard = shards_[static_cast<std::size_t>(s)];
    const std::int64_t cycle = cycle_;
    for (const std::ptrdiff_t idx : shard.active) {
      Queue& q = queues_[static_cast<std::size_t>(idx)];
      const std::int32_t bandwidth =
          q.kind == QueueKind::Local
              ? cfg_.localBandwidth
              : (q.kind == QueueKind::Injection ? cfg_.injectionBandwidth : 1);
      std::int32_t budget = bandwidth;
      while (budget > 0 && !q.packets.empty()) {
        Packet& head = q.packets.front();
        if (head.readyCycle > cycle) break;
        const std::int32_t send = std::min(budget, head.flits - q.headProgress);
        q.headProgress += send;
        budget -= send;
        q.flitsCarried += send;
        if (q.headProgress < head.flits) break;
        // Head packet fully transferred: hand it off.
        const Packet done = head;
        q.packets.pop_front();
        q.flitsQueued -= done.flits;
        q.headProgress = 0;
        switch (q.kind) {
          case QueueKind::Local:
            shard.localFlits += done.flits;
            shard.deliveries.push_back(Delivery{done.msgId, done.flits});
            break;
          case QueueKind::Injection:
          case QueueKind::Link: {
            const NodeId here =
                q.kind == QueueKind::Injection ? q.node : q.linkDst;
            if (q.kind == QueueKind::Link) {
              shard.flitHops += done.flits;
            } else {
              shard.networkFlits += done.flits;
            }
            if (here == done.dst) {
              shard.deliveries.push_back(Delivery{done.msgId, done.flits});
            } else {
              mail_[static_cast<std::size_t>(s) *
                        static_cast<std::size_t>(shardCount_) +
                    static_cast<std::size_t>(
                        shardOfNode_[static_cast<std::size_t>(here)])]
                  .box.push_back(Handoff{done, here});
            }
            break;
          }
        }
      }
    }
    // Compact the active list (drop drained queues). Nothing enqueues into
    // this shard during phase A, so the list is exactly what was drained.
    std::size_t w = 0;
    for (std::size_t a = 0; a < shard.active.size(); ++a) {
      Queue& q = queues_[static_cast<std::size_t>(shard.active[a])];
      if (q.packets.empty()) {
        q.inActiveList = false;
      } else {
        shard.active[w++] = shard.active[a];
      }
    }
    shard.active.resize(w);
  }

  /// Phase B: consume this shard's incoming mailboxes in source-shard index
  /// order, routing each packet at its arrival node. Occupancy reads, RNG
  /// draws and enqueues all stay within this shard.
  void routeShard(int t) {
    Shard& shard = shards_[static_cast<std::size_t>(t)];
    const std::int64_t cycle = cycle_;
    for (int s = 0; s < shardCount_; ++s) {
      auto& box = mail_[static_cast<std::size_t>(s) *
                            static_cast<std::size_t>(shardCount_) +
                        static_cast<std::size_t>(t)]
                      .box;
      for (const Handoff& h : box) {
        const std::size_t out = chooseOutput(h.at, h.pkt.dst, shard.rng);
        enqueue(static_cast<std::ptrdiff_t>(out), h.pkt, cycle);
      }
      box.clear();
    }
  }

  /// Phase C (worker 0 only): apply arrivals in shard index order, advance
  /// the cycle, and prepare the next cycle's bookkeeping.
  void serialTail() {
    if (!aborted_.load(std::memory_order_relaxed)) {
      try {
        for (Shard& s : shards_) {
          for (const Delivery& d : s.deliveries) {
            deliverFlits(d.msgId, d.flits, cycle_);
          }
          s.deliveries.clear();
        }
      } catch (...) {
        recordError();
      }
    }
    ++cycle_;
    if (aborted_.load(std::memory_order_relaxed) || remaining_ <= 0) {
      done_ = true;
      return;
    }
    try {
      RAHTM_REQUIRE(cycle_ < cfg_.maxCycles,
                    "simulate: cycle guard exceeded (livelock?)");
    } catch (...) {
      recordError();
      done_ = true;
      return;
    }
    if (sampling_ && cycle_ % cfg_.statSampleCycles == 0) {
      sampleQueueOccupancy(cycle_);
    }
    liveness(cycle_);
  }

  void recordError() {
    std::lock_guard<std::mutex> lk(errMu_);
    if (!error_) error_ = std::current_exception();
    aborted_.store(true, std::memory_order_relaxed);
  }

  /// The per-worker cycle loop. Worker w owns shards {w, w+W, w+2W, ...};
  /// `done_`/`cycle_` are written only in the serial phase and every read
  /// is separated from that write by a barrier crossing.
  void workerBody(int w) {
    for (;;) {
      barrier_->arriveAndWait();
      if (done_) break;
      if (!aborted_.load(std::memory_order_relaxed)) {
        try {
          for (int s = w; s < shardCount_; s += workers_) drainShard(s);
        } catch (...) {
          recordError();
        }
      }
      barrier_->arriveAndWait();
      if (!aborted_.load(std::memory_order_relaxed)) {
        try {
          for (int t = w; t < shardCount_; t += workers_) routeShard(t);
        } catch (...) {
          recordError();
        }
      }
      barrier_->arriveAndWait();
      if (w == 0) serialTail();
    }
  }

  const Torus& topo_;
  const Mapping& mapping_;
  SimConfig cfg_;
  std::vector<Queue> queues_;
  std::size_t slots_ = 0;
  std::size_t nodes_ = 0;

  int shardCount_ = 1;
  std::vector<std::int32_t> shardOfNode_;
  std::vector<std::int32_t> shardOfQueue_;
  std::vector<Shard> shards_;
  std::vector<Mailbox> mail_;  ///< [srcShard * shardCount_ + dstShard]

  std::vector<MessageState> messages_;
  std::vector<std::vector<std::int32_t>> sentBy_;
  std::vector<std::vector<std::int32_t>> pendingSend_;
  std::vector<std::vector<std::int32_t>> pendingRecv_;
  std::vector<std::int32_t> rankStage_;
  std::int32_t numStages_ = 0;
  std::int64_t remaining_ = 0;  ///< undelivered flits

  bool loading_ = false;  ///< stage-0 release: defer enqueues into staged_
  std::vector<StagedPacket> staged_;
  obs::MemAccount mem_{obs::MemAccountId::Simnet};
  std::int32_t stagedSeqInj_ = 0;
  std::int32_t stagedSeqLoc_ = 0;

  // Cycle-loop state. Written by worker 0's serial phase, read by every
  // worker strictly after a barrier crossing.
  std::int64_t cycle_ = 0;
  bool done_ = false;
  bool sampling_ = false;
  int workers_ = 1;
  std::optional<exec::SpinBarrier> barrier_;
  std::atomic<bool> aborted_{false};
  std::mutex errMu_;
  std::exception_ptr error_;

  // Telemetry (null when no metrics registry is installed).
  obs::Histogram* hQueue_ = nullptr;
  obs::Histogram* hChan_ = nullptr;
};

/// Flow-level analytic estimate (SimFidelity::Flow): route every message
/// through the uniform-minimal RouteTable decomposition — the same MAR path
/// weights the mapper optimizes against — and charge each stage the binding
/// bottleneck instead of stepping cycles:
///
///   stage cycles = max( busiest channel's expected flits,
///                       busiest NIC's injected flits / injectionBandwidth,
///                       busiest local port's flits / localBandwidth,
///                       longest single-message store-and-forward latency )
///
/// Stages are summed (barrier semantics): the per-rank pipelining the cycle
/// sim models across stages is deliberately ignored, which biases the
/// estimate high on multi-stage runs. Conservation quantities
/// (networkFlits, localFlits, flitHops, dimFlits) are exact because every
/// minimal route crosses the same per-dimension hop counts; cycles and
/// per-channel loads are estimates gated against the cycle sim by the
/// `simnet_micro` ledger.
PhaseResult runFlow(const Torus& topo, const Mapping& mapping,
                    const std::vector<Phase>& stages, const SimConfig& cfg) {
  RAHTM_REQUIRE(cfg.bytesPerFlit > 0 && cfg.packetFlits > 0 &&
                    cfg.localBandwidth > 0 && cfg.injectionBandwidth > 0,
                "SimConfig: parameters must be positive");
  obs::ScopedSpan span(obs::tracer(), "simnet.flow", "simnet");
  obs::PhaseScope phase("simnet.flow");
  span.attr("stages", static_cast<std::int64_t>(stages.size()));

  const auto nodes = static_cast<std::size_t>(topo.numNodes());
  const auto slots = static_cast<std::size_t>(topo.numChannelSlots());
  // Route source: the mapper's shared tiered cache when the caller passed
  // one for this topology (pairs it already touched are free here), else a
  // private lazy table holding only the pairs that actually communicate.
  TieredRouteCache* cacheRt =
      cfg.routeCache != nullptr && cfg.routeCache->topology() == topo
          ? cfg.routeCache.get()
          : nullptr;
  RouteScratch tierScratch;
  RouteTable routes(topo);  // lazy: only pairs that actually communicate
  std::vector<double> total(slots, 0.0);
  std::vector<double> stage(slots, 0.0);
  std::vector<ChannelId> touched;
  std::vector<std::int64_t> inj(nodes, 0);
  std::vector<std::int64_t> loc(nodes, 0);
  const auto ceilDiv = [](std::int64_t a, std::int64_t b) {
    return (a + b - 1) / b;
  };

  PhaseResult r;
  r.dimFlits.assign(topo.ndims(), 0.0);
  for (const Phase& ph : stages) {
    std::fill(inj.begin(), inj.end(), 0);
    std::fill(loc.begin(), loc.end(), 0);
    std::int64_t maxLat = 0;
    for (const Message& msg : ph) {
      RAHTM_REQUIRE(msg.src >= 0 && msg.src < mapping.numRanks() &&
                        msg.dst >= 0 && msg.dst < mapping.numRanks(),
                    "simulate: message rank out of range");
      RAHTM_REQUIRE(msg.bytes >= 0, "simulate: negative message size");
      const NodeId srcNode = mapping.nodeOf(msg.src);
      const NodeId dstNode = mapping.nodeOf(msg.dst);
      RAHTM_REQUIRE(srcNode >= 0 && srcNode < static_cast<NodeId>(nodes) &&
                        dstNode >= 0 && dstNode < static_cast<NodeId>(nodes),
                    "simulate: rank mapped off-topology");
      const std::int64_t flits = std::max<std::int64_t>(
          1, (msg.bytes + cfg.bytesPerFlit - 1) / cfg.bytesPerFlit);
      if (srcNode == dstNode) {
        loc[static_cast<std::size_t>(srcNode)] += flits;
        r.localFlits += flits;
        maxLat = std::max(maxLat, ceilDiv(flits, cfg.localBandwidth));
        continue;
      }
      inj[static_cast<std::size_t>(srcNode)] += flits;
      r.networkFlits += flits;
      const std::int32_t dist = topo.distance(srcNode, dstNode);
      r.flitHops += flits * dist;
      const RouteTable::Span route =
          cacheRt != nullptr ? cacheRt->read(srcNode, dstNode, tierScratch)
                             : routes.get(srcNode, dstNode);
      for (std::size_t k = 0; k < route.size; ++k) {
        const auto c = static_cast<std::size_t>(route.channels[k]);
        if (stage[c] == 0.0) touched.push_back(route.channels[k]);
        stage[c] += route.fracs[k] * static_cast<double>(flits);
      }
      // Store-and-forward critical path of the message alone: full
      // serialization through the NIC, then the trailing packet crosses
      // dist links at one flit per cycle per link.
      maxLat = std::max(maxLat,
                        ceilDiv(flits, cfg.injectionBandwidth) +
                            static_cast<std::int64_t>(dist) *
                                std::min<std::int64_t>(cfg.packetFlits, flits));
    }
    double chBound = 0;
    for (const ChannelId c : touched) {
      chBound = std::max(chBound, stage[static_cast<std::size_t>(c)]);
    }
    std::int64_t injBound = 0;
    std::int64_t locBound = 0;
    for (std::size_t n = 0; n < nodes; ++n) {
      if (inj[n] > 0) {
        injBound = std::max(injBound, ceilDiv(inj[n], cfg.injectionBandwidth));
      }
      if (loc[n] > 0) {
        locBound = std::max(locBound, ceilDiv(loc[n], cfg.localBandwidth));
      }
    }
    std::int64_t stageCycles =
        static_cast<std::int64_t>(std::ceil(chBound));
    stageCycles = std::max({stageCycles, injBound, locBound, maxLat});
    r.cycles += stageCycles;
    for (const ChannelId c : touched) {
      total[static_cast<std::size_t>(c)] += stage[static_cast<std::size_t>(c)];
      stage[static_cast<std::size_t>(c)] = 0.0;
    }
    touched.clear();
  }

  if (cfg.linkCapture != nullptr) {
    cfg.linkCapture->channels.clear();
    cfg.linkCapture->samples.clear();  // no time series without cycles
    cfg.linkCapture->sampleCycles = 0;
  }
  double maxCh = 0;
  double sumCh = 0;
  std::int64_t validCh = 0;
  for (NodeId n = 0; n < topo.numNodes(); ++n) {
    for (std::size_t d = 0; d < topo.ndims(); ++d) {
      for (const Dir dir : {Dir::Plus, Dir::Minus}) {
        if (!topo.channelValid(n, d, dir)) continue;
        const ChannelId id = topo.channelId(n, d, dir);
        const double load = total[static_cast<std::size_t>(id)];
        ++validCh;
        sumCh += load;
        maxCh = std::max(maxCh, load);
        r.dimFlits[d] += load;
        if (cfg.linkCapture != nullptr) {
          ChannelLoad cl;
          cl.src = n;
          cl.dst = topo.channelDst(id);
          cl.dim = static_cast<std::int32_t>(d);
          cl.dir = dir == Dir::Plus ? 0 : 1;
          cl.flits = static_cast<std::int64_t>(std::llround(load));
          cfg.linkCapture->channels.push_back(cl);
        }
      }
    }
  }
  r.maxChannelFlits = maxCh;
  r.avgChannelFlits = validCh ? sumCh / static_cast<double>(validCh) : 0;
  span.attr("cycles", r.cycles);
  span.attr("max_channel_flits", r.maxChannelFlits);
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->counter("simnet.flow_runs").add(1);
    reg->counter("simnet.flow_cycles").add(r.cycles);
    // Conservation quantities are exact in flow mode (only cycle counts
    // are approximate), so record them under the same names the cycle
    // engine uses — telemetry consumers need not care about fidelity.
    reg->counter("simnet.network_flits").add(r.networkFlits);
    reg->counter("simnet.local_flits").add(r.localFlits);
    reg->counter("simnet.flit_hops").add(r.flitHops);
    for (std::size_t d = 0; d < r.dimFlits.size(); ++d) {
      reg->gauge("simnet.dim_flits." + std::to_string(d))
          .set(r.dimFlits[d]);
    }
  }
  return r;
}

}  // namespace

void writeLinkHeatmapJson(std::ostream& os, const Torus& topo,
                          const LinkLoadCapture& capture) {
  os << "{\n";
  os << "  \"schema\": \"rahtm.simnet.link_heatmap/v1\",\n";
  os << "  \"topology\": " << obs::jsonString(topo.describe()) << ",\n";
  os << "  \"shape\": [";
  for (std::size_t d = 0; d < topo.ndims(); ++d) {
    if (d != 0) os << ", ";
    os << topo.extent(d);
  }
  os << "],\n";
  os << "  \"sample_cycles\": " << obs::jsonInt(capture.sampleCycles) << ",\n";
  os << "  \"channels\": [";
  for (std::size_t i = 0; i < capture.channels.size(); ++i) {
    const ChannelLoad& c = capture.channels[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"src\": " << obs::jsonInt(c.src) << ", \"src_coord\": [";
    const Coord sc = topo.coordOf(c.src);
    for (std::size_t d = 0; d < sc.size(); ++d) {
      if (d != 0) os << ", ";
      os << static_cast<int>(sc[d]);
    }
    os << "], \"dst\": " << obs::jsonInt(c.dst)
       << ", \"dim\": " << obs::jsonInt(c.dim)
       << ", \"dir\": " << obs::jsonString(c.dir == 0 ? "+" : "-")
       << ", \"flits\": " << obs::jsonInt(c.flits) << "}";
  }
  os << "\n  ],\n";
  os << "  \"occupancy\": [";
  for (std::size_t i = 0; i < capture.samples.size(); ++i) {
    const LinkLoadSample& s = capture.samples[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"cycle\": " << obs::jsonInt(s.cycle)
       << ", \"queued_flits\": " << obs::jsonInt(s.queuedFlits)
       << ", \"max_queue_flits\": " << obs::jsonInt(s.maxQueueFlits)
       << ", \"active_links\": " << obs::jsonInt(s.activeLinks) << "}";
  }
  os << "\n  ]\n}\n";
}

PhaseResult simulatePhase(const Torus& topo, const Mapping& mapping,
                          const Phase& phase, const SimConfig& config) {
  RAHTM_REQUIRE(mapping.complete(), "simulatePhase: incomplete mapping");
  if (config.fidelity == SimFidelity::Flow) {
    return runFlow(topo, mapping, {phase}, config);
  }
  IterationSim sim(topo, mapping, config);
  return sim.run({phase});
}

PhaseResult simulateIteration(const Torus& topo, const Mapping& mapping,
                              const std::vector<Phase>& stages,
                              const SimConfig& config) {
  RAHTM_REQUIRE(mapping.complete(), "simulateIteration: incomplete mapping");
  if (config.fidelity == SimFidelity::Flow) {
    return runFlow(topo, mapping, stages, config);
  }
  IterationSim sim(topo, mapping, config);
  return sim.run(stages);
}

}  // namespace rahtm::simnet
