#include "simnet/simulator.hpp"

#include <algorithm>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heartbeat.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rahtm::simnet {

namespace {

struct Packet {
  std::int32_t flits;
  NodeId dst;
  std::int64_t readyCycle;  ///< first cycle this packet may transmit
  std::int32_t msgId;       ///< owning message (for dependency tracking)
};

enum class QueueKind : std::uint8_t { Link, Injection, Local };

struct Queue {
  std::deque<Packet> packets;
  std::int64_t flitsQueued = 0;   ///< total flits waiting (adaptivity signal)
  std::int32_t headProgress = 0;  ///< flits of the head packet already sent
  QueueKind kind = QueueKind::Link;
  NodeId node = kInvalidNode;     ///< owning node (Injection/Local) ...
  NodeId linkDst = kInvalidNode;  ///< ... or downstream node (Link)
  bool inActiveList = false;
  std::int64_t flitsCarried = 0;  ///< stats: flits transmitted on this queue
};

struct MessageState {
  RankId src;
  RankId dst;
  std::int32_t stage;
  std::int64_t flitsLeft;
  bool local;
};

/// Multi-stage network simulation with per-rank stage dependencies.
/// A single stage degenerates to barrier semantics (simulatePhase).
class IterationSim {
 public:
  IterationSim(const Torus& topo, const Mapping& mapping,
               const SimConfig& config)
      : topo_(topo), mapping_(mapping), cfg_(config), rng_(config.seed) {
    RAHTM_REQUIRE(cfg_.bytesPerFlit > 0 && cfg_.packetFlits > 0 &&
                      cfg_.localBandwidth > 0 && cfg_.injectionBandwidth > 0,
                  "SimConfig: parameters must be positive");
    const std::size_t slots = static_cast<std::size_t>(topo.numChannelSlots());
    const std::size_t nodes = static_cast<std::size_t>(topo.numNodes());
    queues_.resize(slots + 2 * nodes);
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
      const Coord c = topo.coordOf(n);
      for (std::size_t d = 0; d < topo.ndims(); ++d) {
        for (const Dir dir : {Dir::Plus, Dir::Minus}) {
          const auto nb = topo.neighbor(c, d, dir);
          if (!nb) continue;
          Queue& q = queues_[static_cast<std::size_t>(topo.channelId(n, d, dir))];
          q.kind = QueueKind::Link;
          q.node = n;
          q.linkDst = topo.nodeId(*nb);
        }
      }
      queues_[slots + static_cast<std::size_t>(n)].kind = QueueKind::Injection;
      queues_[slots + static_cast<std::size_t>(n)].node = n;
      queues_[slots + nodes + static_cast<std::size_t>(n)].kind = QueueKind::Local;
      queues_[slots + nodes + static_cast<std::size_t>(n)].node = n;
    }
    slots_ = slots;
    nodes_ = nodes;
    // Telemetry hooks are resolved once here: sampling inside step() must
    // not pay the registry lookup per cycle.
    if (obs::MetricsRegistry* reg = obs::metrics()) {
      hQueue_ = &reg->histogram("simnet.link_queue_flits",
                                obs::expBuckets(1, 2, 16));
      hChan_ = &reg->histogram("simnet.link_channel_flits",
                               obs::expBuckets(16, 2, 24));
    }
  }

  PhaseResult run(const std::vector<Phase>& stages) {
    obs::ScopedSpan span(obs::tracer(), "simnet.run", "simnet");
    obs::PhaseScope phase("simnet.run");
    span.attr("stages", static_cast<std::int64_t>(stages.size()));
    loadStages(stages);
    if (cfg_.linkCapture != nullptr) {
      cfg_.linkCapture->channels.clear();
      cfg_.linkCapture->samples.clear();
      cfg_.linkCapture->sampleCycles = cfg_.statSampleCycles;
    }
    PhaseResult result;
    std::int64_t cycle = 0;
    const bool sampling =
        (hQueue_ != nullptr || cfg_.linkCapture != nullptr) &&
        cfg_.statSampleCycles > 0;
    obs::Heartbeats& hb = obs::Heartbeats::instance();
    obs::FlightRecorder& fr = obs::FlightRecorder::instance();
    const auto liveness = [&](std::int64_t c) {
      // Batched: one striped fetch_add per 64 cycles, a ring event per 4096.
      if ((c & 63) == 0) {
        hb.beat(obs::Pulse::SimnetCycles, 64);
        if ((c & 4095) == 0) {
          fr.record(obs::FrEvent::SimnetEpoch, c, remaining_);
        }
      }
    };
    if (sampling) {
      while (remaining_ > 0) {
        RAHTM_REQUIRE(cycle < cfg_.maxCycles,
                      "simulate: cycle guard exceeded (livelock?)");
        if (cycle % cfg_.statSampleCycles == 0) sampleQueueOccupancy(cycle);
        liveness(cycle);
        step(cycle);
        ++cycle;
      }
    } else {
      // Telemetry off: keep the hot loop free of sampling branches.
      while (remaining_ > 0) {
        RAHTM_REQUIRE(cycle < cfg_.maxCycles,
                      "simulate: cycle guard exceeded (livelock?)");
        liveness(cycle);
        step(cycle);
        ++cycle;
      }
    }
    result.cycles = cycle;
    result.networkFlits = networkFlits_;
    result.localFlits = localFlits_;
    result.flitHops = flitHops_;
    double maxCh = 0;
    double sumCh = 0;
    std::int64_t validCh = 0;
    result.dimFlits.assign(topo_.ndims(), 0.0);
    for (std::size_t i = 0; i < slots_; ++i) {
      const Queue& q = queues_[i];
      if (q.linkDst == kInvalidNode) continue;
      ++validCh;
      sumCh += static_cast<double>(q.flitsCarried);
      maxCh = std::max(maxCh, static_cast<double>(q.flitsCarried));
      // Channel ids are laid out (node * ndims + dim) * 2 + dir.
      result.dimFlits[(i >> 1) % topo_.ndims()] +=
          static_cast<double>(q.flitsCarried);
      if (hChan_) hChan_->observe(static_cast<double>(q.flitsCarried));
      if (cfg_.linkCapture != nullptr) {
        ChannelLoad cl;
        cl.src = q.node;
        cl.dst = q.linkDst;
        cl.dim = static_cast<std::int32_t>((i >> 1) % topo_.ndims());
        cl.dir = static_cast<std::int32_t>(i & 1);
        cl.flits = q.flitsCarried;
        cfg_.linkCapture->channels.push_back(cl);
      }
    }
    result.maxChannelFlits = maxCh;
    result.avgChannelFlits = validCh ? sumCh / static_cast<double>(validCh) : 0;
    span.attr("cycles", result.cycles);
    span.attr("network_flits", result.networkFlits);
    span.attr("max_channel_flits", result.maxChannelFlits);
    if (obs::MetricsRegistry* reg = obs::metrics()) {
      reg->counter("simnet.runs").add(1);
      reg->counter("simnet.cycles").add(result.cycles);
      reg->counter("simnet.network_flits").add(result.networkFlits);
      reg->counter("simnet.local_flits").add(result.localFlits);
      reg->counter("simnet.flit_hops").add(result.flitHops);
      for (std::size_t d = 0; d < result.dimFlits.size(); ++d) {
        reg->gauge("simnet.dim_flits." + std::to_string(d))
            .set(result.dimFlits[d]);
      }
    }
    return result;
  }

 private:
  void loadStages(const std::vector<Phase>& stages) {
    const auto ranks = static_cast<std::size_t>(mapping_.numRanks());
    numStages_ = static_cast<std::int32_t>(stages.size());
    messages_.clear();
    sentBy_.assign(ranks, {});
    pendingSend_.assign(ranks, std::vector<std::int32_t>(stages.size(), 0));
    pendingRecv_.assign(ranks, std::vector<std::int32_t>(stages.size(), 0));
    rankStage_.assign(ranks, -1);
    remaining_ = 0;

    for (std::size_t s = 0; s < stages.size(); ++s) {
      for (const Message& msg : stages[s]) {
        RAHTM_REQUIRE(msg.src >= 0 && msg.src < mapping_.numRanks() &&
                          msg.dst >= 0 && msg.dst < mapping_.numRanks(),
                      "simulate: message rank out of range");
        RAHTM_REQUIRE(msg.bytes >= 0, "simulate: negative message size");
        const NodeId srcNode = mapping_.nodeOf(msg.src);
        const NodeId dstNode = mapping_.nodeOf(msg.dst);
        RAHTM_REQUIRE(srcNode >= 0 && srcNode < static_cast<NodeId>(nodes_) &&
                          dstNode >= 0 && dstNode < static_cast<NodeId>(nodes_),
                      "simulate: rank mapped off-topology");
        MessageState m;
        m.src = msg.src;
        m.dst = msg.dst;
        m.stage = static_cast<std::int32_t>(s);
        m.flitsLeft = std::max<std::int64_t>(
            1, (msg.bytes + cfg_.bytesPerFlit - 1) / cfg_.bytesPerFlit);
        m.local = (srcNode == dstNode);
        const auto id = static_cast<std::int32_t>(messages_.size());
        messages_.push_back(m);
        sentBy_[static_cast<std::size_t>(msg.src)].push_back(id);
        ++pendingSend_[static_cast<std::size_t>(msg.src)][s];
        ++pendingRecv_[static_cast<std::size_t>(msg.dst)][s];
        remaining_ += m.flitsLeft;  // counted in flits for simplicity
      }
    }

    // Release stage 0 for every rank (cascades past empty stages).
    // Interleave co-located ranks' initial packets round-robin so they
    // share the NIC fairly.
    for (std::size_t r = 0; r < ranks; ++r) advanceRank(static_cast<RankId>(r), -1);
  }

  /// Inject every stage-\p s message of \p rank.
  void injectRank(RankId rank, std::int32_t s, std::int64_t cycle) {
    const NodeId node = mapping_.nodeOf(rank);
    for (const std::int32_t id : sentBy_[static_cast<std::size_t>(rank)]) {
      const MessageState& m = messages_[static_cast<std::size_t>(id)];
      if (m.stage != s) continue;
      Queue& q = m.local ? queues_[slots_ + nodes_ + static_cast<std::size_t>(node)]
                         : queues_[slots_ + static_cast<std::size_t>(node)];
      std::int64_t flits = m.flitsLeft;
      const NodeId dstNode = mapping_.nodeOf(m.dst);
      while (flits > 0) {
        const auto p = static_cast<std::int32_t>(
            std::min<std::int64_t>(flits, cfg_.packetFlits));
        enqueue(q, Packet{p, dstNode, 0, id}, cycle);
        flits -= p;
      }
    }
  }

  /// Advance \p rank past every stage whose sends and receives are done.
  void advanceRank(RankId rank, std::int64_t cycle) {
    auto& stage = rankStage_[static_cast<std::size_t>(rank)];
    while (stage + 1 < numStages_) {
      if (stage >= 0) {
        const auto s = static_cast<std::size_t>(stage);
        if (pendingSend_[static_cast<std::size_t>(rank)][s] > 0 ||
            pendingRecv_[static_cast<std::size_t>(rank)][s] > 0) {
          return;
        }
      }
      ++stage;
      injectRank(rank, stage, cycle);
    }
  }

  void enqueue(Queue& q, Packet pkt, std::int64_t cycle) {
    pkt.readyCycle = cycle + 1;
    q.flitsQueued += pkt.flits;
    q.packets.push_back(pkt);
    if (!q.inActiveList) {
      q.inActiveList = true;
      active_.push_back(&q - queues_.data());
    }
  }

  /// Pick the output channel queue at \p at for a packet headed to \p dst.
  std::size_t chooseOutput(NodeId at, NodeId dst) {
    const Coord ca = topo_.coordOf(at);
    const Coord cd = topo_.coordOf(dst);

    SmallVec<std::size_t, 2 * kMaxDims> candidates;
    SmallVec<std::int32_t, 2 * kMaxDims> steps;
    for (std::size_t d = 0; d < topo_.ndims(); ++d) {
      const MinimalOffset off = topo_.minimalOffset(ca, cd, d);
      if (off.steps == 0) continue;
      if (cfg_.routing == RoutingMode::DimensionOrder) {
        return static_cast<std::size_t>(topo_.channelId(at, d, off.dir));
      }
      for (const Dir dir : {off.dir, opposite(off.dir)}) {
        if (dir != off.dir && !off.tie) continue;
        candidates.push_back(
            static_cast<std::size_t>(topo_.channelId(at, d, dir)));
        steps.push_back(off.steps);
      }
    }
    RAHTM_REQUIRE(!candidates.empty(), "chooseOutput: no productive channel");

    if (cfg_.routing == RoutingMode::UniformMinimal) {
      // Sample the next hop with probability proportional to the number of
      // minimal paths continuing through it; tie directions split their
      // dimension's weight evenly.
      double weightSum = 0;
      SmallVec<double, 2 * kMaxDims> weight(candidates.size(), 0);
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        int share = 0;
        for (std::size_t j = 0; j < candidates.size(); ++j) {
          if ((candidates[i] >> 1) % topo_.ndims() ==
              (candidates[j] >> 1) % topo_.ndims()) {
            ++share;
          }
        }
        weight[i] = static_cast<double>(steps[i]) / share;
        weightSum += weight[i];
      }
      double pick = rng_.nextDouble() * weightSum;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        pick -= weight[i];
        if (pick <= 0) return candidates[i];
      }
      return candidates.back();
    }

    // MinimalAdaptive: least-occupied candidate, uniform random tie-break
    // (without it every packet herds onto the first dimension while queues
    // are still empty).
    std::size_t best = SIZE_MAX;
    std::int64_t bestOcc = 0;
    std::size_t tieCount = 0;
    for (const std::size_t idx : candidates) {
      const std::int64_t occ = queues_[idx].flitsQueued;
      if (best == SIZE_MAX || occ < bestOcc) {
        best = idx;
        bestOcc = occ;
        tieCount = 1;
      } else if (occ == bestOcc) {
        ++tieCount;
        if (rng_.nextBounded(tieCount) == 0) best = idx;  // reservoir pick
      }
    }
    return best;
  }

  void deliverFlits(std::int32_t msgId, std::int32_t flits,
                    std::int64_t cycle) {
    remaining_ -= flits;
    MessageState& m = messages_[static_cast<std::size_t>(msgId)];
    m.flitsLeft -= flits;
    RAHTM_REQUIRE(m.flitsLeft >= 0, "simulate: over-delivered message");
    if (m.flitsLeft == 0) {
      const auto s = static_cast<std::size_t>(m.stage);
      --pendingSend_[static_cast<std::size_t>(m.src)][s];
      --pendingRecv_[static_cast<std::size_t>(m.dst)][s];
      advanceRank(m.src, cycle);
      if (m.dst != m.src) advanceRank(m.dst, cycle);
    }
  }

  /// Observe the occupancy of every valid link queue (telemetry sample),
  /// into the histogram and/or the link-capture time series.
  void sampleQueueOccupancy(std::int64_t cycle) {
    LinkLoadSample sample;
    sample.cycle = cycle;
    for (std::size_t i = 0; i < slots_; ++i) {
      const Queue& q = queues_[i];
      if (q.linkDst == kInvalidNode) continue;
      if (hQueue_ != nullptr) {
        hQueue_->observe(static_cast<double>(q.flitsQueued));
      }
      sample.queuedFlits += q.flitsQueued;
      sample.maxQueueFlits = std::max(sample.maxQueueFlits, q.flitsQueued);
      if (!q.packets.empty()) ++sample.activeLinks;
    }
    if (cfg_.linkCapture != nullptr) cfg_.linkCapture->samples.push_back(sample);
  }

  void step(std::int64_t cycle) {
    // Snapshot: queues activated during this cycle start next cycle.
    const std::size_t activeCount = active_.size();
    for (std::size_t a = 0; a < activeCount; ++a) {
      Queue& q = queues_[static_cast<std::size_t>(active_[a])];
      const std::int32_t bandwidth =
          q.kind == QueueKind::Local
              ? cfg_.localBandwidth
              : (q.kind == QueueKind::Injection ? cfg_.injectionBandwidth : 1);
      std::int32_t budget = bandwidth;
      while (budget > 0 && !q.packets.empty()) {
        Packet& head = q.packets.front();
        if (head.readyCycle > cycle) break;
        const std::int32_t send = std::min(budget, head.flits - q.headProgress);
        q.headProgress += send;
        budget -= send;
        q.flitsCarried += send;
        if (q.headProgress < head.flits) break;
        // Head packet fully transferred: hand it off.
        const Packet done = head;
        q.packets.pop_front();
        q.flitsQueued -= done.flits;
        q.headProgress = 0;
        switch (q.kind) {
          case QueueKind::Local:
            localFlits_ += done.flits;
            deliverFlits(done.msgId, done.flits, cycle);
            break;
          case QueueKind::Injection:
          case QueueKind::Link: {
            const NodeId here =
                q.kind == QueueKind::Injection ? q.node : q.linkDst;
            if (q.kind == QueueKind::Link) {
              flitHops_ += done.flits;
            } else {
              networkFlits_ += done.flits;
            }
            if (here == done.dst) {
              deliverFlits(done.msgId, done.flits, cycle);
            } else {
              enqueue(queues_[chooseOutput(here, done.dst)], done, cycle);
            }
            break;
          }
        }
      }
    }
    // Compact the active list (drop drained queues).
    std::size_t w = 0;
    for (std::size_t a = 0; a < active_.size(); ++a) {
      Queue& q = queues_[static_cast<std::size_t>(active_[a])];
      if (q.packets.empty()) {
        q.inActiveList = false;
      } else {
        active_[w++] = active_[a];
      }
    }
    active_.resize(w);
  }

  const Torus& topo_;
  const Mapping& mapping_;
  SimConfig cfg_;
  Rng rng_;
  std::vector<Queue> queues_;
  std::vector<std::ptrdiff_t> active_;
  std::size_t slots_ = 0;
  std::size_t nodes_ = 0;

  std::vector<MessageState> messages_;
  std::vector<std::vector<std::int32_t>> sentBy_;
  std::vector<std::vector<std::int32_t>> pendingSend_;
  std::vector<std::vector<std::int32_t>> pendingRecv_;
  std::vector<std::int32_t> rankStage_;
  std::int32_t numStages_ = 0;
  std::int64_t remaining_ = 0;  ///< undelivered flits

  std::int64_t networkFlits_ = 0;
  std::int64_t localFlits_ = 0;
  std::int64_t flitHops_ = 0;

  // Telemetry (null when no metrics registry is installed).
  obs::Histogram* hQueue_ = nullptr;
  obs::Histogram* hChan_ = nullptr;
};

}  // namespace

void writeLinkHeatmapJson(std::ostream& os, const Torus& topo,
                          const LinkLoadCapture& capture) {
  os << "{\n";
  os << "  \"schema\": \"rahtm.simnet.link_heatmap/v1\",\n";
  os << "  \"topology\": " << obs::jsonString(topo.describe()) << ",\n";
  os << "  \"shape\": [";
  for (std::size_t d = 0; d < topo.ndims(); ++d) {
    if (d != 0) os << ", ";
    os << topo.extent(d);
  }
  os << "],\n";
  os << "  \"sample_cycles\": " << obs::jsonInt(capture.sampleCycles) << ",\n";
  os << "  \"channels\": [";
  for (std::size_t i = 0; i < capture.channels.size(); ++i) {
    const ChannelLoad& c = capture.channels[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"src\": " << obs::jsonInt(c.src) << ", \"src_coord\": [";
    const Coord sc = topo.coordOf(c.src);
    for (std::size_t d = 0; d < sc.size(); ++d) {
      if (d != 0) os << ", ";
      os << static_cast<int>(sc[d]);
    }
    os << "], \"dst\": " << obs::jsonInt(c.dst)
       << ", \"dim\": " << obs::jsonInt(c.dim)
       << ", \"dir\": " << obs::jsonString(c.dir == 0 ? "+" : "-")
       << ", \"flits\": " << obs::jsonInt(c.flits) << "}";
  }
  os << "\n  ],\n";
  os << "  \"occupancy\": [";
  for (std::size_t i = 0; i < capture.samples.size(); ++i) {
    const LinkLoadSample& s = capture.samples[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"cycle\": " << obs::jsonInt(s.cycle)
       << ", \"queued_flits\": " << obs::jsonInt(s.queuedFlits)
       << ", \"max_queue_flits\": " << obs::jsonInt(s.maxQueueFlits)
       << ", \"active_links\": " << obs::jsonInt(s.activeLinks) << "}";
  }
  os << "\n  ]\n}\n";
}

PhaseResult simulatePhase(const Torus& topo, const Mapping& mapping,
                          const Phase& phase, const SimConfig& config) {
  RAHTM_REQUIRE(mapping.complete(), "simulatePhase: incomplete mapping");
  IterationSim sim(topo, mapping, config);
  return sim.run({phase});
}

PhaseResult simulateIteration(const Torus& topo, const Mapping& mapping,
                              const std::vector<Phase>& stages,
                              const SimConfig& config) {
  RAHTM_REQUIRE(mapping.complete(), "simulateIteration: incomplete mapping");
  IterationSim sim(topo, mapping, config);
  return sim.run(stages);
}

}  // namespace rahtm::simnet
