#pragma once
/// \file simulator.hpp
/// Cycle-level packet-switched torus network simulator.
///
/// This is the stand-in for the Mira BG/Q testbed (see DESIGN.md §1): a
/// k-ary n-torus with one router per node, per-output FIFO queues, links
/// transmitting one flit per cycle, and per-packet **minimal adaptive
/// routing** (each hop picks the least-occupied productive output, using
/// both directions of a dimension when the remaining offset is exactly half
/// the ring — the behaviour RAHTM's MAR approximation models). Processes
/// share their node's single injection link, so the concentration factor
/// creates realistic NIC contention; intra-node messages bypass the network
/// through a higher-bandwidth local port.
///
/// Simplifications (documented, deliberate):
///  * store-and-forward at packet granularity (bandwidth/contention faithful,
///    per-hop latency slightly pessimistic),
///  * unbounded router queues (ideal flow control — no deadlock machinery;
///    adaptivity senses congestion through queue occupancy).

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "mapping/mapping.hpp"
#include "simnet/message.hpp"
#include "topology/torus.hpp"

namespace rahtm {
class TieredRouteCache;  // routing/route_cache.hpp
}

namespace rahtm::exec {
class ThreadPool;
}

namespace rahtm::simnet {

/// Total traffic carried by one directed physical channel over a run.
struct ChannelLoad {
  NodeId src = kInvalidNode;      ///< upstream node
  NodeId dst = kInvalidNode;      ///< downstream node
  std::int32_t dim = 0;           ///< torus dimension of the link
  std::int32_t dir = 0;           ///< 0 = plus, 1 = minus
  std::int64_t flits = 0;         ///< flits transmitted
};

/// One time-bucketed observation of global queue occupancy.
struct LinkLoadSample {
  std::int64_t cycle = 0;
  std::int64_t queuedFlits = 0;     ///< flits waiting across all link queues
  std::int64_t maxQueueFlits = 0;   ///< deepest single link queue
  std::int32_t activeLinks = 0;     ///< link queues with packets waiting
};

/// Per-channel load matrix plus a time-bucketed occupancy series, captured
/// when SimConfig::linkCapture points here. This is the raw material behind
/// `--link-heatmap`: contention hot-spots become inspectable per link and
/// over time instead of only summarized as MCL / histogram aggregates.
struct LinkLoadCapture {
  std::vector<ChannelLoad> channels;    ///< every valid directed channel
  std::vector<LinkLoadSample> samples;  ///< one per statSampleCycles tick
  std::int64_t sampleCycles = 0;        ///< sampling period actually used
};

/// Serialize a capture as JSON (schema "rahtm.simnet.link_heatmap/v1"):
/// topology shape, per-channel load matrix (src/dst node + coordinates,
/// dimension, direction, flits), occupancy time series.
void writeLinkHeatmapJson(std::ostream& os, const Torus& topo,
                          const LinkLoadCapture& capture);

enum class RoutingMode {
  /// Per-hop least-occupied minimal output, ties broken uniformly at random
  /// (BG/Q-like dynamic routing; without random tie-breaking every packet
  /// herds onto the same dimension while queues are still empty).
  MinimalAdaptive,
  /// Per-hop random minimal output, chosen with probability proportional to
  /// the number of minimal paths continuing through it — samples minimal
  /// Manhattan paths uniformly, i.e. exactly the paper's MAR approximation.
  UniformMinimal,
  /// Deterministic e-cube routing.
  DimensionOrder,
};

/// The fidelity ladder (DESIGN.md §12). `Cycle` is the packet-switched
/// cycle-level simulation — the measurement of record. `Flow` is a
/// flow-level analytic estimate: messages are routed through the
/// uniform-minimal path weights (the same RouteTable decomposition the
/// mapper optimizes against) and the makespan is estimated from the
/// binding bottleneck (busiest channel, NIC injection, local port, or the
/// longest store-and-forward message latency) per stage — no per-cycle
/// stepping, so it is orders of magnitude cheaper. Conservation quantities
/// (networkFlits, localFlits, flitHops, dimFlits) are exact under any
/// minimal routing; cycles and per-channel loads are estimates whose error
/// against the cycle sim is bounded by the `simnet_micro` ledger gate.
enum class SimFidelity {
  Cycle,
  Flow,
};

struct SimConfig {
  std::int32_t bytesPerFlit = 32;
  std::int32_t packetFlits = 16;        ///< message segmentation unit
  std::int32_t localBandwidth = 8;      ///< intra-node flits per cycle
  /// NIC injection bandwidth in flits/cycle. BG/Q nodes feed 10 torus links
  /// from wide injection FIFOs, so experiments model injection faster than
  /// a single link (the default 1 keeps unit tests easy to hand-analyze).
  std::int32_t injectionBandwidth = 1;
  RoutingMode routing = RoutingMode::MinimalAdaptive;
  std::uint64_t seed = 0xbadc0ffee;     ///< adaptive tie-break randomness
  std::int64_t maxCycles = 500'000'000; ///< safety guard
  /// Telemetry sampling period: every this many cycles, the occupancy of
  /// each valid link queue is observed into the
  /// "simnet.link_queue_flits" histogram (when a metrics registry is
  /// installed, obs::setMetrics) and into linkCapture's occupancy series
  /// (when set); zero disables sampling.
  std::int64_t statSampleCycles = 1024;
  /// When non-null, the simulator fills this with the per-channel load
  /// matrix and the time-bucketed occupancy series (see LinkLoadCapture).
  /// The pointer must stay valid for the whole simulate* call; repeated
  /// runs overwrite the capture. Flow mode fills the channel matrix with
  /// the analytic expected loads and leaves the time series empty.
  LinkLoadCapture* linkCapture = nullptr;
  /// Which rung of the fidelity ladder to run (see SimFidelity).
  SimFidelity fidelity = SimFidelity::Cycle;
  /// Cycle-mode worker threads (0 = all hardware threads). The queue array
  /// is sharded by node partition with a fixed shard count, cross-shard
  /// packet handoffs travel through per-(src,dst)-shard mailboxes merged in
  /// index order, and each shard owns a pre-split RNG stream — the
  /// PhaseResult is bit-identical for every thread count, including 1.
  int threads = 1;
  /// Optional externally-owned pool to run cycle-mode workers on (must
  /// outlive the simulate* call). When null and threads > 1, the simulator
  /// spins up a private pool for the run.
  exec::ThreadPool* pool = nullptr;
  /// Optional route cache shared with the mapper (flow fidelity only; cycle
  /// mode routes hop by hop). When set and serving the simulated topology,
  /// flow mode reads routes from its tiers instead of rebuilding a private
  /// lazy table per simulate* call — identical route content either way.
  std::shared_ptr<TieredRouteCache> routeCache;
};

struct PhaseResult {
  std::int64_t cycles = 0;        ///< phase makespan
  std::int64_t networkFlits = 0;  ///< flits that crossed at least one link
  std::int64_t localFlits = 0;    ///< flits delivered via the local port
  std::int64_t flitHops = 0;      ///< total link traversals
  double maxChannelFlits = 0;     ///< busiest link's traffic (measured MCL)
  double avgChannelFlits = 0;     ///< mean traffic over valid links
  /// Link traffic summed per torus dimension (dimFlits[d] is the total
  /// flit-hops carried by dimension-d links) — the final load distribution.
  std::vector<double> dimFlits;
};

/// Simulate one communication phase to completion.
/// \p mapping must be complete and valid for \p topo.
PhaseResult simulatePhase(const Torus& topo, const Mapping& mapping,
                          const Phase& phase, const SimConfig& config);

/// Simulate a full iteration of multi-stage communication with *per-rank*
/// dependencies (MPI semantics): rank r may post its stage-s messages once
/// all of its own stage-(s-1) sends and receives have completed. There is
/// no global barrier, so ranks skew and stages overlap in the network —
/// the behaviour that makes optimizing the aggregate communication matrix
/// (as RAHTM and IPM-based profiling do) meaningful. Compare with calling
/// simulatePhase per stage and summing, which models hard barriers.
PhaseResult simulateIteration(const Torus& topo, const Mapping& mapping,
                              const std::vector<Phase>& stages,
                              const SimConfig& config);

}  // namespace rahtm::simnet
