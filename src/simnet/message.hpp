#pragma once
/// \file message.hpp
/// Messages and communication phases as seen by the network simulator.

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace rahtm::simnet {

/// One point-to-point message between application ranks.
struct Message {
  RankId src = kInvalidRank;
  RankId dst = kInvalidRank;
  std::int64_t bytes = 0;
};

/// A communication phase: a set of messages that are all posted at the
/// start of the phase; the phase completes when every message has been
/// delivered (BSP-style barrier semantics, which matches the iterative
/// near-neighbor exchanges of the NAS benchmarks).
using Phase = std::vector<Message>;

}  // namespace rahtm::simnet
