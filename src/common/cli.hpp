#pragma once
/// \file cli.hpp
/// A tiny flag parser for the example and benchmark executables.
/// Flags take the forms `--name value` or `--name=value`; bare `--name`
/// is a boolean switch.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rahtm {

class CliArgs {
 public:
  /// Parses argv; throws ParseError on malformed flags.
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string getString(const std::string& name,
                        const std::string& fallback) const;
  std::int64_t getInt(const std::string& name, std::int64_t fallback) const;
  double getDouble(const std::string& name, double fallback) const;
  bool getBool(const std::string& name, bool fallback = false) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Name of the program (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace rahtm
