#pragma once
/// \file math.hpp
/// Exact small-combinatorics helpers used by the oblivious channel-load
/// evaluator (minimal-path counting is multinomial in the per-dimension
/// offsets) and by the tile-shape search (factorizations of the tile size).

#include <cstdint>
#include <vector>

#include "common/small_vec.hpp"

namespace rahtm {

/// True iff \p x is a power of two (x > 0).
constexpr bool isPowerOfTwo(std::int64_t x) {
  return x > 0 && (x & (x - 1)) == 0;
}

/// Floor of log2(x); requires x > 0.
int ilog2(std::int64_t x);

/// Exact binomial coefficient C(n, k) as a double. Path-count arguments in
/// this library are tiny (n ≤ 40), so the value is exactly representable.
double binomial(int n, int k);

/// Exact multinomial coefficient (Σ parts)! / Π parts_i! as a double.
/// Counts the number of minimal Manhattan paths whose per-dimension hop
/// counts are \p parts.
double multinomial(const SmallVec<std::int32_t, kMaxDims>& parts);

/// All ordered factorizations of \p n into exactly \p dims positive factors,
/// where factor i must not exceed \p maxPerDim[i]. Used by the clustering
/// pass to enumerate candidate tile shapes (Fig. 2 of the paper: a size-8
/// tile in 2D yields 8x1, 4x2, 2x4, 1x8).
std::vector<Shape> orderedFactorizations(std::int64_t n, const Shape& maxPerDim);

/// Greatest common divisor of two non-negative integers.
std::int64_t gcd64(std::int64_t a, std::int64_t b);

/// Integer power with overflow check (throws PreconditionError on overflow).
std::int64_t ipow(std::int64_t base, int exp);

}  // namespace rahtm
