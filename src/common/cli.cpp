#include "common/cli.hpp"

#include "common/error.hpp"
#include "common/strings.hpp"

namespace rahtm {

CliArgs::CliArgs(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!startsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) throw ParseError("bare '--' is not a valid flag");
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !startsWith(argv[i + 1], "--")) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";  // boolean switch
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliArgs::getString(const std::string& name,
                               const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::getInt(const std::string& name,
                             std::int64_t fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : parseInt(it->second);
}

double CliArgs::getDouble(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : parseDouble(it->second);
}

bool CliArgs::getBool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw ParseError("malformed boolean flag --" + name + "=" + v);
}

}  // namespace rahtm
