#pragma once
/// \file log.hpp
/// Minimal leveled logger. Mapping runs can take minutes; the pipeline logs
/// phase progress at Info level and per-subproblem detail at Debug level.

#include <sstream>
#include <string>

namespace rahtm {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped. The initial value
/// is Warn, overridable with RAHTM_LOG_LEVEL=debug|info|warn|error|off.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emit one log line (adds level tag and newline) to stderr. Thread-safe:
/// concurrent callers never interleave within a line. Set
/// RAHTM_LOG_TIMESTAMP=1 to prefix lines with an ISO-8601 UTC timestamp.
void logMessage(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { logMessage(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace rahtm

// The switch/if-else wrapping makes the macro a single complete statement,
// so `if (x) RAHTM_LOG(Info) << "...";  else ...` attaches the else to the
// user's if, not to the macro's level check (the classic dangling-else
// hazard of the naked `if (enabled) stream` form).
#define RAHTM_LOG(level)                                  \
  switch (0)                                              \
  case 0:                                                 \
  default:                                                \
    if (::rahtm::logLevel() > ::rahtm::LogLevel::level) { \
    } else                                                \
      ::rahtm::detail::LogLine(::rahtm::LogLevel::level)
