#pragma once
/// \file log.hpp
/// Minimal leveled logger. Mapping runs can take minutes; the pipeline logs
/// phase progress at Info level and per-subproblem detail at Debug level.

#include <sstream>
#include <string>

namespace rahtm {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emit one log line (adds level tag and newline) to stderr.
void logMessage(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { logMessage(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace rahtm

#define RAHTM_LOG(level)                                  \
  if (::rahtm::logLevel() <= ::rahtm::LogLevel::level)    \
  ::rahtm::detail::LogLine(::rahtm::LogLevel::level)
