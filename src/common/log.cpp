#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace rahtm {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

void logMessage(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[rahtm %s] %s\n", tag(level), msg.c_str());
}

}  // namespace rahtm
