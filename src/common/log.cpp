#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>
#include <string>

namespace rahtm {

namespace {

LogLevel parseLevel(const char* v, LogLevel fallback) {
  if (v == nullptr) return fallback;
  const std::string s(v);
  if (s == "debug") return LogLevel::Debug;
  if (s == "info") return LogLevel::Info;
  if (s == "warn") return LogLevel::Warn;
  if (s == "error") return LogLevel::Error;
  if (s == "off") return LogLevel::Off;
  return fallback;
}

/// Global threshold; RAHTM_LOG_LEVEL=debug|info|warn|error|off overrides
/// the default once at first use (setLogLevel still wins afterwards).
std::atomic<LogLevel>& levelRef() {
  static std::atomic<LogLevel> level{
      parseLevel(std::getenv("RAHTM_LOG_LEVEL"), LogLevel::Warn)};
  return level;
}

bool timestampsEnabled() {
  static const bool on = [] {
    const char* v = std::getenv("RAHTM_LOG_TIMESTAMP");
    return v != nullptr && std::strcmp(v, "0") != 0;
  }();
  return on;
}

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}

/// "2026-08-05T12:34:56.789Z" (UTC).
std::string isoTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

}  // namespace

void setLogLevel(LogLevel level) { levelRef().store(level); }
LogLevel logLevel() { return levelRef().load(); }

void logMessage(LogLevel level, const std::string& msg) {
  if (level < logLevel()) return;
  // One mutex-guarded fprintf per line so concurrent threads (the tests
  // exercise the pipeline from several at once) never interleave output.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  if (timestampsEnabled()) {
    std::fprintf(stderr, "[rahtm %s %s] %s\n", isoTimestamp().c_str(),
                 tag(level), msg.c_str());
  } else {
    std::fprintf(stderr, "[rahtm %s] %s\n", tag(level), msg.c_str());
  }
}

}  // namespace rahtm
