#pragma once
/// \file strings.hpp
/// Small string utilities used by the profile / mapfile parsers and CLI.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rahtm {

/// Split \p s on \p sep; empty fields are kept.
std::vector<std::string> split(std::string_view s, char sep);

/// Split \p s on runs of whitespace; empty fields are dropped.
std::vector<std::string> splitWhitespace(std::string_view s);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Join the elements of \p parts with \p sep.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Parse a signed integer; throws ParseError on malformed input.
std::int64_t parseInt(std::string_view s);

/// Parse a double; throws ParseError on malformed input.
double parseDouble(std::string_view s);

/// True if \p s starts with \p prefix.
bool startsWith(std::string_view s, std::string_view prefix);

}  // namespace rahtm
