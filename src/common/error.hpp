#pragma once
/// \file error.hpp
/// Error-handling primitives. Following the C++ Core Guidelines (E.2, E.14)
/// we throw exceptions derived from a single library root type for
/// programming and input errors, and use RAHTM_REQUIRE for precondition
/// checks that must stay active in release builds.

#include <stdexcept>
#include <string>

namespace rahtm {

/// Root of the RAHTM exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// Malformed external input (profile file, mapfile, CLI argument, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// An optimization problem had no feasible solution.
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void requireFailed(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": requirement `" + expr + "` failed" +
                          (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace rahtm

/// Precondition check that stays active in release builds.
#define RAHTM_REQUIRE(expr, msg)                                        \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::rahtm::detail::requireFailed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                   \
  } while (false)
