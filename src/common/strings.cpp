#include "common/strings.hpp"

#include <cctype>
#include <charconv>

#include "common/error.hpp"

namespace rahtm {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> splitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::int64_t parseInt(std::string_view s) {
  s = trim(s);
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError("malformed integer: '" + std::string(s) + "'");
  }
  return value;
}

double parseDouble(std::string_view s) {
  s = trim(s);
  // std::from_chars for double is flaky across stdlibs; use strtod on a copy.
  const std::string copy(s);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (copy.empty() || end != copy.c_str() + copy.size()) {
    throw ParseError("malformed real: '" + copy + "'");
  }
  return value;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace rahtm
