#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation. All stochastic components
/// of RAHTM (annealing restarts, random workloads, tie-breaking) draw from
/// explicitly-seeded generators so every experiment is reproducible.

#include <cstdint>
#include <vector>

namespace rahtm {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library-wide PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words via SplitMix64 as recommended by the
  /// xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x5eed'5eed'5eed'5eedull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform integer in [0, bound). \p bound must be positive.
  /// Uses Lemire's unbiased multiply-shift rejection method.
  std::uint64_t nextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t nextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(nextBounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-restart streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace rahtm
