#pragma once
/// \file small_vec.hpp
/// A fixed-capacity inline vector used for topology coordinates. Torus
/// topologies in this library never exceed 8 dimensions (BG/Q is 5D plus
/// the intra-node T dimension), so coordinates live on the stack and are
/// cheap to copy, hash and compare — they are passed around by value in the
/// hottest loops of the channel-load evaluator.

#include <algorithm>
#include <array>
#include <cstddef>
#include <functional>
#include <initializer_list>
#include <ostream>
#include <type_traits>

#include "common/error.hpp"

namespace rahtm {

/// Fixed-capacity inline vector. Throws PreconditionError on overflow.
template <typename T, std::size_t Cap>
class SmallVec {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;

  SmallVec(std::initializer_list<T> init) {
    RAHTM_REQUIRE(init.size() <= Cap, "SmallVec initializer too long");
    for (const T& v : init) data_[size_++] = v;
  }

  /// Construct with \p n copies of \p fill.
  explicit SmallVec(std::size_t n, const T& fill = T{}) {
    RAHTM_REQUIRE(n <= Cap, "SmallVec size exceeds capacity");
    size_ = n;
    std::fill(begin(), end(), fill);
  }

  template <typename It>
    requires(!std::is_integral_v<It>)
  SmallVec(It first, It last) {
    for (; first != last; ++first) push_back(*first);
  }

  static constexpr std::size_t capacity() { return Cap; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void push_back(const T& v) {
    RAHTM_REQUIRE(size_ < Cap, "SmallVec overflow");
    data_[size_++] = v;
  }
  void pop_back() {
    RAHTM_REQUIRE(size_ > 0, "pop_back on empty SmallVec");
    --size_;
  }
  void resize(std::size_t n, const T& fill = T{}) {
    RAHTM_REQUIRE(n <= Cap, "SmallVec resize exceeds capacity");
    for (std::size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }
  void clear() { size_ = 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& at(std::size_t i) {
    RAHTM_REQUIRE(i < size_, "SmallVec index out of range");
    return data_[i];
  }
  const T& at(std::size_t i) const {
    RAHTM_REQUIRE(i < size_, "SmallVec index out of range");
    return data_[i];
  }
  T& back() { return at(size_ - 1); }
  const T& back() const { return at(size_ - 1); }
  T& front() { return at(0); }
  const T& front() const { return at(0); }

  iterator begin() { return data_.data(); }
  iterator end() { return data_.data() + size_; }
  const_iterator begin() const { return data_.data(); }
  const_iterator end() const { return data_.data() + size_; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVec& a, const SmallVec& b) {
    return !(a == b);
  }
  friend bool operator<(const SmallVec& a, const SmallVec& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  std::array<T, Cap> data_{};
  std::size_t size_ = 0;
};

/// Maximum number of topology dimensions supported (5D torus + T + slack).
inline constexpr std::size_t kMaxDims = 8;

/// A coordinate in a (mixed-radix) torus, one entry per dimension.
using Coord = SmallVec<std::int32_t, kMaxDims>;

/// Per-dimension extents of a torus / tile / block.
using Shape = SmallVec<std::int32_t, kMaxDims>;

template <typename T, std::size_t Cap>
std::ostream& operator<<(std::ostream& os, const SmallVec<T, Cap>& v) {
  os << '(';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ',';
    os << v[i];
  }
  return os << ')';
}

}  // namespace rahtm

namespace std {
template <typename T, size_t Cap>
struct hash<rahtm::SmallVec<T, Cap>> {
  size_t operator()(const rahtm::SmallVec<T, Cap>& v) const {
    size_t h = 0x9e3779b97f4a7c15ull;
    for (size_t i = 0; i < v.size(); ++i) {
      h ^= std::hash<T>{}(v[i]) + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return h;
  }
};
}  // namespace std
