#pragma once
/// \file types.hpp
/// Fundamental index and size aliases shared across all RAHTM libraries.

#include <cstdint>

namespace rahtm {

/// Index of a compute node (router) in a topology. Dense, 0-based.
using NodeId = std::int32_t;

/// Index of an MPI rank / application process. Dense, 0-based.
using RankId = std::int32_t;

/// Index of a cluster produced by the phase-1 clustering pass.
using ClusterId = std::int32_t;

/// Index of a directed network channel (link) in a topology.
using ChannelId = std::int64_t;

/// Communication volume, in bytes (or abstract volume units).
using Volume = double;

/// Sentinel for "no node" / "unmapped".
inline constexpr NodeId kInvalidNode = -1;
/// Sentinel for "no rank".
inline constexpr RankId kInvalidRank = -1;
/// Sentinel for "no channel".
inline constexpr ChannelId kInvalidChannel = -1;

}  // namespace rahtm
