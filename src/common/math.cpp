#include "common/math.hpp"

#include <limits>

#include "common/error.hpp"

namespace rahtm {

int ilog2(std::int64_t x) {
  RAHTM_REQUIRE(x > 0, "ilog2 of non-positive value");
  int r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

double binomial(int n, int k) {
  RAHTM_REQUIRE(n >= 0, "binomial: n must be non-negative");
  if (k < 0 || k > n) return 0.0;
  if (k > n - k) k = n - k;
  double r = 1.0;
  for (int i = 1; i <= k; ++i) {
    r = r * static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  // The true value is an integer; round away accumulated error.
  return static_cast<double>(static_cast<std::int64_t>(r + 0.5));
}

double multinomial(const SmallVec<std::int32_t, kMaxDims>& parts) {
  int total = 0;
  double r = 1.0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    RAHTM_REQUIRE(parts[i] >= 0, "multinomial: negative part");
    total += parts[i];
    r *= binomial(total, parts[i]);
  }
  return r;
}

namespace {
void factorize(std::int64_t remaining, std::size_t dim, const Shape& maxPerDim,
               Shape& current, std::vector<Shape>& out) {
  if (dim == maxPerDim.size()) {
    if (remaining == 1) out.push_back(current);
    return;
  }
  for (std::int32_t f = 1; f <= maxPerDim[dim] && f <= remaining; ++f) {
    if (remaining % f != 0) continue;
    current[dim] = f;
    factorize(remaining / f, dim + 1, maxPerDim, current, out);
  }
}
}  // namespace

std::vector<Shape> orderedFactorizations(std::int64_t n,
                                         const Shape& maxPerDim) {
  RAHTM_REQUIRE(n >= 1, "orderedFactorizations: n must be positive");
  RAHTM_REQUIRE(!maxPerDim.empty(), "orderedFactorizations: no dimensions");
  std::vector<Shape> out;
  Shape current(maxPerDim.size(), 1);
  factorize(n, 0, maxPerDim, current, out);
  return out;
}

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  RAHTM_REQUIRE(a >= 0 && b >= 0, "gcd64: negative input");
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::int64_t ipow(std::int64_t base, int exp) {
  RAHTM_REQUIRE(exp >= 0, "ipow: negative exponent");
  std::int64_t r = 1;
  for (int i = 0; i < exp; ++i) {
    RAHTM_REQUIRE(base == 0 ||
                      r <= std::numeric_limits<std::int64_t>::max() / (base == 0 ? 1 : base),
                  "ipow overflow");
    r *= base;
  }
  return r;
}

}  // namespace rahtm
