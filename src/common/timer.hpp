#pragma once
/// \file timer.hpp
/// Wall-clock stopwatch for the optimization-time experiment (§V-B).

#include <chrono>

namespace rahtm {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed wall time in seconds.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed wall time in milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rahtm
