#include "common/rng.hpp"

namespace rahtm {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::nextBounded(std::uint64_t bound) {
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::nextInt(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(nextBounded(span));
}

double Rng::nextDouble() {
  // 53 high bits → uniform in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::split() { return Rng(next()); }

}  // namespace rahtm
