#include "common/rng.hpp"

namespace rahtm {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::nextBounded(std::uint64_t bound) {
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::nextInt(std::int64_t lo, std::int64_t hi) {
  // The span is computed in unsigned arithmetic: hi - lo overflows the
  // signed range whenever the interval is wider than INT64_MAX (e.g.
  // [INT64_MIN, 0]), and unsigned wraparound is exactly the width mod 2^64.
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  if (span == ~std::uint64_t{0}) {
    // Full-width range [INT64_MIN, INT64_MAX]: span + 1 would wrap to
    // nextBounded(0); every 64-bit pattern is a valid draw.
    return static_cast<std::int64_t>(next());
  }
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   nextBounded(span + 1));
}

double Rng::nextDouble() {
  // 53 high bits → uniform in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::split() { return Rng(next()); }

}  // namespace rahtm
