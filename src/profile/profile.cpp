#include "profile/profile.hpp"

#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace rahtm {

std::int64_t commCyclesPerIteration(const Workload& workload,
                                    const Torus& topo, const Mapping& mapping,
                                    const simnet::SimConfig& simConfig,
                                    IterationModel model, int simIterations) {
  RAHTM_REQUIRE(simIterations >= 1, "commCyclesPerIteration: bad repetition");
  if (model == IterationModel::RankPipelined) {
    std::vector<simnet::Phase> stages;
    stages.reserve(workload.phases.size() *
                   static_cast<std::size_t>(simIterations));
    for (int k = 0; k < simIterations; ++k) {
      stages.insert(stages.end(), workload.phases.begin(),
                    workload.phases.end());
    }
    return simnet::simulateIteration(topo, mapping, stages, simConfig).cycles /
           simIterations;
  }
  std::int64_t cycles = 0;
  for (const simnet::Phase& phase : workload.phases) {
    cycles += simnet::simulatePhase(topo, mapping, phase, simConfig).cycles;
  }
  return cycles;
}

double calibrateComputeCycles(double baselineCommCycles, double commFraction) {
  RAHTM_REQUIRE(commFraction > 0 && commFraction < 1,
                "calibrateComputeCycles: fraction must be in (0,1)");
  return baselineCommCycles * (1.0 - commFraction) / commFraction;
}

Profile profileRun(const Workload& workload, const Torus& topo,
                   const Mapping& mapping, const simnet::SimConfig& simConfig,
                   double computeCyclesPerIter) {
  Profile p;
  p.benchmark = workload.name;
  p.ranks = workload.ranks;
  p.iterations = workload.iterations;
  CommRecorder recorder(workload.ranks);
  for (const simnet::Phase& phase : workload.phases) {
    for (const simnet::Message& m : phase) {
      recorder.recordSend(m.src, m.dst, static_cast<double>(m.bytes));
    }
  }
  p.matrix = recorder.matrix();
  p.commTimePerIter = static_cast<double>(
      commCyclesPerIteration(workload, topo, mapping, simConfig));
  p.computeTimePerIter = computeCyclesPerIter;
  return p;
}

void writeProfile(std::ostream& os, const Profile& p) {
  os << "benchmark " << p.benchmark << "\n";
  os << "ranks " << p.ranks << "\n";
  os << "iterations " << p.iterations << "\n";
  os << "comm_time " << p.commTimePerIter << "\n";
  os << "compute_time " << p.computeTimePerIter << "\n";
  os << "flows " << p.matrix.numFlows() << "\n";
  for (const Flow& f : p.matrix.flows()) {
    os << f.src << ' ' << f.dst << ' ' << f.bytes << "\n";
  }
}

Profile readProfile(std::istream& is) {
  Profile p;
  std::string line;
  int lineNo = 0;
  long flowsExpected = -1;
  long flowsSeen = 0;
  bool sawRanks = false;
  while (std::getline(is, line)) {
    ++lineNo;
    const auto t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    const auto fields = splitWhitespace(t);
    const auto fail = [&](const std::string& why) {
      throw ParseError("profile line " + std::to_string(lineNo) + ": " + why);
    };
    if (flowsExpected >= 0 && flowsSeen < flowsExpected) {
      if (fields.size() != 3) fail("expected '<src> <dst> <bytes>'");
      p.matrix.addFlow(static_cast<RankId>(parseInt(fields[0])),
                       static_cast<RankId>(parseInt(fields[1])),
                       parseDouble(fields[2]));
      ++flowsSeen;
      continue;
    }
    if (fields.size() != 2) fail("expected '<key> <value>'");
    const std::string& key = fields[0];
    if (key == "benchmark") {
      p.benchmark = fields[1];
    } else if (key == "ranks") {
      p.ranks = static_cast<RankId>(parseInt(fields[1]));
      p.matrix.ensureRanks(p.ranks);
      sawRanks = true;
    } else if (key == "iterations") {
      p.iterations = static_cast<int>(parseInt(fields[1]));
    } else if (key == "comm_time") {
      p.commTimePerIter = parseDouble(fields[1]);
    } else if (key == "compute_time") {
      p.computeTimePerIter = parseDouble(fields[1]);
    } else if (key == "flows") {
      flowsExpected = parseInt(fields[1]);
    } else {
      fail("unknown key '" + key + "'");
    }
  }
  if (!sawRanks) throw ParseError("profile: missing 'ranks' header");
  if (flowsExpected >= 0 && flowsSeen != flowsExpected) {
    throw ParseError("profile: expected " + std::to_string(flowsExpected) +
                     " flows, found " + std::to_string(flowsSeen));
  }
  return p;
}

}  // namespace rahtm
