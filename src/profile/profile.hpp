#pragma once
/// \file profile.hpp
/// IPM-style communication profiling (§II-A: the paper profiles its
/// benchmarks with the IPM tool to obtain per-rank point-to-point
/// communication volumes and the comm/compute time split).
///
/// Here the "machine" is the simulator, so profiling a run means recording
/// every message the workload posts plus the simulated communication and
/// (calibrated) computation time. The resulting profile is the input RAHTM
/// consumes offline — exactly the paper's methodology, with the simulator
/// standing in for Mira.

#include <iosfwd>
#include <string>

#include "graph/comm_graph.hpp"
#include "mapping/mapping.hpp"
#include "simnet/simulator.hpp"
#include "workloads/workload.hpp"

namespace rahtm {

/// A recorded application profile.
struct Profile {
  std::string benchmark;
  RankId ranks = 0;
  CommGraph matrix;            ///< aggregated p2p volumes per iteration
  double commTimePerIter = 0;  ///< simulated cycles
  double computeTimePerIter = 0;
  int iterations = 1;

  double totalTime() const {
    return (commTimePerIter + computeTimePerIter) * iterations;
  }
  double commFraction() const {
    const double t = commTimePerIter + computeTimePerIter;
    return t == 0 ? 0 : commTimePerIter / t;
  }
};

/// Record one event per send (the raw IPM-like event stream).
class CommRecorder {
 public:
  explicit CommRecorder(RankId ranks) : matrix_(ranks) {}

  void recordSend(RankId src, RankId dst, double bytes) {
    matrix_.addFlow(src, dst, bytes);
  }
  const CommGraph& matrix() const { return matrix_; }

 private:
  CommGraph matrix_;
};

/// How an iteration's phases are timed.
enum class IterationModel {
  /// MPI semantics: per-rank stage dependencies, stages overlap in the
  /// network as ranks skew (simnet::simulateIteration). The default — this
  /// is the regime where optimizing the aggregate communication matrix
  /// (IPM profile) is meaningful.
  RankPipelined,
  /// Hard global barrier after every phase (sum of per-phase makespans).
  BarrierPerPhase,
};

/// Simulated communication time of one iteration of \p workload under
/// \p mapping. With \p simIterations > 1 (RankPipelined only) that many
/// iterations run back-to-back and the mean per-iteration time is returned:
/// rank skew accumulates across iterations exactly as in a real run, so
/// steady-state network behaviour — not the synchronized-start transient —
/// is measured.
std::int64_t commCyclesPerIteration(
    const Workload& workload, const Torus& topo, const Mapping& mapping,
    const simnet::SimConfig& simConfig,
    IterationModel model = IterationModel::RankPipelined,
    int simIterations = 1);

/// Compute-phase calibration (DESIGN.md §1): pick the constant compute time
/// that makes the *baseline* run match the target communication fraction
/// (paper Fig. 9). computeTime = commTime * (1 - f) / f.
double calibrateComputeCycles(double baselineCommCycles, double commFraction);

/// Profile a run: simulate every phase, record the communication matrix,
/// and combine with the given per-iteration compute time.
Profile profileRun(const Workload& workload, const Torus& topo,
                   const Mapping& mapping, const simnet::SimConfig& simConfig,
                   double computeCyclesPerIter);

/// Serialize / parse a profile (line-oriented text; see implementation).
void writeProfile(std::ostream& os, const Profile& p);
Profile readProfile(std::istream& is);

}  // namespace rahtm
