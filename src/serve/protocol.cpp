#include "serve/protocol.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "obs/json.hpp"
#include "obs/json_reader.hpp"

namespace rahtm::serve {

namespace {

Shape parseShapeSpec(const std::string& spec) {
  Shape shape;
  for (const std::string& part : split(spec, 'x')) {
    shape.push_back(static_cast<std::int32_t>(parseInt(part)));
  }
  return shape;
}

std::int64_t intMember(const obs::JsonValue& doc, const std::string& key,
                       std::int64_t fallback) {
  const obs::JsonValue* v = doc.find(key);
  if (v == nullptr) return fallback;
  if (!v->isNumber()) throw ParseError("request member '" + key + "' must be a number");
  return static_cast<std::int64_t>(v->number);
}

bool boolMember(const obs::JsonValue& doc, const std::string& key,
                bool fallback) {
  const obs::JsonValue* v = doc.find(key);
  if (v == nullptr) return fallback;
  if (v->kind != obs::JsonValue::Kind::Bool) {
    throw ParseError("request member '" + key + "' must be a boolean");
  }
  return v->boolean;
}

}  // namespace

MapRequest parseMapRequest(const obs::JsonValue& doc) {
  if (!doc.isObject()) throw ParseError("request must be a JSON object");
  const std::string schema = doc.stringOr("schema", "");
  if (schema != kServeRequestSchema) {
    throw ParseError("request schema must be '" +
                     std::string(kServeRequestSchema) + "', got '" + schema +
                     "'");
  }
  MapRequest req;
  req.id = doc.stringOr("id", "");
  const std::string machine = doc.stringOr("machine", "");
  if (machine.empty()) throw ParseError("request missing 'machine'");
  req.machine = parseShapeSpec(machine);
  req.concentration =
      static_cast<int>(intMember(doc, "concentration", req.concentration));
  req.benchmark = doc.stringOr("benchmark", req.benchmark);
  req.messageBytes = intMember(doc, "bytes", req.messageBytes);
  req.mapper = doc.stringOr("mapper", req.mapper);
  req.beamWidth = static_cast<int>(intMember(doc, "beam", req.beamWidth));
  req.enableMerge = boolMember(doc, "merge", req.enableMerge);
  req.finalRefinement = boolMember(doc, "refine", req.finalRefinement);
  req.leafMilpVerts =
      static_cast<int>(intMember(doc, "leaf_milp", req.leafMilpVerts));
  req.threads = static_cast<int>(intMember(doc, "threads", req.threads));
  req.seed = static_cast<std::uint64_t>(
      intMember(doc, "seed", static_cast<std::int64_t>(req.seed)));
  const std::string grid = doc.stringOr("grid", "");
  if (!grid.empty()) req.grid = parseShapeSpec(grid);

  if (const obs::JsonValue* g = doc.find("graph")) {
    if (!g->isObject()) throw ParseError("request 'graph' must be an object");
    const auto ranks = static_cast<RankId>(intMember(*g, "ranks", 0));
    if (ranks <= 0) throw ParseError("graph.ranks must be positive");
    req.graph = CommGraph(ranks);
    const obs::JsonValue* flows = g->find("flows");
    if (flows == nullptr || !flows->isArray()) {
      throw ParseError("graph.flows must be an array");
    }
    for (const obs::JsonValue& f : flows->array) {
      if (!f.isArray() || f.array.size() != 3 || !f.array[0].isNumber() ||
          !f.array[1].isNumber() || !f.array[2].isNumber()) {
        throw ParseError("graph.flows entries must be [src,dst,bytes]");
      }
      req.graph.addFlow(static_cast<RankId>(f.array[0].number),
                        static_cast<RankId>(f.array[1].number),
                        static_cast<Volume>(f.array[2].number));
    }
    req.hasGraph = true;
  }
  return req;
}

MapRequest parseMapRequestLine(const std::string& line) {
  return parseMapRequest(obs::parseJson(line));
}

void writeMapResponseJson(std::ostream& os, const MapResponse& resp,
                          bool includeMapping) {
  using obs::jsonBool;
  using obs::jsonDouble;
  using obs::jsonInt;
  using obs::jsonString;
  os << "{\"schema\":" << jsonString(kServeResponseSchema)
     << ",\"id\":" << jsonString(resp.id) << ",\"ok\":" << jsonBool(resp.ok);
  if (!resp.ok) os << ",\"error\":" << jsonString(resp.error);
  os << ",\"benchmark\":" << jsonString(resp.benchmark)
     << ",\"mapper\":" << jsonString(resp.mapper)
     << ",\"machine\":" << jsonString(resp.machine)
     << ",\"ranks\":" << jsonInt(resp.ranks)
     << ",\"flows\":" << jsonInt(resp.flows)
     << ",\"mcl\":" << jsonDouble(resp.mcl)
     << ",\"hop_bytes\":" << jsonDouble(resp.hopBytes)
     << ",\"queue_sec\":" << jsonDouble(resp.queueSeconds)
     << ",\"solve_sec\":" << jsonDouble(resp.solveSeconds)
     << ",\"cache\":{\"route_hits\":" << jsonInt(resp.cache.routeHits)
     << ",\"route_misses\":" << jsonInt(resp.cache.routeMisses)
     << ",\"incidence_hits\":" << jsonInt(resp.cache.incidenceHits)
     << ",\"incidence_misses\":" << jsonInt(resp.cache.incidenceMisses)
     << ",\"evictions\":" << jsonInt(resp.cache.evictions)
     << ",\"bytes\":" << jsonInt(resp.cache.bytes) << "}";
  // The rahtm.bench.report/v1-style fragment: benchmark/mapper/metrics in
  // record key order, so ledger tooling can lift it directly.
  const obs::RunRecord rec = responseRecord(resp);
  os << ",\"ledger\":{\"benchmark\":" << jsonString(rec.benchmark)
     << ",\"mapper\":" << jsonString(rec.mapper) << ",\"metrics\":{";
  for (std::size_t i = 0; i < rec.metrics.size(); ++i) {
    if (i != 0) os << ",";
    os << jsonString(rec.metrics[i].first) << ":"
       << jsonDouble(rec.metrics[i].second);
  }
  os << "}}";
  if (includeMapping && resp.ok) {
    os << ",\"mapping\":[";
    for (RankId r = 0; r < resp.mapping.numRanks(); ++r) {
      if (r != 0) os << ",";
      os << "[" << jsonInt(resp.mapping.nodeOf(r)) << ","
         << jsonInt(resp.mapping.slotOf(r)) << "]";
    }
    os << "]";
  }
  os << "}";
}

std::string mapResponseJson(const MapResponse& resp, bool includeMapping) {
  std::ostringstream os;
  writeMapResponseJson(os, resp, includeMapping);
  return os.str();
}

std::vector<std::string> validateServeResponseJson(
    const obs::JsonValue& doc) {
  std::vector<std::string> problems;
  const auto need = [&](const char* key, bool ok) {
    if (!ok) problems.push_back(std::string("missing or mistyped '") + key +
                                "'");
  };
  if (!doc.isObject()) {
    problems.push_back("response must be a JSON object");
    return problems;
  }
  if (doc.stringOr("schema", "") != kServeResponseSchema) {
    problems.push_back("schema must be '" +
                       std::string(kServeResponseSchema) + "'");
  }
  const obs::JsonValue* id = doc.find("id");
  need("id", id != nullptr && id->isString());
  const obs::JsonValue* ok = doc.find("ok");
  need("ok", ok != nullptr && ok->kind == obs::JsonValue::Kind::Bool);
  for (const char* key : {"benchmark", "mapper", "machine"}) {
    const obs::JsonValue* v = doc.find(key);
    need(key, v != nullptr && v->isString());
  }
  for (const char* key :
       {"ranks", "flows", "mcl", "hop_bytes", "queue_sec", "solve_sec"}) {
    const obs::JsonValue* v = doc.find(key);
    need(key, v != nullptr && v->isNumber());
  }
  const obs::JsonValue* cache = doc.find("cache");
  if (cache == nullptr || !cache->isObject()) {
    problems.push_back("missing or mistyped 'cache'");
  } else {
    for (const char* key : {"route_hits", "route_misses", "incidence_hits",
                            "incidence_misses", "evictions", "bytes"}) {
      const obs::JsonValue* v = cache->find(key);
      need(key, v != nullptr && v->isNumber());
    }
  }
  const obs::JsonValue* ledger = doc.find("ledger");
  if (ledger == nullptr || !ledger->isObject()) {
    problems.push_back("missing or mistyped 'ledger'");
  } else {
    need("ledger.benchmark", ledger->find("benchmark") != nullptr &&
                                 ledger->find("benchmark")->isString());
    need("ledger.mapper", ledger->find("mapper") != nullptr &&
                              ledger->find("mapper")->isString());
    const obs::JsonValue* metrics = ledger->find("metrics");
    if (metrics == nullptr || !metrics->isObject()) {
      problems.push_back("missing or mistyped 'ledger.metrics'");
    } else {
      for (const auto& [name, value] : metrics->object) {
        if (!value.isNumber() && !value.isString()) {
          problems.push_back("ledger metric '" + name +
                             "' must be a number");
        }
      }
    }
  }
  if (ok != nullptr && ok->kind == obs::JsonValue::Kind::Bool &&
      ok->boolean) {
    const obs::JsonValue* mapping = doc.find("mapping");
    if (mapping != nullptr) {
      if (!mapping->isArray()) {
        problems.push_back("'mapping' must be an array");
      } else {
        const obs::JsonValue* ranks = doc.find("ranks");
        if (ranks != nullptr && ranks->isNumber() &&
            mapping->array.size() !=
                static_cast<std::size_t>(ranks->number)) {
          problems.push_back("'mapping' length != ranks");
        }
        for (const obs::JsonValue& e : mapping->array) {
          if (!e.isArray() || e.array.size() != 2 ||
              !e.array[0].isNumber() || !e.array[1].isNumber()) {
            problems.push_back("'mapping' entries must be [node,slot]");
            break;
          }
        }
      }
    }
  }
  return problems;
}

}  // namespace rahtm::serve
