#include "serve/artifact_cache.hpp"

#include <algorithm>
#include <utility>

#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "routing/route_cache.hpp"

namespace rahtm::serve {

namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  // Mix each byte of v (FNV-1a, 64-bit offset basis handled by the caller).
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t graphHash(const CommGraph& g) {
  std::uint64_t h = 1469598103934665603ull;
  h = fnv1a(h, static_cast<std::uint64_t>(g.numRanks()));
  for (const Flow& f : g.flows()) {
    h = fnv1a(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.src)));
    h = fnv1a(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(f.dst)));
    h = fnv1a(h, static_cast<std::uint64_t>(f.bytes));
  }
  return h;
}

}  // namespace

ArtifactCache::ArtifactCache(ArtifactCacheConfig cfg) : cfg_(cfg) {
  if (cfg_.registerDegrade) {
    degradeHandle_ = obs::MemRegistry::instance().registerDegradeCallback(
        "serve.artifact_cache", [this] { return dropAll(); });
  }
}

ArtifactCache::~ArtifactCache() {
  if (degradeHandle_ >= 0) {
    obs::MemRegistry::instance().unregisterDegradeCallback(degradeHandle_);
  }
}

std::string ArtifactCache::topologyKey(const Torus& topo) {
  std::string key;
  const Shape& shape = topo.shape();
  for (std::size_t d = 0; d < shape.size(); ++d) {
    if (d != 0) key.push_back('x');
    key += std::to_string(shape[d]);
  }
  key.push_back('/');
  for (std::size_t d = 0; d < shape.size(); ++d) {
    key.push_back(topo.wraps(d) ? 'w' : '-');
  }
  return key;
}

std::shared_ptr<const RouteTable> ArtifactCache::routeTable(const Torus& topo) {
  const std::string key = topologyKey(topo);
  std::promise<std::shared_ptr<const RouteTable>> promise;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++tick_;
    auto it = routes_.find(key);
    if (it != routes_.end()) {
      ++stats_.routeHits;
      it->second.lastUse = tick_;
      auto future = it->second.future;
      lock.unlock();
      noteMetrics();
      return future.get();
    }
    ++stats_.routeMisses;
    RouteEntry entry;
    entry.future = promise.get_future().share();
    entry.lastUse = tick_;
    routes_.emplace(key, std::move(entry));
  }
  noteMetrics();

  std::shared_ptr<const RouteTable> table;
  try {
    table = RouteTable::buildFull(topo);
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(mu_);
    routes_.erase(key);
    throw;
  }
  promise.set_value(table);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The entry may have been dropped (degrade) while we built; only a
    // still-present entry joins the LRU accounting.
    auto it = routes_.find(key);
    if (it != routes_.end()) {
      it->second.bytes = table->footprintBytes();
      totalBytes_ += it->second.bytes;
      evictLocked();
    }
  }
  noteMetrics();
  return table;
}

std::shared_ptr<const FlowIncidence> ArtifactCache::flowIncidence(
    const CommGraph& graph) {
  const std::uint64_t hash = graphHash(graph);
  std::promise<std::shared_ptr<const FlowIncidence>> promise;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++tick_;
    auto& chain = incidences_[hash];
    for (IncidenceEntry& e : chain) {
      if (e.ranks == graph.numRanks() && e.flows == graph.flows()) {
        ++stats_.incidenceHits;
        e.lastUse = tick_;
        auto future = e.future;
        lock.unlock();
        noteMetrics();
        return future.get();
      }
    }
    ++stats_.incidenceMisses;
    IncidenceEntry entry;
    entry.ranks = graph.numRanks();
    entry.flows = graph.flows();
    entry.future = promise.get_future().share();
    entry.lastUse = tick_;
    chain.push_back(std::move(entry));
  }
  noteMetrics();

  std::shared_ptr<const FlowIncidence> incidence;
  try {
    incidence =
        std::make_shared<const FlowIncidence>(buildFlowIncidence(graph));
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(mu_);
    auto it = incidences_.find(hash);
    if (it != incidences_.end()) {
      auto& chain = it->second;
      chain.erase(std::remove_if(chain.begin(), chain.end(),
                                 [&](const IncidenceEntry& e) {
                                   return e.ranks == graph.numRanks() &&
                                          e.flows == graph.flows();
                                 }),
                  chain.end());
      if (chain.empty()) incidences_.erase(it);
    }
    throw;
  }
  promise.set_value(incidence);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = incidences_.find(hash);
    if (it != incidences_.end()) {
      for (IncidenceEntry& e : it->second) {
        if (e.ranks == graph.numRanks() && e.flows == graph.flows()) {
          e.bytes = incidence->footprintBytes() +
                    static_cast<std::int64_t>(e.flows.capacity() *
                                              sizeof(Flow));
          totalBytes_ += e.bytes;
          break;
        }
      }
      evictLocked();
    }
  }
  noteMetrics();
  return incidence;
}

std::shared_ptr<TieredRouteCache> ArtifactCache::routeCache(
    const Torus& machine) {
  const std::string key = topologyKey(machine);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = routeCaches_.find(key);
    if (it != routeCaches_.end()) return it->second;
  }
  // Build outside mu_ (the constructor registers its own degrade callback
  // on the global MemRegistry); first insert wins on a race.
  auto built = std::make_shared<TieredRouteCache>(
      machine, TieredRouteCache::Config{}, this);
  std::lock_guard<std::mutex> lock(mu_);
  return routeCaches_.emplace(key, std::move(built)).first->second;
}

void ArtifactCache::evictLocked() {
  while (totalBytes_ > cfg_.maxBytes) {
    // Least-recently-used *completed* entry across both tables (a pending
    // build has bytes == 0 and is never evicted — its builder still needs
    // the slot to publish into).
    const std::string* routeKey = nullptr;
    std::uint64_t incHash = 0;
    std::size_t incIdx = 0;
    bool isRoute = false, found = false;
    std::uint64_t oldest = 0;
    for (const auto& [key, e] : routes_) {
      if (e.bytes <= 0) continue;
      if (!found || e.lastUse < oldest) {
        found = true;
        isRoute = true;
        oldest = e.lastUse;
        routeKey = &key;
      }
    }
    for (const auto& [hash, chain] : incidences_) {
      for (std::size_t i = 0; i < chain.size(); ++i) {
        const IncidenceEntry& e = chain[i];
        if (e.bytes <= 0) continue;
        if (!found || e.lastUse < oldest) {
          found = true;
          isRoute = false;
          oldest = e.lastUse;
          incHash = hash;
          incIdx = i;
        }
      }
    }
    if (!found) break;
    if (isRoute) {
      auto it = routes_.find(*routeKey);
      totalBytes_ -= it->second.bytes;
      routes_.erase(it);
    } else {
      auto it = incidences_.find(incHash);
      auto& chain = it->second;
      totalBytes_ -= chain[incIdx].bytes;
      chain.erase(chain.begin() + static_cast<std::ptrdiff_t>(incIdx));
      if (chain.empty()) incidences_.erase(it);
    }
    ++stats_.evictions;
  }
}

std::int64_t ArtifactCache::dropAll() {
  std::int64_t released = 0;
  std::vector<std::shared_ptr<TieredRouteCache>> tiered;
  {
    std::lock_guard<std::mutex> lock(mu_);
    released = totalBytes_;
    // Pending builds are dropped from the index too — their builders
    // tolerate the missing entry and the callers still get their futures.
    routes_.clear();
    incidences_.clear();
    totalBytes_ = 0;
    tiered.reserve(routeCaches_.size());
    for (auto& kv : routeCaches_) tiered.push_back(kv.second);
    routeCaches_.clear();
  }
  // Shed the tiered caches' sparse working sets outside mu_ (shed() takes
  // its own shard locks; in-flight solves holding the shared_ptr keep
  // reading — reads just refault).
  for (const auto& cache : tiered) released += cache->shed(0);
  noteMetrics();
  return released;
}

ArtifactCacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ArtifactCacheStats s = stats_;
  s.bytes = totalBytes_;
  return s;
}

void ArtifactCache::noteMetrics() const {
  obs::MetricsRegistry* reg = obs::metrics();
  if (reg == nullptr) return;
  const ArtifactCacheStats s = stats();
  // set() rather than add(): the registry mirrors the cache's monotonic
  // totals, so concurrent mirrors are idempotent.
  reg->gauge("rahtm.serve.cache.route_hits")
      .set(static_cast<double>(s.routeHits));
  reg->gauge("rahtm.serve.cache.route_misses")
      .set(static_cast<double>(s.routeMisses));
  reg->gauge("rahtm.serve.cache.incidence_hits")
      .set(static_cast<double>(s.incidenceHits));
  reg->gauge("rahtm.serve.cache.incidence_misses")
      .set(static_cast<double>(s.incidenceMisses));
  reg->gauge("rahtm.serve.cache.evictions")
      .set(static_cast<double>(s.evictions));
  reg->gauge("rahtm.serve.cache.bytes").set(static_cast<double>(s.bytes));
}

}  // namespace rahtm::serve
