#pragma once
/// \file protocol.hpp
/// The daemon's newline-delimited JSON wire protocol.
///
/// One request per line, one response line per request, in both the Unix
/// socket and the stdin batch transports. Requests carry the schema
/// `rahtm.serve.request/v1`; responses `rahtm.serve.response/v1` and embed
/// a `rahtm.bench.report/v1`-style ledger fragment (a single
/// benchmark/mapper/metrics record) so response streams can be gated with
/// the same tooling as suite ledgers. Parsing reuses obs/json_reader;
/// encoding reuses obs/json. Responses are written with a fixed key order
/// so they diff cleanly.

#include <iosfwd>
#include <string>
#include <vector>

#include "serve/service.hpp"

namespace rahtm::obs {
struct JsonValue;
}

namespace rahtm::serve {

inline constexpr const char* kServeRequestSchema = "rahtm.serve.request/v1";
inline constexpr const char* kServeResponseSchema = "rahtm.serve.response/v1";

/// Parse one request line / document. Unknown keys are ignored; a missing
/// or wrong schema, a missing machine, or malformed members throw
/// rahtm::ParseError.
///
/// Document shape (optional members carry the MapRequest defaults):
///   {"schema":"rahtm.serve.request/v1","id":"r1","machine":"4x4x4x2",
///    "concentration":2,"benchmark":"CG","bytes":4096,"mapper":"rahtm",
///    "beam":64,"merge":true,"refine":true,"leaf_milp":8,"threads":1,
///    "seed":24301,"grid":"8x16",
///    "graph":{"ranks":8,"flows":[[0,1,4096],[1,2,4096]]}}
MapRequest parseMapRequest(const obs::JsonValue& doc);
MapRequest parseMapRequestLine(const std::string& line);

/// Serialize a response as one JSON line (no trailing newline). When
/// \p includeMapping is false the per-rank mapping array is omitted (bench
/// clients that only read the metrics skip the bulk).
void writeMapResponseJson(std::ostream& os, const MapResponse& resp,
                          bool includeMapping = true);
std::string mapResponseJson(const MapResponse& resp,
                            bool includeMapping = true);

/// Schema validation of a parsed response document (mirrors
/// obs::validateReportJson): every problem found, empty == valid.
std::vector<std::string> validateServeResponseJson(const obs::JsonValue& doc);

}  // namespace rahtm::serve
