#pragma once
/// \file service.hpp
/// The mapping-as-a-service library API: one `MapRequest` (communication
/// graph or named workload + topology spec + solver options) in, one
/// `MapResponse` (mapping + quality metrics + stats + ledger fragment) out.
///
/// This is the extraction of `tools/rahtm_map.cpp`'s orchestration into a
/// call with no globals: the CLI is a thin wrapper over `MapService`, and
/// the `rahtm_serve` daemon runs many of these calls concurrently through
/// the `Scheduler`. A `MapService` constructed without an `ArtifactCache`
/// behaves exactly like the historical one-shot tool (every solve builds
/// its own artifacts); with a cache, per-topology route tables and flow
/// incidences are shared across requests — with bit-identical mappings, as
/// the shared artifacts are content-identical to locally built ones.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rahtm.hpp"
#include "graph/comm_graph.hpp"
#include "mapping/mapping.hpp"
#include "obs/report.hpp"
#include "serve/artifact_cache.hpp"
#include "simnet/simulator.hpp"
#include "topology/torus.hpp"

namespace rahtm::serve {

/// One mapping request. Either `benchmark` names a synthetic NAS workload
/// (BT/SP/CG, sized to machine × concentration) or `hasGraph` carries an
/// explicit communication matrix (the profile path).
struct MapRequest {
  std::string id;           ///< caller-chosen correlation id
  Shape machine;            ///< torus shape, e.g. {4,4,4,2}
  int concentration = 1;    ///< ranks per node
  std::string benchmark = "CG";
  std::int64_t messageBytes = 4096;  ///< NAS workload message size
  bool hasGraph = false;
  CommGraph graph;          ///< explicit input when hasGraph
  Shape grid;               ///< logical rank grid for explicit input
  std::string mapper = "rahtm";
  int beamWidth = 64;
  bool enableMerge = true;
  bool finalRefinement = true;
  int leafMilpVerts = 8;
  int threads = 1;          ///< solver threads (mapping is bit-identical)
  std::uint64_t seed = 0x5eed;  ///< annealing seed (subproblem portfolio)
};

/// The resolved input of a request: the graph to map, the logical grid the
/// clustering tile-search uses, and the per-stage structure the simulator
/// consumes (named workloads only). Split from handling so the CLI can
/// build it once and reuse the stages for post-mapping simulation.
struct RequestInput {
  CommGraph graph;
  Shape grid;
  std::vector<simnet::Phase> simStages;
};

struct MapResponse {
  std::string id;
  bool ok = false;
  std::string error;        ///< set when !ok
  std::string benchmark;    ///< request benchmark, or "profile" for graphs
  std::string mapper;       ///< request mapper name
  std::string machine;      ///< Torus::describe() of the target
  std::int64_t ranks = 0;
  std::int64_t flows = 0;
  Mapping mapping;
  double mcl = 0;           ///< placementMcl (MAR model)
  double hopBytes = 0;
  bool hasRahtmStats = false;
  RahtmStats stats;         ///< rahtm mapper only
  double solveSeconds = 0;
  double queueSeconds = 0;  ///< filled by the Scheduler
  /// Artifact-cache totals at completion (monotonic global snapshot; zeros
  /// when the service runs uncached).
  ArtifactCacheStats cache;
};

/// The request → response call. Thread-safe: handle() may run concurrently
/// from many threads over one service instance (each call builds its own
/// mapper; the cache is internally synchronized).
class MapService {
 public:
  /// \p cache: optional shared artifact cache (non-owning; must outlive
  /// the service). Null = every solve builds its own artifacts.
  explicit MapService(ArtifactCache* cache = nullptr) : cache_(cache) {}

  /// Resolve the request's input (named workload or explicit graph).
  /// Throws rahtm::Error on inconsistent sizes.
  RequestInput buildInput(const MapRequest& req) const;

  /// The mapper-selection ladder of the offline tool, parameterized by the
  /// request. Throws rahtm::Error on an unknown mapper name.
  std::unique_ptr<TaskMapper> makeMapper(const MapRequest& req,
                                         const Shape& grid) const;

  /// buildInput + handleWithInput.
  MapResponse handle(const MapRequest& req);

  /// Solve \p req over a pre-resolved input. Never throws: failures come
  /// back as ok == false with the error message.
  MapResponse handleWithInput(const MapRequest& req,
                              const RequestInput& input);

  ArtifactCache* cache() const { return cache_; }

 private:
  ArtifactCache* cache_;
};

/// The response's `rahtm.bench.report/v1`-style ledger fragment: one
/// (benchmark, mapper) record carrying mcl / hop_bytes / queue_sec /
/// solve_sec. Embedded in the wire response and reusable by suites.
obs::RunRecord responseRecord(const MapResponse& resp);

}  // namespace rahtm::serve
