#include "serve/scheduler.hpp"

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rahtm::serve {

Scheduler::Scheduler(MapService& service, SchedulerConfig cfg)
    : service_(service), cfg_(cfg), pool_(cfg.threads) {
  dispatcher_ = std::thread([this] { dispatchLoop(); });
}

Scheduler::~Scheduler() { shutdown(); }

Scheduler::Ticket Scheduler::submit(MapRequest req) {
  Ticket ticket;
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_ ||
      queue_.size() >= static_cast<std::size_t>(
                           std::max(1, cfg_.maxQueueDepth))) {
    ++rejected_;
    // Expected time to drain the backlog at the current solve rate: the
    // caller should not retry sooner.
    ticket.retryAfterSec =
        ewmaSolveSec_ *
        static_cast<double>(queue_.size() + inFlight_ + 1) /
        static_cast<double>(std::max(1, pool_.numThreads()));
    lock.unlock();
    if (obs::MetricsRegistry* reg = obs::metrics()) {
      reg->counter("rahtm.serve.rejected").add(1);
    }
    return ticket;
  }
  ++accepted_;
  Queued q;
  q.req = std::move(req);
  q.enqueued = std::chrono::steady_clock::now();
  ticket.accepted = true;
  ticket.response = q.promise.get_future();
  queue_.push_back(std::move(q));
  const auto depth = queue_.size();
  lock.unlock();
  wake_.notify_one();
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->counter("rahtm.serve.accepted").add(1);
    reg->gauge("rahtm.serve.queue_depth").set(static_cast<double>(depth));
  }
  return ticket;
}

void Scheduler::dispatchLoop() {
  for (;;) {
    std::vector<Queued> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      const std::size_t take = std::min(
          queue_.size(),
          static_cast<std::size_t>(std::max(1, cfg_.maxBatch)));
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      inFlight_ = batch.size();
    }
    if (obs::MetricsRegistry* reg = obs::metrics()) {
      reg->counter("rahtm.serve.waves").add(1);
    }
    // One fork-join wave per batch; process() never throws (the service
    // folds failures into the response), so the region always joins.
    pool_.parallelFor(batch.size(),
                      [&](std::size_t i) { process(batch[i]); });
    {
      std::unique_lock<std::mutex> lock(mu_);
      inFlight_ = 0;
      if (queue_.empty()) idle_.notify_all();
    }
  }
}

void Scheduler::process(Queued& q) {
  const double queueSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    q.enqueued)
          .count();
  MapResponse resp;
  {
    obs::ScopedSpan span(obs::tracer(), "serve.request", "serve");
    span.attr("id", q.req.id);
    span.attr("mapper", q.req.mapper);
    span.attr("queue_sec", queueSec);
    try {
      resp = service_.handle(q.req);
    } catch (const std::exception& e) {
      resp.id = q.req.id;
      resp.ok = false;
      resp.error = e.what();
    }
    resp.queueSeconds = queueSec;
    span.attr("solve_sec", resp.solveSeconds);
    span.attr("ok", resp.ok ? std::int64_t{1} : std::int64_t{0});
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++completed_;
    if (!resp.ok) ++errors_;
    // EWMA over completed solves feeds the reject-with-retry-after path.
    ewmaSolveSec_ = 0.8 * ewmaSolveSec_ + 0.2 * resp.solveSeconds;
  }
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->counter("rahtm.serve.completed").add(1);
    if (!resp.ok) reg->counter("rahtm.serve.errors").add(1);
    const auto buckets = obs::expBuckets(1e-4, 2.0, 21);
    reg->histogram("rahtm.serve.queue_sec", buckets).observe(queueSec);
    reg->histogram("rahtm.serve.latency_sec", buckets)
        .observe(queueSec + resp.solveSeconds);
  }
  q.promise.set_value(std::move(resp));
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && inFlight_ == 0; });
}

void Scheduler::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && !dispatcher_.joinable()) return;
    stop_ = true;
  }
  wake_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

}  // namespace rahtm::serve
