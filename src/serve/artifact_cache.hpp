#pragma once
/// \file artifact_cache.hpp
/// Cross-request cache of the solver's immutable per-topology artifacts.
///
/// The delta engine made the expensive derived state — eagerly built
/// `RouteTable`s and CSR `FlowIncidence`s — complete-then-immutable, so it
/// is safe to share read-only across threads. This cache implements
/// `ArtifactSource` on top of that discipline: concurrent mapping requests
/// for the same topology (or the same communication graph) get the same
/// `shared_ptr<const ...>` instead of rebuilding, and the first request for
/// a key builds exactly once (later arrivals block on a shared future).
///
/// Keying:
///  * route tables — the canonical topology fingerprint (shape + per-dim
///    wrap flags, e.g. "4x4x4x2/wwww"), which is exactly the state a
///    `RouteTable` is a function of;
///  * flow incidences — a 64-bit FNV-1a content hash of (numRanks, flows),
///    with the flow vector stored per entry and compared exactly on lookup,
///    so hash collisions chain instead of aliasing.
///
/// Eviction is LRU by accounted bytes: past `maxBytes` the least-recently
/// used completed entry is *forgotten* (live `shared_ptr` holders keep the
/// object alive; the cache just stops handing it out). The cache also
/// registers a `src/obs/mem` DEGRADE callback that drops everything, so a
/// memory-budget breach sheds the cache before the run fails. Cached
/// objects self-account under the existing route_table / flow_incidence
/// accounts; no new account is introduced.
///
/// Observability: hit/miss/eviction counters are mirrored into the metrics
/// registry as `rahtm.serve.cache.*` when one is installed.

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/comm_graph.hpp"
#include "routing/delta_eval.hpp"
#include "topology/torus.hpp"

namespace rahtm::serve {

struct ArtifactCacheConfig {
  /// LRU budget over the cached objects' accounted footprints (route-table
  /// arenas + incidence CSRs + the stored verification flow vectors).
  std::int64_t maxBytes = 256ll * 1024 * 1024;
  /// Register a drop-everything DEGRADE callback on the global MemRegistry
  /// (unregistered in the destructor).
  bool registerDegrade = true;
};

/// Monotonic counters plus the current resident footprint.
struct ArtifactCacheStats {
  std::int64_t routeHits = 0;
  std::int64_t routeMisses = 0;
  std::int64_t incidenceHits = 0;
  std::int64_t incidenceMisses = 0;
  std::int64_t evictions = 0;
  std::int64_t bytes = 0;
};

class ArtifactCache final : public ArtifactSource {
 public:
  explicit ArtifactCache(ArtifactCacheConfig cfg = {});
  ~ArtifactCache() override;
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// ArtifactSource: shared complete route table for \p topo. Blocks while
  /// another thread builds the same key; builds (once) on a cold key.
  std::shared_ptr<const RouteTable> routeTable(const Torus& topo) override;

  /// ArtifactSource: shared flow incidence of \p graph (exact content
  /// match; hash collisions are resolved by comparing the flows).
  std::shared_ptr<const FlowIncidence> flowIncidence(
      const CommGraph& graph) override;

  /// ArtifactSource: shared tiered route cache for \p machine, memoized per
  /// topology fingerprint so concurrent requests for the same machine share
  /// one sparse working set. The returned cache delegates its dense tier
  /// back to this ArtifactCache (routeTable()), which keeps cross-request
  /// sharing, LRU policy, and the gated hit/miss counters in one place.
  std::shared_ptr<TieredRouteCache> routeCache(const Torus& machine) override;

  /// Canonical topology fingerprint, e.g. "4x4x4x2/wwww" ('w' wrap,
  /// '-' no wrap per dimension).
  static std::string topologyKey(const Torus& topo);

  ArtifactCacheStats stats() const;

  /// Forget every entry (the DEGRADE path); returns the bytes released
  /// from the cache's tally. In-use artifacts stay alive via their
  /// shared_ptrs and simply stop being shared with future requests.
  std::int64_t dropAll();

 private:
  struct RouteEntry {
    std::shared_future<std::shared_ptr<const RouteTable>> future;
    std::int64_t bytes = 0;  ///< 0 until the build completes
    std::uint64_t lastUse = 0;
  };
  struct IncidenceEntry {
    RankId ranks = 0;
    std::vector<Flow> flows;  ///< exact key (collision verification)
    std::shared_future<std::shared_ptr<const FlowIncidence>> future;
    std::int64_t bytes = 0;
    std::uint64_t lastUse = 0;
  };

  /// Evict completed LRU entries until the tally fits maxBytes. Caller
  /// holds mu_.
  void evictLocked();
  void noteMetrics() const;

  const ArtifactCacheConfig cfg_;
  int degradeHandle_ = -1;

  mutable std::mutex mu_;
  std::uint64_t tick_ = 0;  ///< LRU clock
  std::int64_t totalBytes_ = 0;
  std::unordered_map<std::string, RouteEntry> routes_;
  /// Content-hash chains: every entry under a hash is compared exactly.
  std::unordered_map<std::uint64_t, std::vector<IncidenceEntry>> incidences_;
  /// One tiered cache per machine fingerprint (sparse tiers outlive
  /// individual requests; dense tiers delegate to routes_ above). Their
  /// sparse bytes self-account, so the LRU tally here ignores them —
  /// dropAll() sheds them alongside everything else.
  std::unordered_map<std::string, std::shared_ptr<TieredRouteCache>>
      routeCaches_;
  ArtifactCacheStats stats_;
};

}  // namespace rahtm::serve
