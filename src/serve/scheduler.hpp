#pragma once
/// \file scheduler.hpp
/// Batched admission of concurrent mapping requests onto the exec pool.
///
/// Shape: producers (socket connections, the stdin batch reader, bench
/// clients) submit() requests; a single dispatcher thread drains the queue
/// in waves of up to `maxBatch` requests and runs each wave as one
/// `exec::ThreadPool::parallelFor` region — every request solves in its own
/// task, and any inner parallelism the solver asks for (RahtmConfig::
/// numThreads) degrades to inline-serial inside the worker, which the
/// pool's determinism contract makes bit-identical to the standalone run.
///
/// Backpressure: past `maxQueueDepth` queued requests, submit() rejects
/// with a retry-after estimate (queue depth × EWMA solve time / pool
/// width) instead of queueing unboundedly — the caller sees `accepted ==
/// false` and the daemon answers with a retryable error instead of eating
/// memory. In-flight work is bounded by construction (one wave at a time).
///
/// Observability: every request runs under a "serve.request" trace span
/// with queue_sec / solve_sec attributes (so --trace-out shows queue wait
/// vs solve time per request), and the registry carries
/// `rahtm.serve.{accepted,rejected,completed,errors}` counters, a
/// `rahtm.serve.queue_depth` gauge and `rahtm.serve.{queue,latency}_sec`
/// histograms.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>

#include "exec/thread_pool.hpp"
#include "serve/service.hpp"

namespace rahtm::serve {

struct SchedulerConfig {
  int threads = 0;        ///< pool width (0 = all hardware threads)
  int maxBatch = 8;       ///< max requests solved per wave
  int maxQueueDepth = 64; ///< reject past this many queued requests
};

class Scheduler {
 public:
  struct Ticket {
    bool accepted = false;
    double retryAfterSec = 0;          ///< when rejected: suggested backoff
    std::future<MapResponse> response; ///< valid only when accepted
  };

  /// \p service must outlive the scheduler.
  explicit Scheduler(MapService& service, SchedulerConfig cfg = {});
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueue a request (or reject it under backpressure).
  Ticket submit(MapRequest req);

  /// Block until the queue is empty and no wave is in flight.
  void drain();

  /// Stop accepting, drain what is queued, join the dispatcher. Called by
  /// the destructor if not already done.
  void shutdown();

  std::int64_t accepted() const { return accepted_; }
  std::int64_t rejected() const { return rejected_; }
  std::int64_t completed() const { return completed_; }
  std::int64_t errors() const { return errors_; }

 private:
  struct Queued {
    MapRequest req;
    std::promise<MapResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void dispatchLoop();
  void process(Queued& q);

  MapService& service_;
  const SchedulerConfig cfg_;
  exec::ThreadPool pool_;

  mutable std::mutex mu_;
  std::condition_variable wake_;  ///< dispatcher waits for work / stop
  std::condition_variable idle_;  ///< drain() waits for quiescence
  std::deque<Queued> queue_;
  bool stop_ = false;
  std::size_t inFlight_ = 0;
  double ewmaSolveSec_ = 0.05;  ///< retry-after estimator

  std::int64_t accepted_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t errors_ = 0;

  std::thread dispatcher_;
};

}  // namespace rahtm::serve
