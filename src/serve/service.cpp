#include "serve/service.hpp"

#include <chrono>

#include "common/error.hpp"
#include "core/bisection_mapper.hpp"
#include "core/greedy_mapper.hpp"
#include "graph/stats.hpp"
#include "mapping/hilbert.hpp"
#include "mapping/permutation.hpp"
#include "mapping/rubik.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/oblivious.hpp"
#include "workloads/workload.hpp"

namespace rahtm::serve {

RequestInput MapService::buildInput(const MapRequest& req) const {
  const Torus machine = Torus::torus(req.machine);
  const auto ranks =
      static_cast<RankId>(machine.numNodes() * req.concentration);
  RequestInput input;
  if (req.hasGraph) {
    RAHTM_REQUIRE(req.graph.numRanks() == ranks,
                  "MapRequest: graph ranks != nodes * concentration");
    input.graph = req.graph;
    input.grid = req.grid;
  } else {
    NasParams params;
    params.messageBytes = req.messageBytes;
    const Workload w = makeNasByName(req.benchmark, ranks, params);
    input.graph = w.commGraph();
    input.grid = w.logicalGrid;
    input.simStages = w.phases;
  }
  return input;
}

std::unique_ptr<TaskMapper> MapService::makeMapper(const MapRequest& req,
                                                   const Shape& grid) const {
  const Torus machine = Torus::torus(req.machine);
  const auto ranks =
      static_cast<RankId>(machine.numNodes() * req.concentration);
  if (req.mapper == "rahtm") {
    RahtmConfig cfg;
    cfg.logicalGrid = grid;
    cfg.merge.beamWidth = req.beamWidth;
    cfg.enableMerge = req.enableMerge;
    cfg.finalRefinement = req.finalRefinement;
    cfg.subproblem.milpMaxVerts = req.leafMilpVerts;
    cfg.subproblem.seed = req.seed;
    cfg.numThreads = req.threads;
    cfg.artifacts = cache_;
    return std::make_unique<RahtmMapper>(cfg);
  }
  if (req.mapper == "abcdet") return std::make_unique<DefaultMapper>();
  if (req.mapper == "hilbert") return std::make_unique<HilbertMapper>();
  if (req.mapper == "rht") {
    return std::make_unique<RubikMapper>(
        RubikMapper::autoFor(ranks, machine, req.concentration));
  }
  if (req.mapper == "greedy") {
    return std::make_unique<GreedyHopBytesMapper>(grid);
  }
  if (req.mapper == "rcb") {
    BisectionConfig bisect;
    bisect.logicalGrid = grid;
    return std::make_unique<RecursiveBisectionMapper>(bisect);
  }
  if (req.mapper == "random") return std::make_unique<RandomMapper>();
  throw Error("unknown mapper '" + req.mapper + "'");
}

MapResponse MapService::handle(const MapRequest& req) {
  MapResponse resp;
  resp.id = req.id;
  resp.benchmark = req.hasGraph ? "profile" : req.benchmark;
  resp.mapper = req.mapper;
  try {
    const RequestInput input = buildInput(req);
    return handleWithInput(req, input);
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
    if (cache_ != nullptr) resp.cache = cache_->stats();
    return resp;
  }
}

MapResponse MapService::handleWithInput(const MapRequest& req,
                                        const RequestInput& input) {
  MapResponse resp;
  resp.id = req.id;
  resp.benchmark = req.hasGraph ? "profile" : req.benchmark;
  resp.mapper = req.mapper;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    const Torus machine = Torus::torus(req.machine);
    resp.machine = machine.describe();
    RAHTM_REQUIRE(req.concentration >= 1,
                  "MapRequest: concentration must be >= 1");

    std::unique_ptr<TaskMapper> mapper = makeMapper(req, input.grid);
    resp.mapping = mapper->map(input.graph, machine, req.concentration);
    const std::string err = resp.mapping.validate(machine, req.concentration);
    if (!err.empty()) throw Error("invalid mapping: " + err);

    const GraphStats gs = computeStats(input.graph);
    resp.ranks = static_cast<std::int64_t>(gs.ranks);
    resp.flows = static_cast<std::int64_t>(gs.flows);
    resp.mcl = placementMcl(machine, input.graph, resp.mapping.nodeVector());
    resp.hopBytes = hopBytes(input.graph, machine, resp.mapping.nodeVector());
    if (const auto* rahtm = dynamic_cast<const RahtmMapper*>(mapper.get())) {
      resp.hasRahtmStats = true;
      resp.stats = rahtm->stats();
    }
    resp.ok = true;
  } catch (const std::exception& e) {
    resp.ok = false;
    resp.error = e.what();
  }
  resp.solveSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (cache_ != nullptr) resp.cache = cache_->stats();
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->counter(resp.ok ? "rahtm.serve.requests_ok"
                         : "rahtm.serve.requests_failed")
        .add(1);
    // 100us .. ~100s exponential latency buckets.
    reg->histogram("rahtm.serve.solve_sec", obs::expBuckets(1e-4, 2.0, 21))
        .observe(resp.solveSeconds);
  }
  return resp;
}

obs::RunRecord responseRecord(const MapResponse& resp) {
  obs::RunRecord rec;
  rec.benchmark = resp.benchmark;
  rec.mapper = resp.mapper;
  rec.add("mcl", resp.mcl);
  rec.add("hop_bytes", resp.hopBytes);
  rec.add("queue_sec", resp.queueSeconds);
  rec.add("solve_sec", resp.solveSeconds);
  return rec;
}

}  // namespace rahtm::serve
