#pragma once
/// \file collectives.hpp
/// Collective-communication pattern expansion — the paper's §VI extension:
/// "it is possible to use the communication patterns for known
/// implementations of collective communication primitives to extend RAHTM
/// beyond point-to-point communication."
///
/// Each expander turns one collective call over a rank group into the
/// point-to-point phases its well-known implementation produces. RAHTM then
/// consumes the aggregated graph exactly as it does for point-to-point
/// traffic, and the simulator replays the stages with their real
/// dependencies.
///
/// Implemented algorithms (the classics the paper alludes to):
///  * allgather: recursive doubling  — log2(P) stages, doubling volumes
///  * allgather: ring                — P-1 stages of neighbor shifts
///  * allgather: dissemination (Bruck) — log2(P) stages at 2^k offsets
///  * allreduce: recursive halving + doubling (Rabenseifner)
///  * broadcast: binomial tree
///  * all-to-all: pairwise exchange (XOR schedule, power-of-two groups)
///  * reduce: binomial tree (leaves toward root)

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "simnet/message.hpp"
#include "workloads/workload.hpp"

namespace rahtm {

/// Which implementation to expand a collective into.
enum class CollectiveAlgorithm {
  AllgatherRecursiveDoubling,
  AllgatherRing,
  AllgatherDissemination,
  AllreduceRabenseifner,
  BroadcastBinomial,
  AlltoallPairwise,
  ReduceBinomial,
};

const char* toString(CollectiveAlgorithm algorithm);

/// Expand one collective over the ranks [0, ranks) into its point-to-point
/// stages. \p bytes is the per-rank payload (the "count * datatype" of the
/// MPI call); per-message volumes follow the algorithm (e.g. recursive
/// doubling sends 2^k * bytes at stage k). \p root is used by rooted
/// collectives (broadcast, reduce) and ignored otherwise.
///
/// Power-of-two rank counts are required by the power-of-two algorithms
/// (recursive doubling/halving, pairwise XOR); ring supports any count.
std::vector<simnet::Phase> expandCollective(CollectiveAlgorithm algorithm,
                                            RankId ranks, std::int64_t bytes,
                                            RankId root = 0);

/// A full workload wrapping one collective (for mapping studies): name,
/// phases and aggregated graph, like the NAS generators.
Workload makeCollectiveWorkload(CollectiveAlgorithm algorithm, RankId ranks,
                                std::int64_t bytes, int iterations = 4);

}  // namespace rahtm
