#pragma once
/// \file workload.hpp
/// Synthetic benchmark workloads: the communication structure of the
/// NAS benchmarks the paper evaluates (Table I: BT, SP, CG), plus extra
/// patterns for testing. Each workload is a sequence of communication
/// phases executed every iteration; RAHTM and the baselines consume only
/// the aggregated communication graph, while the simulator replays the
/// phase structure.

#include <string>
#include <vector>

#include "common/small_vec.hpp"
#include "graph/comm_graph.hpp"
#include "simnet/message.hpp"

namespace rahtm {

struct Workload {
  std::string name;
  RankId ranks = 0;
  /// Phases of one iteration, replayed `iterations` times per run.
  std::vector<simnet::Phase> phases;
  int iterations = 1;
  /// Fraction of execution time spent communicating under the *baseline*
  /// mapping, used to calibrate the constant compute phase (paper Fig. 9:
  /// ~0.70 for CG, ~0.35 for BT and SP). See DESIGN.md §1.
  double commFraction = 0.5;
  /// Logical process-grid geometry (e.g. q x q for BT); the clustering pass
  /// tiles this grid (§III-B).
  Shape logicalGrid;

  /// Aggregate per-iteration communication graph (mapper input).
  CommGraph commGraph() const;

  /// Total bytes sent per iteration.
  double bytesPerIteration() const;
};

/// Parameters shared by the NAS-like generators. `messageBytes` scales
/// every message (a stand-in for the class C/D problem-size selection).
struct NasParams {
  std::int64_t messageBytes = 4096;
  int iterations = 4;
};

/// NPB BT (block tri-diagonal, multipartition): P = q*q ranks on a q x q
/// logical grid; every iteration runs three sweep phases (x, y, z), each
/// exchanging faces with the successor/predecessor in that sweep direction.
/// The z sweep travels along the grid diagonal — the signature
/// multipartition pattern.
Workload makeBT(RankId ranks, const NasParams& params = {});

/// NPB SP (scalar penta-diagonal): same multipartition structure as BT but
/// with thinner face exchanges and more frequent iterations.
Workload makeSP(RankId ranks, const NasParams& params = {});

/// NPB CG (conjugate gradient): P = 2^k ranks on a nprows x npcols grid
/// (npcols = 2^ceil(k/2)); every iteration exchanges with the transpose
/// partner and performs log2(npcols) recursive-halving reduce exchanges
/// across the row — long-distance power-of-two strides.
Workload makeCG(RankId ranks, const NasParams& params = {});

/// 3D halo exchange over a given rank grid (extra pattern for studies).
Workload makeHalo3d(const Shape& grid, std::int64_t messageBytes,
                    int iterations = 4);

/// Random permutation traffic (extra pattern; worst case for locality).
Workload makeRandomPairs(RankId ranks, std::int64_t messageBytes,
                         std::uint64_t seed = 7, int iterations = 4);

/// Look up a NAS workload by name ("BT", "SP", "CG"); throws ParseError on
/// unknown names.
Workload makeNasByName(const std::string& name, RankId ranks,
                       const NasParams& params = {});

}  // namespace rahtm
