#include "workloads/workload.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "topology/torus.hpp"

namespace rahtm {

CommGraph Workload::commGraph() const {
  CommGraph g(ranks);
  for (const simnet::Phase& phase : phases) {
    for (const simnet::Message& m : phase) {
      g.addFlow(m.src, m.dst, static_cast<Volume>(m.bytes));
    }
  }
  return g;
}

double Workload::bytesPerIteration() const {
  double total = 0;
  for (const simnet::Phase& phase : phases) {
    for (const simnet::Message& m : phase) {
      total += static_cast<double>(m.bytes);
    }
  }
  return total;
}

namespace {

std::int32_t isqrtExact(RankId ranks) {
  const auto q = static_cast<std::int32_t>(std::lround(std::sqrt(
      static_cast<double>(ranks))));
  RAHTM_REQUIRE(static_cast<RankId>(q) * q == ranks,
                "multipartition workload needs a square rank count");
  return q;
}

/// Shared BT/SP generator. The NPB multipartition scheme assigns each
/// process a diagonal family of cells; sweeps exchange cell faces with the
/// successor process of the sweep direction. On the q x q process grid the
/// successors are: x-sweep (i, j+1), y-sweep (i+1, j), z-sweep (i+1, j+1)
/// — all modulo q. Each sweep phase carries both the forward substitution
/// and the back substitution, so faces travel both directions.
Workload makeMultipartition(const std::string& name, RankId ranks,
                            std::int64_t faceBytes, int iterations,
                            double commFraction) {
  const std::int32_t q = isqrtExact(ranks);
  Workload w;
  w.name = name;
  w.ranks = ranks;
  w.iterations = iterations;
  w.commFraction = commFraction;
  w.logicalGrid = Shape{q, q};

  const Torus grid = Torus::torus(Shape{q, q});
  const auto rankAt = [&](std::int32_t i, std::int32_t j) {
    return static_cast<RankId>(grid.nodeId(
        Coord{((i % q) + q) % q, ((j % q) + q) % q}));
  };

  // Sweep successors in the process grid: (di, dj) per sweep direction.
  const std::int32_t sweeps[3][2] = {{0, 1}, {1, 0}, {1, 1}};
  for (const auto& s : sweeps) {
    simnet::Phase phase;
    for (std::int32_t i = 0; i < q; ++i) {
      for (std::int32_t j = 0; j < q; ++j) {
        const RankId self = rankAt(i, j);
        const RankId succ = rankAt(i + s[0], j + s[1]);
        if (self == succ) continue;  // q == 1 degenerate grid
        phase.push_back({self, succ, faceBytes});  // forward substitution
        phase.push_back({succ, self, faceBytes});  // back substitution
      }
    }
    w.phases.push_back(std::move(phase));
  }
  return w;
}

}  // namespace

Workload makeBT(RankId ranks, const NasParams& params) {
  // BT exchanges full 5-variable block faces; comm is ~35% of runtime at
  // the paper's scale (Fig. 9).
  return makeMultipartition("BT", ranks, params.messageBytes,
                            params.iterations, 0.35);
}

Workload makeSP(RankId ranks, const NasParams& params) {
  // SP's penta-diagonal solver ships thinner faces (scalar, not block) but
  // the phase structure matches BT; Fig. 9 shows ~35% comm as well.
  return makeMultipartition("SP", ranks, (params.messageBytes * 3) / 5,
                            params.iterations, 0.35);
}

Workload makeCG(RankId ranks, const NasParams& params) {
  RAHTM_REQUIRE(ranks >= 2 && isPowerOfTwo(ranks),
                "CG needs a power-of-two rank count");
  const int k = ilog2(ranks);
  const auto npcols = static_cast<std::int32_t>(1 << ((k + 1) / 2));
  const auto nprows = static_cast<std::int32_t>(1 << (k / 2));

  Workload w;
  w.name = "CG";
  w.ranks = ranks;
  w.iterations = params.iterations;
  w.commFraction = 0.70;  // Fig. 9: CG is >70% communication
  w.logicalGrid = Shape{nprows, npcols};

  // NPB layout: proc_row = me / npcols, proc_col = me % npcols.
  // Transpose partner (cg.f setup_submatrix_info):
  //   square grid:      exch_proc = (me % nprows) * npcols + me / nprows
  //   npcols == 2*nprows: pairs of columns transpose together.
  const auto transposePartner = [&](RankId me) -> RankId {
    if (npcols == nprows) {
      return (me % nprows) * npcols + me / nprows;
    }
    const RankId half = me / 2;
    return 2 * ((half % nprows) * nprows + half / nprows) +
           (me % 2);
  };

  // Phase 1: the q = A.p transpose exchange (the heavy one).
  simnet::Phase transpose;
  for (RankId me = 0; me < ranks; ++me) {
    const RankId partner = transposePartner(me);
    if (partner != me) {
      transpose.push_back({me, partner, params.messageBytes});
    }
  }
  w.phases.push_back(std::move(transpose));

  // Reduce phases: recursive halving across the row, log2(npcols) stages,
  // partner column = col XOR (npcols >> stage).
  for (std::int32_t stride = npcols / 2; stride >= 1; stride /= 2) {
    simnet::Phase reduce;
    for (RankId me = 0; me < ranks; ++me) {
      const std::int32_t col = me % npcols;
      const std::int32_t partnerCol = col ^ stride;
      const RankId partner = (me / npcols) * npcols + partnerCol;
      reduce.push_back({me, partner, params.messageBytes});
    }
    w.phases.push_back(std::move(reduce));
  }
  return w;
}

Workload makeHalo3d(const Shape& grid, std::int64_t messageBytes,
                    int iterations) {
  RAHTM_REQUIRE(grid.size() == 3, "makeHalo3d: need a 3D grid");
  const Torus g = Torus::torus(grid);
  Workload w;
  w.name = "Halo3D";
  w.ranks = static_cast<RankId>(g.numNodes());
  w.iterations = iterations;
  w.commFraction = 0.40;
  w.logicalGrid = grid;
  simnet::Phase phase;
  for (NodeId n = 0; n < g.numNodes(); ++n) {
    const Coord c = g.coordOf(n);
    for (std::size_t d = 0; d < 3; ++d) {
      for (const Dir dir : {Dir::Plus, Dir::Minus}) {
        const auto nb = g.neighbor(c, d, dir);
        if (!nb) continue;
        const NodeId m = g.nodeId(*nb);
        if (m == n) continue;
        phase.push_back({static_cast<RankId>(n), static_cast<RankId>(m),
                         messageBytes});
      }
    }
  }
  w.phases.push_back(std::move(phase));
  return w;
}

Workload makeRandomPairs(RankId ranks, std::int64_t messageBytes,
                         std::uint64_t seed, int iterations) {
  RAHTM_REQUIRE(ranks >= 2, "makeRandomPairs: need at least two ranks");
  Workload w;
  w.name = "Random";
  w.ranks = ranks;
  w.iterations = iterations;
  w.commFraction = 0.50;
  w.logicalGrid = Shape{static_cast<std::int32_t>(ranks)};
  std::vector<RankId> perm(static_cast<std::size_t>(ranks));
  for (RankId r = 0; r < ranks; ++r) perm[static_cast<std::size_t>(r)] = r;
  Rng rng(seed);
  rng.shuffle(perm);
  simnet::Phase phase;
  for (RankId r = 0; r < ranks; ++r) {
    const RankId partner = perm[static_cast<std::size_t>(r)];
    if (partner != r) phase.push_back({r, partner, messageBytes});
  }
  w.phases.push_back(std::move(phase));
  return w;
}

Workload makeNasByName(const std::string& name, RankId ranks,
                       const NasParams& params) {
  if (name == "BT" || name == "bt") return makeBT(ranks, params);
  if (name == "SP" || name == "sp") return makeSP(ranks, params);
  if (name == "CG" || name == "cg") return makeCG(ranks, params);
  throw ParseError("unknown NAS workload '" + name + "' (expected BT/SP/CG)");
}

}  // namespace rahtm
