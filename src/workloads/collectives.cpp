#include "workloads/collectives.hpp"

#include "common/error.hpp"
#include "common/math.hpp"

namespace rahtm {

const char* toString(CollectiveAlgorithm algorithm) {
  switch (algorithm) {
    case CollectiveAlgorithm::AllgatherRecursiveDoubling:
      return "allgather-recdbl";
    case CollectiveAlgorithm::AllgatherRing:
      return "allgather-ring";
    case CollectiveAlgorithm::AllgatherDissemination:
      return "allgather-dissem";
    case CollectiveAlgorithm::AllreduceRabenseifner:
      return "allreduce-rabenseifner";
    case CollectiveAlgorithm::BroadcastBinomial:
      return "bcast-binomial";
    case CollectiveAlgorithm::AlltoallPairwise:
      return "alltoall-pairwise";
    case CollectiveAlgorithm::ReduceBinomial:
      return "reduce-binomial";
  }
  return "?";
}

namespace {

void requirePowerOfTwo(RankId ranks, const char* what) {
  RAHTM_REQUIRE(ranks >= 2 && isPowerOfTwo(ranks),
                std::string(what) + " needs a power-of-two rank count");
}

/// Recursive doubling allgather: stage k pairs ranks differing in bit k;
/// each rank sends the 2^k blocks it has accumulated.
std::vector<simnet::Phase> allgatherRecursiveDoubling(RankId ranks,
                                                      std::int64_t bytes) {
  requirePowerOfTwo(ranks, "recursive-doubling allgather");
  std::vector<simnet::Phase> stages;
  for (RankId bit = 1; bit < ranks; bit <<= 1) {
    simnet::Phase phase;
    for (RankId r = 0; r < ranks; ++r) {
      phase.push_back({r, r ^ bit, bytes * bit});
    }
    stages.push_back(std::move(phase));
  }
  return stages;
}

/// Ring allgather: P-1 stages, each rank forwards one block to its
/// successor.
std::vector<simnet::Phase> allgatherRing(RankId ranks, std::int64_t bytes) {
  RAHTM_REQUIRE(ranks >= 2, "ring allgather needs at least two ranks");
  std::vector<simnet::Phase> stages;
  for (RankId s = 0; s + 1 < ranks; ++s) {
    simnet::Phase phase;
    for (RankId r = 0; r < ranks; ++r) {
      phase.push_back({r, static_cast<RankId>((r + 1) % ranks), bytes});
    }
    stages.push_back(std::move(phase));
  }
  return stages;
}

/// Dissemination (Bruck) allgather: stage k sends 2^k blocks to the rank
/// 2^k positions away (modular offset, not XOR).
std::vector<simnet::Phase> allgatherDissemination(RankId ranks,
                                                  std::int64_t bytes) {
  RAHTM_REQUIRE(ranks >= 2, "dissemination allgather needs >= 2 ranks");
  std::vector<simnet::Phase> stages;
  for (RankId offset = 1; offset < ranks; offset <<= 1) {
    simnet::Phase phase;
    const std::int64_t blocks = std::min<std::int64_t>(offset, ranks - offset);
    for (RankId r = 0; r < ranks; ++r) {
      phase.push_back(
          {r, static_cast<RankId>((r + offset) % ranks), bytes * blocks});
    }
    stages.push_back(std::move(phase));
  }
  return stages;
}

/// Rabenseifner allreduce: reduce-scatter by recursive halving (volumes
/// halve each stage), then allgather by recursive doubling (volumes double).
std::vector<simnet::Phase> allreduceRabenseifner(RankId ranks,
                                                 std::int64_t bytes) {
  requirePowerOfTwo(ranks, "Rabenseifner allreduce");
  std::vector<simnet::Phase> stages;
  // Reduce-scatter: stage k exchanges bytes / 2^(k+1) with the rank
  // differing in the k-th highest... (classic: start with the top bit).
  for (RankId bit = ranks >> 1; bit >= 1; bit >>= 1) {
    simnet::Phase phase;
    const std::int64_t vol = bytes * bit / ranks;
    for (RankId r = 0; r < ranks; ++r) {
      phase.push_back({r, r ^ bit, vol});
    }
    stages.push_back(std::move(phase));
  }
  // Allgather back: recursive doubling with growing volumes.
  for (RankId bit = 1; bit < ranks; bit <<= 1) {
    simnet::Phase phase;
    const std::int64_t vol = bytes * bit / ranks;
    for (RankId r = 0; r < ranks; ++r) {
      phase.push_back({r, r ^ bit, vol});
    }
    stages.push_back(std::move(phase));
  }
  return stages;
}

/// Binomial-tree broadcast rooted at \p root: stage k doubles the set of
/// informed ranks.
std::vector<simnet::Phase> broadcastBinomial(RankId ranks, std::int64_t bytes,
                                             RankId root) {
  requirePowerOfTwo(ranks, "binomial broadcast");
  std::vector<simnet::Phase> stages;
  // Work in the rotated space where the root is rank 0.
  for (RankId bit = ranks >> 1; bit >= 1; bit >>= 1) {
    simnet::Phase phase;
    for (RankId v = 0; v < ranks; ++v) {
      // v has the data iff v's bits below the current level are zero.
      if ((v & (2 * bit - 1)) == 0) {
        const RankId u = v | bit;  // its partner this stage
        phase.push_back({static_cast<RankId>((v + root) % ranks),
                         static_cast<RankId>((u + root) % ranks), bytes});
      }
    }
    stages.push_back(std::move(phase));
  }
  return stages;
}

/// Pairwise-exchange all-to-all: P-1 stages; at stage s, rank r exchanges
/// its block with rank r XOR s.
std::vector<simnet::Phase> alltoallPairwise(RankId ranks, std::int64_t bytes) {
  requirePowerOfTwo(ranks, "pairwise all-to-all");
  std::vector<simnet::Phase> stages;
  for (RankId s = 1; s < ranks; ++s) {
    simnet::Phase phase;
    for (RankId r = 0; r < ranks; ++r) {
      phase.push_back({r, r ^ s, bytes});
    }
    stages.push_back(std::move(phase));
  }
  return stages;
}

/// Binomial-tree reduce toward \p root: the broadcast tree run backwards.
std::vector<simnet::Phase> reduceBinomial(RankId ranks, std::int64_t bytes,
                                          RankId root) {
  auto stages = broadcastBinomial(ranks, bytes, root);
  std::reverse(stages.begin(), stages.end());
  for (simnet::Phase& phase : stages) {
    for (simnet::Message& m : phase) std::swap(m.src, m.dst);
  }
  return stages;
}

}  // namespace

std::vector<simnet::Phase> expandCollective(CollectiveAlgorithm algorithm,
                                            RankId ranks, std::int64_t bytes,
                                            RankId root) {
  RAHTM_REQUIRE(bytes >= 0, "expandCollective: negative payload");
  RAHTM_REQUIRE(root >= 0 && root < ranks, "expandCollective: bad root");
  switch (algorithm) {
    case CollectiveAlgorithm::AllgatherRecursiveDoubling:
      return allgatherRecursiveDoubling(ranks, bytes);
    case CollectiveAlgorithm::AllgatherRing:
      return allgatherRing(ranks, bytes);
    case CollectiveAlgorithm::AllgatherDissemination:
      return allgatherDissemination(ranks, bytes);
    case CollectiveAlgorithm::AllreduceRabenseifner:
      return allreduceRabenseifner(ranks, bytes);
    case CollectiveAlgorithm::BroadcastBinomial:
      return broadcastBinomial(ranks, bytes, root);
    case CollectiveAlgorithm::AlltoallPairwise:
      return alltoallPairwise(ranks, bytes);
    case CollectiveAlgorithm::ReduceBinomial:
      return reduceBinomial(ranks, bytes, root);
  }
  throw PreconditionError("expandCollective: unknown algorithm");
}

Workload makeCollectiveWorkload(CollectiveAlgorithm algorithm, RankId ranks,
                                std::int64_t bytes, int iterations) {
  Workload w;
  w.name = toString(algorithm);
  w.ranks = ranks;
  w.iterations = iterations;
  w.commFraction = 0.5;
  w.logicalGrid = Shape{static_cast<std::int32_t>(ranks)};
  w.phases = expandCollective(algorithm, ranks, bytes);
  return w;
}

}  // namespace rahtm
