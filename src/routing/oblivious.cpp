#include "routing/oblivious.hpp"

#include "common/error.hpp"
#include "common/math.hpp"

namespace rahtm {

namespace {

/// One direction-resolved minimal route family: per-dimension hop counts
/// and directions (ties already resolved to a concrete direction).
struct Combo {
  SmallVec<std::int32_t, kMaxDims> steps;
  SmallVec<Dir, kMaxDims> dirs;
};

/// Enumerate the 2^t direction combinations over tie dimensions.
std::vector<Combo> enumerateCombos(const Torus& topo, const Coord& src,
                                   const Coord& dst) {
  const std::size_t n = topo.ndims();
  SmallVec<MinimalOffset, kMaxDims> offs;
  SmallVec<std::size_t, kMaxDims> tieDims;
  offs.resize(n);
  for (std::size_t d = 0; d < n; ++d) {
    offs[d] = topo.minimalOffset(src, dst, d);
    if (offs[d].tie && offs[d].steps > 0) tieDims.push_back(d);
  }
  std::vector<Combo> combos;
  const std::size_t count = std::size_t{1} << tieDims.size();
  combos.reserve(count);
  for (std::size_t mask = 0; mask < count; ++mask) {
    Combo c;
    c.steps.resize(n);
    c.dirs.resize(n);
    for (std::size_t d = 0; d < n; ++d) {
      c.steps[d] = offs[d].steps;
      c.dirs[d] = offs[d].dir;
    }
    for (std::size_t t = 0; t < tieDims.size(); ++t) {
      if (mask & (std::size_t{1} << t)) {
        c.dirs[tieDims[t]] = opposite(c.dirs[tieDims[t]]);
      }
    }
    combos.push_back(c);
  }
  return combos;
}

/// Advance a mixed-radix progress counter over [0, steps_d] per dimension.
/// Returns false when the counter wraps past the last position.
bool advanceProgress(SmallVec<std::int32_t, kMaxDims>& p,
                     const SmallVec<std::int32_t, kMaxDims>& steps) {
  for (std::size_t d = 0; d < p.size(); ++d) {
    if (p[d] < steps[d]) {
      ++p[d];
      return true;
    }
    p[d] = 0;
  }
  return false;
}

/// Coordinate reached from \p src after \p p hops in each dimension of the
/// given combo.
Coord comboCoord(const Torus& topo, const Coord& src, const Combo& combo,
                 const SmallVec<std::int32_t, kMaxDims>& p) {
  Coord c = src;
  for (std::size_t d = 0; d < p.size(); ++d) {
    if (p[d] == 0) continue;
    const std::int32_t k = topo.extent(d);
    std::int32_t x = c[d] + dirStep(combo.dirs[d]) * p[d];
    if (topo.wraps(d)) {
      x = ((x % k) + k) % k;
    }
    RAHTM_REQUIRE(x >= 0 && x < k, "comboCoord: stepped off a mesh edge");
    c[d] = x;
  }
  return c;
}

}  // namespace

double countMinimalPaths(const Torus& topo, const Coord& src,
                         const Coord& dst) {
  double total = 0;
  for (const Combo& combo : enumerateCombos(topo, src, dst)) {
    total += multinomial(combo.steps);
  }
  return total;
}

void forEachUniformMinimalLoad(
    const Torus& topo, const Coord& src, const Coord& dst, double volume,
    const std::function<void(ChannelId, double)>& sink) {
  if (volume == 0) return;
  const auto combos = enumerateCombos(topo, src, dst);
  double totalPaths = 0;
  for (const Combo& c : combos) totalPaths += multinomial(c.steps);
  if (totalPaths == 0) return;  // src == dst: no network traffic

  const std::size_t n = topo.ndims();
  for (const Combo& combo : combos) {
    SmallVec<std::int32_t, kMaxDims> p(n, 0);
    // Enumerate every lattice position on this combo's minimal paths.
    while (true) {
      const double pathsTo = multinomial(p);
      const Coord here = comboCoord(topo, src, combo, p);
      const NodeId hereId = topo.nodeId(here);
      for (std::size_t d = 0; d < n; ++d) {
        if (p[d] >= combo.steps[d]) continue;
        // Take one hop in dimension d: remaining steps after the hop.
        SmallVec<std::int32_t, kMaxDims> rem(n, 0);
        for (std::size_t e = 0; e < n; ++e) rem[e] = combo.steps[e] - p[e];
        rem[d] -= 1;
        const double pathsFrom = multinomial(rem);
        const double frac = pathsTo * pathsFrom / totalPaths;
        sink(topo.channelId(hereId, d, combo.dirs[d]), volume * frac);
      }
      if (!advanceProgress(p, combo.steps)) break;
    }
  }
}

void accumulateUniformMinimal(const Torus& topo, const Coord& src,
                              const Coord& dst, double volume,
                              ChannelLoadMap& loads) {
  forEachUniformMinimalLoad(topo, src, dst, volume,
                            [&loads](ChannelId c, double v) { loads.add(c, v); });
}

void accumulateDimensionOrder(const Torus& topo, const Coord& src,
                              const Coord& dst, double volume,
                              ChannelLoadMap& loads) {
  if (volume == 0) return;
  Coord cur = src;
  for (std::size_t d = 0; d < topo.ndims(); ++d) {
    MinimalOffset off = topo.minimalOffset(cur, dst, d);
    for (std::int32_t s = 0; s < off.steps; ++s) {
      const NodeId hereId = topo.nodeId(cur);
      loads.add(topo.channelId(hereId, d, off.dir), volume);
      const auto next = topo.neighbor(cur, d, off.dir);
      RAHTM_REQUIRE(next.has_value(), "DOR stepped off the topology");
      cur = *next;
    }
  }
  RAHTM_REQUIRE(cur == dst, "DOR did not reach destination");
}

ChannelLoadMap placementLoads(const Torus& topo, const CommGraph& graph,
                              const std::vector<NodeId>& nodeOfVertex,
                              LoadModel model) {
  RAHTM_REQUIRE(
      nodeOfVertex.size() >= static_cast<std::size_t>(graph.numRanks()),
      "placementLoads: placement too small");
  ChannelLoadMap loads(topo);
  for (const Flow& f : graph.flows()) {
    const NodeId u = nodeOfVertex[static_cast<std::size_t>(f.src)];
    const NodeId v = nodeOfVertex[static_cast<std::size_t>(f.dst)];
    RAHTM_REQUIRE(u >= 0 && v >= 0, "placementLoads: unmapped vertex");
    if (u == v) continue;
    const Coord cu = topo.coordOf(u);
    const Coord cv = topo.coordOf(v);
    if (model == LoadModel::UniformMinimal) {
      accumulateUniformMinimal(topo, cu, cv, f.bytes, loads);
    } else {
      accumulateDimensionOrder(topo, cu, cv, f.bytes, loads);
    }
  }
  return loads;
}

double placementMcl(const Torus& topo, const CommGraph& graph,
                    const std::vector<NodeId>& nodeOfVertex, LoadModel model) {
  return placementLoads(topo, graph, nodeOfVertex, model).maxLoad();
}

}  // namespace rahtm
