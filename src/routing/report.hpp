#pragma once
/// \file report.hpp
/// Mapping-quality reports: the channel-load statistics a network engineer
/// would ask for when comparing mappings — MCL under several routing
/// models, load distribution (mean, percentiles, Jain fairness), and
/// hop-bytes.

#include <string>
#include <vector>

#include "graph/comm_graph.hpp"
#include "routing/channel_load.hpp"
#include "topology/torus.hpp"

namespace rahtm {

/// Distribution statistics of the valid channels' loads.
struct LoadDistribution {
  double max = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  /// Jain's fairness index: (Σx)^2 / (n·Σx^2); 1 = perfectly balanced.
  double fairness = 0;
  std::int64_t channels = 0;
  std::int64_t idleChannels = 0;  ///< valid channels with zero load
};

/// Compute the distribution over the valid channels of \p loads.
LoadDistribution summarizeLoads(const ChannelLoadMap& loads);

/// Everything about one placement in one struct (uniform-minimal model
/// plus dimension-order for reference).
struct MappingReport {
  LoadDistribution uniformMinimal;
  LoadDistribution dimensionOrder;
  double hopBytes = 0;
  double avgHops = 0;
};

MappingReport reportMapping(const Torus& topo, const CommGraph& graph,
                            const std::vector<NodeId>& nodeOfVertex);

/// Render a short human-readable block (used by examples and benches).
std::string formatReport(const MappingReport& report);

}  // namespace rahtm
