#include "routing/delta_eval.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "routing/oblivious.hpp"
#include "routing/route_cache.hpp"

namespace rahtm {

namespace {

/// Above this node count the N^2 dense pair index would dominate memory;
/// fall back to a hash index (the arena layout is unchanged).
constexpr std::int64_t kDenseIndexNodeCap = 1024;

/// Eager full-table builds are reserved for subproblem-sized topologies
/// (every (src,dst) pair is enumerated; cubes re-anneal thousands of times
/// and amortize the build across restarts and threads).
constexpr std::int64_t kEagerBuildNodeCap = 128;

/// Cancellation-residue scrub threshold, relative to the channel's peak
/// applied load. An absolute cutoff (the old -1e-7) misclassifies
/// legitimately tiny loads on low-volume workloads and misses residue on
/// large-volume ones; a few-ulp remainder of +/- cancellation is always
/// tiny *relative to what the channel has carried*.
constexpr double kResidueRelEps = 1e-12;

inline double scrubResidue(double v, double peak) {
  return std::abs(v) < kResidueRelEps * peak ? 0.0 : v;
}

inline std::uint64_t pairKey(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}

}  // namespace

// ---- RouteTable -----------------------------------------------------------

RouteTable::RouteTable(const Torus& topo) : topo_(topo) {
  denseIndex_ = topo.numNodes() <= kDenseIndexNodeCap;
  if (denseIndex_) {
    dense_.resize(static_cast<std::size_t>(topo.numNodes() * topo.numNodes()));
  }
  accountBytes();
}

void RouteTable::accountBytes() {
  std::size_t b = dense_.capacity() * sizeof(Slice) +
                  channels_.capacity() * sizeof(ChannelId) +
                  fracs_.capacity() * sizeof(double);
  // Hash-index fallback: node size (pair + two pointers of chaining
  // overhead) per entry plus the bucket array. An estimate, but the arena
  // dominates at any scale where the sparse index is active.
  b += sparse_.size() *
           (sizeof(std::pair<const std::uint64_t, Slice>) + 2 * sizeof(void*)) +
       sparse_.bucket_count() * sizeof(void*);
  mem_.set(static_cast<std::int64_t>(b));
}

RouteTable::Slice& RouteTable::sliceOf(NodeId src, NodeId dst) {
  if (denseIndex_) {
    return dense_[static_cast<std::size_t>(
        static_cast<std::int64_t>(src) * topo_.numNodes() + dst)];
  }
  return sparse_[pairKey(src, dst)];
}

const RouteTable::Slice* RouteTable::findSlice(NodeId src, NodeId dst) const {
  if (denseIndex_) {
    return &dense_[static_cast<std::size_t>(
        static_cast<std::int64_t>(src) * topo_.numNodes() + dst)];
  }
  const auto it = sparse_.find(pairKey(src, dst));
  return it == sparse_.end() ? nullptr : &it->second;
}

RouteTable::Span RouteTable::get(NodeId src, NodeId dst) {
  Slice& s = sliceOf(src, dst);
  if (s.start < 0) {
    RAHTM_REQUIRE(!complete_, "RouteTable: miss on a complete table");
    s.start = static_cast<std::int64_t>(channels_.size());
    forEachUniformMinimalLoad(
        topo_, topo_.coordOf(src), topo_.coordOf(dst), 1.0,
        [this](ChannelId c, double frac) {
          channels_.push_back(c);
          fracs_.push_back(frac);
        });
    s.len = static_cast<std::int64_t>(channels_.size()) - s.start;
    accountBytes();  // capacity-based: atomics touched only on arena growth
  }
  return {channels_.data() + s.start, fracs_.data() + s.start,
          static_cast<std::size_t>(s.len)};
}

RouteTable::Span RouteTable::find(NodeId src, NodeId dst) const {
  const Slice* s = findSlice(src, dst);
  RAHTM_REQUIRE(s != nullptr && s->start >= 0,
                "RouteTable::find: route not built (table not complete?)");
  return {channels_.data() + s->start, fracs_.data() + s->start,
          static_cast<std::size_t>(s->len)};
}

void RouteTable::buildAll() {
  const NodeId n = static_cast<NodeId>(topo_.numNodes());
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) get(s, d);
  }
  complete_ = true;
  accountBytes();
}

bool RouteTable::fullBuildFeasible(const Torus& topo) {
  return topo.numNodes() <= kEagerBuildNodeCap;
}

std::shared_ptr<const RouteTable> RouteTable::buildFull(const Torus& topo) {
  auto table = std::make_shared<RouteTable>(topo);
  table->buildAll();
  return table;
}

// ---- DeltaPlacementEval ---------------------------------------------------

DeltaPlacementEval::DeltaPlacementEval(
    const Torus& topo, const CommGraph& graph, std::vector<NodeId> placement,
    Config cfg, std::shared_ptr<const RouteTable> routes,
    std::shared_ptr<const FlowIncidence> incidence,
    std::shared_ptr<TieredRouteCache> tieredRoutes)
    : topo_(&topo),
      graph_(&graph),
      cfg_(cfg),
      placement_(std::move(placement)),
      sharedIncidence_(std::move(incidence)),
      sharedRoutes_(std::move(routes)),
      tieredRoutes_(std::move(tieredRoutes)) {
  if (sharedIncidence_ != nullptr) {
    incidence_ = sharedIncidence_.get();
  } else {
    ownIncidence_ = buildFlowIncidence(graph);
    incidence_ = &ownIncidence_;
  }
  RAHTM_REQUIRE(
      placement_.size() >= static_cast<std::size_t>(graph.numRanks()),
      "DeltaPlacementEval: placement too small");
  if (sharedRoutes_ != nullptr) {
    RAHTM_REQUIRE(sharedRoutes_->complete(),
                  "DeltaPlacementEval: shared route table must be complete");
  } else if (tieredRoutes_ != nullptr) {
    RAHTM_REQUIRE(tieredRoutes_->topology() == topo,
                  "DeltaPlacementEval: tiered cache serves another topology");
  } else if (cfg_.trackLoads) {
    ownRoutes_ = std::make_unique<RouteTable>(topo);
  }
  if (cfg_.trackLoads) {
    const auto slots = static_cast<std::size_t>(topo.numChannelSlots());
    loads_.assign(slots, 0.0);
    peak_.assign(slots, 0.0);
    delta_.assign(slots, 0.0);
    mark_.assign(slots, 0);
  }
  rebuild();
  accountBytes();
}

void DeltaPlacementEval::accountBytes() {
  const std::size_t b =
      placement_.capacity() * sizeof(NodeId) +
      loads_.capacity() * sizeof(double) + peak_.capacity() * sizeof(double) +
      delta_.capacity() * sizeof(double) +
      mark_.capacity() * sizeof(std::uint32_t) +
      (heap_.capacity() + stash_.capacity()) *
          sizeof(std::pair<double, ChannelId>) +
      touched_.capacity() * sizeof(ChannelId);
  mem_.set(static_cast<std::int64_t>(b));
}

RouteTable::Span DeltaPlacementEval::route(NodeId src, NodeId dst) {
  if (sharedRoutes_ != nullptr) return sharedRoutes_->find(src, dst);
  // Every caller fully consumes one span before asking for the next, so the
  // tiered copy-out scratch is safe to reuse per lookup.
  if (tieredRoutes_ != nullptr) {
    return tieredRoutes_->read(src, dst, tierScratch_);
  }
  return ownRoutes_->get(src, dst);
}

void DeltaPlacementEval::rebuild() {
  pending_ = Pending::None;
  if (cfg_.trackLoads) {
    std::fill(loads_.begin(), loads_.end(), 0.0);
    for (const Flow& f : graph_->flows()) {
      const NodeId u = placement_[static_cast<std::size_t>(f.src)];
      const NodeId v = placement_[static_cast<std::size_t>(f.dst)];
      RAHTM_REQUIRE(u >= 0 && v >= 0, "DeltaPlacementEval: unmapped vertex");
      if (u == v || f.bytes == 0) continue;
      const RouteTable::Span r = route(u, v);
      for (std::size_t i = 0; i < r.size; ++i) {
        loads_[static_cast<std::size_t>(r.channels[i])] += r.fracs[i] * f.bytes;
      }
    }
    heap_.clear();
    for (std::size_t c = 0; c < loads_.size(); ++c) {
      peak_[c] = std::max(peak_[c], std::abs(loads_[c]));
      if (loads_[c] != 0.0) {
        heap_.emplace_back(loads_[c], static_cast<ChannelId>(c));
      }
    }
    std::make_heap(heap_.begin(), heap_.end());
    sweepStats();
  }
  if (cfg_.trackHopBytes) {
    double hb = 0;
    for (const Flow& f : graph_->flows()) {
      const NodeId u = placement_[static_cast<std::size_t>(f.src)];
      const NodeId v = placement_[static_cast<std::size_t>(f.dst)];
      RAHTM_REQUIRE(u >= 0 && v >= 0, "DeltaPlacementEval: unmapped vertex");
      hb += f.bytes * static_cast<double>(topo_->distance(u, v));
    }
    cur_.hopBytes = hb;
  }
  ++denseSweeps_;
}

void DeltaPlacementEval::sweepStats() {
  double mx = 0;
  double sq = 0;
  for (const double v : loads_) {
    mx = std::max(mx, v);
    sq += v * v;
  }
  cur_.mcl = mx;
  cur_.sumSquares = sq;
}

void DeltaPlacementEval::touchChannel(ChannelId c) {
  const auto idx = static_cast<std::size_t>(c);
  if (mark_[idx] != epoch_) {
    mark_[idx] = epoch_;
    delta_[idx] = 0.0;
    touched_.push_back(c);
  }
}

void DeltaPlacementEval::probeFlows(RankId a, RankId b, NodeId nodeA,
                                    NodeId nodeB) {
  // Placement of vertex r after the pending move.
  const auto nodeAfter = [&](RankId r) {
    if (r == a) return nodeA;
    if (b != kInvalidRank && r == b) return nodeB;
    return placement_[static_cast<std::size_t>(r)];
  };
  double hbDelta = 0;
  const auto& flows = graph_->flows();
  const auto processFlow = [&](const Flow& f) {
    if (f.bytes == 0) return;
    const NodeId u0 = placement_[static_cast<std::size_t>(f.src)];
    const NodeId v0 = placement_[static_cast<std::size_t>(f.dst)];
    const NodeId u1 = nodeAfter(f.src);
    const NodeId v1 = nodeAfter(f.dst);
    if (u0 == u1 && v0 == v1) return;
    if (cfg_.trackLoads) {
      if (u0 != v0) {
        const RouteTable::Span r = route(u0, v0);
        for (std::size_t i = 0; i < r.size; ++i) {
          touchChannel(r.channels[i]);
          delta_[static_cast<std::size_t>(r.channels[i])] -=
              r.fracs[i] * f.bytes;
        }
      }
      if (u1 != v1) {
        const RouteTable::Span r = route(u1, v1);
        for (std::size_t i = 0; i < r.size; ++i) {
          touchChannel(r.channels[i]);
          delta_[static_cast<std::size_t>(r.channels[i])] +=
              r.fracs[i] * f.bytes;
        }
      }
    }
    if (cfg_.trackHopBytes) {
      hbDelta += f.bytes * static_cast<double>(topo_->distance(u1, v1)) -
                 f.bytes * static_cast<double>(topo_->distance(u0, v0));
    }
  };
  for (const std::uint32_t fi : incidence_->of(static_cast<std::size_t>(a))) {
    processFlow(flows[fi]);
  }
  if (b != kInvalidRank) {
    for (const std::uint32_t fi : incidence_->of(static_cast<std::size_t>(b))) {
      const Flow& f = flows[fi];
      // Flows between a and b were already handled in a's list.
      if (f.src == a || f.dst == a) continue;
      processFlow(f);
    }
  }
  if (cfg_.trackHopBytes) {
    pendingSummary_.hopBytes = cur_.hopBytes + hbDelta;
  }
}

double DeltaPlacementEval::maxExcludingTouched() {
  stash_.clear();
  double best = 0;
  while (!heap_.empty()) {
    const auto top = heap_.front();
    const auto idx = static_cast<std::size_t>(top.second);
    if (loads_[idx] != top.first) {
      // Stale: the channel moved on since this entry was pushed.
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
      continue;
    }
    if (mark_[idx] == epoch_) {
      // Valid but touched by the pending probe: set aside, reinsert below.
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.pop_back();
      stash_.push_back(top);
      continue;
    }
    best = top.first;
    break;
  }
  for (const auto& e : stash_) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end());
  }
  return best;
}

const DeltaPlacementEval::Summary& DeltaPlacementEval::probeSwap(RankId a,
                                                                 RankId b) {
  RAHTM_REQUIRE(a != b, "probeSwap: identical vertices");
  ++probes_;
  pending_ = Pending::Swap;
  pendA_ = a;
  pendB_ = b;
  touched_.clear();
  if (cfg_.trackLoads && ++epoch_ == 0) {  // epoch wrap: invalidate marks
    std::fill(mark_.begin(), mark_.end(), 0);
    epoch_ = 1;
  }
  pendingSummary_ = cur_;
  probeFlows(a, b, placement_[static_cast<std::size_t>(b)],
             placement_[static_cast<std::size_t>(a)]);
  if (cfg_.trackLoads) {
    double mx = maxExcludingTouched();
    double sq = cur_.sumSquares;
    for (const ChannelId c : touched_) {
      const auto idx = static_cast<std::size_t>(c);
      const double oldV = loads_[idx];
      const double newV = scrubResidue(oldV + delta_[idx], peak_[idx]);
      mx = std::max(mx, newV);
      sq += newV * newV - oldV * oldV;
    }
    pendingSummary_.mcl = mx;
    pendingSummary_.sumSquares = sq;
  }
  return pendingSummary_;
}

const DeltaPlacementEval::Summary& DeltaPlacementEval::probeMove(RankId a,
                                                                 NodeId node) {
  ++probes_;
  pending_ = Pending::Move;
  pendA_ = a;
  pendB_ = kInvalidRank;
  pendNode_ = node;
  touched_.clear();
  if (cfg_.trackLoads && ++epoch_ == 0) {
    std::fill(mark_.begin(), mark_.end(), 0);
    epoch_ = 1;
  }
  pendingSummary_ = cur_;
  probeFlows(a, kInvalidRank, node, kInvalidNode);
  if (cfg_.trackLoads) {
    double mx = maxExcludingTouched();
    double sq = cur_.sumSquares;
    for (const ChannelId c : touched_) {
      const auto idx = static_cast<std::size_t>(c);
      const double oldV = loads_[idx];
      const double newV = scrubResidue(oldV + delta_[idx], peak_[idx]);
      mx = std::max(mx, newV);
      sq += newV * newV - oldV * oldV;
    }
    pendingSummary_.mcl = mx;
    pendingSummary_.sumSquares = sq;
  }
  return pendingSummary_;
}

void DeltaPlacementEval::commit() {
  RAHTM_REQUIRE(pending_ != Pending::None, "commit: no pending probe");
  if (cfg_.trackLoads) {
    for (const ChannelId c : touched_) {
      const auto idx = static_cast<std::size_t>(c);
      const double oldV = loads_[idx];
      // Same arithmetic as the probe: commit is bit-identical by
      // construction.
      const double newV = scrubResidue(oldV + delta_[idx], peak_[idx]);
      if (newV != oldV) {
        loads_[idx] = newV;
        if (newV != 0.0) heapPush(newV, c);
      }
      peak_[idx] = std::max(peak_[idx], std::abs(newV));
    }
  }
  if (pending_ == Pending::Swap) {
    std::swap(placement_[static_cast<std::size_t>(pendA_)],
              placement_[static_cast<std::size_t>(pendB_)]);
  } else {
    placement_[static_cast<std::size_t>(pendA_)] = pendNode_;
  }
  cur_ = pendingSummary_;
  pending_ = Pending::None;
  ++commits_;
  compactHeapIfNeeded();
}

void DeltaPlacementEval::heapPush(double value, ChannelId c) {
  heap_.emplace_back(value, c);
  std::push_heap(heap_.begin(), heap_.end());
}

void DeltaPlacementEval::compactHeapIfNeeded() {
  if (!cfg_.trackLoads) return;
  accountBytes();  // per commit; capacity based, atomics only on heap growth
  const std::size_t cap = std::max<std::size_t>(1024, 4 * loads_.size());
  if (heap_.size() <= cap) return;
  // Dense sweep: drop every stale entry and resynchronize the running
  // sum of squares (bounds incremental floating-point drift). Triggered by
  // a deterministic size threshold, so the search stays reproducible.
  heap_.clear();
  for (std::size_t c = 0; c < loads_.size(); ++c) {
    if (loads_[c] != 0.0) {
      heap_.emplace_back(loads_[c], static_cast<ChannelId>(c));
    }
  }
  std::make_heap(heap_.begin(), heap_.end());
  sweepStats();
  ++denseSweeps_;
}

}  // namespace rahtm
