#pragma once
/// \file lp_routing.hpp
/// Optimal minimal-path routing of a placed communication pattern, by
/// linear programming: each flow may split arbitrarily across its minimal
/// channels, and the LP minimizes the maximum channel load.
///
/// This is the idealized counterpart of the uniform-minimal model in
/// oblivious.hpp: uniform splitting is what the MAR approximation assumes
/// packets do on average; the LP computes the best any minimal routing could
/// do. The Table II MILP (core/milp_mapper.hpp) optimizes over placement
/// *and* this routing simultaneously; this header provides the routing-only
/// subproblem for fixed placements, used to cross-validate the MILP and as
/// an alternative evaluation metric.

#include <vector>

#include "graph/comm_graph.hpp"
#include "lp/simplex.hpp"
#include "topology/torus.hpp"

namespace rahtm {

struct LpRoutingResult {
  lp::SolveStatus status = lp::SolveStatus::Infeasible;
  double mcl = 0;  ///< optimal maximum channel load
};

/// Minimum achievable MCL when every flow of \p graph (placed by
/// \p nodeOfVertex onto \p topo) may split across all of its minimal
/// channels. Direction ties (torus offsets of exactly k/2) may also split,
/// matching MAR's use of all Manhattan paths.
LpRoutingResult optimalMinimalMcl(const Torus& topo, const CommGraph& graph,
                                  const std::vector<NodeId>& nodeOfVertex,
                                  const lp::SimplexOptions& opts = {});

}  // namespace rahtm
