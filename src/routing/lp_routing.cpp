#include "routing/lp_routing.hpp"

#include <map>
#include <set>
#include <string>

#include "common/error.hpp"
#include "lp/model.hpp"

namespace rahtm {

namespace {

/// A directed channel usable by a flow on some minimal path.
struct FlowChannel {
  ChannelId channel;
  NodeId from;
  NodeId to;
};

/// All channels lying on a minimal path from \p src to \p dst: channel
/// (u -> v along dim) qualifies iff dist(s,u) + 1 + dist(v,d) == dist(s,d).
std::vector<FlowChannel> minimalChannels(const Torus& topo, NodeId src,
                                         NodeId dst) {
  std::vector<FlowChannel> out;
  const std::int32_t total = topo.distance(src, dst);
  for (NodeId u = 0; u < topo.numNodes(); ++u) {
    const std::int32_t toU = topo.distance(src, u);
    if (toU >= total) continue;  // u cannot be an interior hop start
    const Coord cu = topo.coordOf(u);
    for (std::size_t d = 0; d < topo.ndims(); ++d) {
      for (const Dir dir : {Dir::Plus, Dir::Minus}) {
        const auto nb = topo.neighbor(cu, d, dir);
        if (!nb) continue;
        const NodeId v = topo.nodeId(*nb);
        if (toU + 1 + topo.distance(v, dst) == total) {
          out.push_back({topo.channelId(u, d, dir), u, v});
        }
      }
    }
  }
  return out;
}

}  // namespace

LpRoutingResult optimalMinimalMcl(const Torus& topo, const CommGraph& graph,
                                  const std::vector<NodeId>& nodeOfVertex,
                                  const lp::SimplexOptions& opts) {
  using lp::Term;
  lp::Model model;
  model.setObjective(lp::Objective::Minimize);
  const lp::VarId z = model.addContinuous("z", 0, lp::infinity(), 1.0);

  // Per channel: the flow variables crossing it (for the z rows).
  std::map<ChannelId, std::vector<lp::VarId>> byChannel;

  int flowIdx = 0;
  for (const Flow& f : graph.flows()) {
    const NodeId s = nodeOfVertex.at(static_cast<std::size_t>(f.src));
    const NodeId t = nodeOfVertex.at(static_cast<std::size_t>(f.dst));
    RAHTM_REQUIRE(s >= 0 && t >= 0, "optimalMinimalMcl: unmapped vertex");
    if (s == t) {
      ++flowIdx;
      continue;
    }
    const auto channels = minimalChannels(topo, s, t);
    // Flow variables and per-node incident lists.
    std::map<NodeId, std::vector<Term>> nodeBalance;  // out +1 / in -1
    for (const FlowChannel& fc : channels) {
      const lp::VarId v = model.addContinuous(
          "f" + std::to_string(flowIdx) + "_c" + std::to_string(fc.channel), 0,
          f.bytes);
      byChannel[fc.channel].push_back(v);
      nodeBalance[fc.from].push_back(Term{v, 1.0});
      nodeBalance[fc.to].push_back(Term{v, -1.0});
    }
    for (auto& [node, terms] : nodeBalance) {
      double rhs = 0;
      if (node == s) rhs = f.bytes;
      else if (node == t) rhs = -f.bytes;
      model.addConstraint(
          "bal_f" + std::to_string(flowIdx) + "_n" + std::to_string(node),
          terms, lp::Sense::Equal, rhs);
    }
    ++flowIdx;
  }

  for (const auto& [channel, vars] : byChannel) {
    std::vector<Term> terms;
    terms.reserve(vars.size() + 1);
    for (const lp::VarId v : vars) terms.push_back(Term{v, 1.0});
    terms.push_back(Term{z, -1.0});
    model.addConstraint("cap_c" + std::to_string(channel), terms,
                        lp::Sense::LessEq, 0.0);
  }

  const lp::LpSolution sol = lp::solveLp(model, opts);
  LpRoutingResult r;
  r.status = sol.status;
  if (sol.status == lp::SolveStatus::Optimal) r.mcl = sol.objective;
  return r;
}

}  // namespace rahtm
