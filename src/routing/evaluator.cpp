#include "routing/evaluator.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "routing/route_cache.hpp"

namespace rahtm {

MclEvaluator::MclEvaluator(const Torus& topo)
    : topo_(&topo),
      ownRoutes_(std::make_unique<RouteTable>(topo)),
      scratch_(static_cast<std::size_t>(topo.numChannelSlots()), 0.0),
      mark_(static_cast<std::size_t>(topo.numChannelSlots()), 0) {}

MclEvaluator::MclEvaluator(const Torus& topo,
                           std::shared_ptr<const RouteTable> routes)
    : topo_(&topo),
      sharedRoutes_(std::move(routes)),
      scratch_(static_cast<std::size_t>(topo.numChannelSlots()), 0.0),
      mark_(static_cast<std::size_t>(topo.numChannelSlots()), 0) {
  RAHTM_REQUIRE(sharedRoutes_ != nullptr && sharedRoutes_->complete(),
                "MclEvaluator: shared route table must be complete");
}

MclEvaluator::MclEvaluator(const Torus& topo,
                           std::shared_ptr<TieredRouteCache> tiered)
    : topo_(&topo),
      tieredRoutes_(std::move(tiered)),
      scratch_(static_cast<std::size_t>(topo.numChannelSlots()), 0.0),
      mark_(static_cast<std::size_t>(topo.numChannelSlots()), 0) {
  RAHTM_REQUIRE(tieredRoutes_ != nullptr && tieredRoutes_->topology() == topo,
                "MclEvaluator: tiered cache serves another topology");
}

RouteTable::Span MclEvaluator::routeOf(NodeId src, NodeId dst) {
  if (sharedRoutes_ != nullptr) return sharedRoutes_->find(src, dst);
  // accumulate() fully consumes each span before the next lookup, so the
  // tiered copy-out scratch is reused safely.
  if (tieredRoutes_ != nullptr) {
    return tieredRoutes_->read(src, dst, tierScratch_);
  }
  return ownRoutes_->get(src, dst);
}

void MclEvaluator::accumulate(const CommGraph& graph,
                              const std::vector<NodeId>& nodeOfVertex) {
  RAHTM_REQUIRE(
      nodeOfVertex.size() >= static_cast<std::size_t>(graph.numRanks()),
      "MclEvaluator: placement too small");
  touched_.clear();
  if (++epoch_ == 0) {  // epoch wrap: invalidate all stale marks
    std::fill(mark_.begin(), mark_.end(), 0);
    epoch_ = 1;
  }
  for (const Flow& f : graph.flows()) {
    const NodeId u = nodeOfVertex[static_cast<std::size_t>(f.src)];
    const NodeId v = nodeOfVertex[static_cast<std::size_t>(f.dst)];
    RAHTM_REQUIRE(u >= 0 && v >= 0, "MclEvaluator: unmapped vertex");
    if (u == v) continue;
    // Zero-volume flows add no load; skipping them also keeps them from
    // registering channels in touched_ (the former `cell == 0.0` test
    // pushed such channels once per flow that grazed them).
    if (f.bytes == 0) continue;
    const RouteTable::Span r = routeOf(u, v);
    for (std::size_t i = 0; i < r.size; ++i) {
      const auto idx = static_cast<std::size_t>(r.channels[i]);
      if (mark_[idx] != epoch_) {
        mark_[idx] = epoch_;
        scratch_[idx] = 0;
        touched_.push_back(r.channels[i]);
      }
      scratch_[idx] += r.fracs[i] * f.bytes;
    }
  }
}

MclEvaluator::LoadSummary MclEvaluator::summarize(
    const CommGraph& graph, const std::vector<NodeId>& nodeOfVertex) {
  accumulate(graph, nodeOfVertex);
  LoadSummary s;
  for (const ChannelId c : touched_) {
    const double v = scratch_[static_cast<std::size_t>(c)];
    s.mcl = std::max(s.mcl, v);
    s.sumSquares += v * v;
  }
  return s;
}

double MclEvaluator::mcl(const CommGraph& graph,
                         const std::vector<NodeId>& nodeOfVertex) {
  accumulate(graph, nodeOfVertex);
  double best = 0;
  for (const ChannelId c : touched_) {
    best = std::max(best, scratch_[static_cast<std::size_t>(c)]);
  }
  return best;
}

double MclEvaluator::hopBytesOf(
    const CommGraph& graph, const std::vector<NodeId>& nodeOfVertex) const {
  double hb = 0;
  for (const Flow& f : graph.flows()) {
    const NodeId u = nodeOfVertex[static_cast<std::size_t>(f.src)];
    const NodeId v = nodeOfVertex[static_cast<std::size_t>(f.dst)];
    hb += f.bytes * static_cast<double>(topo_->distance(u, v));
  }
  return hb;
}

}  // namespace rahtm
