#include "routing/evaluator.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rahtm {

MclEvaluator::MclEvaluator(const Torus& topo)
    : topo_(&topo),
      scratch_(static_cast<std::size_t>(topo.numChannelSlots()), 0.0) {}

const std::vector<std::pair<ChannelId, double>>& MclEvaluator::pairEntries(
    NodeId src, NodeId dst) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint32_t>(dst);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    std::vector<std::pair<ChannelId, double>> entries;
    forEachUniformMinimalLoad(
        *topo_, topo_->coordOf(src), topo_->coordOf(dst), 1.0,
        [&entries](ChannelId c, double frac) { entries.push_back({c, frac}); });
    it = cache_.emplace(key, std::move(entries)).first;
  }
  return it->second;
}

MclEvaluator::LoadSummary MclEvaluator::summarize(
    const CommGraph& graph, const std::vector<NodeId>& nodeOfVertex) {
  RAHTM_REQUIRE(
      nodeOfVertex.size() >= static_cast<std::size_t>(graph.numRanks()),
      "MclEvaluator::summarize: placement too small");
  for (const ChannelId c : touched_) scratch_[static_cast<std::size_t>(c)] = 0;
  touched_.clear();
  for (const Flow& f : graph.flows()) {
    const NodeId u = nodeOfVertex[static_cast<std::size_t>(f.src)];
    const NodeId v = nodeOfVertex[static_cast<std::size_t>(f.dst)];
    RAHTM_REQUIRE(u >= 0 && v >= 0, "MclEvaluator::summarize: unmapped vertex");
    if (u == v) continue;
    for (const auto& [channel, frac] : pairEntries(u, v)) {
      auto& cell = scratch_[static_cast<std::size_t>(channel)];
      if (cell == 0.0) touched_.push_back(channel);
      cell += frac * f.bytes;
    }
  }
  LoadSummary s;
  for (const ChannelId c : touched_) {
    const double v = scratch_[static_cast<std::size_t>(c)];
    s.mcl = std::max(s.mcl, v);
    s.sumSquares += v * v;
  }
  return s;
}

double MclEvaluator::mcl(const CommGraph& graph,
                         const std::vector<NodeId>& nodeOfVertex) {
  RAHTM_REQUIRE(
      nodeOfVertex.size() >= static_cast<std::size_t>(graph.numRanks()),
      "MclEvaluator::mcl: placement too small");
  for (const ChannelId c : touched_) scratch_[static_cast<std::size_t>(c)] = 0;
  touched_.clear();
  for (const Flow& f : graph.flows()) {
    const NodeId u = nodeOfVertex[static_cast<std::size_t>(f.src)];
    const NodeId v = nodeOfVertex[static_cast<std::size_t>(f.dst)];
    RAHTM_REQUIRE(u >= 0 && v >= 0, "MclEvaluator::mcl: unmapped vertex");
    if (u == v) continue;
    for (const auto& [channel, frac] : pairEntries(u, v)) {
      auto& cell = scratch_[static_cast<std::size_t>(channel)];
      if (cell == 0.0) touched_.push_back(channel);
      cell += frac * f.bytes;
    }
  }
  double best = 0;
  for (const ChannelId c : touched_) {
    best = std::max(best, scratch_[static_cast<std::size_t>(c)]);
  }
  return best;
}

double MclEvaluator::hopBytesOf(
    const CommGraph& graph, const std::vector<NodeId>& nodeOfVertex) const {
  double hb = 0;
  for (const Flow& f : graph.flows()) {
    const NodeId u = nodeOfVertex[static_cast<std::size_t>(f.src)];
    const NodeId v = nodeOfVertex[static_cast<std::size_t>(f.dst)];
    hb += f.bytes * static_cast<double>(topo_->distance(u, v));
  }
  return hb;
}

}  // namespace rahtm
