#include "routing/evaluator.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rahtm {

MclEvaluator::MclEvaluator(const Torus& topo)
    : topo_(&topo),
      scratch_(static_cast<std::size_t>(topo.numChannelSlots()), 0.0),
      mark_(static_cast<std::size_t>(topo.numChannelSlots()), 0) {}

const std::vector<std::pair<ChannelId, double>>& MclEvaluator::pairEntries(
    NodeId src, NodeId dst) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint32_t>(dst);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    std::vector<std::pair<ChannelId, double>> entries;
    forEachUniformMinimalLoad(
        *topo_, topo_->coordOf(src), topo_->coordOf(dst), 1.0,
        [&entries](ChannelId c, double frac) { entries.push_back({c, frac}); });
    it = cache_.emplace(key, std::move(entries)).first;
  }
  return it->second;
}

void MclEvaluator::accumulate(const CommGraph& graph,
                              const std::vector<NodeId>& nodeOfVertex) {
  RAHTM_REQUIRE(
      nodeOfVertex.size() >= static_cast<std::size_t>(graph.numRanks()),
      "MclEvaluator: placement too small");
  touched_.clear();
  if (++epoch_ == 0) {  // epoch wrap: invalidate all stale marks
    std::fill(mark_.begin(), mark_.end(), 0);
    epoch_ = 1;
  }
  for (const Flow& f : graph.flows()) {
    const NodeId u = nodeOfVertex[static_cast<std::size_t>(f.src)];
    const NodeId v = nodeOfVertex[static_cast<std::size_t>(f.dst)];
    RAHTM_REQUIRE(u >= 0 && v >= 0, "MclEvaluator: unmapped vertex");
    if (u == v) continue;
    // Zero-volume flows add no load; skipping them also keeps them from
    // registering channels in touched_ (the former `cell == 0.0` test
    // pushed such channels once per flow that grazed them).
    if (f.bytes == 0) continue;
    for (const auto& [channel, frac] : pairEntries(u, v)) {
      const auto idx = static_cast<std::size_t>(channel);
      if (mark_[idx] != epoch_) {
        mark_[idx] = epoch_;
        scratch_[idx] = 0;
        touched_.push_back(channel);
      }
      scratch_[idx] += frac * f.bytes;
    }
  }
}

MclEvaluator::LoadSummary MclEvaluator::summarize(
    const CommGraph& graph, const std::vector<NodeId>& nodeOfVertex) {
  accumulate(graph, nodeOfVertex);
  LoadSummary s;
  for (const ChannelId c : touched_) {
    const double v = scratch_[static_cast<std::size_t>(c)];
    s.mcl = std::max(s.mcl, v);
    s.sumSquares += v * v;
  }
  return s;
}

double MclEvaluator::mcl(const CommGraph& graph,
                         const std::vector<NodeId>& nodeOfVertex) {
  accumulate(graph, nodeOfVertex);
  double best = 0;
  for (const ChannelId c : touched_) {
    best = std::max(best, scratch_[static_cast<std::size_t>(c)]);
  }
  return best;
}

double MclEvaluator::hopBytesOf(
    const CommGraph& graph, const std::vector<NodeId>& nodeOfVertex) const {
  double hb = 0;
  for (const Flow& f : graph.flows()) {
    const NodeId u = nodeOfVertex[static_cast<std::size_t>(f.src)];
    const NodeId v = nodeOfVertex[static_cast<std::size_t>(f.dst)];
    hb += f.bytes * static_cast<double>(topo_->distance(u, v));
  }
  return hb;
}

}  // namespace rahtm
