#pragma once
/// \file route_cache.hpp
/// Tiered route cache: the scale story past the dense RouteTable.
///
/// A single `RouteTable` is either complete (eager all-pairs build, capped
/// at 128 nodes) or lazy-but-single-threaded, and its dense (src,dst) pair
/// index caps out at 1024 nodes. Neither shape survives paper scale: a
/// 512-node hierarchical solve touches many small sub-tori (each re-annealed
/// thousands of times — dense is right) *and* the full machine (where only a
/// sparse, evictable working set is affordable). `TieredRouteCache` provides
/// both tiers behind one object that the whole pipeline — subproblem waves,
/// merge, final refinement, the serve-layer artifact cache, and simnet's
/// flow mode — can share:
///
///  * **Dense tier** — `denseTier(sub)`: a complete, immutable `RouteTable`
///    per active sub-torus, memoized by topology fingerprint. Concurrent
///    pin-wave workers asking for the same cube share a single build
///    (promise/shared-future, first builder wins); `releaseDense(sub)`
///    streams tables out once a wave no longer needs them, so the resident
///    set tracks the *active* level instead of the whole hierarchy.
///  * **Sparse tier** — `read(src, dst, scratch)`: a sharded pair→route map
///    over the cache's own (machine) topology. Routes are computed on first
///    touch with the same canonical `forEachUniformMinimalLoad` enumeration
///    a RouteTable uses, so spans are bit-identical to any dense build. The
///    route is copied into caller-owned scratch under the shard lock, which
///    makes concurrent readers safe against concurrent eviction (a returned
///    span can never dangle into evicted storage).
///  * **Eviction** — `shed(targetBytes)`: LRU per shard, and the whole cache
///    registers as a mem-ledger DEGRADE callback so `RAHTM_MEM_BUDGET_MB`
///    sheds route storage before the run fails. Evicted keys are remembered
///    (a few bytes each) so a later rebuild is classified as a *refault* in
///    the stats — the route_micro ledger watches that churn.
///
/// Every byte the sparse tier holds — route vectors, the pair map's nodes
/// and buckets, and the eviction/refault bookkeeping — is charged to the
/// route_table mem account, so `mem_micro` sees the tier's true working set.
///
/// Determinism: a route's content is a pure function of (topology, src,
/// dst); dense, sparse, and evict-then-refault reads all reproduce it bit
/// for bit, so searches running over any tier (or losing entries to a
/// degrade mid-search) stay bit-identical. Only the hit/miss/refault
/// *counters* depend on timing.

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/mem.hpp"
#include "routing/delta_eval.hpp"
#include "topology/torus.hpp"

namespace rahtm {

struct TieredRouteCacheConfig {
  /// Sparse-tier LRU budget (route vectors + index bookkeeping). Past it,
  /// cold shards shed oldest-first. 0 = unlimited (degrade still sheds).
  std::int64_t maxSparseBytes = 0;
  /// Sparse-tier shard count (concurrency of independent readers).
  int shards = 8;
  /// Register a shed-everything DEGRADE callback on the global MemRegistry
  /// (unregistered in the destructor).
  bool registerDegrade = true;
};

class TieredRouteCache {
 public:
  using Config = TieredRouteCacheConfig;

  /// \p machine: the topology the sparse tier serves (`read` asserts its
  /// pairs against it). \p denseSource: optional provider the dense tier
  /// delegates to instead of memoizing locally — the serve ArtifactCache
  /// passes itself so cross-request sharing, LRU accounting, and hit/miss
  /// counters stay in one place. Non-owning; must outlive this cache.
  explicit TieredRouteCache(const Torus& machine, Config cfg = {},
                            ArtifactSource* denseSource = nullptr);
  ~TieredRouteCache();
  TieredRouteCache(const TieredRouteCache&) = delete;
  TieredRouteCache& operator=(const TieredRouteCache&) = delete;

  const Torus& topology() const { return machine_; }

  // ---- Dense tier ---------------------------------------------------------

  /// Complete, immutable route table for \p sub (which must satisfy
  /// RouteTable::fullBuildFeasible). Memoized; concurrent callers for the
  /// same shape share one build.
  std::shared_ptr<const RouteTable> denseTier(const Torus& sub);

  /// Stream one dense table out (e.g. after a pin wave finishes with its
  /// cube shape). Live shared_ptr holders keep the table alive; the cache
  /// just stops handing it out. Returns the bytes released from the tier's
  /// tally (0 when absent or delegated to a denseSource).
  std::int64_t releaseDense(const Torus& sub);

  // ---- Sparse tier --------------------------------------------------------

  /// Caller-owned copy-out buffer for sparse reads (one per reader thread).
  /// Alias of the RouteScratch consumers hold behind a forward declaration.
  using Scratch = RouteScratch;

  /// Route of (src,dst) on the machine topology, built on first touch.
  /// Thread-safe; the returned span points into \p scratch and stays valid
  /// until the next read through the same scratch.
  RouteTable::Span read(NodeId src, NodeId dst, Scratch& scratch);

  // ---- Eviction -----------------------------------------------------------

  /// Evict sparse entries (LRU per shard) until the sparse tier holds at
  /// most \p targetBytes, and drop every locally memoized dense table.
  /// Deadlock-safe from a mem-ledger degrade callback: shards already
  /// locked by their reader are skipped (try_lock) rather than waited on.
  /// Returns the bytes released.
  std::int64_t shed(std::int64_t targetBytes = 0);

  // ---- Observability ------------------------------------------------------

  struct Stats {
    std::int64_t denseTables = 0;  ///< locally memoized complete tables
    std::int64_t denseBytes = 0;
    std::int64_t denseHits = 0;
    std::int64_t denseMisses = 0;
    std::int64_t sparseEntries = 0;
    std::int64_t sparseBytes = 0;  ///< routes + index + evict bookkeeping
    /// Live route storage alone (the part maxSparseBytes bounds; the
    /// index/bookkeeping remainder is sparseBytes - sparseRouteBytes).
    std::int64_t sparseRouteBytes = 0;
    std::int64_t sparseHits = 0;
    std::int64_t sparseMisses = 0;
    std::int64_t refaults = 0;   ///< misses on a previously evicted pair
    std::int64_t evictions = 0;  ///< sparse entries + dense tables dropped
  };
  Stats stats() const;

  /// Mirror stats() into `rahtm.route.*` gauges when a metrics registry is
  /// installed (idempotent set(), like the serve cache's mirror).
  void noteMetrics() const;

 private:
  struct DenseEntry {
    std::shared_future<std::shared_ptr<const RouteTable>> future;
    std::int64_t bytes = 0;  ///< 0 until the build completes
  };
  struct SparseEntry {
    std::vector<ChannelId> channels;
    std::vector<double> fracs;
    std::uint64_t lastUse = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, SparseEntry> entries;
    /// Pairs evicted from this shard (refault classification; erased again
    /// when the pair is rebuilt). Charged to the mem account like the map.
    std::unordered_set<std::uint64_t> evicted;
    std::uint64_t tick = 0;  ///< per-shard LRU clock
    /// Capacity bytes of live entries (vectors + map-node overhead), kept
    /// incrementally so a miss does not rescan the shard.
    std::int64_t entryBytes = 0;
    std::int64_t bytes = 0;  ///< accounted sparse bytes in this shard
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t refaults = 0;
    std::int64_t evictions = 0;
    /// Guarded by mu (MemAccount itself is not thread-safe per instance).
    obs::MemAccount mem{obs::MemAccountId::RouteTable};
  };

  Shard& shardOf(std::uint64_t key);
  /// Recompute and charge \p shard's footprint. Caller holds shard.mu.
  static void accountShard(Shard& shard);
  /// Evict \p shard LRU-first until it holds <= perShardTarget. Caller
  /// holds shard.mu. Returns bytes released.
  static std::int64_t shedShardLocked(Shard& shard,
                                      std::int64_t perShardTarget);

  const Torus machine_;
  const Config cfg_;
  ArtifactSource* const denseSource_;
  int degradeHandle_ = -1;

  mutable std::mutex denseMu_;
  std::unordered_map<std::string, DenseEntry> dense_;
  std::int64_t denseHits_ = 0;    ///< guarded by denseMu_
  std::int64_t denseMisses_ = 0;  ///< guarded by denseMu_
  std::int64_t denseEvictions_ = 0;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rahtm
