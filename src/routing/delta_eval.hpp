#pragma once
/// \file delta_eval.hpp
/// Incremental (delta-evaluated) placement evaluation for the local-search
/// phases.
///
/// The refine and anneal hot loops evaluate millions of candidate moves that
/// each touch only two vertices. Re-deriving the full channel-load vector —
/// or even re-scanning it for the maximum — per candidate makes every trial
/// O(#channels); this engine makes both the *probe* (evaluate a candidate)
/// and the *commit* (adopt it) O(degree of the moved vertices):
///
///  * `RouteTable` — a flat structure-of-arrays route cache: for each
///    (src,dst) node pair the uniform-minimal path decomposition as a
///    contiguous (channel[], fraction[]) slice, keyed by the flattened pair
///    index. Built once per topology; an eagerly built table is immutable
///    and safe to share read-only across annealing restarts and
///    exec::ThreadPool workers. Replaces the per-restart
///    `std::unordered_map` + `std::function` sinks of the former
///    SwapState/MclEvaluator caches.
///
///  * `DeltaPlacementEval` — probe-then-commit evaluation of swap and
///    relocation moves. Channel loads live in a dense vector, but their
///    maximum is maintained by a lazy max-heap so a *rejected* probe never
///    sweeps the dense vector at all; the sum of squared loads (the MCL
///    plateau tie-breaker) and hop-bytes are maintained as running values
///    with O(touched)/O(degree) deltas.
///
/// Lazy-max invariant: for every channel c with loads_[c] != 0 the heap
/// holds at least one entry (loads_[c], c); entries whose value no longer
/// matches loads_[c] are stale and discarded when they surface. A dense
/// sweep is only needed when (a) the engine is (re)built from scratch or
/// (b) the heap has accumulated more than ~4x numChannelSlots entries and
/// is compacted (which also resynchronizes the running sum of squares).
///
/// Determinism: all updates are value-deterministic functions of the move
/// sequence, so searches driven by pre-split RNG streams stay bit-identical
/// for any thread count. Incrementally maintained stats can drift from a
/// from-scratch evaluation by a few ulps (floating-point addition is not
/// associative); `rebuild()` resynchronizes exactly, and probe/commit are
/// bit-identical to each other by construction.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "graph/comm_graph.hpp"
#include "obs/mem.hpp"
#include "topology/torus.hpp"

namespace rahtm {

/// Flat per-(src,dst) route cache over a fixed topology. Entries are the
/// unit-volume uniform-minimal channel fractions in the router's canonical
/// enumeration order (so accumulating `frac * bytes` reproduces
/// placementLoads() bit for bit).
class RouteTable {
 public:
  explicit RouteTable(const Torus& topo);

  const Torus& topology() const { return topo_; }

  /// Parallel views into the channel / fraction arrays of one route.
  struct Span {
    const ChannelId* channels = nullptr;
    const double* fracs = nullptr;
    std::size_t size = 0;
  };

  /// Route of (src,dst), building it on first use. NOT thread-safe unless
  /// the table is complete().
  Span get(NodeId src, NodeId dst);

  /// Read-only lookup on a complete table (thread-safe).
  Span find(NodeId src, NodeId dst) const;

  /// Eagerly build every (src,dst) route; afterwards the table is
  /// immutable and find()/get() are safe to call concurrently.
  void buildAll();
  bool complete() const { return complete_; }

  /// Whether an eager buildAll() is cheap enough to be worthwhile
  /// (subproblem cubes: yes; full machines: build lazily per owner).
  static bool fullBuildFeasible(const Torus& topo);

  /// Convenience: an eagerly built table ready for read-only sharing.
  static std::shared_ptr<const RouteTable> buildFull(const Torus& topo);

  std::size_t entryCount() const { return channels_.size(); }

  /// Bytes currently charged to the route_table account for this table.
  std::int64_t footprintBytes() const { return mem_.bytes(); }

 private:
  struct Slice {
    std::int64_t start = -1;  ///< -1: not built yet
    std::int64_t len = 0;
  };
  Slice& sliceOf(NodeId src, NodeId dst);
  const Slice* findSlice(NodeId src, NodeId dst) const;
  /// Recompute the footprint charged to the route_table account (capacity
  /// based, so it only moves — and only then touches atomics — on growth).
  void accountBytes();

  /// Owned copy: a shared table (artifact cache) must stay valid after the
  /// caller's topology object is gone.
  Torus topo_;
  bool complete_ = false;
  /// Dense pair index (src * numNodes + dst) when the topology is small
  /// enough; hash-map fallback above kDenseIndexNodeCap nodes.
  bool denseIndex_ = true;
  std::vector<Slice> dense_;
  std::unordered_map<std::uint64_t, Slice> sparse_;
  // Arena (structure of arrays): all routes back to back.
  std::vector<ChannelId> channels_;
  std::vector<double> fracs_;
  obs::MemAccount mem_{obs::MemAccountId::RouteTable};
};

/// Caller-owned copy-out buffer for TieredRouteCache sparse reads (defined
/// here so consumers of the tiered tier need only the forward declaration).
/// One per reader thread; reusing it across reads amortizes the allocation.
struct RouteScratch {
  std::vector<ChannelId> channels;
  std::vector<double> fracs;
};

/// Provider of immutable, shareable per-topology / per-graph artifacts.
/// The solver phases take a non-owning pointer (null = build locally, the
/// historical behavior); a cross-request cache implements this to amortize
/// `RouteTable::buildFull` and `buildFlowIncidence` across solves. Returned
/// objects are complete and read-only, so sharing them across threads is
/// safe and the consumer's arithmetic is bit-identical to a local build.
class TieredRouteCache;

class ArtifactSource {
 public:
  virtual ~ArtifactSource() = default;
  /// A complete (eagerly built) route table for \p topo. Only called when
  /// RouteTable::fullBuildFeasible(topo); never returns null.
  virtual std::shared_ptr<const RouteTable> routeTable(const Torus& topo) = 0;
  /// The per-vertex flow incidence of \p graph; never returns null.
  virtual std::shared_ptr<const FlowIncidence> flowIncidence(
      const CommGraph& graph) = 0;
  /// A tiered route cache whose sparse tier serves \p machine — the scale
  /// path past fullBuildFeasible(). Null (the default) means the caller
  /// builds its own tiers; a cross-request cache returns a shared instance
  /// so sparse working sets survive between solves.
  virtual std::shared_ptr<TieredRouteCache> routeCache(const Torus& machine) {
    (void)machine;
    return nullptr;
  }
};

struct DeltaEvalConfig {
  bool trackLoads = true;      ///< maintain channel loads, MCL, sum-squares
  bool trackHopBytes = false;  ///< maintain the hop-bytes total
};

/// Probe-then-commit incremental evaluation of one placement.
///
/// The engine owns a placement of `graph`'s vertices onto nodes of `topo`
/// (several vertices may share a node; co-located flows add no load) and
/// maintains, as configured, the dense channel loads with their maximum
/// (MCL) and sum of squares, and/or the hop-bytes total. `probeSwap` /
/// `probeMove` return the statistics the placement WOULD have after the
/// move without observably changing any state; `commit()` adopts the most
/// recent probe in O(touched channels). A probe that is not committed costs
/// nothing further — the next probe simply overwrites the pending delta.
class DeltaPlacementEval {
 public:
  using Config = DeltaEvalConfig;

  struct Summary {
    double mcl = 0;
    double sumSquares = 0;
    double hopBytes = 0;
  };

  /// \p routes: optional complete table shared read-only (e.g. across
  /// annealing restarts); the engine builds its own lazy table when null.
  /// \p incidence: optional pre-built incidence of \p graph's flows over its
  /// vertices, shared read-only; the engine builds its own when null.
  /// \p tieredRoutes: optional tiered cache whose sparse tier serves \p topo
  /// — the scale path when no complete table is feasible. Consulted only
  /// when \p routes is null; routes are copied out per lookup, so results
  /// stay bit-identical even when the cache evicts and refaults underneath.
  DeltaPlacementEval(const Torus& topo, const CommGraph& graph,
                     std::vector<NodeId> placement, Config cfg = {},
                     std::shared_ptr<const RouteTable> routes = nullptr,
                     std::shared_ptr<const FlowIncidence> incidence = nullptr,
                     std::shared_ptr<TieredRouteCache> tieredRoutes = nullptr);

  const Torus& topology() const { return *topo_; }
  const std::vector<NodeId>& placement() const { return placement_; }
  const Summary& current() const { return cur_; }
  double mcl() const { return cur_.mcl; }
  double sumSquares() const { return cur_.sumSquares; }
  double hopBytes() const { return cur_.hopBytes; }

  /// Candidate statistics if vertices a and b exchanged nodes.
  const Summary& probeSwap(RankId a, RankId b);
  /// Candidate statistics if vertex a relocated to \p node (which must not
  /// host any other vertex — the caller tracks empty nodes).
  const Summary& probeMove(RankId a, NodeId node);
  /// Adopt the most recent probe. Requires a pending probe.
  void commit();

  /// From-scratch reconstruction of loads and statistics (the dense
  /// sweep). Resynchronizes any accumulated floating-point drift; the
  /// resulting loads are bit-identical to placementLoads().
  void rebuild();

  /// Debug/test view of the dense channel loads (trackLoads only).
  const std::vector<double>& loads() const { return loads_; }

  // ---- Instrumentation ----------------------------------------------------
  std::uint64_t probes() const { return probes_; }
  std::uint64_t commits() const { return commits_; }
  /// Full-vector sweeps performed (initial build + rebuilds + compactions).
  std::uint64_t denseSweeps() const { return denseSweeps_; }

 private:
  RouteTable::Span route(NodeId src, NodeId dst);
  void touchChannel(ChannelId c);
  void probeFlows(RankId a, RankId b, NodeId nodeA, NodeId nodeB);
  double maxExcludingTouched();
  void heapPush(double value, ChannelId c);
  void compactHeapIfNeeded();
  void sweepStats();
  /// Recompute the footprint charged to the mapper account (dense vectors,
  /// lazy heap, probe scratch); capacity based like RouteTable's.
  void accountBytes();

  const Torus* topo_;
  const CommGraph* graph_;
  Config cfg_;
  std::vector<NodeId> placement_;
  FlowIncidence ownIncidence_;  ///< built locally when no shared incidence
  std::shared_ptr<const FlowIncidence> sharedIncidence_;
  const FlowIncidence* incidence_ = nullptr;  ///< shared or own

  std::shared_ptr<const RouteTable> sharedRoutes_;
  std::unique_ptr<RouteTable> ownRoutes_;
  std::shared_ptr<TieredRouteCache> tieredRoutes_;
  RouteScratch tierScratch_;  ///< copy-out buffer for tiered lookups

  // Dense loads + lazy-max machinery (trackLoads).
  std::vector<double> loads_;
  std::vector<double> peak_;  ///< per-channel peak |load| ever applied
  std::vector<std::pair<double, ChannelId>> heap_;
  std::vector<std::pair<double, ChannelId>> stash_;  ///< probe scratch

  // Pending probe: touched channels with their candidate loads.
  std::vector<ChannelId> touched_;
  std::vector<double> delta_;           ///< dense per-channel probe delta
  std::vector<std::uint32_t> mark_;     ///< epoch stamp per channel
  std::uint32_t epoch_ = 0;
  enum class Pending { None, Swap, Move };
  Pending pending_ = Pending::None;
  RankId pendA_ = kInvalidRank;
  RankId pendB_ = kInvalidRank;  ///< swap partner
  NodeId pendNode_ = kInvalidNode;  ///< move target
  Summary pendingSummary_;

  Summary cur_;
  std::uint64_t probes_ = 0;
  std::uint64_t commits_ = 0;
  std::uint64_t denseSweeps_ = 0;
  obs::MemAccount mem_{obs::MemAccountId::Mapper};
};

}  // namespace rahtm
