#include "routing/route_cache.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "routing/oblivious.hpp"

namespace rahtm {

namespace {

inline std::uint64_t pairKey(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}

/// Same fingerprint the serve ArtifactCache uses ("4x4x4x2/wwww"): shape and
/// per-dimension wrap fully determine every route.
std::string shapeKey(const Torus& topo) {
  std::string key;
  const Shape& shape = topo.shape();
  for (std::size_t d = 0; d < shape.size(); ++d) {
    if (d != 0) key.push_back('x');
    key += std::to_string(shape[d]);
  }
  key.push_back('/');
  for (std::size_t d = 0; d < shape.size(); ++d) {
    key.push_back(topo.wraps(d) ? 'w' : '-');
  }
  return key;
}

template <typename Vec>
std::int64_t capacityBytes(const Vec& v) {
  return static_cast<std::int64_t>(v.capacity() *
                                   sizeof(typename Vec::value_type));
}

/// Map/set node overhead estimate, matching RouteTable::accountBytes so the
/// two sparse representations charge the ledger on the same scale.
constexpr std::int64_t kNodeOverhead = 2 * sizeof(void*);

/// Cap on remembered evicted keys per shard. The refault classifier is
/// bookkeeping, not correctness — past the cap the set is cleared (those
/// pairs would re-read as plain misses) so churn tracking can never grow
/// the very working set eviction is trying to bound.
constexpr std::size_t kEvictedKeysPerShardCap = 1u << 15;

}  // namespace

TieredRouteCache::TieredRouteCache(const Torus& machine, Config cfg,
                                   ArtifactSource* denseSource)
    : machine_(machine), cfg_(cfg), denseSource_(denseSource) {
  const int nshards = std::max(1, cfg_.shards);
  shards_.reserve(static_cast<std::size_t>(nshards));
  for (int i = 0; i < nshards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (cfg_.registerDegrade) {
    degradeHandle_ = obs::MemRegistry::instance().registerDegradeCallback(
        "route_cache", [this] { return shed(0); });
  }
}

TieredRouteCache::~TieredRouteCache() {
  if (degradeHandle_ >= 0) {
    obs::MemRegistry::instance().unregisterDegradeCallback(degradeHandle_);
  }
}

// ---- Dense tier -----------------------------------------------------------

std::shared_ptr<const RouteTable> TieredRouteCache::denseTier(
    const Torus& sub) {
  RAHTM_REQUIRE(RouteTable::fullBuildFeasible(sub),
                "TieredRouteCache: dense tier asked for an infeasible shape");
  if (denseSource_ != nullptr) {
    // The source (serve ArtifactCache) owns sharing, LRU and counters;
    // memoizing here would hide warm requests from its hit accounting.
    return denseSource_->routeTable(sub);
  }
  const std::string key = shapeKey(sub);
  std::promise<std::shared_ptr<const RouteTable>> promise;
  {
    std::unique_lock<std::mutex> lock(denseMu_);
    auto it = dense_.find(key);
    if (it != dense_.end()) {
      ++denseHits_;
      auto future = it->second.future;
      lock.unlock();
      return future.get();
    }
    ++denseMisses_;
    DenseEntry entry;
    entry.future = promise.get_future().share();
    dense_.emplace(key, std::move(entry));
  }

  std::shared_ptr<const RouteTable> table;
  try {
    table = RouteTable::buildFull(sub);
  } catch (...) {
    promise.set_exception(std::current_exception());
    std::lock_guard<std::mutex> lock(denseMu_);
    dense_.erase(key);
    throw;
  }
  promise.set_value(table);
  {
    std::lock_guard<std::mutex> lock(denseMu_);
    // The entry may have been released (stream-out or shed) while we built;
    // only a still-present entry joins the byte tally.
    auto it = dense_.find(key);
    if (it != dense_.end()) it->second.bytes = table->footprintBytes();
  }
  return table;
}

std::int64_t TieredRouteCache::releaseDense(const Torus& sub) {
  if (denseSource_ != nullptr) return 0;  // the source owns its LRU
  const std::string key = shapeKey(sub);
  std::lock_guard<std::mutex> lock(denseMu_);
  auto it = dense_.find(key);
  if (it == dense_.end()) return 0;
  const std::int64_t released = it->second.bytes;
  dense_.erase(it);
  if (released > 0) ++denseEvictions_;
  return released;
}

// ---- Sparse tier ----------------------------------------------------------

TieredRouteCache::Shard& TieredRouteCache::shardOf(std::uint64_t key) {
  const std::uint64_t mixed = key ^ (key >> 32);
  return *shards_[static_cast<std::size_t>(mixed % shards_.size())];
}

void TieredRouteCache::accountShard(Shard& shard) {
  std::int64_t bytes = shard.entryBytes;
  bytes += static_cast<std::int64_t>(shard.entries.bucket_count()) *
           static_cast<std::int64_t>(sizeof(void*));
  bytes += static_cast<std::int64_t>(shard.evicted.size()) *
           (static_cast<std::int64_t>(sizeof(std::uint64_t)) + kNodeOverhead);
  bytes += static_cast<std::int64_t>(shard.evicted.bucket_count()) *
           static_cast<std::int64_t>(sizeof(void*));
  shard.bytes = bytes;
  shard.mem.set(bytes);  // may throw MemBudgetError at the FAIL stage
}

RouteTable::Span TieredRouteCache::read(NodeId src, NodeId dst,
                                        Scratch& scratch) {
  const std::uint64_t key = pairKey(src, dst);
  Shard& shard = shardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);

  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.misses;
    if (shard.evicted.erase(key) > 0) ++shard.refaults;
    SparseEntry entry;
    // Identical enumeration to RouteTable::get — the route content (order
    // included) is a pure function of the topology, which is what makes
    // dense, sparse, and refaulted reads bit-identical.
    forEachUniformMinimalLoad(machine_, machine_.coordOf(src),
                              machine_.coordOf(dst), 1.0,
                              [&entry](ChannelId c, double frac) {
                                entry.channels.push_back(c);
                                entry.fracs.push_back(frac);
                              });
    it = shard.entries.emplace(key, std::move(entry)).first;
    shard.entryBytes += capacityBytes(it->second.channels) +
                        capacityBytes(it->second.fracs) +
                        static_cast<std::int64_t>(sizeof(
                            std::pair<const std::uint64_t, SparseEntry>)) +
                        kNodeOverhead;
  } else {
    ++shard.hits;
  }
  it->second.lastUse = ++shard.tick;

  // Copy out before any eviction can run: the span must survive entries
  // being dropped by a concurrent (or our own budget-triggered) shed.
  const SparseEntry& e = it->second;
  scratch.channels.assign(e.channels.begin(), e.channels.end());
  scratch.fracs.assign(e.fracs.begin(), e.fracs.end());

  if (cfg_.maxSparseBytes > 0) {
    const std::int64_t perShard =
        cfg_.maxSparseBytes / static_cast<std::int64_t>(shards_.size());
    // Hysteresis: overshoot the eviction down to 7/8 of the budget. The LRU
    // pass sorts the whole shard, so shedding to exactly the watermark would
    // re-sort on (nearly) every subsequent miss once the shard sits at its
    // budget — an O(n log n) toll per read that dwarfs the route build. The
    // extra 1/8 buys perShard/8 bytes of sort-free misses per sort. Timing
    // of eviction never affects route content, only the churn counters.
    if (shard.entryBytes > perShard) {
      shedShardLocked(shard, perShard - perShard / 8);
    }
  }
  accountShard(shard);

  return {scratch.channels.data(), scratch.fracs.data(),
          scratch.channels.size()};
}

std::int64_t TieredRouteCache::shedShardLocked(Shard& shard,
                                               std::int64_t perShardTarget) {
  if (shard.entries.empty()) return 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> order;  // (lastUse, key)
  order.reserve(shard.entries.size());
  for (const auto& kv : shard.entries) {
    order.emplace_back(kv.second.lastUse, kv.first);
  }
  std::sort(order.begin(), order.end());
  const std::int64_t before = shard.entryBytes;
  for (const auto& [lastUse, key] : order) {
    (void)lastUse;
    if (shard.entryBytes <= perShardTarget) break;
    auto it = shard.entries.find(key);
    shard.entryBytes -= capacityBytes(it->second.channels) +
                        capacityBytes(it->second.fracs) +
                        static_cast<std::int64_t>(sizeof(
                            std::pair<const std::uint64_t, SparseEntry>)) +
                        kNodeOverhead;
    shard.entries.erase(it);
    if (shard.evicted.size() >= kEvictedKeysPerShardCap) shard.evicted.clear();
    shard.evicted.insert(key);
    ++shard.evictions;
  }
  return before - shard.entryBytes;
}

// ---- Eviction -------------------------------------------------------------

std::int64_t TieredRouteCache::shed(std::int64_t targetBytes) {
  std::int64_t released = 0;
  const std::int64_t perShard =
      targetBytes / static_cast<std::int64_t>(shards_.size());
  for (auto& shardPtr : shards_) {
    Shard& shard = *shardPtr;
    // try_lock: a shed can fire from the mem ledger's DEGRADE stage while a
    // reader of this very shard is mid-build (its mem.set() crossed the
    // threshold); waiting would deadlock, so a busy shard keeps its working
    // set this round.
    std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
    if (!lock.owns_lock()) continue;
    const std::int64_t before = shard.bytes;
    shedShardLocked(shard, perShard);
    accountShard(shard);
    released += std::max<std::int64_t>(0, before - shard.bytes);
  }
  if (denseSource_ == nullptr) {
    std::unique_lock<std::mutex> lock(denseMu_, std::try_to_lock);
    if (lock.owns_lock()) {
      for (auto it = dense_.begin(); it != dense_.end();) {
        if (it->second.bytes > 0) {
          // Ready tables drop (their own MemAccount untracks on destruction
          // once the last holder releases). Pending builds stay: their
          // builder still expects to find the entry.
          released += it->second.bytes;
          ++denseEvictions_;
          it = dense_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  return released;
}

// ---- Observability --------------------------------------------------------

TieredRouteCache::Stats TieredRouteCache::stats() const {
  Stats s;
  {
    std::lock_guard<std::mutex> lock(denseMu_);
    s.denseTables = static_cast<std::int64_t>(dense_.size());
    for (const auto& kv : dense_) s.denseBytes += kv.second.bytes;
    s.denseHits = denseHits_;
    s.denseMisses = denseMisses_;
    s.evictions = denseEvictions_;
  }
  for (const auto& shardPtr : shards_) {
    const Shard& shard = *shardPtr;
    std::lock_guard<std::mutex> lock(shard.mu);
    s.sparseEntries += static_cast<std::int64_t>(shard.entries.size());
    s.sparseBytes += shard.bytes;
    s.sparseRouteBytes += shard.entryBytes;
    s.sparseHits += shard.hits;
    s.sparseMisses += shard.misses;
    s.refaults += shard.refaults;
    s.evictions += shard.evictions;
  }
  return s;
}

void TieredRouteCache::noteMetrics() const {
  obs::MetricsRegistry* reg = obs::metrics();
  if (reg == nullptr) return;
  const Stats s = stats();
  // set() rather than add(): mirrors of monotonic totals are idempotent.
  reg->gauge("rahtm.route.dense_tables").set(static_cast<double>(s.denseTables));
  reg->gauge("rahtm.route.dense_bytes").set(static_cast<double>(s.denseBytes));
  reg->gauge("rahtm.route.dense_hits").set(static_cast<double>(s.denseHits));
  reg->gauge("rahtm.route.dense_misses")
      .set(static_cast<double>(s.denseMisses));
  reg->gauge("rahtm.route.sparse_entries")
      .set(static_cast<double>(s.sparseEntries));
  reg->gauge("rahtm.route.sparse_bytes")
      .set(static_cast<double>(s.sparseBytes));
  reg->gauge("rahtm.route.sparse_hits").set(static_cast<double>(s.sparseHits));
  reg->gauge("rahtm.route.sparse_misses")
      .set(static_cast<double>(s.sparseMisses));
  reg->gauge("rahtm.route.refaults").set(static_cast<double>(s.refaults));
  reg->gauge("rahtm.route.evictions").set(static_cast<double>(s.evictions));
}

}  // namespace rahtm
