#pragma once
/// \file oblivious.hpp
/// Closed-form channel loads for oblivious routing algorithms.
///
/// BG/Q uses minimum adaptive routing (MAR). Following the paper (§III-D),
/// we approximate it by an *oblivious* algorithm that spreads each flow
/// uniformly over all of its minimal Manhattan paths; per-channel expected
/// loads then have a closed form via multinomial path counting (the
/// technique of refs [19,20] in the paper). A 2-ary torus dimension is a
/// "double-wide link": both physical channels between the node pair are
/// modeled and the tie-split spreads load across them.

#include <functional>
#include <vector>

#include "graph/comm_graph.hpp"
#include "routing/channel_load.hpp"
#include "topology/torus.hpp"

namespace rahtm {

/// Number of minimal paths from \p src to \p dst (summed over direction
/// ties). Exact for the hop counts that arise in torus networks.
double countMinimalPaths(const Torus& topo, const Coord& src, const Coord& dst);

/// Accumulate the expected per-channel load of a flow of \p volume from
/// \p src to \p dst under uniform-minimal routing.
void accumulateUniformMinimal(const Torus& topo, const Coord& src,
                              const Coord& dst, double volume,
                              ChannelLoadMap& loads);

/// Same computation, but delivering each (channel, load) contribution to a
/// callback instead of a dense map — the merge phase uses this for sparse
/// incremental evaluation. A channel may be reported more than once.
void forEachUniformMinimalLoad(
    const Torus& topo, const Coord& src, const Coord& dst, double volume,
    const std::function<void(ChannelId, double)>& sink);

/// Accumulate the per-channel load under deterministic dimension-order
/// routing (dimensions resolved in index order; direction ties go Plus).
void accumulateDimensionOrder(const Torus& topo, const Coord& src,
                              const Coord& dst, double volume,
                              ChannelLoadMap& loads);

/// Which load model to use when evaluating a placement.
enum class LoadModel { UniformMinimal, DimensionOrder };

/// Channel loads of a whole communication graph under a placement.
/// \p nodeOfVertex maps each graph vertex to a node id of \p topo; flows
/// whose endpoints share a node add no network load.
ChannelLoadMap placementLoads(const Torus& topo, const CommGraph& graph,
                              const std::vector<NodeId>& nodeOfVertex,
                              LoadModel model = LoadModel::UniformMinimal);

/// Maximum channel load of a placement (the paper's mapping objective).
double placementMcl(const Torus& topo, const CommGraph& graph,
                    const std::vector<NodeId>& nodeOfVertex,
                    LoadModel model = LoadModel::UniformMinimal);

}  // namespace rahtm
