#include "routing/channel_load.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rahtm {

ChannelLoadMap::ChannelLoadMap(const Torus& topo)
    : topo_(&topo),
      loads_(static_cast<std::size_t>(topo.numChannelSlots()), 0.0) {}

void ChannelLoadMap::add(ChannelId c, double load) {
  RAHTM_REQUIRE(c >= 0 && c < static_cast<ChannelId>(loads_.size()),
                "ChannelLoadMap::add: bad channel");
  loads_[static_cast<std::size_t>(c)] += load;
}

double ChannelLoadMap::load(ChannelId c) const {
  RAHTM_REQUIRE(c >= 0 && c < static_cast<ChannelId>(loads_.size()),
                "ChannelLoadMap::load: bad channel");
  return loads_[static_cast<std::size_t>(c)];
}

void ChannelLoadMap::addMap(const ChannelLoadMap& other) {
  RAHTM_REQUIRE(loads_.size() == other.loads_.size(),
                "ChannelLoadMap::addMap: topology mismatch");
  for (std::size_t i = 0; i < loads_.size(); ++i) loads_[i] += other.loads_[i];
}

void ChannelLoadMap::subtractMap(const ChannelLoadMap& other) {
  RAHTM_REQUIRE(loads_.size() == other.loads_.size(),
                "ChannelLoadMap::subtractMap: topology mismatch");
  for (std::size_t i = 0; i < loads_.size(); ++i) loads_[i] -= other.loads_[i];
}

void ChannelLoadMap::clear() { std::fill(loads_.begin(), loads_.end(), 0.0); }

double ChannelLoadMap::maxLoad() const {
  double mx = 0;
  for (const double v : loads_) mx = std::max(mx, v);
  return mx;
}

double ChannelLoadMap::meanLoad() const {
  const std::int64_t n = topo_->numChannels();
  if (n == 0) return 0;
  return totalLoad() / static_cast<double>(n);
}

double ChannelLoadMap::totalLoad() const {
  double s = 0;
  for (const double v : loads_) s += v;
  return s;
}

}  // namespace rahtm
