#include "routing/report.hpp"

#include <algorithm>
#include <sstream>

#include "graph/stats.hpp"
#include "routing/oblivious.hpp"

namespace rahtm {

LoadDistribution summarizeLoads(const ChannelLoadMap& loads) {
  const Torus& topo = loads.topology();
  std::vector<double> values;
  for (NodeId n = 0; n < topo.numNodes(); ++n) {
    for (std::size_t d = 0; d < topo.ndims(); ++d) {
      for (const Dir dir : {Dir::Plus, Dir::Minus}) {
        if (!topo.channelValid(n, d, dir)) continue;
        values.push_back(loads.load(topo.channelId(n, d, dir)));
      }
    }
  }
  LoadDistribution out;
  out.channels = static_cast<std::int64_t>(values.size());
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  double sum = 0;
  double sumSq = 0;
  for (const double v : values) {
    sum += v;
    sumSq += v * v;
    if (v == 0) ++out.idleChannels;
  }
  out.max = values.back();
  out.mean = sum / static_cast<double>(values.size());
  out.p50 = values[values.size() / 2];
  out.p95 = values[static_cast<std::size_t>(
      static_cast<double>(values.size() - 1) * 0.95)];
  out.fairness =
      sumSq > 0 ? (sum * sum) / (static_cast<double>(values.size()) * sumSq)
                : 1.0;
  return out;
}

MappingReport reportMapping(const Torus& topo, const CommGraph& graph,
                            const std::vector<NodeId>& nodeOfVertex) {
  MappingReport r;
  r.uniformMinimal = summarizeLoads(
      placementLoads(topo, graph, nodeOfVertex, LoadModel::UniformMinimal));
  r.dimensionOrder = summarizeLoads(
      placementLoads(topo, graph, nodeOfVertex, LoadModel::DimensionOrder));
  r.hopBytes = hopBytes(graph, topo, nodeOfVertex);
  r.avgHops = avgWeightedHops(graph, topo, nodeOfVertex);
  return r;
}

std::string formatReport(const MappingReport& report) {
  std::ostringstream os;
  const auto line = [&os](const char* name, const LoadDistribution& d) {
    os << "  " << name << ": max " << d.max << ", mean " << d.mean << ", p95 "
       << d.p95 << ", fairness " << d.fairness << " (" << d.idleChannels
       << "/" << d.channels << " idle)\n";
  };
  line("MAR model (uniform minimal)", report.uniformMinimal);
  line("dimension-order routing    ", report.dimensionOrder);
  os << "  hop-bytes " << report.hopBytes << " (avg hops " << report.avgHops
     << ")\n";
  return os.str();
}

}  // namespace rahtm
