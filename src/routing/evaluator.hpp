#pragma once
/// \file evaluator.hpp
/// Fast repeated MCL evaluation of placements on a fixed topology.
///
/// The search-based mappers (exhaustive permutation search, the merge beam)
/// evaluate many placements of the same communication graph. This evaluator
/// memoizes routes in a RouteTable — per (src,dst) node pair, the
/// uniform-minimal path decomposition as a contiguous (channel[], fraction[])
/// slice — turning each evaluation into a short accumulate-and-max scan.
/// (The refine/anneal hot loops go further and use
/// routing/delta_eval.hpp, which shares the same RouteTable.)
///
/// Thread safety: NONE. Every method except hopBytesOf() mutates internal
/// state (the route table when owned, the scratch load vector, the
/// touched-channel epoch marks), so an instance must be owned by a single
/// thread at a time. Parallel searches construct one evaluator per task —
/// construction is cheap, and a complete shared RouteTable can be passed in
/// so workers skip even the route-building warm-up.

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/comm_graph.hpp"
#include "routing/delta_eval.hpp"
#include "topology/torus.hpp"

namespace rahtm {

class MclEvaluator {
 public:
  explicit MclEvaluator(const Torus& topo);

  /// Evaluator over a complete shared route table (e.g. one built once and
  /// handed to every exec::ThreadPool worker). No routes are built lazily.
  MclEvaluator(const Torus& topo, std::shared_ptr<const RouteTable> routes);

  /// Evaluator over a tiered cache's sparse global tier — the path when the
  /// topology is past fullBuildFeasible(). Routes are copied out per lookup
  /// (bit-identical to a dense build, robust to concurrent eviction).
  MclEvaluator(const Torus& topo, std::shared_ptr<TieredRouteCache> tiered);

  const Torus& topology() const { return *topo_; }

  /// MCL of \p graph under \p nodeOfVertex (uniform-minimal model).
  /// Identical in value to placementMcl(), but amortized much faster.
  double mcl(const CommGraph& graph, const std::vector<NodeId>& nodeOfVertex);

  /// MCL together with the sum of squared channel loads. The quadratic term
  /// is the tie-breaker local searches need on the MCL plateau: most swaps
  /// leave the maximum untouched, but draining load off busy channels
  /// (lower sum of squares) opens the path to a lower maximum later.
  struct LoadSummary {
    double mcl = 0;
    double sumSquares = 0;
  };
  LoadSummary summarize(const CommGraph& graph,
                        const std::vector<NodeId>& nodeOfVertex);

  /// Hop-bytes under the same placement (for the routing-unaware ablation).
  double hopBytesOf(const CommGraph& graph,
                    const std::vector<NodeId>& nodeOfVertex) const;

 private:
  RouteTable::Span routeOf(NodeId src, NodeId dst);

  /// Accumulate the channel loads of \p graph under \p nodeOfVertex into
  /// scratch_, recording each loaded channel in touched_ exactly once.
  void accumulate(const CommGraph& graph,
                  const std::vector<NodeId>& nodeOfVertex);

  const Torus* topo_;
  std::shared_ptr<const RouteTable> sharedRoutes_;  // complete, read-only
  std::unique_ptr<RouteTable> ownRoutes_;           // lazily populated
  std::shared_ptr<TieredRouteCache> tieredRoutes_;  // sparse global tier
  RouteScratch tierScratch_;  // copy-out buffer for tiered lookups
  std::vector<double> scratch_;           // dense channel loads
  std::vector<ChannelId> touched_;        // channels written this eval
  /// Per-channel "was touched this evaluation" stamp. An epoch counter
  /// (rather than testing scratch_ == 0.0) keeps touched_ duplicate-free
  /// even when a flow's contribution rounds to zero load.
  std::vector<std::uint32_t> mark_;
  std::uint32_t epoch_ = 0;
};

}  // namespace rahtm
