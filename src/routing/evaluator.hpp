#pragma once
/// \file evaluator.hpp
/// Fast repeated MCL evaluation of placements on a fixed topology.
///
/// The search-based mappers (exhaustive permutation search, simulated
/// annealing, the merge beam) evaluate millions of placements of the same
/// communication graph. This evaluator memoizes, per (src,dst) node pair,
/// the uniform-minimal path decomposition as a flat (channel, fraction)
/// list, turning each evaluation into a short accumulate-and-max scan.

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/comm_graph.hpp"
#include "routing/oblivious.hpp"
#include "topology/torus.hpp"

namespace rahtm {

class MclEvaluator {
 public:
  explicit MclEvaluator(const Torus& topo);

  const Torus& topology() const { return *topo_; }

  /// MCL of \p graph under \p nodeOfVertex (uniform-minimal model).
  /// Identical in value to placementMcl(), but amortized much faster.
  double mcl(const CommGraph& graph, const std::vector<NodeId>& nodeOfVertex);

  /// MCL together with the sum of squared channel loads. The quadratic term
  /// is the tie-breaker local searches need on the MCL plateau: most swaps
  /// leave the maximum untouched, but draining load off busy channels
  /// (lower sum of squares) opens the path to a lower maximum later.
  struct LoadSummary {
    double mcl = 0;
    double sumSquares = 0;
  };
  LoadSummary summarize(const CommGraph& graph,
                        const std::vector<NodeId>& nodeOfVertex);

  /// Hop-bytes under the same placement (for the routing-unaware ablation).
  double hopBytesOf(const CommGraph& graph,
                    const std::vector<NodeId>& nodeOfVertex) const;

 private:
  const std::vector<std::pair<ChannelId, double>>& pairEntries(NodeId src,
                                                               NodeId dst);

  const Torus* topo_;
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<ChannelId, double>>>
      cache_;
  std::vector<double> scratch_;           // dense channel loads
  std::vector<ChannelId> touched_;        // channels written this eval
};

}  // namespace rahtm
