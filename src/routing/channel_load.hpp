#pragma once
/// \file channel_load.hpp
/// Per-channel load accounting. The maximum channel load (MCL) is the
/// paper's optimization metric: minimizing it load-balances the network and
/// maximizes achievable throughput for bandwidth-bound applications (§II-B).

#include <vector>

#include "topology/torus.hpp"

namespace rahtm {

/// Dense per-directed-channel load map over a fixed topology.
class ChannelLoadMap {
 public:
  explicit ChannelLoadMap(const Torus& topo);

  const Torus& topology() const { return *topo_; }

  void add(ChannelId c, double load);
  double load(ChannelId c) const;

  /// Element-wise accumulate another map over the same topology.
  void addMap(const ChannelLoadMap& other);
  /// Element-wise subtract (used for incremental merge evaluation).
  void subtractMap(const ChannelLoadMap& other);
  void clear();

  /// Maximum channel load across all channels.
  double maxLoad() const;
  /// Mean load over *valid* channels.
  double meanLoad() const;
  /// Sum of all channel loads (== Σ_flows volume · mean hops).
  double totalLoad() const;

  const std::vector<double>& raw() const { return loads_; }

 private:
  const Torus* topo_;
  std::vector<double> loads_;
};

}  // namespace rahtm
