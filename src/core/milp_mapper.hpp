#pragma once
/// \file milp_mapper.hpp
/// The paper's Table II MILP: simultaneous placement and minimal routing of
/// a small cluster graph onto a 2-ary d-cube, minimizing the maximum
/// channel load.
///
/// Variables
///   z          : the MCL being minimized
///   g[a][v]    : binary — cluster a occupies cube vertex v
///   f[i][e]    : continuous — load of flow i on directed edge e
///   r[i][dim]  : binary — the one direction flow i may use in `dim` (C3)
/// Constraints
///   C1 : every cluster on exactly one vertex; every vertex holds at most one
///   C2 : flow conservation with floating endpoints
///        (inflow + l·g[src][v] == outflow + l·g[dst][v] at every vertex)
///   C3 : f on the Plus edge of dim <= l·r[i][dim];
///        f on the Minus edge     <= l·(1 - r[i][dim])   (minimality)
///   MCL: Σ_i f[i][e] <= mult(e) · z, where mult(e) = 2 for the double-wide
///        edges of a wrapped extent-2 dimension (§III-C) and 1 otherwise.

#include <string>
#include <vector>

#include "graph/comm_graph.hpp"
#include "lp/milp.hpp"
#include "topology/torus.hpp"

namespace rahtm {

struct MilpMapOptions {
  double timeLimitSec = 30.0;
  long maxNodes = 100000;
  /// Fix cluster 0 at vertex 0 (valid symmetry breaking on the
  /// vertex-transitive 2-ary d-cube; cuts the search by |V|).
  bool breakSymmetry = true;
  /// Objective: false = MCL (the paper); true = total flow-hops, which under
  /// minimal routing equals hop-bytes (the routing-unaware ablation §III-A).
  bool hopBytesObjective = false;
  /// Also enforce C3 (single direction per dimension). The paper notes the
  /// constraint may be omitted when minimal routing is not required.
  bool enforceMinimality = true;
};

struct MilpMapResult {
  bool solved = false;            ///< an incumbent placement exists
  bool provedOptimal = false;     ///< search closed the gap
  std::vector<NodeId> vertexOf;   ///< cluster -> vertex
  double objective = 0;           ///< MILP objective (LP-split MCL)
  double bestBound = 0;
  long nodesExplored = 0;
  std::string statusString;
};

/// Solve the Table II MILP for \p g on \p cube. Requires
/// g.numRanks() <= cube.numNodes() and cube.numNodes() small (the caller's
/// portfolio keeps this to leaf-level sizes).
MilpMapResult milpMapToCube(const CommGraph& g, const Torus& cube,
                            const MilpMapOptions& opts = {});

}  // namespace rahtm
