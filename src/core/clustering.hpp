#pragma once
/// \file clustering.hpp
/// RAHTM phase 1 (§III-B): clustering by tile search.
///
/// The communication graph is viewed as a logical grid of ranks (the NAS
/// benchmarks are grid-structured; an unknown structure degrades to a 1D
/// grid). Two kinds of clustering happen here:
///
///  1. *Concentration clustering*: ranks are grouped into node-sized tiles
///     (concentration factor c per tile) so the cluster count matches the
///     node count. The tile shape is chosen by searching every ordered
///     factorization of c over the grid dimensions (Fig. 2: a size-8 tile in
///     2D tries 8x1, 4x2, 2x4, 1x8) and keeping the one with minimal
///     inter-tile volume.
///  2. *Hierarchy clustering*: the node-level cluster grid is repeatedly
///     tiled into groups matching the topology hierarchy's per-level child
///     counts (2^d children per block at depth d), again by tile search,
///     producing the cluster tree that phases 2 and 3 walk.

#include <vector>

#include "common/small_vec.hpp"
#include "graph/comm_graph.hpp"

namespace rahtm {

/// Result of one tiling pass.
struct TilingResult {
  Shape tileShape;                   ///< winning tile
  Shape coarseGrid;                  ///< grid of tiles
  std::vector<ClusterId> clusterOf;  ///< fine vertex -> tile id (row-major)
  CommGraph coarseGraph;             ///< contracted graph over tiles
  Volume intraVolume = 0;            ///< volume absorbed inside tiles
  Volume interVolume = 0;            ///< volume left between tiles
};

/// Search all tile shapes of exactly \p tileCells cells that divide
/// \p grid; return the tiling with minimal inter-tile volume.
/// \p g must have exactly prod(grid) vertices laid out row-major on grid.
TilingResult bestTiling(const CommGraph& g, const Shape& grid,
                        std::int64_t tileCells);

/// Evaluate one specific tile shape (used by bestTiling and by the
/// tiling ablation study).
TilingResult applyTiling(const CommGraph& g, const Shape& grid,
                         const Shape& tileShape);

/// The full phase-1 output: the concentration tiling plus one hierarchy
/// level per entry of \p levelChildCounts (from the machine hierarchy,
/// root-first). levels[0] describes grouping node-level clusters into the
/// deepest hierarchy blocks; the last entry reaches the root.
struct ClusterTree {
  TilingResult concentration;        ///< rank -> node-level cluster
  std::vector<TilingResult> levels;  ///< deepest block grouping first
};

/// First usable tiling (no search): the lexicographically first ordered
/// factorization that divides the grid. Used by the tiling ablation.
TilingResult firstTiling(const CommGraph& g, const Shape& grid,
                         std::int64_t tileCells);

/// Build the cluster tree. \p levelChildCounts lists, deepest level first,
/// how many clusters merge into one at each step (the machine hierarchy's
/// children-per-block counts); their product must equal the node-level
/// cluster count. \p tileSearch selects bestTiling (the paper) vs
/// firstTiling (ablation).
ClusterTree buildClusterTree(const CommGraph& g, const Shape& rankGrid,
                             int concentration,
                             const std::vector<std::int64_t>& levelChildCounts,
                             bool tileSearch = true);

}  // namespace rahtm
