#pragma once
/// \file greedy.hpp
/// Routing-unaware greedy mapping — the hop-bytes heuristic family that
/// §II-B/§III-A argue against. Included as a literature baseline: it is the
/// canonical "topology-aware but routing-oblivious" approach (greedy
/// connectivity-ordered placement, as in generic topology-mapping tools).
///
/// The algorithm: group ranks into node-sized clusters (same concentration
/// tiling as RAHTM phase 1), then place clusters one at a time — always the
/// cluster with the largest communication volume to already-placed clusters
/// — onto the free node minimizing the *hop-bytes* increment.

#include "mapping/mapping.hpp"

namespace rahtm {

class GreedyHopBytesMapper final : public TaskMapper {
 public:
  /// \p logicalGrid optionally names the rank-grid geometry used for the
  /// concentration tiling (empty: 1D row of ranks).
  explicit GreedyHopBytesMapper(Shape logicalGrid = {});

  Mapping map(const CommGraph& graph, const Torus& topo,
              int concentration) override;
  std::string name() const override { return "GreedyHB"; }

  void setLogicalGrid(const Shape& grid) { logicalGrid_ = grid; }

 private:
  Shape logicalGrid_;
};

}  // namespace rahtm
