#include "core/milp_mapper.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "lp/model.hpp"
#include "routing/oblivious.hpp"

namespace rahtm {

namespace {

/// One logical directed edge of the cube. Wrapped extent-2 dimensions carry
/// a single logical edge of multiplicity 2 per direction pair (the paper's
/// double-wide link) instead of two parallel physical channels.
struct CubeEdge {
  NodeId from;
  NodeId to;
  std::size_t dim;
  bool plusDirection;  ///< which side of the C3 direction binary this is
  int multiplicity;
};

std::vector<CubeEdge> buildEdges(const Torus& cube) {
  std::vector<CubeEdge> edges;
  for (NodeId u = 0; u < cube.numNodes(); ++u) {
    const Coord cu = cube.coordOf(u);
    for (std::size_t d = 0; d < cube.ndims(); ++d) {
      if (cube.extent(d) == 2 && cube.wraps(d)) {
        // Double-wide: one logical edge to the partner; call the edge
        // leaving coordinate 0 the Plus direction.
        const auto nb = cube.neighbor(cu, d, Dir::Plus);
        RAHTM_REQUIRE(nb.has_value(), "buildEdges: missing torus neighbor");
        edges.push_back(
            {u, cube.nodeId(*nb), d, /*plusDirection=*/cu[d] == 0, 2});
        continue;
      }
      for (const Dir dir : {Dir::Plus, Dir::Minus}) {
        const auto nb = cube.neighbor(cu, d, dir);
        if (!nb) continue;
        edges.push_back({u, cube.nodeId(*nb), d, dir == Dir::Plus, 1});
      }
    }
  }
  return edges;
}

/// Greedy warm-start placement: clusters in decreasing order of incident
/// volume, each placed on the free vertex minimizing the incremental
/// oblivious maximum channel load. Honors the symmetry-breaking pin of
/// cluster 0 to vertex 0.
std::vector<NodeId> greedyPlacement(const CommGraph& g, const Torus& cube,
                                    const MilpMapOptions& opts) {
  const auto numClusters = static_cast<std::size_t>(g.numRanks());
  std::vector<double> incident(numClusters, 0.0);
  for (const Flow& f : g.flows()) {
    incident[static_cast<std::size_t>(f.src)] += f.bytes;
    incident[static_cast<std::size_t>(f.dst)] += f.bytes;
  }
  std::vector<std::size_t> order(numClusters);
  for (std::size_t i = 0; i < numClusters; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return incident[a] > incident[b];
  });
  if (opts.breakSymmetry && numClusters > 0) {
    // Cluster 0 goes first (pinned at vertex 0).
    order.erase(std::find(order.begin(), order.end(), std::size_t{0}));
    order.insert(order.begin(), 0);
  }

  std::vector<NodeId> place(numClusters, kInvalidNode);
  std::vector<bool> used(static_cast<std::size_t>(cube.numNodes()), false);
  ChannelLoadMap loads(cube);
  for (const std::size_t a : order) {
    NodeId bestV = kInvalidNode;
    double bestMcl = 0;
    ChannelLoadMap bestLoads(cube);
    for (NodeId v = 0; v < cube.numNodes(); ++v) {
      if (used[static_cast<std::size_t>(v)]) continue;
      if (opts.breakSymmetry && a == 0 && v != 0) continue;
      ChannelLoadMap trial = loads;
      for (const Flow& f : g.flows()) {
        const bool out = f.src == static_cast<RankId>(a);
        const bool in = f.dst == static_cast<RankId>(a);
        if (!out && !in) continue;
        const std::size_t peer =
            static_cast<std::size_t>(out ? f.dst : f.src);
        if (place[peer] == kInvalidNode) continue;
        const Coord cs = cube.coordOf(out ? v : place[peer]);
        const Coord cd = cube.coordOf(out ? place[peer] : v);
        accumulateUniformMinimal(cube, cs, cd, f.bytes, trial);
      }
      const double mcl = trial.maxLoad();
      if (bestV == kInvalidNode || mcl < bestMcl) {
        bestV = v;
        bestMcl = mcl;
        bestLoads = std::move(trial);
      }
    }
    RAHTM_REQUIRE(bestV != kInvalidNode, "greedyPlacement: no free vertex");
    place[a] = bestV;
    used[static_cast<std::size_t>(bestV)] = true;
    loads = std::move(bestLoads);
  }
  return place;
}

}  // namespace

MilpMapResult milpMapToCube(const CommGraph& g, const Torus& cube,
                            const MilpMapOptions& opts) {
  using lp::Term;
  const auto numClusters = static_cast<std::size_t>(g.numRanks());
  const auto numVerts = static_cast<std::size_t>(cube.numNodes());
  RAHTM_REQUIRE(numClusters <= numVerts,
                "milpMapToCube: more clusters than vertices");

  const std::vector<CubeEdge> edges = buildEdges(cube);
  const std::vector<Flow>& flows = g.flows();

  // Guard: the dense simplex underneath holds an m x (n + m) tableau. Refuse
  // models whose tableau would not be practical instead of thrashing memory;
  // the caller's portfolio falls through to exhaustive / annealing search.
  {
    const std::size_t nVars = 1 + numClusters * numVerts +
                              flows.size() * edges.size() +
                              flows.size() * cube.ndims();
    const std::size_t nRows = numClusters + numVerts +
                              flows.size() * numVerts +
                              flows.size() * edges.size() + edges.size();
    const std::size_t tableauCells = nRows * (nVars + nRows);
    if (tableauCells > 30'000'000) {  // ~240 MB of doubles
      MilpMapResult tooBig;
      tooBig.statusString = "model-too-large";
      return tooBig;
    }
  }

  lp::Model model;
  model.setObjective(lp::Objective::Minimize);

  lp::VarId z = -1;
  if (!opts.hopBytesObjective) {
    z = model.addContinuous("z", 0, lp::infinity(), 1.0);
  }

  // g[a][v] assignment binaries.
  std::vector<std::vector<lp::VarId>> gVar(numClusters,
                                           std::vector<lp::VarId>(numVerts));
  for (std::size_t a = 0; a < numClusters; ++a) {
    for (std::size_t v = 0; v < numVerts; ++v) {
      gVar[a][v] = model.addBinary("g_" + std::to_string(a) + "_" +
                                   std::to_string(v));
    }
  }
  if (opts.breakSymmetry && numClusters > 0) {
    // 2-ary d-cubes are vertex-transitive; pin cluster 0 to vertex 0.
    model.variable(gVar[0][0]).lb = 1;
  }

  // f[i][e] flow variables; objective coefficient 1 in hop-bytes mode.
  const double fObj = opts.hopBytesObjective ? 1.0 : 0.0;
  std::vector<std::vector<lp::VarId>> fVar(flows.size(),
                                           std::vector<lp::VarId>(edges.size()));
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (std::size_t e = 0; e < edges.size(); ++e) {
      fVar[i][e] = model.addContinuous(
          "f_" + std::to_string(i) + "_" + std::to_string(e), 0,
          flows[i].bytes, fObj);
    }
  }

  // r[i][dim] direction binaries (C3).
  std::vector<std::vector<lp::VarId>> rVar;
  if (opts.enforceMinimality) {
    rVar.assign(flows.size(), std::vector<lp::VarId>(cube.ndims()));
    for (std::size_t i = 0; i < flows.size(); ++i) {
      for (std::size_t d = 0; d < cube.ndims(); ++d) {
        rVar[i][d] =
            model.addBinary("r_" + std::to_string(i) + "_" + std::to_string(d));
      }
    }
  }

  // C1: each cluster on exactly one vertex; each vertex at most one cluster.
  for (std::size_t a = 0; a < numClusters; ++a) {
    std::vector<Term> terms;
    for (std::size_t v = 0; v < numVerts; ++v) terms.push_back({gVar[a][v], 1});
    model.addConstraint("C1_cluster_" + std::to_string(a), terms,
                        lp::Sense::Equal, 1);
  }
  for (std::size_t v = 0; v < numVerts; ++v) {
    std::vector<Term> terms;
    for (std::size_t a = 0; a < numClusters; ++a) terms.push_back({gVar[a][v], 1});
    model.addConstraint("C1_vertex_" + std::to_string(v), terms,
                        lp::Sense::LessEq, 1);
  }

  // C2: flow conservation with floating endpoints, per flow per vertex:
  //   Σ_out f - Σ_in f = l·g[src][v] - l·g[dst][v]
  for (std::size_t i = 0; i < flows.size(); ++i) {
    for (std::size_t v = 0; v < numVerts; ++v) {
      std::vector<Term> terms;
      for (std::size_t e = 0; e < edges.size(); ++e) {
        if (edges[e].from == static_cast<NodeId>(v)) {
          terms.push_back({fVar[i][e], 1});
        } else if (edges[e].to == static_cast<NodeId>(v)) {
          terms.push_back({fVar[i][e], -1});
        }
      }
      terms.push_back(
          {gVar[static_cast<std::size_t>(flows[i].src)][v], -flows[i].bytes});
      terms.push_back(
          {gVar[static_cast<std::size_t>(flows[i].dst)][v], flows[i].bytes});
      model.addConstraint(
          "C2_f" + std::to_string(i) + "_v" + std::to_string(v), terms,
          lp::Sense::Equal, 0);
    }
  }

  // C3: one direction per dimension per flow.
  if (opts.enforceMinimality) {
    for (std::size_t i = 0; i < flows.size(); ++i) {
      for (std::size_t e = 0; e < edges.size(); ++e) {
        const CubeEdge& edge = edges[e];
        if (edge.plusDirection) {
          model.addConstraint(
              "C3p_f" + std::to_string(i) + "_e" + std::to_string(e),
              {{fVar[i][e], 1}, {rVar[i][edge.dim], -flows[i].bytes}},
              lp::Sense::LessEq, 0);
        } else {
          model.addConstraint(
              "C3m_f" + std::to_string(i) + "_e" + std::to_string(e),
              {{fVar[i][e], 1}, {rVar[i][edge.dim], flows[i].bytes}},
              lp::Sense::LessEq, flows[i].bytes);
        }
      }
    }
  }

  // MCL rows: Σ_i f[i][e] <= mult(e) · z.
  if (!opts.hopBytesObjective) {
    for (std::size_t e = 0; e < edges.size(); ++e) {
      std::vector<Term> terms;
      for (std::size_t i = 0; i < flows.size(); ++i) {
        terms.push_back({fVar[i][e], 1});
      }
      terms.push_back({z, -static_cast<double>(edges[e].multiplicity)});
      model.addConstraint("MCL_e" + std::to_string(e), terms, lp::Sense::LessEq,
                          0);
    }
  }

  lp::MilpOptions milpOpts;
  milpOpts.timeLimitSec = opts.timeLimitSec;
  milpOpts.maxNodes = opts.maxNodes;

  // Warm start: greedy placement + single-path dimension-order routing is
  // always feasible (one direction per dimension satisfies C3), and gives
  // the branch-and-bound an immediate cutoff — without it, symmetric
  // instances rarely produce integral relaxations within budget.
  {
    const std::vector<NodeId> greedy = greedyPlacement(g, cube, opts);
    std::vector<double> x(model.numVariables(), 0.0);
    for (std::size_t a = 0; a < numClusters; ++a) {
      x[static_cast<std::size_t>(
          gVar[a][static_cast<std::size_t>(greedy[a])])] = 1.0;
    }
    std::vector<double> edgeLoad(edges.size(), 0.0);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const NodeId s = greedy[static_cast<std::size_t>(flows[i].src)];
      const NodeId t = greedy[static_cast<std::size_t>(flows[i].dst)];
      Coord cur = cube.coordOf(s);
      const Coord dst = cube.coordOf(t);
      SmallVec<std::int8_t, kMaxDims> dirUsed(cube.ndims(), -1);
      while (cube.nodeId(cur) != t) {
        bool stepped = false;
        for (std::size_t d = 0; d < cube.ndims() && !stepped; ++d) {
          const MinimalOffset off = cube.minimalOffset(cur, dst, d);
          if (off.steps == 0) continue;
          const auto nb = cube.neighbor(cur, d, off.dir);
          RAHTM_REQUIRE(nb.has_value(), "warm start: DOR step failed");
          // Find the logical edge cur->nb in dimension d.
          const NodeId from = cube.nodeId(cur);
          const NodeId to = cube.nodeId(*nb);
          for (std::size_t e = 0; e < edges.size(); ++e) {
            if (edges[e].from == from && edges[e].to == to &&
                edges[e].dim == d) {
              x[static_cast<std::size_t>(fVar[i][e])] += flows[i].bytes;
              edgeLoad[e] += flows[i].bytes;
              if (opts.enforceMinimality) {
                dirUsed[d] = edges[e].plusDirection ? 1 : 0;
              }
              break;
            }
          }
          cur = *nb;
          stepped = true;
        }
        RAHTM_REQUIRE(stepped, "warm start: no productive dimension");
      }
      if (opts.enforceMinimality) {
        for (std::size_t d = 0; d < cube.ndims(); ++d) {
          x[static_cast<std::size_t>(rVar[i][d])] =
              dirUsed[d] == -1 ? 1.0 : static_cast<double>(dirUsed[d]);
        }
      }
    }
    if (!opts.hopBytesObjective) {
      double zVal = 0;
      for (std::size_t e = 0; e < edges.size(); ++e) {
        zVal = std::max(zVal, edgeLoad[e] /
                                  static_cast<double>(edges[e].multiplicity));
      }
      x[static_cast<std::size_t>(z)] = zVal;
    }
    milpOpts.warmStart = std::move(x);
  }

  const lp::MilpSolution sol = lp::solveMilp(model, milpOpts);

  MilpMapResult result;
  result.statusString = lp::toString(sol.status);
  result.nodesExplored = sol.nodesExplored;
  result.bestBound = sol.bestBound;
  if (!sol.hasIncumbent) return result;
  result.solved = true;
  result.provedOptimal = (sol.status == lp::SolveStatus::Optimal);
  result.objective = sol.objective;
  result.vertexOf.assign(numClusters, kInvalidNode);
  for (std::size_t a = 0; a < numClusters; ++a) {
    for (std::size_t v = 0; v < numVerts; ++v) {
      if (sol.x[static_cast<std::size_t>(gVar[a][v])] > 0.5) {
        result.vertexOf[a] = static_cast<NodeId>(v);
        break;
      }
    }
    RAHTM_REQUIRE(result.vertexOf[a] != kInvalidNode,
                  "milpMapToCube: incumbent with unassigned cluster");
  }
  return result;
}

}  // namespace rahtm
