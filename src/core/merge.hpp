#pragma once
/// \file merge.hpp
/// RAHTM phase 3 (§III-D): bottom-up incremental merging of mapped blocks
/// with rotation/reorientation search.
///
/// For one hierarchy node, the 2^d child blocks (each already mapped
/// internally and pseudo-pinned to a slot by phase 2) are merged one at a
/// time. The merge order is greedy by decreasing average pairwise
/// interaction; at each step every orientation of the incoming block (its
/// full signed-permutation symmetry group) is evaluated against each
/// retained partial merge, and the best N combinations survive (beam
/// search, N = 64 in the paper). Optionally the incoming block may also be
/// *repositioned* onto any free slot.

#include <vector>

#include "core/subproblem.hpp"
#include "graph/comm_graph.hpp"
#include "topology/orientation.hpp"
#include "topology/torus.hpp"

namespace rahtm {

/// One child block entering a merge.
struct MergeChild {
  /// Global node-cluster ids living in this block.
  std::vector<ClusterId> clusters;
  /// Position of clusters[i] inside the child block (local coords).
  std::vector<Coord> localPos;
  /// Phase-2 pseudo-pinned slot in the parent's child grid.
  Coord slot;
  /// Pin-only internal layout (phase-2 pins composed recursively, no merge
  /// choices). Empty means localPos already is the pin layout. The beam
  /// always retains the lineage built from these at the pinned slots, so
  /// the merge result is never worse than the global pseudo-pin solution.
  std::vector<Coord> pinPos;
};

struct MergeConfig {
  int beamWidth = 64;             ///< N of §III-D
  /// Search free slots as well as orientations — the paper's second degree
  /// of freedom ("rotation and repositioning", §III-A). Costs a factor of
  /// (considered slots) per candidate but recovers from coarse phase-2 pins.
  bool allowRepositioning = true;
  /// Cap on alternative slots considered per child when repositioning: the
  /// pinned slot plus its nearest maxRepositionSlots neighbours in the slot
  /// grid. Bounds the candidate explosion on large hierarchy nodes.
  int maxRepositionSlots = 7;
  long maxOrientations = 1024;    ///< deterministic subsample cap
  MapObjective objective = MapObjective::Mcl;
  /// Optional provider of shared route tables (non-owning; must outlive the
  /// call). Null = build the region's route cache locally.
  ArtifactSource* artifacts = nullptr;
  /// Optional tiered route cache: dense tier for feasible region shapes,
  /// sparse global tier when the region IS the machine and the machine is
  /// past the complete-table ceiling.
  std::shared_ptr<TieredRouteCache> routeCache;
};

struct MergeResult {
  /// localNode[i] = node id (in the region topology) of cluster
  /// clustersInRegion[i].
  std::vector<ClusterId> clustersInRegion;
  std::vector<NodeId> localNode;
  double objective = 0;  ///< best achieved region objective
  /// Chosen orientation per child, indexed like the `children` input.
  std::vector<Orientation> orientationOfChild;
  std::vector<Coord> slotOfChild;
  /// The pin-only layout of the region (children's pinPos at their pinned
  /// slots), for threading the global pin lineage up the hierarchy.
  std::vector<NodeId> pinLocalNode;
};

/// Merge \p children inside a region of topology \p regionTopo, whose
/// child grid is \p childGrid with per-child block shape \p childShape
/// (childGrid[d] * childShape[d] == regionTopo.extent(d)). Flows of
/// \p clusterGraph with both endpoints inside the region drive the
/// objective; all other flows are ignored (the paper evaluates each
/// subproblem on its local communication).
MergeResult mergeChildren(const Torus& regionTopo, const Shape& childShape,
                          const Shape& childGrid,
                          const std::vector<MergeChild>& children,
                          const CommGraph& clusterGraph,
                          const MergeConfig& cfg);

}  // namespace rahtm
