#include "core/hierarchy.hpp"

#include "common/error.hpp"
#include "common/math.hpp"

namespace rahtm {

MachineHierarchy::MachineHierarchy(const Torus& topo) : topo_(topo) {
  for (std::size_t d = 0; d < topo.ndims(); ++d) {
    RAHTM_REQUIRE(isPowerOfTwo(topo.extent(d)),
                  "MachineHierarchy: extents must be powers of two");
  }
  Shape shape = topo.shape();
  blockShapes_.push_back(shape);
  while (true) {
    Shape grid(shape.size(), 1);
    bool any = false;
    for (std::size_t d = 0; d < shape.size(); ++d) {
      if (shape[d] > 1) {
        grid[d] = 2;
        shape[d] /= 2;
        any = true;
      }
    }
    if (!any) break;
    childGrids_.push_back(grid);
    blockShapes_.push_back(shape);
  }
  RAHTM_REQUIRE(!childGrids_.empty(),
                "MachineHierarchy: single-node machine has no hierarchy");
}

const Shape& MachineHierarchy::blockShape(int level) const {
  RAHTM_REQUIRE(level >= 0 && level <= depth(), "blockShape: bad level");
  return blockShapes_[static_cast<std::size_t>(level)];
}

const Shape& MachineHierarchy::childGrid(int level) const {
  RAHTM_REQUIRE(level >= 0 && level < depth(), "childGrid: bad level");
  return childGrids_[static_cast<std::size_t>(level)];
}

std::int64_t MachineHierarchy::childCount(int level) const {
  const Shape& g = childGrid(level);
  std::int64_t n = 1;
  for (std::size_t d = 0; d < g.size(); ++d) n *= g[d];
  return n;
}

Torus MachineHierarchy::clusterTopology(int level) const {
  const Shape& g = childGrid(level);
  SmallVec<std::uint8_t, kMaxDims> wrap(g.size(), 0);
  if (level == 0) {
    // Splitting the full wrapped dimension in two leaves a pair of
    // super-nodes joined by two link bundles (direct + wraparound): a 2-ary
    // torus dimension. Deeper blocks are proper subcubes, hence meshes.
    for (std::size_t d = 0; d < g.size(); ++d) {
      wrap[d] = (g[d] == 2 && topo_.wraps(d)) ? 1 : 0;
    }
  }
  return Torus::mixed(g, wrap);
}

std::vector<std::int64_t> MachineHierarchy::childCountsDeepestFirst() const {
  std::vector<std::int64_t> counts;
  for (int level = depth() - 1; level >= 0; --level) {
    counts.push_back(childCount(level));
  }
  return counts;
}

SubcubeView MachineHierarchy::childBlock(int level, const Coord& parentOrigin,
                                         const Coord& childPos) const {
  const Shape& childShape = blockShape(level + 1);
  Coord origin(parentOrigin.size(), 0);
  for (std::size_t d = 0; d < parentOrigin.size(); ++d) {
    origin[d] = parentOrigin[d] + childPos[d] * childShape[d];
  }
  return SubcubeView(topo_, origin, childShape);
}

}  // namespace rahtm
