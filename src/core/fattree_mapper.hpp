#pragma once
/// \file fattree_mapper.hpp
/// RAHTM for fat-trees (§VI): on a tree, every position inside a group is
/// symmetric, so the mapping problem collapses to hierarchical clustering —
/// exactly RAHTM's phase 1 run against the tree's per-level arities. Each
/// level's tile search minimizes the traffic that must climb past that
/// level's switches, which is precisely what the up/down load model charges
/// for.

#include <vector>

#include "common/small_vec.hpp"
#include "graph/comm_graph.hpp"
#include "topology/fattree.hpp"

namespace rahtm {

/// MCL of a placement on a fat-tree (the analogue of placementMcl).
double fatTreeMcl(const FatTree& tree, const CommGraph& graph,
                  const std::vector<NodeId>& nodeOfVertex);

/// Map \p graph onto \p tree with \p concentration ranks per node.
/// Returns nodeOfRank. \p logicalGrid as in RahtmConfig (empty = 1D).
/// Requires graph.numRanks() == tree.numNodes() * concentration and every
/// level arity compatible with the tile search.
std::vector<NodeId> mapToFatTree(const CommGraph& graph, const FatTree& tree,
                                 int concentration,
                                 const Shape& logicalGrid = {});

/// The fat-tree baseline: rank r -> node r / concentration.
std::vector<NodeId> linearFatTreeMapping(RankId ranks, int concentration);

}  // namespace rahtm
