#include "core/greedy_mapper.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "core/clustering.hpp"

namespace rahtm {

GreedyHopBytesMapper::GreedyHopBytesMapper(Shape logicalGrid)
    : logicalGrid_(std::move(logicalGrid)) {}

Mapping GreedyHopBytesMapper::map(const CommGraph& graph, const Torus& topo,
                                  int concentration) {
  const RankId ranks = graph.numRanks();
  RAHTM_REQUIRE(ranks == topo.numNodes() * concentration,
                "GreedyHopBytesMapper: ranks != nodes * concentration");

  Shape grid = logicalGrid_;
  if (grid.empty()) grid = Shape{static_cast<std::int32_t>(ranks)};

  // Concentration clustering: same tile search as RAHTM phase 1 so the
  // comparison isolates the placement objective, not the clustering.
  const TilingResult tiling = bestTiling(graph, grid, concentration);
  const CommGraph& g = tiling.coarseGraph;
  const auto n = static_cast<std::size_t>(g.numRanks());

  // Undirected volume between cluster pairs.
  std::vector<std::vector<std::pair<std::size_t, double>>> adj(n);
  for (const Flow& f : g.undirectedFlows()) {
    adj[static_cast<std::size_t>(f.src)].push_back(
        {static_cast<std::size_t>(f.dst), f.bytes});
    adj[static_cast<std::size_t>(f.dst)].push_back(
        {static_cast<std::size_t>(f.src), f.bytes});
  }
  std::vector<double> totalVolume(n, 0);
  for (std::size_t c = 0; c < n; ++c) {
    for (const auto& [peer, vol] : adj[c]) totalVolume[c] += vol;
  }

  std::vector<NodeId> place(n, kInvalidNode);
  std::vector<bool> nodeUsed(static_cast<std::size_t>(topo.numNodes()), false);
  std::vector<double> attraction(n, 0);  // volume toward placed clusters
  std::vector<bool> placed(n, false);

  for (std::size_t step = 0; step < n; ++step) {
    // Next cluster: max attraction to the placed set; first step (and any
    // disconnected component) falls back to max total volume.
    std::size_t pick = SIZE_MAX;
    for (std::size_t c = 0; c < n; ++c) {
      if (placed[c]) continue;
      if (pick == SIZE_MAX || attraction[c] > attraction[pick] ||
          (attraction[c] == attraction[pick] &&
           totalVolume[c] > totalVolume[pick])) {
        pick = c;
      }
    }

    // Best free node by hop-bytes increment toward placed peers.
    NodeId bestNode = kInvalidNode;
    double bestCost = std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < topo.numNodes(); ++v) {
      if (nodeUsed[static_cast<std::size_t>(v)]) continue;
      double cost = 0;
      for (const auto& [peer, vol] : adj[pick]) {
        if (!placed[peer]) continue;
        cost += vol * static_cast<double>(topo.distance(v, place[peer]));
      }
      if (cost < bestCost) {
        bestCost = cost;
        bestNode = v;
      }
    }
    RAHTM_REQUIRE(bestNode != kInvalidNode, "GreedyHopBytesMapper: no node");
    place[pick] = bestNode;
    nodeUsed[static_cast<std::size_t>(bestNode)] = true;
    placed[pick] = true;
    for (const auto& [peer, vol] : adj[pick]) {
      if (!placed[peer]) attraction[peer] += vol;
    }
  }

  Mapping m(ranks);
  std::vector<int> nextSlot(static_cast<std::size_t>(topo.numNodes()), 0);
  for (RankId r = 0; r < ranks; ++r) {
    const auto cluster =
        static_cast<std::size_t>(tiling.clusterOf[static_cast<std::size_t>(r)]);
    const NodeId node = place[cluster];
    m.assign(r, node, nextSlot[static_cast<std::size_t>(node)]++);
  }
  return m;
}

}  // namespace rahtm
