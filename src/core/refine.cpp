#include "core/refine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/delta_eval.hpp"
#include "routing/route_cache.hpp"

namespace rahtm {

namespace {

/// Flat CSR adjacency of topology nodes (one step along any dimension).
struct NodeAdjacency {
  std::vector<std::size_t> offsets;
  std::vector<NodeId> nodes;

  static NodeAdjacency build(const Torus& topo) {
    NodeAdjacency adj;
    const auto n = static_cast<std::size_t>(topo.numNodes());
    adj.offsets.reserve(n + 1);
    adj.offsets.push_back(0);
    for (std::size_t node = 0; node < n; ++node) {
      const Coord c = topo.coordOf(static_cast<NodeId>(node));
      for (std::size_t dim = 0; dim < topo.ndims(); ++dim) {
        for (const Dir dir : {Dir::Plus, Dir::Minus}) {
          if (const auto nb = topo.neighbor(c, dim, dir)) {
            adj.nodes.push_back(topo.nodeId(*nb));
          }
        }
      }
      adj.offsets.push_back(adj.nodes.size());
    }
    return adj;
  }

  const NodeId* begin(std::size_t node) const {
    return nodes.data() + offsets[node];
  }
  const NodeId* end(std::size_t node) const {
    return nodes.data() + offsets[node + 1];
  }
};

/// Unique communication partners per vertex, ascending.
std::vector<std::vector<RankId>> buildVertexNeighbors(const CommGraph& g) {
  std::vector<std::vector<RankId>> nbrs(
      static_cast<std::size_t>(g.numRanks()));
  for (const Flow& f : g.flows()) {
    if (f.src == f.dst) continue;
    nbrs[static_cast<std::size_t>(f.src)].push_back(f.dst);
    nbrs[static_cast<std::size_t>(f.dst)].push_back(f.src);
  }
  for (auto& v : nbrs) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return nbrs;
}

/// Swap-search body (wrapped by refinePlacement for telemetry).
RefineResult refineImpl(const Torus& topo, const CommGraph& clusterGraph,
                        std::vector<NodeId>& nodeOfCluster,
                        const RefineConfig& cfg) {
  const auto n = static_cast<std::size_t>(clusterGraph.numRanks());
  RAHTM_REQUIRE(nodeOfCluster.size() >= n, "refinePlacement: placement small");

  RefineResult result;

  const bool hopBytes = cfg.objective == MapObjective::HopBytes;
  DeltaEvalConfig ecfg;
  ecfg.trackLoads = !hopBytes;
  ecfg.trackHopBytes = hopBytes;
  std::shared_ptr<const RouteTable> routes;
  std::shared_ptr<const FlowIncidence> incidence;
  std::shared_ptr<TieredRouteCache> tiered;
  if (ecfg.trackLoads && RouteTable::fullBuildFeasible(topo)) {
    if (cfg.routeCache != nullptr) {
      routes = cfg.routeCache->denseTier(topo);
    } else if (cfg.artifacts != nullptr) {
      routes = cfg.artifacts->routeTable(topo);
    }
  } else if (ecfg.trackLoads && cfg.routeCache != nullptr &&
             cfg.routeCache->topology() == topo) {
    // Past the complete-table ceiling: the sparse global tier serves the
    // touched pairs, evicting cold ones under memory pressure.
    tiered = cfg.routeCache;
  }
  if (cfg.artifacts != nullptr) {
    incidence = cfg.artifacts->flowIncidence(clusterGraph);
  }
  DeltaPlacementEval eval(topo, clusterGraph, nodeOfCluster, ecfg, routes,
                          incidence, tiered);

  double curMax = eval.mcl();
  double curSq = eval.sumSquares();
  double curHb = eval.hopBytes();
  result.objectiveBefore = hopBytes ? curHb : curMax;

  // Acceptance mirrors the original sweeps: hop-bytes is a strict decrease;
  // MCL is lexicographic (max, sum of squares) — most swaps leave the
  // maximum untouched, and draining load variance keeps the search
  // progressing across the MCL plateau.
  const auto accepts = [&](const DeltaPlacementEval::Summary& cand) {
    if (hopBytes) return cand.hopBytes < curHb - 1e-12;
    return cand.mcl < curMax - 1e-9 ||
           (cand.mcl < curMax + 1e-9 && cand.sumSquares < curSq * (1 - 1e-6));
  };
  const auto adopt = [&](const DeltaPlacementEval::Summary& cand) {
    curMax = cand.mcl;
    curSq = cand.sumSquares;
    curHb = cand.hopBytes;
    ++result.swapsApplied;
  };

  const bool pruned =
      cfg.candidates == RefineCandidates::Pruned ||
      (cfg.candidates == RefineCandidates::Auto &&
       n >= static_cast<std::size_t>(cfg.autoPruneThreshold));

  if (!pruned) {
    for (int pass = 0; pass < cfg.maxPasses; ++pass) {
      ++result.passes;
      obs::FlightRecorder::instance().record(obs::FrEvent::RefinePass, pass,
                                             result.swapsApplied);
      bool improved = false;
      for (std::size_t a = 0; a < n; ++a) {
        obs::Heartbeats::instance().beat(obs::Pulse::RefineProbes,
                                         n - a - 1);
        for (std::size_t b = a + 1; b < n; ++b) {
          const auto& cand =
              eval.probeSwap(static_cast<RankId>(a), static_cast<RankId>(b));
          if (accepts(cand)) {
            eval.commit();
            adopt(cand);
            improved = true;
          }
        }
      }
      if (!improved) break;
      // Resynchronize incremental drift between passes (cheap relative to
      // the pass itself) so accept thresholds always compare fresh values.
      eval.rebuild();
      curMax = eval.mcl();
      curSq = eval.sumSquares();
      curHb = eval.hopBytes();
    }
  } else {
    // Neighbor-biased candidates with don't-look bits. A vertex is active
    // until a full scan of its candidates yields no accepted swap; an
    // accepted swap reactivates both endpoints and their communication
    // partners. Serial and index-ordered, hence deterministic.
    const NodeAdjacency nodeAdj = NodeAdjacency::build(topo);
    const auto vertexNbrs = buildVertexNeighbors(clusterGraph);
    std::vector<RankId> vertexAt(static_cast<std::size_t>(topo.numNodes()),
                                 kInvalidRank);
    for (std::size_t v = 0; v < n; ++v) {
      const NodeId node = eval.placement()[v];
      RAHTM_REQUIRE(vertexAt[static_cast<std::size_t>(node)] == kInvalidRank,
                    "refinePlacement: pruned mode requires distinct nodes");
      vertexAt[static_cast<std::size_t>(node)] = static_cast<RankId>(v);
    }
    std::vector<char> dontLook(n, 0);
    std::vector<RankId> cands;
    const auto addVertexOn = [&](NodeId node, RankId self) {
      const RankId r = vertexAt[static_cast<std::size_t>(node)];
      if (r != kInvalidRank && r != self) cands.push_back(r);
    };
    for (int pass = 0; pass < cfg.maxPasses; ++pass) {
      ++result.passes;
      obs::FlightRecorder::instance().record(obs::FrEvent::RefinePass, pass,
                                             result.swapsApplied);
      bool improved = false;
      for (std::size_t a = 0; a < n; ++a) {
        if (dontLook[a]) continue;
        const auto ra = static_cast<RankId>(a);
        cands.clear();
        for (const RankId g : vertexNbrs[a]) {
          // The partner itself, and whoever sits next to it.
          cands.push_back(g);
          const auto gNode =
              static_cast<std::size_t>(eval.placement()[static_cast<std::size_t>(g)]);
          for (auto it = nodeAdj.begin(gNode); it != nodeAdj.end(gNode); ++it) {
            addVertexOn(*it, ra);
          }
        }
        // Whoever sits next to a (local shuffles that free a's node).
        const auto aNode = static_cast<std::size_t>(eval.placement()[a]);
        for (auto it = nodeAdj.begin(aNode); it != nodeAdj.end(aNode); ++it) {
          addVertexOn(*it, ra);
        }
        std::sort(cands.begin(), cands.end());
        cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
        obs::Heartbeats::instance().beat(obs::Pulse::RefineProbes,
                                         cands.size());
        bool found = false;
        for (const RankId b : cands) {
          const auto& cand = eval.probeSwap(ra, b);
          if (!accepts(cand)) continue;
          const NodeId na = eval.placement()[a];
          const NodeId nb = eval.placement()[static_cast<std::size_t>(b)];
          eval.commit();
          adopt(cand);
          vertexAt[static_cast<std::size_t>(na)] = b;
          vertexAt[static_cast<std::size_t>(nb)] = ra;
          dontLook[static_cast<std::size_t>(b)] = 0;
          for (const RankId g : vertexNbrs[a]) {
            dontLook[static_cast<std::size_t>(g)] = 0;
          }
          for (const RankId g : vertexNbrs[static_cast<std::size_t>(b)]) {
            dontLook[static_cast<std::size_t>(g)] = 0;
          }
          found = true;
          improved = true;
          break;  // a stays active; rescan its candidates next pass
        }
        if (!found) dontLook[a] = 1;
      }
      if (!improved) break;
      eval.rebuild();
      curMax = eval.mcl();
      curSq = eval.sumSquares();
      curHb = eval.hopBytes();
    }
  }

  // Final dense resync: report the exact objective of the final placement
  // (bit-identical to a from-scratch placementLoads()/hopBytes()).
  eval.rebuild();
  result.objectiveAfter = hopBytes ? eval.hopBytes() : eval.mcl();
  result.probes = eval.probes();
  result.denseSweeps = eval.denseSweeps();
  std::copy(eval.placement().begin(), eval.placement().begin() +
            static_cast<std::ptrdiff_t>(n), nodeOfCluster.begin());
  return result;
}

}  // namespace

RefineResult refinePlacement(const Torus& topo, const CommGraph& clusterGraph,
                             std::vector<NodeId>& nodeOfCluster,
                             const RefineConfig& cfg) {
  obs::ScopedSpan span(obs::tracer(), "rahtm.refine", "rahtm");
  span.attr("clusters", static_cast<std::int64_t>(clusterGraph.numRanks()));
  const RefineResult result = refineImpl(topo, clusterGraph, nodeOfCluster, cfg);
  span.attr("passes", static_cast<std::int64_t>(result.passes));
  span.attr("swaps", static_cast<std::int64_t>(result.swapsApplied));
  span.attr("probes", static_cast<std::int64_t>(result.probes));
  span.attr("objective_before", result.objectiveBefore);
  span.attr("objective_after", result.objectiveAfter);
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->counter("rahtm.refine.passes").add(result.passes);
    reg->counter("rahtm.refine.swaps").add(result.swapsApplied);
    reg->counter("rahtm.refine.probes")
        .add(static_cast<std::int64_t>(result.probes));
    reg->counter("rahtm.refine.dense_sweeps")
        .add(static_cast<std::int64_t>(result.denseSweeps));
  }
  return result;
}

}  // namespace rahtm
