#include "core/refine.hpp"

#include <cmath>
#include <unordered_map>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/evaluator.hpp"
#include "routing/oblivious.hpp"

namespace rahtm {

namespace {

/// Incremental swap evaluation: maintains the dense channel-load vector,
/// its maximum and its sum of squares; a swap only re-routes the flows
/// incident to the two swapped vertices, so evaluation cost is proportional
/// to their degree instead of the whole graph.
class SwapState {
 public:
  SwapState(const Torus& topo, const CommGraph& graph,
            std::vector<NodeId>& placement)
      : topo_(topo),
        graph_(graph),
        placement_(placement),
        loads_(static_cast<std::size_t>(topo.numChannelSlots()), 0.0) {
    flowsTouching_.resize(static_cast<std::size_t>(graph.numRanks()));
    const auto& flows = graph.flows();
    for (std::size_t i = 0; i < flows.size(); ++i) {
      flowsTouching_[static_cast<std::size_t>(flows[i].src)].push_back(i);
      if (flows[i].dst != flows[i].src) {
        flowsTouching_[static_cast<std::size_t>(flows[i].dst)].push_back(i);
      }
    }
    for (const Flow& f : flows) applyFlow(f, +1.0);
    recomputeStats();
  }

  double mcl() const { return max_; }
  double sumSquares() const { return sumSq_; }

  /// Swap the nodes of vertices a and b and update all statistics.
  void swap(RankId a, RankId b) {
    routeIncident(a, b, -1.0);
    std::swap(placement_[static_cast<std::size_t>(a)],
              placement_[static_cast<std::size_t>(b)]);
    routeIncident(a, b, +1.0);
    recomputeStats();
  }

 private:
  void routeIncident(RankId a, RankId b, double sign) {
    for (const std::size_t fi : flowsTouching_[static_cast<std::size_t>(a)]) {
      applyFlow(graph_.flows()[fi], sign);
    }
    for (const std::size_t fi : flowsTouching_[static_cast<std::size_t>(b)]) {
      const Flow& f = graph_.flows()[fi];
      // Flows between a and b were already handled in a's list.
      if (f.src == a || f.dst == a) continue;
      applyFlow(f, sign);
    }
  }

  void applyFlow(const Flow& f, double sign) {
    const NodeId u = placement_[static_cast<std::size_t>(f.src)];
    const NodeId v = placement_[static_cast<std::size_t>(f.dst)];
    if (u == v) return;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
        static_cast<std::uint32_t>(v);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      std::vector<std::pair<ChannelId, double>> entries;
      forEachUniformMinimalLoad(
          topo_, topo_.coordOf(u), topo_.coordOf(v), 1.0,
          [&entries](ChannelId c, double frac) { entries.push_back({c, frac}); });
      it = cache_.emplace(key, std::move(entries)).first;
    }
    for (const auto& [channel, frac] : it->second) {
      loads_[static_cast<std::size_t>(channel)] += sign * frac * f.bytes;
    }
  }

  void recomputeStats() {
    max_ = 0;
    sumSq_ = 0;
    for (double& v : loads_) {
      if (v < 0 && v > -1e-7) v = 0;  // scrub cancellation residue
      max_ = std::max(max_, v);
      sumSq_ += v * v;
    }
  }

  const Torus& topo_;
  const CommGraph& graph_;
  std::vector<NodeId>& placement_;
  std::vector<double> loads_;
  std::vector<std::vector<std::size_t>> flowsTouching_;
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<ChannelId, double>>>
      cache_;
  double max_ = 0;
  double sumSq_ = 0;
};

}  // namespace

namespace {

/// Swap-search body (wrapped by refinePlacement for telemetry).
RefineResult refineImpl(const Torus& topo, const CommGraph& clusterGraph,
                        std::vector<NodeId>& nodeOfCluster,
                        const RefineConfig& cfg) {
  const auto n = static_cast<std::size_t>(clusterGraph.numRanks());
  RAHTM_REQUIRE(nodeOfCluster.size() >= n, "refinePlacement: placement small");

  RefineResult result;

  if (cfg.objective == MapObjective::HopBytes) {
    // Hop-bytes is a plain sum: evaluate with the memoized evaluator.
    MclEvaluator evaluator(topo);
    double current = evaluator.hopBytesOf(clusterGraph, nodeOfCluster);
    result.objectiveBefore = current;
    for (int pass = 0; pass < cfg.maxPasses; ++pass) {
      ++result.passes;
      bool improved = false;
      for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
          std::swap(nodeOfCluster[a], nodeOfCluster[b]);
          const double cand = evaluator.hopBytesOf(clusterGraph, nodeOfCluster);
          if (cand < current - 1e-12) {
            current = cand;
            improved = true;
            ++result.swapsApplied;
          } else {
            std::swap(nodeOfCluster[a], nodeOfCluster[b]);
          }
        }
      }
      if (!improved) break;
    }
    result.objectiveAfter = current;
    return result;
  }

  // MCL objective with the lexicographic (max, sum-of-squares) criterion:
  // most swaps do not move the maximum, but draining load variance keeps
  // the search progressing across the MCL plateau.
  SwapState state(topo, clusterGraph, nodeOfCluster);
  result.objectiveBefore = state.mcl();
  double curMax = state.mcl();
  double curSq = state.sumSquares();
  for (int pass = 0; pass < cfg.maxPasses; ++pass) {
    ++result.passes;
    bool improved = false;
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        state.swap(static_cast<RankId>(a), static_cast<RankId>(b));
        const double candMax = state.mcl();
        const double candSq = state.sumSquares();
        const bool accept =
            candMax < curMax - 1e-9 ||
            (candMax < curMax + 1e-9 && candSq < curSq * (1 - 1e-6));
        if (accept) {
          curMax = candMax;
          curSq = candSq;
          improved = true;
          ++result.swapsApplied;
        } else {
          state.swap(static_cast<RankId>(a), static_cast<RankId>(b));  // undo
        }
      }
    }
    if (!improved) break;
  }
  result.objectiveAfter = curMax;
  return result;
}

}  // namespace

RefineResult refinePlacement(const Torus& topo, const CommGraph& clusterGraph,
                             std::vector<NodeId>& nodeOfCluster,
                             const RefineConfig& cfg) {
  obs::ScopedSpan span(obs::tracer(), "rahtm.refine", "rahtm");
  span.attr("clusters", static_cast<std::int64_t>(clusterGraph.numRanks()));
  const RefineResult result = refineImpl(topo, clusterGraph, nodeOfCluster, cfg);
  span.attr("passes", static_cast<std::int64_t>(result.passes));
  span.attr("swaps", static_cast<std::int64_t>(result.swapsApplied));
  span.attr("objective_before", result.objectiveBefore);
  span.attr("objective_after", result.objectiveAfter);
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->counter("rahtm.refine.passes").add(result.passes);
    reg->counter("rahtm.refine.swaps").add(result.swapsApplied);
  }
  return result;
}

}  // namespace rahtm
