#include "core/clustering.hpp"

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/math.hpp"
#include "topology/torus.hpp"

namespace rahtm {

TilingResult applyTiling(const CommGraph& g, const Shape& grid,
                         const Shape& tileShape) {
  RAHTM_REQUIRE(grid.size() == tileShape.size(),
                "applyTiling: dimension mismatch");
  const Torus fine = Torus::mesh(grid);
  RAHTM_REQUIRE(fine.numNodes() == g.numRanks(),
                "applyTiling: graph size != grid volume");
  Shape coarse(grid.size(), 0);
  for (std::size_t d = 0; d < grid.size(); ++d) {
    RAHTM_REQUIRE(tileShape[d] >= 1 && grid[d] % tileShape[d] == 0,
                  "applyTiling: tile must divide the grid");
    coarse[d] = grid[d] / tileShape[d];
  }
  const Torus coarseTopo = Torus::mesh(coarse);

  TilingResult r;
  r.tileShape = tileShape;
  r.coarseGrid = coarse;
  r.clusterOf.resize(static_cast<std::size_t>(g.numRanks()));
  for (RankId v = 0; v < g.numRanks(); ++v) {
    const Coord c = fine.coordOf(v);
    Coord tile(c.size(), 0);
    for (std::size_t d = 0; d < c.size(); ++d) tile[d] = c[d] / tileShape[d];
    r.clusterOf[static_cast<std::size_t>(v)] =
        static_cast<ClusterId>(coarseTopo.nodeId(tile));
  }
  auto contraction = contract(g, r.clusterOf,
                              static_cast<ClusterId>(coarseTopo.numNodes()));
  r.coarseGraph = std::move(contraction.clusterGraph);
  r.intraVolume = contraction.intraClusterVolume;
  r.interVolume = contraction.interClusterVolume;
  return r;
}

TilingResult bestTiling(const CommGraph& g, const Shape& grid,
                        std::int64_t tileCells) {
  const auto shapes = orderedFactorizations(tileCells, grid);
  std::vector<Shape> usable;
  for (const Shape& s : shapes) {
    bool divides = true;
    for (std::size_t d = 0; d < s.size(); ++d) {
      divides &= (grid[d] % s[d] == 0);
    }
    if (divides) usable.push_back(s);
  }
  RAHTM_REQUIRE(!usable.empty(),
                "bestTiling: no tile of the requested size divides the grid");
  TilingResult best;
  bool first = true;
  for (const Shape& s : usable) {
    TilingResult r = applyTiling(g, grid, s);
    if (first || r.interVolume < best.interVolume) {
      best = std::move(r);
      first = false;
    }
  }
  RAHTM_LOG(Debug) << "bestTiling: " << usable.size() << " candidates, chose "
                   << best.tileShape << " (inter-tile volume "
                   << best.interVolume << ")";
  return best;
}

TilingResult firstTiling(const CommGraph& g, const Shape& grid,
                         std::int64_t tileCells) {
  for (const Shape& s : orderedFactorizations(tileCells, grid)) {
    bool divides = true;
    for (std::size_t d = 0; d < s.size(); ++d) {
      divides &= (grid[d] % s[d] == 0);
    }
    if (divides) return applyTiling(g, grid, s);
  }
  throw PreconditionError(
      "firstTiling: no tile of the requested size divides the grid");
}

ClusterTree buildClusterTree(
    const CommGraph& g, const Shape& rankGrid, int concentration,
    const std::vector<std::int64_t>& levelChildCounts, bool tileSearch) {
  RAHTM_REQUIRE(concentration >= 1, "buildClusterTree: bad concentration");
  const auto tile = [&](const CommGraph& graph, const Shape& grid,
                        std::int64_t cells) {
    return tileSearch ? bestTiling(graph, grid, cells)
                      : firstTiling(graph, grid, cells);
  };
  ClusterTree tree;
  tree.concentration = tile(g, rankGrid, concentration);

  // Sanity: the hierarchy must reduce the node-level cluster count to one.
  std::int64_t product = 1;
  for (const std::int64_t c : levelChildCounts) product *= c;
  RAHTM_REQUIRE(product == tree.concentration.coarseGraph.numRanks(),
                "buildClusterTree: hierarchy child counts do not multiply to "
                "the cluster count");

  const CommGraph* current = &tree.concentration.coarseGraph;
  Shape grid = tree.concentration.coarseGrid;
  for (const std::int64_t children : levelChildCounts) {
    TilingResult level = tile(*current, grid, children);
    grid = level.coarseGrid;
    tree.levels.push_back(std::move(level));
    current = &tree.levels.back().coarseGraph;
  }
  RAHTM_REQUIRE(current->numRanks() == 1,
                "buildClusterTree: hierarchy did not reach a single root");
  return tree;
}

}  // namespace rahtm
