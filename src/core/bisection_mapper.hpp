#pragma once
/// \file bisection_mapper.hpp
/// Recursive-bisection mapping — the classic graph-partitioner approach
/// (Chaco-style) the paper cites as limited prior art (§IV mentions Chaco
/// "handles 3 dimensions at most"; this implementation handles any of our
/// torus dimensionalities, but remains routing-unaware).
///
/// Algorithm: recursively bisect the machine along its largest dimension
/// and, in lock step, bisect the (cluster) communication graph with a
/// Kernighan–Lin / Fiduccia–Mattheyses-style min-cut pass, assigning each
/// graph half to a machine half. The objective at every split is the cut
/// volume — a bandwidth-motivated but routing-oblivious criterion, which
/// makes this the strongest "traditional" baseline in the roster.

#include "mapping/mapping.hpp"

namespace rahtm {

struct BisectionConfig {
  /// KL improvement passes per bisection.
  int klPasses = 8;
  /// Logical rank-grid geometry for the concentration tiling (empty: 1D).
  Shape logicalGrid;
  std::uint64_t seed = 0xb15ec7;
};

class RecursiveBisectionMapper final : public TaskMapper {
 public:
  explicit RecursiveBisectionMapper(BisectionConfig config = {});

  Mapping map(const CommGraph& graph, const Torus& topo,
              int concentration) override;
  std::string name() const override { return "RCB"; }

  void setLogicalGrid(const Shape& grid) { config_.logicalGrid = grid; }

 private:
  BisectionConfig config_;
};

}  // namespace rahtm
