#include "core/rahtm.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "exec/thread_pool.hpp"
#include "graph/stats.hpp"
#include "obs/heartbeat.hpp"
#include "obs/json.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/delta_eval.hpp"
#include "routing/evaluator.hpp"
#include "routing/oblivious.hpp"
#include "routing/route_cache.hpp"

namespace rahtm {

namespace {

/// Restrict \p g to the vertex subset \p verts, relabeling vertex verts[i]
/// to local id i. Flows with an endpoint outside the subset are dropped.
CommGraph restrictGraph(const CommGraph& g, const std::vector<ClusterId>& verts) {
  std::vector<RankId> local(static_cast<std::size_t>(g.numRanks()), -1);
  for (std::size_t i = 0; i < verts.size(); ++i) {
    local[static_cast<std::size_t>(verts[i])] = static_cast<RankId>(i);
  }
  CommGraph out(static_cast<RankId>(verts.size()));
  for (const Flow& f : g.flows()) {
    const RankId a = local[static_cast<std::size_t>(f.src)];
    const RankId b = local[static_cast<std::size_t>(f.dst)];
    if (a >= 0 && b >= 0) out.addFlow(a, b, f.bytes);
  }
  return out;
}

/// Internal pipeline state shared by the phases.
struct Pipeline {
  const RahtmConfig& cfg;
  const Torus& topo;
  MachineHierarchy hierarchy;
  ClusterTree tree;
  int L;  ///< hierarchy depth

  /// parentOf[k][c] : depth-k cluster c -> its parent at depth k-1 (k >= 1).
  std::vector<const std::vector<ClusterId>*> parentOf;
  /// childrenOf[k][p] : depth-k cluster p -> its depth-(k+1) children.
  std::vector<std::vector<std::vector<ClusterId>>> childrenOf;
  /// graphs[k] : contracted communication graph over depth-k clusters.
  std::vector<const CommGraph*> graphs;
  /// pinSlot[k][c] : phase-2 slot (coord in the parent's child grid) of
  /// depth-k cluster c (k >= 1).
  std::vector<std::vector<Coord>> pinSlot;

  RahtmStats* stats;

  Pipeline(const RahtmConfig& config, const CommGraph& graph,
           const Torus& topology, int concentration, const Shape& rankGrid,
           RahtmStats* statsOut)
      : cfg(config), topo(topology), hierarchy(topology), stats(statsOut) {
    L = hierarchy.depth();
    {
      obs::ScopedSpan span(obs::tracer(), "rahtm.phase.cluster", "rahtm");
      obs::PhaseScope phase("rahtm.phase.cluster");
      tree = buildClusterTree(graph, rankGrid, concentration,
                              hierarchy.childCountsDeepestFirst(),
                              config.tileSearch);
      span.attr("levels", static_cast<std::int64_t>(tree.levels.size()));
      stats->clusterSeconds = span.close();
    }
    stats->intraNodeVolume = tree.concentration.intraVolume;
    stats->interNodeVolume = tree.concentration.interVolume;

    // Index parents / children / graphs by depth.
    parentOf.assign(static_cast<std::size_t>(L) + 1, nullptr);
    graphs.assign(static_cast<std::size_t>(L) + 1, nullptr);
    graphs[static_cast<std::size_t>(L)] = &tree.concentration.coarseGraph;
    for (int k = 1; k <= L; ++k) {
      // tree.levels[i] maps depth (L - i) -> depth (L - i - 1).
      const TilingResult& level = tree.levels[static_cast<std::size_t>(L - k)];
      parentOf[static_cast<std::size_t>(k)] = &level.clusterOf;
      graphs[static_cast<std::size_t>(k - 1)] = &level.coarseGraph;
    }
    childrenOf.resize(static_cast<std::size_t>(L));
    for (int k = 0; k < L; ++k) {
      const auto& pmap = *parentOf[static_cast<std::size_t>(k + 1)];
      childrenOf[static_cast<std::size_t>(k)].resize(
          static_cast<std::size_t>(graphs[static_cast<std::size_t>(k)]->numRanks()));
      for (std::size_t c = 0; c < pmap.size(); ++c) {
        childrenOf[static_cast<std::size_t>(k)][static_cast<std::size_t>(pmap[c])]
            .push_back(static_cast<ClusterId>(c));
      }
    }
    pinSlot.resize(static_cast<std::size_t>(L) + 1);
    for (int k = 1; k <= L; ++k) {
      pinSlot[static_cast<std::size_t>(k)].resize(
          static_cast<std::size_t>(graphs[static_cast<std::size_t>(k)]->numRanks()),
          Coord(topo.ndims(), 0));
    }
  }

  /// Phase 2: top-down pseudo-pinning (§III-C), executed in level-order
  /// waves. Every sibling group at a depth is an independent subproblem, so
  /// a whole level's solves are submitted to the pool at once; solutions
  /// land in index-addressed slots and all stats/pin bookkeeping below runs
  /// serially in wave order, keeping the mapping bit-identical for any
  /// thread count. (A wave of size one — always the root — runs inline,
  /// which leaves the pool free for that subproblem's annealing restarts.)
  void pin(exec::ThreadPool& pool) {
    std::vector<ClusterId> wave{0};  // depth-k clusters awaiting expansion
    for (int k = 0; k < L && !wave.empty(); ++k) {
      const auto& kids = childrenOf[static_cast<std::size_t>(k)];
      const Torus cube = hierarchy.clusterTopology(k);
      for (const ClusterId x : wave) {
        RAHTM_REQUIRE(
            static_cast<std::int64_t>(
                kids[static_cast<std::size_t>(x)].size()) == cube.numNodes(),
            "RAHTM pin: child count != cube size");
      }
      std::vector<SubproblemSolution> sols(wave.size());
      pool.parallelFor(wave.size(), [&](std::size_t i) {
        const auto& children = kids[static_cast<std::size_t>(wave[i])];
        const CommGraph sibling =
            restrictGraph(*graphs[static_cast<std::size_t>(k + 1)], children);
        sols[i] = solveSubproblem(sibling, cube, cfg.subproblem, &pool);
      });
      std::vector<ClusterId> next;
      for (std::size_t i = 0; i < wave.size(); ++i) {
        ++stats->subproblemsSolved;
        ++stats->solverMethodCounts[sols[i].method];
        const auto& children = kids[static_cast<std::size_t>(wave[i])];
        for (std::size_t j = 0; j < children.size(); ++j) {
          pinSlot[static_cast<std::size_t>(k + 1)]
                 [static_cast<std::size_t>(children[j])] =
                     cube.coordOf(sols[i].vertexOf[j]);
          if (k + 1 < L) next.push_back(children[j]);
        }
      }
      // Stream the level's dense table out: the next wave solves a
      // different cube shape, so holding every level's table resident
      // would rebuild the old all-levels footprint at scale. (No-op when
      // the cache delegates to a cross-request artifact source, which owns
      // its own LRU.)
      if (cfg.subproblem.routeCache != nullptr) {
        cfg.subproblem.routeCache->releaseDense(cube);
      }
      wave = std::move(next);
    }
  }

  /// Local topology of one block at depth \p k: the machine itself at the
  /// root; a mesh of the block shape below.
  Torus regionTopology(int k) const {
    const Shape& shape = hierarchy.blockShape(k);
    SmallVec<std::uint8_t, kMaxDims> wrap(shape.size(), 0);
    if (k == 0) {
      for (std::size_t d = 0; d < shape.size(); ++d) {
        wrap[d] = topo.wraps(d) ? 1 : 0;
      }
    }
    return Torus::mixed(shape, wrap);
  }

  struct BlockMap {
    std::vector<ClusterId> clusters;  ///< node-level cluster ids
    std::vector<Coord> pos;           ///< local coords within the block
    std::vector<Coord> pinPos;        ///< pin-only layout (no merge choices)
  };

  /// Phase 3: bottom-up merge (§III-D).
  BlockMap mergeUp(int k, ClusterId x, double* rootObjective) {
    if (k == L) {
      BlockMap leaf;
      leaf.clusters.push_back(x);
      leaf.pos.push_back(Coord(topo.ndims(), 0));
      leaf.pinPos.push_back(Coord(topo.ndims(), 0));
      return leaf;
    }
    const auto& children = childrenOf[static_cast<std::size_t>(k)]
                                     [static_cast<std::size_t>(x)];
    std::vector<MergeChild> mergeChildrenIn;
    mergeChildrenIn.reserve(children.size());
    for (const ClusterId child : children) {
      BlockMap bm = mergeUp(k + 1, child, nullptr);
      MergeChild mc;
      mc.clusters = std::move(bm.clusters);
      mc.localPos = std::move(bm.pos);
      mc.pinPos = std::move(bm.pinPos);
      mc.slot = pinSlot[static_cast<std::size_t>(k + 1)]
                       [static_cast<std::size_t>(child)];
      mergeChildrenIn.push_back(std::move(mc));
    }
    MergeConfig mcfg = cfg.merge;
    if (!cfg.enableMerge) {
      mcfg.beamWidth = 1;
      mcfg.maxOrientations = 1;  // identity only: phase-2 pins are final
      mcfg.allowRepositioning = false;
    }
    const Torus region = regionTopology(k);
    const MergeResult res = mergeChildren(
        region, hierarchy.blockShape(k + 1), hierarchy.childGrid(k),
        mergeChildrenIn, *graphs[static_cast<std::size_t>(L)], mcfg);
    if (rootObjective != nullptr) *rootObjective = res.objective;

    BlockMap out;
    out.clusters = res.clustersInRegion;
    out.pos.reserve(res.localNode.size());
    for (const NodeId n : res.localNode) {
      out.pos.push_back(region.coordOf(n));
    }
    out.pinPos.reserve(res.pinLocalNode.size());
    for (const NodeId n : res.pinLocalNode) {
      out.pinPos.push_back(region.coordOf(n));
    }
    return out;
  }
};

/// Evaluate the incumbent node-cluster placement after a phase and record
/// it everywhere the attribution is consumed: RahtmStats::phaseQuality, a
/// "rahtm.quality" instant trace event, and the
/// "rahtm.quality.<phase>.{mcl,hop_bytes}" gauges. A trace therefore shows
/// *which phase* bought each MCL / hop-bytes improvement.
void recordPhaseQuality(RahtmStats& stats, const Torus& topo,
                        const CommGraph& clusterGraph,
                        const std::vector<NodeId>& nodeOfCluster,
                        const char* phase) {
  PhaseQuality q;
  q.phase = phase;
  q.mcl = placementMcl(topo, clusterGraph, nodeOfCluster);
  q.hopBytes = hopBytes(clusterGraph, topo, nodeOfCluster);
  // Accounted-memory high-water mark since the previous phase boundary;
  // the reset arms the next phase's measurement.
  obs::MemRegistry& mem = obs::MemRegistry::instance();
  q.memPeakBytes = mem.phasePeakBytes();
  mem.resetPhasePeak();
  stats.phaseQuality.push_back(q);
  if (obs::Tracer* t = obs::tracer()) {
    t->instant("rahtm.quality", "rahtm",
               {{"phase", obs::jsonString(phase)},
                {"mcl", obs::jsonDouble(q.mcl)},
                {"hop_bytes", obs::jsonDouble(q.hopBytes)},
                {"mem_peak_bytes",
                 obs::jsonInt(static_cast<std::int64_t>(q.memPeakBytes))}});
  }
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    const std::string prefix = std::string("rahtm.quality.") + phase;
    reg->gauge(prefix + ".mcl").set(q.mcl);
    reg->gauge(prefix + ".hop_bytes").set(q.hopBytes);
    reg->gauge(std::string("rahtm.mem.") + phase + ".peak_bytes")
        .set(static_cast<double>(q.memPeakBytes));
  }
}

}  // namespace

RahtmMapper::RahtmMapper(RahtmConfig config) : config_(std::move(config)) {}

Mapping RahtmMapper::map(const CommGraph& graph, const Torus& topo,
                         int concentration) {
  // Every phase runs under a tracer span; the RahtmStats timings are the
  // spans' durations, so the §V-B accounting and a captured trace agree
  // exactly. With tracing disabled the spans degrade to bare stopwatches.
  obs::ScopedSpan total(obs::tracer(), "rahtm.map", "rahtm");
  obs::PhaseScope totalPhase("rahtm.map");
  stats_ = RahtmStats{};
  // Arm per-phase memory attribution: each recordPhaseQuality() call reads
  // the high-water mark since the previous boundary and re-arms.
  obs::MemRegistry::instance().resetPhasePeak();
  const RankId ranks = graph.numRanks();
  total.attr("ranks", static_cast<std::int64_t>(ranks));
  total.attr("machine", topo.describe());
  total.attr("concentration", static_cast<std::int64_t>(concentration));
  RAHTM_REQUIRE(ranks == topo.numNodes() * concentration,
                "RahtmMapper: ranks != nodes * concentration");

  Shape rankGrid = config_.logicalGrid;
  if (rankGrid.empty()) {
    rankGrid = Shape{static_cast<std::int32_t>(ranks)};
  } else {
    std::int64_t vol = 1;
    for (std::size_t d = 0; d < rankGrid.size(); ++d) vol *= rankGrid[d];
    RAHTM_REQUIRE(vol == ranks, "RahtmMapper: logical grid volume != ranks");
  }

  exec::ThreadPool pool(config_.numThreads);
  total.attr("threads", static_cast<std::int64_t>(pool.numThreads()));

  // Propagate the shared-artifact provider into every phase config before
  // the pipeline snapshots them.
  config_.subproblem.artifacts = config_.artifacts;
  config_.merge.artifacts = config_.artifacts;
  config_.refine.artifacts = config_.artifacts;

  // Resolve the tiered route cache the same way: caller-supplied, then the
  // artifact provider's shared instance, then — only past the complete-
  // table ceiling, where the historical paths would materialize an
  // unaffordable table — a solve-local one. At small scales with no
  // provider the cache stays null and every phase behaves exactly as
  // before (the gated baselines see no change at all).
  if (config_.routeCache == nullptr && config_.artifacts != nullptr) {
    config_.routeCache = config_.artifacts->routeCache(topo);
  }
  if (config_.routeCache == nullptr && !RouteTable::fullBuildFeasible(topo)) {
    config_.routeCache = std::make_shared<TieredRouteCache>(topo);
  }
  config_.subproblem.routeCache = config_.routeCache;
  config_.merge.routeCache = config_.routeCache;
  config_.refine.routeCache = config_.routeCache;

  Pipeline pipe(config_, graph, topo, concentration, rankGrid, &stats_);

  // Quality attribution baseline: the canonical (identity) cluster
  // placement right after clustering, before any placement decision.
  const CommGraph& clusterGraph = pipe.tree.concentration.coarseGraph;
  {
    std::vector<NodeId> canonical(
        static_cast<std::size_t>(clusterGraph.numRanks()));
    for (std::size_t i = 0; i < canonical.size(); ++i) {
      canonical[i] = static_cast<NodeId>(i);
    }
    recordPhaseQuality(stats_, topo, clusterGraph, canonical, "cluster");
  }

  {
    obs::ScopedSpan span(obs::tracer(), "rahtm.phase.pin", "rahtm");
    obs::PhaseScope phase("rahtm.phase.pin");
    pipe.pin(pool);
    span.attr("subproblems", static_cast<std::int64_t>(stats_.subproblemsSolved));
    stats_.pinSeconds = span.close();
  }

  double rootObjective = 0;
  Pipeline::BlockMap root;
  {
    obs::ScopedSpan span(obs::tracer(), "rahtm.phase.merge", "rahtm");
    obs::PhaseScope phase("rahtm.phase.merge");
    root = pipe.mergeUp(0, 0, &rootObjective);
    span.attr("objective", rootObjective);
    stats_.mergeSeconds = span.close();
  }
  stats_.rootObjective = rootObjective;

  // Node-level cluster -> machine node.
  std::vector<NodeId> nodeOfCluster(
      static_cast<std::size_t>(clusterGraph.numRanks()), kInvalidNode);
  for (std::size_t i = 0; i < root.clusters.size(); ++i) {
    nodeOfCluster[static_cast<std::size_t>(root.clusters[i])] =
        topo.nodeId(root.pos[i]);
  }

  // Attribute pin and merge: mergeUp carries the pin-only layout alongside
  // the merged one, so both incumbents are known here.
  {
    std::vector<NodeId> pinNode(nodeOfCluster.size(), kInvalidNode);
    for (std::size_t i = 0; i < root.clusters.size(); ++i) {
      pinNode[static_cast<std::size_t>(root.clusters[i])] =
          topo.nodeId(root.pinPos[i]);
    }
    recordPhaseQuality(stats_, topo, clusterGraph, pinNode, "pin");
  }
  recordPhaseQuality(stats_, topo, clusterGraph, nodeOfCluster, "merge");

  // Final refinement: pairwise swaps on the full placement under the same
  // routing-aware objective (extension; see refine.hpp). With canonicalSeed
  // the dimension-order placement is refined as well and the better of the
  // two survives — the hierarchical search must never lose to the trivial
  // mapping.
  if (config_.finalRefinement) {
    obs::ScopedSpan span(obs::tracer(), "rahtm.phase.refine", "rahtm");
    obs::PhaseScope phase("rahtm.phase.refine");
    RefineConfig rcfg = config_.refine;
    rcfg.objective = config_.merge.objective;
    RefineResult rr;
    RefineResult rc;
    std::vector<NodeId> canonical;
    if (config_.canonicalSeed) {
      // The mapped-seed and canonical-seed refinements are independent
      // searches over disjoint state — run them as a two-task region.
      canonical.resize(nodeOfCluster.size());
      for (std::size_t i = 0; i < canonical.size(); ++i) {
        canonical[i] = static_cast<NodeId>(i);
      }
      pool.parallelFor(2, [&](std::size_t i) {
        if (i == 0) {
          rr = refinePlacement(topo, clusterGraph, nodeOfCluster, rcfg);
        } else {
          rc = refinePlacement(topo, clusterGraph, canonical, rcfg);
        }
      });
    } else {
      rr = refinePlacement(topo, clusterGraph, nodeOfCluster, rcfg);
    }
    stats_.refineSwaps = rr.swapsApplied;
    stats_.rootObjective = rr.objectiveAfter;
    if (config_.canonicalSeed) {
      // Lexicographic comparison under the active objective.
      bool canonicalWins;
      MclEvaluator evaluator = [&] {
        if (RouteTable::fullBuildFeasible(topo)) {
          if (config_.routeCache != nullptr) {
            return MclEvaluator(topo, config_.routeCache->denseTier(topo));
          }
          if (config_.artifacts != nullptr) {
            return MclEvaluator(topo, config_.artifacts->routeTable(topo));
          }
        } else if (config_.routeCache != nullptr &&
                   config_.routeCache->topology() == topo) {
          // Paper scale: score both candidates off the sparse global tier
          // (already warm from merge/refine) instead of re-deriving every
          // touched route into a private lazy table.
          return MclEvaluator(topo, config_.routeCache);
        }
        return MclEvaluator(topo);
      }();
      if (rcfg.objective == MapObjective::Mcl) {
        const auto sm = evaluator.summarize(clusterGraph, nodeOfCluster);
        const auto sc = evaluator.summarize(clusterGraph, canonical);
        canonicalWins = sc.mcl < sm.mcl - 1e-12 ||
                        (sc.mcl < sm.mcl + 1e-12 &&
                         sc.sumSquares < sm.sumSquares * (1 - 1e-9));
      } else {
        canonicalWins = rc.objectiveAfter < rr.objectiveAfter - 1e-12;
      }
      if (canonicalWins) {
        nodeOfCluster = std::move(canonical);
        stats_.rootObjective = rc.objectiveAfter;
        stats_.refineSwaps += rc.swapsApplied;
        RAHTM_LOG(Info) << "RAHTM: canonical-seed refinement won ("
                        << rc.objectiveAfter << " vs " << rr.objectiveAfter
                        << ")";
      }
    }
    span.attr("swaps", static_cast<std::int64_t>(stats_.refineSwaps));
    span.attr("objective", stats_.rootObjective);
    stats_.refineSeconds = span.close();
    recordPhaseQuality(stats_, topo, clusterGraph, nodeOfCluster, "refine");
  }

  // Rank -> (node, slot): slots assigned in rank order within each node.
  Mapping m(ranks);
  std::vector<int> nextSlot(static_cast<std::size_t>(topo.numNodes()), 0);
  for (RankId r = 0; r < ranks; ++r) {
    const ClusterId c =
        pipe.tree.concentration.clusterOf[static_cast<std::size_t>(r)];
    const NodeId n = nodeOfCluster[static_cast<std::size_t>(c)];
    RAHTM_REQUIRE(n != kInvalidNode, "RahtmMapper: unplaced cluster");
    m.assign(r, n, nextSlot[static_cast<std::size_t>(n)]++);
  }
  total.attr("root_objective", stats_.rootObjective);
  total.attr("subproblems", static_cast<std::int64_t>(stats_.subproblemsSolved));
  stats_.totalSeconds = total.close();
  RAHTM_LOG(Info) << "RAHTM mapped " << ranks << " ranks onto "
                  << topo.describe() << " in " << stats_.totalSeconds
                  << "s (cluster " << stats_.clusterSeconds << "s, pin "
                  << stats_.pinSeconds << "s, merge " << stats_.mergeSeconds
                  << "s); root objective " << stats_.rootObjective;
  return m;
}

Mapping RahtmMapper::mapWorkload(const Workload& workload, const Torus& topo,
                                 int concentration) {
  config_.logicalGrid = workload.logicalGrid;
  return map(workload.commGraph(), topo, concentration);
}

}  // namespace rahtm
