#pragma once
/// \file rahtm.hpp
/// The RAHTM pipeline (§III): clustering → hierarchical MILP pseudo-pinning
/// → bottom-up beam merging. This is the public entry point of the library.

#include <map>
#include <string>
#include <vector>

#include "core/clustering.hpp"
#include "core/hierarchy.hpp"
#include "core/merge.hpp"
#include "core/refine.hpp"
#include "core/subproblem.hpp"
#include "mapping/mapping.hpp"
#include "workloads/workload.hpp"

namespace rahtm {

struct RahtmConfig {
  SubproblemConfig subproblem;  ///< phase-2 solver portfolio
  MergeConfig merge;            ///< phase-3 beam parameters (N = 64)
  /// Search tile shapes during clustering (Fig. 2). When off, the first
  /// usable factorization is taken (ablation).
  bool tileSearch = true;
  /// Run phase 3. When off, the phase-2 pseudo-pins are final (ablation).
  bool enableMerge = true;
  /// Run the final pairwise-swap refinement over the merged placement
  /// (an extension past the paper's three phases — see refine.hpp).
  bool finalRefinement = true;
  RefineConfig refine;
  /// Also refine from the canonical dimension-order cluster placement and
  /// keep the better of the two refined placements. Guards against regimes
  /// (e.g. bisection-bound patterns) where the hierarchical search space
  /// cannot reach the trivial mapping's quality.
  bool canonicalSeed = true;
  /// Logical process-grid shape (product == rank count). Empty: 1D.
  Shape logicalGrid;
  /// Worker threads for the compute phases: phase-2 subproblem waves,
  /// annealing restarts, and the final-refinement seed pair. 1 (default)
  /// runs fully serial; 0 uses every hardware thread. The mapping is
  /// bit-identical for every value (see exec/thread_pool.hpp for the
  /// determinism contract).
  int numThreads = 1;
  /// Optional provider of shared per-topology artifacts (route tables, flow
  /// incidences), propagated into every phase config. Non-owning; must
  /// outlive map(). Null = each phase builds its own (the one-shot CLI
  /// behavior). Shared artifacts are content-identical to local builds, so
  /// mappings stay bit-identical.
  ArtifactSource* artifacts = nullptr;
  /// Optional tiered route cache shared across phases (and, via SimConfig,
  /// with the simulator). When null, map() resolves one from `artifacts`
  /// or — on machines past the complete-table ceiling — creates its own, so
  /// paper-scale solves stream dense sub-torus tables level by level and
  /// serve the full machine from the evictable sparse tier. At complete-
  /// table scales a null cache leaves the historical per-phase paths
  /// untouched (bit- and allocation-identical to previous releases).
  std::shared_ptr<TieredRouteCache> routeCache;
};

/// Timing and accounting for the §V-B optimization-time experiment.
///
/// Phase timings are the durations of the pipeline's tracer spans
/// ("rahtm.phase.cluster" / ".pin" / ".merge" / ".refine" and "rahtm.map"
/// for the total), so when a trace is captured (obs::setTracer /
/// --trace-out) these numbers match the trace file exactly.
/// Quality of the incumbent node-cluster placement at the end of one
/// pipeline phase, under the oblivious MAR model (placementMcl) and the
/// hop-bytes baseline metric. The sequence cluster → pin → merge → refine
/// attributes the final mapping quality to the phase that bought it: the
/// "cluster" entry evaluates the canonical (identity) cluster placement —
/// the state before any placement optimization — and each later entry the
/// placement that phase produced.
struct PhaseQuality {
  std::string phase;
  double mcl = 0;
  double hopBytes = 0;
  /// High-water mark of total accounted bytes (obs/mem.hpp) while this
  /// phase ran — which phase's working set sizes the run's memory budget.
  std::int64_t memPeakBytes = 0;
};

struct RahtmStats {
  double clusterSeconds = 0;
  double pinSeconds = 0;
  double mergeSeconds = 0;
  double refineSeconds = 0;
  double totalSeconds = 0;
  int refineSwaps = 0;
  int subproblemsSolved = 0;
  std::map<std::string, int> solverMethodCounts;
  /// Region objective achieved by the root merge (the mapping's MCL under
  /// the oblivious model, at node-cluster granularity).
  double rootObjective = 0;
  /// Volume absorbed inside nodes by the concentration clustering.
  Volume intraNodeVolume = 0;
  Volume interNodeVolume = 0;
  /// Per-phase incumbent quality, in pipeline order (cluster, pin, merge,
  /// refine — refine only when final refinement ran). Mirrored into the
  /// trace as "rahtm.quality" instant events and into the metrics registry
  /// as "rahtm.quality.<phase>.{mcl,hop_bytes}" gauges.
  std::vector<PhaseQuality> phaseQuality;
};

class RahtmMapper final : public TaskMapper {
 public:
  explicit RahtmMapper(RahtmConfig config = {});

  /// Map using the configured logical grid (or a 1D grid when unset).
  Mapping map(const CommGraph& graph, const Torus& topo,
              int concentration) override;

  /// Convenience: pull the logical grid from the workload, then map its
  /// communication graph.
  Mapping mapWorkload(const Workload& workload, const Torus& topo,
                      int concentration);

  std::string name() const override { return "RAHTM"; }

  const RahtmStats& stats() const { return stats_; }
  const RahtmConfig& config() const { return config_; }
  RahtmConfig& config() { return config_; }

 private:
  RahtmConfig config_;
  RahtmStats stats_;
};

}  // namespace rahtm
