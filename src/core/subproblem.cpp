#include "core/subproblem.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/milp_mapper.hpp"
#include "graph/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/evaluator.hpp"
#include "routing/oblivious.hpp"

namespace rahtm {

double evalPlacement(const CommGraph& g, const Torus& cube,
                     const std::vector<NodeId>& vertexOf, MapObjective obj) {
  if (obj == MapObjective::Mcl) {
    return placementMcl(cube, g, vertexOf);
  }
  return hopBytes(g, cube, vertexOf);
}

SubproblemSolution exhaustiveSearch(const CommGraph& g, const Torus& cube,
                                    MapObjective obj) {
  const auto verts = static_cast<std::size_t>(g.numRanks());
  const auto nodes = static_cast<std::size_t>(cube.numNodes());
  RAHTM_REQUIRE(verts <= nodes, "exhaustiveSearch: graph larger than cube");
  RAHTM_REQUIRE(nodes <= 9, "exhaustiveSearch: cube too large (max 9 nodes)");

  std::vector<NodeId> nodesPerm(nodes);
  std::iota(nodesPerm.begin(), nodesPerm.end(), 0);

  SubproblemSolution best;
  best.method = "exhaustive";
  best.objective = std::numeric_limits<double>::infinity();
  MclEvaluator evaluator(cube);
  std::vector<NodeId> placement(verts);
  do {
    // Vertex v sits at nodesPerm[v]; extra nodes stay empty.
    std::copy(nodesPerm.begin(), nodesPerm.begin() + static_cast<long>(verts),
              placement.begin());
    const double val = obj == MapObjective::Mcl
                           ? evaluator.mcl(g, placement)
                           : evaluator.hopBytesOf(g, placement);
    if (val < best.objective) {
      best.objective = val;
      best.vertexOf = placement;
    }
    ++best.iterations;
  } while (std::next_permutation(nodesPerm.begin(), nodesPerm.end()));
  return best;
}

namespace {

/// Incremental-evaluation annealing state: full channel-load map plus the
/// objective, with swap moves re-accumulating only the flows that touch the
/// two swapped vertices.
class AnnealState {
 public:
  AnnealState(const CommGraph& g, const Torus& cube, MclEvaluator& evaluator,
              std::vector<NodeId> placement, MapObjective obj)
      : g_(g),
        evaluator_(&evaluator),
        placement_(std::move(placement)),
        obj_(obj) {
    objective_ = eval();
  }

  double objective() const { return objective_; }
  const std::vector<NodeId>& placement() const { return placement_; }

  /// Objective after swapping the nodes of vertices a and b (or moving a to
  /// an empty node when b == -1 is not supported here: the pipeline always
  /// has as many vertices as nodes).
  double trySwap(RankId a, RankId b) {
    std::swap(placement_[static_cast<std::size_t>(a)],
              placement_[static_cast<std::size_t>(b)]);
    const double val = eval();
    std::swap(placement_[static_cast<std::size_t>(a)],
              placement_[static_cast<std::size_t>(b)]);
    return val;
  }

  void commitSwap(RankId a, RankId b, double newObjective) {
    std::swap(placement_[static_cast<std::size_t>(a)],
              placement_[static_cast<std::size_t>(b)]);
    objective_ = newObjective;
  }

 private:
  double eval() {
    return obj_ == MapObjective::Mcl ? evaluator_->mcl(g_, placement_)
                                     : evaluator_->hopBytesOf(g_, placement_);
  }

  const CommGraph& g_;
  MclEvaluator* evaluator_;
  std::vector<NodeId> placement_;
  MapObjective obj_;
  double objective_ = 0;
};

}  // namespace

SubproblemSolution annealSearch(const CommGraph& g, const Torus& cube,
                                const SubproblemConfig& cfg) {
  const auto verts = static_cast<std::size_t>(g.numRanks());
  RAHTM_REQUIRE(verts >= 1, "annealSearch: empty graph");
  RAHTM_REQUIRE(verts <= static_cast<std::size_t>(cube.numNodes()),
                "annealSearch: graph larger than cube");

  Rng master(cfg.seed);
  MclEvaluator evaluator(cube);
  SubproblemSolution best;
  best.method = "anneal";
  best.objective = std::numeric_limits<double>::infinity();

  for (int restart = 0; restart < std::max(1, cfg.annealRestarts); ++restart) {
    Rng rng = master.split();
    // Random initial placement over all cube nodes.
    std::vector<NodeId> nodesPerm(static_cast<std::size_t>(cube.numNodes()));
    std::iota(nodesPerm.begin(), nodesPerm.end(), 0);
    rng.shuffle(nodesPerm);
    std::vector<NodeId> placement(nodesPerm.begin(),
                                  nodesPerm.begin() + static_cast<long>(verts));
    AnnealState state(g, cube, evaluator, std::move(placement), cfg.objective);

    double bestLocal = state.objective();
    std::vector<NodeId> bestLocalPlacement = state.placement();

    // Geometric cooling sized to the initial objective scale.
    double temp = std::max(1e-9, state.objective() * 0.25);
    const double cooling =
        std::pow(1e-4, 1.0 / static_cast<double>(std::max<long>(1, cfg.annealIters)));
    for (long it = 0; it < cfg.annealIters; ++it) {
      const auto a = static_cast<RankId>(rng.nextBounded(verts));
      auto b = static_cast<RankId>(rng.nextBounded(verts));
      if (a == b) continue;
      ++best.iterations;
      const double cand = state.trySwap(a, b);
      const double delta = cand - state.objective();
      if (delta <= 0 || rng.nextDouble() < std::exp(-delta / temp)) {
        state.commitSwap(a, b, cand);
        if (state.objective() < bestLocal) {
          bestLocal = state.objective();
          bestLocalPlacement = state.placement();
        }
      }
      temp *= cooling;
    }
    if (bestLocal < best.objective) {
      best.objective = bestLocal;
      best.vertexOf = bestLocalPlacement;
    }
  }
  return best;
}

namespace {

/// Portfolio dispatch body (wrapped by solveSubproblem for telemetry).
SubproblemSolution dispatchSubproblem(const CommGraph& g, const Torus& cube,
                                      const SubproblemConfig& cfg) {
  const std::int64_t nodes = cube.numNodes();
  if (nodes <= cfg.milpMaxVerts && cfg.objective == MapObjective::Mcl) {
    MilpMapOptions opts;
    opts.timeLimitSec = cfg.milpTimeLimitSec;
    opts.maxNodes = cfg.milpMaxNodes;
    const MilpMapResult r = milpMapToCube(g, cube, opts);
    if (r.solved) {
      SubproblemSolution s;
      s.vertexOf = r.vertexOf;
      s.method = "milp";
      s.iterations = r.nodesExplored;
      // Report the objective under the pipeline's common (oblivious) metric
      // so values are comparable across methods.
      s.objective = evalPlacement(g, cube, r.vertexOf, cfg.objective);
      return s;
    }
    RAHTM_LOG(Warn) << "MILP subproblem fell through (" << r.statusString
                    << "); falling back";
  }
  if (nodes <= cfg.exhaustiveMaxVerts) {
    return exhaustiveSearch(g, cube, cfg.objective);
  }
  return annealSearch(g, cube, cfg);
}

}  // namespace

SubproblemSolution solveSubproblem(const CommGraph& g, const Torus& cube,
                                   const SubproblemConfig& cfg) {
  obs::ScopedSpan span(obs::tracer(), "rahtm.subproblem", "rahtm");
  span.attr("verts", static_cast<std::int64_t>(g.numRanks()));
  span.attr("cube_nodes", cube.numNodes());
  SubproblemSolution s = dispatchSubproblem(g, cube, cfg);
  span.attr("method", s.method);
  span.attr("iterations", static_cast<std::int64_t>(s.iterations));
  span.attr("objective", s.objective);
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->counter("rahtm.subproblems").add(1);
    reg->counter("rahtm.subproblem.method." + s.method).add(1);
  }
  return s;
}

}  // namespace rahtm
