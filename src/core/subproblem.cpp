#include "core/subproblem.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/milp_mapper.hpp"
#include "exec/thread_pool.hpp"
#include "graph/stats.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heartbeat.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/delta_eval.hpp"
#include "routing/evaluator.hpp"
#include "routing/oblivious.hpp"
#include "routing/route_cache.hpp"

namespace rahtm {

double evalPlacement(const CommGraph& g, const Torus& cube,
                     const std::vector<NodeId>& vertexOf, MapObjective obj) {
  if (obj == MapObjective::Mcl) {
    return placementMcl(cube, g, vertexOf);
  }
  return hopBytes(g, cube, vertexOf);
}

SubproblemSolution exhaustiveSearch(const CommGraph& g, const Torus& cube,
                                    MapObjective obj) {
  const auto verts = static_cast<std::size_t>(g.numRanks());
  const auto nodes = static_cast<std::size_t>(cube.numNodes());
  RAHTM_REQUIRE(verts <= nodes, "exhaustiveSearch: graph larger than cube");
  RAHTM_REQUIRE(nodes <= static_cast<std::size_t>(kExhaustiveNodeCap),
                "exhaustiveSearch: cube too large (max 9 nodes)");

  std::vector<NodeId> nodesPerm(nodes);
  std::iota(nodesPerm.begin(), nodesPerm.end(), 0);

  SubproblemSolution best;
  best.method = "exhaustive";
  best.objective = std::numeric_limits<double>::infinity();
  MclEvaluator evaluator(cube);
  std::vector<NodeId> placement(verts);
  do {
    // Vertex v sits at nodesPerm[v]; extra nodes stay empty.
    std::copy(nodesPerm.begin(), nodesPerm.begin() + static_cast<long>(verts),
              placement.begin());
    const double val = obj == MapObjective::Mcl
                           ? evaluator.mcl(g, placement)
                           : evaluator.hopBytesOf(g, placement);
    if (val < best.objective) {
      best.objective = val;
      best.vertexOf = placement;
    }
    ++best.iterations;
  } while (std::next_permutation(nodesPerm.begin(), nodesPerm.end()));
  return best;
}

SubproblemSolution annealSearch(const CommGraph& g, const Torus& cube,
                                const SubproblemConfig& cfg,
                                exec::ThreadPool* pool) {
  const auto verts = static_cast<std::size_t>(g.numRanks());
  const auto nodes = static_cast<std::size_t>(cube.numNodes());
  RAHTM_REQUIRE(verts >= 1, "annealSearch: empty graph");
  RAHTM_REQUIRE(verts <= nodes, "annealSearch: graph larger than cube");

  // Pre-split one RNG stream per restart (Rng::split() == Rng(next())), so
  // the streams are the same whether restarts run serially or on the pool.
  const int restarts = std::max(1, cfg.annealRestarts);
  Rng master(cfg.seed);
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(restarts));
  for (auto& s : seeds) s = master.next();

  // Subproblem cubes are small enough to enumerate every (src,dst) route up
  // front; the complete table is immutable and shared read-only by all
  // restarts (and pool workers). Hop-bytes needs no routes at all.
  DeltaEvalConfig ecfg;
  ecfg.trackLoads = cfg.objective == MapObjective::Mcl;
  ecfg.trackHopBytes = cfg.objective == MapObjective::HopBytes;
  std::shared_ptr<const RouteTable> routes;
  if (ecfg.trackLoads && RouteTable::fullBuildFeasible(cube)) {
    if (cfg.routeCache != nullptr) {
      // Dense tier: memoized across the sibling solves of a pin wave (and
      // streamed out by the pipeline once the wave's level completes).
      routes = cfg.routeCache->denseTier(cube);
    } else {
      routes = cfg.artifacts != nullptr ? cfg.artifacts->routeTable(cube)
                                        : RouteTable::buildFull(cube);
    }
  }
  // One incidence for all restarts (content-deterministic, so sharing keeps
  // results bit-identical to per-restart builds).
  const std::shared_ptr<const FlowIncidence> incidence =
      cfg.artifacts != nullptr
          ? cfg.artifacts->flowIncidence(g)
          : std::make_shared<const FlowIncidence>(buildFlowIncidence(g));

  struct RestartResult {
    double objective = std::numeric_limits<double>::infinity();
    std::vector<NodeId> placement;
    long iterations = 0;
    std::uint64_t probes = 0;
    std::uint64_t commits = 0;
  };
  std::vector<RestartResult> results(static_cast<std::size_t>(restarts));

  const auto runRestart = [&](std::size_t restart) {
    Rng rng(seeds[restart]);
    // Random initial placement over all cube nodes; the tail of the
    // permutation is the (possibly empty) set of unoccupied nodes.
    std::vector<NodeId> nodesPerm(nodes);
    std::iota(nodesPerm.begin(), nodesPerm.end(), 0);
    rng.shuffle(nodesPerm);
    std::vector<NodeId> placement(nodesPerm.begin(),
                                  nodesPerm.begin() + static_cast<long>(verts));
    std::vector<NodeId> empty(nodesPerm.begin() + static_cast<long>(verts),
                              nodesPerm.end());
    DeltaPlacementEval state(cube, g, std::move(placement), ecfg, routes,
                             incidence);
    const auto curObj = [&] {
      return ecfg.trackLoads ? state.mcl() : state.hopBytes();
    };

    RestartResult& out = results[restart];
    out.objective = curObj();
    out.placement = state.placement();
    obs::FlightRecorder::instance().record(
        obs::FrEvent::AnnealRestart, static_cast<std::int64_t>(restart),
        static_cast<std::int64_t>(verts));

    // Move targets: another occupied slot (swap) or an empty node
    // (relocation). With a single node there is no move at all.
    const std::size_t slots = verts + empty.size();
    if (slots < 2) return;

    // Geometric cooling sized to the initial objective scale.
    double temp = std::max(1e-9, curObj() * 0.25);
    const double cooling = std::pow(
        1e-4, 1.0 / static_cast<double>(std::max<long>(1, cfg.annealIters)));
    for (long it = 0; it < cfg.annealIters; ++it) {
      // Batched liveness: one striped fetch_add per 64 iterations keeps the
      // hottest loop in the codebase inside the <=2% forensics budget.
      if ((it & 63) == 0) {
        obs::Heartbeats::instance().beat(obs::Pulse::AnnealIterations, 64);
        if ((it & 8191) == 0) {
          obs::FlightRecorder::instance().record(
              obs::FrEvent::AnnealEpoch, static_cast<std::int64_t>(restart),
              it);
        }
      }
      const auto a = static_cast<RankId>(rng.nextBounded(verts));
      // Resample the target on collision: a `continue` here would skip the
      // temp update below and make the effective cooling-schedule length
      // vary with the collision count.
      auto t = static_cast<std::size_t>(rng.nextBounded(slots));
      while (t == static_cast<std::size_t>(a)) {
        t = static_cast<std::size_t>(rng.nextBounded(slots));
      }
      ++out.iterations;
      const bool relocate = t >= verts;
      const DeltaPlacementEval::Summary& s =
          relocate ? state.probeMove(a, empty[t - verts])
                   : state.probeSwap(a, static_cast<RankId>(t));
      const double cand = ecfg.trackLoads ? s.mcl : s.hopBytes;
      const double delta = cand - curObj();
      // Objective-neutral moves evaluate to exactly 0 under a from-scratch
      // evaluator but to +-ulps under incremental tracking; real uphill
      // steps are whole route-fraction quanta. Treat the residue band as
      // "not uphill" so a neutral move is accepted without consuming an RNG
      // draw — otherwise the acceptance stream would be resampled on noise.
      const double tie = 1e-9 * std::max(1.0, curObj());
      if (delta <= tie || rng.nextDouble() < std::exp(-delta / temp)) {
        if (relocate) {
          const NodeId vacated = state.placement()[static_cast<std::size_t>(a)];
          state.commit();
          empty[t - verts] = vacated;
        } else {
          state.commit();
        }
        if (curObj() < out.objective) {
          out.objective = curObj();
          out.placement = state.placement();
        }
      }
      temp *= cooling;
    }
    out.probes = state.probes();
    out.commits = state.commits();
    // Report the best placement under a from-scratch evaluation: the
    // incrementally tracked objective can drift from the exact value by a
    // few ulps over a long move sequence.
    out.objective = evalPlacement(g, cube, out.placement, cfg.objective);
  };

  if (pool != nullptr) {
    pool->parallelFor(static_cast<std::size_t>(restarts), runRestart);
  } else {
    for (std::size_t r = 0; r < static_cast<std::size_t>(restarts); ++r) {
      runRestart(r);
    }
  }

  // Reduce in restart order (strict improvement), matching the serial loop.
  SubproblemSolution best;
  best.method = "anneal";
  best.objective = std::numeric_limits<double>::infinity();
  for (const RestartResult& r : results) {
    best.iterations += r.iterations;
    best.probes += r.probes;
    best.commits += r.commits;
    if (r.objective < best.objective) {
      best.objective = r.objective;
      best.vertexOf = r.placement;
    }
  }
  return best;
}

namespace {

/// Portfolio dispatch body (wrapped by solveSubproblem for telemetry).
SubproblemSolution dispatchSubproblem(const CommGraph& g, const Torus& cube,
                                      const SubproblemConfig& cfg,
                                      exec::ThreadPool* pool) {
  const std::int64_t nodes = cube.numNodes();
  obs::FlightRecorder::instance().record(
      obs::FrEvent::SubproblemDispatch,
      static_cast<std::int64_t>(g.numRanks()), nodes);
  if (nodes <= cfg.milpMaxVerts && cfg.objective == MapObjective::Mcl) {
    MilpMapOptions opts;
    opts.timeLimitSec = cfg.milpTimeLimitSec;
    opts.maxNodes = cfg.milpMaxNodes;
    const MilpMapResult r = milpMapToCube(g, cube, opts);
    if (r.solved) {
      SubproblemSolution s;
      s.vertexOf = r.vertexOf;
      s.method = "milp";
      s.iterations = r.nodesExplored;
      // Report the objective under the pipeline's common (oblivious) metric
      // so values are comparable across methods.
      s.objective = evalPlacement(g, cube, r.vertexOf, cfg.objective);
      return s;
    }
    RAHTM_LOG(Warn) << "MILP subproblem fell through (" << r.statusString
                    << "); falling back";
  }
  // Clamp the exhaustive window to what exhaustiveSearch can feasibly
  // enumerate: a raised exhaustiveMaxVerts must degrade to annealing, not
  // abort the whole pipeline mid-run on the solver's size check.
  std::int64_t exhaustiveCap = cfg.exhaustiveMaxVerts;
  if (exhaustiveCap > kExhaustiveNodeCap) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      RAHTM_LOG(Warn) << "exhaustiveMaxVerts=" << cfg.exhaustiveMaxVerts
                      << " exceeds the exhaustive-search cap of "
                      << kExhaustiveNodeCap
                      << " nodes; clamping (larger cubes anneal)";
    }
    exhaustiveCap = kExhaustiveNodeCap;
  }
  if (nodes <= exhaustiveCap) {
    return exhaustiveSearch(g, cube, cfg.objective);
  }
  return annealSearch(g, cube, cfg, pool);
}

}  // namespace

SubproblemSolution solveSubproblem(const CommGraph& g, const Torus& cube,
                                   const SubproblemConfig& cfg,
                                   exec::ThreadPool* pool) {
  obs::ScopedSpan span(obs::tracer(), "rahtm.subproblem", "rahtm");
  span.attr("verts", static_cast<std::int64_t>(g.numRanks()));
  span.attr("cube_nodes", cube.numNodes());
  SubproblemSolution s = dispatchSubproblem(g, cube, cfg, pool);
  span.attr("method", s.method);
  span.attr("iterations", static_cast<std::int64_t>(s.iterations));
  span.attr("objective", s.objective);
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->counter("rahtm.subproblems").add(1);
    reg->counter("rahtm.subproblem.method." + s.method).add(1);
    if (s.probes != 0) {
      reg->counter("rahtm.anneal.probes")
          .add(static_cast<std::int64_t>(s.probes));
      reg->counter("rahtm.anneal.commits")
          .add(static_cast<std::int64_t>(s.commits));
    }
  }
  return s;
}

}  // namespace rahtm
