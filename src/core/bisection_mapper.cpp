#include "core/bisection_mapper.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "core/clustering.hpp"
#include "topology/subcube.hpp"

namespace rahtm {

namespace {

/// Balanced min-cut bisection of the sub-graph induced by \p verts, by a
/// Kernighan–Lin swap refinement over an initial half/half split.
/// Returns the vertex sets of the two halves (equal sizes; |verts| even).
std::pair<std::vector<std::size_t>, std::vector<std::size_t>> klBisect(
    const std::vector<std::size_t>& verts,
    const std::vector<std::vector<std::pair<std::size_t, double>>>& adj,
    int passes, Rng& rng) {
  const std::size_t n = verts.size();
  RAHTM_REQUIRE(n % 2 == 0, "klBisect: odd vertex count");

  // side[local index] in {0,1}; start from a random balanced split.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<int> side(n, 0);
  for (std::size_t i = n / 2; i < n; ++i) side[order[i]] = 1;

  // Local index of each global vertex (SIZE_MAX if outside this region).
  std::vector<std::size_t> local;
  std::size_t maxVert = 0;
  for (const std::size_t v : verts) maxVert = std::max(maxVert, v);
  local.assign(maxVert + 1, SIZE_MAX);
  for (std::size_t i = 0; i < n; ++i) local[verts[i]] = i;

  // externalCost[i] - internalCost[i] = gain of moving i across.
  const auto gainOf = [&](std::size_t i) {
    double internal = 0, external = 0;
    for (const auto& [peer, w] : adj[verts[i]]) {
      if (peer >= local.size() || local[peer] == SIZE_MAX) continue;
      (side[local[peer]] == side[i] ? internal : external) += w;
    }
    return external - internal;
  };

  for (int pass = 0; pass < passes; ++pass) {
    // Greedy KL pass: repeatedly take the best positive-gain swap.
    bool improved = false;
    for (std::size_t a = 0; a < n; ++a) {
      if (side[a] != 0) continue;
      for (std::size_t b = 0; b < n; ++b) {
        if (side[b] != 1) continue;
        // Swap gain = gain(a) + gain(b) - 2*w(a,b).
        double wab = 0;
        for (const auto& [peer, w] : adj[verts[a]]) {
          if (peer == verts[b]) wab += w;
        }
        const double gain = gainOf(a) + gainOf(b) - 2 * wab;
        if (gain > 1e-12) {
          side[a] = 1;
          side[b] = 0;
          improved = true;
          break;  // sides changed; restart b-scan with fresh gains
        }
      }
    }
    if (!improved) break;
  }

  std::pair<std::vector<std::size_t>, std::vector<std::size_t>> out;
  for (std::size_t i = 0; i < n; ++i) {
    (side[i] == 0 ? out.first : out.second).push_back(verts[i]);
  }
  return out;
}

}  // namespace

RecursiveBisectionMapper::RecursiveBisectionMapper(BisectionConfig config)
    : config_(std::move(config)) {}

Mapping RecursiveBisectionMapper::map(const CommGraph& graph,
                                      const Torus& topo, int concentration) {
  const RankId ranks = graph.numRanks();
  RAHTM_REQUIRE(ranks == topo.numNodes() * concentration,
                "RecursiveBisectionMapper: ranks != nodes * concentration");
  for (std::size_t d = 0; d < topo.ndims(); ++d) {
    RAHTM_REQUIRE(isPowerOfTwo(topo.extent(d)),
                  "RecursiveBisectionMapper: extents must be powers of two");
  }

  Shape grid = config_.logicalGrid;
  if (grid.empty()) grid = Shape{static_cast<std::int32_t>(ranks)};
  const TilingResult tiling = bestTiling(graph, grid, concentration);
  const CommGraph& g = tiling.coarseGraph;
  const auto n = static_cast<std::size_t>(g.numRanks());

  std::vector<std::vector<std::pair<std::size_t, double>>> adj(n);
  for (const Flow& f : g.undirectedFlows()) {
    adj[static_cast<std::size_t>(f.src)].push_back(
        {static_cast<std::size_t>(f.dst), f.bytes});
    adj[static_cast<std::size_t>(f.dst)].push_back(
        {static_cast<std::size_t>(f.src), f.bytes});
  }

  Rng rng(config_.seed);
  std::vector<NodeId> place(n, kInvalidNode);

  // Recursive lock-step bisection of (machine block, cluster set).
  struct Frame {
    Coord origin;
    Shape extent;
    std::vector<std::size_t> verts;
  };
  std::vector<Frame> stack;
  {
    Frame root;
    root.origin = Coord(topo.ndims(), 0);
    root.extent = topo.shape();
    root.verts.resize(n);
    std::iota(root.verts.begin(), root.verts.end(), 0);
    stack.push_back(std::move(root));
  }
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    std::int64_t cells = 1;
    for (std::size_t d = 0; d < f.extent.size(); ++d) cells *= f.extent[d];
    RAHTM_REQUIRE(cells == static_cast<std::int64_t>(f.verts.size()),
                  "bisection: block/cluster count mismatch");
    if (cells == 1) {
      place[f.verts[0]] =
          topo.nodeId(f.origin);
      continue;
    }
    // Split along the largest remaining dimension.
    std::size_t dim = 0;
    for (std::size_t d = 1; d < f.extent.size(); ++d) {
      if (f.extent[d] > f.extent[dim]) dim = d;
    }
    auto halves = klBisect(f.verts, adj, config_.klPasses, rng);

    Frame lo, hi;
    lo.extent = hi.extent = f.extent;
    lo.extent[dim] /= 2;
    hi.extent[dim] /= 2;
    lo.origin = f.origin;
    hi.origin = f.origin;
    hi.origin[dim] += lo.extent[dim];
    lo.verts = std::move(halves.first);
    hi.verts = std::move(halves.second);
    stack.push_back(std::move(lo));
    stack.push_back(std::move(hi));
  }

  Mapping m(ranks);
  std::vector<int> nextSlot(static_cast<std::size_t>(topo.numNodes()), 0);
  for (RankId r = 0; r < ranks; ++r) {
    const auto cluster =
        static_cast<std::size_t>(tiling.clusterOf[static_cast<std::size_t>(r)]);
    const NodeId node = place[cluster];
    m.assign(r, node, nextSlot[static_cast<std::size_t>(node)]++);
  }
  return m;
}

}  // namespace rahtm
