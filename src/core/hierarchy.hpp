#pragma once
/// \file hierarchy.hpp
/// The machine-side hierarchy (§III-B): recursive halving of the torus into
/// nested 2-ary d-cubes.
///
/// At every depth, each block splits in half along every dimension whose
/// extent is still > 1, so a block's children always form a 2-ary d-cube
/// (d = number of live dimensions at that depth). This generalizes the
/// paper's uniform k-ary n-torus requirement to mixed power-of-two extents:
/// the BG/Q 4x4x4x4x2 partition needs no special-case pre-partitioning —
/// its first level is a 2-ary 5-cube and its second a 2-ary 4-cube.

#include <vector>

#include "topology/subcube.hpp"
#include "topology/torus.hpp"

namespace rahtm {

class MachineHierarchy {
 public:
  /// Requires every extent of \p topo to be a power of two.
  /// The topology is stored by value, so temporaries are safe to pass.
  explicit MachineHierarchy(const Torus& topo);

  const Torus& machine() const { return topo_; }

  /// Number of levels (root split = level 0; deepest split = depth()-1).
  int depth() const { return static_cast<int>(childGrids_.size()); }

  /// Shape of one block at the given depth (0 = whole machine; depth() =
  /// a single node).
  const Shape& blockShape(int level) const;

  /// Per-dimension split factor (1 or 2) applied at \p level.
  const Shape& childGrid(int level) const;

  /// Children per block at \p level (== product of childGrid entries).
  std::int64_t childCount(int level) const;

  /// The topology the contracted cluster graph sees at \p level: a 2-ary
  /// d-cube, with wraparound in the dimensions where the split spans a
  /// wrapped machine dimension (only possible at the root level — the
  /// paper's "2-ary n-torus == 2-ary n-mesh with double-wide links" case).
  Torus clusterTopology(int level) const;

  /// Child-count list ordered deepest level first, as consumed by
  /// buildClusterTree().
  std::vector<std::int64_t> childCountsDeepestFirst() const;

  /// The subcube of a child at local grid position \p childPos within a
  /// parent block anchored at \p parentOrigin at \p level.
  SubcubeView childBlock(int level, const Coord& parentOrigin,
                         const Coord& childPos) const;

 private:
  Torus topo_;
  std::vector<Shape> blockShapes_;  // size depth()+1
  std::vector<Shape> childGrids_;   // size depth()
};

}  // namespace rahtm
