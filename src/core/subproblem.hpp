#pragma once
/// \file subproblem.hpp
/// Solvers for the small cluster-to-cube mapping subproblems of phase 2
/// (§III-C). The paper uses CPLEX on the Table II MILP for every level;
/// this portfolio applies the exact MILP where it is fast, an exhaustive
/// permutation search (also exact, under the oblivious evaluation metric)
/// for mid-sized cubes, and multi-restart simulated annealing beyond that.
/// The thresholds are configurable so studies can force one method.

#include <memory>
#include <string>
#include <vector>

#include "graph/comm_graph.hpp"
#include "topology/torus.hpp"

namespace rahtm {

namespace exec {
class ThreadPool;
}

class ArtifactSource;     // routing/delta_eval.hpp
class TieredRouteCache;   // routing/route_cache.hpp

/// Hard feasibility cap for exhaustiveSearch: 9! = 362880 placements.
/// dispatchSubproblem clamps SubproblemConfig::exhaustiveMaxVerts to this
/// (with a warning) instead of letting a mid-pipeline solve abort.
inline constexpr std::int64_t kExhaustiveNodeCap = 9;

/// Mapping objective. The paper argues MCL is the right metric under
/// adaptive routing (§III-A, Fig. 1); hop-bytes is kept as the
/// routing-unaware ablation.
enum class MapObjective { Mcl, HopBytes };

struct SubproblemConfig {
  int milpMaxVerts = 4;        ///< exact Table II MILP up to this many nodes
  int exhaustiveMaxVerts = 8;  ///< exhaustive permutations up to this
  /// MILP budgets. Symmetric cluster graphs (uniform volumes) have weak LP
  /// bounds, so proofs can take long; budget exhaustion returns the best
  /// incumbent (warm-started, never worse than greedy + DOR routing).
  double milpTimeLimitSec = 5.0;
  long milpMaxNodes = 20000;
  int annealRestarts = 6;
  long annealIters = 20000;
  std::uint64_t seed = 0x5eed;
  MapObjective objective = MapObjective::Mcl;
  /// Optional provider of shared route tables / flow incidences (non-owning;
  /// must outlive the solve). Null = build artifacts locally. Shared
  /// artifacts are content-identical to locally built ones, so results stay
  /// bit-identical either way.
  ArtifactSource* artifacts = nullptr;
  /// Optional tiered route cache. When set, dense per-cube tables come from
  /// its dense tier (memoized across sibling waves; streamed out by the
  /// pipeline between levels) instead of a fresh buildFull per solve.
  /// Content-identical, so results stay bit-identical either way.
  std::shared_ptr<TieredRouteCache> routeCache;
};

struct SubproblemSolution {
  std::vector<NodeId> vertexOf;  ///< graph vertex -> cube node
  double objective = 0;          ///< achieved objective value
  std::string method;            ///< "milp" / "exhaustive" / "anneal"
  /// Method-specific work count (telemetry): B&B nodes for "milp",
  /// placements evaluated for "exhaustive", proposed moves for "anneal".
  long iterations = 0;
  /// Delta-engine telemetry ("anneal" only): candidate moves evaluated and
  /// moves committed across all restarts.
  std::uint64_t probes = 0;
  std::uint64_t commits = 0;
};

/// Objective value of a placement under the oblivious uniform-minimal model
/// (or hop-bytes for the ablation).
double evalPlacement(const CommGraph& g, const Torus& cube,
                     const std::vector<NodeId>& vertexOf, MapObjective obj);

/// Exact search over all one-to-one placements. Throws beyond
/// kExhaustiveNodeCap nodes; the portfolio clamps instead of calling it.
SubproblemSolution exhaustiveSearch(const CommGraph& g, const Torus& cube,
                                    MapObjective obj);

/// Multi-restart simulated annealing over placements. Moves are pairwise
/// swaps plus, on partially-filled cubes, vertex-to-empty-node relocations
/// (without them the nodes left out of the initial random prefix would be
/// unreachable for the whole search). Restart RNG streams are pre-split by
/// restart index, so when \p pool is given the restarts run in parallel
/// with bit-identical results to the serial order.
SubproblemSolution annealSearch(const CommGraph& g, const Torus& cube,
                                const SubproblemConfig& cfg,
                                exec::ThreadPool* pool = nullptr);

/// Portfolio dispatch by cube size (MILP -> exhaustive -> annealing).
/// \p pool, when non-null, parallelizes annealing restarts.
SubproblemSolution solveSubproblem(const CommGraph& g, const Torus& cube,
                                   const SubproblemConfig& cfg,
                                   exec::ThreadPool* pool = nullptr);

}  // namespace rahtm
