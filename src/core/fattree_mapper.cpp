#include "core/fattree_mapper.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/clustering.hpp"

namespace rahtm {

double fatTreeMcl(const FatTree& tree, const CommGraph& graph,
                  const std::vector<NodeId>& nodeOfVertex) {
  RAHTM_REQUIRE(
      nodeOfVertex.size() >= static_cast<std::size_t>(graph.numRanks()),
      "fatTreeMcl: placement too small");
  FatTreeLoads loads(tree);
  for (const Flow& f : graph.flows()) {
    loads.addFlow(nodeOfVertex[static_cast<std::size_t>(f.src)],
                  nodeOfVertex[static_cast<std::size_t>(f.dst)], f.bytes);
  }
  return loads.maxLinkLoad();
}

std::vector<NodeId> mapToFatTree(const CommGraph& graph, const FatTree& tree,
                                 int concentration,
                                 const Shape& logicalGrid) {
  const RankId ranks = graph.numRanks();
  RAHTM_REQUIRE(ranks == tree.numNodes() * concentration,
                "mapToFatTree: ranks != nodes * concentration");

  Shape grid = logicalGrid;
  if (grid.empty()) grid = Shape{static_cast<std::int32_t>(ranks)};

  // The tree's hierarchy, deepest level first: leaf grouping first.
  std::vector<std::int64_t> childCounts;
  for (int level = 0; level < tree.levels(); ++level) {
    childCounts.push_back(tree.downArity(level));
  }
  const ClusterTree ct =
      buildClusterTree(graph, grid, concentration, childCounts);

  // Node of each node-level cluster: the cluster tree's tilings are grid
  // tilings, so composing the per-level tile positions yields a canonical
  // depth-first numbering. Because every group of a fat-tree level is
  // symmetric, assigning sibling clusters to sibling groups in tile order
  // is optimal given the clustering: only *which* clusters share a group
  // matters, and that is what the tile search minimized.
  //
  // Build the assignment by sorting node-level clusters by their ancestor
  // path (root tile position, ..., leaf tile position).
  const auto numClusters =
      static_cast<std::size_t>(ct.concentration.coarseGraph.numRanks());
  std::vector<std::vector<ClusterId>> pathOf(numClusters);
  for (std::size_t c = 0; c < numClusters; ++c) {
    ClusterId cur = static_cast<ClusterId>(c);
    std::vector<ClusterId> path;
    for (const TilingResult& level : ct.levels) {
      path.push_back(cur);
      cur = level.clusterOf[static_cast<std::size_t>(cur)];
    }
    // path[k] = this cluster's ancestor id at depth k (path[0] = itself);
    // comparing from the back sorts ancestor-major, keeping siblings on
    // contiguous — hence co-grouped — node ranges at every level.
    pathOf[c] = std::move(path);
  }
  std::vector<std::size_t> order(numClusters);
  for (std::size_t i = 0; i < numClusters; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& pa = pathOf[a];
    const auto& pb = pathOf[b];
    for (std::size_t k = pa.size(); k-- > 0;) {
      if (pa[k] != pb[k]) return pa[k] < pb[k];
    }
    return a < b;
  });

  std::vector<NodeId> nodeOfCluster(numClusters);
  for (std::size_t i = 0; i < numClusters; ++i) {
    nodeOfCluster[order[i]] = static_cast<NodeId>(i);
  }

  std::vector<NodeId> nodeOfRank(static_cast<std::size_t>(ranks));
  for (RankId r = 0; r < ranks; ++r) {
    nodeOfRank[static_cast<std::size_t>(r)] = nodeOfCluster[static_cast<
        std::size_t>(ct.concentration.clusterOf[static_cast<std::size_t>(r)])];
  }
  return nodeOfRank;
}

std::vector<NodeId> linearFatTreeMapping(RankId ranks, int concentration) {
  std::vector<NodeId> out(static_cast<std::size_t>(ranks));
  for (RankId r = 0; r < ranks; ++r) {
    out[static_cast<std::size_t>(r)] = r / concentration;
  }
  return out;
}

}  // namespace rahtm
