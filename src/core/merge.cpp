#include "core/merge.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/delta_eval.hpp"
#include "routing/route_cache.hpp"
#include "routing/oblivious.hpp"

namespace rahtm {

namespace {

/// Scratch accumulator for candidate evaluation: a dense per-channel delta
/// with a touched list, so clearing costs O(touched).
class LoadDelta {
 public:
  explicit LoadDelta(std::int64_t slots)
      : dense_(static_cast<std::size_t>(slots), 0.0) {}

  void add(ChannelId c, double v) {
    auto& cell = dense_[static_cast<std::size_t>(c)];
    if (cell == 0.0 && v != 0.0) touched_.push_back(c);
    cell += v;
  }
  double at(ChannelId c) const { return dense_[static_cast<std::size_t>(c)]; }
  const std::vector<ChannelId>& touched() const { return touched_; }
  void clear() {
    for (const ChannelId c : touched_) dense_[static_cast<std::size_t>(c)] = 0;
    touched_.clear();
  }

 private:
  std::vector<double> dense_;
  std::vector<ChannelId> touched_;
};

/// A flow restricted to the merge region, in local cluster indices.
struct FlowRef {
  std::size_t a;  ///< local cluster index of src
  std::size_t b;  ///< local cluster index of dst
  double bytes;
};

struct BeamEntry {
  /// Local node of each region cluster (kInvalidNode while unplaced).
  std::vector<NodeId> localNode;
  /// Dense channel loads of all placed flows (Mcl objective only).
  std::vector<double> loads;
  double maxLoad = 0;   ///< objective so far (Mcl) ...
  double hopBytes = 0;  ///< ... or running sum (HopBytes)
  std::vector<Orientation> orientationOfChild;
  std::vector<Coord> slotOfChild;
  SmallVec<std::uint8_t, 64> slotUsed;  ///< per slot id
};

double entryObjective(const BeamEntry& e, MapObjective obj) {
  return obj == MapObjective::Mcl ? e.maxLoad : e.hopBytes;
}

}  // namespace

MergeResult mergeChildren(const Torus& regionTopo, const Shape& childShape,
                          const Shape& childGrid,
                          const std::vector<MergeChild>& children,
                          const CommGraph& clusterGraph,
                          const MergeConfig& cfg) {
  obs::ScopedSpan span(obs::tracer(), "rahtm.merge.region", "rahtm");
  span.attr("children", static_cast<std::int64_t>(children.size()));
  span.attr("beam_width", static_cast<std::int64_t>(cfg.beamWidth));
  std::int64_t candidatesEvaluated = 0;
  RAHTM_REQUIRE(!children.empty(), "mergeChildren: no children");
  RAHTM_REQUIRE(childShape.size() == regionTopo.ndims() &&
                    childGrid.size() == regionTopo.ndims(),
                "mergeChildren: dimension mismatch");
  for (std::size_t d = 0; d < childShape.size(); ++d) {
    RAHTM_REQUIRE(childShape[d] * childGrid[d] == regionTopo.extent(d),
                  "mergeChildren: childShape * childGrid != region extent");
  }
  const Torus slotGrid = Torus::mesh(childGrid);
  RAHTM_REQUIRE(static_cast<std::int64_t>(children.size()) <=
                    slotGrid.numNodes(),
                "mergeChildren: more children than slots");

  // ---- Local cluster indexing -------------------------------------------
  std::unordered_map<ClusterId, std::size_t> localIdx;
  std::vector<ClusterId> regionClusters;
  for (const MergeChild& ch : children) {
    RAHTM_REQUIRE(ch.clusters.size() == ch.localPos.size(),
                  "mergeChildren: clusters/localPos size mismatch");
    for (const ClusterId c : ch.clusters) {
      RAHTM_REQUIRE(localIdx.emplace(c, regionClusters.size()).second,
                    "mergeChildren: cluster appears in two children");
      regionClusters.push_back(c);
    }
  }

  // Flows with both endpoints inside the region, as local indices.
  std::vector<FlowRef> flows;
  for (const Flow& f : clusterGraph.flows()) {
    const auto sa = localIdx.find(f.src);
    const auto sb = localIdx.find(f.dst);
    if (sa == localIdx.end() || sb == localIdx.end()) continue;
    flows.push_back({sa->second, sb->second, f.bytes});
  }
  // Flows grouped by child pair for fast incremental evaluation.
  std::vector<std::size_t> childOfCluster(regionClusters.size());
  std::vector<std::size_t> clusterBase(children.size(), 0);
  {
    std::size_t idx = 0;
    for (std::size_t ci = 0; ci < children.size(); ++ci) {
      clusterBase[ci] = idx;
      for (std::size_t k = 0; k < children[ci].clusters.size(); ++k) {
        childOfCluster[idx++] = ci;
      }
    }
  }
  // flowsTouching.of(ci) = flows with at least one endpoint in child ci.
  const FlowIncidence flowsTouching = FlowIncidence::build(
      flows.size(), children.size(), [&](std::size_t fi) {
        return std::pair<std::size_t, std::size_t>{childOfCluster[flows[fi].a],
                                                   childOfCluster[flows[fi].b]};
      });

  // ---- Orientations ------------------------------------------------------
  std::vector<Orientation> orients = enumerateOrientations(childShape);
  if (static_cast<long>(orients.size()) > cfg.maxOrientations) {
    // Deterministic stride subsample, always keeping the identity.
    std::vector<Orientation> kept;
    const double stride = static_cast<double>(orients.size()) /
                          static_cast<double>(cfg.maxOrientations);
    for (long i = 0; i < cfg.maxOrientations; ++i) {
      kept.push_back(orients[static_cast<std::size_t>(
          static_cast<double>(i) * stride)]);
    }
    orients = std::move(kept);
  }

  // Position of child ci's clusters under (orientation o, slot s).
  const auto placeChild = [&](std::size_t ci, const Orientation& o,
                              const Coord& slot, std::vector<NodeId>& out) {
    const MergeChild& ch = children[ci];
    out.resize(ch.clusters.size());
    Coord origin(childShape.size(), 0);
    for (std::size_t d = 0; d < childShape.size(); ++d) {
      origin[d] = slot[d] * childShape[d];
    }
    for (std::size_t k = 0; k < ch.clusters.size(); ++k) {
      Coord p = o.apply(ch.localPos[k], childShape);
      for (std::size_t d = 0; d < p.size(); ++d) p[d] += origin[d];
      out[k] = regionTopo.nodeId(p);
    }
  };

  // Pin-only placement of child ci: its pin layout (pinPos, falling back to
  // localPos) at its pinned slot, identity orientation.
  const auto placeChildPin = [&](std::size_t ci, std::vector<NodeId>& out) {
    const MergeChild& ch = children[ci];
    const auto& layout = ch.pinPos.empty() ? ch.localPos : ch.pinPos;
    out.resize(ch.clusters.size());
    Coord origin(childShape.size(), 0);
    for (std::size_t d = 0; d < childShape.size(); ++d) {
      origin[d] = ch.slot[d] * childShape[d];
    }
    for (std::size_t k = 0; k < ch.clusters.size(); ++k) {
      Coord p = layout[k];
      for (std::size_t d = 0; d < p.size(); ++d) p[d] += origin[d];
      out[k] = regionTopo.nodeId(p);
    }
  };

  // ---- Merge order: decreasing average pairwise interaction --------------
  // Interaction(i,j): objective of just the i<->j flows with both children
  // at their pinned slots, identity orientation (a cheap proxy for the
  // paper's pairwise-best MCL table).
  std::vector<double> avgInteraction(children.size(), 0.0);
  {
    const Orientation ident = Orientation::identity(childShape.size());
    std::vector<std::vector<NodeId>> identPos(children.size());
    for (std::size_t ci = 0; ci < children.size(); ++ci) {
      placeChild(ci, ident, children[ci].slot, identPos[ci]);
    }
    std::vector<NodeId> clusterNode(regionClusters.size());
    {
      std::size_t idx = 0;
      for (std::size_t ci = 0; ci < children.size(); ++ci) {
        for (const NodeId n : identPos[ci]) clusterNode[idx++] = n;
      }
    }
    std::vector<std::vector<double>> pairVol(
        children.size(), std::vector<double>(children.size(), 0.0));
    for (const FlowRef& f : flows) {
      const std::size_t ca = childOfCluster[f.a];
      const std::size_t cb = childOfCluster[f.b];
      if (ca == cb) continue;
      ChannelLoadMap pairLoads(regionTopo);
      accumulateUniformMinimal(regionTopo,
                               regionTopo.coordOf(clusterNode[f.a]),
                               regionTopo.coordOf(clusterNode[f.b]), f.bytes,
                               pairLoads);
      const double v = cfg.objective == MapObjective::Mcl
                           ? pairLoads.maxLoad()
                           : f.bytes * regionTopo.distance(clusterNode[f.a],
                                                           clusterNode[f.b]);
      pairVol[ca][cb] += v;
      pairVol[cb][ca] += v;
    }
    for (std::size_t ci = 0; ci < children.size(); ++ci) {
      double sum = 0;
      for (std::size_t cj = 0; cj < children.size(); ++cj) {
        sum += pairVol[ci][cj];
      }
      avgInteraction[ci] =
          children.size() > 1
              ? sum / static_cast<double>(children.size() - 1)
              : 0;
    }
  }
  std::vector<std::size_t> order(children.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return avgInteraction[a] > avgInteraction[b];
                   });

  // ---- Beam search --------------------------------------------------------
  const std::size_t slotCount = static_cast<std::size_t>(slotGrid.numNodes());
  const bool useLoads = cfg.objective == MapObjective::Mcl;
  const auto loadSlots = static_cast<std::size_t>(regionTopo.numChannelSlots());

  BeamEntry seed;
  seed.localNode.assign(regionClusters.size(), kInvalidNode);
  if (useLoads) seed.loads.assign(loadSlots, 0.0);
  seed.orientationOfChild.assign(children.size(),
                                 Orientation::identity(childShape.size()));
  seed.slotOfChild.assign(children.size(), Coord(childShape.size(), 0));
  seed.slotUsed.resize(slotCount, 0);
  std::vector<BeamEntry> beam{seed};

  // Anytime guarantee: the lineage that keeps every child at its phase-2
  // pinned slot with identity orientation always survives pruning, so the
  // merge result is never worse than the pseudo-pins it refines.
  std::size_t pinnedLineage = 0;

  LoadDelta delta(regionTopo.numChannelSlots());
  // Flat SoA route cache (shared engine infrastructure); built lazily —
  // one region call is single-threaded. A provider-supplied complete table
  // (cross-request cache) short-circuits the lazy build; route contents are
  // identical either way.
  std::shared_ptr<const RouteTable> sharedRoutes;
  std::shared_ptr<TieredRouteCache> tieredRoutes;
  if (useLoads && RouteTable::fullBuildFeasible(regionTopo)) {
    if (cfg.routeCache != nullptr) {
      sharedRoutes = cfg.routeCache->denseTier(regionTopo);
    } else if (cfg.artifacts != nullptr) {
      sharedRoutes = cfg.artifacts->routeTable(regionTopo);
    }
  } else if (useLoads && cfg.routeCache != nullptr &&
             cfg.routeCache->topology() == regionTopo) {
    // Top-level merge on a machine past the complete-table ceiling: the
    // sparse tier serves (and retains across the solve) the touched pairs.
    tieredRoutes = cfg.routeCache;
  }
  RouteTable routeTable(regionTopo);
  RouteScratch tierScratch;
  const auto forFlow = [&](NodeId src, NodeId dst, double volume, auto&& sink) {
    const RouteTable::Span r =
        sharedRoutes != nullptr ? sharedRoutes->find(src, dst)
        : tieredRoutes != nullptr ? tieredRoutes->read(src, dst, tierScratch)
                                  : routeTable.get(src, dst);
    for (std::size_t i = 0; i < r.size; ++i) {
      sink(r.channels[i], volume * r.fracs[i]);
    }
  };
  std::vector<NodeId> childPos;

  struct Candidate {
    std::size_t parent;
    std::size_t orient;  ///< index into orients, or kPinOrient
    std::size_t slotId;
    double objective;
  };
  constexpr std::size_t kPinOrient = SIZE_MAX;

  for (const std::size_t ci : order) {
    std::vector<Candidate> best;  // kept sorted ascending, max beamWidth
    const auto consider = [&](const Candidate& c) {
      ++candidatesEvaluated;
      const auto pos = std::lower_bound(
          best.begin(), best.end(), c.objective,
          [](const Candidate& x, double v) { return x.objective < v; });
      if (pos == best.end() &&
          best.size() >= static_cast<std::size_t>(cfg.beamWidth)) {
        return;
      }
      best.insert(pos, c);
      if (best.size() > static_cast<std::size_t>(cfg.beamWidth)) {
        best.pop_back();
      }
    };

    const std::size_t pinnedSlot =
        static_cast<std::size_t>(slotGrid.nodeId(children[ci].slot));

    // Slots considered for this child: the pin plus (when repositioning is
    // on) its nearest maxRepositionSlots neighbours in the slot grid.
    std::vector<std::size_t> slotChoices{pinnedSlot};
    if (cfg.allowRepositioning) {
      std::vector<std::size_t> others;
      for (std::size_t s = 0; s < slotCount; ++s) {
        if (s != pinnedSlot) others.push_back(s);
      }
      std::stable_sort(others.begin(), others.end(),
                       [&](std::size_t a, std::size_t b) {
                         return slotGrid.distance(static_cast<NodeId>(a),
                                                  static_cast<NodeId>(pinnedSlot)) <
                                slotGrid.distance(static_cast<NodeId>(b),
                                                  static_cast<NodeId>(pinnedSlot));
                       });
      const auto keep = std::min<std::size_t>(
          others.size(), static_cast<std::size_t>(
                             std::max(0, cfg.maxRepositionSlots)));
      slotChoices.insert(slotChoices.end(), others.begin(),
                         others.begin() + static_cast<long>(keep));
    }

    for (std::size_t bi = 0; bi < beam.size(); ++bi) {
      const BeamEntry& entry = beam[bi];
      for (const std::size_t slotId : slotChoices) {
        if (entry.slotUsed[slotId]) continue;
        const Coord slot = slotGrid.coordOf(static_cast<NodeId>(slotId));
        for (std::size_t oi = 0; oi < orients.size(); ++oi) {
          placeChild(ci, orients[oi], slot, childPos);
          double objective;
          if (useLoads) {
            delta.clear();
            // Route the new block's incident flows whose peer is placed
            // (or inside the block itself).
            for (const std::uint32_t fi : flowsTouching.of(ci)) {
              const FlowRef& f = flows[fi];
              const NodeId na = childOfCluster[f.a] == ci
                                    ? childPos[f.a - clusterBase[ci]]
                                    : entry.localNode[f.a];
              const NodeId nb = childOfCluster[f.b] == ci
                                    ? childPos[f.b - clusterBase[ci]]
                                    : entry.localNode[f.b];
              if (na == kInvalidNode || nb == kInvalidNode || na == nb) {
                continue;
              }
              forFlow(
                  na, nb, f.bytes,
                  [&delta](ChannelId c, double v) { delta.add(c, v); });
            }
            // max(partial + delta) == max(partialMax, max over touched).
            double m = entry.maxLoad;
            for (const ChannelId c : delta.touched()) {
              m = std::max(m, entry.loads[static_cast<std::size_t>(c)] +
                                  delta.at(c));
            }
            objective = m;
          } else {
            double hb = entry.hopBytes;
            for (const std::uint32_t fi : flowsTouching.of(ci)) {
              const FlowRef& f = flows[fi];
              const NodeId na = childOfCluster[f.a] == ci
                                    ? childPos[f.a - clusterBase[ci]]
                                    : entry.localNode[f.a];
              const NodeId nb = childOfCluster[f.b] == ci
                                    ? childPos[f.b - clusterBase[ci]]
                                    : entry.localNode[f.b];
              if (na == kInvalidNode || nb == kInvalidNode) continue;
              hb += f.bytes * regionTopo.distance(na, nb);
            }
            objective = hb;
          }
          consider({bi, oi, slotId, objective});
        }
      }
    }
    RAHTM_REQUIRE(!best.empty(), "mergeChildren: no feasible candidate");

    // Force the pinned-lineage extension (pin-only internals at the pinned
    // slot) into the survivor set, guaranteeing the global pseudo-pin
    // solution survives to the end.
    {
      {
        Candidate pin{pinnedLineage, kPinOrient, pinnedSlot, 0};
        const BeamEntry& entry = beam[pinnedLineage];
        placeChildPin(ci, childPos);
        if (useLoads) {
          delta.clear();
          for (const std::uint32_t fi : flowsTouching.of(ci)) {
            const FlowRef& f = flows[fi];
            const NodeId na = childOfCluster[f.a] == ci
                                  ? childPos[f.a - clusterBase[ci]]
                                  : entry.localNode[f.a];
            const NodeId nb = childOfCluster[f.b] == ci
                                  ? childPos[f.b - clusterBase[ci]]
                                  : entry.localNode[f.b];
            if (na == kInvalidNode || nb == kInvalidNode || na == nb) continue;
            forFlow(
                na, nb, f.bytes,
                [&](ChannelId c, double v) { delta.add(c, v); });
          }
          double m = entry.maxLoad;
          for (const ChannelId c : delta.touched()) {
            m = std::max(m,
                         entry.loads[static_cast<std::size_t>(c)] + delta.at(c));
          }
          pin.objective = m;
        } else {
          double hb = entry.hopBytes;
          for (const std::uint32_t fi : flowsTouching.of(ci)) {
            const FlowRef& f = flows[fi];
            const NodeId na = childOfCluster[f.a] == ci
                                  ? childPos[f.a - clusterBase[ci]]
                                  : entry.localNode[f.a];
            const NodeId nb = childOfCluster[f.b] == ci
                                  ? childPos[f.b - clusterBase[ci]]
                                  : entry.localNode[f.b];
            if (na == kInvalidNode || nb == kInvalidNode) continue;
            hb += f.bytes * regionTopo.distance(na, nb);
          }
          pin.objective = hb;
        }
        ++candidatesEvaluated;
        best.push_back(pin);
      }
    }

    // Materialize survivors into the next beam.
    std::vector<BeamEntry> next;
    next.reserve(best.size());
    std::size_t nextPinned = SIZE_MAX;
    for (const Candidate& c : best) {
      BeamEntry e = beam[c.parent];
      const Coord slot = slotGrid.coordOf(static_cast<NodeId>(c.slotId));
      if (c.orient == kPinOrient) {
        placeChildPin(ci, childPos);
      } else {
        placeChild(ci, orients[c.orient], slot, childPos);
      }
      const std::size_t base = clusterBase[ci];
      for (std::size_t k = 0; k < childPos.size(); ++k) {
        e.localNode[base + k] = childPos[k];
      }
      if (useLoads) {
        for (const std::uint32_t fi : flowsTouching.of(ci)) {
          const FlowRef& f = flows[fi];
          const NodeId na = e.localNode[f.a];
          const NodeId nb = e.localNode[f.b];
          // Only flows fully placed *now* and not counted before: exactly
          // those touching ci with both endpoints placed.
          if (na == kInvalidNode || nb == kInvalidNode || na == nb) continue;
          forFlow(na, nb, f.bytes, [&e](ChannelId ch, double v) {
            e.loads[static_cast<std::size_t>(ch)] += v;
          });
        }
        e.maxLoad = c.objective;
      } else {
        e.hopBytes = c.objective;
      }
      e.orientationOfChild[ci] = c.orient == kPinOrient
                                     ? Orientation::identity(childShape.size())
                                     : orients[c.orient];
      e.slotOfChild[ci] = slot;
      e.slotUsed[c.slotId] = 1;
      if (c.parent == pinnedLineage && c.orient == kPinOrient &&
          nextPinned == SIZE_MAX) {
        nextPinned = next.size();
      }
      next.push_back(std::move(e));
    }
    RAHTM_REQUIRE(nextPinned != SIZE_MAX,
                  "mergeChildren: pinned lineage lost");
    pinnedLineage = nextPinned;
    beam = std::move(next);
  }

  // Best entry is the lowest-objective member of the beam (the survivor
  // list is sorted, but the appended pinned candidate may sit anywhere).
  std::size_t winnerIdx = 0;
  for (std::size_t i = 1; i < beam.size(); ++i) {
    if (entryObjective(beam[i], cfg.objective) <
        entryObjective(beam[winnerIdx], cfg.objective)) {
      winnerIdx = i;
    }
  }
  const BeamEntry& winner = beam[winnerIdx];
  MergeResult result;
  result.clustersInRegion = regionClusters;
  result.localNode = winner.localNode;
  result.objective = entryObjective(winner, cfg.objective);
  result.orientationOfChild = winner.orientationOfChild;
  result.slotOfChild = winner.slotOfChild;
  result.pinLocalNode.resize(regionClusters.size());
  for (std::size_t ci = 0; ci < children.size(); ++ci) {
    placeChildPin(ci, childPos);
    for (std::size_t k = 0; k < childPos.size(); ++k) {
      result.pinLocalNode[clusterBase[ci] + k] = childPos[k];
    }
  }
  span.attr("candidates", candidatesEvaluated);
  span.attr("objective", result.objective);
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->counter("rahtm.merge.regions").add(1);
    reg->counter("rahtm.merge.candidates").add(candidatesEvaluated);
  }
  return result;
}

}  // namespace rahtm
