#pragma once
/// \file refine.hpp
/// Final pairwise-swap refinement of a node-cluster placement.
///
/// The hierarchical pipeline optimizes each subproblem on local flows and
/// merges rigid blocks, so the global placement can end slightly off a
/// local optimum of the full objective. This pass runs first-improvement
/// swap sweeps over the complete mapping under the same routing-aware MCL
/// metric until a sweep finds nothing (or the pass budget is exhausted).
/// Candidate evaluation is delta-based (routing/delta_eval.hpp): a probe
/// touches only the channels of flows incident to the swapped vertices, and
/// a rejected probe never sweeps the dense load vector.
///
/// This is an extension beyond the paper's three phases (the paper's §VI
/// mentions pursuing techniques to improve quality/cost); it is enabled by
/// default and isolated behind RahtmConfig::finalRefinement so the ablation
/// benches can quantify its contribution.

#include <cstdint>
#include <vector>

#include "core/subproblem.hpp"
#include "graph/comm_graph.hpp"
#include "topology/torus.hpp"

namespace rahtm {

/// Which swap pairs a refinement pass examines.
enum class RefineCandidates {
  /// AllPairs below RefineConfig::autoPruneThreshold vertices, Pruned at or
  /// above it.
  Auto,
  /// Every unordered pair (a,b) — exhaustive n^2/2 scan per pass.
  AllPairs,
  /// Neighbor-biased candidates with don't-look bits: for an active vertex
  /// a, only its communication partners, the vertices placed next to those
  /// partners, and the vertices placed next to a itself are tried — O(edges)
  /// promising pairs per pass instead of all n^2.
  Pruned,
};

struct RefineConfig {
  int maxPasses = 30;        ///< full sweeps over the candidate pairs
  MapObjective objective = MapObjective::Mcl;
  RefineCandidates candidates = RefineCandidates::Auto;
  /// Vertex count at which Auto switches from AllPairs to Pruned. At 128
  /// vertices (bench_scaling's 1024-rank/128-node point) Pruned reaches the
  /// same final objective as AllPairs in ~60% of the time; at 512 vertices
  /// the exhaustive n^2/2 scan costs minutes per mapping even with
  /// delta-evaluated probes.
  int autoPruneThreshold = 96;
  /// Optional provider of shared route tables / flow incidences (non-owning;
  /// must outlive the call). Null = build artifacts locally.
  ArtifactSource* artifacts = nullptr;
  /// Optional tiered route cache. Dense tier when the topology is small
  /// enough for a complete table; sparse global tier (copy-out reads,
  /// evictable under memory pressure) when it is not — which is what lets
  /// refinement run past the dense table's feasibility ceiling.
  std::shared_ptr<TieredRouteCache> routeCache;
};

struct RefineResult {
  double objectiveBefore = 0;
  double objectiveAfter = 0;
  int swapsApplied = 0;
  int passes = 0;
  std::uint64_t probes = 0;       ///< candidate swaps evaluated
  std::uint64_t denseSweeps = 0;  ///< full load-vector sweeps performed
};

/// Improve \p nodeOfCluster (a placement of clusterGraph's vertices onto
/// distinct nodes of \p topo) in place by greedy pairwise swaps.
RefineResult refinePlacement(const Torus& topo, const CommGraph& clusterGraph,
                             std::vector<NodeId>& nodeOfCluster,
                             const RefineConfig& cfg = {});

}  // namespace rahtm
