#pragma once
/// \file refine.hpp
/// Final pairwise-swap refinement of a node-cluster placement.
///
/// The hierarchical pipeline optimizes each subproblem on local flows and
/// merges rigid blocks, so the global placement can end slightly off a
/// local optimum of the full objective. This pass runs first-improvement
/// swap sweeps over the complete mapping under the same routing-aware MCL
/// metric until a sweep finds nothing (or the pass budget is exhausted).
///
/// This is an extension beyond the paper's three phases (the paper's §VI
/// mentions pursuing techniques to improve quality/cost); it is enabled by
/// default and isolated behind RahtmConfig::finalRefinement so the ablation
/// benches can quantify its contribution.

#include <vector>

#include "core/subproblem.hpp"
#include "graph/comm_graph.hpp"
#include "topology/torus.hpp"

namespace rahtm {

struct RefineConfig {
  int maxPasses = 30;        ///< full sweeps over all cluster pairs
  MapObjective objective = MapObjective::Mcl;
};

struct RefineResult {
  double objectiveBefore = 0;
  double objectiveAfter = 0;
  int swapsApplied = 0;
  int passes = 0;
};

/// Improve \p nodeOfCluster (a placement of clusterGraph's vertices onto
/// distinct nodes of \p topo) in place by greedy pairwise swaps.
RefineResult refinePlacement(const Torus& topo, const CommGraph& clusterGraph,
                             std::vector<NodeId>& nodeOfCluster,
                             const RefineConfig& cfg = {});

}  // namespace rahtm
