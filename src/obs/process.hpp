#pragma once
/// \file process.hpp
/// Process-level resource observations attached to every metrics / ledger
/// snapshot: elapsed wall time, peak resident set size (VmHWM) and current
/// resident set size (VmRSS). All are cheap point reads (a steady-clock
/// subtraction and one /proc file scan), so snapshot writers call them
/// unconditionally and the watchdog samples VmRSS every poll tick.

#include <cstdint>

namespace rahtm::obs {

/// Seconds of wall time since this library was loaded into the process
/// (static initialization time — for our executables, effectively process
/// start).
double processWallSeconds();

/// Peak resident set size of the calling process in bytes. Read from
/// /proc/self/status (VmHWM) on Linux; 0 on platforms without procfs or
/// when the read fails — callers treat 0 as "unavailable".
std::int64_t peakRssBytes();

/// Current resident set size (VmRSS) in bytes; 0 when unavailable. Sampled
/// periodically by the memory registry (obs/mem.*) to measure drift between
/// accounted bytes and real RSS.
std::int64_t currentRssBytes();

/// Extract "<key> <n> kB" from a /proc/self/status-style text and return
/// n * 1024; 0 when \p key is absent or its value does not parse. \p key
/// includes the colon ("VmHWM:"). Exposed so tests can drive the parser
/// with synthetic fixture strings instead of only live /proc reads.
std::int64_t parseStatusKb(const char* statusText, const char* key);

}  // namespace rahtm::obs
