#pragma once
/// \file process.hpp
/// Process-level resource observations attached to every metrics / ledger
/// snapshot: elapsed wall time and peak resident set size. Both are cheap
/// point reads (a steady-clock subtraction and one /proc file scan), so
/// snapshot writers call them unconditionally.

#include <cstdint>

namespace rahtm::obs {

/// Seconds of wall time since this library was loaded into the process
/// (static initialization time — for our executables, effectively process
/// start).
double processWallSeconds();

/// Peak resident set size of the calling process in bytes. Read from
/// /proc/self/status (VmHWM) on Linux; 0 on platforms without procfs or
/// when the read fails — callers treat 0 as "unavailable".
std::int64_t peakRssBytes();

}  // namespace rahtm::obs
