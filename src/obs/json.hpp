#pragma once
/// \file json.hpp
/// Tiny JSON *encoding* helpers shared by the tracer and the metrics
/// registry. Values are produced as ready-to-embed JSON literals so event
/// attributes can be stored pre-encoded (no variant machinery on the hot
/// path). Decoding lives separately in json_reader.hpp (added for the
/// benchmark ledger, which must read baselines back); trace/metrics hot
/// paths only ever encode, and the test suite still carries its own parser
/// to validate well-formedness from the outside.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace rahtm::obs {

/// Escape a string into a quoted JSON string literal.
inline std::string jsonString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// Integer JSON literal.
inline std::string jsonInt(std::int64_t v) { return std::to_string(v); }

/// Floating-point JSON literal. JSON has no inf/nan, so encode those as
/// strings (the convention Perfetto tolerates and scripts can detect).
inline std::string jsonDouble(double v) {
  if (!std::isfinite(v)) {
    return v > 0 ? "\"inf\"" : (v < 0 ? "\"-inf\"" : "\"nan\"");
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

inline std::string jsonBool(bool v) { return v ? "true" : "false"; }

}  // namespace rahtm::obs
