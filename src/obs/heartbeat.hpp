#pragma once
/// \file heartbeat.hpp
/// Always-on liveness counters for the run-forensics layer.
///
/// Every instrumented hot loop (simplex pivots, MILP branch-and-bound
/// nodes, annealing iterations, refinement probes, simulator cycles, pool
/// tasks) publishes progress by bumping a monotonic heartbeat counter. The
/// watchdog (obs/watchdog.hpp) samples the counters periodically: as long
/// as *any* counter moved, the process is making progress; when none moved
/// for longer than the active phase's deadline, the run is stalled and the
/// watchdog escalates (log -> post-mortem dump -> optional abort). The
/// post-mortem writer (obs/postmortem.hpp) embeds the last counter values
/// in every `rahtm.postmortem/v1` artifact.
///
/// Overhead discipline (the `obs_overhead` bench suite gates the whole
/// forensics layer at <= 2%):
///   * `beat()` is one relaxed fetch_add on a cache-line-padded stripe
///     selected per thread, so concurrent hot loops (anneal restarts on the
///     pool, parallel refinement) never contend on a shared line;
///   * counters carry no timestamps — the watchdog derives "time since last
///     progress" by diffing successive samples on its own clock;
///   * extremely hot loops batch their beats (e.g. one beat(64) per 64
///     annealing iterations).
///
/// Phase publication: `PhaseScope` (see below) maintains a small fixed-depth
/// stack of phase names so the watchdog can apply per-phase deadlines and a
/// post-mortem can say *where* the run died. The stack is written by the
/// orchestrating thread only (pipeline phases, simulator runs, tool
/// drivers); instrumenting pool *tasks* with PhaseScope is not supported.
/// Names must have static storage duration (string literals) — they are
/// published as raw pointers and read from the watchdog thread and from
/// signal handlers.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace rahtm::obs {

/// One heartbeat series per instrumented hot loop.
enum class Pulse : int {
  SimplexPivots = 0,  ///< lp/simplex.cpp pivot loop
  MilpNodes,          ///< lp/milp.cpp branch-and-bound node loop
  AnnealIterations,   ///< core/subproblem.cpp annealing moves
  RefineProbes,       ///< core/refine.cpp swap probes
  SimnetCycles,       ///< simnet/simulator.cpp cycle loop
  PoolTasks,          ///< exec/thread_pool.cpp completed tasks
  kCount,
};
constexpr int kPulseCount = static_cast<int>(Pulse::kCount);

/// Canonical snake_case name of a pulse (used as the JSON key in
/// post-mortem artifacts).
const char* pulseName(Pulse p);

class Heartbeats {
 public:
  static constexpr int kStripes = 8;       ///< contention stripes per pulse
  static constexpr int kMaxPhaseDepth = 16;

  /// Process-global instance, constructed on first use. Always on unless
  /// the RAHTM_HEARTBEATS environment variable says `off`/`0`.
  static Heartbeats& instance();

  Heartbeats();

  /// Record \p n units of progress. Wait-free; safe from any thread.
  void beat(Pulse p, std::uint64_t n = 1) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    cell(p, stripeOfThisThread()).fetch_add(n, std::memory_order_relaxed);
  }

  /// Current counter value (sum over stripes). Successive reads from one
  /// thread are monotonically non-decreasing.
  std::uint64_t value(Pulse p) const;

  /// All counters in Pulse order, named. Allocates; not for signal context
  /// (use value()/pulseName() there).
  std::vector<std::pair<const char*, std::uint64_t>> snapshot() const;

  /// Runtime kill switch, used by the obs_overhead suite to measure the
  /// instrumented-vs-disabled delta within one binary.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void setEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // ---- Phase stack ------------------------------------------------------
  // Writers (PhaseScope) serialize on a mutex — phase transitions are rare.
  // Readers (watchdog thread, signal handlers) only load atomics and never
  // block.
  /// \p name must have static storage duration. Pushes beyond
  /// kMaxPhaseDepth are counted but otherwise ignored.
  void pushPhase(const char* name);
  void popPhase();
  /// Innermost open phase, or nullptr outside any phase.
  const char* currentPhase() const;
  /// Phase name at stack index (0 = outermost); nullptr out of range.
  const char* phaseAt(int idx) const;
  int phaseDepth() const;
  /// Steady-clock microseconds when the innermost phase was entered
  /// (process-epoch of the flight recorder); 0 outside any phase.
  std::int64_t currentPhaseStartUs() const;

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };

  std::atomic<std::uint64_t>& cell(Pulse p, int stripe) {
    return cells_[static_cast<std::size_t>(static_cast<int>(p) * kStripes +
                                           stripe)]
        .v;
  }
  const std::atomic<std::uint64_t>& cell(Pulse p, int stripe) const {
    return cells_[static_cast<std::size_t>(static_cast<int>(p) * kStripes +
                                           stripe)]
        .v;
  }
  static int stripeOfThisThread();

  std::array<Cell, static_cast<std::size_t>(kPulseCount* kStripes)> cells_;
  std::atomic<bool> enabled_{true};

  std::mutex phaseMu_;  ///< serializes pushPhase/popPhase only
  std::atomic<int> phaseDepth_{0};
  std::array<std::atomic<const char*>, kMaxPhaseDepth> phaseStack_{};
  std::array<std::atomic<std::int64_t>, kMaxPhaseDepth> phaseStartUs_{};
};

/// RAII phase marker: publishes the phase to the global Heartbeats stack
/// and records PhaseEnter/PhaseExit events in the global flight recorder.
/// \p name must be a string literal (static storage duration).
class PhaseScope {
 public:
  explicit PhaseScope(const char* name);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  const char* name_;
};

}  // namespace rahtm::obs
