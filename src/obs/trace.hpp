#pragma once
/// \file trace.hpp
/// Span-based structured tracer.
///
/// A `Tracer` records nested spans (name, category, thread, steady-clock
/// microsecond timestamps, key/value attributes) and instant events, and
/// serializes them either as Chrome `trace_event` JSON — loadable directly
/// in chrome://tracing or https://ui.perfetto.dev — or as a flat JSON
/// summary (per-name count / total / min / max durations).
///
/// Tracing is *opt-in and zero-cost when disabled*: the process-global
/// tracer is a plain pointer that defaults to null, and every
/// instrumentation site goes through `ScopedSpan`, which performs nothing
/// but two steady-clock reads when the tracer is null. The clock reads are
/// kept even when disabled because the RAHTM pipeline derives its
/// `RahtmStats` phase timings from the same spans (see core/rahtm.cpp) —
/// they cost nanoseconds and only run a handful of times per mapping.
///
/// Thread safety: all Tracer methods are safe to call concurrently; events
/// are appended under a mutex (tracing targets phase/solver granularity,
/// not per-flit granularity, so contention is negligible).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace rahtm::obs {

/// Index of an open span inside its tracer.
using SpanId = std::int64_t;
constexpr SpanId kNoSpan = -1;

/// One recorded event. Times are integer microseconds since the tracer's
/// construction (steady clock).
struct TraceEvent {
  std::string name;
  std::string category;
  std::int64_t startUs = 0;
  /// Duration in microseconds; -1 marks an instant event, -2 a span that
  /// is still open (snapshot()/writers close those at "now").
  std::int64_t durUs = -1;
  std::uint32_t tid = 0;
  /// Attributes as (key, pre-encoded JSON value literal) pairs — build the
  /// values with jsonString/jsonInt/jsonDouble.
  std::vector<std::pair<std::string, std::string>> args;

  bool instant() const { return durUs == -1; }
  bool open() const { return durUs == -2; }
};

class Tracer {
 public:
  /// Default event cap (RAHTM_TRACE_CAP overrides): deliberately generous —
  /// the cap exists so a long simnet run with tracing left on degrades into
  /// a counted drop instead of unbounded memory growth.
  static constexpr std::size_t kDefaultEventCap = 1 << 20;

  Tracer();

  /// Start a span; returns its id for endSpan()/attr(), or kNoSpan once
  /// the event cap is reached (the drop is counted; endSpan/attr tolerate
  /// kNoSpan).
  SpanId beginSpan(std::string name, std::string category);
  /// Close a span; returns its recorded duration in microseconds (0 for
  /// kNoSpan).
  std::int64_t endSpan(SpanId id);

  /// Attach an attribute to an open or closed span. No-op for kNoSpan.
  void attr(SpanId id, std::string key, std::string jsonValue);

  /// Maximum retained events; recording past it drops (and counts). The
  /// initial value comes from RAHTM_TRACE_CAP (default kDefaultEventCap).
  void setEventCap(std::size_t cap);
  std::size_t eventCap() const;
  /// Events dropped at the cap; surfaced by writeSummary().
  std::int64_t droppedEvents() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Visit every currently-open span under try_lock; returns false (having
  /// visited nothing) when the lock is contended. \p fn is a plain function
  /// pointer so the post-mortem signal path can use this without
  /// allocating.
  bool tryVisitOpenSpans(void (*fn)(void*, const TraceEvent&),
                         void* ctx) const;

  /// Record a zero-duration instant event (e.g. a MILP incumbent update).
  void instant(std::string name, std::string category,
               std::vector<std::pair<std::string, std::string>> args = {});

  /// Microseconds since tracer construction.
  std::int64_t nowUs() const;

  /// Copy of all events; spans still open are closed at "now" in the copy.
  std::vector<TraceEvent> snapshot() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  void writeChromeTrace(std::ostream& os) const;

  /// Flat JSON summary: per span name {count, total_us, min_us, max_us}
  /// plus per instant name {count}.
  void writeSummary(std::ostream& os) const;

 private:
  std::uint32_t threadTagLocked();

  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceEvent> events_;
  std::vector<std::thread::id> threads_;  ///< dense thread-id mapping
  std::size_t eventCap_ = kDefaultEventCap;  ///< guarded by mu_
  std::atomic<std::int64_t> dropped_{0};
};

/// Process-global tracer; null (the default) disables tracing everywhere.
Tracer* tracer();
void setTracer(Tracer* t);

/// RAII span that tolerates a null tracer. Always measures elapsed time
/// (steady clock) so callers can derive statistics from the span whether or
/// not tracing is enabled; when a tracer is present the recorded duration
/// and seconds() agree exactly.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* t, const char* name, const char* category)
      : tracer_(t), start_(std::chrono::steady_clock::now()) {
    if (tracer_ != nullptr) id_ = tracer_->beginSpan(name, category);
  }
  ~ScopedSpan() { close(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void attr(const char* key, const std::string& v) {
    if (tracer_ != nullptr) tracer_->attr(id_, key, jsonString(v));
  }
  void attr(const char* key, const char* v) { attr(key, std::string(v)); }
  void attr(const char* key, std::int64_t v) {
    if (tracer_ != nullptr) tracer_->attr(id_, key, jsonInt(v));
  }
  void attr(const char* key, std::int32_t v) {
    attr(key, static_cast<std::int64_t>(v));
  }
  void attr(const char* key, double v) {
    if (tracer_ != nullptr) tracer_->attr(id_, key, jsonDouble(v));
  }

  /// End the span now (idempotent). Returns the final elapsed seconds.
  double close() {
    if (!closed_) {
      closed_ = true;
      if (tracer_ != nullptr && id_ != kNoSpan) {
        // Use the tracer's recorded duration so span-derived statistics
        // match the trace file exactly.
        seconds_ = static_cast<double>(tracer_->endSpan(id_)) * 1e-6;
      } else {
        seconds_ = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
      }
    }
    return seconds_;
  }

  /// Elapsed seconds: running value while open, final value after close().
  double seconds() const {
    if (closed_) return seconds_;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  Tracer* tracer_;
  SpanId id_ = kNoSpan;
  std::chrono::steady_clock::time_point start_;
  double seconds_ = 0;
  bool closed_ = false;
};

}  // namespace rahtm::obs
