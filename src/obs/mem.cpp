#include "obs/mem.hpp"

#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/log.hpp"
#include "obs/metrics.hpp"
#include "obs/process.hpp"

namespace rahtm::obs {

namespace {

constexpr const char* kAccountNames[kMemAccountCount] = {
    "route_table", "flow_incidence", "simnet", "lp", "mapper", "obs", "other"};

constexpr std::int64_t kNoLimit = INT64_MAX;

// Budget staging fractions: warn at 80%, degrade at the budget itself, fail
// at 125% — the slack past DEGRADE gives the shed callbacks room to work
// before the run is declared lost.
constexpr double kWarnFrac = 0.80;
constexpr double kDegradeFrac = 1.00;
constexpr double kFailFrac = 1.25;

std::int64_t stageLimit(std::int64_t budget, int stage) {
  switch (stage) {
    case 0: return static_cast<std::int64_t>(static_cast<double>(budget) * kWarnFrac);
    case 1: return static_cast<std::int64_t>(static_cast<double>(budget) * kDegradeFrac);
    case 2: return static_cast<std::int64_t>(static_cast<double>(budget) * kFailFrac);
    default: return kNoLimit;
  }
}

double toMb(std::int64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace

const char* memAccountName(MemAccountId id) {
  const int i = static_cast<int>(id);
  return (i >= 0 && i < kMemAccountCount) ? kAccountNames[i] : "other";
}

MemRegistry::MemRegistry() {
  nextLimit_.store(kNoLimit, std::memory_order_relaxed);
  baselineRss_.store(currentRssBytes(), std::memory_order_relaxed);
}

MemRegistry& MemRegistry::instance() {
  // Leaked so post-mortem handlers can read the counters during process
  // teardown (same lifetime discipline as the PmState buffers).
  static MemRegistry* g = [] {
    auto* r = new MemRegistry();
    if (const char* v = std::getenv("RAHTM_MEM_TRACK")) {
      if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0) {
        r->setEnabled(false);
      }
    }
    if (const char* v = std::getenv("RAHTM_MEM_BUDGET_MB")) {
      char* end = nullptr;
      const long long mb = std::strtoll(v, &end, 10);
      if (end != v && *end == '\0' && mb > 0) {
        r->setBudgetBytes(static_cast<std::int64_t>(mb) * 1024 * 1024);
      }
    }
    return r;
  }();
  return *g;
}

void MemRegistry::track(MemAccountId id, std::int64_t bytes) {
  if (bytes <= 0 || !enabled_.load(std::memory_order_relaxed)) return;
  Slot& s = slots_[static_cast<int>(id)];
  const std::int64_t cur =
      s.current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::int64_t peak = s.peak.load(std::memory_order_relaxed);
  while (cur > peak &&
         !s.peak.compare_exchange_weak(peak, cur, std::memory_order_relaxed)) {
  }
  const std::int64_t total =
      totalCurrent_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::int64_t tpeak = totalPeak_.load(std::memory_order_relaxed);
  while (total > tpeak && !totalPeak_.compare_exchange_weak(
                              tpeak, total, std::memory_order_relaxed)) {
  }
  std::int64_t ppeak = phasePeak_.load(std::memory_order_relaxed);
  while (total > ppeak && !phasePeak_.compare_exchange_weak(
                              ppeak, total, std::memory_order_relaxed)) {
  }
  // Hot path ends here: one relaxed compare against the next budget rung
  // (INT64_MAX when unlimited or fully escalated).
  if (total > nextLimit_.load(std::memory_order_relaxed)) escalate(total);
}

void MemRegistry::untrack(MemAccountId id, std::int64_t bytes) noexcept {
  if (bytes <= 0 || !enabled_.load(std::memory_order_relaxed)) return;
  slots_[static_cast<int>(id)].current.fetch_sub(bytes,
                                                 std::memory_order_relaxed);
  totalCurrent_.fetch_sub(bytes, std::memory_order_relaxed);
}

std::int64_t MemRegistry::currentBytes(MemAccountId id) const {
  return slots_[static_cast<int>(id)].current.load(std::memory_order_relaxed);
}

std::int64_t MemRegistry::peakBytes(MemAccountId id) const {
  return slots_[static_cast<int>(id)].peak.load(std::memory_order_relaxed);
}

void MemRegistry::setBudgetBytes(std::int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budgetBytes_.store(bytes > 0 ? bytes : 0, std::memory_order_relaxed);
  stage_.store(0, std::memory_order_relaxed);
  nextLimit_.store(bytes > 0 ? stageLimit(bytes, 0) : kNoLimit,
                   std::memory_order_relaxed);
}

int MemRegistry::registerDegradeCallback(std::string name, DegradeFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const int handle = nextHandle_++;
  callbacks_.push_back(Callback{handle, std::move(name), std::move(fn)});
  return handle;
}

void MemRegistry::unregisterDegradeCallback(int handle) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = callbacks_.begin(); it != callbacks_.end(); ++it) {
    if (it->handle == handle) {
      callbacks_.erase(it);
      return;
    }
  }
}

void MemRegistry::escalate(std::int64_t total) {
  // The ladder is serialized: one thread climbs a rung at a time, and each
  // rung is visited at most once per setBudgetBytes (stages are monotone).
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const std::int64_t budget = budgetBytes_.load(std::memory_order_relaxed);
    const int stage = stage_.load(std::memory_order_relaxed);
    if (budget <= 0 || stage >= 3) return;
    if (total <= stageLimit(budget, stage)) return;

    const int next = stage + 1;
    stage_.store(next, std::memory_order_relaxed);
    nextLimit_.store(stageLimit(budget, next), std::memory_order_relaxed);

    if (next == 1) {
      RAHTM_LOG(Warn) << "mem budget: accounted bytes at "
                      << breakdown(total) << " crossed 80% of budget ("
                      << toMb(budget) << " MB); WARN stage";
    } else if (next == 2) {
      degradeRuns_.fetch_add(1, std::memory_order_relaxed);
      // Copy the chain so a callback can unregister itself; run unlocked so
      // callbacks may call untrack()/unregisterDegradeCallback without
      // deadlocking, then re-take the lock for the next rung check.
      std::vector<Callback> chain = callbacks_;
      lock.unlock();
      std::int64_t shed = 0;
      for (const Callback& cb : chain) {
        const std::int64_t freed = cb.fn ? cb.fn() : 0;
        if (freed > 0) shed += freed;
        RAHTM_LOG(Warn) << "mem budget: degrade callback '" << cb.name
                        << "' shed " << toMb(freed > 0 ? freed : 0) << " MB";
      }
      RAHTM_LOG(Warn) << "mem budget: DEGRADE stage shed " << toMb(shed)
                      << " MB total; " << breakdown(totalCurrentBytes());
      lock.lock();
      // Re-check against the *post-shed* total: if the callbacks freed
      // enough, the FAIL rung never fires.
      total = totalCurrent_.load(std::memory_order_relaxed);
      continue;
    } else {
      const std::string msg =
          "memory budget exceeded: accounted " + breakdown(total) +
          " passed 125% of RAHTM_MEM_BUDGET_MB (" +
          std::to_string(static_cast<long long>(toMb(budget))) + " MB)";
      RAHTM_LOG(Error) << msg;
      throw MemBudgetError(msg);
    }
  }
}

std::string MemRegistry::breakdown(std::int64_t total) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << toMb(total) << " MB [";
  bool first = true;
  for (int i = 0; i < kMemAccountCount; ++i) {
    const std::int64_t cur = slots_[i].current.load(std::memory_order_relaxed);
    if (cur <= 0) continue;
    if (!first) os << ' ';
    os << kAccountNames[i] << '=' << toMb(cur) << "MB";
    first = false;
  }
  os << ']';
  return os.str();
}

void MemRegistry::sampleRss() {
  const std::int64_t rss = currentRssBytes();
  if (rss <= 0) return;
  sampledRss_.store(rss, std::memory_order_relaxed);
  std::int64_t peak = sampledRssPeak_.load(std::memory_order_relaxed);
  while (rss > peak && !sampledRssPeak_.compare_exchange_weak(
                           peak, rss, std::memory_order_relaxed)) {
  }
  if (MetricsRegistry* m = metrics()) {
    m->gauge("mem.sampled_rss_bytes")
        .set(static_cast<double>(rss));
    m->gauge("mem.accounted_bytes")
        .set(static_cast<double>(totalCurrent_.load(std::memory_order_relaxed)));
  }
}

void MemRegistry::writeReport(std::ostream& os) const {
  const std::int64_t totalPeak = totalPeakBytes();
  const std::int64_t rssPeak = peakRssBytes();
  os << "memory report (accounted bytes by subsystem)\n";
  os << "  account          current_mb    peak_mb\n";
  for (int i = 0; i < kMemAccountCount; ++i) {
    const std::int64_t cur = slots_[i].current.load(std::memory_order_relaxed);
    const std::int64_t peak = slots_[i].peak.load(std::memory_order_relaxed);
    os << "  " << std::left << std::setw(15) << kAccountNames[i] << std::right
       << std::fixed << std::setprecision(2) << std::setw(12) << toMb(cur)
       << std::setw(11) << toMb(peak) << "\n";
  }
  os << "  accounted total: " << std::fixed << std::setprecision(2)
     << toMb(totalCurrentBytes()) << " MB current, " << toMb(totalPeak)
     << " MB peak\n";
  const std::int64_t baseline = baselineRss_.load(std::memory_order_relaxed);
  os << "  process VmHWM:   " << toMb(rssPeak) << " MB (baseline "
     << toMb(baseline) << " MB at registry init)";
  if (rssPeak > baseline) {
    os << "; accounted peak covers " << std::setprecision(1)
       << (100.0 * static_cast<double>(totalPeak) /
           static_cast<double>(rssPeak - baseline))
       << "% of growth";
  }
  os << "\n";
  if (sampledRssPeak_.load(std::memory_order_relaxed) > 0) {
    os << "  sampled VmRSS:   " << std::setprecision(2)
       << toMb(sampledRss_.load(std::memory_order_relaxed)) << " MB current, "
       << toMb(sampledRssPeak_.load(std::memory_order_relaxed))
       << " MB peak\n";
  }
  const std::int64_t budget = budgetBytes_.load(std::memory_order_relaxed);
  if (budget > 0) {
    os << "  budget:          " << toMb(budget) << " MB, stage "
       << stage_.load(std::memory_order_relaxed)
       << " (0=ok 1=warn 2=degrade 3=fail)\n";
  }
}

void MemRegistry::resetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : slots_) {
    s.current.store(0, std::memory_order_relaxed);
    s.peak.store(0, std::memory_order_relaxed);
  }
  totalCurrent_.store(0, std::memory_order_relaxed);
  totalPeak_.store(0, std::memory_order_relaxed);
  phasePeak_.store(0, std::memory_order_relaxed);
  budgetBytes_.store(0, std::memory_order_relaxed);
  nextLimit_.store(kNoLimit, std::memory_order_relaxed);
  stage_.store(0, std::memory_order_relaxed);
  degradeRuns_.store(0, std::memory_order_relaxed);
  sampledRss_.store(0, std::memory_order_relaxed);
  sampledRssPeak_.store(0, std::memory_order_relaxed);
  baselineRss_.store(currentRssBytes(), std::memory_order_relaxed);
  callbacks_.clear();
  enabled_.store(true, std::memory_order_relaxed);
}

}  // namespace rahtm::obs
