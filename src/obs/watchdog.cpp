#include "obs/watchdog.hpp"

#include <array>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heartbeat.hpp"
#include "obs/mem.hpp"
#include "obs/postmortem.hpp"

namespace rahtm::obs {

namespace {

double envDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  return parsed;
}

}  // namespace

std::vector<std::pair<std::string, double>> parsePhaseDeadlines(
    const std::string& spec) {
  std::vector<std::pair<std::string, double>> out;
  if (spec.empty()) return out;
  for (const std::string& part : split(spec, ',')) {
    const auto eq = part.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ParseError("watchdog phases: expected name=seconds, got '" +
                       part + "'");
    }
    out.emplace_back(part.substr(0, eq), parseDouble(part.substr(eq + 1)));
  }
  return out;
}

WatchdogConfig watchdogConfigFromEnv() {
  WatchdogConfig cfg;
  if (const char* v = std::getenv("RAHTM_WATCHDOG")) {
    if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0) {
      cfg.enabled = false;
    }
  }
  cfg.pollMs = static_cast<int>(envDouble("RAHTM_WATCHDOG_POLL_MS", 250.0));
  if (cfg.pollMs < 1) cfg.pollMs = 1;
  cfg.defaultDeadlineSec = envDouble("RAHTM_WATCHDOG_SEC", 60.0);
  if (const char* v = std::getenv("RAHTM_WATCHDOG_PHASES")) {
    cfg.phaseDeadlines = parsePhaseDeadlines(v);
  }
  if (const char* v = std::getenv("RAHTM_WATCHDOG_ACTION")) {
    if (std::strcmp(v, "log") == 0) cfg.action = WatchdogAction::Log;
    else if (std::strcmp(v, "dump") == 0) cfg.action = WatchdogAction::Dump;
    else if (std::strcmp(v, "abort") == 0) cfg.action = WatchdogAction::Abort;
  }
  cfg.postmortemDir = postmortemDirFromEnv();
  return cfg;
}

Watchdog::Watchdog(WatchdogConfig cfg) : cfg_(std::move(cfg)) {}

Watchdog::~Watchdog() { stop(); }

void Watchdog::start() {
  if (!cfg_.enabled || thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopRequested_ = false;
  }
  thread_ = std::thread([this] { loop(); });
}

void Watchdog::stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopRequested_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

double Watchdog::deadlineFor(const char* phase) const {
  if (phase != nullptr) {
    for (const auto& [name, sec] : cfg_.phaseDeadlines) {
      if (std::strncmp(phase, name.c_str(), name.size()) == 0) return sec;
    }
  }
  return cfg_.defaultDeadlineSec;
}

void Watchdog::loop() {
  using Clock = std::chrono::steady_clock;
  Heartbeats& hb = Heartbeats::instance();

  std::array<std::uint64_t, static_cast<std::size_t>(kPulseCount)> last{};
  for (int p = 0; p < kPulseCount; ++p) {
    last[static_cast<std::size_t>(p)] = hb.value(static_cast<Pulse>(p));
  }
  const char* lastPhase = hb.currentPhase();
  int lastDepth = hb.phaseDepth();
  Clock::time_point lastProgress = Clock::now();
  int stage = 0;

  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, std::chrono::milliseconds(cfg_.pollMs),
                       [this] { return stopRequested_; })) {
        return;
      }
    }

    // Periodic VmRSS sample: the poll thread is the one place every run
    // already wakes on a steady cadence, so the memory registry's
    // accounted-vs-RSS drift metric rides along for free.
    MemRegistry::instance().sampleRss();

    bool progressed = false;
    for (int p = 0; p < kPulseCount; ++p) {
      const std::uint64_t v = hb.value(static_cast<Pulse>(p));
      if (v != last[static_cast<std::size_t>(p)]) progressed = true;
      last[static_cast<std::size_t>(p)] = v;
    }
    const char* phase = hb.currentPhase();
    const int depth = hb.phaseDepth();
    if (phase != lastPhase || depth != lastDepth) {
      progressed = true;
      lastPhase = phase;
      lastDepth = depth;
    }
    if (progressed || phase == nullptr) {
      lastProgress = Clock::now();
      stage = 0;
      continue;
    }

    const double stalled =
        std::chrono::duration<double>(Clock::now() - lastProgress).count();
    const double deadline = deadlineFor(phase);
    if (deadline <= 0.0) continue;

    int due = static_cast<int>(stalled / deadline);
    if (due > static_cast<int>(cfg_.action)) due = static_cast<int>(cfg_.action);
    while (stage < due) {
      ++stage;
      lastStage_.store(stage, std::memory_order_relaxed);
      FlightRecorder::instance().record(FrEvent::WatchdogStall, stage,
                                        static_cast<std::int64_t>(stalled));
      if (stage == 1) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        std::ostringstream msg;
        msg << "watchdog: no progress for " << stalled << "s in phase '"
            << phase << "' (deadline " << deadline << "s); heartbeats:";
        for (const auto& [name, v] : hb.snapshot()) {
          msg << ' ' << name << '=' << v;
        }
        RAHTM_LOG(Warn) << msg.str();
      } else if (stage == 2) {
        RAHTM_LOG(Warn) << "watchdog: stall persists (" << stalled
                        << "s); writing post-mortem";
        writePostmortemNow("stall", cfg_.postmortemDir.c_str());
      }
      if (onStall_) {
        onStall_(stage, phase != nullptr ? std::string(phase) : std::string(),
                 stalled);
      } else if (stage == 3) {
        RAHTM_LOG(Error) << "watchdog: stall persists (" << stalled
                         << "s); aborting";
        std::abort();
      }
    }
  }
}

}  // namespace rahtm::obs
