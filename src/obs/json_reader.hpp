#pragma once
/// \file json_reader.hpp
/// Minimal JSON *decoding* counterpart to json.hpp, added for the benchmark
/// ledger (report.hpp): `rahtm_bench --check` must read a committed baseline
/// `BENCH_*.json` back, and schema validation must parse candidate files.
/// This is a small recursive-descent parser over the JSON subset the repo's
/// own writers emit (objects, arrays, strings, numbers, booleans, null); it
/// preserves object key order so golden-file tests can assert on it.
///
/// It is deliberately not a general-purpose JSON library: no streaming, no
/// \u surrogate pairs (non-BMP escapes decode to '?'), values are
/// deep-copied trees. Telemetry hot paths never touch it.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace rahtm::obs {

/// A parsed JSON value. Objects keep their keys in file order.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool isObject() const { return kind == Kind::Object; }
  bool isArray() const { return kind == Kind::Array; }
  bool isNumber() const { return kind == Kind::Number; }
  bool isString() const { return kind == Kind::String; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* find(const std::string& key) const;
  /// Object member lookup; throws rahtm::ParseError when absent.
  const JsonValue& at(const std::string& key) const;

  /// Typed accessors with a fallback for absent/mistyped members.
  double numberOr(const std::string& key, double fallback) const;
  std::string stringOr(const std::string& key,
                       const std::string& fallback) const;
};

/// Parse a complete JSON document. Throws rahtm::ParseError with a byte
/// offset on malformed input or trailing garbage.
JsonValue parseJson(const std::string& text);

}  // namespace rahtm::obs
