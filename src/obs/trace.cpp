#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <ostream>

#include "common/error.hpp"

namespace rahtm::obs {

namespace {
std::atomic<Tracer*> g_tracer{nullptr};
}  // namespace

Tracer* tracer() { return g_tracer.load(std::memory_order_acquire); }
void setTracer(Tracer* t) { g_tracer.store(t, std::memory_order_release); }

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  if (const char* v = std::getenv("RAHTM_TRACE_CAP")) {
    char* end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    if (end != v && *end == '\0' && parsed > 0) {
      eventCap_ = static_cast<std::size_t>(parsed);
    }
  }
}

void Tracer::setEventCap(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  eventCap_ = cap;
}

std::size_t Tracer::eventCap() const {
  std::lock_guard<std::mutex> lock(mu_);
  return eventCap_;
}

bool Tracer::tryVisitOpenSpans(void (*fn)(void*, const TraceEvent&),
                               void* ctx) const {
  if (!mu_.try_lock()) return false;
  for (const TraceEvent& e : events_) {
    if (e.open()) fn(ctx, e);
  }
  mu_.unlock();
  return true;
}

std::int64_t Tracer::nowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::uint32_t Tracer::threadTagLocked() {
  const std::thread::id self = std::this_thread::get_id();
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    if (threads_[i] == self) return static_cast<std::uint32_t>(i);
  }
  threads_.push_back(self);
  return static_cast<std::uint32_t>(threads_.size() - 1);
}

SpanId Tracer::beginSpan(std::string name, std::string category) {
  const std::int64_t ts = nowUs();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= eventCap_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return kNoSpan;
  }
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.startUs = ts;
  e.durUs = -2;  // open
  e.tid = threadTagLocked();
  events_.push_back(std::move(e));
  return static_cast<SpanId>(events_.size() - 1);
}

std::int64_t Tracer::endSpan(SpanId id) {
  const std::int64_t ts = nowUs();
  if (id == kNoSpan) return 0;  // span was dropped at the cap
  std::lock_guard<std::mutex> lock(mu_);
  RAHTM_REQUIRE(id >= 0 && id < static_cast<SpanId>(events_.size()),
                "Tracer::endSpan: bad span id");
  TraceEvent& e = events_[static_cast<std::size_t>(id)];
  if (e.open()) e.durUs = ts - e.startUs;
  return e.durUs;
}

void Tracer::attr(SpanId id, std::string key, std::string jsonValue) {
  if (id == kNoSpan) return;  // span was dropped at the cap
  std::lock_guard<std::mutex> lock(mu_);
  RAHTM_REQUIRE(id >= 0 && id < static_cast<SpanId>(events_.size()),
                "Tracer::attr: bad span id");
  events_[static_cast<std::size_t>(id)].args.emplace_back(
      std::move(key), std::move(jsonValue));
}

void Tracer::instant(std::string name, std::string category,
                     std::vector<std::pair<std::string, std::string>> args) {
  const std::int64_t ts = nowUs();
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= eventCap_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.startUs = ts;
  e.durUs = -1;
  e.tid = threadTagLocked();
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

std::vector<TraceEvent> Tracer::snapshot() const {
  const std::int64_t now = nowUs();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out = events_;
  for (TraceEvent& e : out) {
    if (e.open()) e.durUs = now - e.startUs;
  }
  return out;
}

namespace {

void writeArgs(std::ostream& os, const TraceEvent& e) {
  os << "\"args\":{";
  for (std::size_t a = 0; a < e.args.size(); ++a) {
    if (a != 0) os << ",";
    os << jsonString(e.args[a].first) << ":" << e.args[a].second;
  }
  os << "}";
}

}  // namespace

void Tracer::writeChromeTrace(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  os << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i != 0) os << ",";
    os << "\n{\"name\":" << jsonString(e.name)
       << ",\"cat\":" << jsonString(e.category)
       << ",\"ph\":" << (e.instant() ? "\"i\",\"s\":\"t\"" : "\"X\"")
       << ",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":" << e.startUs;
    if (!e.instant()) os << ",\"dur\":" << e.durUs;
    os << ",";
    writeArgs(os, e);
    os << "}";
  }
  os << "\n]}\n";
}

void Tracer::writeSummary(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  struct Agg {
    std::int64_t count = 0;
    std::int64_t totalUs = 0;
    std::int64_t minUs = 0;
    std::int64_t maxUs = 0;
  };
  std::map<std::string, Agg> spans;
  std::map<std::string, std::int64_t> instants;
  for (const TraceEvent& e : events) {
    if (e.instant()) {
      ++instants[e.name];
      continue;
    }
    Agg& a = spans[e.name];
    if (a.count == 0) {
      a.minUs = e.durUs;
      a.maxUs = e.durUs;
    } else {
      a.minUs = std::min(a.minUs, e.durUs);
      a.maxUs = std::max(a.maxUs, e.durUs);
    }
    ++a.count;
    a.totalUs += e.durUs;
  }
  os << "{\"spans\":{";
  bool first = true;
  for (const auto& [name, a] : spans) {
    if (!first) os << ",";
    first = false;
    os << "\n" << jsonString(name) << ":{\"count\":" << a.count
       << ",\"total_us\":" << a.totalUs << ",\"min_us\":" << a.minUs
       << ",\"max_us\":" << a.maxUs << "}";
  }
  os << "\n},\"instants\":{";
  first = true;
  for (const auto& [name, count] : instants) {
    if (!first) os << ",";
    first = false;
    os << "\n" << jsonString(name) << ":{\"count\":" << count << "}";
  }
  os << "\n},\"dropped_events\":" << droppedEvents() << "}\n";
}

}  // namespace rahtm::obs
