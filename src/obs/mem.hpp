#pragma once
/// \file mem.hpp
/// Subsystem-attributed memory accounting: the measurement layer behind the
/// memory budgets that gate the push past the 1024-node route-table ceiling
/// (ROADMAP item 2). Process-wide VmHWM says *that* a run peaked at N GB;
/// this registry says *which structure* owns those bytes — the eagerly
/// built route tables, the flow-incidence CSR, the simulator's shard
/// queues, the LP tableau — and enforces a budget against them before the
/// kernel's OOM killer does.
///
/// Design constraints, in order:
///  * **Always on, near-zero overhead.** Accounting is coarse-grained: the
///    heavy owners report their footprint at build/rebuild/compaction
///    points (one relaxed atomic add each), never per element. The
///    `mem_micro` ledger gates the measured overhead ratio at <= 2%, the
///    same budget the forensics layer carries.
///  * **Crash-readable.** All counters are relaxed atomics in fixed-size
///    arrays, so the post-mortem writer can serialize a memory section from
///    signal context with no locks and no allocation.
///  * **Deterministic enforcement.** The budget is checked against the
///    *accounted* byte total, which is a pure function of the workload —
///    not against sampled RSS, which varies with allocator slack and page
///    cache. Sampled VmRSS (taken on the watchdog poll thread) is recorded
///    as a drift metric instead: when `accounted / rss` decays, the
///    accounting itself has a coverage bug worth fixing.
///
/// Budget policy (RAHTM_MEM_BUDGET_MB / --mem-budget-mb, 0 = unlimited),
/// staged and monotonic like the watchdog's escalation:
///   stage 1 (80% of budget):  WARN  — log the per-account breakdown
///   stage 2 (100%):           DEGRADE — invoke the registered degrade
///                             callbacks (owners of shed-able state, e.g. a
///                             tiered route cache dropping eagerly built
///                             tables) and log how much they returned
///   stage 3 (125%):           FAIL — throw MemBudgetError; the run dies
///                             with the breakdown in the message instead of
///                             being OOM-killed without a trace
///
/// Environment:
///   RAHTM_MEM_BUDGET_MB = staged budget in MiB (0/unset = unlimited)
///   RAHTM_MEM_TRACK     = off|0 disables accounting (overhead experiments)

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace rahtm::obs {

/// The named accounts. Fixed at compile time so counters live in a plain
/// array readable from signal context; `Other` catches instrumentation that
/// has no better home and keeps the enum total-able.
enum class MemAccountId : int {
  RouteTable = 0,  ///< RouteTable pair index + route arenas (routing/delta_eval)
  FlowIncidence,   ///< CSR flow incidence (graph/comm_graph)
  Simnet,          ///< simulator queues, mailboxes, message state (simnet)
  Lp,              ///< simplex tableau / basis matrices (lp)
  Mapper,          ///< placement engines, refine/anneal working state (core)
  Obs,             ///< flight-recorder rings, post-mortem buffers (obs)
  Other,
};
inline constexpr int kMemAccountCount = 7;

/// Stable snake_case name ("route_table", ...) used in ledgers, post-mortems
/// and --mem-report tables.
const char* memAccountName(MemAccountId id);

/// The budget tripped its FAIL stage. Derived from rahtm::Error so the
/// tools' top-level handlers turn it into exit 1 with the breakdown.
class MemBudgetError : public Error {
 public:
  explicit MemBudgetError(const std::string& what) : Error(what) {}
};

/// Registry of per-account byte counters plus budget enforcement. One
/// process-global instance (instance()); separate instances are
/// constructible for tests.
class MemRegistry {
 public:
  MemRegistry();
  MemRegistry(const MemRegistry&) = delete;
  MemRegistry& operator=(const MemRegistry&) = delete;

  /// Process-global registry. First use reads RAHTM_MEM_BUDGET_MB /
  /// RAHTM_MEM_TRACK; the object is leaked so crash handlers can read it at
  /// any point of process teardown.
  static MemRegistry& instance();

  // ---- Accounting ---------------------------------------------------------

  /// Record \p bytes (>= 0) as live under \p id. May throw MemBudgetError
  /// when the addition crosses the budget's FAIL stage.
  void track(MemAccountId id, std::int64_t bytes);
  /// Release \p bytes previously tracked. Never escalates, never throws.
  void untrack(MemAccountId id, std::int64_t bytes) noexcept;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Disabling makes track/untrack a single relaxed load (the overhead
  /// experiment's "off" side). Counters keep their values.
  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  std::int64_t currentBytes(MemAccountId id) const;
  std::int64_t peakBytes(MemAccountId id) const;
  std::int64_t totalCurrentBytes() const {
    return totalCurrent_.load(std::memory_order_relaxed);
  }
  std::int64_t totalPeakBytes() const {
    return totalPeak_.load(std::memory_order_relaxed);
  }

  // ---- Phase high-water marks --------------------------------------------

  /// Total accounted peak since the last resetPhasePeak() — the per-phase
  /// attribution RahtmStats records next to its quality trail.
  std::int64_t phasePeakBytes() const {
    return phasePeak_.load(std::memory_order_relaxed);
  }
  void resetPhasePeak() {
    phasePeak_.store(totalCurrent_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  }

  // ---- Budget -------------------------------------------------------------

  /// Set the staged budget (0 = unlimited). Resets the escalation stage —
  /// callers change the budget only between runs, not mid-solve.
  void setBudgetBytes(std::int64_t bytes);
  std::int64_t budgetBytes() const {
    return budgetBytes_.load(std::memory_order_relaxed);
  }
  /// Highest escalation stage reached (0 none, 1 warn, 2 degrade, 3 fail).
  int budgetStage() const { return stage_.load(std::memory_order_relaxed); }

  /// A degrade callback sheds re-derivable state (drops caches, shrinks
  /// pools) and returns the number of bytes it released (best effort,
  /// informational). Callbacks run in registration order, in the thread
  /// whose track() call crossed the DEGRADE threshold; they may call
  /// untrack() but must not allocate tracked memory.
  using DegradeFn = std::function<std::int64_t()>;
  /// Returns a handle for unregisterDegradeCallback.
  int registerDegradeCallback(std::string name, DegradeFn fn);
  void unregisterDegradeCallback(int handle);
  /// Times the DEGRADE stage actually invoked the callback chain.
  std::int64_t degradeInvocations() const {
    return degradeRuns_.load(std::memory_order_relaxed);
  }

  // ---- RSS sampling -------------------------------------------------------

  /// Read VmRSS from /proc and fold it into the sampled peak; called by the
  /// watchdog poll thread and at suite boundaries. Records the drift
  /// between accounted bytes and real RSS into the metrics registry (when
  /// installed) as mem.sampled_rss_bytes / mem.accounted_bytes gauges.
  void sampleRss();
  std::int64_t sampledRssBytes() const {
    return sampledRss_.load(std::memory_order_relaxed);
  }
  std::int64_t sampledRssPeakBytes() const {
    return sampledRssPeak_.load(std::memory_order_relaxed);
  }
  /// VmRSS when the registry was constructed: the process baseline (code
  /// pages, libc, allocator warmup) that no subsystem owns. Coverage is
  /// therefore defined against RSS *growth*: accounted peak over
  /// (VmHWM - baseline). The tools touch instance() first thing in main so
  /// the baseline predates every tracked allocation.
  std::int64_t baselineRssBytes() const {
    return baselineRss_.load(std::memory_order_relaxed);
  }

  // ---- Reporting ----------------------------------------------------------

  /// Human-readable per-account table (--mem-report).
  void writeReport(std::ostream& os) const;

  /// Reset counters, peaks, stage and callbacks. Test-only: live MemAccount
  /// scopes keep their byte tallies and would go negative on destruction.
  void resetForTest();

 private:
  void escalate(std::int64_t total);
  std::string breakdown(std::int64_t total) const;

  struct Slot {
    std::atomic<std::int64_t> current{0};
    std::atomic<std::int64_t> peak{0};
  };
  Slot slots_[kMemAccountCount];
  std::atomic<std::int64_t> totalCurrent_{0};
  std::atomic<std::int64_t> totalPeak_{0};
  std::atomic<std::int64_t> phasePeak_{0};
  std::atomic<bool> enabled_{true};

  std::atomic<std::int64_t> budgetBytes_{0};
  /// Next threshold that triggers escalation; INT64_MAX when exhausted or
  /// unlimited, so the hot path is one relaxed compare.
  std::atomic<std::int64_t> nextLimit_;
  std::atomic<int> stage_{0};
  std::atomic<std::int64_t> degradeRuns_{0};

  std::atomic<std::int64_t> sampledRss_{0};
  std::atomic<std::int64_t> sampledRssPeak_{0};
  std::atomic<std::int64_t> baselineRss_{0};

  mutable std::mutex mu_;  ///< guards callbacks_ and the escalation ladder
  struct Callback {
    int handle = 0;
    std::string name;
    DegradeFn fn;
  };
  std::vector<Callback> callbacks_;
  int nextHandle_ = 1;
};

/// RAII byte tally against one account of the global registry. Owners embed
/// one per tracked structure and call set() with the recomputed footprint at
/// build/rebuild/compaction points; the destructor returns whatever is still
/// tallied. Copying tracks the bytes again (two copies are live); moving
/// transfers the tally.
class MemAccount {
 public:
  explicit MemAccount(MemAccountId id, std::int64_t bytes = 0) : id_(id) {
    if (bytes > 0) add(bytes);
  }
  MemAccount(const MemAccount& other) : id_(other.id_) { add(other.bytes_); }
  MemAccount(MemAccount&& other) noexcept
      : id_(other.id_), bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  MemAccount& operator=(const MemAccount& other) {
    if (this != &other) {
      release();  // return the old tally to the old account first
      id_ = other.id_;
      add(other.bytes_);
    }
    return *this;
  }
  MemAccount& operator=(MemAccount&& other) noexcept {
    if (this != &other) {
      release();
      id_ = other.id_;
      bytes_ = other.bytes_;
      other.bytes_ = 0;
    }
    return *this;
  }
  ~MemAccount() { release(); }

  /// Adjust the tally to an absolute footprint (tracks or untracks the
  /// delta). track() may throw MemBudgetError on growth past the budget.
  void set(std::int64_t bytes) {
    if (bytes > bytes_) {
      add(bytes - bytes_);
    } else if (bytes < bytes_) {
      MemRegistry::instance().untrack(id_, bytes_ - bytes);
      bytes_ = bytes;
    }
  }
  void add(std::int64_t delta) {
    if (delta <= 0) return;
    MemRegistry::instance().track(id_, delta);
    bytes_ += delta;
  }
  std::int64_t bytes() const { return bytes_; }
  MemAccountId account() const { return id_; }

 private:
  void release() noexcept {
    if (bytes_ > 0) MemRegistry::instance().untrack(id_, bytes_);
    bytes_ = 0;
  }
  MemAccountId id_;
  std::int64_t bytes_ = 0;
};

/// Minimal C++17 allocator charging container storage to a fixed account —
/// for owners whose growth is not bracketed by convenient build points.
/// Allocation cost is amortized by the container's growth policy, so the
/// per-allocation atomic pair stays off any per-element path.
template <typename T, MemAccountId A>
class TrackingAllocator {
 public:
  using value_type = T;

  TrackingAllocator() noexcept = default;
  template <typename U>
  TrackingAllocator(const TrackingAllocator<U, A>&) noexcept {}

  T* allocate(std::size_t n) {
    const auto bytes = static_cast<std::int64_t>(n * sizeof(T));
    MemRegistry::instance().track(A, bytes);
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p);
    MemRegistry::instance().untrack(
        A, static_cast<std::int64_t>(n * sizeof(T)));
  }

  template <typename U>
  struct rebind {
    using other = TrackingAllocator<U, A>;
  };
  template <typename U>
  bool operator==(const TrackingAllocator<U, A>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const TrackingAllocator<U, A>&) const noexcept {
    return false;
  }
};

/// Convenience wrappers over the global registry for call sites that do not
/// want a scope object (matched pairs are the caller's responsibility).
inline void track(MemAccountId id, std::int64_t bytes) {
  MemRegistry::instance().track(id, bytes);
}
inline void untrack(MemAccountId id, std::int64_t bytes) {
  MemRegistry::instance().untrack(id, bytes);
}

}  // namespace rahtm::obs
