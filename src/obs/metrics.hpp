#pragma once
/// \file metrics.hpp
/// Lock-free-ish metrics registry: named counters, gauges and fixed-bucket
/// histograms backed by std::atomic, with a JSON snapshot.
///
/// Recording (`Counter::add`, `Histogram::observe`, ...) never takes a
/// lock — hot paths like the simulator's occupancy sampling and the
/// simplex pivot accounting only touch relaxed atomics. The registry's
/// name lookup *does* take a mutex, so instrumentation sites either run at
/// coarse granularity (one lookup per solve) or cache the returned
/// reference up front (references are stable for the registry's lifetime).
///
/// Like tracing, metrics are opt-in: the process-global registry pointer
/// defaults to null and every instrumentation site checks it first, so a
/// run without --metrics-out pays a single predictable branch.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rahtm::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-value (set) or accumulating (add) floating-point metric.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// Fixed-bucket histogram: counts per bucket (upper-bound inclusive, plus
/// an implicit overflow bucket), running sum/count and min/max.
class Histogram {
 public:
  /// \p upperBounds must be strictly increasing.
  explicit Histogram(std::vector<double> upperBounds);

  void observe(double v);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; the last entry is the overflow bucket.
  std::vector<std::int64_t> bucketCounts() const;

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// bucket containing the target rank, clamped to the observed [min, max].
  /// 0 when the histogram is empty. Snapshots embed p50/p95/p99 so summary
  /// JSON is directly plottable without post-processing bucket counts.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Exponential bucket bounds: first, first*factor, ... (count entries).
std::vector<double> expBuckets(double first, double factor, int count);

class MetricsRegistry {
 public:
  /// Find-or-create by name; returned references are stable.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// \p upperBounds is used only on first creation of \p name.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upperBounds);

  /// Lookup without creation (mainly for tests); null when absent.
  const Counter* findCounter(const std::string& name) const;
  const Histogram* findHistogram(const std::string& name) const;

  /// Stable (name, pointer) lists of the current counters/gauges, captured
  /// under the registry lock. The post-mortem writer (obs/postmortem.cpp)
  /// takes these in normal context so a signal handler can later read the
  /// atomics without touching the registry mutex.
  std::vector<std::pair<std::string, const Counter*>> counterRefs() const;
  std::vector<std::pair<std::string, const Gauge*>> gaugeRefs() const;

  /// Snapshot everything as JSON:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  ///  max,buckets:[{le,count},...]}}}.
  void writeJson(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-global registry; null (the default) disables metrics everywhere.
MetricsRegistry* metrics();
void setMetrics(MetricsRegistry* m);

}  // namespace rahtm::obs
