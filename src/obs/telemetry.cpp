#include "obs/telemetry.hpp"

#include <cstdlib>
#include <fstream>
#include <functional>

#include "common/error.hpp"

namespace rahtm::obs {

namespace {

std::string envString(const char* name) {
  const char* v = std::getenv(name);
  return v == nullptr ? std::string() : std::string(v);
}

void writeFileOrThrow(const std::string& path,
                      const std::function<void(std::ostream&)>& writer) {
  std::ofstream out(path);
  if (!out) throw Error("telemetry: cannot write " + path);
  writer(out);
  out.flush();
  if (!out) throw Error("telemetry: write failed for " + path);
}

}  // namespace

TelemetryConfig telemetryConfigFromEnv() {
  TelemetryConfig cfg;
  cfg.traceOutPath = envString("RAHTM_TRACE_OUT");
  cfg.traceSummaryPath = envString("RAHTM_TRACE_SUMMARY");
  cfg.metricsOutPath = envString("RAHTM_METRICS_OUT");
  return cfg;
}

void registerStandardMetrics(MetricsRegistry& registry) {
  // LP layer.
  registry.counter("lp.simplex.solves");
  registry.counter("lp.simplex.pivots");
  registry.histogram("lp.simplex.pivots_per_solve", expBuckets(1, 2, 20));
  registry.counter("lp.milp.solves");
  registry.counter("lp.milp.nodes");
  registry.counter("lp.milp.incumbents");
  registry.histogram("lp.milp.nodes_per_solve", expBuckets(1, 2, 20));
  // RAHTM pipeline.
  registry.counter("rahtm.subproblems");
  registry.counter("rahtm.subproblem.method.milp");
  registry.counter("rahtm.subproblem.method.exhaustive");
  registry.counter("rahtm.subproblem.method.anneal");
  registry.counter("rahtm.merge.regions");
  registry.counter("rahtm.merge.candidates");
  registry.counter("rahtm.refine.passes");
  registry.counter("rahtm.refine.swaps");
  // Per-phase quality attribution (core/rahtm.cpp recordPhaseQuality).
  for (const char* phase : {"cluster", "pin", "merge", "refine"}) {
    registry.gauge(std::string("rahtm.quality.") + phase + ".mcl");
    registry.gauge(std::string("rahtm.quality.") + phase + ".hop_bytes");
  }
  // Simulator.
  registry.counter("simnet.runs");
  registry.counter("simnet.cycles");
  registry.counter("simnet.network_flits");
  registry.counter("simnet.local_flits");
  registry.counter("simnet.flit_hops");
  registry.histogram("simnet.link_queue_flits", expBuckets(1, 2, 16));
  registry.histogram("simnet.link_channel_flits", expBuckets(16, 2, 24));
}

TelemetrySession::TelemetrySession(TelemetryConfig config)
    : cfg_(std::move(config)) {
  if (cfg_.tracingEnabled()) {
    tracer_ = std::make_unique<Tracer>();
    setTracer(tracer_.get());
  }
  if (cfg_.metricsEnabled()) {
    metrics_ = std::make_unique<MetricsRegistry>();
    registerStandardMetrics(*metrics_);
    setMetrics(metrics_.get());
  }
}

TelemetrySession::~TelemetrySession() {
  try {
    flush();
  } catch (...) {
    // Destructors must not throw; a failed dump loses telemetry, nothing
    // else.
  }
  if (tracer_ != nullptr && obs::tracer() == tracer_.get()) setTracer(nullptr);
  if (metrics_ != nullptr && obs::metrics() == metrics_.get()) {
    setMetrics(nullptr);
  }
}

void TelemetrySession::flush() {
  if (tracer_ != nullptr && !cfg_.traceOutPath.empty()) {
    writeFileOrThrow(cfg_.traceOutPath,
                     [this](std::ostream& os) { tracer_->writeChromeTrace(os); });
  }
  if (tracer_ != nullptr && !cfg_.traceSummaryPath.empty()) {
    writeFileOrThrow(cfg_.traceSummaryPath,
                     [this](std::ostream& os) { tracer_->writeSummary(os); });
  }
  if (metrics_ != nullptr && !cfg_.metricsOutPath.empty()) {
    writeFileOrThrow(cfg_.metricsOutPath,
                     [this](std::ostream& os) { metrics_->writeJson(os); });
  }
}

}  // namespace rahtm::obs
