#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace rahtm::obs {

const char* frEventName(FrEvent e) {
  switch (e) {
    case FrEvent::PhaseEnter: return "phase_enter";
    case FrEvent::PhaseExit: return "phase_exit";
    case FrEvent::SubproblemDispatch: return "subproblem_dispatch";
    case FrEvent::SimplexPivots: return "simplex_pivots";
    case FrEvent::MilpNodes: return "milp_nodes";
    case FrEvent::MilpIncumbent: return "milp_incumbent";
    case FrEvent::AnnealRestart: return "anneal_restart";
    case FrEvent::AnnealEpoch: return "anneal_epoch";
    case FrEvent::RefinePass: return "refine_pass";
    case FrEvent::SimnetEpoch: return "simnet_epoch";
    case FrEvent::PoolTaskBegin: return "pool_task_begin";
    case FrEvent::PoolTaskEnd: return "pool_task_end";
    case FrEvent::WatchdogStall: return "watchdog_stall";
    case FrEvent::Custom: return "custom";
    case FrEvent::kCount: break;
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* g = [] {
    std::size_t cap = kDefaultCapacity;
    if (const char* v = std::getenv("RAHTM_RECORDER_CAPACITY")) {
      char* end = nullptr;
      const long parsed = std::strtol(v, &end, 10);
      if (end != v && *end == '\0' && parsed > 0) {
        cap = static_cast<std::size_t>(parsed);
      }
    }
    // Leaked on purpose: instrumentation sites may record during static
    // destruction; a function-local static object could be torn down first.
    auto* rec = new FlightRecorder(cap);
    if (const char* v = std::getenv("RAHTM_RECORDER")) {
      if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0) {
        rec->setEnabled(false);
      }
    }
    return rec;
  }();
  return *g;
}

namespace {
/// Process-unique recorder ids: the thread-local slot cache in threadSlot()
/// keys on (address, generation), so a recorder constructed at a recycled
/// address (stack-allocated test recorders) can never inherit stale hits.
std::atomic<std::uint64_t> gNextRecorderGen{1};
}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacityPerThread, int maxThreads)
    : capacity_(std::max<std::size_t>(1, capacityPerThread)),
      maxThreads_(std::clamp(maxThreads, 1, kMaxThreads)),
      gen_(gNextRecorderGen.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()),
      storage_(capacity_ * static_cast<std::size_t>(maxThreads_)) {
  for (int i = 0; i < maxThreads_; ++i) {
    slots_[static_cast<std::size_t>(i)].ring =
        storage_.data() + static_cast<std::size_t>(i) * capacity_;
  }
  mem_.set(static_cast<std::int64_t>(storage_.capacity() *
                                     sizeof(FlightEventRecord)));
}

std::int64_t FlightRecorder::nowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int FlightRecorder::threadSlot() {
  // Small per-thread cache of (recorder -> slot). One global recorder is
  // the common case; tests with private recorders rotate through the
  // entries.
  struct Cache {
    const FlightRecorder* rec[4] = {nullptr, nullptr, nullptr, nullptr};
    std::uint64_t gen[4] = {0, 0, 0, 0};
    int slot[4] = {-1, -1, -1, -1};
    int next = 0;
  };
  thread_local Cache cache;
  for (int i = 0; i < 4; ++i) {
    if (cache.rec[i] == this && cache.gen[i] == gen_) return cache.slot[i];
  }
  const int s = registerThread();
  const int e = cache.next;
  cache.next = (cache.next + 1) & 3;
  cache.rec[e] = this;
  cache.gen[e] = gen_;
  cache.slot[e] = s;
  return s;
}

int FlightRecorder::registerThread() {
  const std::thread::id self = std::this_thread::get_id();
  // Re-scan first: the thread may already own a slot that fell out of its
  // cache (possible when several recorders interleave on one thread).
  const int n = threadSlots();
  for (int i = 0; i < n; ++i) {
    if (slots_[static_cast<std::size_t>(i)].owner.load(
            std::memory_order_acquire) == self) {
      return i;
    }
  }
  const int s = slotCount_.fetch_add(1, std::memory_order_acq_rel);
  if (s >= maxThreads_) return -1;  // table exhausted; events will drop
  slots_[static_cast<std::size_t>(s)].owner.store(self,
                                                  std::memory_order_release);
  return s;
}

std::uint64_t FlightRecorder::totalRecorded() const {
  std::uint64_t total = 0;
  const int n = threadSlots();
  for (int i = 0; i < n; ++i) {
    total += slots_[static_cast<std::size_t>(i)].head.load(
        std::memory_order_acquire);
  }
  return total;
}

std::size_t FlightRecorder::copySlot(int slot, FlightEventRecord* out,
                                     std::size_t max,
                                     std::uint64_t* totalOut) const {
  if (slot < 0 || slot >= threadSlots() || max == 0) {
    if (totalOut != nullptr) *totalOut = 0;
    return 0;
  }
  const Slot& sl = slots_[static_cast<std::size_t>(slot)];
  const std::uint64_t head = sl.head.load(std::memory_order_acquire);
  if (totalOut != nullptr) *totalOut = head;
  std::uint64_t count = head < capacity_ ? head : capacity_;
  if (count > max) count = max;
  const std::uint64_t start = head - count;
  for (std::uint64_t k = 0; k < count; ++k) {
    out[k] = sl.ring[(start + k) % capacity_];
  }
  return static_cast<std::size_t>(count);
}

std::vector<FlightRecorder::ThreadSnapshot> FlightRecorder::snapshot() const {
  std::vector<ThreadSnapshot> out;
  const int n = threadSlots();
  out.reserve(static_cast<std::size_t>(n));
  std::vector<FlightEventRecord> buf(capacity_);
  for (int i = 0; i < n; ++i) {
    ThreadSnapshot ts;
    ts.slot = i;
    const std::size_t got = copySlot(i, buf.data(), capacity_, &ts.total);
    ts.events.assign(buf.begin(),
                     buf.begin() + static_cast<std::ptrdiff_t>(got));
    out.push_back(std::move(ts));
  }
  return out;
}

}  // namespace rahtm::obs
