#pragma once
/// \file telemetry.hpp
/// Process-level telemetry session: owns a Tracer and/or MetricsRegistry,
/// installs them as the process globals, and dumps them to files on flush
/// (or destruction). This is the one-stop entry point the CLI tool and the
/// benchmark harnesses use:
///
///   obs::TelemetrySession session(obs::telemetryConfigFromEnv());
///   ... run the pipeline / simulator ...
///   // ~TelemetrySession writes the files and uninstalls the globals.
///
/// Environment variables (honored by telemetryConfigFromEnv):
///   RAHTM_TRACE_OUT    = path for Chrome trace_event JSON
///   RAHTM_TRACE_SUMMARY= path for the flat span-summary JSON
///   RAHTM_METRICS_OUT  = path for the metrics snapshot JSON
///
/// The metric name catalog (see DESIGN.md "Observability") is
/// pre-registered on session start so a metrics file always carries every
/// standard series, even those a particular run never touched.

#include <memory>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rahtm::obs {

struct TelemetryConfig {
  std::string traceOutPath;     ///< Chrome trace JSON ("" = tracing off)
  std::string traceSummaryPath; ///< flat summary JSON (needs tracing on)
  std::string metricsOutPath;   ///< metrics JSON ("" = metrics off)

  bool tracingEnabled() const {
    return !traceOutPath.empty() || !traceSummaryPath.empty();
  }
  bool metricsEnabled() const { return !metricsOutPath.empty(); }
  bool enabled() const { return tracingEnabled() || metricsEnabled(); }
};

/// Read RAHTM_TRACE_OUT / RAHTM_TRACE_SUMMARY / RAHTM_METRICS_OUT.
TelemetryConfig telemetryConfigFromEnv();

/// Register the standard metric series (counters and histograms with their
/// canonical bucket layouts) so snapshots always contain the full catalog.
void registerStandardMetrics(MetricsRegistry& registry);

class TelemetrySession {
 public:
  /// Installs the globals for every enabled facility. A disabled config
  /// constructs an inert session (enabled() == false, null accessors).
  explicit TelemetrySession(TelemetryConfig config);
  /// flush() + uninstall.
  ~TelemetrySession();
  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  bool enabled() const { return cfg_.enabled(); }
  Tracer* tracer() { return tracer_.get(); }
  MetricsRegistry* metrics() { return metrics_.get(); }

  /// Write every configured output file (rewrites on repeat calls).
  /// Throws rahtm::Error if a file cannot be written.
  void flush();

 private:
  TelemetryConfig cfg_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<MetricsRegistry> metrics_;
};

}  // namespace rahtm::obs
