#pragma once
/// \file flight_recorder.hpp
/// Always-on flight recorder: per-thread fixed-size ring buffers of compact
/// structured events, kept in pre-reserved memory so a crash or stall
/// handler can flush the last moments of every thread into a
/// `rahtm.postmortem/v1` artifact (obs/postmortem.hpp).
///
/// Unlike the opt-in tracer (obs/trace.hpp), the recorder is enabled by
/// default in every process that links obs — the runs that need forensics
/// are exactly the ones nobody thought to pass `--trace-out` to. The cost
/// model that makes always-on acceptable (gated <= 2% by the obs_overhead
/// suite):
///   * an event is 32 bytes, written into a per-thread ring with plain
///     stores plus one release store of the ring head — no locks, no
///     allocation, no clock syscalls beyond one steady_clock read;
///   * hot loops record *milestones* (every 2^k pivots / cycles /
///     iterations), not individual operations;
///   * rings are bounded: old events are overwritten, never reallocated.
///
/// Concurrency contract: each ring has exactly one writer (its owning
/// thread). Readers (watchdog, post-mortem writer, snapshot()) copy the
/// ring without stopping the writer; on a wrapped ring the *oldest* entries
/// race with the writer and may come out torn. That is deliberate — the
/// recorder is a forensic device, and a possibly-torn oldest event beats a
/// lock on the hot path. snapshot() is for tests and normal-path dumps;
/// copySlot() is the allocation-free crash-path primitive.
///
/// Environment:
///   RAHTM_RECORDER          = off|0 disables the global recorder
///   RAHTM_RECORDER_CAPACITY = events per thread ring (default 2048)

#include <atomic>
#include <array>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/mem.hpp"

namespace rahtm::obs {

/// Compact event kinds. Keep in sync with frEventName().
enum class FrEvent : std::uint16_t {
  PhaseEnter = 0,      ///< a = depth, b = 0             (name via phase stack)
  PhaseExit,           ///< a = depth, b = 0
  SubproblemDispatch,  ///< a = vertices, b = cube nodes
  SimplexPivots,       ///< a = pivots so far, b = rows   (milestone)
  MilpNodes,           ///< a = nodes explored, b = open  (milestone)
  MilpIncumbent,       ///< a = node index, b = objective (truncated)
  AnnealRestart,       ///< a = restart index, b = vertices
  AnnealEpoch,         ///< a = restart index, b = iteration (milestone)
  RefinePass,          ///< a = pass index, b = swaps applied so far
  SimnetEpoch,         ///< a = cycle, b = messages remaining (milestone)
  PoolTaskBegin,       ///< a = task index, b = region size
  PoolTaskEnd,         ///< a = task index, b = region size
  WatchdogStall,       ///< a = escalation stage, b = stalled seconds
  Custom,              ///< free-form (tests, tools)
  kCount,
};

/// Canonical snake_case name (JSON `code` field in post-mortems).
const char* frEventName(FrEvent e);

/// One recorded event. 32 bytes.
struct FlightEventRecord {
  std::int64_t tUs = 0;    ///< microseconds since the recorder's epoch
  std::int64_t a = 0;      ///< payload (meaning per FrEvent)
  std::int64_t b = 0;      ///< payload
  std::uint16_t code = 0;  ///< FrEvent
  std::uint16_t slot = 0;  ///< owning thread slot
  std::uint32_t pad = 0;
};

class FlightRecorder {
 public:
  static constexpr int kMaxThreads = 64;
  static constexpr std::size_t kDefaultCapacity = 2048;

  /// Process-global recorder; constructed (and its rings pre-reserved) on
  /// first use, honoring the RAHTM_RECORDER* environment variables.
  static FlightRecorder& instance();

  /// Direct construction is for tests and special tools; everything else
  /// goes through instance(). \p maxThreads is clamped to [1, kMaxThreads].
  explicit FlightRecorder(std::size_t capacityPerThread = kDefaultCapacity,
                          int maxThreads = kMaxThreads);

  /// Record one event on the calling thread's ring. Wait-free; drops (and
  /// counts) the event when the thread-slot table is exhausted or the
  /// recorder is disabled-at-runtime... disabled events are not counted as
  /// drops, they are simply off.
  void record(FrEvent code, std::int64_t a = 0, std::int64_t b = 0) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    const int s = threadSlot();
    if (s < 0) {
      droppedEvents_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Slot& sl = slots_[static_cast<std::size_t>(s)];
    const std::uint64_t h = sl.head.load(std::memory_order_relaxed);
    FlightEventRecord& e = sl.ring[h % capacity_];
    e.tUs = nowUs();
    e.a = a;
    e.b = b;
    e.code = static_cast<std::uint16_t>(code);
    e.slot = static_cast<std::uint16_t>(s);
    sl.head.store(h + 1, std::memory_order_release);
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void setEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Microseconds since this recorder's construction (steady clock).
  std::int64_t nowUs() const;

  std::size_t capacity() const { return capacity_; }
  /// Registered thread slots so far.
  int threadSlots() const {
    const int n = slotCount_.load(std::memory_order_acquire);
    return n > maxThreads_ ? maxThreads_ : n;
  }
  /// Events dropped because the slot table was exhausted.
  std::int64_t droppedEvents() const {
    return droppedEvents_.load(std::memory_order_relaxed);
  }
  /// Total events ever recorded across all slots (ring overwrites are not
  /// drops; this counts what was written, not what is still resident).
  std::uint64_t totalRecorded() const;

  /// Copy the newest events of \p slot (at most \p max) into \p out in
  /// oldest-first order; returns the count. \p totalOut (optional) receives
  /// the slot's lifetime event count. Allocation-free and lock-free: safe
  /// from the watchdog thread and tolerable from a signal handler.
  std::size_t copySlot(int slot, FlightEventRecord* out, std::size_t max,
                       std::uint64_t* totalOut = nullptr) const;

  struct ThreadSnapshot {
    int slot = 0;
    std::uint64_t total = 0;  ///< lifetime events on this slot
    std::vector<FlightEventRecord> events;  ///< resident, oldest first
  };
  /// Copy of every registered slot's resident events (normal path only).
  std::vector<ThreadSnapshot> snapshot() const;

 private:
  struct alignas(64) Slot {
    std::atomic<std::thread::id> owner{};
    std::atomic<std::uint64_t> head{0};
    FlightEventRecord* ring = nullptr;
  };

  int threadSlot();
  int registerThread();

  std::size_t capacity_;
  int maxThreads_;
  std::uint64_t gen_;  ///< process-unique id for the thread-slot cache
  std::chrono::steady_clock::time_point epoch_;
  std::vector<FlightEventRecord> storage_;  ///< pre-reserved, never resized
  std::array<Slot, kMaxThreads> slots_;
  std::atomic<int> slotCount_{0};
  std::atomic<std::int64_t> droppedEvents_{0};
  std::atomic<bool> enabled_{true};
  obs::MemAccount mem_{obs::MemAccountId::Obs};  ///< pre-reserved ring storage
};

}  // namespace rahtm::obs
