#pragma once
/// \file watchdog.hpp
/// Stall watchdog for the run-forensics layer.
///
/// A dedicated thread samples the global heartbeat counters
/// (obs/heartbeat.hpp) every poll interval. As long as any counter moved —
/// or the phase stack changed — the run is making progress. When nothing
/// moves for longer than the active phase's deadline, the watchdog
/// escalates in stages, each gated by the configured ceiling action:
///   stage 1 (deadline):      log a stall report with the last heartbeats
///   stage 2 (2 x deadline):  write a `rahtm.postmortem/v1` artifact
///   stage 3 (3 x deadline):  std::abort() (the abort itself produces a
///                            second post-mortem via the SIGABRT handler)
///
/// Deadlines are per-phase: RAHTM_WATCHDOG_PHASES=milp=30,simnet.run=120
/// overrides the default RAHTM_WATCHDOG_SEC for phases whose published name
/// matches a key exactly or by prefix (so `rahtm.phase.refine` matches a
/// `rahtm.phase` key). The watchdog never fires outside any phase — idle
/// tool startup/teardown is not a stall.
///
/// Environment (CLI flags in tools/ override these):
///   RAHTM_WATCHDOG          = off|0 disables
///   RAHTM_WATCHDOG_POLL_MS  = poll interval (default 250)
///   RAHTM_WATCHDOG_SEC      = default per-phase deadline (default 60)
///   RAHTM_WATCHDOG_PHASES   = name=seconds,name=seconds overrides
///   RAHTM_WATCHDOG_ACTION   = log|dump|abort escalation ceiling
///                             (default dump)

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace rahtm::obs {

enum class WatchdogAction : int {
  Log = 1,   ///< escalate no further than logging
  Dump = 2,  ///< log, then write a post-mortem artifact
  Abort = 3, ///< log, dump, then abort the process
};

struct WatchdogConfig {
  bool enabled = true;
  int pollMs = 250;
  double defaultDeadlineSec = 60.0;
  /// Phase-name (exact or prefix) -> deadline seconds.
  std::vector<std::pair<std::string, double>> phaseDeadlines;
  WatchdogAction action = WatchdogAction::Dump;
  /// Directory for stage-2 post-mortem artifacts ("" = current dir).
  std::string postmortemDir;
};

/// Config from the RAHTM_WATCHDOG* environment variables.
WatchdogConfig watchdogConfigFromEnv();

/// Parse "name=seconds,name=seconds" into phase deadlines (throws
/// rahtm::ParseError on malformed input).
std::vector<std::pair<std::string, double>> parsePhaseDeadlines(
    const std::string& spec);

class Watchdog {
 public:
  explicit Watchdog(WatchdogConfig cfg);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Spawn the watchdog thread. No-op when disabled or already started.
  void start();
  /// Stop and join the thread. Safe to call repeatedly; the destructor
  /// calls it.
  void stop();

  bool running() const { return thread_.joinable(); }
  /// Stall episodes detected so far (an episode counts once, at stage 1).
  std::int64_t stallsDetected() const {
    return stalls_.load(std::memory_order_relaxed);
  }
  /// Highest escalation stage reached in the current/last episode (0 =
  /// none, 1 = logged, 2 = dumped, 3 = aborted-requested).
  int lastStage() const { return lastStage_.load(std::memory_order_relaxed); }

  /// Test hook: called on every escalation with (stage, phase-or-"",
  /// stalledSeconds) from the watchdog thread, instead of the default
  /// stage-3 abort when set. Set before start().
  void setOnStall(
      std::function<void(int, const std::string&, double)> onStall) {
    onStall_ = std::move(onStall);
  }

  /// Deadline for \p phase (nullptr = outside any phase -> returns the
  /// default). Exposed for tests.
  double deadlineFor(const char* phase) const;

 private:
  void loop();

  WatchdogConfig cfg_;
  std::function<void(int, const std::string&, double)> onStall_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopRequested_ = false;
  std::atomic<std::int64_t> stalls_{0};
  std::atomic<int> lastStage_{0};
};

}  // namespace rahtm::obs
