#include "obs/heartbeat.hpp"

#include <cstdlib>
#include <cstring>

#include "obs/flight_recorder.hpp"

namespace rahtm::obs {

const char* pulseName(Pulse p) {
  switch (p) {
    case Pulse::SimplexPivots: return "simplex_pivots";
    case Pulse::MilpNodes: return "milp_nodes";
    case Pulse::AnnealIterations: return "anneal_iterations";
    case Pulse::RefineProbes: return "refine_probes";
    case Pulse::SimnetCycles: return "simnet_cycles";
    case Pulse::PoolTasks: return "pool_tasks";
    case Pulse::kCount: break;
  }
  return "unknown";
}

Heartbeats& Heartbeats::instance() {
  // Leaked for the same reason as the flight recorder: hot loops may beat
  // during static destruction of other translation units.
  static Heartbeats* g = [] {
    auto* hb = new Heartbeats();
    if (const char* v = std::getenv("RAHTM_HEARTBEATS")) {
      if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0) {
        hb->setEnabled(false);
      }
    }
    return hb;
  }();
  return *g;
}

Heartbeats::Heartbeats() = default;

int Heartbeats::stripeOfThisThread() {
  static std::atomic<unsigned> next{0};
  thread_local int stripe =
      static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) &
                       static_cast<unsigned>(kStripes - 1));
  return stripe;
}

std::uint64_t Heartbeats::value(Pulse p) const {
  std::uint64_t sum = 0;
  for (int s = 0; s < kStripes; ++s) {
    sum += cell(p, s).load(std::memory_order_relaxed);
  }
  return sum;
}

std::vector<std::pair<const char*, std::uint64_t>> Heartbeats::snapshot()
    const {
  std::vector<std::pair<const char*, std::uint64_t>> out;
  out.reserve(static_cast<std::size_t>(kPulseCount));
  for (int p = 0; p < kPulseCount; ++p) {
    const Pulse pulse = static_cast<Pulse>(p);
    out.emplace_back(pulseName(pulse), value(pulse));
  }
  return out;
}

void Heartbeats::pushPhase(const char* name) {
  std::lock_guard<std::mutex> lock(phaseMu_);
  const int d = phaseDepth_.load(std::memory_order_relaxed);
  if (d < kMaxPhaseDepth) {
    phaseStack_[static_cast<std::size_t>(d)].store(name,
                                                   std::memory_order_relaxed);
    phaseStartUs_[static_cast<std::size_t>(d)].store(
        FlightRecorder::instance().nowUs(), std::memory_order_relaxed);
  }
  phaseDepth_.store(d + 1, std::memory_order_release);
}

void Heartbeats::popPhase() {
  std::lock_guard<std::mutex> lock(phaseMu_);
  const int d = phaseDepth_.load(std::memory_order_relaxed);
  if (d <= 0) return;
  phaseDepth_.store(d - 1, std::memory_order_release);
}

const char* Heartbeats::currentPhase() const {
  int d = phaseDepth_.load(std::memory_order_acquire);
  if (d <= 0) return nullptr;
  if (d > kMaxPhaseDepth) d = kMaxPhaseDepth;
  return phaseStack_[static_cast<std::size_t>(d - 1)].load(
      std::memory_order_relaxed);
}

const char* Heartbeats::phaseAt(int idx) const {
  int d = phaseDepth_.load(std::memory_order_acquire);
  if (d > kMaxPhaseDepth) d = kMaxPhaseDepth;
  if (idx < 0 || idx >= d) return nullptr;
  return phaseStack_[static_cast<std::size_t>(idx)].load(
      std::memory_order_relaxed);
}

int Heartbeats::phaseDepth() const {
  return phaseDepth_.load(std::memory_order_acquire);
}

std::int64_t Heartbeats::currentPhaseStartUs() const {
  int d = phaseDepth_.load(std::memory_order_acquire);
  if (d <= 0) return 0;
  if (d > kMaxPhaseDepth) d = kMaxPhaseDepth;
  return phaseStartUs_[static_cast<std::size_t>(d - 1)].load(
      std::memory_order_relaxed);
}

PhaseScope::PhaseScope(const char* name) : name_(name) {
  Heartbeats& hb = Heartbeats::instance();
  hb.pushPhase(name_);
  FlightRecorder::instance().record(FrEvent::PhaseEnter, hb.phaseDepth(), 0);
}

PhaseScope::~PhaseScope() {
  Heartbeats& hb = Heartbeats::instance();
  FlightRecorder::instance().record(FrEvent::PhaseExit, hb.phaseDepth(), 0);
  hb.popPhase();
}

}  // namespace rahtm::obs
