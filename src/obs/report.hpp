#pragma once
/// \file report.hpp
/// The benchmark ledger: a canonical, versioned JSON record of one
/// benchmark suite's measured results plus the environment fingerprint
/// needed to interpret them (git SHA, compiler, build type, experiment
/// scale, thread count, wall time, peak RSS).
///
/// The paper's argument is a set of measured deltas (MCL, hop-bytes,
/// simulated cycles, mapping time); this layer makes the reproduction's own
/// numbers machine-readable so they can be diffed across commits and gated
/// in CI (`rahtm_bench --baseline FILE --check`, tools/rahtm_bench.cpp).
///
/// Writing uses json.hpp; reading uses json_reader.hpp. The writer emits
/// keys in a fixed order (golden-file tested) so ledgers diff cleanly under
/// version control.

#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace rahtm::obs {

struct JsonValue;

/// Schema identifier embedded in every ledger file. Bump the version when
/// the layout changes incompatibly; readers reject unknown schemas.
inline constexpr const char* kReportSchema = "rahtm.bench.report/v1";

/// Where and how a ledger was produced. The scale fields mirror the
/// RAHTM_NODES / RAHTM_CONC / RAHTM_BYTES / RAHTM_SIM_ITERS experiment
/// knobs (bench/experiment.hpp) so a regression check can re-run the suite
/// at the baseline's scale regardless of the current environment.
struct EnvFingerprint {
  std::string gitSha = "unknown";
  std::string compiler = "unknown";
  std::string buildType = "unknown";
  std::string os = "unknown";
  std::int64_t nodes = 0;
  std::int64_t concentration = 0;
  std::int64_t messageBytes = 0;
  std::int64_t simIterations = 0;
  std::int64_t threads = 0;
  double wallSeconds = 0;
  std::int64_t peakRssBytes = 0;
};

/// Fill the build/host half of the fingerprint (git SHA, compiler, build
/// type, OS, wall clock, peak RSS). Scale fields are the caller's.
EnvFingerprint currentEnvFingerprint();

/// The ledger's "mem" section: per-subsystem accounted peak bytes
/// (obs/mem.hpp) next to the process VmHWM they are meant to explain.
/// `rssCoverage` = accountedPeakBytes / (peakRssBytes - baselineRssBytes):
/// how much of the process's RSS *growth* past its startup baseline (code
/// pages, libc, allocator warmup — bytes no subsystem owns) the accounting
/// attributes. When it decays, the accounting has a coverage hole, not the
/// program a leak. Optional in the schema so ledgers written before the
/// accounting era still parse.
struct MemSection {
  bool present = false;
  /// (account name, peak bytes) in the fixed MemAccountId order.
  std::vector<std::pair<std::string, std::int64_t>> accounts;
  std::int64_t accountedPeakBytes = 0;
  std::int64_t baselineRssBytes = 0;
  std::int64_t peakRssBytes = 0;
  double rssCoverage = 0;
};

/// Snapshot the global MemRegistry (plus VmHWM) into a ledger section.
MemSection currentMemSection();

/// One measured configuration: a (benchmark, mapper) cell with its metric
/// values in canonical order. The standard metric names are "comm_cycles",
/// "mcl", "hop_bytes" and "map_seconds"; suites may add their own.
struct RunRecord {
  std::string benchmark;
  std::string mapper;
  std::vector<std::pair<std::string, double>> metrics;

  void add(const std::string& name, double value) {
    metrics.emplace_back(name, value);
  }
  bool has(const std::string& name) const;
  double metricOr(const std::string& name, double fallback) const;
};

/// A complete ledger: suite name, environment fingerprint, records.
struct RunReport {
  std::string suite;
  EnvFingerprint env;
  MemSection mem;
  std::vector<RunRecord> records;

  const RunRecord* find(const std::string& benchmark,
                        const std::string& mapper) const;

  /// Serialize as canonical JSON (fixed key order, 2-space indent).
  void writeJson(std::ostream& os) const;
};

/// Schema validation: every problem found in a parsed ledger document
/// (wrong schema string, missing keys, mistyped members). Empty == valid.
std::vector<std::string> validateReportJson(const JsonValue& doc);

/// Parse a ledger back. Throws rahtm::ParseError when the document is
/// malformed or fails schema validation.
RunReport readReport(std::istream& in);
RunReport readReportFile(const std::string& path);

// ---- Regression gate ------------------------------------------------------

/// Per-metric relative thresholds (|delta| / max(|baseline|, 1e-12)). All
/// standard metrics are lower-is-better: exceeding the threshold upward is
/// a regression, exceeding it downward is flagged as an improvement (a hint
/// that the baseline is stale) but passes.
using ThresholdMap = std::map<std::string, double>;

/// Defaults: mcl 2%, hop_bytes 2%, comm_cycles 5%, map_seconds unlimited
/// (wall time is noisy; it is reported, never gated). Unknown metrics use
/// kDefaultThreshold.
ThresholdMap defaultThresholds();
inline constexpr double kDefaultThreshold = 0.05;

struct MetricCheck {
  std::string benchmark;
  std::string mapper;
  std::string metric;
  double baseline = 0;
  double current = 0;
  double relDelta = 0;   ///< (current - baseline) / max(|baseline|, 1e-12)
  double threshold = 0;  ///< applied relative threshold
  bool regression = false;
  bool improvement = false;  ///< beyond threshold in the good direction
};

struct CheckResult {
  std::vector<MetricCheck> checks;
  /// Structural failures: suite/scale mismatch, records or metrics missing
  /// from the candidate. Any entry fails the gate.
  std::vector<std::string> problems;

  bool pass() const;
  std::size_t regressions() const;
};

/// Compare a candidate ledger against a committed baseline under the given
/// thresholds. Records are matched by (benchmark, mapper); extra candidate
/// records are ignored (new configurations do not fail old gates).
CheckResult compareReports(const RunReport& baseline,
                           const RunReport& candidate,
                           const ThresholdMap& thresholds);

/// Human-readable check table (one line per metric) plus problems; used by
/// `rahtm_bench --check` and handy in test failure output.
void printCheckResult(std::ostream& os, const CheckResult& result);

}  // namespace rahtm::obs
