#include "obs/postmortem.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/flight_recorder.hpp"
#include "obs/heartbeat.hpp"
#include "obs/json.hpp"
#include "obs/json_reader.hpp"
#include "obs/mem.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace rahtm::obs {

namespace {

/// Most-recent events serialized per thread ring (bounds the artifact and
/// the pre-reserved serialization buffer whatever RAHTM_RECORDER_CAPACITY
/// says).
constexpr std::size_t kMaxEventsPerThread = 512;

/// Bounded append-only character buffer over pre-reserved storage. All
/// writes are plain byte stores + snprintf; nothing allocates.
class Buf {
 public:
  Buf(char* data, std::size_t cap) : data_(data), cap_(cap) {}

  void ch(char c) {
    if (len_ + 1 >= cap_) { overflow_ = true; return; }
    data_[len_++] = c;
  }
  void raw(const char* s) {
    while (*s != '\0') ch(*s++);
  }
  /// JSON string literal (quotes included) with escaping.
  void esc(const char* s) {
    ch('"');
    for (; s != nullptr && *s != '\0'; ++s) {
      const unsigned char c = static_cast<unsigned char>(*s);
      if (c == '"' || c == '\\') { ch('\\'); ch(static_cast<char>(c)); }
      else if (c == '\n') raw("\\n");
      else if (c == '\t') raw("\\t");
      else if (c == '\r') raw("\\r");
      else if (c < 0x20) {
        char tmp[8];
        std::snprintf(tmp, sizeof(tmp), "\\u%04x", c);
        raw(tmp);
      } else {
        ch(static_cast<char>(c));
      }
    }
    ch('"');
  }
  void i64(long long v) {
    char tmp[24];
    std::snprintf(tmp, sizeof(tmp), "%lld", v);
    raw(tmp);
  }
  void u64(unsigned long long v) {
    char tmp[24];
    std::snprintf(tmp, sizeof(tmp), "%llu", v);
    raw(tmp);
  }
  void dbl(double v) {
    if (!std::isfinite(v)) { raw("0"); return; }
    char tmp[40];
    std::snprintf(tmp, sizeof(tmp), "%.17g", v);
    raw(tmp);
  }

  const char* data() const { return data_; }
  std::size_t size() const { return len_; }
  bool overflow() const { return overflow_; }

 private:
  char* data_;
  std::size_t cap_;
  std::size_t len_ = 0;
  bool overflow_ = false;
};

/// All crash-path state, pre-reserved in normal context. Leaked singleton.
struct PmState {
  char dir[512] = ".";
  char envStatic[4096] = "";  ///< pre-rendered static env members
  std::vector<char> buf;      ///< serialization buffer
  std::vector<FlightEventRecord> ringCopy;  ///< one slot's newest events
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::atomic<bool> writing{false};
  bool handlersInstalled = false;
  std::vector<char> altstack;
};

std::atomic<PmState*> gState{nullptr};
std::mutex gInitMu;

/// /proc/self/status VmHWM in bytes via raw syscalls (the ifstream-based
/// obs/process.hpp reader allocates and is off-limits in a handler).
long long rawPeakRssBytes() {
  const int fd = ::open("/proc/self/status", O_RDONLY);
  if (fd < 0) return 0;
  char buf[8192];
  const ssize_t n = ::read(fd, buf, sizeof(buf) - 1);
  ::close(fd);
  if (n <= 0) return 0;
  buf[n] = '\0';
  const char* p = std::strstr(buf, "VmHWM:");
  if (p == nullptr) return 0;
  p += 6;
  while (*p == ' ' || *p == '\t') ++p;
  long long kb = 0;
  while (*p >= '0' && *p <= '9') kb = kb * 10 + (*p++ - '0');
  return kb * 1024;
}

void renderEnvStatic(PmState& st) {
  // Pre-render the members of "environment" that cannot change after
  // startup; wall_seconds/peak_rss_bytes are appended at crash time. The
  // scale fields are zero — a post-mortem is not a ledger and carries no
  // experiment scale.
  const EnvFingerprint env = currentEnvFingerprint();
  std::ostringstream os;
  os << "    \"git_sha\": " << jsonString(env.gitSha) << ",\n"
     << "    \"compiler\": " << jsonString(env.compiler) << ",\n"
     << "    \"build_type\": " << jsonString(env.buildType) << ",\n"
     << "    \"os\": " << jsonString(env.os) << ",\n"
     << "    \"nodes\": 0,\n"
     << "    \"concentration\": 0,\n"
     << "    \"message_bytes\": 0,\n"
     << "    \"sim_iterations\": 0,\n"
     << "    \"threads\": "
     << static_cast<long long>(std::thread::hardware_concurrency()) << ",\n";
  const std::string s = os.str();
  std::snprintf(st.envStatic, sizeof(st.envStatic), "%s", s.c_str());
}

void captureMetrics(PmState& st) {
  st.counters.clear();
  st.gauges.clear();
  if (MetricsRegistry* m = metrics()) {
    st.counters = m->counterRefs();
    st.gauges = m->gaugeRefs();
  }
}

PmState& stateLocked() {
  // Callers hold gInitMu (normal context only).
  PmState* st = gState.load(std::memory_order_acquire);
  if (st != nullptr) return *st;
  st = new PmState();  // leaked: must outlive every possible crash
  const FlightRecorder& fr = FlightRecorder::instance();
  const std::size_t perThread =
      fr.capacity() < kMaxEventsPerThread ? fr.capacity()
                                          : kMaxEventsPerThread;
  st->ringCopy.resize(perThread);
  st->buf.resize((1u << 20) + static_cast<std::size_t>(
                                  FlightRecorder::kMaxThreads) *
                                  perThread * 96);
  std::snprintf(st->dir, sizeof(st->dir), "%s",
                postmortemDirFromEnv().c_str());
  renderEnvStatic(*st);
  captureMetrics(*st);
  // Charge the pre-reserved crash buffers to the obs account, and force the
  // memory registry into existence here, in normal context — the crash-time
  // memory section must only read already-constructed atomics.
  track(MemAccountId::Obs,
        static_cast<std::int64_t>(
            st->buf.capacity() +
            st->ringCopy.capacity() * sizeof(FlightEventRecord)));
  gState.store(st, std::memory_order_release);
  return *st;
}

struct SpanVisitCtx {
  Buf* b = nullptr;
  bool first = true;
};

void visitOpenSpan(void* ctxRaw, const TraceEvent& e) {
  auto* ctx = static_cast<SpanVisitCtx*>(ctxRaw);
  if (!ctx->first) ctx->b->raw(",\n");
  ctx->first = false;
  ctx->b->raw("    {\"name\": ");
  ctx->b->esc(e.name.c_str());
  ctx->b->raw(", \"category\": ");
  ctx->b->esc(e.category.c_str());
  ctx->b->raw(", \"start_us\": ");
  ctx->b->i64(e.startUs);
  ctx->b->raw(", \"tid\": ");
  ctx->b->i64(e.tid);
  ctx->b->ch('}');
}

void buildJson(PmState& st, Buf& b, const char* reason, int signo) {
  FlightRecorder& fr = FlightRecorder::instance();
  Heartbeats& hb = Heartbeats::instance();

  b.raw("{\n  \"schema\": \"");
  b.raw(kPostmortemSchema);
  b.raw("\",\n  \"reason\": ");
  b.esc(reason);
  b.raw(",\n  \"signal\": ");
  b.i64(signo);
  b.raw(",\n  \"t_us\": ");
  b.i64(fr.nowUs());

  // Phase stack, outermost first.
  b.raw(",\n  \"phase\": ");
  if (const char* phase = hb.currentPhase()) b.esc(phase);
  else b.raw("null");
  b.raw(",\n  \"phase_start_us\": ");
  b.i64(hb.currentPhaseStartUs());
  b.raw(",\n  \"phase_stack\": [");
  int depth = hb.phaseDepth();
  if (depth > Heartbeats::kMaxPhaseDepth) depth = Heartbeats::kMaxPhaseDepth;
  for (int i = 0; i < depth; ++i) {
    if (i != 0) b.raw(", ");
    const char* name = hb.phaseAt(i);
    b.esc(name != nullptr ? name : "?");
  }
  b.raw("]");

  b.raw(",\n  \"heartbeats\": {");
  for (int p = 0; p < kPulseCount; ++p) {
    if (p != 0) b.raw(", ");
    b.esc(pulseName(static_cast<Pulse>(p)));
    b.raw(": ");
    b.u64(hb.value(static_cast<Pulse>(p)));
  }
  b.raw("}");

  b.raw(",\n  \"recorder\": {\n    \"capacity\": ");
  b.u64(fr.capacity());
  b.raw(",\n    \"dropped_events\": ");
  b.i64(fr.droppedEvents());
  b.raw(",\n    \"total_recorded\": ");
  b.u64(fr.totalRecorded());
  b.raw(",\n    \"threads\": [");
  const int slots = fr.threadSlots();
  for (int s = 0; s < slots; ++s) {
    std::uint64_t total = 0;
    const std::size_t got =
        fr.copySlot(s, st.ringCopy.data(), st.ringCopy.size(), &total);
    b.raw(s == 0 ? "\n" : ",\n");
    b.raw("      {\"slot\": ");
    b.i64(s);
    b.raw(", \"total\": ");
    b.u64(total);
    b.raw(", \"events\": [");
    for (std::size_t k = 0; k < got; ++k) {
      const FlightEventRecord& e = st.ringCopy[k];
      if (k != 0) b.raw(",");
      b.raw("\n        {\"t_us\": ");
      b.i64(e.tUs);
      b.raw(", \"code\": ");
      b.esc(frEventName(static_cast<FrEvent>(e.code)));
      b.raw(", \"a\": ");
      b.i64(e.a);
      b.raw(", \"b\": ");
      b.i64(e.b);
      b.ch('}');
    }
    if (got != 0) b.raw("\n      ");
    b.raw("]}");
  }
  if (slots != 0) b.raw("\n    ");
  b.raw("]\n  }");

  b.raw(",\n  \"open_spans\": [");
  {
    SpanVisitCtx ctx;
    ctx.b = &b;
    if (Tracer* t = tracer()) {
      if (t->tryVisitOpenSpans(&visitOpenSpan, &ctx)) {
        if (!ctx.first) b.raw("\n  ");
      }
    }
  }
  b.raw("]");

  b.raw(",\n  \"metrics\": {\n    \"counters\": {");
  for (std::size_t i = 0; i < st.counters.size(); ++i) {
    if (i != 0) b.raw(", ");
    b.esc(st.counters[i].first.c_str());
    b.raw(": ");
    b.i64(st.counters[i].second->value());
  }
  b.raw("},\n    \"gauges\": {");
  for (std::size_t i = 0; i < st.gauges.size(); ++i) {
    if (i != 0) b.raw(", ");
    b.esc(st.gauges[i].first.c_str());
    b.raw(": ");
    b.dbl(st.gauges[i].second->value());
  }
  b.raw("}\n  }");

  // Memory section: everything here is a relaxed atomic load from the
  // (leaked, already-constructed) registry — no locks, no allocation, so
  // it is as signal-safe as the heartbeat block above. An OOM-adjacent
  // crash is precisely when the per-subsystem breakdown matters most.
  {
    MemRegistry& mem = MemRegistry::instance();
    b.raw(",\n  \"memory\": {\n    \"accounts\": {");
    for (int i = 0; i < kMemAccountCount; ++i) {
      const auto id = static_cast<MemAccountId>(i);
      if (i != 0) b.raw(", ");
      b.esc(memAccountName(id));
      b.raw(": {\"current_bytes\": ");
      b.i64(mem.currentBytes(id));
      b.raw(", \"peak_bytes\": ");
      b.i64(mem.peakBytes(id));
      b.ch('}');
    }
    b.raw("},\n    \"accounted_current_bytes\": ");
    b.i64(mem.totalCurrentBytes());
    b.raw(",\n    \"accounted_peak_bytes\": ");
    b.i64(mem.totalPeakBytes());
    b.raw(",\n    \"baseline_rss_bytes\": ");
    b.i64(mem.baselineRssBytes());
    b.raw(",\n    \"sampled_rss_bytes\": ");
    b.i64(mem.sampledRssBytes());
    b.raw(",\n    \"sampled_rss_peak_bytes\": ");
    b.i64(mem.sampledRssPeakBytes());
    b.raw(",\n    \"budget_bytes\": ");
    b.i64(mem.budgetBytes());
    b.raw(",\n    \"budget_stage\": ");
    b.i64(mem.budgetStage());
    b.raw("\n  }");
  }

  b.raw(",\n  \"environment\": {\n");
  b.raw(st.envStatic);
  b.raw("    \"wall_seconds\": ");
  b.dbl(static_cast<double>(fr.nowUs()) * 1e-6);
  b.raw(",\n    \"peak_rss_bytes\": ");
  b.i64(rawPeakRssBytes());
  b.raw("\n  }\n}\n");
}

/// The core writer: safe from signal context once the state exists.
/// Returns true when the artifact was fully written.
bool writeArtifact(PmState& st, const char* reason, int signo,
                   const char* dirOverride) {
  bool expected = false;
  if (!st.writing.compare_exchange_strong(expected, true)) return false;

  char path[640];
  const char* dir = (dirOverride != nullptr && dirOverride[0] != '\0')
                        ? dirOverride
                        : st.dir;
  std::snprintf(path, sizeof(path), "%s/postmortem.%s.json", dir, reason);

  Buf b(st.buf.data(), st.buf.size());
  buildJson(st, b, reason, signo);

  bool ok = false;
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    std::size_t off = 0;
    ok = true;
    while (off < b.size()) {
      const ssize_t n = ::write(fd, b.data() + off, b.size() - off);
      if (n <= 0) { ok = false; break; }
      off += static_cast<std::size_t>(n);
    }
    ::close(fd);
  }
  ok = ok && !b.overflow();
  st.writing.store(false, std::memory_order_release);
  return ok;
}

const char* reasonForSignal(int signo) {
  switch (signo) {
    case SIGSEGV: return "sigsegv";
    case SIGABRT: return "sigabrt";
    case SIGBUS: return "sigbus";
    case SIGFPE: return "sigfpe";
    default: return "signal";
  }
}

void onFatalSignal(int signo) {
  if (PmState* st = gState.load(std::memory_order_acquire)) {
    writeArtifact(*st, reasonForSignal(signo), signo, nullptr);
  }
  // SA_RESETHAND restored the default disposition on entry; re-raising
  // terminates with the original signal's wait status and core behavior.
  ::raise(signo);
}

[[noreturn]] void onTerminate() {
  if (PmState* st = gState.load(std::memory_order_acquire)) {
    writeArtifact(*st, "terminate", 0, nullptr);
  }
  // abort() raises SIGABRT, which writes postmortem.sigabrt.json too —
  // distinct artifacts, deliberate.
  std::abort();
}

void installHandlers(PmState& st) {
  if (st.handlersInstalled) return;
  st.handlersInstalled = true;

  st.altstack.resize(static_cast<std::size_t>(SIGSTKSZ) * 4);
  stack_t ss;
  std::memset(&ss, 0, sizeof(ss));
  ss.ss_sp = st.altstack.data();
  ss.ss_size = st.altstack.size();
  ::sigaltstack(&ss, nullptr);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &onFatalSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_ONSTACK | SA_RESETHAND;
  for (const int signo : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    ::sigaction(signo, &sa, nullptr);
  }
  std::set_terminate(&onTerminate);
}

}  // namespace

std::string postmortemDirFromEnv() {
  const char* v = std::getenv("RAHTM_POSTMORTEM_DIR");
  if (v == nullptr || *v == '\0') return ".";
  return v;
}

void installPostmortem(const std::string& dir) {
  std::lock_guard<std::mutex> lock(gInitMu);
  PmState& st = stateLocked();
  if (!dir.empty()) {
    std::snprintf(st.dir, sizeof(st.dir), "%s", dir.c_str());
  }
  captureMetrics(st);
  installHandlers(st);
}

bool postmortemInstalled() {
  const PmState* st = gState.load(std::memory_order_acquire);
  return st != nullptr && st->handlersInstalled;
}

bool writePostmortemNow(const char* reason, const char* dirOverride) {
  PmState* st = nullptr;
  {
    std::lock_guard<std::mutex> lock(gInitMu);
    st = &stateLocked();
    captureMetrics(*st);  // normal context: pick up late-registered metrics
  }
  return writeArtifact(*st, reason != nullptr ? reason : "manual", 0,
                       dirOverride);
}

std::string postmortemPathFor(const char* reason, const std::string& dir) {
  const std::string d = dir.empty() ? postmortemDirFromEnv() : dir;
  return d + "/postmortem." + (reason != nullptr ? reason : "manual") +
         ".json";
}

std::vector<std::string> validatePostmortemJson(const JsonValue& doc) {
  std::vector<std::string> problems;
  const auto problem = [&](const std::string& p) { problems.push_back(p); };
  if (!doc.isObject()) {
    problem("document is not a JSON object");
    return problems;
  }
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->isString()) {
    problem("missing string key 'schema'");
  } else if (schema->str != kPostmortemSchema) {
    problem("unknown schema '" + schema->str + "' (expected " +
            std::string(kPostmortemSchema) + ")");
  }
  const JsonValue* reason = doc.find("reason");
  if (reason == nullptr || !reason->isString() || reason->str.empty()) {
    problem("missing non-empty string key 'reason'");
  }
  for (const char* key : {"signal", "t_us", "phase_start_us"}) {
    const JsonValue* v = doc.find(key);
    if (v == nullptr || !v->isNumber()) {
      problem(std::string("missing number key '") + key + "'");
    }
  }
  const JsonValue* stack = doc.find("phase_stack");
  if (stack == nullptr || !stack->isArray()) {
    problem("missing array key 'phase_stack'");
  } else {
    for (const JsonValue& p : stack->array) {
      if (!p.isString()) problem("phase_stack: entry is not a string");
    }
  }
  const JsonValue* hb = doc.find("heartbeats");
  if (hb == nullptr || !hb->isObject()) {
    problem("missing object key 'heartbeats'");
  } else {
    for (const auto& [name, v] : hb->object) {
      if (!v.isNumber()) {
        problem("heartbeats: '" + name + "' is not a number");
      }
    }
  }
  const JsonValue* rec = doc.find("recorder");
  if (rec == nullptr || !rec->isObject()) {
    problem("missing object key 'recorder'");
  } else {
    for (const char* key : {"capacity", "dropped_events", "total_recorded"}) {
      const JsonValue* v = rec->find(key);
      if (v == nullptr || !v->isNumber()) {
        problem(std::string("recorder: missing number '") + key + "'");
      }
    }
    const JsonValue* threads = rec->find("threads");
    if (threads == nullptr || !threads->isArray()) {
      problem("recorder: missing array 'threads'");
    } else {
      for (std::size_t i = 0; i < threads->array.size(); ++i) {
        const JsonValue& t = threads->array[i];
        const std::string where = "recorder.threads[" + std::to_string(i) + "]";
        if (!t.isObject()) {
          problem(where + ": not an object");
          continue;
        }
        for (const char* key : {"slot", "total"}) {
          const JsonValue* v = t.find(key);
          if (v == nullptr || !v->isNumber()) {
            problem(where + ": missing number '" + std::string(key) + "'");
          }
        }
        const JsonValue* events = t.find("events");
        if (events == nullptr || !events->isArray()) {
          problem(where + ": missing array 'events'");
          continue;
        }
        for (const JsonValue& e : events->array) {
          if (!e.isObject() || e.find("t_us") == nullptr ||
              e.find("code") == nullptr || !e.at("code").isString()) {
            problem(where + ": malformed event entry");
            break;
          }
        }
      }
    }
  }
  const JsonValue* spans = doc.find("open_spans");
  if (spans == nullptr || !spans->isArray()) {
    problem("missing array key 'open_spans'");
  }
  const JsonValue* met = doc.find("metrics");
  if (met == nullptr || !met->isObject()) {
    problem("missing object key 'metrics'");
  } else {
    for (const char* key : {"counters", "gauges"}) {
      const JsonValue* v = met->find(key);
      if (v == nullptr || !v->isObject()) {
        problem(std::string("metrics: missing object '") + key + "'");
      }
    }
  }
  const JsonValue* memv = doc.find("memory");
  if (memv == nullptr || !memv->isObject()) {
    problem("missing object key 'memory'");
  } else {
    const JsonValue* accounts = memv->find("accounts");
    if (accounts == nullptr || !accounts->isObject()) {
      problem("memory: missing object 'accounts'");
    } else {
      for (const auto& [name, v] : accounts->object) {
        if (!v.isObject() || v.find("current_bytes") == nullptr ||
            v.find("peak_bytes") == nullptr) {
          problem("memory.accounts: '" + name +
                  "' missing current_bytes/peak_bytes");
        }
      }
    }
    for (const char* key :
         {"accounted_current_bytes", "accounted_peak_bytes",
          "baseline_rss_bytes", "sampled_rss_bytes", "sampled_rss_peak_bytes",
          "budget_bytes", "budget_stage"}) {
      const JsonValue* v = memv->find(key);
      if (v == nullptr || !v->isNumber()) {
        problem(std::string("memory: missing number '") + key + "'");
      }
    }
  }
  const JsonValue* envv = doc.find("environment");
  if (envv == nullptr || !envv->isObject()) {
    problem("missing object key 'environment'");
  } else {
    for (const char* key : {"git_sha", "compiler", "build_type", "os"}) {
      const JsonValue* v = envv->find(key);
      if (v == nullptr || !v->isString()) {
        problem(std::string("environment: missing string '") + key + "'");
      }
    }
    for (const char* key :
         {"nodes", "concentration", "message_bytes", "sim_iterations",
          "threads", "wall_seconds", "peak_rss_bytes"}) {
      const JsonValue* v = envv->find(key);
      if (v == nullptr || !v->isNumber()) {
        problem(std::string("environment: missing number '") + key + "'");
      }
    }
  }
  return problems;
}

}  // namespace rahtm::obs
