#pragma once
/// \file postmortem.hpp
/// Crash/stall post-mortem artifacts: a canonical `rahtm.postmortem/v1`
/// JSON file capturing the last moments of a run — flight-recorder rings,
/// heartbeat counters, the phase stack, open trace spans, a metrics
/// snapshot and the environment fingerprint — written from signal handlers
/// (SIGSEGV/SIGABRT/SIGBUS/SIGFPE), a std::terminate hook, or on demand
/// (the watchdog's stage-2 dump).
///
/// Signal discipline: everything the handler touches is pre-reserved at
/// installPostmortem() time — the serialization buffer, the ring copy
/// buffer, the (name, pointer) metric capture, the pre-rendered env
/// fragment and an alternate signal stack — so the crash path performs no
/// allocation and no locking (the tracer is consulted with try_lock only).
/// The handler writes with raw open/write/close, restores the default
/// disposition and re-raises, preserving the process's wait status.
/// snprintf is used for number formatting; it is not formally
/// async-signal-safe but is tolerated here, as in every practical crash
/// reporter.
///
/// Artifacts are named `postmortem.<reason>.json` (reason = sigsegv,
/// sigabrt, sigbus, sigfpe, terminate, stall, manual), so a stall dump and
/// the subsequent abort coexist in one directory.
///
/// Environment: RAHTM_POSTMORTEM_DIR sets the artifact directory (CLI
/// `--postmortem-dir` overrides; default ".").

#include <string>
#include <vector>

namespace rahtm::obs {

struct JsonValue;

/// Schema identifier embedded in every post-mortem artifact.
inline constexpr const char* kPostmortemSchema = "rahtm.postmortem/v1";

/// RAHTM_POSTMORTEM_DIR, or "." when unset/empty.
std::string postmortemDirFromEnv();

/// Install the signal handlers and std::terminate hook, pre-reserving all
/// crash-path buffers and capturing stable metric references from the
/// current global registry (metrics registered later appear only in
/// on-demand dumps, which re-capture). Idempotent; a second call just
/// updates the artifact directory. \p dir empty means RAHTM_POSTMORTEM_DIR
/// / current directory.
void installPostmortem(const std::string& dir = "");

/// True once installPostmortem() has run.
bool postmortemInstalled();

/// Write an artifact right now from normal (non-signal) context — the
/// watchdog's stage-2 dump and tests use this. Initializes the crash-path
/// state lazily if installPostmortem() was never called, and re-captures
/// metric references. \p dirOverride (nullptr/"" = configured dir).
/// Returns true when the artifact was written.
bool writePostmortemNow(const char* reason, const char* dirOverride = nullptr);

/// Path the next artifact for \p reason would be written to (for tests and
/// tool log lines).
std::string postmortemPathFor(const char* reason, const std::string& dir);

/// Schema validation for a parsed `rahtm.postmortem/v1` document, in the
/// style of validateReportJson(). Empty == valid.
std::vector<std::string> validatePostmortemJson(const JsonValue& doc);

}  // namespace rahtm::obs
