#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/process.hpp"

namespace rahtm::obs {

namespace {
std::atomic<MetricsRegistry*> g_metrics{nullptr};

/// Relaxed CAS-min/max on an atomic double.
void atomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
void atomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace

MetricsRegistry* metrics() { return g_metrics.load(std::memory_order_acquire); }
void setMetrics(MetricsRegistry* m) {
  g_metrics.store(m, std::memory_order_release);
}

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)) {
  RAHTM_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                    std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                        bounds_.end(),
                "Histogram: bounds must be strictly increasing");
  counts_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double v) {
  // First bucket whose upper bound admits v (<=); past the end: overflow.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  atomicMin(min_, v);
  atomicMax(max_, v);
}

std::vector<std::int64_t> Histogram::bucketCounts() const {
  std::vector<std::int64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double q) const {
  const std::int64_t n = count();
  if (n == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  const double lo = min();
  const double hi = max();
  const double target = q * static_cast<double>(n);
  const std::vector<std::int64_t> counts = bucketCounts();
  double cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double c = static_cast<double>(counts[i]);
    if (c > 0 && cum + c >= target) {
      // Bucket i spans (bounds[i-1], bounds[i]]; the edge buckets borrow
      // the observed min/max so estimates never leave the data range.
      double bLo = i == 0 ? lo : bounds_[i - 1];
      double bHi = i < bounds_.size() ? bounds_[i] : hi;
      bLo = std::max(bLo, lo);
      bHi = std::min(bHi, hi);
      if (bHi < bLo) bHi = bLo;
      const double frac = (target - cum) / c;
      return bLo + (bHi - bLo) * frac;
    }
    cum += c;
  }
  return hi;
}

std::vector<double> expBuckets(double first, double factor, int count) {
  RAHTM_REQUIRE(first > 0 && factor > 1 && count > 0,
                "expBuckets: need first > 0, factor > 1, count > 0");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  double v = first;
  for (int i = 0; i < count; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upperBounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upperBounds));
  return *slot;
}

const Counter* MetricsRegistry::findCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::findHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<std::pair<std::string, const Counter*>>
MetricsRegistry::counterRefs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.get());
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> MetricsRegistry::gaugeRefs()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.get());
  return out;
}

void MetricsRegistry::writeJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\n" << jsonString(name) << ":" << c->value();
  }
  os << "\n},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\n" << jsonString(name) << ":" << jsonDouble(g->value());
  }
  os << "\n},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\n" << jsonString(name) << ":{\"count\":" << h->count()
       << ",\"sum\":" << jsonDouble(h->sum());
    if (h->count() > 0) {
      os << ",\"min\":" << jsonDouble(h->min())
         << ",\"max\":" << jsonDouble(h->max())
         << ",\"p50\":" << jsonDouble(h->quantile(0.50))
         << ",\"p95\":" << jsonDouble(h->quantile(0.95))
         << ",\"p99\":" << jsonDouble(h->quantile(0.99));
    }
    os << ",\"buckets\":[";
    const std::vector<std::int64_t> counts = h->bucketCounts();
    const std::vector<double>& bounds = h->bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i != 0) os << ",";
      os << "{\"le\":"
         << (i < bounds.size() ? jsonDouble(bounds[i]) : "\"inf\"")
         << ",\"count\":" << counts[i] << "}";
    }
    os << "]}";
  }
  // Process-level context so every snapshot is interpretable on its own
  // (how long the run took, how much memory it peaked at).
  os << "\n},\"process\":{\"wall_seconds\":" << jsonDouble(processWallSeconds())
     << ",\"peak_rss_bytes\":" << jsonInt(peakRssBytes()) << "}}\n";
}

}  // namespace rahtm::obs
