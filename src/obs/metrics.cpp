#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace rahtm::obs {

namespace {
std::atomic<MetricsRegistry*> g_metrics{nullptr};

/// Relaxed CAS-min/max on an atomic double.
void atomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
void atomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace

MetricsRegistry* metrics() { return g_metrics.load(std::memory_order_acquire); }
void setMetrics(MetricsRegistry* m) {
  g_metrics.store(m, std::memory_order_release);
}

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)) {
  RAHTM_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                    std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                        bounds_.end(),
                "Histogram: bounds must be strictly increasing");
  counts_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double v) {
  // First bucket whose upper bound admits v (<=); past the end: overflow.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  atomicMin(min_, v);
  atomicMax(max_, v);
}

std::vector<std::int64_t> Histogram::bucketCounts() const {
  std::vector<std::int64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> expBuckets(double first, double factor, int count) {
  RAHTM_REQUIRE(first > 0 && factor > 1 && count > 0,
                "expBuckets: need first > 0, factor > 1, count > 0");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  double v = first;
  for (int i = 0; i < count; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upperBounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upperBounds));
  return *slot;
}

const Counter* MetricsRegistry::findCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::findHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::writeJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\n" << jsonString(name) << ":" << c->value();
  }
  os << "\n},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\n" << jsonString(name) << ":" << jsonDouble(g->value());
  }
  os << "\n},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\n" << jsonString(name) << ":{\"count\":" << h->count()
       << ",\"sum\":" << jsonDouble(h->sum());
    if (h->count() > 0) {
      os << ",\"min\":" << jsonDouble(h->min())
         << ",\"max\":" << jsonDouble(h->max());
    }
    os << ",\"buckets\":[";
    const std::vector<std::int64_t> counts = h->bucketCounts();
    const std::vector<double>& bounds = h->bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i != 0) os << ",";
      os << "{\"le\":"
         << (i < bounds.size() ? jsonDouble(bounds[i]) : "\"inf\"")
         << ",\"count\":" << counts[i] << "}";
    }
    os << "]}";
  }
  os << "\n}}\n";
}

}  // namespace rahtm::obs
