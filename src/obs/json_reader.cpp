#include "obs/json_reader.hpp"

#include <cctype>
#include <cstdlib>

#include "common/error.hpp"

namespace rahtm::obs {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("JSON parse error at byte " + std::to_string(pos_) +
                     ": " + why);
  }

  void ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  JsonValue value() {
    ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::String;
      v.str = string();
      return v;
    }
    if (c == 't' || c == 'f') {
      JsonValue v;
      v.kind = JsonValue::Kind::Bool;
      if (c == 't') {
        literal("true");
        v.boolean = true;
      } else {
        literal("false");
      }
      return v;
    }
    if (c == 'n') {
      literal("null");
      return JsonValue{};
    }
    return number();
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    const std::string text = s_.substr(start, pos_ - start);
    char* end = nullptr;
    v.number = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0') fail("malformed number");
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("bad escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // The writers only ever emit \u00xx control escapes; decode those
          // exactly and flatten anything wider to '?'.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("unknown escape");
      }
    }
    return out;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    ws();
    if (consume(']')) return v;
    while (true) {
      v.array.push_back(value());
      ws();
      if (consume(']')) break;
      expect(',');
    }
    return v;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    ws();
    if (consume('}')) return v;
    while (true) {
      ws();
      std::string key = string();
      ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      ws();
      if (consume('}')) break;
      expect(',');
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw ParseError("JSON: missing key '" + key + "'");
  return *v;
}

double JsonValue::numberOr(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isNumber() ? v->number : fallback;
}

std::string JsonValue::stringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isString() ? v->str : fallback;
}

JsonValue parseJson(const std::string& text) { return Parser(text).parse(); }

}  // namespace rahtm::obs
