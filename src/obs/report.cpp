#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/json_reader.hpp"
#include "obs/mem.hpp"
#include "obs/process.hpp"

// Build provenance is injected by CMake (see src/obs/CMakeLists.txt); the
// fallbacks keep non-CMake builds compiling.
#ifndef RAHTM_GIT_SHA
#define RAHTM_GIT_SHA "unknown"
#endif
#ifndef RAHTM_BUILD_TYPE
#define RAHTM_BUILD_TYPE "unknown"
#endif

namespace rahtm::obs {

namespace {

std::string osName() {
#if defined(__linux__)
  return "linux";
#elif defined(__APPLE__)
  return "darwin";
#else
  return "unknown";
#endif
}

void appendProblem(std::vector<std::string>& problems, const std::string& p) {
  problems.push_back(p);
}

}  // namespace

EnvFingerprint currentEnvFingerprint() {
  EnvFingerprint env;
  env.gitSha = RAHTM_GIT_SHA;
#if defined(__VERSION__)
  env.compiler = __VERSION__;
#endif
  env.buildType = RAHTM_BUILD_TYPE;
  env.os = osName();
  env.wallSeconds = processWallSeconds();
  env.peakRssBytes = peakRssBytes();
  return env;
}

MemSection currentMemSection() {
  MemSection mem;
  mem.present = true;
  const MemRegistry& reg = MemRegistry::instance();
  for (int i = 0; i < kMemAccountCount; ++i) {
    const auto id = static_cast<MemAccountId>(i);
    mem.accounts.emplace_back(memAccountName(id), reg.peakBytes(id));
  }
  mem.accountedPeakBytes = reg.totalPeakBytes();
  mem.baselineRssBytes = reg.baselineRssBytes();
  mem.peakRssBytes = peakRssBytes();
  const std::int64_t growth = mem.peakRssBytes - mem.baselineRssBytes;
  mem.rssCoverage = growth > 0 ? static_cast<double>(mem.accountedPeakBytes) /
                                     static_cast<double>(growth)
                               : 0.0;
  return mem;
}

bool RunRecord::has(const std::string& name) const {
  for (const auto& [k, v] : metrics) {
    if (k == name) return true;
  }
  return false;
}

double RunRecord::metricOr(const std::string& name, double fallback) const {
  for (const auto& [k, v] : metrics) {
    if (k == name) return v;
  }
  return fallback;
}

const RunRecord* RunReport::find(const std::string& benchmark,
                                 const std::string& mapper) const {
  for (const RunRecord& r : records) {
    if (r.benchmark == benchmark && r.mapper == mapper) return &r;
  }
  return nullptr;
}

void RunReport::writeJson(std::ostream& os) const {
  os << "{\n";
  os << "  \"schema\": " << jsonString(kReportSchema) << ",\n";
  os << "  \"suite\": " << jsonString(suite) << ",\n";
  os << "  \"environment\": {\n";
  os << "    \"git_sha\": " << jsonString(env.gitSha) << ",\n";
  os << "    \"compiler\": " << jsonString(env.compiler) << ",\n";
  os << "    \"build_type\": " << jsonString(env.buildType) << ",\n";
  os << "    \"os\": " << jsonString(env.os) << ",\n";
  os << "    \"nodes\": " << jsonInt(env.nodes) << ",\n";
  os << "    \"concentration\": " << jsonInt(env.concentration) << ",\n";
  os << "    \"message_bytes\": " << jsonInt(env.messageBytes) << ",\n";
  os << "    \"sim_iterations\": " << jsonInt(env.simIterations) << ",\n";
  os << "    \"threads\": " << jsonInt(env.threads) << ",\n";
  os << "    \"wall_seconds\": " << jsonDouble(env.wallSeconds) << ",\n";
  os << "    \"peak_rss_bytes\": " << jsonInt(env.peakRssBytes) << "\n";
  os << "  },\n";
  if (mem.present) {
    os << "  \"mem\": {\n";
    os << "    \"accounts\": {";
    for (std::size_t i = 0; i < mem.accounts.size(); ++i) {
      if (i != 0) os << ", ";
      os << jsonString(mem.accounts[i].first) << ": "
         << jsonInt(mem.accounts[i].second);
    }
    os << "},\n";
    os << "    \"accounted_peak_bytes\": " << jsonInt(mem.accountedPeakBytes)
       << ",\n";
    os << "    \"baseline_rss_bytes\": " << jsonInt(mem.baselineRssBytes)
       << ",\n";
    os << "    \"peak_rss_bytes\": " << jsonInt(mem.peakRssBytes) << ",\n";
    os << "    \"rss_coverage\": " << jsonDouble(mem.rssCoverage) << "\n";
    os << "  },\n";
  }
  os << "  \"records\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"benchmark\": " << jsonString(r.benchmark)
       << ", \"mapper\": " << jsonString(r.mapper) << ", \"metrics\": {";
    for (std::size_t m = 0; m < r.metrics.size(); ++m) {
      if (m != 0) os << ", ";
      os << jsonString(r.metrics[m].first) << ": "
         << jsonDouble(r.metrics[m].second);
    }
    os << "}}";
  }
  os << "\n  ]\n}\n";
}

std::vector<std::string> validateReportJson(const JsonValue& doc) {
  std::vector<std::string> problems;
  if (!doc.isObject()) {
    appendProblem(problems, "document is not a JSON object");
    return problems;
  }
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->isString()) {
    appendProblem(problems, "missing string key 'schema'");
  } else if (schema->str != kReportSchema) {
    appendProblem(problems, "unknown schema '" + schema->str + "' (expected " +
                                std::string(kReportSchema) + ")");
  }
  const JsonValue* suite = doc.find("suite");
  if (suite == nullptr || !suite->isString() || suite->str.empty()) {
    appendProblem(problems, "missing non-empty string key 'suite'");
  }
  const JsonValue* envv = doc.find("environment");
  if (envv == nullptr || !envv->isObject()) {
    appendProblem(problems, "missing object key 'environment'");
  } else {
    for (const char* key : {"git_sha", "compiler", "build_type", "os"}) {
      const JsonValue* v = envv->find(key);
      if (v == nullptr || !v->isString()) {
        appendProblem(problems,
                      std::string("environment: missing string '") + key + "'");
      }
    }
    for (const char* key :
         {"nodes", "concentration", "message_bytes", "sim_iterations",
          "threads", "wall_seconds", "peak_rss_bytes"}) {
      const JsonValue* v = envv->find(key);
      if (v == nullptr || !v->isNumber()) {
        appendProblem(problems,
                      std::string("environment: missing number '") + key + "'");
      }
    }
  }
  // "mem" is optional (pre-accounting ledgers lack it) but must be
  // well-formed when present.
  const JsonValue* memv = doc.find("mem");
  if (memv != nullptr) {
    if (!memv->isObject()) {
      appendProblem(problems, "'mem' is not an object");
    } else {
      const JsonValue* accounts = memv->find("accounts");
      if (accounts == nullptr || !accounts->isObject()) {
        appendProblem(problems, "mem: missing object 'accounts'");
      } else {
        for (const auto& [name, v] : accounts->object) {
          if (!v.isNumber()) {
            appendProblem(problems,
                          "mem.accounts: '" + name + "' is not a number");
          }
        }
      }
      for (const char* key : {"accounted_peak_bytes", "baseline_rss_bytes",
                              "peak_rss_bytes", "rss_coverage"}) {
        const JsonValue* v = memv->find(key);
        if (v == nullptr || !v->isNumber()) {
          appendProblem(problems,
                        std::string("mem: missing number '") + key + "'");
        }
      }
    }
  }
  const JsonValue* records = doc.find("records");
  if (records == nullptr || !records->isArray()) {
    appendProblem(problems, "missing array key 'records'");
    return problems;
  }
  for (std::size_t i = 0; i < records->array.size(); ++i) {
    const JsonValue& r = records->array[i];
    const std::string where = "records[" + std::to_string(i) + "]";
    if (!r.isObject()) {
      appendProblem(problems, where + ": not an object");
      continue;
    }
    for (const char* key : {"benchmark", "mapper"}) {
      const JsonValue* v = r.find(key);
      if (v == nullptr || !v->isString()) {
        appendProblem(problems,
                      where + ": missing string '" + std::string(key) + "'");
      }
    }
    const JsonValue* metrics = r.find("metrics");
    if (metrics == nullptr || !metrics->isObject()) {
      appendProblem(problems, where + ": missing object 'metrics'");
      continue;
    }
    for (const auto& [name, value] : metrics->object) {
      if (!value.isNumber()) {
        appendProblem(problems,
                      where + ": metric '" + name + "' is not a number");
      }
    }
  }
  return problems;
}

RunReport readReport(std::istream& in) {
  std::ostringstream ss;
  ss << in.rdbuf();
  const JsonValue doc = parseJson(ss.str());
  const std::vector<std::string> problems = validateReportJson(doc);
  if (!problems.empty()) {
    std::string what = "ledger failed schema validation:";
    for (const std::string& p : problems) what += "\n  " + p;
    throw ParseError(what);
  }

  RunReport report;
  report.suite = doc.at("suite").str;
  const JsonValue& envv = doc.at("environment");
  report.env.gitSha = envv.at("git_sha").str;
  report.env.compiler = envv.at("compiler").str;
  report.env.buildType = envv.at("build_type").str;
  report.env.os = envv.at("os").str;
  report.env.nodes = static_cast<std::int64_t>(envv.at("nodes").number);
  report.env.concentration =
      static_cast<std::int64_t>(envv.at("concentration").number);
  report.env.messageBytes =
      static_cast<std::int64_t>(envv.at("message_bytes").number);
  report.env.simIterations =
      static_cast<std::int64_t>(envv.at("sim_iterations").number);
  report.env.threads = static_cast<std::int64_t>(envv.at("threads").number);
  report.env.wallSeconds = envv.at("wall_seconds").number;
  report.env.peakRssBytes =
      static_cast<std::int64_t>(envv.at("peak_rss_bytes").number);
  if (const JsonValue* memv = doc.find("mem")) {
    report.mem.present = true;
    for (const auto& [name, v] : memv->at("accounts").object) {
      report.mem.accounts.emplace_back(name,
                                       static_cast<std::int64_t>(v.number));
    }
    report.mem.accountedPeakBytes =
        static_cast<std::int64_t>(memv->at("accounted_peak_bytes").number);
    report.mem.baselineRssBytes =
        static_cast<std::int64_t>(memv->at("baseline_rss_bytes").number);
    report.mem.peakRssBytes =
        static_cast<std::int64_t>(memv->at("peak_rss_bytes").number);
    report.mem.rssCoverage = memv->at("rss_coverage").number;
  }
  for (const JsonValue& r : doc.at("records").array) {
    RunRecord record;
    record.benchmark = r.at("benchmark").str;
    record.mapper = r.at("mapper").str;
    for (const auto& [name, value] : r.at("metrics").object) {
      record.add(name, value.number);
    }
    report.records.push_back(std::move(record));
  }
  return report;
}

RunReport readReportFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("ledger: cannot open " + path);
  return readReport(in);
}

ThresholdMap defaultThresholds() {
  const double inf = std::numeric_limits<double>::infinity();
  return {
      {"mcl", 0.02},
      {"hop_bytes", 0.02},
      {"comm_cycles", 0.05},
      {"overall_cycles", 0.05},
      // Wall time and derived throughput are hardware-dependent noise:
      // reported, never gated.
      {"map_seconds", inf},
      {"refine_seconds", inf},
      {"anneal_seconds", inf},
      {"swaps_per_sec", inf},
      {"probes_per_sec", inf},
      {"moves_per_sec", inf},
      // Search-effort counters (probe/commit/sweep counts) shift with any
      // legitimate algorithm tweak: reported, never gated.
      {"objective_before", inf},
      {"swaps", inf},
      {"passes", inf},
      {"probes", inf},
      {"commits", inf},
      {"dense_sweeps", inf},
      {"iterations", inf},
      // Forensics overhead gate (bench/suites.cpp obs_overhead): the
      // enabled/disabled ratio is gated at 2%; the raw wall times backing
      // it are noise like any other timing.
      {"overhead_ratio", 0.02},
      {"forensics_on_seconds", inf},
      {"forensics_off_seconds", inf},
      // Memory gates. peak_rss_mb is the synthetic per-suite column derived
      // from the environment fingerprint (works against pre-`mem` baselines
      // too); the generous 25% absorbs allocator/host noise while still
      // catching gross regressions. The per-account *_peak_mb columns in
      // mem_micro are deterministic accounted bytes, gated tighter; the
      // accounting overhead ratio carries the same 2% budget as forensics.
      {"peak_rss_mb", 0.25},
      {"route_table_peak_mb", 0.05},
      {"flow_incidence_peak_mb", 0.05},
      {"simnet_peak_mb", 0.05},
      {"lp_peak_mb", 0.05},
      {"mapper_peak_mb", 0.05},
      {"obs_peak_mb", 0.05},
      {"accounted_peak_mb", 0.05},
      {"rss_coverage", inf},
      {"mem_overhead_ratio", 0.02},
      {"mem_on_seconds", inf},
      {"mem_off_seconds", inf},
      // Simulator gate (bench/suites.cpp simnet_micro). The mismatch
      // counters have committed baselines of 0, so any nonzero value is an
      // unbounded relative regression — exactly the intended hard failure.
      // The flow-mode error ratios are deterministic at a fixed scale;
      // the 10% headroom only absorbs intentional estimator retuning.
      {"determinism_mismatches", 0.0},
      {"flow_conservation_mismatches", 0.0},
      {"flow_cycles_rel_err", 0.10},
      {"flow_mcl_rel_err", 0.10},
      {"sim_serial_seconds", inf},
      {"sim_threaded_seconds", inf},
      {"sim_speedup", inf},
      {"flow_seconds", inf},
      {"flow_speedup_vs_cycle", inf},
      // Serve suite (bench/suites_serve.cpp). The correctness counters have
      // committed baselines of 0 (served-vs-one-shot mapping divergence,
      // cache-warm requests that still rebuilt artifacts): any nonzero is a
      // hard failure. Latency/throughput and the cache traffic counters are
      // host- and wave-timing-dependent: reported, never gated.
      {"served_determinism_mismatches", 0.0},
      {"warm_route_misses", 0.0},
      {"warm_incidence_misses", 0.0},
      {"requests_per_sec", inf},
      {"latency_p50_sec", inf},
      {"latency_p95_sec", inf},
      {"latency_p99_sec", inf},
      {"queue_sec", inf},
      {"solve_sec", inf},
      {"cache_route_hits", inf},
      {"cache_route_misses", inf},
      {"cache_incidence_hits", inf},
      {"cache_incidence_misses", inf},
      {"cache_bytes", inf},
      // Route-cache suite (bench/suites_route.cpp). The mismatch counters
      // have committed baselines of 0 — sparse-tier reads diverging from a
      // dense build, a refaulted route differing from its first build, the
      // 512-node mapping moving under eviction, or the tiered mcl differing
      // from the table-free dense enumeration are all hard failures. The
      // traffic counters and per-tier bytes move with eviction timing:
      // reported, never gated.
      {"tier_parity_mismatches", 0.0},
      {"evict_refault_mismatches", 0.0},
      {"tier_vs_dense_mcl_mismatches", 0.0},
      {"evict_refault_mapping_mismatches", 0.0},
      {"route_sparse_hits", inf},
      {"route_sparse_misses", inf},
      {"route_refaults", inf},
      {"route_evictions", inf},
      {"route_sparse_mb", inf},
      {"route_dense_mb", inf},
      {"route_dense_tables", inf},
      {"route_sweep_seconds", inf},
  };
}

bool CheckResult::pass() const {
  return problems.empty() && regressions() == 0;
}

std::size_t CheckResult::regressions() const {
  std::size_t n = 0;
  for (const MetricCheck& c : checks) n += c.regression ? 1 : 0;
  return n;
}

CheckResult compareReports(const RunReport& baseline,
                           const RunReport& candidate,
                           const ThresholdMap& thresholds) {
  CheckResult result;
  if (baseline.suite != candidate.suite) {
    appendProblem(result.problems, "suite mismatch: baseline '" +
                                       baseline.suite + "' vs candidate '" +
                                       candidate.suite + "'");
  }
  // The scale half of the fingerprint must agree or the numbers are not
  // comparable at all. Build/host fields are informational.
  const auto scaleField = [&](const char* name, std::int64_t b,
                              std::int64_t c) {
    if (b != c) {
      appendProblem(result.problems,
                    std::string("environment mismatch: ") + name + " " +
                        std::to_string(b) + " vs " + std::to_string(c));
    }
  };
  scaleField("nodes", baseline.env.nodes, candidate.env.nodes);
  scaleField("concentration", baseline.env.concentration,
             candidate.env.concentration);
  scaleField("message_bytes", baseline.env.messageBytes,
             candidate.env.messageBytes);
  scaleField("sim_iterations", baseline.env.simIterations,
             candidate.env.simIterations);

  // Synthetic per-suite memory column: gate the process peak RSS recorded
  // in the environment fingerprint. This works against baselines that
  // predate the `mem` section — VmHWM has been in every fingerprint since
  // the ledger existed. Skipped when either side reads 0 (no procfs).
  if (baseline.env.peakRssBytes > 0 && candidate.env.peakRssBytes > 0) {
    MetricCheck check;
    check.benchmark = "(suite)";
    check.mapper = "(process)";
    check.metric = "peak_rss_mb";
    check.baseline =
        static_cast<double>(baseline.env.peakRssBytes) / (1024.0 * 1024.0);
    check.current =
        static_cast<double>(candidate.env.peakRssBytes) / (1024.0 * 1024.0);
    check.relDelta = (check.current - check.baseline) /
                     std::max(std::fabs(check.baseline), 1e-12);
    const auto it = thresholds.find("peak_rss_mb");
    check.threshold = it != thresholds.end() ? it->second : kDefaultThreshold;
    check.regression = check.relDelta > check.threshold;
    check.improvement = check.relDelta < -check.threshold;
    result.checks.push_back(std::move(check));
  }

  for (const RunRecord& base : baseline.records) {
    const RunRecord* cur = candidate.find(base.benchmark, base.mapper);
    if (cur == nullptr) {
      appendProblem(result.problems, "candidate is missing record (" +
                                         base.benchmark + ", " + base.mapper +
                                         ")");
      continue;
    }
    for (const auto& [name, baseValue] : base.metrics) {
      if (!cur->has(name)) {
        appendProblem(result.problems, "candidate record (" + base.benchmark +
                                           ", " + base.mapper +
                                           ") is missing metric '" + name +
                                           "'");
        continue;
      }
      MetricCheck check;
      check.benchmark = base.benchmark;
      check.mapper = base.mapper;
      check.metric = name;
      check.baseline = baseValue;
      check.current = cur->metricOr(name, 0);
      check.relDelta = (check.current - check.baseline) /
                       std::max(std::fabs(check.baseline), 1e-12);
      const auto it = thresholds.find(name);
      check.threshold = it != thresholds.end() ? it->second : kDefaultThreshold;
      // Every gated metric is lower-is-better.
      check.regression = check.relDelta > check.threshold;
      check.improvement = check.relDelta < -check.threshold;
      result.checks.push_back(std::move(check));
    }
  }
  return result;
}

void printCheckResult(std::ostream& os, const CheckResult& result) {
  for (const std::string& p : result.problems) {
    os << "PROBLEM  " << p << "\n";
  }
  for (const MetricCheck& c : result.checks) {
    const char* verdict = c.regression      ? "REGRESSION"
                          : c.improvement   ? "improved"
                                            : "ok";
    os << std::left << std::setw(10) << verdict << " " << std::setw(8)
       << c.benchmark << " " << std::setw(10) << c.mapper << " "
       << std::setw(14) << c.metric << " " << std::right << std::setw(14)
       << c.baseline << " -> " << std::setw(14) << c.current << "  ("
       << std::showpos << std::fixed << std::setprecision(2)
       << 100.0 * c.relDelta << "%" << std::noshowpos << ")";
    os.unsetf(std::ios::fixed);
    os << std::setprecision(6);
    if (std::isfinite(c.threshold)) {
      os << "  [threshold " << 100.0 * c.threshold << "%]";
    }
    os << "\n";
  }
  const std::size_t regs = result.regressions();
  os << (result.pass() ? "CHECK PASSED" : "CHECK FAILED") << ": "
     << result.checks.size() << " metrics compared, " << regs
     << " regression(s), " << result.problems.size() << " problem(s)\n";
}

}  // namespace rahtm::obs
