#include "obs/process.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rahtm::obs {

namespace {
// Captured at static-initialization time; all of the repo's executables
// construct their telemetry before doing real work, so this is process
// start for practical purposes.
const std::chrono::steady_clock::time_point g_processStart =
    std::chrono::steady_clock::now();

// Scan /proc/self/status for one "<key> <n> kB" line. The two RSS readers
// share this; parsing proper lives in parseStatusKb so tests can cover the
// edge cases without a live /proc.
std::int64_t readStatusKb(const char* key) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::int64_t bytes = 0;
  const std::size_t keyLen = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, keyLen) == 0) {
      bytes = parseStatusKb(line, key);
      break;
    }
  }
  std::fclose(f);
  return bytes;
#else
  (void)key;
  return 0;
#endif
}
}  // namespace

double processWallSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_processStart)
      .count();
}

std::int64_t parseStatusKb(const char* statusText, const char* key) {
  if (statusText == nullptr || key == nullptr || key[0] == '\0') return 0;
  const std::size_t keyLen = std::strlen(key);
  for (const char* p = statusText; *p != '\0';) {
    // Keys only match at line starts — "VmRSS:" must not match inside
    // another line's value.
    if (std::strncmp(p, key, keyLen) == 0) {
      const char* v = p + keyLen;
      while (*v == ' ' || *v == '\t') ++v;
      if (!std::isdigit(static_cast<unsigned char>(*v))) return 0;
      char* end = nullptr;
      const long long kb = std::strtoll(v, &end, 10);
      if (end == v || kb < 0) return 0;
      return static_cast<std::int64_t>(kb) * 1024;
    }
    while (*p != '\0' && *p != '\n') ++p;
    if (*p == '\n') ++p;
  }
  return 0;
}

std::int64_t peakRssBytes() { return readStatusKb("VmHWM:"); }

std::int64_t currentRssBytes() { return readStatusKb("VmRSS:"); }

}  // namespace rahtm::obs
