#include "obs/process.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>

namespace rahtm::obs {

namespace {
// Captured at static-initialization time; all of the repo's executables
// construct their telemetry before doing real work, so this is process
// start for practical purposes.
const std::chrono::steady_clock::time_point g_processStart =
    std::chrono::steady_clock::now();
}  // namespace

double processWallSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_processStart)
      .count();
}

std::int64_t peakRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::int64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%lld", reinterpret_cast<long long*>(&kb));
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
#else
  return 0;
#endif
}

}  // namespace rahtm::obs
