/// \file rahtm_map.cpp
/// The offline mapping tool the paper describes (§I, §V-B): take a
/// communication profile (or a named synthetic workload), a machine
/// description and a concentration factor; emit a BG/Q-style mapfile that
/// the MPI runtime consumes on every subsequent run.
///
/// Usage:
///   rahtm_map --machine 4x4x4x2 --concentration 8 --benchmark CG \
///             --out cg.map [--mapper rahtm|abcdet|hilbert|rht|greedy|random]
///   rahtm_map --machine 4x4x4x2 --concentration 8 --profile run.prof \
///             --grid 32x32 --out app.map
///
/// The profile format is the library's IPM-lite text format (see
/// profile/profile.hpp); --grid names the logical rank-grid geometry used
/// by the clustering tile search.

#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "exec/thread_pool.hpp"
#include "mapping/mapfile.hpp"
#include "obs/mem.hpp"
#include "obs/postmortem.hpp"
#include "obs/telemetry.hpp"
#include "obs/watchdog.hpp"
#include "profile/profile.hpp"
#include "serve/service.hpp"
#include "simnet/simulator.hpp"

namespace {

using namespace rahtm;

Shape parseShape(const std::string& spec) {
  Shape shape;
  for (const std::string& part : split(spec, 'x')) {
    shape.push_back(static_cast<std::int32_t>(parseInt(part)));
  }
  return shape;
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --machine AxBxC... --concentration N\n"
      << "          (--benchmark BT|SP|CG | --profile FILE [--grid AxB])\n"
      << "          [--out mapfile] [--mapper rahtm|abcdet|hilbert|rht|"
         "greedy|rcb|random]\n"
      << "          [--bytes N] [--beam N] [--leaf-milp N] [--no-merge] "
         "[--no-refine] [--verbose]\n"
      << "          [--threads N] [--trace-out FILE] [--trace-summary FILE] "
         "[--metrics-out FILE]\n"
      << "          [--link-heatmap FILE] [--postmortem-dir DIR]\n"
      << "          [--sim-threads N] [--sim-fidelity cycle|flow]\n"
      << "          [--watchdog-sec S] [--watchdog-phases name=S,...]\n"
      << "          [--watchdog-action log|dump|abort] [--no-watchdog]\n"
      << "          [--mem-report] [--mem-budget-mb N]\n"
      << "\n"
      << "--threads N parallelizes the RAHTM compute phases over N threads\n"
      << "(0 = all hardware threads; the RAHTM_THREADS environment variable\n"
      << "is the fallback). The produced mapping is bit-identical for every\n"
      << "thread count.\n"
      << "\n"
      << "Telemetry: --trace-out writes a Chrome trace_event JSON (load it\n"
      << "in Perfetto / chrome://tracing), --metrics-out a counter/histogram\n"
      << "snapshot. When telemetry is on, the finished mapping is also run\n"
      << "through the network simulator so the metrics include measured\n"
      << "per-link load. The RAHTM_TRACE_OUT / RAHTM_TRACE_SUMMARY /\n"
      << "RAHTM_METRICS_OUT environment variables are fallbacks for the\n"
      << "flags.\n"
      << "\n"
      << "--link-heatmap FILE simulates the finished mapping (even with\n"
      << "telemetry off) and writes the per-channel flit-load matrix plus a\n"
      << "time-bucketed queue-occupancy series as JSON, for plotting where\n"
      << "the mapping actually puts traffic.\n"
      << "\n"
      << "--sim-threads N parallelizes the cycle-level simulator (0 = all\n"
      << "hardware threads; results are bit-identical for every thread\n"
      << "count). --sim-fidelity flow swaps the cycle sim for the flow-level\n"
      << "analytic estimate (fast screening; cycles/MCL are estimates, the\n"
      << "occupancy time series is empty).\n"
      << "\n"
      << "Forensics (always on): a crash, std::terminate, or a phase that\n"
      << "stalls past its watchdog deadline leaves a rahtm.postmortem/v1\n"
      << "JSON artifact (flight-recorder rings, heartbeats, metrics) in\n"
      << "--postmortem-dir (default RAHTM_POSTMORTEM_DIR or '.'). The\n"
      << "RAHTM_WATCHDOG_* environment variables are fallbacks for the\n"
      << "watchdog flags; RAHTM_RECORDER/RAHTM_HEARTBEATS=off disable the\n"
      << "recorder/heartbeats.\n"
      << "\n"
      << "Memory: --mem-budget-mb N enforces the staged accounted-memory\n"
      << "budget (overrides RAHTM_MEM_BUDGET_MB; warn 80% / degrade 100% /\n"
      << "fail 125% — see obs/mem.hpp); --mem-report prints the\n"
      << "per-subsystem peak table to stderr before exit.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Pin the memory registry's RSS baseline before any subsystem (recorder
    // rings, telemetry buffers) allocates: rss_coverage measures growth
    // past this point.
    obs::MemRegistry::instance();

    const CliArgs args(argc, argv);
    if (args.has("help") || !args.has("machine")) return usage(argv[0]);
    if (args.getBool("verbose")) setLogLevel(LogLevel::Info);

    // ---- Telemetry session (flags override the environment) --------------
    obs::TelemetryConfig tele = obs::telemetryConfigFromEnv();
    if (args.has("trace-out")) {
      tele.traceOutPath = args.getString("trace-out", "");
    }
    if (args.has("trace-summary")) {
      tele.traceSummaryPath = args.getString("trace-summary", "");
    }
    if (args.has("metrics-out")) {
      tele.metricsOutPath = args.getString("metrics-out", "");
    }
    obs::TelemetrySession telemetry(tele);

    // ---- Run forensics (always on; see obs/postmortem.hpp) ----------------
    std::string pmDir = args.getString("postmortem-dir", "");
    if (pmDir.empty()) pmDir = obs::postmortemDirFromEnv();
    if (obs::metrics() == nullptr) {
      // Post-mortem artifacts embed a metrics snapshot; give the process a
      // registry even when --metrics-out is off.
      static obs::MetricsRegistry forensicsMetrics;
      obs::registerStandardMetrics(forensicsMetrics);
      obs::setMetrics(&forensicsMetrics);
    }
    obs::installPostmortem(pmDir);
    obs::WatchdogConfig wd = obs::watchdogConfigFromEnv();
    wd.postmortemDir = pmDir;
    if (args.has("watchdog-sec")) {
      wd.defaultDeadlineSec =
          args.getDouble("watchdog-sec", wd.defaultDeadlineSec);
    }
    if (args.has("watchdog-phases")) {
      wd.phaseDeadlines =
          obs::parsePhaseDeadlines(args.getString("watchdog-phases", ""));
    }
    if (args.has("watchdog-action")) {
      const std::string action = args.getString("watchdog-action", "dump");
      if (action == "log") wd.action = obs::WatchdogAction::Log;
      else if (action == "dump") wd.action = obs::WatchdogAction::Dump;
      else if (action == "abort") wd.action = obs::WatchdogAction::Abort;
      else {
        std::cerr << "unknown --watchdog-action '" << action << "'\n";
        return usage(argv[0]);
      }
    }
    if (args.getBool("no-watchdog")) wd.enabled = false;
    obs::Watchdog watchdog(wd);
    watchdog.start();

    // ---- Memory accounting (always on; see obs/mem.hpp) -------------------
    if (args.has("mem-budget-mb")) {
      obs::MemRegistry::instance().setBudgetBytes(
          args.getInt("mem-budget-mb", 0) * 1024 * 1024);
    }
    const bool memReport = args.getBool("mem-report");

    const Torus machine = Torus::torus(parseShape(args.getString("machine", "")));
    const int concentration =
        static_cast<int>(args.getInt("concentration", 1));
    const auto ranks =
        static_cast<RankId>(machine.numNodes() * concentration);

    // Error-path telemetry: an exception or early return must still leave
    // the trace/metrics files and any captured link heatmap behind, not
    // just the post-mortem artifact.
    simnet::LinkLoadCapture capture;
    const std::string heatmapPath = args.getString("link-heatmap", "");
    struct ErrorFlushGuard {
      obs::TelemetrySession& telemetry;
      const Torus& machine;
      const simnet::LinkLoadCapture& capture;
      const std::string& heatmapPath;
      bool armed = true;
      ~ErrorFlushGuard() {
        if (!armed) return;
        try {
          telemetry.flush();
          if (telemetry.enabled()) {
            std::cerr << "  (flushed telemetry artifacts on error path)\n";
          }
          if (!heatmapPath.empty() && !capture.channels.empty()) {
            std::ofstream heat(heatmapPath);
            if (heat) simnet::writeLinkHeatmapJson(heat, machine, capture);
          }
        } catch (...) {
          // Salvaging artifacts must never mask the original error.
        }
      }
    } flushGuard{telemetry, machine, capture, heatmapPath};

    // ---- Request + input: profile file or named synthetic workload --------
    // Orchestration (input resolution, mapper ladder, solve, validation,
    // quality metrics) lives in serve::MapService; this tool is a thin
    // wrapper that keeps the historical flags and stderr output.
    serve::MapService service;  // uncached: identical to one-shot solves
    serve::MapRequest req;
    req.machine = machine.shape();
    req.concentration = concentration;
    req.benchmark = args.getString("benchmark", "CG");
    req.messageBytes = args.getInt("bytes", 4096);
    req.mapper = args.getString("mapper", "rahtm");
    req.beamWidth = static_cast<int>(args.getInt("beam", 64));
    req.enableMerge = !args.getBool("no-merge");
    req.finalRefinement = !args.getBool("no-refine");
    // The offline tool defaults to the paper's exact MILP on every leaf
    // cube it can reach (the library default is tuned for test speed).
    req.leafMilpVerts = static_cast<int>(args.getInt("leaf-milp", 8));
    req.threads =
        static_cast<int>(args.getInt("threads", exec::threadsFromEnv()));

    serve::RequestInput input;
    if (args.has("profile")) {
      std::ifstream in(args.getString("profile", ""));
      if (!in) {
        std::cerr << "cannot open profile file\n";
        return 1;
      }
      const Profile p = readProfile(in);
      req.hasGraph = true;
      input.graph = p.matrix;
      if (args.has("grid")) input.grid = parseShape(args.getString("grid", ""));
      if (input.graph.numRanks() != ranks) {
        std::cerr << "profile has " << input.graph.numRanks()
                  << " ranks; machine*"
                  << "concentration = " << ranks << "\n";
        return 1;
      }
    } else {
      input = service.buildInput(req);
    }
    std::vector<simnet::Phase> simStages = std::move(input.simStages);
    const bool simulate = telemetry.enabled() || !heatmapPath.empty();
    if (simulate && simStages.empty()) {
      // Profile input carries no per-stage structure: simulate the
      // aggregate communication matrix as one phase.
      simnet::Phase all;
      for (const Flow& f : input.graph.flows()) {
        all.push_back({f.src, f.dst, static_cast<std::int64_t>(f.bytes)});
      }
      simStages.push_back(std::move(all));
    }

    // ---- Solve ------------------------------------------------------------
    const std::string which = req.mapper;
    const serve::MapResponse resp = service.handleWithInput(req, input);
    if (!resp.ok) {
      if (resp.error == "unknown mapper '" + which + "'") {
        std::cerr << resp.error << "\n";
        return usage(argv[0]);
      }
      if (resp.error.rfind("invalid mapping: ", 0) == 0) {
        std::cerr << "internal error: " << resp.error << "\n";
        return 1;
      }
      // Any other solve failure: surface it like the historical uncaught
      // exception (the flush guard salvages telemetry during unwinding).
      throw Error(resp.error);
    }
    const Mapping& mapping = resp.mapping;

    // ---- Report + mapfile --------------------------------------------------
    std::cerr << which << ": mapped " << resp.ranks << " ranks (" << resp.flows
              << " flows) onto " << machine.describe() << ", concentration "
              << concentration << "\n";
    std::cerr << "  MCL (MAR model): " << resp.mcl
              << ", hop-bytes: " << resp.hopBytes << "\n";

    const std::string outPath = args.getString("out", "rahtm.map");
    std::ofstream out(outPath);
    if (!out) {
      std::cerr << "cannot write " << outPath << "\n";
      return 1;
    }
    writeMapfile(out, mapping, machine);
    std::cerr << "  wrote " << outPath << "\n";

    // ---- Telemetry: measure the mapping in the simulator, dump files ------
    if (simulate) {
      simnet::SimConfig sim;
      sim.injectionBandwidth = 8;
      sim.threads = static_cast<int>(args.getInt("sim-threads", 1));
      const std::string fidelity = args.getString("sim-fidelity", "cycle");
      if (fidelity == "flow") {
        sim.fidelity = simnet::SimFidelity::Flow;
      } else if (fidelity != "cycle") {
        std::cerr << "--sim-fidelity must be 'cycle' or 'flow'\n";
        return usage(argv[0]);
      }
      if (!heatmapPath.empty()) sim.linkCapture = &capture;
      const simnet::PhaseResult r =
          simnet::simulateIteration(machine, mapping, simStages, sim);
      std::cerr << "  simulated iteration (" << fidelity << "): " << r.cycles
                << " cycles, max " << r.maxChannelFlits
                << " flits on the busiest link\n";
      if (!heatmapPath.empty()) {
        std::ofstream heat(heatmapPath);
        if (!heat) {
          std::cerr << "cannot write " << heatmapPath << "\n";
          return 1;
        }
        simnet::writeLinkHeatmapJson(heat, machine, capture);
        std::cerr << "  wrote " << heatmapPath << " ("
                  << capture.channels.size() << " channels, "
                  << capture.samples.size() << " occupancy samples)\n";
      }
      telemetry.flush();
      if (!tele.traceOutPath.empty()) {
        std::cerr << "  wrote " << tele.traceOutPath << "\n";
      }
      if (!tele.metricsOutPath.empty()) {
        std::cerr << "  wrote " << tele.metricsOutPath << "\n";
      }
    }
    if (memReport) {
      obs::MemRegistry::instance().sampleRss();
      obs::MemRegistry::instance().writeReport(std::cerr);
    }
    flushGuard.armed = false;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
