/// \file rahtm_map.cpp
/// The offline mapping tool the paper describes (§I, §V-B): take a
/// communication profile (or a named synthetic workload), a machine
/// description and a concentration factor; emit a BG/Q-style mapfile that
/// the MPI runtime consumes on every subsequent run.
///
/// Usage:
///   rahtm_map --machine 4x4x4x2 --concentration 8 --benchmark CG \
///             --out cg.map [--mapper rahtm|abcdet|hilbert|rht|greedy|random]
///   rahtm_map --machine 4x4x4x2 --concentration 8 --profile run.prof \
///             --grid 32x32 --out app.map
///
/// The profile format is the library's IPM-lite text format (see
/// profile/profile.hpp); --grid names the logical rank-grid geometry used
/// by the clustering tile search.

#include <fstream>
#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "core/bisection_mapper.hpp"
#include "core/greedy_mapper.hpp"
#include "core/rahtm.hpp"
#include "graph/stats.hpp"
#include "mapping/hilbert.hpp"
#include "mapping/mapfile.hpp"
#include "mapping/permutation.hpp"
#include "mapping/rubik.hpp"
#include "profile/profile.hpp"
#include "routing/oblivious.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace rahtm;

Shape parseShape(const std::string& spec) {
  Shape shape;
  for (const std::string& part : split(spec, 'x')) {
    shape.push_back(static_cast<std::int32_t>(parseInt(part)));
  }
  return shape;
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --machine AxBxC... --concentration N\n"
      << "          (--benchmark BT|SP|CG | --profile FILE [--grid AxB])\n"
      << "          [--out mapfile] [--mapper rahtm|abcdet|hilbert|rht|"
         "greedy|rcb|random]\n"
      << "          [--bytes N] [--beam N] [--no-merge] [--no-refine] "
         "[--verbose]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    if (args.has("help") || !args.has("machine")) return usage(argv[0]);
    if (args.getBool("verbose")) setLogLevel(LogLevel::Info);

    const Torus machine = Torus::torus(parseShape(args.getString("machine", "")));
    const int concentration =
        static_cast<int>(args.getInt("concentration", 1));
    const auto ranks =
        static_cast<RankId>(machine.numNodes() * concentration);

    // ---- Input: profile file or named synthetic workload -----------------
    CommGraph graph;
    Shape grid;
    if (args.has("profile")) {
      std::ifstream in(args.getString("profile", ""));
      if (!in) {
        std::cerr << "cannot open profile file\n";
        return 1;
      }
      const Profile p = readProfile(in);
      graph = p.matrix;
      if (args.has("grid")) grid = parseShape(args.getString("grid", ""));
      if (graph.numRanks() != ranks) {
        std::cerr << "profile has " << graph.numRanks() << " ranks; machine*"
                  << "concentration = " << ranks << "\n";
        return 1;
      }
    } else {
      NasParams params;
      params.messageBytes = args.getInt("bytes", 4096);
      const Workload w =
          makeNasByName(args.getString("benchmark", "CG"), ranks, params);
      graph = w.commGraph();
      grid = w.logicalGrid;
    }

    // ---- Mapper selection -------------------------------------------------
    const std::string which = args.getString("mapper", "rahtm");
    std::unique_ptr<TaskMapper> mapper;
    if (which == "rahtm") {
      RahtmConfig cfg;
      cfg.logicalGrid = grid;
      cfg.merge.beamWidth = static_cast<int>(args.getInt("beam", 64));
      cfg.enableMerge = !args.getBool("no-merge");
      cfg.finalRefinement = !args.getBool("no-refine");
      mapper = std::make_unique<RahtmMapper>(cfg);
    } else if (which == "abcdet") {
      mapper = std::make_unique<DefaultMapper>();
    } else if (which == "hilbert") {
      mapper = std::make_unique<HilbertMapper>();
    } else if (which == "rht") {
      mapper = std::make_unique<RubikMapper>(
          RubikMapper::autoFor(ranks, machine, concentration));
    } else if (which == "greedy") {
      mapper = std::make_unique<GreedyHopBytesMapper>(grid);
    } else if (which == "rcb") {
      BisectionConfig bisect;
      bisect.logicalGrid = grid;
      mapper = std::make_unique<RecursiveBisectionMapper>(bisect);
    } else if (which == "random") {
      mapper = std::make_unique<RandomMapper>();
    } else {
      std::cerr << "unknown mapper '" << which << "'\n";
      return usage(argv[0]);
    }

    const Mapping mapping = mapper->map(graph, machine, concentration);
    const std::string err = mapping.validate(machine, concentration);
    if (!err.empty()) {
      std::cerr << "internal error: invalid mapping: " << err << "\n";
      return 1;
    }

    // ---- Report + mapfile --------------------------------------------------
    const GraphStats stats = computeStats(graph);
    std::cerr << which << ": mapped " << stats.ranks << " ranks ("
              << stats.flows << " flows) onto " << machine.describe()
              << ", concentration " << concentration << "\n";
    std::cerr << "  MCL (MAR model): "
              << placementMcl(machine, graph, mapping.nodeVector())
              << ", hop-bytes: "
              << hopBytes(graph, machine, mapping.nodeVector()) << "\n";

    const std::string outPath = args.getString("out", "rahtm.map");
    std::ofstream out(outPath);
    if (!out) {
      std::cerr << "cannot write " << outPath << "\n";
      return 1;
    }
    writeMapfile(out, mapping, machine);
    std::cerr << "  wrote " << outPath << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
