#!/usr/bin/env bash
# CI driver: build and run the test suite three times — an optimized
# Release configuration, an ASan/UBSan configuration, and a ThreadSanitizer
# configuration covering the threaded execution-layer tests (TSan cannot be
# combined with ASan, hence the separate tree; RAHTM_SANITIZE, see the
# top-level CMakeLists.txt). Run from anywhere; build trees live under the
# repo root as build-ci-release/, build-ci-sanitize/ and build-ci-tsan/.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1"; shift
  local filter="$1"; shift
  local dir="$repo/build-ci-$name"
  echo "==== [$name] configure"
  cmake -B "$dir" -S "$repo" "$@"
  echo "==== [$name] build"
  cmake --build "$dir" -j "$jobs"
  echo "==== [$name] ctest"
  local extra=()
  if [[ -n "$filter" ]]; then extra+=(-R "$filter"); fi
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" "${extra[@]}"
}

run_config release "" -DCMAKE_BUILD_TYPE=Release
run_config sanitize "" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRAHTM_SANITIZE=address,undefined
# TSan pass: only the suites that exercise the thread pool and the
# parallel pipeline paths (the serial suites add nothing under TSan).
# test_simnet covers the sharded parallel simulator (spin-barrier cycle
# loop, mailbox handoffs, gang scheduling on a shared pool); test_serve the
# cross-request artifact cache and the scheduler's concurrent waves;
# test_route_cache the tiered route cache's sharded sparse tier under
# concurrent readers racing a concurrent shedder.
run_config tsan 'test_exec|test_subproblem|test_rahtm|test_flight_recorder|test_simnet|test_serve|test_route_cache' \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DRAHTM_SANITIZE=thread

# Benchmark-regression gate: emit the smoke ledger at the small scale,
# validate the schema, then compare against the committed baseline (the
# check re-runs the suite at the scale recorded in the baseline's
# fingerprint, so the env here only governs the freshly emitted ledger).
# Mapper and simulator are deterministic and single-threaded in the
# suites, so any metric drift beyond the thresholds is a real change.
echo "==== [bench-smoke] ledger + regression gate"
bench_bin="$repo/build-ci-release/tools/rahtm_bench"
bench_out="$repo/build-ci-release/bench-smoke"
mkdir -p "$bench_out"
RAHTM_NODES=32 RAHTM_CONC=2 RAHTM_SIM_ITERS=1 \
  "$bench_bin" --suites smoke --out "$bench_out"
"$bench_bin" --validate "$bench_out/BENCH_smoke.json"
"$bench_bin" --baseline "$repo/bench/baseline/BENCH_smoke.json" --check

# Refinement/annealing micro-ledger: quality metrics (mcl, hop_bytes) are
# gated; the swaps/sec and probes/sec throughput columns are recorded for
# trend-watching but never fail the build (infinite default thresholds).
echo "==== [bench-refine-micro] ledger + regression gate"
RAHTM_NODES=32 RAHTM_CONC=2 RAHTM_SIM_ITERS=1 \
  "$bench_bin" --suites refine_micro --out "$bench_out"
"$bench_bin" --validate "$bench_out/BENCH_refine_micro.json"
"$bench_bin" --baseline "$repo/bench/baseline/BENCH_refine_micro.json" --check

# Forensics stage: the deliberately misbehaving fixture must leave valid
# rahtm.postmortem/v1 artifacts behind for every escalation path (watchdog
# stall dump, SIGSEGV handler, SIGABRT handler), and the always-on
# instrumentation must stay inside its <=2% overhead budget (gated via the
# committed obs_overhead baseline, whose overhead_ratio is pinned at 1.0 so
# the 2% threshold reads as an absolute budget).
echo "==== [forensics] post-mortem artifacts + overhead gate"
fixture="$repo/build-ci-release/tools/rahtm_forensics_fixture"
pm_dir="$repo/build-ci-release/forensics"
rm -rf "$pm_dir" && mkdir -p "$pm_dir"

"$fixture" --mode stall --dir "$pm_dir" --deadline-sec 0.2
rc=0; "$fixture" --mode crash --dir "$pm_dir" 2>/dev/null || rc=$?
[[ "$rc" -eq 139 ]] || { echo "crash fixture: expected SIGSEGV (139), got $rc"; exit 1; }
rc=0; "$fixture" --mode abort --dir "$pm_dir" 2>/dev/null || rc=$?
[[ "$rc" -eq 134 ]] || { echo "abort fixture: expected SIGABRT (134), got $rc"; exit 1; }

for reason in stall sigsegv sigabrt; do
  artifact="$pm_dir/postmortem.$reason.json"
  [[ -s "$artifact" ]] || { echo "missing forensics artifact: $artifact"; exit 1; }
  "$bench_bin" --validate "$artifact"
done

RAHTM_NODES=32 RAHTM_CONC=2 RAHTM_SIM_ITERS=1 \
  "$bench_bin" --suites obs_overhead --out "$bench_out"
"$bench_bin" --validate "$bench_out/BENCH_obs_overhead.json"
"$bench_bin" --baseline "$repo/bench/baseline/BENCH_obs_overhead.json" --check

# Simulator gate: the threaded cycle sim must reproduce the serial results
# bit for bit (determinism_mismatches, baseline 0 → any mismatch fails),
# and the flow-level analytic mode must stay within its committed relative
# error on cycles/MCL (flow_*_rel_err). Wall-clock/speedup columns are
# recorded for trend-watching only — they depend on the host's core count.
echo "==== [simnet-micro] determinism + fidelity gate"
RAHTM_NODES=32 RAHTM_CONC=2 RAHTM_SIM_ITERS=1 \
  "$bench_bin" --suites simnet_micro --out "$bench_out"
"$bench_bin" --validate "$bench_out/BENCH_simnet_micro.json"
"$bench_bin" --baseline "$repo/bench/baseline/BENCH_simnet_micro.json" --check

# Memory-accounting gate: per-subsystem accounted peaks are pure functions
# of the workload (capacity-based accounting) and gated tight (5%); the
# accounting overhead ratio carries the same <=2% budget as the forensics
# layer (baseline pinned at 1.0, so the threshold reads as an absolute
# budget). rss_coverage and the wall times ride along ungated.
echo "==== [mem-micro] subsystem footprint + accounting overhead gate"
RAHTM_NODES=32 RAHTM_CONC=2 RAHTM_SIM_ITERS=1 \
  "$bench_bin" --suites mem_micro --out "$bench_out"
"$bench_bin" --validate "$bench_out/BENCH_mem_micro.json"
"$bench_bin" --baseline "$repo/bench/baseline/BENCH_mem_micro.json" --check

# Serve gates. Smoke: a two-request stdin batch through the daemon must
# produce schema-valid NDJSON responses (same --validate entry point as the
# ledgers) with cache hits recorded on the warm request. Suite: determinism
# (served vs one-shot mapping mismatches, baseline 0), cache-warm misses
# (baseline 0 — a warm request that rebuilds artifacts fails the gate) and
# the exactly reproducible hit/miss counters are gated; latency quantiles
# and requests/sec ride along ungated (host-dependent).
echo "==== [serve] batch smoke + suite gate"
serve_bin="$repo/build-ci-release/tools/rahtm_serve"
printf '%s\n%s\n' \
  '{"schema":"rahtm.serve.request/v1","id":"cold","machine":"2x2x2","concentration":2,"benchmark":"CG","leaf_milp":4}' \
  '{"schema":"rahtm.serve.request/v1","id":"warm","machine":"2x2x2","concentration":2,"benchmark":"CG","leaf_milp":4}' \
  | "$serve_bin" --stdin --threads 2 > "$bench_out/serve-smoke.ndjson"
"$bench_bin" --validate "$bench_out/serve-smoke.ndjson"
if tail -n 1 "$bench_out/serve-smoke.ndjson" | grep -q '"route_hits":0,'; then
  echo "serve smoke: warm request recorded no cache hits"; exit 1
fi

RAHTM_NODES=32 RAHTM_CONC=2 RAHTM_SIM_ITERS=1 \
  "$bench_bin" --suites serve --out "$bench_out"
"$bench_bin" --validate "$bench_out/BENCH_serve.json"
"$bench_bin" --baseline "$repo/bench/baseline/BENCH_serve.json" --check

# Route-cache gate: sparse-tier reads must match a complete dense build
# bit for bit (tier_parity_mismatches / evict_refault_mismatches, baseline
# 0), and the 512-node paper-scale solve must be invariant under eviction
# (evict_refault_mapping_mismatches, tier_vs_dense_mcl_mismatches,
# baseline 0) with its quality (mcl / hop_bytes) and peak_rss_mb gated.
# Cache traffic counters ride along ungated.
echo "==== [route-micro] tier parity + 512-node eviction gate"
RAHTM_NODES=32 RAHTM_CONC=2 RAHTM_SIM_ITERS=1 \
  "$bench_bin" --suites route_micro --out "$bench_out"
"$bench_bin" --validate "$bench_out/BENCH_route_micro.json"
"$bench_bin" --baseline "$repo/bench/baseline/BENCH_route_micro.json" --check

# Leak gate: the smoke suite under the ASan tree with LSan on. The
# registries are deliberately leaked singletons (crash handlers read them
# during teardown) — LSan treats globals-reachable memory as live, so this
# stage fails only on genuinely unreachable allocations.
echo "==== [leak-gate] smoke suite under ASan+LSan"
asan_bench="$repo/build-ci-sanitize/tools/rahtm_bench"
leak_out="$repo/build-ci-sanitize/bench-smoke"
mkdir -p "$leak_out"
RAHTM_NODES=32 RAHTM_CONC=2 RAHTM_SIM_ITERS=1 \
  ASAN_OPTIONS=detect_leaks=1 \
  "$asan_bench" --suites smoke --out "$leak_out"

echo "==== CI passed (release + sanitize + tsan + bench-smoke + refine-micro + forensics + simnet-micro + mem-micro + serve + route-micro + leak-gate)"
