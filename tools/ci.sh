#!/usr/bin/env bash
# CI driver: build and run the test suite three times — an optimized
# Release configuration, an ASan/UBSan configuration, and a ThreadSanitizer
# configuration covering the threaded execution-layer tests (TSan cannot be
# combined with ASan, hence the separate tree; RAHTM_SANITIZE, see the
# top-level CMakeLists.txt). Run from anywhere; build trees live under the
# repo root as build-ci-release/, build-ci-sanitize/ and build-ci-tsan/.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1"; shift
  local filter="$1"; shift
  local dir="$repo/build-ci-$name"
  echo "==== [$name] configure"
  cmake -B "$dir" -S "$repo" "$@"
  echo "==== [$name] build"
  cmake --build "$dir" -j "$jobs"
  echo "==== [$name] ctest"
  local extra=()
  if [[ -n "$filter" ]]; then extra+=(-R "$filter"); fi
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" "${extra[@]}"
}

run_config release "" -DCMAKE_BUILD_TYPE=Release
run_config sanitize "" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRAHTM_SANITIZE=address,undefined
# TSan pass: only the suites that exercise the thread pool and the
# parallel pipeline paths (the serial suites add nothing under TSan).
run_config tsan 'test_exec|test_subproblem|test_rahtm' \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DRAHTM_SANITIZE=thread

echo "==== CI passed (release + sanitize + tsan)"
