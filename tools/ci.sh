#!/usr/bin/env bash
# CI driver: build and run the test suite twice — an optimized Release
# configuration, then an ASan/UBSan configuration (RAHTM_SANITIZE, see the
# top-level CMakeLists.txt). Run from anywhere; build trees live under the
# repo root as build-ci-release/ and build-ci-sanitize/.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1"; shift
  local dir="$repo/build-ci-$name"
  echo "==== [$name] configure"
  cmake -B "$dir" -S "$repo" "$@"
  echo "==== [$name] build"
  cmake --build "$dir" -j "$jobs"
  echo "==== [$name] ctest"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

run_config release -DCMAKE_BUILD_TYPE=Release
run_config sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DRAHTM_SANITIZE=address,undefined

echo "==== CI passed (release + sanitize)"
