/// \file rahtm_serve.cpp
/// Mapping-as-a-service daemon. Speaks newline-delimited JSON
/// (rahtm.serve.request/v1 in, rahtm.serve.response/v1 out) over either a
/// Unix stream socket (daemon mode) or stdin/stdout (batch mode, used by
/// CI). Requests are admitted through the serve::Scheduler (bounded queue,
/// reject-with-retry-after past the depth limit) and solved in batched
/// fork-join waves on a shared thread pool; per-topology route tables and
/// flow incidences are shared across requests through the
/// serve::ArtifactCache, with bit-identical mappings to one-shot
/// rahtm_map runs at equal seeds.
///
/// Usage:
///   rahtm_serve --stdin < requests.ndjson > responses.ndjson
///   rahtm_serve --socket /tmp/rahtm.sock

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "mapping/mapfile.hpp"
#include "obs/mem.hpp"
#include "obs/telemetry.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/service.hpp"
#include "topology/torus.hpp"

namespace {

using namespace rahtm;

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " (--stdin | --socket PATH)\n"
      << "          [--threads N] [--batch N] [--queue-depth N]\n"
      << "          [--cache-mb N] [--no-cache] [--no-mapping]\n"
      << "          [--map-out-dir DIR]\n"
      << "          [--trace-out FILE] [--trace-summary FILE] "
         "[--metrics-out FILE]\n"
      << "          [--mem-report] [--mem-budget-mb N] [--verbose]\n"
      << "\n"
      << "--stdin reads one rahtm.serve.request/v1 JSON document per line\n"
      << "until EOF and writes one rahtm.serve.response/v1 line per request\n"
      << "to stdout, in request order (batch mode, used by CI).\n"
      << "--socket listens on a Unix stream socket; each connection is an\n"
      << "NDJSON session with responses in per-connection request order.\n"
      << "\n"
      << "--threads N sizes the solve pool (0 = all hardware threads);\n"
      << "--batch N caps the requests per fork-join wave; --queue-depth N\n"
      << "bounds the admission queue -- past it, submissions are rejected\n"
      << "with a retry-after hint (batch mode retries internally).\n"
      << "\n"
      << "--cache-mb N budgets the cross-request artifact cache (route\n"
      << "tables + flow incidences, LRU-by-bytes; default 256). The cache\n"
      << "also registers a memory-pressure degrade callback, so an\n"
      << "accounted-memory budget breach drops it before any solve fails.\n"
      << "--no-mapping omits the per-rank mapping array from responses;\n"
      << "--map-out-dir writes each successful mapping as DIR/<id>.map\n"
      << "(BG/Q mapfile, same writer as rahtm_map).\n";
  return 2;
}

struct ServeOptions {
  serve::SchedulerConfig sched;
  bool includeMapping = true;
  std::string mapOutDir;
};

/// Submit with bounded retries: batch/connection handlers must eventually
/// process every request, so a backpressure rejection becomes a client-side
/// wait for the suggested retry-after interval.
serve::Scheduler::Ticket submitWithRetry(serve::Scheduler& sched,
                                         const serve::MapRequest& req) {
  for (;;) {
    serve::Scheduler::Ticket t = sched.submit(req);
    if (t.accepted) return t;
    const double sec = std::min(std::max(t.retryAfterSec, 1e-3), 0.1);
    std::this_thread::sleep_for(std::chrono::duration<double>(sec));
  }
}

void writeMapfileFor(const ServeOptions& opt, const serve::MapRequest& req,
                     const serve::MapResponse& resp, std::size_t index) {
  if (opt.mapOutDir.empty() || !resp.ok) return;
  const std::string name =
      resp.id.empty() ? ("request-" + std::to_string(index)) : resp.id;
  const std::string path = opt.mapOutDir + "/" + name + ".map";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  writeMapfile(out, resp.mapping, Torus::torus(req.machine));
}

/// One response line for a request line that failed to parse: ok == false,
/// the parse error as the message, no id correlation available beyond what
/// the line carried.
serve::MapResponse parseFailure(const std::string& what) {
  serve::MapResponse resp;
  resp.ok = false;
  resp.error = what;
  return resp;
}

int runStdinBatch(serve::Scheduler& sched, const ServeOptions& opt) {
  struct Pending {
    bool ready = false;               // parse failures are ready immediately
    serve::MapResponse resp;
    std::future<serve::MapResponse> future;
    serve::MapRequest req;
  };
  std::vector<Pending> pending;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    Pending p;
    try {
      p.req = serve::parseMapRequestLine(line);
      p.future = submitWithRetry(sched, p.req).response;
    } catch (const std::exception& e) {
      p.ready = true;
      p.resp = parseFailure(e.what());
    }
    pending.push_back(std::move(p));
  }
  sched.drain();
  std::size_t ok = 0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    Pending& p = pending[i];
    if (!p.ready) p.resp = p.future.get();
    if (p.resp.ok) ++ok;
    writeMapfileFor(opt, p.req, p.resp, i);
    serve::writeMapResponseJson(std::cout, p.resp, opt.includeMapping);
    std::cout << "\n";
  }
  std::cout.flush();
  std::cerr << "rahtm_serve: " << pending.size() << " requests, " << ok
            << " ok";
  if (!pending.empty()) {
    const serve::ArtifactCacheStats& c = pending.back().resp.cache;
    std::cerr << "; cache: " << c.routeHits << "/" << c.routeMisses
              << " route hits/misses, " << c.incidenceHits << "/"
              << c.incidenceMisses << " incidence, " << c.evictions
              << " evictions";
  }
  std::cerr << "\n";
  return ok == pending.size() ? 0 : 1;
}

std::atomic<int> g_listenFd{-1};

void onSignal(int) {
  // Break the accept loop; the fd close makes accept() return with EBADF.
  const int fd = g_listenFd.exchange(-1);
  if (fd >= 0) close(fd);
}

void serveConnection(int fd, serve::Scheduler& sched,
                     const ServeOptions& opt) {
  std::string buffer;
  char chunk[4096];
  std::size_t index = 0;
  const auto handleLine = [&](const std::string& line) {
    if (line.empty()) return;
    serve::MapRequest req;
    serve::MapResponse resp;
    try {
      req = serve::parseMapRequestLine(line);
      resp = submitWithRetry(sched, req).response.get();
    } catch (const std::exception& e) {
      resp = parseFailure(e.what());
    }
    writeMapfileFor(opt, req, resp, index++);
    std::ostringstream os;
    serve::writeMapResponseJson(os, resp, opt.includeMapping);
    os << "\n";
    const std::string out = os.str();
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t n = write(fd, out.data() + sent, out.size() - sent);
      if (n <= 0) return;
      sent += static_cast<std::size_t>(n);
    }
  };
  for (;;) {
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      handleLine(buffer.substr(start, nl - start));
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  if (!buffer.empty()) handleLine(buffer);
  close(fd);
}

int runSocket(const std::string& path, serve::Scheduler& sched,
              const ServeOptions& opt) {
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "cannot create socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "socket path too long\n";
    close(fd);
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  unlink(path.c_str());
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, 16) != 0) {
    std::cerr << "cannot listen on " << path << ": " << std::strerror(errno)
              << "\n";
    close(fd);
    return 1;
  }
  g_listenFd.store(fd);
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  // A client that hangs up before its response must cost one EPIPE'd
  // write, not the whole daemon.
  std::signal(SIGPIPE, SIG_IGN);
  std::cerr << "rahtm_serve: listening on " << path << "\n";
  std::vector<std::thread> sessions;
  for (;;) {
    const int conn = accept(fd, nullptr, nullptr);
    if (conn < 0) break;  // listener closed by the signal handler
    sessions.emplace_back(
        [conn, &sched, &opt] { serveConnection(conn, sched, opt); });
  }
  for (std::thread& t : sessions) t.join();
  unlink(path.c_str());
  std::cerr << "rahtm_serve: shut down\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Pin the memory registry's RSS baseline before any subsystem allocates.
    obs::MemRegistry::instance();

    const CliArgs args(argc, argv);
    const bool stdinMode = args.getBool("stdin");
    const std::string socketPath = args.getString("socket", "");
    if (args.has("help") || (stdinMode == !socketPath.empty())) {
      return usage(argv[0]);
    }
    if (args.getBool("verbose")) setLogLevel(LogLevel::Info);

    obs::TelemetryConfig tele = obs::telemetryConfigFromEnv();
    if (args.has("trace-out")) {
      tele.traceOutPath = args.getString("trace-out", "");
    }
    if (args.has("trace-summary")) {
      tele.traceSummaryPath = args.getString("trace-summary", "");
    }
    if (args.has("metrics-out")) {
      tele.metricsOutPath = args.getString("metrics-out", "");
    }
    obs::TelemetrySession telemetry(tele);

    if (args.has("mem-budget-mb")) {
      obs::MemRegistry::instance().setBudgetBytes(
          args.getInt("mem-budget-mb", 0) * 1024 * 1024);
    }

    serve::ArtifactCacheConfig cacheCfg;
    cacheCfg.maxBytes = args.getInt("cache-mb", 256) * 1024 * 1024;
    serve::ArtifactCache cache(cacheCfg);
    const bool useCache = !args.getBool("no-cache");
    serve::MapService service(useCache ? &cache : nullptr);

    ServeOptions opt;
    opt.sched.threads = static_cast<int>(args.getInt("threads", 0));
    opt.sched.maxBatch = static_cast<int>(args.getInt("batch", 8));
    opt.sched.maxQueueDepth =
        static_cast<int>(args.getInt("queue-depth", 64));
    opt.includeMapping = !args.getBool("no-mapping");
    opt.mapOutDir = args.getString("map-out-dir", "");
    if (!opt.mapOutDir.empty()) {
      // Fail fast: a mistyped directory should not turn into a run that
      // solves everything and silently writes no mapfiles.
      std::error_code ec;
      std::filesystem::create_directories(opt.mapOutDir, ec);
      if (ec) {
        throw Error("cannot create --map-out-dir " + opt.mapOutDir + ": " +
                    ec.message());
      }
    }
    serve::Scheduler sched(service, opt.sched);

    int rc;
    if (stdinMode) {
      rc = runStdinBatch(sched, opt);
    } else {
      rc = runSocket(socketPath, sched, opt);
    }
    sched.shutdown();
    telemetry.flush();
    if (args.getBool("mem-report")) {
      obs::MemRegistry::instance().sampleRss();
      obs::MemRegistry::instance().writeReport(std::cerr);
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
