/// \file rahtm_forensics_fixture.cpp
/// Deliberately misbehaving binary for the CI forensics stage.
///
/// Each mode exercises one escalation path of the run-forensics layer and
/// is expected to leave a `rahtm.postmortem/v1` artifact behind:
///
///   --mode stall      enter a phase, then spin without heartbeats until the
///                     watchdog dumps `postmortem.stall.json`; exits 0 once
///                     the dump is observed (watchdog action is forced to
///                     `dump` so the fixture never aborts).
///   --mode crash      install the handlers, then dereference null; the
///                     signal handler writes `postmortem.sigsegv.json` and
///                     re-raises, so the process dies by SIGSEGV.
///   --mode abort      std::abort() -> `postmortem.sigabrt.json`.
///   --mode terminate  throw an uncaught exception -> terminate hook writes
///                     `postmortem.terminate.json` (and the subsequent
///                     std::abort adds `postmortem.sigabrt.json`).
///
/// Usage: rahtm_forensics_fixture --mode MODE --dir DIR [--deadline-sec S]

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/cli.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heartbeat.hpp"
#include "obs/postmortem.hpp"
#include "obs/watchdog.hpp"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --mode stall|crash|abort|terminate --dir DIR"
            << " [--deadline-sec S]\n";
  return 2;
}

/// Volatile sink so the optimizer cannot elide the stall loop or the null
/// dereference.
volatile int* gNull = nullptr;
volatile std::uint64_t gSink = 0;

int runStall(const std::string& dir, double deadlineSec) {
  using rahtm::obs::Watchdog;
  using rahtm::obs::WatchdogAction;
  using rahtm::obs::WatchdogConfig;

  WatchdogConfig cfg;
  cfg.enabled = true;
  cfg.pollMs = 20;
  cfg.defaultDeadlineSec = deadlineSec;
  cfg.action = WatchdogAction::Dump;  // never abort the fixture itself
  cfg.postmortemDir = dir;
  Watchdog wd(cfg);
  wd.start();

  // Produce a little genuine progress first so the artifact has nonzero
  // heartbeats, then go silent inside a named phase.
  rahtm::obs::Heartbeats::instance().beat(rahtm::obs::Pulse::PoolTasks, 7);
  rahtm::obs::PhaseScope phase("fixture.stall");
  const auto start = std::chrono::steady_clock::now();
  while (wd.stallsDetected() == 0 || wd.lastStage() < 2) {
    for (int i = 0; i < 1000; ++i) gSink = gSink + 1;  // spin, no beats
    if (std::chrono::steady_clock::now() - start > std::chrono::seconds(30)) {
      std::cerr << "fixture: watchdog never dumped within 30s\n";
      return 1;
    }
  }
  wd.stop();
  std::cout << "fixture: stall dump observed (stage " << wd.lastStage()
            << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  rahtm::CliArgs args(argc, argv);
  const std::string mode = args.getString("mode", "");
  const std::string dir = args.getString("dir", "");
  if (mode.empty() || dir.empty()) return usage(argv[0]);

  rahtm::obs::installPostmortem(dir);

  if (mode == "stall") {
    return runStall(dir, args.getDouble("deadline-sec", 0.2));
  }
  rahtm::obs::PhaseScope phase("fixture.fatal");
  if (mode == "crash") {
    gSink = static_cast<std::uint64_t>(*gNull);  // SIGSEGV
    return 1;                                    // unreachable
  }
  if (mode == "abort") {
    std::abort();
  }
  if (mode == "terminate") {
    throw std::runtime_error("fixture: deliberate uncaught exception");
  }
  return usage(argv[0]);
}
