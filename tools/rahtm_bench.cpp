/// \file rahtm_bench.cpp
/// Benchmark-ledger driver: runs named suites of the paper-reproduction
/// experiments (bench/suites.hpp) and emits canonical `BENCH_<suite>.json`
/// ledgers (obs/report.hpp), so the repo's own numbers are machine-readable
/// and diffable across commits.
///
/// Modes:
///   rahtm_bench --suites fig8,fig9 --out DIR
///       Run each suite at the environment scale (RAHTM_NODES/CONC/BYTES)
///       and write DIR/BENCH_<suite>.json.
///   rahtm_bench --baseline FILE --check [--candidate FILE]
///       Regression gate: compare a candidate ledger against a committed
///       baseline under per-metric relative thresholds; exit nonzero on any
///       regression or structural mismatch. Without --candidate the
///       baseline's suite is re-run at the baseline's recorded scale.
///   rahtm_bench --validate FILE
///       Parse FILE and check it against the ledger schema; exit nonzero
///       with the list of problems if invalid.

#include <fstream>
#include <iostream>
#include <sstream>

#include "bench/suites.hpp"
#include "common/cli.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "obs/json_reader.hpp"
#include "obs/mem.hpp"
#include "obs/postmortem.hpp"
#include "obs/report.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace rahtm;

int usage(const char* argv0) {
  std::string suites;
  for (const std::string& s : bench::knownSuites()) {
    suites += suites.empty() ? s : (", " + s);
  }
  std::cerr
      << "usage: " << argv0 << " --suites S1,S2,... [--out DIR]\n"
      << "       " << argv0 << " --baseline FILE --check [--candidate FILE]\n"
      << "                  [--thresholds metric=rel,...] [--out DIR]\n"
      << "       " << argv0 << " --validate FILE\n"
      << "       [--sim-threads N] [--sim-fidelity cycle|flow]\n"
      << "       [--mem-report] [--mem-budget-mb N]\n"
      << "       [--trace-out FILE] [--trace-summary FILE] "
         "[--metrics-out FILE] [--postmortem-dir DIR] [--verbose]\n"
      << "\n"
      << "suites: " << suites << "\n"
      << "\n"
      << "Each suite writes BENCH_<suite>.json: a versioned ledger of the\n"
      << "suite's measured metrics (MCL, hop-bytes, simulated cycles,\n"
      << "mapping time) plus an environment fingerprint (git SHA, compiler,\n"
      << "scale, wall time, peak RSS). --check re-runs the baseline's suite\n"
      << "at the baseline's recorded scale, so it is reproducible whatever\n"
      << "the current RAHTM_NODES/CONC/BYTES say. Default thresholds: mcl\n"
      << "and hop_bytes 2%, comm/overall cycles 5%, map_seconds ungated;\n"
      << "override with --thresholds mcl=0.1,comm_cycles=0.2.\n"
      << "\n"
      << "--validate accepts both rahtm.bench.report/v1 ledgers and\n"
      << "rahtm.postmortem/v1 artifacts (dispatched on the 'schema' key).\n"
      << "--postmortem-dir installs the crash/stall post-mortem handlers\n"
      << "for the benchmark run itself (default RAHTM_POSTMORTEM_DIR).\n"
      << "--mem-budget-mb N enforces the staged accounted-memory budget\n"
      << "(overrides RAHTM_MEM_BUDGET_MB; warn 80% / degrade 100% / fail\n"
      << "125%); --mem-report prints the per-subsystem memory table to\n"
      << "stderr when the run finishes.\n";
  return 2;
}

obs::ThresholdMap thresholdsFromFlag(const std::string& spec) {
  obs::ThresholdMap thresholds = obs::defaultThresholds();
  if (spec.empty()) return thresholds;
  for (const std::string& part : split(spec, ',')) {
    const auto eq = part.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ParseError("--thresholds: expected metric=rel, got '" + part + "'");
    }
    thresholds[part.substr(0, eq)] = parseDouble(part.substr(eq + 1));
  }
  return thresholds;
}

void writeLedger(const obs::RunReport& report, const std::string& dir) {
  const std::string path = dir + "/BENCH_" + report.suite + ".json";
  std::ofstream out(path);
  if (!out) throw Error("cannot write " + path);
  report.writeJson(out);
  out.flush();
  if (!out) throw Error("write failed for " + path);
  std::cerr << "wrote " << path << " (" << report.records.size()
            << " records)\n";
}

int runValidate(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  std::vector<std::string> problems;
  // Dispatch on the document's declared schema: ledgers, post-mortem
  // artifacts, and rahtm_serve NDJSON response streams share the one
  // --validate entry point. A response stream is detected from its first
  // line (one JSON document per line) and validated line by line.
  std::string kind = "ledger";
  bool ndjson = false;
  try {
    const obs::JsonValue head =
        obs::parseJson(content.substr(0, content.find('\n')));
    ndjson = head.stringOr("schema", "") == serve::kServeResponseSchema;
  } catch (...) {
    // Not a single-line document; the whole-file path reports the error.
  }
  if (ndjson) {
    kind = "serve response stream";
    std::istringstream lines(content);
    std::string line;
    int lineNo = 0;
    while (std::getline(lines, line)) {
      ++lineNo;
      if (line.empty()) continue;
      try {
        for (const std::string& p :
             serve::validateServeResponseJson(obs::parseJson(line))) {
          problems.push_back("line " + std::to_string(lineNo) + ": " + p);
        }
      } catch (const std::exception& e) {
        problems.push_back("line " + std::to_string(lineNo) + ": " + e.what());
      }
    }
  } else {
    try {
      const obs::JsonValue doc = obs::parseJson(content);
      if (doc.stringOr("schema", "") == obs::kPostmortemSchema) {
        kind = "postmortem";
        problems = obs::validatePostmortemJson(doc);
      } else {
        problems = obs::validateReportJson(doc);
      }
    } catch (const std::exception& e) {
      problems.push_back(e.what());
    }
  }
  if (problems.empty()) {
    std::cout << path << ": schema-valid " << kind << "\n";
    return 0;
  }
  std::cerr << path << ": INVALID " << kind << ":\n";
  for (const std::string& p : problems) std::cerr << "  " << p << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Pin the memory registry's RSS baseline before any subsystem (recorder
    // rings, telemetry buffers) allocates: rss_coverage measures growth
    // past this point.
    obs::MemRegistry::instance();

    const CliArgs args(argc, argv);
    if (args.has("help")) return usage(argv[0]);
    if (args.getBool("verbose")) setLogLevel(LogLevel::Info);
    const auto telemetry = bench::telemetryFromCli(argc, argv);

    if (args.has("validate")) {
      return runValidate(args.getString("validate", ""));
    }

    // Benchmark runs are exactly the long solves the forensics layer is
    // for: install the post-mortem handlers before any suite work.
    std::string pmDir = args.getString("postmortem-dir", "");
    if (pmDir.empty()) pmDir = obs::postmortemDirFromEnv();
    obs::installPostmortem(pmDir);

    // CLI override for the staged accounted-memory budget (otherwise the
    // registry picked RAHTM_MEM_BUDGET_MB up at first use).
    if (args.has("mem-budget-mb")) {
      obs::MemRegistry::instance().setBudgetBytes(
          args.getInt("mem-budget-mb", 0) * 1024 * 1024);
    }
    const bool memReport = args.getBool("mem-report");

    const std::string outDir = args.getString("out", ".");

    if (args.has("baseline")) {
      const obs::RunReport baseline =
          obs::readReportFile(args.getString("baseline", ""));
      obs::RunReport candidate;
      if (args.has("candidate")) {
        candidate = obs::readReportFile(args.getString("candidate", ""));
      } else {
        std::cerr << "re-running suite '" << baseline.suite
                  << "' at the baseline's scale (" << baseline.env.nodes
                  << " nodes, concentration " << baseline.env.concentration
                  << ")\n";
        candidate = bench::runSuite(
            baseline.suite, bench::scaleFromFingerprint(baseline.env));
        if (args.has("out")) writeLedger(candidate, outDir);
      }
      const obs::CheckResult result = obs::compareReports(
          baseline, candidate,
          thresholdsFromFlag(args.getString("thresholds", "")));
      obs::printCheckResult(std::cout, result);
      if (memReport) obs::MemRegistry::instance().writeReport(std::cerr);
      if (!args.getBool("check")) {
        // Comparison requested without gating: always exit 0.
        return 0;
      }
      return result.pass() ? 0 : 1;
    }

    if (!args.has("suites")) return usage(argv[0]);
    bench::ExperimentScale scale = bench::ExperimentScale::fromEnv();
    // CLI overrides for the simulator knobs (fall back to RAHTM_SIM_THREADS
    // / RAHTM_SIM_FIDELITY, applied in fromEnv). Thread count never changes
    // results; fidelity does, and the fingerprint-scale re-run of --check
    // deliberately ignores both env and flag for it.
    if (args.has("sim-threads")) {
      scale.sim.threads = static_cast<int>(args.getInt("sim-threads", 1));
    }
    if (args.has("sim-fidelity")) {
      const std::string fidelity = args.getString("sim-fidelity", "cycle");
      if (fidelity == "flow") {
        scale.sim.fidelity = simnet::SimFidelity::Flow;
      } else if (fidelity != "cycle") {
        throw ParseError("--sim-fidelity must be 'cycle' or 'flow'");
      } else {
        scale.sim.fidelity = simnet::SimFidelity::Cycle;
      }
    }
    for (const std::string& suite :
         split(args.getString("suites", ""), ',')) {
      std::cerr << "[rahtm_bench] running suite '" << suite << "' ("
                << scale.ranks() << " ranks on " << scale.machine.describe()
                << ")\n";
      writeLedger(bench::runSuite(suite, scale), outDir);
    }
    if (memReport) obs::MemRegistry::instance().writeReport(std::cerr);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
