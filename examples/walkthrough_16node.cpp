/// \file walkthrough_16node.cpp
/// The paper's running example (Figs. 3-7): mapping a 16-process
/// communication graph onto a 4x4 torus, printing what each RAHTM phase
/// produces — the clustering tiling (Fig. 3), the hierarchical pseudo-pins
/// (Figs. 5-6) and the merged final mapping (Fig. 7).

#include <iomanip>
#include <iostream>

#include "core/clustering.hpp"
#include "core/hierarchy.hpp"
#include "core/rahtm.hpp"
#include "graph/stats.hpp"
#include "mapping/permutation.hpp"
#include "routing/oblivious.hpp"
#include "topology/torus.hpp"

namespace {

using namespace rahtm;

/// A 4x4 process grid with near-neighbor exchanges plus a few heavy
/// longer-range flows — rich enough that every phase has work to do.
CommGraph exampleGraph() {
  const Torus grid = Torus::mesh(Shape{4, 4});
  CommGraph g(16);
  for (NodeId n = 0; n < 16; ++n) {
    const Coord c = grid.coordOf(n);
    for (std::size_t d = 0; d < 2; ++d) {
      if (const auto nb = grid.neighbor(c, d, Dir::Plus)) {
        g.addExchange(static_cast<RankId>(n),
                      static_cast<RankId>(grid.nodeId(*nb)),
                      d == 0 ? 40 : 10);
      }
    }
  }
  g.addExchange(0, 15, 60);  // two heavy diagonal flows
  g.addExchange(3, 12, 60);
  return g;
}

void printGrid(const char* title, const std::vector<ClusterId>& clusterOf) {
  std::cout << title << "\n";
  for (int i = 0; i < 4; ++i) {
    std::cout << "    ";
    for (int j = 0; j < 4; ++j) {
      std::cout << std::setw(3) << clusterOf[static_cast<std::size_t>(i * 4 + j)];
    }
    std::cout << "\n";
  }
}

}  // namespace

int main() {
  using namespace rahtm;
  const Torus machine = Torus::torus(Shape{4, 4});
  const CommGraph g = exampleGraph();

  std::cout << "=== RAHTM walkthrough: 16 processes onto a 4x4 torus ===\n\n";
  std::cout << "communication graph: " << g.numFlows() << " flows, "
            << g.totalVolume() << " volume\n\n";

  // --- Phase 1: clustering (Figs. 3-4) -------------------------------------
  const MachineHierarchy hierarchy(machine);
  std::cout << "machine hierarchy: " << hierarchy.depth() << " levels";
  for (int l = 0; l < hierarchy.depth(); ++l) {
    std::cout << ", level " << l << " = 2-ary cube of "
              << hierarchy.childCount(l) << " blocks";
  }
  std::cout << "\n\n";

  const ClusterTree tree = buildClusterTree(
      g, Shape{4, 4}, /*concentration=*/1, hierarchy.childCountsDeepestFirst());
  std::cout << "phase 1 (clustering): tile search over the process grid\n";
  std::cout << "  deepest level tile " << tree.levels[0].tileShape
            << ", inter-tile volume " << tree.levels[0].interVolume << "\n";
  printGrid("  process -> level-1 cluster:", tree.levels[0].clusterOf);
  std::cout << "\n";

  // --- Phases 2+3 through the public pipeline ------------------------------
  RahtmConfig cfg;
  cfg.logicalGrid = Shape{4, 4};
  RahtmMapper mapper(cfg);
  const Mapping mapping = mapper.map(g, machine, 1);

  std::cout << "phase 2 (hierarchical mapping): "
            << mapper.stats().subproblemsSolved << " subproblems solved (";
  bool first = true;
  for (const auto& [method, count] : mapper.stats().solverMethodCounts) {
    std::cout << (first ? "" : ", ") << count << " " << method;
    first = false;
  }
  std::cout << ")\n";
  std::cout << "phase 3 (merging): root objective "
            << mapper.stats().rootObjective << "\n\n";

  std::cout << "final mapping (process id at each machine coordinate):\n";
  std::vector<RankId> rankAt(16, kInvalidRank);
  for (RankId r = 0; r < 16; ++r) {
    rankAt[static_cast<std::size_t>(mapping.nodeOf(r))] = r;
  }
  for (int i = 0; i < 4; ++i) {
    std::cout << "    ";
    for (int j = 0; j < 4; ++j) {
      std::cout << std::setw(3) << rankAt[static_cast<std::size_t>(i * 4 + j)];
    }
    std::cout << "\n";
  }

  DefaultMapper def;
  const Mapping base = def.map(g, machine, 1);
  std::cout << "\nmax channel load: RAHTM "
            << placementMcl(machine, g, mapping.nodeVector()) << " vs ABCDET "
            << placementMcl(machine, g, base.nodeVector()) << " (hop-bytes "
            << hopBytes(g, machine, mapping.nodeVector()) << " vs "
            << hopBytes(g, machine, base.nodeVector()) << ")\n";
  return 0;
}
