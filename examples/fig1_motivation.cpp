/// \file fig1_motivation.cpp
/// Reproduces the paper's Figure 1 walkthrough (§III-A): why hop-bytes is
/// the wrong objective under minimum adaptive routing.
///
/// Four processes map onto a 2x2 network. P0 and P1 exchange heavily; the
/// other edges are light. The hop-bytes metric wants the heavy pair
/// adjacent; the MCL metric (with MAR splitting traffic over all minimal
/// paths) wants them on the diagonal. The example evaluates both mappings
/// analytically (channel loads) and empirically (cycle-level simulation).

#include <iomanip>
#include <iostream>

#include "graph/stats.hpp"
#include "mapping/mapping.hpp"
#include "routing/oblivious.hpp"
#include "simnet/simulator.hpp"
#include "topology/torus.hpp"

int main() {
  using namespace rahtm;
  const Torus net = Torus::mesh(Shape{2, 2});

  // Fig. 1(a): the communication graph.
  CommGraph g(4);
  g.addExchange(0, 1, 100);  // the heavy pair
  g.addExchange(0, 2, 1);
  g.addExchange(1, 3, 1);
  g.addExchange(2, 3, 1);

  // Fig. 1(b): hop-bytes mapping — P0,P1 adjacent.
  const std::vector<NodeId> hopBytesMap{
      net.nodeId(Coord{0, 0}), net.nodeId(Coord{0, 1}),
      net.nodeId(Coord{1, 0}), net.nodeId(Coord{1, 1})};
  // Fig. 1(c): MCL mapping — P0,P1 on the diagonal.
  const std::vector<NodeId> mclMap{
      net.nodeId(Coord{0, 0}), net.nodeId(Coord{1, 1}),
      net.nodeId(Coord{0, 1}), net.nodeId(Coord{1, 0})};

  const auto evaluate = [&](const char* name,
                            const std::vector<NodeId>& placement) {
    const double mcl = placementMcl(net, g, placement);
    const double hb = hopBytes(g, net, placement);

    Mapping m(4);
    for (RankId r = 0; r < 4; ++r) m.assign(r, placement[r], 0);
    simnet::Phase phase;
    for (const Flow& f : g.flows()) {
      phase.push_back({f.src, f.dst, static_cast<std::int64_t>(f.bytes * 64)});
    }
    simnet::SimConfig sim;
    sim.bytesPerFlit = 8;
    // Model a BG/Q-like NIC that can out-inject a single link, so the
    // network — not the injection FIFO — is the bottleneck.
    sim.injectionBandwidth = 4;
    const auto res = simulatePhase(net, m, phase, sim);

    std::cout << std::left << std::setw(22) << name << std::right
              << std::setw(12) << hb << std::setw(12) << mcl << std::setw(14)
              << res.cycles << std::setw(16) << res.maxChannelFlits << "\n";
  };

  std::cout << "Figure 1: hop-bytes vs MCL mapping of a heavy pair on a 2x2 "
               "mesh under MAR\n\n";
  std::cout << std::left << std::setw(22) << "mapping" << std::right
            << std::setw(12) << "hop-bytes" << std::setw(12) << "MCL"
            << std::setw(14) << "sim cycles" << std::setw(16)
            << "busiest link\n";
  evaluate("adjacent (hop-bytes)", hopBytesMap);
  evaluate("diagonal (MCL)", mclMap);

  std::cout << "\nThe adjacent mapping minimizes hop-bytes but saturates one "
               "link;\nthe diagonal mapping doubles the distance yet halves "
               "the busiest link\nand drains faster in simulation — the "
               "paper's motivating observation.\n";
  return 0;
}
