/// \file collective_mapping.cpp
/// The paper's §VI extension in action: mapping *collective* communication.
///
/// RAHTM only needs "the identities of the communicating processes and the
/// (relative) amounts of communication between them" — once a collective's
/// implementation is known, its point-to-point pattern can be expanded and
/// mapped like any other traffic. This example expands several classic
/// implementations, maps each with RAHTM vs the ABCDET default, and
/// simulates the resulting execution time.
///
/// Usage: collective_mapping [--bytes 8192] [--nodes 32|128|512]
///                           [--concentration 2]

#include <iomanip>
#include <iostream>

#include "common/cli.hpp"
#include "core/rahtm.hpp"
#include "mapping/permutation.hpp"
#include "profile/profile.hpp"
#include "routing/oblivious.hpp"
#include "topology/presets.hpp"
#include "workloads/collectives.hpp"

int main(int argc, char** argv) {
  using namespace rahtm;
  try {
    const CliArgs args(argc, argv);
    const std::int64_t nodes = args.getInt("nodes", 32);
    const int concentration = static_cast<int>(args.getInt("concentration", 2));
    const std::int64_t bytes = args.getInt("bytes", 8192);

    Torus machine = torus32();
    if (nodes == 128) machine = bgqPartition128();
    else if (nodes == 512) machine = bgqPartition512();

    const auto ranks = static_cast<RankId>(machine.numNodes() * concentration);
    simnet::SimConfig sim;
    sim.injectionBandwidth = 4;

    std::cout << "Collective mapping study: " << ranks << " ranks on "
              << machine.describe() << ", " << bytes << " B payload\n\n";
    std::cout << std::left << std::setw(24) << "collective" << std::right
              << std::setw(14) << "ABCDET cyc" << std::setw(13) << "RAHTM cyc"
              << std::setw(10) << "speedup" << std::setw(14) << "MCL ratio"
              << "\n";

    for (const CollectiveAlgorithm algorithm : {
             CollectiveAlgorithm::AllgatherRecursiveDoubling,
             CollectiveAlgorithm::AllgatherRing,
             CollectiveAlgorithm::AllgatherDissemination,
             CollectiveAlgorithm::AllreduceRabenseifner,
             CollectiveAlgorithm::BroadcastBinomial,
             CollectiveAlgorithm::AlltoallPairwise,
         }) {
      const Workload w = makeCollectiveWorkload(algorithm, ranks, bytes);
      const CommGraph g = w.commGraph();
      DefaultMapper def;
      const Mapping mb = def.map(g, machine, concentration);
      RahtmMapper rahtm;
      const Mapping mr = rahtm.mapWorkload(w, machine, concentration);

      const auto cb = static_cast<double>(commCyclesPerIteration(
          w, machine, mb, sim, IterationModel::RankPipelined, 2));
      const auto cr = static_cast<double>(commCyclesPerIteration(
          w, machine, mr, sim, IterationModel::RankPipelined, 2));
      const double mclB = placementMcl(machine, g, mb.nodeVector());
      const double mclR = placementMcl(machine, g, mr.nodeVector());
      std::cout << std::left << std::setw(24) << w.name << std::right
                << std::setw(14) << cb << std::setw(13) << cr << std::setw(9)
                << std::fixed << std::setprecision(2) << (cr > 0 ? cb / cr : 0)
                << "x" << std::setw(13) << std::setprecision(2)
                << (mclB > 0 ? mclR / mclB : 0) << "\n";
      std::cout.unsetf(std::ios::fixed);
      std::cout << std::setprecision(6);
    }
    std::cout << "\nXOR/offset-structured collectives reward routing-aware "
               "placement; ring\nallgather is already local and shows little "
               "headroom.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
