/// \file nas_mapping_study.cpp
/// A configurable mini-study over the paper's mapping roster: simulate one
/// NAS workload under every mapper and report communication time, MCL and
/// hop-bytes side by side. This is the interactive counterpart of
/// bench_fig10 — pick the benchmark, machine and concentration from the
/// command line.
///
/// Usage: nas_mapping_study [--benchmark CG] [--nodes 32|128|512]
///                          [--concentration 2] [--bytes 4096]

#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "common/cli.hpp"
#include "core/bisection_mapper.hpp"
#include "core/greedy_mapper.hpp"
#include "core/rahtm.hpp"
#include "graph/stats.hpp"
#include "mapping/hilbert.hpp"
#include "mapping/permutation.hpp"
#include "mapping/rubik.hpp"
#include "profile/profile.hpp"
#include "routing/oblivious.hpp"
#include "topology/presets.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  using namespace rahtm;
  try {
    const CliArgs args(argc, argv);
    const std::string bench = args.getString("benchmark", "CG");
    const std::int64_t nodes = args.getInt("nodes", 32);
    const int concentration =
        static_cast<int>(args.getInt("concentration", 2));

    Torus machine = torus32();
    if (nodes == 128) machine = bgqPartition128();
    else if (nodes == 512) machine = bgqPartition512();
    else if (nodes != 32) {
      std::cerr << "--nodes must be 32, 128 or 512\n";
      return 1;
    }

    const auto ranks =
        static_cast<RankId>(machine.numNodes() * concentration);
    NasParams params;
    params.messageBytes = args.getInt("bytes", 4096);
    const Workload w = makeNasByName(bench, ranks, params);
    const CommGraph g = w.commGraph();

    std::cout << "workload " << w.name << ", " << ranks << " ranks on "
              << machine.describe() << ", concentration " << concentration
              << "\n\n";

    const std::string permA(machine.ndims(), 'A');
    std::string spec1;  // ABC..T
    for (std::size_t d = 0; d < machine.ndims(); ++d) {
      spec1 += static_cast<char>('A' + d);
    }
    const std::string specT = "T" + spec1;
    spec1 += 'T';

    std::vector<std::unique_ptr<TaskMapper>> mappers;
    mappers.push_back(std::make_unique<DefaultMapper>());
    mappers.push_back(std::make_unique<PermutationMapper>(specT));
    mappers.push_back(std::make_unique<HilbertMapper>());
    mappers.push_back(
        std::make_unique<RubikMapper>(RubikMapper::autoFor(ranks, machine,
                                                           concentration)));
    mappers.push_back(std::make_unique<GreedyHopBytesMapper>(w.logicalGrid));
    {
      BisectionConfig bisect;
      bisect.logicalGrid = w.logicalGrid;
      mappers.push_back(std::make_unique<RecursiveBisectionMapper>(bisect));
    }
    mappers.push_back(std::make_unique<RahtmMapper>());

    simnet::SimConfig sim;
    std::cout << std::left << std::setw(10) << "mapping" << std::right
              << std::setw(14) << "comm cycles" << std::setw(12) << "vs base"
              << std::setw(12) << "MCL" << std::setw(14) << "hop-bytes"
              << "\n";
    double baseline = 0;
    for (auto& mapper : mappers) {
      Mapping m;
      if (auto* rahtm = dynamic_cast<RahtmMapper*>(mapper.get())) {
        m = rahtm->mapWorkload(w, machine, concentration);
      } else {
        m = mapper->map(g, machine, concentration);
      }
      const std::string err = m.validate(machine, concentration);
      if (!err.empty()) {
        std::cerr << mapper->name() << ": invalid mapping: " << err << "\n";
        return 1;
      }
      const auto cycles =
          static_cast<double>(commCyclesPerIteration(w, machine, m, sim));
      if (baseline == 0) baseline = cycles;
      std::cout << std::left << std::setw(10) << mapper->name() << std::right
                << std::setw(14) << cycles << std::setw(11) << std::fixed
                << std::setprecision(1) << 100.0 * cycles / baseline << "%"
                << std::setw(12) << std::setprecision(0)
                << placementMcl(machine, g, m.nodeVector()) << std::setw(14)
                << hopBytes(g, machine, m.nodeVector()) << "\n";
      std::cout.unsetf(std::ios::fixed);
      std::cout << std::setprecision(6);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
