/// \file quickstart.cpp
/// Minimal end-to-end use of the RAHTM library:
///   1. describe the machine (a BG/Q-like torus partition),
///   2. build (or load) the application's communication graph,
///   3. run the RAHTM mapper,
///   4. write a BG/Q-style mapfile and report the mapping quality.
///
/// Usage: quickstart [--benchmark BT|SP|CG] [--ranks N] [--out mapfile.txt]

#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/log.hpp"
#include "core/rahtm.hpp"
#include "graph/stats.hpp"
#include "mapping/mapfile.hpp"
#include "mapping/permutation.hpp"
#include "routing/oblivious.hpp"
#include "topology/presets.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  using namespace rahtm;
  try {
    const CliArgs args(argc, argv);
    if (args.getBool("verbose")) setLogLevel(LogLevel::Info);
    const std::string bench = args.getString("benchmark", "CG");
    const auto ranks = static_cast<RankId>(args.getInt("ranks", 256));
    const std::string outPath = args.getString("out", "rahtm_mapfile.txt");

    // 1. The machine: 4x4x4x2 torus (128 nodes), 2 ranks per node.
    const Torus machine = bgqPartition128();
    const int concentration =
        static_cast<int>(ranks / static_cast<RankId>(machine.numNodes()));
    if (ranks != machine.numNodes() * concentration || concentration < 1) {
      std::cerr << "ranks must be a positive multiple of "
                << machine.numNodes() << "\n";
      return 1;
    }

    // 2. The application: a synthetic NAS benchmark's communication graph.
    const Workload workload = makeNasByName(bench, ranks);
    const CommGraph graph = workload.commGraph();
    const GraphStats stats = computeStats(graph);
    std::cout << "workload " << workload.name << ": " << stats.ranks
              << " ranks, " << stats.flows << " flows, " << stats.totalVolume
              << " bytes/iteration\n";

    // 3. Map with RAHTM (and with the ABCDET default, for comparison).
    RahtmMapper rahtm;
    const Mapping mapping = rahtm.mapWorkload(workload, machine, concentration);
    DefaultMapper fallback;
    const Mapping defaultMapping = fallback.map(graph, machine, concentration);

    const double mclRahtm = placementMcl(machine, graph, mapping.nodeVector());
    const double mclDefault =
        placementMcl(machine, graph, defaultMapping.nodeVector());
    std::cout << "max channel load (MAR model): RAHTM " << mclRahtm
              << " vs ABCDET " << mclDefault << "  ("
              << (mclDefault > 0 ? 100.0 * (1.0 - mclRahtm / mclDefault) : 0)
              << "% lower)\n";
    std::cout << "mapping time: " << rahtm.stats().totalSeconds << " s ("
              << rahtm.stats().subproblemsSolved << " subproblems)\n";

    // 4. Deliverable: the mapfile the MPI runtime would consume.
    std::ofstream out(outPath);
    writeMapfile(out, mapping, machine);
    std::cout << "wrote " << outPath << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
