/// \file bench_ablation_beam.cpp
/// Ablation of the merge beam width N (§III-D keeps the best N = 64
/// candidates; "a purely greedy algorithm ... would be too restrictive,
/// exhaustively tracking all rotations leads to explosive growth").
/// Sweeps N and reports the achieved root MCL and the merge time.

#include <iomanip>
#include <iostream>

#include "bench/experiment.hpp"

int main(int argc, char** argv) {
  const auto telemetry = rahtm::bench::telemetryFromCli(argc, argv);
  using namespace rahtm;
  using namespace rahtm::bench;
  const ExperimentScale scale = ExperimentScale::fromEnv();
  const Workload w = makeNasByName("CG", scale.ranks(), scale.params);

  std::cout << "Ablation: merge beam width N (CG, " << scale.ranks()
            << " ranks on " << scale.machine.describe() << ")\n\n";
  std::cout << std::right << std::setw(6) << "N" << std::setw(14)
            << "root MCL" << std::setw(14) << "merge sec" << std::setw(14)
            << "total sec" << "\n";
  for (const int n : {1, 2, 4, 8, 16, 32, 64, 128}) {
    RahtmConfig cfg;
    cfg.merge.beamWidth = n;
    // Isolate the merge: no refinement, no canonical-seed portfolio.
    cfg.finalRefinement = false;
    cfg.canonicalSeed = false;
    RahtmMapper mapper(cfg);
    mapper.mapWorkload(w, scale.machine, scale.concentration);
    std::cout << std::right << std::setw(6) << n << std::setw(14)
              << mapper.stats().rootObjective << std::setw(14) << std::fixed
              << std::setprecision(3) << mapper.stats().mergeSeconds
              << std::setw(14) << mapper.stats().totalSeconds << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "\nExpected: a broad downward trend with diminishing returns "
               "past the\npaper's N = 64 (beam search is greedy per step, so "
               "strict monotonicity\nis not guaranteed); merge time grows "
               "roughly linearly in N.\n";
  return 0;
}
