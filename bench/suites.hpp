#pragma once
/// \file suites.hpp
/// Named, ledger-producing benchmark suites: the same measurements the
/// per-figure binaries (bench_fig8/9/10, bench_table1, the ablations)
/// print as tables, repackaged as obs::RunReport ledgers so
/// tools/rahtm_bench can emit machine-readable `BENCH_<suite>.json` files
/// and gate them against committed baselines (`--baseline FILE --check`).

#include <string>
#include <vector>

#include "bench/experiment.hpp"
#include "obs/report.hpp"

namespace rahtm::bench {

/// A ledger-producing suite body.
using SuiteFn = obs::RunReport (*)(const ExperimentScale&);

/// Self-registration hook: a namespace-scope SuiteRegistrar in a suite's
/// translation unit adds it to the roster at static-initialization time —
/// no central dispatch ladder to edit. \p order fixes the position in the
/// canonical knownSuites() listing (ties break by name); the paper suites
/// use 10..100, extension suites slot in between.
class SuiteRegistrar {
 public:
  SuiteRegistrar(std::string name, int order, SuiteFn fn);
};

/// All registered suite names, in canonical (order, name) order. The core
/// roster: table1, fig8, fig9, fig10, ablation_refine, refine_micro,
/// obs_overhead, simnet_micro, mem_micro, serve, route_micro, smoke.
std::vector<std::string> knownSuites();

/// Run one suite at the given scale and return its ledger. The report's
/// environment fingerprint combines obs::currentEnvFingerprint() with the
/// scale actually used. Throws rahtm::ParseError for unknown names.
///
/// The "smoke" suite is the CI regression anchor: the full paper roster on
/// the CG benchmark only, cheap enough to run on every commit.
obs::RunReport runSuite(const std::string& name,
                        const ExperimentScale& scale);

/// Reconstruct the scale a ledger was produced at from its fingerprint.
ExperimentScale scaleFromFingerprint(const obs::EnvFingerprint& env);

}  // namespace rahtm::bench
