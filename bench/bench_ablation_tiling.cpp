/// \file bench_ablation_tiling.cpp
/// Ablation of the clustering tile-shape search (Fig. 2, §III-B): the paper
/// searches every tile shape per level and keeps the one with minimal
/// inter-tile volume. Compared against taking the first shape blindly.

#include <iomanip>
#include <iostream>

#include "bench/experiment.hpp"
#include "profile/profile.hpp"

int main(int argc, char** argv) {
  const auto telemetry = rahtm::bench::telemetryFromCli(argc, argv);
  using namespace rahtm;
  using namespace rahtm::bench;
  const ExperimentScale scale = ExperimentScale::fromEnv();

  std::cout << "Ablation: tile-shape search in clustering (phase 1)\n\n";
  std::cout << std::left << std::setw(6) << "bench" << std::setw(10) << "mode"
            << std::right << std::setw(16) << "intra-node vol"
            << std::setw(16) << "inter-node vol" << std::setw(12)
            << "root MCL" << std::setw(14) << "comm cycles" << "\n";
  for (const char* name : {"BT", "SP", "CG"}) {
    const Workload w = makeNasByName(name, scale.ranks(), scale.params);
    for (const bool search : {true, false}) {
      RahtmConfig cfg;
      cfg.tileSearch = search;
      RahtmMapper mapper(cfg);
      const Mapping m =
          mapper.mapWorkload(w, scale.machine, scale.concentration);
      const auto cycles = static_cast<double>(
          commCyclesPerIteration(w, scale.machine, m, scale.sim));
      std::cout << std::left << std::setw(6) << name << std::setw(10)
                << (search ? "search" : "first") << std::right << std::setw(16)
                << mapper.stats().intraNodeVolume << std::setw(16)
                << mapper.stats().interNodeVolume << std::setw(12)
                << mapper.stats().rootObjective << std::setw(14) << cycles
                << "\n";
    }
  }
  std::cout << "\nExpected: searching absorbs at least as much volume inside "
               "nodes\n(higher intra, lower inter), which carries through to "
               "MCL and time.\n";
  return 0;
}
