/// \file bench_fattree.cpp
/// §VI "Applicability to other topologies": RAHTM's machinery on a
/// fat-tree. Group symmetry collapses the mapping problem to the phase-1
/// hierarchical clustering; this harness compares the clustered mapping
/// against the linear default on skinny (tapered) and fat (doubling
/// multiplicity) trees, for the NAS patterns and the pairwise all-to-all
/// collective.

#include <iomanip>
#include <iostream>

#include "bench/experiment.hpp"
#include "core/fattree_mapper.hpp"
#include "topology/fattree.hpp"
#include "workloads/collectives.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  const auto telemetry = rahtm::bench::telemetryFromCli(argc, argv);
  using namespace rahtm;
  const int c = 4;

  std::cout << "Fat-tree mapping study (64 nodes, concentration " << c
            << " = 256 ranks)\n\n";
  std::cout << std::left << std::setw(20) << "workload" << std::setw(9)
            << "tree" << std::right << std::setw(13) << "linear MCL"
            << std::setw(14) << "RAHTM-FT MCL" << std::setw(10) << "ratio"
            << "\n";

  for (const bool fat : {false, true}) {
    const FatTree tree = FatTree::uniform(4, 3, fat);  // 64 nodes
    const auto ranks = static_cast<RankId>(tree.numNodes() * c);

    struct Item {
      std::string name;
      CommGraph graph;
      Shape grid;
    };
    std::vector<Item> items;
    for (const char* nas : {"BT", "SP", "CG"}) {
      const Workload w = makeNasByName(nas, ranks);
      items.push_back({w.name, w.commGraph(), w.logicalGrid});
    }
    {
      const Workload w = makeCollectiveWorkload(
          CollectiveAlgorithm::AlltoallPairwise, ranks, 1024);
      items.push_back({w.name, w.commGraph(), w.logicalGrid});
    }

    for (const Item& item : items) {
      const auto linear = linearFatTreeMapping(ranks, c);
      const auto mapped = mapToFatTree(item.graph, tree, c, item.grid);
      const double ml = fatTreeMcl(tree, item.graph, linear);
      const double mm = fatTreeMcl(tree, item.graph, mapped);
      std::cout << std::left << std::setw(20) << item.name << std::setw(9)
                << (fat ? "fat" : "skinny") << std::right << std::setw(13)
                << ml << std::setw(14) << mm << std::setw(9) << std::fixed
                << std::setprecision(2) << (ml > 0 ? mm / ml : 0) << "\n";
      std::cout.unsetf(std::ios::fixed);
      std::cout << std::setprecision(6);
    }
  }
  std::cout << "\nExpected: clustering never exceeds linear; grid "
               "benchmarks gain from\ncolumn-aware tiles, all-to-all is "
               "topology-saturating (ratio 1).\n";
  return 0;
}
