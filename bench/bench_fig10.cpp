/// \file bench_fig10.cpp
/// Figure 10 of the paper: communication time for different mappings,
/// relative to the ABCDET baseline, per benchmark plus the geometric mean.
/// The paper's headline result: RAHTM cuts communication time ~20% on all
/// three benchmarks, while the ad-hoc permutations are wildly non-uniform.

#include <iomanip>
#include <iostream>

#include "bench/experiment.hpp"

int main(int argc, char** argv) {
  const auto telemetry = rahtm::bench::telemetryFromCli(argc, argv);
  using namespace rahtm;
  using namespace rahtm::bench;
  const ExperimentScale scale = ExperimentScale::fromEnv();
  const std::vector<std::string> benchmarks{"BT", "SP", "CG"};

  std::vector<std::vector<MapperRun>> runs;
  for (const std::string& name : benchmarks) {
    const Workload w = makeNasByName(name, scale.ranks(), scale.params);
    runs.push_back(runStudy(w, scale));
    std::cerr << "[fig10] " << name << " done\n";
  }

  std::cout << "Figure 10: communication time relative to ABCDET ("
            << scale.ranks() << " ranks on " << scale.machine.describe()
            << ")\n\n";
  printRelativeTable("communication time (lower is better)", benchmarks, runs,
                     &MapperRun::commCycles);

  std::cout << "\nsupporting metrics (absolute):\n";
  std::cout << std::left << std::setw(8) << "bench" << std::setw(10)
            << "mapping" << std::right << std::setw(14) << "comm cycles"
            << std::setw(12) << "MCL" << std::setw(16) << "hop-bytes"
            << "\n";
  for (std::size_t bi = 0; bi < benchmarks.size(); ++bi) {
    for (const MapperRun& r : runs[bi]) {
      std::cout << std::left << std::setw(8) << benchmarks[bi] << std::setw(10)
                << r.mapper << std::right << std::setw(14) << r.commCycles
                << std::setw(12) << r.mcl << std::setw(16) << r.hopBytes
                << "\n";
    }
  }
  std::cout << "\nPaper's shape: RAHTM consistently ~20% below baseline; "
               "TABCDE/ACEBDT\nsubstantially worse than baseline on CG.\n";
  return 0;
}
