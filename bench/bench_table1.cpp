/// \file bench_table1.cpp
/// Table I of the paper: the benchmark inventory (BT, SP, CG from NAS),
/// extended with the measured properties of our synthetic generators —
/// ranks, flow counts, per-iteration volume, degree and phase structure.

#include <iomanip>
#include <iostream>

#include "bench/experiment.hpp"
#include "graph/stats.hpp"

int main(int argc, char** argv) {
  const auto telemetry = rahtm::bench::telemetryFromCli(argc, argv);
  using namespace rahtm;
  using namespace rahtm::bench;
  const ExperimentScale scale = ExperimentScale::fromEnv();

  std::cout << "Table I: communication-heavy NAS benchmarks ("
            << scale.ranks() << " ranks on " << scale.machine.describe()
            << ", concentration " << scale.concentration << ")\n\n";
  std::cout << std::left << std::setw(6) << "name" << std::setw(30)
            << "description" << std::right << std::setw(8) << "ranks"
            << std::setw(8) << "flows" << std::setw(14) << "bytes/iter"
            << std::setw(8) << "degree" << std::setw(8) << "phases"
            << std::setw(12) << "comm frac" << "\n";

  const struct {
    const char* name;
    const char* description;
  } table[] = {
      {"BT", "Block Tri-diagonal solver"},
      {"SP", "Scalar Penta-diagonal solver"},
      {"CG", "Conjugate Gradient"},
  };
  for (const auto& row : table) {
    const Workload w = makeNasByName(row.name, scale.ranks(), scale.params);
    const GraphStats s = computeStats(w.commGraph());
    std::cout << std::left << std::setw(6) << row.name << std::setw(30)
              << row.description << std::right << std::setw(8) << s.ranks
              << std::setw(8) << s.flows << std::setw(14) << s.totalVolume
              << std::setw(8) << s.maxDegree << std::setw(8)
              << w.phases.size() << std::setw(11) << std::fixed
              << std::setprecision(0) << 100 * w.commFraction << "%\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "\n(description column from Table I; remaining columns "
               "measured from the synthetic generators)\n";
  return 0;
}
