/// \file suites_route.cpp
/// The `route_micro` suite: the tiered route cache's regression anchor
/// (routing/route_cache.hpp). Registered through the suite registry from
/// this translation unit, like the serve suite.
///
/// Two parts:
///
///  * **Tier parity micro** (fixed 64-node probe torus, independent of the
///    env scale so the ledger is comparable across hosts): every (src,dst)
///    pair read through the sparse tier is compared bit for bit against a
///    complete dense RouteTable, then the cache is shed and every pair is
///    re-read (refault path) and compared again. The mismatch counters have
///    committed baselines of 0 — any nonzero value is a hard failure.
///
///  * **Paper-scale smoke** (512-node BG/Q partition, CG): the full
///    hierarchical solve past the complete-table ceiling, where the mapper
///    auto-provisions a tiered cache (dense sub-torus tables streamed per
///    pin wave, the machine served from the sparse tier). Quality (mcl /
///    hop_bytes) is gated at the default tolerances; the solve is repeated
///    on a second cache squeezed to ~1 MB of sparse budget (evict-and-
///    refault throughout) and the two mappings must agree rank for rank —
///    route eviction may never change results. The reference mcl comes
///    from placementMcl(), the table-free canonical dense enumeration, so
///    `tier_vs_dense_mcl_mismatches` pins the sparse tier to the dense
///    path at paper scale.
///
/// The cache traffic counters (hits / misses / refaults / evictions,
/// per-tier bytes) and wall time are reported, never gated: eviction
/// timing is host-dependent noise; route *content* is not. `peak_rss_mb`
/// rides the standard per-suite mem section (gated at 25% like every
/// suite), which is what bounds the 512-node run's residency in CI.

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/experiment.hpp"
#include "bench/suites.hpp"
#include "common/timer.hpp"
#include "core/rahtm.hpp"
#include "graph/stats.hpp"
#include "obs/metrics.hpp"
#include "routing/evaluator.hpp"
#include "routing/oblivious.hpp"
#include "routing/route_cache.hpp"
#include "workloads/workload.hpp"

namespace rahtm::bench {

namespace {

constexpr double kMb = 1024.0 * 1024.0;

/// Install a private registry for the suite's duration so the cache's
/// rahtm.route.* gauges exist without polluting a co-resident session.
struct ScopedMetrics {
  obs::MetricsRegistry* prev = obs::metrics();
  obs::MetricsRegistry registry;
  ScopedMetrics() { obs::setMetrics(&registry); }
  ~ScopedMetrics() { obs::setMetrics(prev); }
};

bool spanEq(const RouteTable::Span& a, const RouteTable::Span& b) {
  if (a.size != b.size) return false;
  for (std::size_t i = 0; i < a.size; ++i) {
    if (a.channels[i] != b.channels[i]) return false;
    if (a.fracs[i] != b.fracs[i]) return false;
  }
  return true;
}

/// Trim the hierarchical solver to smoke-test effort: the 512-node part
/// exercises every tier of the route cache, not the full search budget.
void trimForSmoke(RahtmConfig& cfg) {
  cfg.subproblem.annealRestarts = 2;
  cfg.subproblem.annealIters = 2000;
  cfg.merge.beamWidth = 8;
  cfg.merge.maxOrientations = 64;
  cfg.merge.maxRepositionSlots = 3;
  cfg.refine.maxPasses = 2;
}

obs::RunReport suiteRouteMicro(const ExperimentScale& scale) {
  obs::RunReport report;
  report.suite = "route_micro";

  ScopedMetrics metrics;

  // ---- Part 1: sparse-tier parity against a complete dense table --------
  // 64 nodes keeps the all-pairs sweep trivial while still spanning the
  // sharded map; the tight maxSparseBytes forces inline LRU eviction in
  // the middle of the sweep, so refaults happen under normal reads too.
  {
    const Torus probe = Torus::torus(Shape{4, 4, 4});
    const std::shared_ptr<const RouteTable> dense = RouteTable::buildFull(probe);
    TieredRouteCache::Config cfg;
    cfg.maxSparseBytes = 32 * 1024;
    cfg.registerDegrade = false;  // a bench suite must not touch the
                                  // process-wide degrade roster
    TieredRouteCache cache(probe, cfg);
    TieredRouteCache::Scratch scratch;
    const NodeId n = static_cast<NodeId>(probe.numNodes());

    std::int64_t parityMismatches = 0;
    Timer sweep;
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId d = 0; d < n; ++d) {
        if (!spanEq(cache.read(s, d, scratch), dense->find(s, d))) {
          ++parityMismatches;
        }
      }
    }
    const double sweepSeconds = sweep.seconds();

    // Shed everything, then re-read: every pair is a refault and must
    // still match the dense build bit for bit.
    cache.shed(0);
    std::int64_t refaultMismatches = 0;
    for (NodeId s = 0; s < n; ++s) {
      for (NodeId d = 0; d < n; ++d) {
        if (!spanEq(cache.read(s, d, scratch), dense->find(s, d))) {
          ++refaultMismatches;
        }
      }
    }

    const TieredRouteCache::Stats st = cache.stats();
    cache.noteMetrics();
    obs::RunRecord record;
    record.benchmark = "parity64";
    record.mapper = "tiered";
    record.add("tier_parity_mismatches", static_cast<double>(parityMismatches));
    record.add("evict_refault_mismatches",
               static_cast<double>(refaultMismatches));
    record.add("route_sparse_hits", static_cast<double>(st.sparseHits));
    record.add("route_sparse_misses", static_cast<double>(st.sparseMisses));
    record.add("route_refaults", static_cast<double>(st.refaults));
    record.add("route_evictions", static_cast<double>(st.evictions));
    record.add("route_sparse_mb", static_cast<double>(st.sparseBytes) / kMb);
    record.add("route_sweep_seconds", sweepSeconds);
    report.records.push_back(std::move(record));
  }

  // ---- Part 2: 512-node paper-scale smoke --------------------------------
  // Always at the paper partition regardless of the env scale: breaking
  // the complete-table ceiling is the whole point of this suite. The env
  // scale still fixes the message size so the ledger fingerprint stays
  // honest about what was run.
  {
    const ExperimentScale paper =
        ExperimentScale::fromSpec(512, 1, scale.params.messageBytes, 1);
    const Workload workload = makeNasByName("CG", paper.ranks(), paper.params);
    const CommGraph graph = workload.commGraph();

    // Reference solve: a roomy (but still bounded) sparse tier. Unlimited,
    // the 512-node refine phase's all-pairs touch set holds ~1.6 GB of
    // routes; a 256 MB LRU budget keeps the suite's RSS honest while
    // evicting rarely enough that the solve stays warm.
    TieredRouteCache::Config roomyCfg;
    roomyCfg.maxSparseBytes = 256 * 1024 * 1024;
    const auto roomy =
        std::make_shared<TieredRouteCache>(paper.machine, roomyCfg);
    RahtmMapper reference;
    trimForSmoke(reference.config());
    reference.config().routeCache = roomy;
    Timer mapTimer;
    const Mapping mapped =
        reference.mapWorkload(workload, paper.machine, paper.concentration);
    const double mapSeconds = mapTimer.seconds();

    // Evict-and-refault solve: same configuration, 32 MB sparse budget —
    // an eighth of the roomy run — so the solver loses routes mid-search
    // and refaults them continuously. The mapping must not move by a
    // single rank.
    TieredRouteCache::Config tight;
    tight.maxSparseBytes = 32 * 1024 * 1024;
    const auto squeezed =
        std::make_shared<TieredRouteCache>(paper.machine, tight);
    RahtmMapper evicted;
    trimForSmoke(evicted.config());
    evicted.config().routeCache = squeezed;
    const Mapping remapped =
        evicted.mapWorkload(workload, paper.machine, paper.concentration);
    std::int64_t mappingMismatches = 0;
    for (RankId r = 0; r < paper.ranks(); ++r) {
      if (mapped.nodeOf(r) != remapped.nodeOf(r)) ++mappingMismatches;
    }

    // Quality under the table-free canonical dense enumeration, and the
    // same value recomputed through the sparse tier: the two paths must
    // agree exactly (route spans are bit-identical by construction).
    const double mcl =
        placementMcl(paper.machine, graph, mapped.nodeVector());
    MclEvaluator tiered(paper.machine, roomy);
    const double tieredMcl = tiered.mcl(graph, mapped.nodeVector());
    const std::int64_t mclMismatches = tieredMcl == mcl ? 0 : 1;

    const TieredRouteCache::Stats roomySt = roomy->stats();
    const TieredRouteCache::Stats tightSt = squeezed->stats();
    roomy->noteMetrics();
    obs::RunRecord record;
    record.benchmark = "CG512";
    record.mapper = "rahtm";
    record.add("mcl", mcl);
    record.add("hop_bytes", hopBytes(graph, paper.machine, mapped.nodeVector()));
    record.add("tier_vs_dense_mcl_mismatches",
               static_cast<double>(mclMismatches));
    record.add("evict_refault_mapping_mismatches",
               static_cast<double>(mappingMismatches));
    record.add("map_seconds", mapSeconds);
    record.add("route_dense_tables", static_cast<double>(roomySt.denseTables));
    record.add("route_dense_mb", static_cast<double>(roomySt.denseBytes) / kMb);
    record.add("route_sparse_mb",
               static_cast<double>(roomySt.sparseBytes) / kMb);
    record.add("route_sparse_hits", static_cast<double>(roomySt.sparseHits));
    record.add("route_sparse_misses",
               static_cast<double>(roomySt.sparseMisses));
    record.add("route_refaults", static_cast<double>(tightSt.refaults));
    record.add("route_evictions", static_cast<double>(tightSt.evictions));
    report.records.push_back(std::move(record));
  }

  obs::EnvFingerprint env = obs::currentEnvFingerprint();
  env.nodes = scale.machine.numNodes();
  env.concentration = scale.concentration;
  env.messageBytes = scale.params.messageBytes;
  env.simIterations = scale.simIterations;
  env.threads = 1;
  report.env = env;
  return report;
}

const SuiteRegistrar kRouteMicroSuite{"route_micro", 96, suiteRouteMicro};

}  // namespace

}  // namespace rahtm::bench
