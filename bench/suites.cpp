#include "bench/suites.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/refine.hpp"
#include "core/subproblem.hpp"
#include "graph/stats.hpp"
#include "mapping/permutation.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heartbeat.hpp"
#include "obs/mem.hpp"
#include "obs/process.hpp"
#include "profile/profile.hpp"
#include "routing/oblivious.hpp"

namespace rahtm::bench {

namespace {

obs::EnvFingerprint fingerprint(const ExperimentScale& scale) {
  obs::EnvFingerprint env = obs::currentEnvFingerprint();
  env.nodes = scale.machine.numNodes();
  env.concentration = scale.concentration;
  env.messageBytes = scale.params.messageBytes;
  env.simIterations = scale.simIterations;
  // The roster maps single-threaded (the determinism contract makes thread
  // count irrelevant to results, but the fingerprint records what ran).
  env.threads = 1;
  return env;
}

void appendStudy(obs::RunReport& report, const std::string& benchmark,
                 const std::vector<MapperRun>& runs) {
  for (const MapperRun& r : runs) {
    obs::RunRecord record;
    record.benchmark = benchmark;
    record.mapper = r.mapper;
    record.add("comm_cycles", r.commCycles);
    record.add("mcl", r.mcl);
    record.add("hop_bytes", r.hopBytes);
    record.add("map_seconds", r.mapSeconds);
    report.records.push_back(std::move(record));
  }
}

obs::RunReport suiteStudy(const std::string& suite,
                          const std::vector<std::string>& benchmarks,
                          const ExperimentScale& scale, bool overall) {
  obs::RunReport report;
  report.suite = suite;
  for (const std::string& name : benchmarks) {
    const Workload w = makeNasByName(name, scale.ranks(), scale.params);
    std::vector<MapperRun> runs = runStudy(w, scale);
    if (overall) {
      // Fig. 8's Amdahl damping: add the calibrated compute phase so the
      // ledger carries the overall iteration time next to the comm time.
      const double compute =
          calibrateComputeCycles(runs.front().commCycles, w.commFraction);
      obs::RunReport partial;
      appendStudy(partial, name, runs);
      for (obs::RunRecord& r : partial.records) {
        r.add("overall_cycles", r.metricOr("comm_cycles", 0) + compute);
      }
      for (obs::RunRecord& r : partial.records) {
        report.records.push_back(std::move(r));
      }
    } else {
      appendStudy(report, name, runs);
    }
  }
  report.env = fingerprint(scale);
  return report;
}

obs::RunReport suiteTable1(const ExperimentScale& scale) {
  obs::RunReport report;
  report.suite = "table1";
  for (const char* name : {"BT", "SP", "CG"}) {
    const Workload w = makeNasByName(name, scale.ranks(), scale.params);
    const GraphStats s = computeStats(w.commGraph());
    obs::RunRecord record;
    record.benchmark = name;
    record.mapper = "-";
    record.add("ranks", static_cast<double>(s.ranks));
    record.add("flows", static_cast<double>(s.flows));
    record.add("bytes_per_iter", static_cast<double>(s.totalVolume));
    record.add("max_degree", static_cast<double>(s.maxDegree));
    record.add("phases", static_cast<double>(w.phases.size()));
    record.add("comm_fraction", w.commFraction);
    report.records.push_back(std::move(record));
  }
  report.env = fingerprint(scale);
  return report;
}

obs::RunReport suiteFig9(const ExperimentScale& scale) {
  obs::RunReport report;
  report.suite = "fig9";
  for (const char* name : {"BT", "SP", "CG"}) {
    const Workload w = makeNasByName(name, scale.ranks(), scale.params);
    DefaultMapper baseline;
    const Mapping m =
        baseline.map(w.commGraph(), scale.machine, scale.concentration);
    const auto comm = static_cast<double>(commCyclesPerIteration(
        w, scale.machine, m, scale.sim, IterationModel::RankPipelined,
        scale.simIterations));
    const double compute = calibrateComputeCycles(comm, w.commFraction);
    obs::RunRecord record;
    record.benchmark = name;
    record.mapper = baseline.name();
    record.add("comm_cycles", comm);
    record.add("compute_cycles", compute);
    record.add("comm_fraction", comm / (comm + compute));
    report.records.push_back(std::move(record));
  }
  report.env = fingerprint(scale);
  return report;
}

obs::RunReport suiteAblationRefine(const ExperimentScale& scale) {
  obs::RunReport report;
  report.suite = "ablation_refine";
  const struct {
    const char* name;
    bool refine;
    bool canonical;
  } modes[] = {
      {"paper-only", false, false},
      {"+refine", true, false},
      {"+refine+canon", true, true},
  };
  for (const char* name : {"BT", "SP", "CG"}) {
    const Workload w = makeNasByName(name, scale.ranks(), scale.params);
    const CommGraph g = w.commGraph();
    for (const auto& mode : modes) {
      RahtmConfig cfg;
      cfg.finalRefinement = mode.refine;
      cfg.canonicalSeed = mode.canonical;
      RahtmMapper mapper(cfg);
      Timer t;
      const Mapping m =
          mapper.mapWorkload(w, scale.machine, scale.concentration);
      const double mapSeconds = t.seconds();
      obs::RunRecord record;
      record.benchmark = name;
      record.mapper = mode.name;
      record.add("comm_cycles",
                 static_cast<double>(commCyclesPerIteration(
                     w, scale.machine, m, scale.sim,
                     IterationModel::RankPipelined, scale.simIterations)));
      record.add("mcl", placementMcl(scale.machine, g, m.nodeVector()));
      record.add("hop_bytes", hopBytes(g, scale.machine, m.nodeVector()));
      record.add("map_seconds", mapSeconds);
      report.records.push_back(std::move(record));
    }
  }
  report.env = fingerprint(scale);
  return report;
}

obs::RunReport suiteRefineMicro(const ExperimentScale& scale) {
  obs::RunReport report;
  report.suite = "refine_micro";

  // Refinement micro-benchmark: one CG rank per machine node so a
  // permutation of the nodes is a legal one-to-one mapping, then time
  // refinePlacement under each candidate-generation mode from a fixed-seed
  // scrambled start (the identity is already locally optimal for CG, which
  // would leave nothing to measure). Quality (mcl / hop_bytes) is gated by
  // the ledger; throughput and search-effort counters are reported only.
  const int n = static_cast<int>(scale.machine.numNodes());
  const Workload w = makeNasByName("CG", n, scale.params);
  const CommGraph g = w.commGraph();
  const struct {
    const char* mapper;
    MapObjective objective;
    RefineCandidates candidates;
  } modes[] = {
      {"refine-allpairs", MapObjective::Mcl, RefineCandidates::AllPairs},
      {"refine-pruned", MapObjective::Mcl, RefineCandidates::Pruned},
      {"refine-hopbytes", MapObjective::HopBytes, RefineCandidates::Auto},
  };
  for (const auto& mode : modes) {
    std::vector<NodeId> place(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) place[static_cast<std::size_t>(i)] = i;
    Rng(0xbad5eed).shuffle(place);
    RefineConfig cfg;
    cfg.objective = mode.objective;
    cfg.candidates = mode.candidates;
    Timer t;
    const RefineResult r = refinePlacement(scale.machine, g, place, cfg);
    const double seconds = t.seconds();
    obs::RunRecord record;
    record.benchmark = "CG";
    record.mapper = mode.mapper;
    record.add(mode.objective == MapObjective::Mcl ? "mcl" : "hop_bytes",
               r.objectiveAfter);
    record.add("objective_before", r.objectiveBefore);
    record.add("swaps", static_cast<double>(r.swapsApplied));
    record.add("passes", static_cast<double>(r.passes));
    record.add("probes", static_cast<double>(r.probes));
    record.add("dense_sweeps", static_cast<double>(r.denseSweeps));
    record.add("refine_seconds", seconds);
    record.add("swaps_per_sec",
               seconds > 0 ? static_cast<double>(r.swapsApplied) / seconds : 0);
    record.add("probes_per_sec",
               seconds > 0 ? static_cast<double>(r.probes) / seconds : 0);
    report.records.push_back(std::move(record));
  }

  // Annealing micro-benchmark on a fixed 2x2x2x2 cube (independent of the
  // scale's machine, which is usually too large for the anneal tier): the
  // delta engine drives probeSwap/probeMove here, so moves/sec tracks the
  // same hot path the hierarchical pipeline exercises per subproblem.
  {
    const Torus cube = Torus::torus({2, 2, 2, 2});
    const Workload aw = makeNasByName("CG", 16, scale.params);
    Timer t;
    const SubproblemSolution s =
        annealSearch(aw.commGraph(), cube, SubproblemConfig{});
    const double seconds = t.seconds();
    obs::RunRecord record;
    record.benchmark = "CG16";
    record.mapper = "anneal";
    record.add("mcl", s.objective);
    record.add("iterations", static_cast<double>(s.iterations));
    record.add("probes", static_cast<double>(s.probes));
    record.add("commits", static_cast<double>(s.commits));
    record.add("anneal_seconds", seconds);
    record.add("moves_per_sec",
               seconds > 0 ? static_cast<double>(s.probes) / seconds : 0);
    report.records.push_back(std::move(record));
  }

  report.env = fingerprint(scale);
  return report;
}

/// Gate for the always-on forensics layer: run the hottest instrumented
/// path (annealing on a small cube — one heartbeat/recorder touch per 64
/// iterations plus the per-restart ring events) with the flight recorder
/// and heartbeats enabled and disabled, interleaved, and report the
/// min-of-rounds timing ratio. `overhead_ratio` carries the <=2% budget in
/// defaultThresholds(); the absolute seconds ride along ungated (they vary
/// with the host, the ratio does not).
obs::RunReport suiteObsOverhead(const ExperimentScale& scale) {
  obs::RunReport report;
  report.suite = "obs_overhead";

  const Torus cube = Torus::torus({2, 2, 2, 2});
  const Workload w = makeNasByName("CG", 16, scale.params);
  const CommGraph g = w.commGraph();
  SubproblemConfig cfg;

  obs::FlightRecorder& fr = obs::FlightRecorder::instance();
  obs::Heartbeats& hb = obs::Heartbeats::instance();
  const bool frWas = fr.enabled();
  const bool hbWas = hb.enabled();

  const auto timedRun = [&](bool forensicsOn) {
    fr.setEnabled(forensicsOn);
    hb.setEnabled(forensicsOn);
    Timer t;
    const SubproblemSolution s = annealSearch(g, cube, cfg);
    const double seconds = t.seconds();
    RAHTM_REQUIRE(s.iterations > 0, "obs_overhead: empty anneal run");
    return seconds;
  };

  // Warm-up (page in code + route tables), then interleave on/off rounds so
  // frequency drift hits both sides equally; min-of-rounds rejects noise.
  timedRun(true);
  constexpr int kRounds = 5;
  double onSec = std::numeric_limits<double>::infinity();
  double offSec = std::numeric_limits<double>::infinity();
  for (int r = 0; r < kRounds; ++r) {
    onSec = std::min(onSec, timedRun(true));
    offSec = std::min(offSec, timedRun(false));
  }
  fr.setEnabled(frWas);
  hb.setEnabled(hbWas);

  obs::RunRecord record;
  record.benchmark = "CG16";
  record.mapper = "anneal";
  record.add("overhead_ratio", offSec > 0 ? onSec / offSec : 1.0);
  record.add("forensics_on_seconds", onSec);
  record.add("forensics_off_seconds", offSec);
  report.records.push_back(std::move(record));
  report.env = fingerprint(scale);
  return report;
}

/// Gate for the simulator itself. One CG run (the scale's machine, a fixed
/// block mapping so no mapper noise enters) measured three ways:
///  * cycle sim, 1 worker — the reference results and serial wall-clock;
///  * cycle sim, all cores — `determinism_mismatches` counts any field of
///    the PhaseResult that differs from the serial run (committed baseline
///    0, so any nonzero fails the ledger gate hard) and the threaded
///    wall-clock / speedup ride along ungated (host-dependent);
///  * flow mode — `flow_cycles_rel_err` / `flow_mcl_rel_err` gate the
///    fidelity ladder's error bound; conservation mismatches are counted
///    into `flow_conservation_mismatches` (baseline 0, exact by design).
obs::RunReport suiteSimnetMicro(const ExperimentScale& scale) {
  obs::RunReport report;
  report.suite = "simnet_micro";

  const Workload w = makeNasByName("CG", scale.ranks(), scale.params);
  // Fixed-seed scrambled placement: long-range, contended traffic like the
  // worst roster mappings the end-to-end suites simulate — a block mapping
  // would leave the network (and the parallel workers) mostly idle.
  const int nodes = static_cast<int>(scale.machine.numNodes());
  std::vector<NodeId> place(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) place[static_cast<std::size_t>(i)] = i;
  Rng(0xbad5eed).shuffle(place);
  Mapping m(static_cast<RankId>(scale.ranks()));
  for (RankId r = 0; r < m.numRanks(); ++r) {
    m.assign(r, place[static_cast<std::size_t>(r / scale.concentration)],
             r % scale.concentration);
  }
  std::vector<simnet::Phase> stages;
  stages.reserve(w.phases.size() * static_cast<std::size_t>(scale.simIterations));
  for (int it = 0; it < scale.simIterations; ++it) {
    stages.insert(stages.end(), w.phases.begin(), w.phases.end());
  }

  simnet::SimConfig sim = scale.sim;
  sim.fidelity = simnet::SimFidelity::Cycle;
  sim.threads = 1;
  Timer ts;
  const simnet::PhaseResult serial =
      simnet::simulateIteration(scale.machine, m, stages, sim);
  const double serialSec = ts.seconds();

  sim.threads = 0;  // all hardware threads (capped by the shard count)
  Timer tp;
  const simnet::PhaseResult threaded =
      simnet::simulateIteration(scale.machine, m, stages, sim);
  const double threadedSec = tp.seconds();

  std::int64_t mismatches = 0;
  mismatches += serial.cycles != threaded.cycles;
  mismatches += serial.networkFlits != threaded.networkFlits;
  mismatches += serial.localFlits != threaded.localFlits;
  mismatches += serial.flitHops != threaded.flitHops;
  mismatches += serial.maxChannelFlits != threaded.maxChannelFlits;
  mismatches += serial.avgChannelFlits != threaded.avgChannelFlits;
  mismatches += serial.dimFlits != threaded.dimFlits;

  sim.threads = 1;
  sim.fidelity = simnet::SimFidelity::Flow;
  Timer tf;
  const simnet::PhaseResult flow =
      simnet::simulateIteration(scale.machine, m, stages, sim);
  const double flowSec = tf.seconds();
  std::int64_t conservation = 0;
  conservation += flow.networkFlits != serial.networkFlits;
  conservation += flow.localFlits != serial.localFlits;
  conservation += flow.flitHops != serial.flitHops;

  const auto relErr = [](double est, double ref) {
    return ref != 0 ? std::abs(est - ref) / ref : 0.0;
  };

  obs::RunRecord record;
  record.benchmark = "CG";
  record.mapper = "simnet";
  record.add("comm_cycles", static_cast<double>(serial.cycles));
  record.add("mcl", serial.maxChannelFlits);
  record.add("determinism_mismatches", static_cast<double>(mismatches));
  record.add("flow_cycles_rel_err",
             relErr(static_cast<double>(flow.cycles),
                    static_cast<double>(serial.cycles)));
  record.add("flow_mcl_rel_err",
             relErr(flow.maxChannelFlits, serial.maxChannelFlits));
  record.add("flow_conservation_mismatches",
             static_cast<double>(conservation));
  record.add("sim_serial_seconds", serialSec);
  record.add("sim_threaded_seconds", threadedSec);
  record.add("sim_speedup", threadedSec > 0 ? serialSec / threadedSec : 1.0);
  record.add("flow_seconds", flowSec);
  record.add("flow_speedup_vs_cycle", flowSec > 0 ? serialSec / flowSec : 1.0);
  report.records.push_back(std::move(record));
  report.env = fingerprint(scale);
  return report;
}

/// Gate for the memory-accounting layer (obs/mem.hpp), two halves:
///  * Footprint: one full RAHTM pipeline run plus one cycle simulation at a
///    fixed micro scale (16 CG ranks on a 2^4 cube), so every heavy owner
///    builds its structures; the per-account peaks are pure functions of
///    the workload (capacity-based accounting, no timing in them) and gate
///    at 5%. `rss_coverage` rides along ungated — it depends on what else
///    the process touched — but is the number the ISSUE's >=80% acceptance
///    check reads at smoke scale.
///  * Overhead: interleaved tracking-on/off anneal rounds (the obs_overhead
///    pattern), minimum of back-to-back pair ratios; `mem_overhead_ratio`
///    carries the <=2% gate.
obs::RunReport suiteMemMicro(const ExperimentScale& scale) {
  obs::RunReport report;
  report.suite = "mem_micro";
  obs::MemRegistry& mem = obs::MemRegistry::instance();

  const Torus cube = Torus::torus({2, 2, 2, 2});
  const Workload w = makeNasByName("CG", 16, scale.params);
  RahtmMapper mapper;
  const Mapping m = mapper.mapWorkload(w, cube, 1);
  const auto cycles = static_cast<double>(commCyclesPerIteration(
      w, cube, m, scale.sim, IterationModel::RankPipelined, 1));

  const CommGraph g = w.commGraph();
  SubproblemConfig cfg;
  const bool memWas = mem.enabled();
  const auto timedRun = [&](bool trackOn) {
    mem.setEnabled(trackOn);
    Timer t;
    const SubproblemSolution s = annealSearch(g, cube, cfg);
    const double seconds = t.seconds();
    RAHTM_REQUIRE(s.iterations > 0, "mem_micro: empty anneal run");
    return seconds;
  };
  // Warm-up, then interleave so frequency drift hits both sides equally.
  // Each anneal's tracked structures are built and torn down inside one
  // round, so toggling between rounds never skews the counters. The ratio
  // gates at 2% absolute, which is below the multi-second frequency drift
  // on shared runners, so each on/off pair is timed back to back (drift
  // cancels within the pair) and the gated ratio is the MINIMUM over the
  // pair ratios: a systematic tracking cost shifts every pair, including
  // the best one, while symmetric host noise cannot hold all nine pairs
  // above the true ratio — the same best-case reasoning as obs_overhead's
  // min/min estimator. Medians of the raw times ride along ungated.
  timedRun(true);
  constexpr int kRounds = 9;
  std::vector<double> onTimes, offTimes, ratios;
  for (int r = 0; r < kRounds; ++r) {
    // Alternate which side of the pair runs first so cache/branch state
    // left by the previous round biases neither side systematically.
    double on, off;
    if (r % 2 == 0) {
      on = timedRun(true);
      off = timedRun(false);
    } else {
      off = timedRun(false);
      on = timedRun(true);
    }
    onTimes.push_back(on);
    offTimes.push_back(off);
    if (off > 0) ratios.push_back(on / off);
  }
  const auto median = [](std::vector<double> v) {
    RAHTM_REQUIRE(!v.empty(), "mem_micro: no timing samples");
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double onSec = median(onTimes);
  const double offSec = median(offTimes);
  mem.setEnabled(memWas);
  mem.sampleRss();

  constexpr double kMb = 1024.0 * 1024.0;
  obs::RunRecord record;
  record.benchmark = "CG16";
  record.mapper = "rahtm";
  record.add("comm_cycles", cycles);
  for (const obs::MemAccountId id :
       {obs::MemAccountId::RouteTable, obs::MemAccountId::FlowIncidence,
        obs::MemAccountId::Simnet, obs::MemAccountId::Lp,
        obs::MemAccountId::Mapper, obs::MemAccountId::Obs}) {
    record.add(std::string(obs::memAccountName(id)) + "_peak_mb",
               static_cast<double>(mem.peakBytes(id)) / kMb);
  }
  record.add("accounted_peak_mb",
             static_cast<double>(mem.totalPeakBytes()) / kMb);
  record.add("rss_coverage", obs::currentMemSection().rssCoverage);
  RAHTM_REQUIRE(!ratios.empty(), "mem_micro: no ratio samples");
  record.add("mem_overhead_ratio",
             *std::min_element(ratios.begin(), ratios.end()));
  record.add("mem_on_seconds", onSec);
  record.add("mem_off_seconds", offSec);
  report.records.push_back(std::move(record));
  report.env = fingerprint(scale);
  return report;
}

obs::RunReport suiteFig8(const ExperimentScale& scale) {
  return suiteStudy("fig8", {"BT", "SP", "CG"}, scale, /*overall=*/true);
}

obs::RunReport suiteFig10(const ExperimentScale& scale) {
  return suiteStudy("fig10", {"BT", "SP", "CG"}, scale, /*overall=*/false);
}

obs::RunReport suiteSmoke(const ExperimentScale& scale) {
  return suiteStudy("smoke", {"CG"}, scale, /*overall=*/false);
}

// ---- Suite registry -------------------------------------------------------

struct SuiteEntry {
  std::string name;
  int order = 0;
  SuiteFn fn = nullptr;
};

/// Meyers singleton so cross-TU registrars never race static-init order.
std::vector<SuiteEntry>& suiteRegistry() {
  static std::vector<SuiteEntry> registry;
  return registry;
}

// The paper roster, at the canonical 10..100 positions (extension suites
// registered from their own translation units slot in between).
const SuiteRegistrar kCoreSuites[] = {
    {"table1", 10, suiteTable1},
    {"fig8", 20, suiteFig8},
    {"fig9", 30, suiteFig9},
    {"fig10", 40, suiteFig10},
    {"ablation_refine", 50, suiteAblationRefine},
    {"refine_micro", 60, suiteRefineMicro},
    {"obs_overhead", 70, suiteObsOverhead},
    {"simnet_micro", 80, suiteSimnetMicro},
    {"mem_micro", 90, suiteMemMicro},
    {"smoke", 100, suiteSmoke},
};

}  // namespace

SuiteRegistrar::SuiteRegistrar(std::string name, int order, SuiteFn fn) {
  RAHTM_REQUIRE(fn != nullptr, "suite '" + name + "' registered null body");
  auto& registry = suiteRegistry();
  for (const SuiteEntry& e : registry) {
    RAHTM_REQUIRE(e.name != name, "duplicate suite '" + name + "'");
  }
  registry.push_back({std::move(name), order, fn});
  std::sort(registry.begin(), registry.end(),
            [](const SuiteEntry& a, const SuiteEntry& b) {
              return a.order != b.order ? a.order < b.order : a.name < b.name;
            });
}

std::vector<std::string> knownSuites() {
  std::vector<std::string> names;
  names.reserve(suiteRegistry().size());
  for (const SuiteEntry& e : suiteRegistry()) names.push_back(e.name);
  return names;
}

obs::RunReport runSuite(const std::string& name,
                        const ExperimentScale& scale) {
  SuiteFn fn = nullptr;
  for (const SuiteEntry& e : suiteRegistry()) {
    if (e.name == name) {
      fn = e.fn;
      break;
    }
  }
  if (fn == nullptr) {
    std::string known;
    for (const std::string& n : knownSuites()) {
      known += known.empty() ? n : (", " + n);
    }
    throw ParseError("unknown suite '" + name + "' (known: " + known + ")");
  }
  obs::RunReport report = fn(scale);
  // Suite boundary: fold the current VmRSS into the sampled peak (the
  // watchdog only samples while its poll thread runs), then snapshot the
  // accounting into the ledger's mem section. Peaks are process-wide, so
  // one suite per invocation keeps the attribution clean — tools/ci.sh
  // runs them that way.
  obs::MemRegistry::instance().sampleRss();
  report.mem = obs::currentMemSection();
  return report;
}

ExperimentScale scaleFromFingerprint(const obs::EnvFingerprint& env) {
  return ExperimentScale::fromSpec(env.nodes,
                                   static_cast<int>(env.concentration),
                                   env.messageBytes,
                                   static_cast<int>(env.simIterations));
}

}  // namespace rahtm::bench
