/// \file bench_fig1.cpp
/// Figure 1 of the paper: the effect of the routing algorithm on mapping
/// quality. A heavy pair on a 2x2 network is mapped adjacent (what the
/// hop-bytes metric wants) versus diagonal (what MCL under MAR wants); both
/// mappings are scored analytically and by cycle-level simulation.

#include <iomanip>
#include <iostream>

#include "bench/experiment.hpp"
#include "graph/stats.hpp"
#include "mapping/mapping.hpp"
#include "routing/lp_routing.hpp"
#include "routing/oblivious.hpp"
#include "simnet/simulator.hpp"
#include "topology/torus.hpp"

int main(int argc, char** argv) {
  const auto telemetry = rahtm::bench::telemetryFromCli(argc, argv);
  using namespace rahtm;
  const Torus net = Torus::mesh(Shape{2, 2});
  CommGraph g(4);
  g.addExchange(0, 1, 100);
  g.addExchange(0, 2, 1);
  g.addExchange(1, 3, 1);
  g.addExchange(2, 3, 1);

  const std::vector<NodeId> adjacent{net.nodeId(Coord{0, 0}),
                                     net.nodeId(Coord{0, 1}),
                                     net.nodeId(Coord{1, 0}),
                                     net.nodeId(Coord{1, 1})};
  const std::vector<NodeId> diagonal{net.nodeId(Coord{0, 0}),
                                     net.nodeId(Coord{1, 1}),
                                     net.nodeId(Coord{0, 1}),
                                     net.nodeId(Coord{1, 0})};

  std::cout << "Figure 1: routing-aware vs hop-bytes mapping on a 2x2 mesh\n\n";
  std::cout << std::left << std::setw(24) << "mapping" << std::right
            << std::setw(11) << "hop-bytes" << std::setw(11) << "MCL(MAR)"
            << std::setw(11) << "MCL(opt)" << std::setw(12) << "sim cycles"
            << "\n";
  for (const auto& [name, placement] :
       {std::pair<const char*, const std::vector<NodeId>&>{"(b) adjacent",
                                                           adjacent},
        {"(c) diagonal", diagonal}}) {
    Mapping m(4);
    for (RankId r = 0; r < 4; ++r) m.assign(r, placement[r], 0);
    simnet::Phase phase;
    for (const Flow& f : g.flows()) {
      phase.push_back({f.src, f.dst, static_cast<std::int64_t>(f.bytes) * 64});
    }
    simnet::SimConfig sim;
    sim.bytesPerFlit = 8;
    sim.injectionBandwidth = 4;
    const auto res = simulatePhase(net, m, phase, sim);
    const auto lpMcl = optimalMinimalMcl(net, g, placement);
    std::cout << std::left << std::setw(24) << name << std::right
              << std::setw(11) << hopBytes(g, net, placement) << std::setw(11)
              << placementMcl(net, g, placement) << std::setw(11) << lpMcl.mcl
              << std::setw(12) << res.cycles << "\n";
  }
  std::cout << "\nExpected shape: adjacent wins hop-bytes; diagonal roughly "
               "halves MCL and\nsimulated drain time (the paper's argument "
               "for routing-aware mapping).\n";
  return 0;
}
