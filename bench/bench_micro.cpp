/// \file bench_micro.cpp
/// google-benchmark microbenchmarks of the performance-critical kernels:
/// the oblivious channel-load accumulation, the memoized MCL evaluator, the
/// simplex solver, the cycle-level simulator and the orientation machinery.
/// These are the kernels whose cost determines the §V-B optimization time.

#include <benchmark/benchmark.h>

#include "core/subproblem.hpp"
#include "lp/simplex.hpp"
#include "mapping/hilbert.hpp"
#include "mapping/permutation.hpp"
#include "routing/evaluator.hpp"
#include "routing/oblivious.hpp"
#include "simnet/simulator.hpp"
#include "topology/orientation.hpp"
#include "topology/presets.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace rahtm;

void BM_UniformMinimalAccumulate(benchmark::State& state) {
  const Torus t = bgqPartition512();
  ChannelLoadMap loads(t);
  const Coord src = t.coordOf(0);
  const Coord dst = t.coordOf(static_cast<NodeId>(t.numNodes() - 1));
  for (auto _ : state) {
    accumulateUniformMinimal(t, src, dst, 100.0, loads);
    benchmark::DoNotOptimize(loads.raw().data());
  }
}
BENCHMARK(BM_UniformMinimalAccumulate);

void BM_PlacementMclCold(benchmark::State& state) {
  const Torus t = Torus::torus(Shape{2, 2, 2});
  const Workload w = makeCG(8);
  const CommGraph g = w.commGraph();
  std::vector<NodeId> place(8);
  for (NodeId n = 0; n < 8; ++n) place[static_cast<std::size_t>(n)] = n;
  for (auto _ : state) {
    benchmark::DoNotOptimize(placementMcl(t, g, place));
  }
}
BENCHMARK(BM_PlacementMclCold);

void BM_MclEvaluatorWarm(benchmark::State& state) {
  const Torus t = Torus::torus(Shape{2, 2, 2});
  const Workload w = makeCG(8);
  const CommGraph g = w.commGraph();
  std::vector<NodeId> place(8);
  for (NodeId n = 0; n < 8; ++n) place[static_cast<std::size_t>(n)] = n;
  MclEvaluator evaluator(t);
  evaluator.mcl(g, place);  // warm the pair cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.mcl(g, place));
  }
}
BENCHMARK(BM_MclEvaluatorWarm);

void BM_ExhaustiveLeafSolve(benchmark::State& state) {
  const Torus cube = Torus::mesh(Shape{2, 2, 2});
  CommGraph g(8);
  for (RankId r = 0; r < 8; ++r) {
    g.addExchange(r, (r + 1) % 8, 10);
    g.addExchange(r, (r + 2) % 8, 5);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exhaustiveSearch(g, cube, MapObjective::Mcl).objective);
  }
}
BENCHMARK(BM_ExhaustiveLeafSolve)->Unit(benchmark::kMillisecond);

void BM_SimplexTextbook(benchmark::State& state) {
  using namespace rahtm::lp;
  for (auto _ : state) {
    Model m;
    const VarId x = m.addContinuous("x", 0, infinity(), 3);
    const VarId y = m.addContinuous("y", 0, infinity(), 5);
    m.setObjective(Objective::Maximize);
    m.addConstraint("c1", {{x, 1}}, Sense::LessEq, 4);
    m.addConstraint("c2", {{y, 2}}, Sense::LessEq, 12);
    m.addConstraint("c3", {{x, 3}, {y, 2}}, Sense::LessEq, 18);
    benchmark::DoNotOptimize(solveLp(m).objective);
  }
}
BENCHMARK(BM_SimplexTextbook);

void BM_SimulatorPhase(benchmark::State& state) {
  const Torus t = torus32();
  const int c = 2;
  const Workload w = makeCG(static_cast<RankId>(t.numNodes() * c));
  DefaultMapper mapper;
  const Mapping m = mapper.map(w.commGraph(), t, c);
  simnet::SimConfig cfg;
  cfg.injectionBandwidth = 4;
  std::int64_t flits = 0;
  for (auto _ : state) {
    for (const simnet::Phase& phase : w.phases) {
      const auto r = simulatePhase(t, m, phase, cfg);
      flits += r.networkFlits;
      benchmark::DoNotOptimize(r.cycles);
    }
  }
  state.SetItemsProcessed(flits);
}
BENCHMARK(BM_SimulatorPhase)->Unit(benchmark::kMillisecond);

void BM_EnumerateOrientations(benchmark::State& state) {
  const Shape shape{2, 2, 2, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerateOrientations(shape).size());
  }
}
BENCHMARK(BM_EnumerateOrientations);

void BM_HilbertCurve(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hilbertIndexToCoords(i++ & 0xff, 2, 4));
  }
}
BENCHMARK(BM_HilbertCurve);

}  // namespace

BENCHMARK_MAIN();
