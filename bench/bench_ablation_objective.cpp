/// \file bench_ablation_objective.cpp
/// Ablation of the mapping objective (§III-A, Fig. 1): MCL (the paper's
/// routing-aware metric) vs hop-bytes (the routing-unaware metric used by
/// prior work). Both drive the *same* RAHTM machinery; only the objective
/// changes. Under minimum adaptive routing the MCL objective should win on
/// simulated communication time, while hop-bytes wins on... hop-bytes.

#include <iomanip>
#include <iostream>

#include "bench/experiment.hpp"
#include "graph/stats.hpp"
#include "profile/profile.hpp"
#include "routing/oblivious.hpp"

int main(int argc, char** argv) {
  const auto telemetry = rahtm::bench::telemetryFromCli(argc, argv);
  using namespace rahtm;
  using namespace rahtm::bench;
  const ExperimentScale scale = ExperimentScale::fromEnv();

  std::cout << "Ablation: MCL vs hop-bytes objective inside RAHTM\n\n";
  std::cout << std::left << std::setw(6) << "bench" << std::setw(11)
            << "objective" << std::right << std::setw(14) << "comm cycles"
            << std::setw(12) << "MCL" << std::setw(16) << "hop-bytes"
            << "\n";
  for (const char* name : {"BT", "SP", "CG"}) {
    const Workload w = makeNasByName(name, scale.ranks(), scale.params);
    const CommGraph g = w.commGraph();
    for (const MapObjective obj : {MapObjective::Mcl, MapObjective::HopBytes}) {
      RahtmConfig cfg;
      cfg.subproblem.objective = obj;
      cfg.merge.objective = obj;
      RahtmMapper mapper(cfg);
      const Mapping m =
          mapper.mapWorkload(w, scale.machine, scale.concentration);
      const auto cycles = static_cast<double>(
          commCyclesPerIteration(w, scale.machine, m, scale.sim));
      std::cout << std::left << std::setw(6) << name << std::setw(11)
                << (obj == MapObjective::Mcl ? "MCL" : "hop-bytes")
                << std::right << std::setw(14) << cycles << std::setw(12)
                << placementMcl(scale.machine, g, m.nodeVector())
                << std::setw(16) << hopBytes(g, scale.machine, m.nodeVector())
                << "\n";
    }
  }
  std::cout << "\nExpected: the MCL objective yields lower simulated "
               "communication time\nunder adaptive routing even where "
               "hop-bytes is higher — Fig. 1 at scale.\n";
  return 0;
}
