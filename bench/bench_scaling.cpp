/// \file bench_scaling.cpp
/// §VI "Time for Offline Mapping": the paper flags mapping-time scaling
/// beyond 16K processes as the open problem. This harness measures how this
/// implementation's mapping time and quality scale with rank count across
/// machine sizes (same benchmark, same concentration).

#include <iomanip>
#include <iostream>

#include "bench/experiment.hpp"
#include "core/rahtm.hpp"
#include "graph/stats.hpp"
#include "mapping/permutation.hpp"
#include "routing/oblivious.hpp"
#include "topology/presets.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  const auto telemetry = rahtm::bench::telemetryFromCli(argc, argv);
  using namespace rahtm;
  struct Point {
    Torus machine;
    int concentration;
  };
  const Point points[] = {
      {Torus::torus(Shape{2, 2, 2, 2}), 4},      //   64 ranks, 16 nodes
      {torus32(), 8},                            //  256 ranks, 32 nodes
      {bgqPartition128(), 8},                    // 1024 ranks, 128 nodes
      {bgqPartition512(), 2},                    // 1024 ranks, 512 nodes
      // 4096 ranks on the 512-node partition also runs (RAHTM_CONC=8 via
      // bench_fig10's env knobs): with delta-evaluated probes the refinement
      // pass is no longer the bottleneck — the merge phase's per-level
      // re-evaluation dominates at the top end (the §VI scaling discussion).
  };

  std::cout << "Mapping-time scaling (CG pattern, concentration-8 style)\n\n";
  std::cout << std::right << std::setw(7) << "ranks" << std::setw(14)
            << "machine" << std::setw(10) << "cluster" << std::setw(9)
            << "pin" << std::setw(9) << "merge" << std::setw(9) << "refine"
            << std::setw(9) << "total" << std::setw(14) << "MCL vs base"
            << "\n";
  for (const Point& p : points) {
    const auto ranks =
        static_cast<RankId>(p.machine.numNodes() * p.concentration);
    const Workload w = makeCG(ranks);
    const CommGraph g = w.commGraph();
    RahtmMapper mapper;
    const Mapping m = mapper.mapWorkload(w, p.machine, p.concentration);
    DefaultMapper def;
    const double mclBase =
        placementMcl(p.machine, g, def.map(g, p.machine, p.concentration)
                                       .nodeVector());
    const double mcl = placementMcl(p.machine, g, m.nodeVector());
    const RahtmStats& s = mapper.stats();
    std::cout << std::right << std::setw(7) << ranks << std::setw(14)
              << p.machine.describe() << std::fixed << std::setprecision(2)
              << std::setw(10) << s.clusterSeconds << std::setw(9)
              << s.pinSeconds << std::setw(9) << s.mergeSeconds
              << std::setw(9) << s.refineSeconds << std::setw(9)
              << s.totalSeconds << std::setw(13)
              << (mclBase > 0 ? 100.0 * mcl / mclBase : 0) << "%" << std::endl;
    std::cout.unsetf(std::ios::fixed);
    std::cout << std::setprecision(6);
  }
  std::cout << "\nThe paper reports minutes-to-hours at 16K ranks on CPLEX; "
               "this\nimplementation's portfolio keeps the growth polynomial. "
               "Refinement probes\nare delta-evaluated (O(degree) per "
               "candidate, routing/delta_eval.hpp), so\nthe merge phase "
               "dominates at the top end.\n";
  return 0;
}
