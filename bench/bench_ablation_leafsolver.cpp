/// \file bench_ablation_leafsolver.cpp
/// Ablation of the phase-2 subproblem solver portfolio (§III-C): the paper
/// solves every level with the Table II MILP (CPLEX, hours); this library
/// offers the exact MILP, exact exhaustive search and annealing. The sweep
/// shows the quality/time trade-off that motivates the portfolio.

#include <iomanip>
#include <iostream>

#include "bench/experiment.hpp"

int main(int argc, char** argv) {
  const auto telemetry = rahtm::bench::telemetryFromCli(argc, argv);
  using namespace rahtm;
  using namespace rahtm::bench;
  const ExperimentScale scale = ExperimentScale::fromEnv();
  const Workload w = makeNasByName("CG", scale.ranks(), scale.params);

  struct Mode {
    const char* name;
    int milpMax;
    int exhaustiveMax;
  };
  // milp-first tries the Table II MILP on every subproblem up to 8 nodes
  // (budgeted; incumbents may be budget-limited rather than proved optimal —
  // the miniature of the paper's hours-long CPLEX runs).
  const Mode modes[] = {
      {"portfolio", 4, 8},   // the default: MILP tiny, exhaustive small
      {"milp-first", 8, 8},
      {"exhaustive", 0, 8},
      {"anneal-only", 0, 0},
  };

  std::cout << "Ablation: leaf/level subproblem solver (CG, " << scale.ranks()
            << " ranks)\n\n";
  std::cout << std::left << std::setw(13) << "mode" << std::right
            << std::setw(12) << "pin sec" << std::setw(12) << "root MCL"
            << std::setw(12) << "total sec" << "  methods\n";
  for (const Mode& mode : modes) {
    RahtmConfig cfg;
    cfg.subproblem.milpMaxVerts = mode.milpMax;
    cfg.subproblem.exhaustiveMaxVerts = mode.exhaustiveMax;
    cfg.subproblem.milpTimeLimitSec = 2.0;
    cfg.subproblem.milpMaxNodes = 4000;
    RahtmMapper mapper(cfg);
    mapper.mapWorkload(w, scale.machine, scale.concentration);
    const RahtmStats& s = mapper.stats();
    std::cout << std::left << std::setw(13) << mode.name << std::right
              << std::setw(12) << std::fixed << std::setprecision(3)
              << s.pinSeconds << std::setw(12) << std::setprecision(0)
              << s.rootObjective << std::setw(12) << std::setprecision(3)
              << s.totalSeconds << "  ";
    std::cout.unsetf(std::ios::fixed);
    bool first = true;
    for (const auto& [method, count] : s.solverMethodCounts) {
      std::cout << (first ? "" : ", ") << count << " " << method;
      first = false;
    }
    std::cout << "\n" << std::setprecision(6);
  }
  std::cout << "\nExpected: similar final MCL across exact modes (the merge "
               "phase recovers\nmost pin differences); MILP-first costs the "
               "most time — the paper's\nCPLEX-hours story in miniature.\n";
  return 0;
}
