/// \file bench_fig9.cpp
/// Figure 9 of the paper: the fraction of execution time spent in
/// communication vs computation for each benchmark under the baseline
/// mapping. The compute phase is calibrated to the paper's measured
/// fractions (CG > 70%, BT/SP ~ 35%) — see the substitution table in
/// DESIGN.md — and this harness then *measures* the resulting split through
/// the profiler, confirming the calibration closes.

#include <iomanip>
#include <iostream>

#include "bench/experiment.hpp"
#include "mapping/permutation.hpp"
#include "profile/profile.hpp"

int main(int argc, char** argv) {
  const auto telemetry = rahtm::bench::telemetryFromCli(argc, argv);
  using namespace rahtm;
  using namespace rahtm::bench;
  const ExperimentScale scale = ExperimentScale::fromEnv();

  std::cout << "Figure 9: communication/computation split under the ABCDET "
               "mapping\n\n";
  std::cout << std::left << std::setw(6) << "bench" << std::right
            << std::setw(14) << "comm cycles" << std::setw(16)
            << "compute cycles" << std::setw(12) << "comm frac"
            << std::setw(14) << "paper frac" << "\n";
  for (const char* name : {"BT", "SP", "CG"}) {
    const Workload w = makeNasByName(name, scale.ranks(), scale.params);
    DefaultMapper baseline;
    const Mapping m =
        baseline.map(w.commGraph(), scale.machine, scale.concentration);
    const auto comm = static_cast<double>(
        commCyclesPerIteration(w, scale.machine, m, scale.sim));
    const double compute = calibrateComputeCycles(comm, w.commFraction);
    const Profile p = profileRun(w, scale.machine, m, scale.sim, compute);
    std::cout << std::left << std::setw(6) << name << std::right
              << std::setw(14) << p.commTimePerIter << std::setw(16)
              << p.computeTimePerIter << std::setw(11) << std::fixed
              << std::setprecision(1) << 100 * p.commFraction() << "%"
              << std::setw(13) << std::setprecision(0)
              << 100 * w.commFraction << "%\n";
    std::cout.unsetf(std::ios::fixed);
    std::cout << std::setprecision(6);
  }
  std::cout << "\nCG is communication-dominated (>70%); BT and SP sit near "
               "35% — the\nopportunity profile that explains Fig. 8 through "
               "Amdahl's law.\n";
  return 0;
}
