#include "bench/experiment.hpp"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "graph/stats.hpp"
#include "mapping/hilbert.hpp"
#include "mapping/permutation.hpp"
#include "mapping/rubik.hpp"
#include "profile/profile.hpp"
#include "routing/oblivious.hpp"
#include "routing/route_cache.hpp"
#include "topology/presets.hpp"

namespace rahtm::bench {

namespace {

std::int64_t envInt(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::atoll(v);
}

/// The paper's ACEBDT permutation interleaves odd-position dimensions
/// before even ones; build the analogue for any dimensionality.
std::string interleavedSpec(std::size_t ndims) {
  std::string spec;
  for (std::size_t d = 0; d < ndims; d += 2) {
    spec += static_cast<char>('A' + d);
  }
  for (std::size_t d = 1; d < ndims; d += 2) {
    spec += static_cast<char>('A' + d);
  }
  return spec + "T";
}

std::string canonicalSpec(std::size_t ndims) {
  std::string spec;
  for (std::size_t d = 0; d < ndims; ++d) spec += static_cast<char>('A' + d);
  return spec + "T";
}

}  // namespace

std::unique_ptr<obs::TelemetrySession> telemetryFromCli(int argc,
                                                        char** argv) {
  obs::TelemetryConfig cfg = obs::telemetryConfigFromEnv();
  for (int i = 1; i + 1 < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--trace-out") {
      cfg.traceOutPath = argv[++i];
    } else if (flag == "--trace-summary") {
      cfg.traceSummaryPath = argv[++i];
    } else if (flag == "--metrics-out") {
      cfg.metricsOutPath = argv[++i];
    }
  }
  return std::make_unique<obs::TelemetrySession>(cfg);
}

ExperimentScale ExperimentScale::fromEnv() {
  ExperimentScale scale =
      fromSpec(envInt("RAHTM_NODES", 128),
               static_cast<int>(envInt("RAHTM_CONC", 8)),
               envInt("RAHTM_BYTES", 4096),
               static_cast<int>(envInt("RAHTM_SIM_ITERS", 4)));
  // RAHTM_SIM_FIDELITY=flow swaps the cycle sim for the flow-level
  // analytic estimate (DESIGN.md §12). Results-changing, so it is honored
  // only here — never in fromSpec, which regression checks use to re-run a
  // baseline's recorded configuration.
  if (const char* f = std::getenv("RAHTM_SIM_FIDELITY")) {
    const std::string v(f);
    if (v == "flow") {
      scale.sim.fidelity = simnet::SimFidelity::Flow;
    } else if (!v.empty() && v != "cycle") {
      throw ParseError("RAHTM_SIM_FIDELITY must be 'cycle' or 'flow'");
    }
  }
  return scale;
}

ExperimentScale ExperimentScale::fromSpec(std::int64_t nodes,
                                          int concentration,
                                          std::int64_t messageBytes,
                                          int simIterations) {
  ExperimentScale scale;
  switch (nodes) {
    case 32: scale.machine = torus32(); break;
    case 128: scale.machine = bgqPartition128(); break;
    case 512: scale.machine = bgqPartition512(); break;
    default:
      throw ParseError("RAHTM_NODES must be 32, 128 or 512");
  }
  scale.concentration = concentration;
  scale.simIterations = simIterations;
  scale.params.messageBytes = messageBytes;
  // BG/Q-like NIC: injection outruns a single link so network contention —
  // the effect RAHTM optimizes — is visible (DESIGN.md §1).
  scale.sim.injectionBandwidth = 4;
  // Simulator worker threads (RAHTM_SIM_THREADS, 0 = all cores). Safe to
  // honor even when re-running a baseline's recorded spec: the sharded
  // engine's results are bit-identical for every thread count.
  scale.sim.threads = static_cast<int>(envInt("RAHTM_SIM_THREADS", 1));
  return scale;
}

std::vector<std::unique_ptr<TaskMapper>> paperRoster(
    const ExperimentScale& scale) {
  const std::size_t n = scale.machine.ndims();
  std::vector<std::unique_ptr<TaskMapper>> roster;
  roster.push_back(std::make_unique<DefaultMapper>());
  roster.push_back(std::make_unique<PermutationMapper>("T" + canonicalSpec(n).substr(0, n)));
  roster.push_back(std::make_unique<PermutationMapper>(interleavedSpec(n)));
  roster.push_back(std::make_unique<HilbertMapper>());
  roster.push_back(std::make_unique<RubikMapper>(
      RubikMapper::autoFor(scale.ranks(), scale.machine, scale.concentration)));
  roster.push_back(std::make_unique<RahtmMapper>());
  return roster;
}

std::vector<MapperRun> runStudy(const Workload& workload,
                                const ExperimentScale& scale) {
  const CommGraph graph = workload.commGraph();
  // Mapper/simulator route sharing: past the complete-table ceiling the
  // RAHTM mapper solves on a tiered cache anyway, so hand the same cache to
  // the simulator — every pair the solve touched is a warm read in flow
  // mode. At complete-table scales both sides keep their historical
  // (baseline-gated) private tables.
  std::shared_ptr<TieredRouteCache> routeCache;
  simnet::SimConfig sim = scale.sim;
  if (!RouteTable::fullBuildFeasible(scale.machine)) {
    routeCache = std::make_shared<TieredRouteCache>(scale.machine);
    sim.routeCache = routeCache;
  }
  std::vector<MapperRun> out;
  for (auto& mapper : paperRoster(scale)) {
    MapperRun run;
    run.mapper = mapper->name();
    Timer t;
    Mapping m;
    if (auto* rahtm = dynamic_cast<RahtmMapper*>(mapper.get())) {
      rahtm->config().routeCache = routeCache;
      m = rahtm->mapWorkload(workload, scale.machine, scale.concentration);
    } else {
      m = mapper->map(graph, scale.machine, scale.concentration);
    }
    run.mapSeconds = t.seconds();
    const std::string err = m.validate(scale.machine, scale.concentration);
    RAHTM_REQUIRE(err.empty(), run.mapper + ": invalid mapping: " + err);
    run.commCycles = static_cast<double>(commCyclesPerIteration(
        workload, scale.machine, m, sim, IterationModel::RankPipelined,
        scale.simIterations));
    run.mcl = placementMcl(scale.machine, graph, m.nodeVector());
    run.hopBytes = hopBytes(graph, scale.machine, m.nodeVector());
    out.push_back(run);
  }
  return out;
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) {
    RAHTM_LOG(Warn) << "geomean: empty input, returning 0";
    return 0;
  }
  double logSum = 0;
  for (const double v : values) {
    if (!(v > 0)) {
      RAHTM_LOG(Warn) << "geomean: non-positive value " << v
                      << ", returning 0";
      return 0;
    }
    logSum += std::log(v);
  }
  return std::exp(logSum / static_cast<double>(values.size()));
}

void printRelativeTable(const std::string& title,
                        const std::vector<std::string>& benchmarkNames,
                        const std::vector<std::vector<MapperRun>>& runs,
                        double MapperRun::*metric) {
  std::cout << title << "\n";
  std::cout << std::left << std::setw(10) << "mapping";
  for (const std::string& b : benchmarkNames) {
    std::cout << std::right << std::setw(10) << b;
  }
  std::cout << std::right << std::setw(10) << "geomean" << "\n";

  const std::size_t mappers = runs.front().size();
  for (std::size_t mi = 0; mi < mappers; ++mi) {
    std::cout << std::left << std::setw(10) << runs.front()[mi].mapper;
    std::vector<double> ratios;
    for (const auto& benchRuns : runs) {
      const double base = benchRuns.front().*metric;
      const double v = benchRuns[mi].*metric;
      const double ratio = base > 0 ? v / base : 1.0;
      ratios.push_back(ratio);
      std::cout << std::right << std::setw(9) << std::fixed
                << std::setprecision(1) << 100.0 * ratio << "%";
    }
    std::cout << std::right << std::setw(9) << std::fixed
              << std::setprecision(1) << 100.0 * geomean(ratios) << "%\n";
    std::cout.unsetf(std::ios::fixed);
    std::cout << std::setprecision(6);
  }
}

}  // namespace rahtm::bench
