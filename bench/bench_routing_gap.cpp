/// \file bench_routing_gap.cpp
/// §VI "Interaction with application-specific global routing": how much
/// headroom would per-flow optimal routing add on top of mapping? For each
/// mapping we report the MCL under three routing models —
///   DOR      deterministic dimension-order (no adaptivity),
///   MAR      uniform-minimal (the BG/Q approximation RAHTM optimizes),
///   optimal  LP-optimal per-flow splitting over minimal paths
/// — on a small machine where the routing LP is tractable. A small
/// MAR-to-optimal gap for RAHTM's mappings means mapping alone already
/// captures most of what joint mapping+routing could.

#include <iomanip>
#include <iostream>

#include "bench/experiment.hpp"
#include "core/rahtm.hpp"
#include "graph/stats.hpp"
#include "mapping/permutation.hpp"
#include "routing/lp_routing.hpp"
#include "routing/oblivious.hpp"
#include "topology/torus.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  const auto telemetry = rahtm::bench::telemetryFromCli(argc, argv);
  using namespace rahtm;
  const Torus machine = Torus::torus(Shape{2, 2, 2, 2});  // LP-tractable
  const int concentration = 4;  // 64 ranks: square (BT) and 2^k (CG)
  const auto ranks = static_cast<RankId>(machine.numNodes() * concentration);

  std::cout << "Routing gap study (" << ranks << " ranks on "
            << machine.describe() << ")\n\n";
  std::cout << std::left << std::setw(7) << "bench" << std::setw(8)
            << "mapper" << std::right << std::setw(12) << "DOR MCL"
            << std::setw(12) << "MAR MCL" << std::setw(12) << "opt MCL"
            << std::setw(14) << "MAR/opt gap" << "\n";

  for (const char* name : {"BT", "SP", "CG"}) {
    const Workload w = makeNasByName(name, ranks);
    const CommGraph g = w.commGraph();
    DefaultMapper def;
    RahtmMapper rahtm;
    const Mapping mb = def.map(g, machine, concentration);
    const Mapping mr = rahtm.mapWorkload(w, machine, concentration);
    for (const auto& [label, m] :
         {std::pair<const char*, const Mapping&>{"ABCDET", mb},
          {"RAHTM", mr}}) {
      const double dor =
          placementMcl(machine, g, m.nodeVector(), LoadModel::DimensionOrder);
      const double mar = placementMcl(machine, g, m.nodeVector());
      const auto opt = optimalMinimalMcl(machine, g, m.nodeVector());
      const double optMcl =
          opt.status == lp::SolveStatus::Optimal ? opt.mcl : -1;
      std::cout << std::left << std::setw(7) << name << std::setw(8) << label
                << std::right << std::setw(12) << dor << std::setw(12) << mar
                << std::setw(12) << optMcl << std::setw(13) << std::fixed
                << std::setprecision(2) << (optMcl > 0 ? mar / optMcl : 0)
                << "x\n";
      std::cout.unsetf(std::ios::fixed);
      std::cout << std::setprecision(6);
    }
  }
  std::cout << "\nExpected: DOR >= MAR >= optimal for every mapping; RAHTM "
               "narrows the\nMAR-to-optimal gap (mapping already load-"
               "balances what routing could).\n";
  return 0;
}
