/// \file suites_serve.cpp
/// The `serve` suite: a closed-loop in-process client over the
/// mapping-as-a-service stack (serve::MapService + Scheduler +
/// ArtifactCache). Registered through the suite registry from this
/// translation unit — nothing in suites.cpp knows it exists.
///
/// The ledger carries three kinds of columns:
///  * quality (mcl / hop_bytes per benchmark) — gated at the default
///    tolerances, served mappings must match one-shot quality;
///  * correctness counters with committed baselines of 0 —
///    `served_determinism_mismatches` (a served mapping differing from the
///    uncached one-shot run at the same seed) and `warm_route_misses` (a
///    cache-warm request that still rebuilt a route table), both hard
///    failures on any nonzero value;
///  * latency — requests/sec and p50/p95/p99 over the scheduler's
///    queue+solve latency histogram, reported but never gated (wall time
///    is host noise).

#include <string>
#include <vector>

#include "bench/experiment.hpp"
#include "bench/suites.hpp"
#include "common/timer.hpp"
#include "graph/stats.hpp"
#include "obs/metrics.hpp"
#include "routing/oblivious.hpp"
#include "serve/scheduler.hpp"
#include "serve/service.hpp"

namespace rahtm::bench {

namespace {

/// Install a private registry for the suite's duration so the scheduler's
/// latency histograms exist and start empty (and a co-resident session's
/// registry is not polluted).
struct ScopedMetrics {
  obs::MetricsRegistry* prev = obs::metrics();
  obs::MetricsRegistry registry;
  ScopedMetrics() { obs::setMetrics(&registry); }
  ~ScopedMetrics() { obs::setMetrics(prev); }
};

obs::RunReport suiteServe(const ExperimentScale& scale) {
  obs::RunReport report;
  report.suite = "serve";

  const std::vector<std::string> benchmarks = {"CG", "BT"};
  constexpr int kRepeats = 3;  // same request repeated -> cache-warm solves

  ScopedMetrics metrics;
  serve::ArtifactCache cache;
  serve::MapService service(&cache);
  serve::SchedulerConfig schedCfg;
  schedCfg.threads = 2;
  schedCfg.maxBatch = 4;

  const auto makeRequest = [&](const std::string& benchmark) {
    serve::MapRequest req;
    req.machine = scale.machine.shape();
    req.concentration = scale.concentration;
    req.benchmark = benchmark;
    req.messageBytes = scale.params.messageBytes;
    return req;
  };

  // One-shot references: an uncached service, solved serially — the
  // historical rahtm_map behavior the served results must reproduce bit
  // for bit (equal seeds, shared artifacts content-identical).
  serve::MapService oneShot;
  std::vector<serve::MapResponse> reference;
  for (const std::string& b : benchmarks) {
    reference.push_back(oneShot.handle(makeRequest(b)));
  }

  // Closed-loop batch: every request submitted up front, drained to
  // completion; latency = queue wait + solve, throughput = the wall clock
  // over the whole batch.
  std::int64_t mismatches = 0;
  double batchSeconds = 0;
  std::size_t batchRequests = 0;
  {
    serve::Scheduler sched(service, schedCfg);
    std::vector<std::future<serve::MapResponse>> futures;
    std::vector<std::size_t> refOf;  // future index -> reference index
    Timer wall;
    for (int rep = 0; rep < kRepeats; ++rep) {
      for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        serve::Scheduler::Ticket t = sched.submit(makeRequest(benchmarks[b]));
        if (!t.accepted) continue;  // depth 64 >> batch size; never rejects
        futures.push_back(std::move(t.response));
        refOf.push_back(b);
      }
    }
    std::vector<serve::MapResponse> served;
    for (std::future<serve::MapResponse>& f : futures) {
      served.push_back(f.get());
    }
    batchSeconds = wall.seconds();
    batchRequests = served.size();
    for (std::size_t i = 0; i < served.size(); ++i) {
      const serve::MapResponse& ref = reference[refOf[i]];
      if (!served[i].ok || served[i].mapping != ref.mapping) ++mismatches;
    }
  }

  // Cache-warm probe: every artifact this topology/workload needs is now
  // resident, so one more request must not miss (and therefore must not
  // rebuild a route table).
  const serve::ArtifactCacheStats before = cache.stats();
  const serve::MapResponse warm = service.handle(makeRequest(benchmarks[0]));
  const serve::ArtifactCacheStats after = cache.stats();
  const auto warmRouteMisses =
      static_cast<double>(after.routeMisses - before.routeMisses);
  const auto warmIncidenceMisses =
      static_cast<double>(after.incidenceMisses - before.incidenceMisses);
  if (!warm.ok) ++mismatches;

  // Quality columns: one gated record per benchmark, from the served runs'
  // one-shot twins (identical by the determinism gate above).
  for (std::size_t b = 0; b < benchmarks.size(); ++b) {
    obs::RunRecord record;
    record.benchmark = benchmarks[b];
    record.mapper = "rahtm";
    record.add("mcl", reference[b].mcl);
    record.add("hop_bytes", reference[b].hopBytes);
    record.add("solve_sec", reference[b].solveSeconds);
    report.records.push_back(std::move(record));
  }

  // Service record: correctness counters (gated 0) + the latency ledger.
  const obs::Histogram& latency = metrics.registry.histogram(
      "rahtm.serve.latency_sec", obs::expBuckets(1e-4, 2.0, 21));
  obs::RunRecord record;
  record.benchmark = "serve";
  record.mapper = "scheduler";
  record.add("served_determinism_mismatches", static_cast<double>(mismatches));
  record.add("warm_route_misses", warmRouteMisses);
  record.add("warm_incidence_misses", warmIncidenceMisses);
  record.add("requests_per_sec",
             batchSeconds > 0
                 ? static_cast<double>(batchRequests) / batchSeconds
                 : 0);
  record.add("latency_p50_sec", latency.quantile(0.50));
  record.add("latency_p95_sec", latency.quantile(0.95));
  record.add("latency_p99_sec", latency.quantile(0.99));
  record.add("cache_route_hits", static_cast<double>(after.routeHits));
  record.add("cache_route_misses", static_cast<double>(after.routeMisses));
  record.add("cache_incidence_hits", static_cast<double>(after.incidenceHits));
  record.add("cache_incidence_misses",
             static_cast<double>(after.incidenceMisses));
  record.add("cache_bytes", static_cast<double>(after.bytes));
  report.records.push_back(std::move(record));

  obs::EnvFingerprint env = obs::currentEnvFingerprint();
  env.nodes = scale.machine.numNodes();
  env.concentration = scale.concentration;
  env.messageBytes = scale.params.messageBytes;
  env.simIterations = scale.simIterations;
  env.threads = schedCfg.threads;
  report.env = env;
  return report;
}

const SuiteRegistrar kServeSuite{"serve", 95, suiteServe};

}  // namespace

}  // namespace rahtm::bench
