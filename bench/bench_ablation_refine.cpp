/// \file bench_ablation_refine.cpp
/// Ablation of the two extensions this implementation adds past the
/// paper's three phases (DESIGN.md, refine.hpp): the final pairwise-swap
/// refinement and the canonical-seed portfolio. Quantifies how much of the
/// end result comes from the paper's pipeline alone.

#include <iomanip>
#include <iostream>

#include "bench/experiment.hpp"
#include "profile/profile.hpp"
#include "routing/oblivious.hpp"

int main(int argc, char** argv) {
  const auto telemetry = rahtm::bench::telemetryFromCli(argc, argv);
  using namespace rahtm;
  using namespace rahtm::bench;
  const ExperimentScale scale = ExperimentScale::fromEnv();

  struct Mode {
    const char* name;
    bool refine;
    bool canonical;
  };
  const Mode modes[] = {
      {"paper-only", false, false},   // phases 1-3 exactly
      {"+refine", true, false},
      {"+refine+canon", true, true},  // the shipped default
  };

  std::cout << "Ablation: final refinement and canonical-seed portfolio\n\n";
  std::cout << std::left << std::setw(6) << "bench" << std::setw(15) << "mode"
            << std::right << std::setw(12) << "MCL" << std::setw(14)
            << "comm cycles" << std::setw(12) << "map sec" << "\n";
  for (const char* name : {"BT", "SP", "CG"}) {
    const Workload w = makeNasByName(name, scale.ranks(), scale.params);
    const CommGraph g = w.commGraph();
    for (const Mode& mode : modes) {
      RahtmConfig cfg;
      cfg.finalRefinement = mode.refine;
      cfg.canonicalSeed = mode.canonical;
      RahtmMapper mapper(cfg);
      const Mapping m =
          mapper.mapWorkload(w, scale.machine, scale.concentration);
      const auto cycles = static_cast<double>(commCyclesPerIteration(
          w, scale.machine, m, scale.sim, IterationModel::RankPipelined,
          scale.simIterations));
      std::cout << std::left << std::setw(6) << name << std::setw(15)
                << mode.name << std::right << std::setw(12)
                << placementMcl(scale.machine, g, m.nodeVector())
                << std::setw(14) << cycles << std::setw(12) << std::fixed
                << std::setprecision(2) << mapper.stats().totalSeconds
                << "\n";
      std::cout.unsetf(std::ios::fixed);
      std::cout << std::setprecision(6);
    }
  }
  std::cout << "\nExpected: the paper's pipeline captures most of the win on "
               "the grid\nbenchmarks; refinement tightens it, and the "
               "canonical seed only matters\nwhere the pattern is "
               "bisection-bound (CG at high concentration).\n";
  return 0;
}
