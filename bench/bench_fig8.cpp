/// \file bench_fig8.cpp
/// Figure 8 of the paper: overall execution time for different mappings,
/// relative to the ABCDET baseline, per benchmark plus the geometric mean.
///
/// Overall time per iteration = calibrated compute time (constant per
/// benchmark, set so the baseline matches the paper's Fig. 9 communication
/// fraction) + simulated communication time under the mapping. This is the
/// Amdahl damping the paper describes: a 20% communication win appears as a
/// ~9% overall win.

#include <iostream>

#include "bench/experiment.hpp"
#include "profile/profile.hpp"

int main(int argc, char** argv) {
  const auto telemetry = rahtm::bench::telemetryFromCli(argc, argv);
  using namespace rahtm;
  using namespace rahtm::bench;
  const ExperimentScale scale = ExperimentScale::fromEnv();
  const std::vector<std::string> benchmarks{"BT", "SP", "CG"};

  std::vector<std::vector<MapperRun>> overall;
  for (const std::string& name : benchmarks) {
    const Workload w = makeNasByName(name, scale.ranks(), scale.params);
    std::vector<MapperRun> runs = runStudy(w, scale);
    // Calibrate the compute phase against the baseline mapping.
    const double compute =
        calibrateComputeCycles(runs.front().commCycles, w.commFraction);
    for (MapperRun& r : runs) r.commCycles += compute;  // now "total time"
    overall.push_back(std::move(runs));
    std::cerr << "[fig8] " << name << " done\n";
  }

  std::cout << "Figure 8: overall execution time relative to ABCDET ("
            << scale.ranks() << " ranks on " << scale.machine.describe()
            << ")\n\n";
  printRelativeTable("overall time (lower is better)", benchmarks, overall,
                     &MapperRun::commCycles);
  std::cout << "\nPaper's shape: RAHTM improves all three benchmarks "
               "(~9% geomean);\ndimension permutations are non-uniform "
               "(TABCDE/ACEBDT hurt CG);\nHilbert helps modestly; RHT is "
               "mixed.\n";
  return 0;
}
