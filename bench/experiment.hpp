#pragma once
/// \file experiment.hpp
/// Shared infrastructure for the paper-reproduction benchmark harnesses
/// (one binary per table/figure — see DESIGN.md §3).
///
/// The experiment scale is configurable through environment variables so
/// the same binaries drive laptop-scale and near-paper-scale runs:
///   RAHTM_NODES = 32 | 128 (default) | 512   machine size
///   RAHTM_CONC  = ranks per node (default 2; the paper used 32)
///   RAHTM_BYTES = per-message bytes of the NAS generators (default 4096)

#include <memory>
#include <string>
#include <vector>

#include "core/rahtm.hpp"
#include "mapping/mapping.hpp"
#include "obs/telemetry.hpp"
#include "simnet/simulator.hpp"
#include "topology/torus.hpp"
#include "workloads/workload.hpp"

namespace rahtm::bench {

struct ExperimentScale {
  Torus machine = Torus::torus(Shape{4, 4, 4, 2});
  int concentration = 2;
  NasParams params;
  simnet::SimConfig sim;
  /// Back-to-back iterations simulated per measurement (steady state).
  int simIterations = 4;

  RankId ranks() const {
    return static_cast<RankId>(machine.numNodes() * concentration);
  }

  /// Read the scale from the environment (see file header).
  static ExperimentScale fromEnv();

  /// Build a scale explicitly (nodes must be 32, 128 or 512). The ledger's
  /// regression check uses this to re-run a suite at the scale recorded in
  /// a baseline's environment fingerprint, whatever the current env says.
  static ExperimentScale fromSpec(std::int64_t nodes, int concentration,
                                  std::int64_t messageBytes,
                                  int simIterations);
};

/// Build a telemetry session for a benchmark harness: honors
/// --trace-out FILE / --trace-summary FILE / --metrics-out FILE on the
/// command line, falling back to the RAHTM_TRACE_OUT / RAHTM_TRACE_SUMMARY /
/// RAHTM_METRICS_OUT environment variables. The returned session may be
/// inert (telemetry off); it flushes its files on destruction, so keep it
/// alive for the whole main().
std::unique_ptr<obs::TelemetrySession> telemetryFromCli(int argc,
                                                        char** argv);

/// One mapper's results on one workload.
struct MapperRun {
  std::string mapper;
  double commCycles = 0;  ///< simulated communication cycles per iteration
  double mcl = 0;         ///< oblivious-model max channel load
  double hopBytes = 0;
  double mapSeconds = 0;  ///< offline mapping time
};

/// The paper's mapping roster (§IV): ABCDET default, two other dimension
/// permutations, Hilbert, Rubik-style hierarchical tiling, RAHTM.
/// Permutation specs are adapted to the machine's dimensionality
/// (e.g. ABCDT / TABCD / ACBDT on a 4-D machine).
std::vector<std::unique_ptr<TaskMapper>> paperRoster(
    const ExperimentScale& scale);

/// Map the workload with every mapper of the roster and simulate one
/// iteration's phases under each mapping.
std::vector<MapperRun> runStudy(const Workload& workload,
                                const ExperimentScale& scale);

/// Geometric mean of positive values. Degenerate input (empty, or any
/// non-positive value) returns 0 with a warning instead of NaN/UB — the
/// tables print a harmless 0% cell rather than aborting a long run.
double geomean(const std::vector<double>& values);

/// Print a "relative to first column" percentage table:
/// rows = mappers, columns = benchmarks (+ geomean).
void printRelativeTable(const std::string& title,
                        const std::vector<std::string>& benchmarkNames,
                        const std::vector<std::vector<MapperRun>>& runs,
                        double MapperRun::*metric);

}  // namespace rahtm::bench
