/// \file bench_opt_time.cpp
/// §V-B of the paper: offline optimization (mapping) time. The paper
/// reports 33 minutes (BT) to 35 hours (CG) on a CPLEX workstation; at our
/// scale the absolute numbers shrink but the structure holds — time is
/// dominated by the per-level subproblem solves and grows with the
/// benchmark's communication complexity. Reported per phase, with the
/// solver portfolio breakdown.

#include <iomanip>
#include <iostream>

#include "bench/experiment.hpp"

int main(int argc, char** argv) {
  const auto telemetry = rahtm::bench::telemetryFromCli(argc, argv);
  using namespace rahtm;
  using namespace rahtm::bench;
  const ExperimentScale scale = ExperimentScale::fromEnv();

  std::cout << "Optimization time (offline mapping cost, seconds)\n\n";
  std::cout << std::left << std::setw(6) << "bench" << std::right
            << std::setw(10) << "cluster" << std::setw(10) << "pin"
            << std::setw(10) << "merge" << std::setw(10) << "total"
            << std::setw(9) << "subpbs" << "  methods\n";
  for (const char* name : {"BT", "SP", "CG"}) {
    const Workload w = makeNasByName(name, scale.ranks(), scale.params);
    RahtmMapper mapper;
    mapper.mapWorkload(w, scale.machine, scale.concentration);
    const RahtmStats& s = mapper.stats();
    std::cout << std::left << std::setw(6) << name << std::right
              << std::setw(10) << std::fixed << std::setprecision(3)
              << s.clusterSeconds << std::setw(10) << s.pinSeconds
              << std::setw(10) << s.mergeSeconds << std::setw(10)
              << s.totalSeconds << std::setw(9) << s.subproblemsSolved << "  ";
    bool first = true;
    for (const auto& [method, count] : s.solverMethodCounts) {
      std::cout << (first ? "" : ", ") << count << " " << method;
      first = false;
    }
    std::cout << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "\nThe cost is incurred once per (application, scale) pair "
               "and amortized\nover repeated runs — the paper's compiler-"
               "optimization analogy.\n";
  return 0;
}
