/// \file bench_opt_time.cpp
/// §V-B of the paper: offline optimization (mapping) time. The paper
/// reports 33 minutes (BT) to 35 hours (CG) on a CPLEX workstation; at our
/// scale the absolute numbers shrink but the structure holds — time is
/// dominated by the per-level subproblem solves and grows with the
/// benchmark's communication complexity. Reported per phase, with the
/// solver portfolio breakdown.
///
/// --threads N (or RAHTM_THREADS) additionally runs every benchmark with
/// the parallel execution layer and reports the pin-phase and total
/// speedups over the serial run; the two runs must produce identical
/// mappings (checked), demonstrating the determinism contract.

#include <iomanip>
#include <iostream>

#include "bench/experiment.hpp"
#include "common/cli.hpp"
#include "exec/thread_pool.hpp"

int main(int argc, char** argv) {
  const auto telemetry = rahtm::bench::telemetryFromCli(argc, argv);
  using namespace rahtm;
  using namespace rahtm::bench;
  const ExperimentScale scale = ExperimentScale::fromEnv();
  const CliArgs args(argc, argv);
  const int threads = exec::ThreadPool::resolveThreads(
      static_cast<int>(args.getInt("threads", exec::threadsFromEnv())));

  std::cout << "Optimization time (offline mapping cost, seconds)\n\n";
  std::cout << std::left << std::setw(6) << "bench" << std::right
            << std::setw(10) << "cluster" << std::setw(10) << "pin"
            << std::setw(10) << "merge" << std::setw(10) << "total"
            << std::setw(9) << "subpbs";
  if (threads > 1) {
    std::cout << std::setw(10) << "pin(xN)" << std::setw(10) << "tot(xN)";
  }
  std::cout << "  methods\n";
  for (const char* name : {"BT", "SP", "CG"}) {
    const Workload w = makeNasByName(name, scale.ranks(), scale.params);
    RahtmMapper mapper;
    const Mapping serial = mapper.mapWorkload(w, scale.machine,
                                              scale.concentration);
    const RahtmStats s = mapper.stats();
    std::cout << std::left << std::setw(6) << name << std::right
              << std::setw(10) << std::fixed << std::setprecision(3)
              << s.clusterSeconds << std::setw(10) << s.pinSeconds
              << std::setw(10) << s.mergeSeconds << std::setw(10)
              << s.totalSeconds << std::setw(9) << s.subproblemsSolved;
    if (threads > 1) {
      RahtmMapper par;
      par.config().numThreads = threads;
      const Mapping threaded =
          par.mapWorkload(w, scale.machine, scale.concentration);
      const RahtmStats& p = par.stats();
      std::cout << std::setw(9) << std::setprecision(2)
                << (p.pinSeconds > 0 ? s.pinSeconds / p.pinSeconds : 0.0)
                << "x" << std::setw(9)
                << (p.totalSeconds > 0 ? s.totalSeconds / p.totalSeconds : 0.0)
                << "x" << std::setprecision(3);
      if (threaded.nodeVector() != serial.nodeVector()) {
        std::cout << "  DETERMINISM VIOLATION";
      }
    }
    std::cout << "  ";
    bool first = true;
    for (const auto& [method, count] : s.solverMethodCounts) {
      std::cout << (first ? "" : ", ") << count << " " << method;
      first = false;
    }
    std::cout << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  if (threads > 1) {
    std::cout << "\nThreaded columns: serial time / " << threads
              << "-thread time (higher is better).\n";
  }
  std::cout << "\nThe cost is incurred once per (application, scale) pair "
               "and amortized\nover repeated runs — the paper's compiler-"
               "optimization analogy.\n";
  return 0;
}
