file(REMOVE_RECURSE
  "CMakeFiles/test_greedy_mapper.dir/test_greedy_mapper.cpp.o"
  "CMakeFiles/test_greedy_mapper.dir/test_greedy_mapper.cpp.o.d"
  "test_greedy_mapper"
  "test_greedy_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_greedy_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
