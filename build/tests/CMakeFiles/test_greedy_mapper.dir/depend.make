# Empty dependencies file for test_greedy_mapper.
# This may be replaced when dependencies are built.
