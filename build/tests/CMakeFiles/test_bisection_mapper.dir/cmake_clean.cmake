file(REMOVE_RECURSE
  "CMakeFiles/test_bisection_mapper.dir/test_bisection_mapper.cpp.o"
  "CMakeFiles/test_bisection_mapper.dir/test_bisection_mapper.cpp.o.d"
  "test_bisection_mapper"
  "test_bisection_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bisection_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
