# Empty dependencies file for test_bisection_mapper.
# This may be replaced when dependencies are built.
