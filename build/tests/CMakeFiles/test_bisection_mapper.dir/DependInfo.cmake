
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bisection_mapper.cpp" "tests/CMakeFiles/test_bisection_mapper.dir/test_bisection_mapper.cpp.o" "gcc" "tests/CMakeFiles/test_bisection_mapper.dir/test_bisection_mapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rahtm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/rahtm_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rahtm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/rahtm_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/rahtm_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/rahtm_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/rahtm_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rahtm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rahtm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rahtm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
