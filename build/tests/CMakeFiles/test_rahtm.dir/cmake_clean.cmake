file(REMOVE_RECURSE
  "CMakeFiles/test_rahtm.dir/test_rahtm.cpp.o"
  "CMakeFiles/test_rahtm.dir/test_rahtm.cpp.o.d"
  "test_rahtm"
  "test_rahtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rahtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
