# Empty dependencies file for test_rahtm.
# This may be replaced when dependencies are built.
