# Empty dependencies file for test_simnet_pipeline.
# This may be replaced when dependencies are built.
