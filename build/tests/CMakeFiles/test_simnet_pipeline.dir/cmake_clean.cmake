file(REMOVE_RECURSE
  "CMakeFiles/test_simnet_pipeline.dir/test_simnet_pipeline.cpp.o"
  "CMakeFiles/test_simnet_pipeline.dir/test_simnet_pipeline.cpp.o.d"
  "test_simnet_pipeline"
  "test_simnet_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simnet_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
