file(REMOVE_RECURSE
  "CMakeFiles/test_milp_mapper.dir/test_milp_mapper.cpp.o"
  "CMakeFiles/test_milp_mapper.dir/test_milp_mapper.cpp.o.d"
  "test_milp_mapper"
  "test_milp_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_milp_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
