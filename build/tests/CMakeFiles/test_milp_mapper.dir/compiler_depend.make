# Empty compiler generated dependencies file for test_milp_mapper.
# This may be replaced when dependencies are built.
