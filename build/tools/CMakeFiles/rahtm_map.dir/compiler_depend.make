# Empty compiler generated dependencies file for rahtm_map.
# This may be replaced when dependencies are built.
