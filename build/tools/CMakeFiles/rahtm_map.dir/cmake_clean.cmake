file(REMOVE_RECURSE
  "CMakeFiles/rahtm_map.dir/rahtm_map.cpp.o"
  "CMakeFiles/rahtm_map.dir/rahtm_map.cpp.o.d"
  "rahtm_map"
  "rahtm_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rahtm_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
