file(REMOVE_RECURSE
  "CMakeFiles/nas_mapping_study.dir/nas_mapping_study.cpp.o"
  "CMakeFiles/nas_mapping_study.dir/nas_mapping_study.cpp.o.d"
  "nas_mapping_study"
  "nas_mapping_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_mapping_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
