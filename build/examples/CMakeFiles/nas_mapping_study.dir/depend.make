# Empty dependencies file for nas_mapping_study.
# This may be replaced when dependencies are built.
