# Empty compiler generated dependencies file for walkthrough_16node.
# This may be replaced when dependencies are built.
