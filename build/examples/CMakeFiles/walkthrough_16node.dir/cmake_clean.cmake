file(REMOVE_RECURSE
  "CMakeFiles/walkthrough_16node.dir/walkthrough_16node.cpp.o"
  "CMakeFiles/walkthrough_16node.dir/walkthrough_16node.cpp.o.d"
  "walkthrough_16node"
  "walkthrough_16node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walkthrough_16node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
