file(REMOVE_RECURSE
  "CMakeFiles/collective_mapping.dir/collective_mapping.cpp.o"
  "CMakeFiles/collective_mapping.dir/collective_mapping.cpp.o.d"
  "collective_mapping"
  "collective_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collective_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
