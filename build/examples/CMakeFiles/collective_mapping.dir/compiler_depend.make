# Empty compiler generated dependencies file for collective_mapping.
# This may be replaced when dependencies are built.
