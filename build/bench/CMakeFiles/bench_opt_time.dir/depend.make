# Empty dependencies file for bench_opt_time.
# This may be replaced when dependencies are built.
