file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_leafsolver.dir/bench_ablation_leafsolver.cpp.o"
  "CMakeFiles/bench_ablation_leafsolver.dir/bench_ablation_leafsolver.cpp.o.d"
  "bench_ablation_leafsolver"
  "bench_ablation_leafsolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_leafsolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
