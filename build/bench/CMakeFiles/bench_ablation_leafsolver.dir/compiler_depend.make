# Empty compiler generated dependencies file for bench_ablation_leafsolver.
# This may be replaced when dependencies are built.
