file(REMOVE_RECURSE
  "CMakeFiles/bench_fattree.dir/bench_fattree.cpp.o"
  "CMakeFiles/bench_fattree.dir/bench_fattree.cpp.o.d"
  "bench_fattree"
  "bench_fattree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fattree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
