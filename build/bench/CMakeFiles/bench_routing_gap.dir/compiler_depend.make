# Empty compiler generated dependencies file for bench_routing_gap.
# This may be replaced when dependencies are built.
