file(REMOVE_RECURSE
  "CMakeFiles/bench_routing_gap.dir/bench_routing_gap.cpp.o"
  "CMakeFiles/bench_routing_gap.dir/bench_routing_gap.cpp.o.d"
  "bench_routing_gap"
  "bench_routing_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
