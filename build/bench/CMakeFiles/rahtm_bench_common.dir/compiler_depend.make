# Empty compiler generated dependencies file for rahtm_bench_common.
# This may be replaced when dependencies are built.
