file(REMOVE_RECURSE
  "CMakeFiles/rahtm_bench_common.dir/experiment.cpp.o"
  "CMakeFiles/rahtm_bench_common.dir/experiment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rahtm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
