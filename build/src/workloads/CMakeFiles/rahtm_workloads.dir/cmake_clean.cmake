file(REMOVE_RECURSE
  "CMakeFiles/rahtm_workloads.dir/collectives.cpp.o"
  "CMakeFiles/rahtm_workloads.dir/collectives.cpp.o.d"
  "CMakeFiles/rahtm_workloads.dir/workload.cpp.o"
  "CMakeFiles/rahtm_workloads.dir/workload.cpp.o.d"
  "librahtm_workloads.a"
  "librahtm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rahtm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
