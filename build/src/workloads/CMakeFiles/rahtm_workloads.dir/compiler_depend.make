# Empty compiler generated dependencies file for rahtm_workloads.
# This may be replaced when dependencies are built.
