file(REMOVE_RECURSE
  "librahtm_workloads.a"
)
