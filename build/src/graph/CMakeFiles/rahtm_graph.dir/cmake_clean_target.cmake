file(REMOVE_RECURSE
  "librahtm_graph.a"
)
