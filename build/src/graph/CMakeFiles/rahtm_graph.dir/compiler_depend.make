# Empty compiler generated dependencies file for rahtm_graph.
# This may be replaced when dependencies are built.
