
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/comm_graph.cpp" "src/graph/CMakeFiles/rahtm_graph.dir/comm_graph.cpp.o" "gcc" "src/graph/CMakeFiles/rahtm_graph.dir/comm_graph.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/graph/CMakeFiles/rahtm_graph.dir/stats.cpp.o" "gcc" "src/graph/CMakeFiles/rahtm_graph.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rahtm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rahtm_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
