file(REMOVE_RECURSE
  "CMakeFiles/rahtm_graph.dir/comm_graph.cpp.o"
  "CMakeFiles/rahtm_graph.dir/comm_graph.cpp.o.d"
  "CMakeFiles/rahtm_graph.dir/stats.cpp.o"
  "CMakeFiles/rahtm_graph.dir/stats.cpp.o.d"
  "librahtm_graph.a"
  "librahtm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rahtm_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
