# Empty dependencies file for rahtm_profile.
# This may be replaced when dependencies are built.
