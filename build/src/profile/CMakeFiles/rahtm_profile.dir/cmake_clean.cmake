file(REMOVE_RECURSE
  "CMakeFiles/rahtm_profile.dir/profile.cpp.o"
  "CMakeFiles/rahtm_profile.dir/profile.cpp.o.d"
  "librahtm_profile.a"
  "librahtm_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rahtm_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
