file(REMOVE_RECURSE
  "librahtm_profile.a"
)
