
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/channel_load.cpp" "src/routing/CMakeFiles/rahtm_routing.dir/channel_load.cpp.o" "gcc" "src/routing/CMakeFiles/rahtm_routing.dir/channel_load.cpp.o.d"
  "/root/repo/src/routing/evaluator.cpp" "src/routing/CMakeFiles/rahtm_routing.dir/evaluator.cpp.o" "gcc" "src/routing/CMakeFiles/rahtm_routing.dir/evaluator.cpp.o.d"
  "/root/repo/src/routing/lp_routing.cpp" "src/routing/CMakeFiles/rahtm_routing.dir/lp_routing.cpp.o" "gcc" "src/routing/CMakeFiles/rahtm_routing.dir/lp_routing.cpp.o.d"
  "/root/repo/src/routing/oblivious.cpp" "src/routing/CMakeFiles/rahtm_routing.dir/oblivious.cpp.o" "gcc" "src/routing/CMakeFiles/rahtm_routing.dir/oblivious.cpp.o.d"
  "/root/repo/src/routing/report.cpp" "src/routing/CMakeFiles/rahtm_routing.dir/report.cpp.o" "gcc" "src/routing/CMakeFiles/rahtm_routing.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rahtm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rahtm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rahtm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/rahtm_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
