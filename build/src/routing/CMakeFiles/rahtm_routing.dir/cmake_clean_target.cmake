file(REMOVE_RECURSE
  "librahtm_routing.a"
)
