# Empty dependencies file for rahtm_routing.
# This may be replaced when dependencies are built.
