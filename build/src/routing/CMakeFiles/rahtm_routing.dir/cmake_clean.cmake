file(REMOVE_RECURSE
  "CMakeFiles/rahtm_routing.dir/channel_load.cpp.o"
  "CMakeFiles/rahtm_routing.dir/channel_load.cpp.o.d"
  "CMakeFiles/rahtm_routing.dir/evaluator.cpp.o"
  "CMakeFiles/rahtm_routing.dir/evaluator.cpp.o.d"
  "CMakeFiles/rahtm_routing.dir/lp_routing.cpp.o"
  "CMakeFiles/rahtm_routing.dir/lp_routing.cpp.o.d"
  "CMakeFiles/rahtm_routing.dir/oblivious.cpp.o"
  "CMakeFiles/rahtm_routing.dir/oblivious.cpp.o.d"
  "CMakeFiles/rahtm_routing.dir/report.cpp.o"
  "CMakeFiles/rahtm_routing.dir/report.cpp.o.d"
  "librahtm_routing.a"
  "librahtm_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rahtm_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
