# Empty dependencies file for rahtm_lp.
# This may be replaced when dependencies are built.
