file(REMOVE_RECURSE
  "librahtm_lp.a"
)
