file(REMOVE_RECURSE
  "CMakeFiles/rahtm_lp.dir/milp.cpp.o"
  "CMakeFiles/rahtm_lp.dir/milp.cpp.o.d"
  "CMakeFiles/rahtm_lp.dir/model.cpp.o"
  "CMakeFiles/rahtm_lp.dir/model.cpp.o.d"
  "CMakeFiles/rahtm_lp.dir/simplex.cpp.o"
  "CMakeFiles/rahtm_lp.dir/simplex.cpp.o.d"
  "librahtm_lp.a"
  "librahtm_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rahtm_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
