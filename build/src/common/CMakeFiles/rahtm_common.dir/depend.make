# Empty dependencies file for rahtm_common.
# This may be replaced when dependencies are built.
