file(REMOVE_RECURSE
  "CMakeFiles/rahtm_common.dir/cli.cpp.o"
  "CMakeFiles/rahtm_common.dir/cli.cpp.o.d"
  "CMakeFiles/rahtm_common.dir/log.cpp.o"
  "CMakeFiles/rahtm_common.dir/log.cpp.o.d"
  "CMakeFiles/rahtm_common.dir/math.cpp.o"
  "CMakeFiles/rahtm_common.dir/math.cpp.o.d"
  "CMakeFiles/rahtm_common.dir/rng.cpp.o"
  "CMakeFiles/rahtm_common.dir/rng.cpp.o.d"
  "CMakeFiles/rahtm_common.dir/strings.cpp.o"
  "CMakeFiles/rahtm_common.dir/strings.cpp.o.d"
  "librahtm_common.a"
  "librahtm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rahtm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
