file(REMOVE_RECURSE
  "librahtm_common.a"
)
