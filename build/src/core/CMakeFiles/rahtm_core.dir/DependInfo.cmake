
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bisection_mapper.cpp" "src/core/CMakeFiles/rahtm_core.dir/bisection_mapper.cpp.o" "gcc" "src/core/CMakeFiles/rahtm_core.dir/bisection_mapper.cpp.o.d"
  "/root/repo/src/core/clustering.cpp" "src/core/CMakeFiles/rahtm_core.dir/clustering.cpp.o" "gcc" "src/core/CMakeFiles/rahtm_core.dir/clustering.cpp.o.d"
  "/root/repo/src/core/fattree_mapper.cpp" "src/core/CMakeFiles/rahtm_core.dir/fattree_mapper.cpp.o" "gcc" "src/core/CMakeFiles/rahtm_core.dir/fattree_mapper.cpp.o.d"
  "/root/repo/src/core/greedy_mapper.cpp" "src/core/CMakeFiles/rahtm_core.dir/greedy_mapper.cpp.o" "gcc" "src/core/CMakeFiles/rahtm_core.dir/greedy_mapper.cpp.o.d"
  "/root/repo/src/core/hierarchy.cpp" "src/core/CMakeFiles/rahtm_core.dir/hierarchy.cpp.o" "gcc" "src/core/CMakeFiles/rahtm_core.dir/hierarchy.cpp.o.d"
  "/root/repo/src/core/merge.cpp" "src/core/CMakeFiles/rahtm_core.dir/merge.cpp.o" "gcc" "src/core/CMakeFiles/rahtm_core.dir/merge.cpp.o.d"
  "/root/repo/src/core/milp_mapper.cpp" "src/core/CMakeFiles/rahtm_core.dir/milp_mapper.cpp.o" "gcc" "src/core/CMakeFiles/rahtm_core.dir/milp_mapper.cpp.o.d"
  "/root/repo/src/core/rahtm.cpp" "src/core/CMakeFiles/rahtm_core.dir/rahtm.cpp.o" "gcc" "src/core/CMakeFiles/rahtm_core.dir/rahtm.cpp.o.d"
  "/root/repo/src/core/refine.cpp" "src/core/CMakeFiles/rahtm_core.dir/refine.cpp.o" "gcc" "src/core/CMakeFiles/rahtm_core.dir/refine.cpp.o.d"
  "/root/repo/src/core/subproblem.cpp" "src/core/CMakeFiles/rahtm_core.dir/subproblem.cpp.o" "gcc" "src/core/CMakeFiles/rahtm_core.dir/subproblem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rahtm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rahtm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rahtm_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/rahtm_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/rahtm_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/rahtm_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rahtm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/rahtm_simnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
