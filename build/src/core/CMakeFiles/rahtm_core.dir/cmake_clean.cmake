file(REMOVE_RECURSE
  "CMakeFiles/rahtm_core.dir/bisection_mapper.cpp.o"
  "CMakeFiles/rahtm_core.dir/bisection_mapper.cpp.o.d"
  "CMakeFiles/rahtm_core.dir/clustering.cpp.o"
  "CMakeFiles/rahtm_core.dir/clustering.cpp.o.d"
  "CMakeFiles/rahtm_core.dir/fattree_mapper.cpp.o"
  "CMakeFiles/rahtm_core.dir/fattree_mapper.cpp.o.d"
  "CMakeFiles/rahtm_core.dir/greedy_mapper.cpp.o"
  "CMakeFiles/rahtm_core.dir/greedy_mapper.cpp.o.d"
  "CMakeFiles/rahtm_core.dir/hierarchy.cpp.o"
  "CMakeFiles/rahtm_core.dir/hierarchy.cpp.o.d"
  "CMakeFiles/rahtm_core.dir/merge.cpp.o"
  "CMakeFiles/rahtm_core.dir/merge.cpp.o.d"
  "CMakeFiles/rahtm_core.dir/milp_mapper.cpp.o"
  "CMakeFiles/rahtm_core.dir/milp_mapper.cpp.o.d"
  "CMakeFiles/rahtm_core.dir/rahtm.cpp.o"
  "CMakeFiles/rahtm_core.dir/rahtm.cpp.o.d"
  "CMakeFiles/rahtm_core.dir/refine.cpp.o"
  "CMakeFiles/rahtm_core.dir/refine.cpp.o.d"
  "CMakeFiles/rahtm_core.dir/subproblem.cpp.o"
  "CMakeFiles/rahtm_core.dir/subproblem.cpp.o.d"
  "librahtm_core.a"
  "librahtm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rahtm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
