# Empty dependencies file for rahtm_core.
# This may be replaced when dependencies are built.
