file(REMOVE_RECURSE
  "librahtm_core.a"
)
