file(REMOVE_RECURSE
  "librahtm_topology.a"
)
