
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/fattree.cpp" "src/topology/CMakeFiles/rahtm_topology.dir/fattree.cpp.o" "gcc" "src/topology/CMakeFiles/rahtm_topology.dir/fattree.cpp.o.d"
  "/root/repo/src/topology/orientation.cpp" "src/topology/CMakeFiles/rahtm_topology.dir/orientation.cpp.o" "gcc" "src/topology/CMakeFiles/rahtm_topology.dir/orientation.cpp.o.d"
  "/root/repo/src/topology/presets.cpp" "src/topology/CMakeFiles/rahtm_topology.dir/presets.cpp.o" "gcc" "src/topology/CMakeFiles/rahtm_topology.dir/presets.cpp.o.d"
  "/root/repo/src/topology/subcube.cpp" "src/topology/CMakeFiles/rahtm_topology.dir/subcube.cpp.o" "gcc" "src/topology/CMakeFiles/rahtm_topology.dir/subcube.cpp.o.d"
  "/root/repo/src/topology/torus.cpp" "src/topology/CMakeFiles/rahtm_topology.dir/torus.cpp.o" "gcc" "src/topology/CMakeFiles/rahtm_topology.dir/torus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rahtm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
