file(REMOVE_RECURSE
  "CMakeFiles/rahtm_topology.dir/fattree.cpp.o"
  "CMakeFiles/rahtm_topology.dir/fattree.cpp.o.d"
  "CMakeFiles/rahtm_topology.dir/orientation.cpp.o"
  "CMakeFiles/rahtm_topology.dir/orientation.cpp.o.d"
  "CMakeFiles/rahtm_topology.dir/presets.cpp.o"
  "CMakeFiles/rahtm_topology.dir/presets.cpp.o.d"
  "CMakeFiles/rahtm_topology.dir/subcube.cpp.o"
  "CMakeFiles/rahtm_topology.dir/subcube.cpp.o.d"
  "CMakeFiles/rahtm_topology.dir/torus.cpp.o"
  "CMakeFiles/rahtm_topology.dir/torus.cpp.o.d"
  "librahtm_topology.a"
  "librahtm_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rahtm_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
