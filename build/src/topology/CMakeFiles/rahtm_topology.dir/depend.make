# Empty dependencies file for rahtm_topology.
# This may be replaced when dependencies are built.
