file(REMOVE_RECURSE
  "librahtm_simnet.a"
)
