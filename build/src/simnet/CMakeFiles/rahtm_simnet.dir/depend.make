# Empty dependencies file for rahtm_simnet.
# This may be replaced when dependencies are built.
