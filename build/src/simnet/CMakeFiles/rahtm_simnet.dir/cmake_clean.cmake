file(REMOVE_RECURSE
  "CMakeFiles/rahtm_simnet.dir/simulator.cpp.o"
  "CMakeFiles/rahtm_simnet.dir/simulator.cpp.o.d"
  "librahtm_simnet.a"
  "librahtm_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rahtm_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
