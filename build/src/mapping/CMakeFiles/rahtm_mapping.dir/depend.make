# Empty dependencies file for rahtm_mapping.
# This may be replaced when dependencies are built.
