file(REMOVE_RECURSE
  "CMakeFiles/rahtm_mapping.dir/hilbert.cpp.o"
  "CMakeFiles/rahtm_mapping.dir/hilbert.cpp.o.d"
  "CMakeFiles/rahtm_mapping.dir/mapfile.cpp.o"
  "CMakeFiles/rahtm_mapping.dir/mapfile.cpp.o.d"
  "CMakeFiles/rahtm_mapping.dir/mapping.cpp.o"
  "CMakeFiles/rahtm_mapping.dir/mapping.cpp.o.d"
  "CMakeFiles/rahtm_mapping.dir/permutation.cpp.o"
  "CMakeFiles/rahtm_mapping.dir/permutation.cpp.o.d"
  "CMakeFiles/rahtm_mapping.dir/rubik.cpp.o"
  "CMakeFiles/rahtm_mapping.dir/rubik.cpp.o.d"
  "librahtm_mapping.a"
  "librahtm_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rahtm_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
