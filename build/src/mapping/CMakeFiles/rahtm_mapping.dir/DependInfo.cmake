
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/hilbert.cpp" "src/mapping/CMakeFiles/rahtm_mapping.dir/hilbert.cpp.o" "gcc" "src/mapping/CMakeFiles/rahtm_mapping.dir/hilbert.cpp.o.d"
  "/root/repo/src/mapping/mapfile.cpp" "src/mapping/CMakeFiles/rahtm_mapping.dir/mapfile.cpp.o" "gcc" "src/mapping/CMakeFiles/rahtm_mapping.dir/mapfile.cpp.o.d"
  "/root/repo/src/mapping/mapping.cpp" "src/mapping/CMakeFiles/rahtm_mapping.dir/mapping.cpp.o" "gcc" "src/mapping/CMakeFiles/rahtm_mapping.dir/mapping.cpp.o.d"
  "/root/repo/src/mapping/permutation.cpp" "src/mapping/CMakeFiles/rahtm_mapping.dir/permutation.cpp.o" "gcc" "src/mapping/CMakeFiles/rahtm_mapping.dir/permutation.cpp.o.d"
  "/root/repo/src/mapping/rubik.cpp" "src/mapping/CMakeFiles/rahtm_mapping.dir/rubik.cpp.o" "gcc" "src/mapping/CMakeFiles/rahtm_mapping.dir/rubik.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rahtm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rahtm_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rahtm_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
