file(REMOVE_RECURSE
  "librahtm_mapping.a"
)
