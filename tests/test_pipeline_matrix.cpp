// Parameterized integration sweep: the full RAHTM pipeline must produce
// valid mappings that never lose to the ABCDET baseline (on the model
// metric) across a matrix of machines, concentrations and benchmarks.

#include <gtest/gtest.h>

#include <tuple>

#include "core/rahtm.hpp"
#include "mapping/permutation.hpp"
#include "routing/oblivious.hpp"
#include "topology/presets.hpp"
#include "workloads/workload.hpp"

namespace rahtm {
namespace {

struct MatrixCase {
  const char* benchmark;
  Shape machineShape;
  int concentration;
};

void PrintTo(const MatrixCase& c, std::ostream* os) {
  *os << c.benchmark << "@";
  for (std::size_t d = 0; d < c.machineShape.size(); ++d) {
    *os << (d ? "x" : "") << c.machineShape[d];
  }
  *os << "c" << c.concentration;
}

class PipelineMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(PipelineMatrix, ValidAndNeverWorseThanDefault) {
  const MatrixCase& c = GetParam();
  const Torus machine = Torus::torus(c.machineShape);
  const auto ranks =
      static_cast<RankId>(machine.numNodes() * c.concentration);
  const Workload w = makeNasByName(c.benchmark, ranks);
  const CommGraph g = w.commGraph();

  RahtmConfig cfg;
  cfg.subproblem.milpMaxVerts = 0;  // keep the sweep fast
  cfg.subproblem.annealRestarts = 2;
  cfg.subproblem.annealIters = 3000;
  cfg.merge.beamWidth = 8;
  RahtmMapper mapper(cfg);
  const Mapping m = mapper.mapWorkload(w, machine, c.concentration);
  ASSERT_TRUE(m.validate(machine, c.concentration).empty())
      << m.validate(machine, c.concentration);

  DefaultMapper def;
  const Mapping base = def.map(g, machine, c.concentration);
  const double mclRahtm = placementMcl(machine, g, m.nodeVector());
  const double mclBase = placementMcl(machine, g, base.nodeVector());
  // The canonical-seed portfolio makes this a hard guarantee up to the
  // refinement's deterministic tie handling.
  EXPECT_LE(mclRahtm, mclBase * 1.001 + 1e-9);

  // Stats sanity on every configuration.
  const RahtmStats& s = mapper.stats();
  EXPECT_GT(s.subproblemsSolved, 0);
  EXPECT_DOUBLE_EQ(s.intraNodeVolume + s.interNodeVolume, g.totalVolume());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PipelineMatrix,
    ::testing::Values(
        // BT/SP need square rank counts; CG needs powers of two.
        MatrixCase{"BT", Shape{2, 2, 2, 2}, 4},   //  64 = 8^2
        MatrixCase{"BT", Shape{4, 4}, 4},         //  64
        MatrixCase{"BT", Shape{2, 2, 2, 2, 2}, 2},//  64
        MatrixCase{"SP", Shape{4, 2, 2}, 4},      //  64
        MatrixCase{"SP", Shape{4, 4}, 16},        // 256 = 16^2
        MatrixCase{"CG", Shape{4, 4}, 2},         //  32
        MatrixCase{"CG", Shape{2, 2, 2, 2}, 8},   // 128
        MatrixCase{"CG", Shape{4, 4, 2}, 2},      //  64
        MatrixCase{"CG", Shape{4, 4, 4, 2}, 1},   // 128, concentration 1
        MatrixCase{"CG", Shape{8, 4}, 4}));       // 128, mixed arity

}  // namespace
}  // namespace rahtm
