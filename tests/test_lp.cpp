// Tests for the LP/MILP solver stack: hand-checked LPs, randomized
// cross-validation against brute-force grid search, bounded variables,
// infeasible/unbounded detection, and branch-and-bound correctness against
// exhaustive enumeration of integer points.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "lp/milp.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace rahtm::lp {
namespace {

TEST(Model, CoalescesDuplicateTerms) {
  Model m;
  const VarId x = m.addContinuous("x", 0, 10);
  m.addConstraint("c", {{x, 1}, {x, 2}}, Sense::LessEq, 6);
  ASSERT_EQ(m.constraint(0).terms.size(), 1u);
  EXPECT_DOUBLE_EQ(m.constraint(0).terms[0].coeff, 3);
}

TEST(Model, FeasibilityCheck) {
  Model m;
  const VarId x = m.addContinuous("x", 0, 2);
  const VarId y = m.addBinary("y");
  m.addConstraint("c", {{x, 1}, {y, 1}}, Sense::LessEq, 2);
  EXPECT_TRUE(m.isFeasible({1.0, 1.0}));
  EXPECT_FALSE(m.isFeasible({2.0, 1.0}));   // violates c
  EXPECT_FALSE(m.isFeasible({1.0, 0.5}));   // fractional binary
  EXPECT_FALSE(m.isFeasible({-0.5, 0.0}));  // bound
}

TEST(Simplex, SolvesTextbookLp) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 (Hillier-Lieberman):
  // optimum (2, 6) with value 36.
  Model m;
  const VarId x = m.addContinuous("x", 0, infinity(), 3);
  const VarId y = m.addContinuous("y", 0, infinity(), 5);
  m.setObjective(Objective::Maximize);
  m.addConstraint("c1", {{x, 1}}, Sense::LessEq, 4);
  m.addConstraint("c2", {{y, 2}}, Sense::LessEq, 12);
  m.addConstraint("c3", {{x, 3}, {y, 2}}, Sense::LessEq, 18);
  const LpSolution s = solveLp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-7);
  EXPECT_NEAR(s.x[0], 2.0, 1e-7);
  EXPECT_NEAR(s.x[1], 6.0, 1e-7);
}

TEST(Simplex, HandlesEqualityAndGreaterEq) {
  // min x + y st x + y >= 3, x - y == 1, 0 <= x,y <= 10 -> (2,1), value 3.
  Model m;
  const VarId x = m.addContinuous("x", 0, 10, 1);
  const VarId y = m.addContinuous("y", 0, 10, 1);
  m.addConstraint("ge", {{x, 1}, {y, 1}}, Sense::GreaterEq, 3);
  m.addConstraint("eq", {{x, 1}, {y, -1}}, Sense::Equal, 1);
  const LpSolution s = solveLp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-7);
  EXPECT_NEAR(s.x[0], 2.0, 1e-7);
  EXPECT_NEAR(s.x[1], 1.0, 1e-7);
}

TEST(Simplex, RespectsVariableUpperBounds) {
  // max x + y st x + y <= 10, x <= 3 (bound), y <= 4 (bound) -> 7.
  Model m;
  const VarId x = m.addContinuous("x", 0, 3, 1);
  const VarId y = m.addContinuous("y", 0, 4, 1);
  m.setObjective(Objective::Maximize);
  m.addConstraint("c", {{x, 1}, {y, 1}}, Sense::LessEq, 10);
  const LpSolution s = solveLp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 7.0, 1e-7);
}

TEST(Simplex, NonzeroLowerBounds) {
  // min x + 2y st x + y >= 5, x >= 1, y >= 2 -> x=3, y=2, value 7.
  Model m;
  const VarId x = m.addContinuous("x", 1, infinity(), 1);
  const VarId y = m.addContinuous("y", 2, infinity(), 2);
  m.addConstraint("c", {{x, 1}, {y, 1}}, Sense::GreaterEq, 5);
  const LpSolution s = solveLp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 7.0, 1e-7);
  EXPECT_NEAR(s.x[0], 3.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const VarId x = m.addContinuous("x", 0, 1, 1);
  m.addConstraint("c", {{x, 1}}, Sense::GreaterEq, 2);
  EXPECT_EQ(solveLp(m).status, SolveStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const VarId x = m.addContinuous("x", 0, infinity(), 1);
  const VarId y = m.addContinuous("y", 0, infinity(), 0);
  m.setObjective(Objective::Maximize);
  m.addConstraint("c", {{x, 1}, {y, -1}}, Sense::LessEq, 1);
  EXPECT_EQ(solveLp(m).status, SolveStatus::Unbounded);
}

TEST(Simplex, EmptyConstraintSetUsesBounds) {
  Model m;
  m.addContinuous("x", -0.0, 5, -2);  // minimize -2x -> x = 5
  const LpSolution s = solveLp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -10.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: multiple redundant constraints through one vertex.
  Model m;
  const VarId x = m.addContinuous("x", 0, infinity(), -1);
  const VarId y = m.addContinuous("y", 0, infinity(), -1);
  m.addConstraint("c1", {{x, 1}, {y, 1}}, Sense::LessEq, 1);
  m.addConstraint("c2", {{x, 2}, {y, 2}}, Sense::LessEq, 2);
  m.addConstraint("c3", {{x, 1}}, Sense::LessEq, 1);
  m.addConstraint("c4", {{y, 1}}, Sense::LessEq, 1);
  const LpSolution s = solveLp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-7);
}

/// Randomized cross-check: on box-bounded 2-variable LPs the optimum can be
/// found by dense grid search; the simplex must match to grid resolution.
class SimplexRandomized : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomized, MatchesGridSearch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  Model m;
  const VarId x = m.addContinuous("x", 0, 4, rng.nextInt(-5, 5));
  const VarId y = m.addContinuous("y", 0, 4, rng.nextInt(-5, 5));
  const int rows = static_cast<int>(rng.nextInt(1, 4));
  std::vector<std::array<double, 3>> cons;
  for (int i = 0; i < rows; ++i) {
    const double a = static_cast<double>(rng.nextInt(-3, 3));
    const double b = static_cast<double>(rng.nextInt(-3, 3));
    // rhs chosen so the origin is feasible: a*0 + b*0 <= rhs with rhs >= 0.
    const double rhs = static_cast<double>(rng.nextInt(0, 12));
    m.addConstraint("c" + std::to_string(i), {{x, a}, {y, b}}, Sense::LessEq,
                    rhs);
    cons.push_back({a, b, rhs});
  }
  const LpSolution s = solveLp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);

  // Dense grid search over the box.
  double best = 1e300;
  const int steps = 400;
  for (int i = 0; i <= steps; ++i) {
    for (int j = 0; j <= steps; ++j) {
      const double xv = 4.0 * i / steps;
      const double yv = 4.0 * j / steps;
      bool ok = true;
      for (const auto& c : cons) ok &= (c[0] * xv + c[1] * yv <= c[2] + 1e-9);
      if (!ok) continue;
      const double obj =
          m.variable(x).objCoeff * xv + m.variable(y).objCoeff * yv;
      best = std::min(best, obj);
    }
  }
  EXPECT_LE(s.objective, best + 1e-6);       // simplex at least as good
  EXPECT_GE(s.objective, best - 0.15);       // and grid nearly matches it
  EXPECT_TRUE(m.isFeasible(s.x, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomized, ::testing::Range(0, 30));

// ---- MILP -------------------------------------------------------------------

TEST(Milp, SolvesPureBinaryKnapsack) {
  // max 5a + 4b + 3c st 2a + 3b + c <= 4 -> a=1, c=1: 8... check: a+c uses
  // 3 <= 4; adding b exceeds. Optimal 5+3=8? a,b: 2+3=5 > 4. Yes: 8.
  Model m;
  const VarId a = m.addBinary("a", 5);
  const VarId b = m.addBinary("b", 4);
  const VarId c = m.addBinary("c", 3);
  m.setObjective(Objective::Maximize);
  m.addConstraint("w", {{a, 2}, {b, 3}, {c, 1}}, Sense::LessEq, 4);
  const MilpSolution s = solveMilp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 8.0, 1e-6);
  EXPECT_NEAR(s.x[a], 1.0, 1e-6);
  EXPECT_NEAR(s.x[b], 0.0, 1e-6);
  EXPECT_NEAR(s.x[c], 1.0, 1e-6);
}

TEST(Milp, IntegralityChangesOptimum) {
  // max x st 2x <= 3: LP gives 1.5, integer gives 1.
  Model m;
  const VarId x = m.addVariable("x", 0, 10, VarType::Integer, 1);
  m.setObjective(Objective::Maximize);
  m.addConstraint("c", {{x, 2}}, Sense::LessEq, 3);
  const MilpSolution s = solveMilp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-6);
}

TEST(Milp, MixedIntegerContinuous) {
  // min 3y + x st x + y >= 2.5, y integer, x <= 1 -> y=2, x=0.5: 6.5.
  Model m;
  const VarId x = m.addContinuous("x", 0, 1, 1);
  const VarId y = m.addVariable("y", 0, 10, VarType::Integer, 3);
  m.addConstraint("c", {{x, 1}, {y, 1}}, Sense::GreaterEq, 2.5);
  const MilpSolution s = solveMilp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 6.5, 1e-6);
}

TEST(Milp, DetectsInfeasible) {
  Model m;
  const VarId x = m.addBinary("x", 1);
  const VarId y = m.addBinary("y", 1);
  m.addConstraint("c", {{x, 1}, {y, 1}}, Sense::GreaterEq, 3);
  EXPECT_EQ(solveMilp(m).status, SolveStatus::Infeasible);
}

TEST(Milp, RespectsNodeBudget) {
  // A small assignment-style model with a tiny node budget still returns
  // gracefully (status NodeLimit or Optimal, never a crash).
  Model m;
  std::vector<VarId> v;
  for (int i = 0; i < 12; ++i) v.push_back(m.addBinary("b" + std::to_string(i), 1));
  m.setObjective(Objective::Maximize);
  for (int i = 0; i < 4; ++i) {
    m.addConstraint("row" + std::to_string(i),
                    {{v[3 * i], 1}, {v[3 * i + 1], 1}, {v[3 * i + 2], 1}},
                    Sense::LessEq, 1);
  }
  MilpOptions opts;
  opts.maxNodes = 3;
  const MilpSolution s = solveMilp(m, opts);
  EXPECT_TRUE(s.status == SolveStatus::NodeLimit ||
              s.status == SolveStatus::Optimal);
}

/// Randomized MILP vs exhaustive enumeration of binary points.
class MilpRandomized : public ::testing::TestWithParam<int> {};

TEST_P(MilpRandomized, MatchesExhaustiveEnumeration) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const int nvars = 6;
  Model m;
  std::vector<VarId> vars;
  std::vector<double> costs;
  for (int i = 0; i < nvars; ++i) {
    const double c = static_cast<double>(rng.nextInt(-4, 4));
    vars.push_back(m.addBinary("b" + std::to_string(i), c));
    costs.push_back(c);
  }
  const int rows = static_cast<int>(rng.nextInt(1, 3));
  std::vector<std::vector<double>> rowCoeffs;
  std::vector<double> rowRhs;
  for (int r = 0; r < rows; ++r) {
    std::vector<Term> terms;
    std::vector<double> coeffs;
    for (int i = 0; i < nvars; ++i) {
      const double a = static_cast<double>(rng.nextInt(-2, 3));
      coeffs.push_back(a);
      if (a != 0) terms.push_back({vars[static_cast<std::size_t>(i)], a});
    }
    const double rhs = static_cast<double>(rng.nextInt(0, 6));
    m.addConstraint("r" + std::to_string(r), terms, Sense::LessEq, rhs);
    rowCoeffs.push_back(coeffs);
    rowRhs.push_back(rhs);
  }
  const MilpSolution s = solveMilp(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);  // all-zero is always feasible

  double best = 1e300;
  for (int mask = 0; mask < (1 << nvars); ++mask) {
    bool ok = true;
    for (int r = 0; r < rows && ok; ++r) {
      double lhs = 0;
      for (int i = 0; i < nvars; ++i) {
        if (mask & (1 << i)) lhs += rowCoeffs[r][static_cast<std::size_t>(i)];
      }
      ok = lhs <= rowRhs[static_cast<std::size_t>(r)] + 1e-9;
    }
    if (!ok) continue;
    double obj = 0;
    for (int i = 0; i < nvars; ++i) {
      if (mask & (1 << i)) obj += costs[static_cast<std::size_t>(i)];
    }
    best = std::min(best, obj);
  }
  EXPECT_NEAR(s.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpRandomized, ::testing::Range(0, 25));

}  // namespace
}  // namespace rahtm::lp
