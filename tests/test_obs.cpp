// Tests for the observability subsystem (src/obs/): tracer span
// nesting/serialization, atomic metrics under concurrency, JSON
// well-formedness of every output format (checked by parsing the files
// back with a small JSON reader), and an end-to-end pipeline smoke test
// asserting that RahtmStats agrees with the captured trace.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/rahtm.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "simnet/simulator.hpp"
#include "topology/torus.hpp"
#include "workloads/workload.hpp"

namespace rahtm {
namespace {

// ---- Minimal JSON reader (enough for the obs output formats) -------------

struct Json {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind =
      Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  const Json* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  const Json& at(const std::string& key) const {
    const Json* v = find(key);
    if (v == nullptr) throw std::runtime_error("missing key: " + key);
    return *v;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("JSON parse error at " + std::to_string(pos_) +
                             ": " + why);
  }
  void ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Json value() {
    ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      Json v;
      v.kind = Json::Kind::String;
      v.str = string();
      return v;
    }
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      literal("null");
      return Json{};
    }
    return number();
  }

  void literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
  }

  Json boolean() {
    Json v;
    v.kind = Json::Kind::Bool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
    }
    return v;
  }

  Json number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    Json v;
    v.kind = Json::Kind::Number;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            out += '?';  // code point value is irrelevant for these tests
            pos_ += 4;
            break;
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json array() {
    expect('[');
    Json v;
    v.kind = Json::Kind::Array;
    ws();
    if (consume(']')) return v;
    while (true) {
      v.array.push_back(value());
      ws();
      if (consume(']')) break;
      expect(',');
    }
    return v;
  }

  Json object() {
    expect('{');
    Json v;
    v.kind = Json::Kind::Object;
    ws();
    if (consume('}')) return v;
    while (true) {
      ws();
      std::string key = string();
      ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      ws();
      if (consume('}')) break;
      expect(',');
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

Json parseJson(const std::string& text) { return JsonParser(text).parse(); }

Json parseFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return parseJson(ss.str());
}

// ---- Tracer ---------------------------------------------------------------

TEST(Tracer, SpanNestingAndOrdering) {
  obs::Tracer tracer;
  const obs::SpanId outer = tracer.beginSpan("outer", "test");
  const obs::SpanId inner = tracer.beginSpan("inner", "test");
  tracer.endSpan(inner);
  tracer.instant("tick", "test");
  const std::int64_t outerUs = tracer.endSpan(outer);
  EXPECT_GE(outerUs, 0);

  const std::vector<obs::TraceEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 3u);
  const obs::TraceEvent& o = events[0];
  const obs::TraceEvent& i = events[1];
  const obs::TraceEvent& t = events[2];
  EXPECT_EQ(o.name, "outer");
  EXPECT_EQ(i.name, "inner");
  EXPECT_TRUE(t.instant());
  EXPECT_FALSE(o.open());
  EXPECT_FALSE(i.open());
  // The inner span nests inside the outer one.
  EXPECT_GE(i.startUs, o.startUs);
  EXPECT_LE(i.startUs + i.durUs, o.startUs + o.durUs);
  // Both ran on this thread, which must have the first dense tag.
  EXPECT_EQ(o.tid, 0u);
  EXPECT_EQ(i.tid, 0u);
}

TEST(Tracer, SnapshotClosesOpenSpans) {
  obs::Tracer tracer;
  tracer.beginSpan("open", "test");
  const std::vector<obs::TraceEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].open());
  EXPECT_GE(events[0].durUs, 0);
}

TEST(ScopedSpan, ToleratesNullTracerAndIsIdempotent) {
  obs::ScopedSpan span(nullptr, "nothing", "test");
  span.attr("k", std::int64_t{1});  // must be a no-op, not a crash
  const double first = span.close();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(span.close(), first);  // close() is idempotent
  EXPECT_EQ(span.seconds(), first);
}

TEST(Tracer, ChromeTraceParsesBack) {
  obs::Tracer tracer;
  const obs::SpanId s = tracer.beginSpan("phase \"x\"\n", "cat");
  tracer.attr(s, "count", obs::jsonInt(42));
  tracer.attr(s, "label", obs::jsonString("a\\b"));
  tracer.endSpan(s);
  tracer.instant("marker", "cat", {{"v", obs::jsonDouble(1.5)}});

  std::ostringstream os;
  tracer.writeChromeTrace(os);
  const Json doc = parseJson(os.str());
  const Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, Json::Kind::Array);
  ASSERT_EQ(events.array.size(), 2u);

  const Json& span = events.array[0];
  EXPECT_EQ(span.at("ph").str, "X");
  EXPECT_EQ(span.at("name").str, "phase \"x\"\n");  // escaping round-trips
  EXPECT_EQ(span.at("cat").str, "cat");
  EXPECT_GE(span.at("dur").number, 0);
  EXPECT_EQ(span.at("args").at("count").number, 42);
  EXPECT_EQ(span.at("args").at("label").str, "a\\b");

  const Json& inst = events.array[1];
  EXPECT_EQ(inst.at("ph").str, "i");
  EXPECT_EQ(inst.at("name").str, "marker");
  EXPECT_EQ(inst.at("args").at("v").number, 1.5);
}

TEST(Tracer, SummaryAggregatesPerName) {
  obs::Tracer tracer;
  tracer.endSpan(tracer.beginSpan("work", "t"));
  tracer.endSpan(tracer.beginSpan("work", "t"));
  tracer.instant("tick", "t");

  std::ostringstream os;
  tracer.writeSummary(os);
  const Json doc = parseJson(os.str());
  const Json& work = doc.at("spans").at("work");
  EXPECT_EQ(work.at("count").number, 2);
  EXPECT_GE(work.at("total_us").number, work.at("max_us").number);
  EXPECT_EQ(doc.at("instants").at("tick").at("count").number, 1);
}

// ---- Metrics --------------------------------------------------------------

TEST(Metrics, CounterAndHistogramUnderConcurrency) {
  obs::MetricsRegistry reg;
  obs::Counter& counter = reg.counter("c");
  obs::Histogram& hist = reg.histogram("h", {1.0, 2.0, 4.0});

  constexpr int kThreads = 8;
  constexpr int kPerThread = 24000;  // divisible by 6 (values cycle 0..5)
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counter, &hist] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add(1);
        hist.observe(static_cast<double>(i % 6));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  EXPECT_EQ(hist.min(), 0.0);
  EXPECT_EQ(hist.max(), 5.0);

  // Values 0..5 uniformly: 0,1 -> le=1; 2 -> le=2; 3,4 -> le=4; 5 -> inf.
  const std::vector<std::int64_t> buckets = hist.bucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  const std::int64_t per = kThreads * kPerThread / 6;
  EXPECT_EQ(buckets[0], 2 * per);
  EXPECT_EQ(buckets[1], per);
  EXPECT_EQ(buckets[2], 2 * per);
  EXPECT_EQ(buckets[3], per);
}

TEST(Metrics, RegistryReturnsStableRefsAndParsesBack) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  reg.gauge("g").set(2.5);
  reg.histogram("h", obs::expBuckets(1, 2, 3)).observe(100.0);  // overflow

  std::ostringstream os;
  reg.writeJson(os);
  const Json doc = parseJson(os.str());
  EXPECT_EQ(doc.at("counters").at("x").number, 3);
  EXPECT_EQ(doc.at("gauges").at("g").number, 2.5);
  const Json& h = doc.at("histograms").at("h");
  EXPECT_EQ(h.at("count").number, 1);
  const Json& buckets = h.at("buckets");
  ASSERT_EQ(buckets.array.size(), 4u);  // 1, 2, 4, inf
  EXPECT_EQ(buckets.array.back().at("le").str, "inf");
  EXPECT_EQ(buckets.array.back().at("count").number, 1);
}

TEST(Metrics, ExpBuckets) {
  const std::vector<double> b = obs::expBuckets(1, 2, 4);
  EXPECT_EQ(b, (std::vector<double>{1, 2, 4, 8}));
}

// ---- End-to-end pipeline smoke test ---------------------------------------

TEST(Telemetry, PipelineProducesConsistentTraceAndMetrics) {
  const std::string tracePath = "test_obs_trace.json";
  const std::string summaryPath = "test_obs_summary.json";
  const std::string metricsPath = "test_obs_metrics.json";

  RahtmStats stats;
  {
    obs::TelemetryConfig cfg;
    cfg.traceOutPath = tracePath;
    cfg.traceSummaryPath = summaryPath;
    cfg.metricsOutPath = metricsPath;
    obs::TelemetrySession session(cfg);
    ASSERT_TRUE(session.enabled());
    ASSERT_EQ(obs::tracer(), session.tracer());
    ASSERT_EQ(obs::metrics(), session.metrics());

    const Torus machine = Torus::torus(Shape{2, 2, 2});
    const Workload w = makeNasByName("CG", 16, {});

    RahtmConfig cfg2;
    cfg2.logicalGrid = w.logicalGrid;
    // Force the exact MILP onto the single 8-node leaf cube, with a small
    // budget so the test stays fast (budget exhaustion still explores at
    // least the root node).
    cfg2.subproblem.milpMaxVerts = 8;
    cfg2.subproblem.milpTimeLimitSec = 0.5;
    RahtmMapper mapper(cfg2);
    const Mapping mapping = mapper.mapWorkload(w, machine, 2);
    stats = mapper.stats();

    simnet::SimConfig sim;
    sim.statSampleCycles = 16;
    simnet::simulateIteration(machine, mapping, w.phases, sim);

    session.flush();
  }
  // Session destroyed: the globals must be uninstalled.
  EXPECT_EQ(obs::tracer(), nullptr);
  EXPECT_EQ(obs::metrics(), nullptr);

  // -- Chrome trace: one span per pipeline phase, solver spans with attrs --
  const Json trace = parseFile(tracePath);
  std::map<std::string, int> spanCount;
  std::int64_t mapDurUs = -1;
  double phaseDurSumUs = 0;
  for (const Json& e : trace.at("traceEvents").array) {
    if (e.at("ph").str != "X") continue;
    const std::string& name = e.at("name").str;
    ++spanCount[name];
    if (name == "rahtm.map") mapDurUs = static_cast<std::int64_t>(e.at("dur").number);
    if (name.rfind("rahtm.phase.", 0) == 0) phaseDurSumUs += e.at("dur").number;
    if (name == "rahtm.subproblem") {
      const Json& args = e.at("args");
      EXPECT_FALSE(args.at("method").str.empty());
      EXPECT_GE(args.at("iterations").number, 1);
    }
  }
  for (const char* phase : {"rahtm.phase.cluster", "rahtm.phase.pin",
                            "rahtm.phase.merge", "rahtm.phase.refine"}) {
    EXPECT_EQ(spanCount[phase], 1) << phase;
  }
  EXPECT_GE(spanCount["rahtm.subproblem"], 1);
  EXPECT_GE(spanCount["lp.milp.solve"], 1);
  EXPECT_EQ(spanCount["simnet.run"], 1);

  // -- RahtmStats is derived from the same spans: totals must agree --------
  ASSERT_GE(mapDurUs, 0);
  EXPECT_NEAR(stats.totalSeconds * 1e6, static_cast<double>(mapDurUs), 1.0);
  const double statPhaseSumUs = (stats.clusterSeconds + stats.pinSeconds +
                                 stats.mergeSeconds + stats.refineSeconds) *
                                1e6;
  EXPECT_NEAR(statPhaseSumUs, phaseDurSumUs, 4.0);
  // Phases cover nearly all of the total mapping time.
  EXPECT_LE(phaseDurSumUs, static_cast<double>(mapDurUs) * 1.01 + 10);

  // -- Summary parses and counts the phases --------------------------------
  const Json summary = parseFile(summaryPath);
  EXPECT_EQ(summary.at("spans").at("rahtm.map").at("count").number, 1);

  // -- Metrics: solver and simulator series are populated ------------------
  const Json metrics = parseFile(metricsPath);
  const Json& counters = metrics.at("counters");
  EXPECT_GE(counters.at("lp.simplex.pivots").number, 1);
  EXPECT_GE(counters.at("lp.milp.nodes").number, 1);
  EXPECT_GE(counters.at("rahtm.subproblems").number, 1);
  EXPECT_GE(counters.at("rahtm.merge.candidates").number, 1);
  EXPECT_GE(counters.at("simnet.cycles").number, 1);
  const Json& hists = metrics.at("histograms");
  EXPECT_GE(hists.at("simnet.link_queue_flits").at("count").number, 1);
  EXPECT_GE(hists.at("simnet.link_channel_flits").at("count").number, 1);
  EXPECT_GE(hists.at("lp.simplex.pivots_per_solve").at("count").number, 1);
  // The standard catalog is pre-registered, so untouched series exist too.
  EXPECT_NE(counters.find("simnet.local_flits"), nullptr);

  std::remove(tracePath.c_str());
  std::remove(summaryPath.c_str());
  std::remove(metricsPath.c_str());
}

}  // namespace
}  // namespace rahtm
