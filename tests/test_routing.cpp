// Tests for the channel-load machinery: uniform-minimal (MAR approximation)
// loads with exact path counting, dimension-order routing, conservation
// invariants, the double-wide 2-ary torus links, the paper's Fig. 1
// motivating example, and the optimal-routing LP.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/comm_graph.hpp"
#include "routing/channel_load.hpp"
#include "routing/lp_routing.hpp"
#include "graph/stats.hpp"
#include "routing/oblivious.hpp"
#include "topology/torus.hpp"

namespace rahtm {
namespace {

TEST(PathCount, MatchesMultinomials) {
  const Torus m = Torus::mesh(Shape{4, 4});
  // (0,0) -> (2,3): C(5,2) = 10 paths.
  EXPECT_DOUBLE_EQ(countMinimalPaths(m, Coord{0, 0}, Coord{2, 3}), 10.0);
  // Same node: one (empty) path.
  EXPECT_DOUBLE_EQ(countMinimalPaths(m, Coord{1, 1}, Coord{1, 1}), 1.0);
  // 1D: single path.
  EXPECT_DOUBLE_EQ(countMinimalPaths(m, Coord{0, 0}, Coord{3, 0}), 1.0);
}

TEST(PathCount, TorusTiesDoubleTheFamilies) {
  const Torus t = Torus::torus(Shape{4});
  // 0 -> 2: distance 2 both ways: two path families of one path each.
  EXPECT_DOUBLE_EQ(countMinimalPaths(t, Coord{0}, Coord{2}), 2.0);
  const Torus t2 = Torus::torus(Shape{4, 4});
  // (0,0)->(2,2): both dims tie: 4 combos x C(4,2)=6 paths = 24.
  EXPECT_DOUBLE_EQ(countMinimalPaths(t2, Coord{0, 0}, Coord{2, 2}), 24.0);
}

TEST(UniformMinimal, SplitsEvenlyAcrossTwoPaths) {
  const Torus m = Torus::mesh(Shape{2, 2});
  ChannelLoadMap loads(m);
  accumulateUniformMinimal(m, Coord{0, 0}, Coord{1, 1}, 100, loads);
  // Two L-paths, each carrying 50 on both of its links.
  const NodeId n00 = m.nodeId(Coord{0, 0});
  const NodeId n01 = m.nodeId(Coord{0, 1});
  const NodeId n10 = m.nodeId(Coord{1, 0});
  EXPECT_DOUBLE_EQ(loads.load(m.channelId(n00, 0, Dir::Plus)), 50);
  EXPECT_DOUBLE_EQ(loads.load(m.channelId(n00, 1, Dir::Plus)), 50);
  EXPECT_DOUBLE_EQ(loads.load(m.channelId(n10, 1, Dir::Plus)), 50);
  EXPECT_DOUBLE_EQ(loads.load(m.channelId(n01, 0, Dir::Plus)), 50);
  EXPECT_DOUBLE_EQ(loads.maxLoad(), 50);
  EXPECT_DOUBLE_EQ(loads.totalLoad(), 200);  // volume * hops
}

TEST(UniformMinimal, TorusTieSplitsAcrossDirections) {
  const Torus t = Torus::torus(Shape{4});
  ChannelLoadMap loads(t);
  accumulateUniformMinimal(t, Coord{0}, Coord{2}, 80, loads);
  EXPECT_DOUBLE_EQ(loads.load(t.channelId(0, 0, Dir::Plus)), 40);
  EXPECT_DOUBLE_EQ(loads.load(t.channelId(1, 0, Dir::Plus)), 40);
  EXPECT_DOUBLE_EQ(loads.load(t.channelId(0, 0, Dir::Minus)), 40);
  EXPECT_DOUBLE_EQ(loads.load(t.channelId(3, 0, Dir::Minus)), 40);
  EXPECT_DOUBLE_EQ(loads.totalLoad(), 160);
}

TEST(UniformMinimal, TwoAryTorusUsesBothPhysicalLinks) {
  // The "double-wide link" of §III-C: a 2-ary torus dimension spreads the
  // flow across both parallel physical channels.
  const Torus t = Torus::torus(Shape{2});
  ChannelLoadMap loads(t);
  accumulateUniformMinimal(t, Coord{0}, Coord{1}, 100, loads);
  EXPECT_DOUBLE_EQ(loads.load(t.channelId(0, 0, Dir::Plus)), 50);
  EXPECT_DOUBLE_EQ(loads.load(t.channelId(0, 0, Dir::Minus)), 50);
  EXPECT_DOUBLE_EQ(loads.maxLoad(), 50);
}

/// Conservation property: a flow's total channel load equals volume * hops,
/// on randomized topologies and endpoints.
class UniformMinimalConservation : public ::testing::TestWithParam<int> {};

TEST_P(UniformMinimalConservation, TotalLoadEqualsVolumeTimesHops) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 1);
  const std::vector<Shape> shapes = {
      Shape{4, 4},        Shape{8},          Shape{2, 2, 2, 2},
      Shape{4, 4, 4, 2},  Shape{3, 5},       Shape{4, 2, 6},
  };
  const Shape shape = shapes[GetParam() % shapes.size()];
  const bool wrap = (GetParam() / 2) % 2 == 0;
  const Torus t = wrap ? Torus::torus(shape) : Torus::mesh(shape);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = static_cast<NodeId>(rng.nextBounded(
        static_cast<std::uint64_t>(t.numNodes())));
    const auto b = static_cast<NodeId>(rng.nextBounded(
        static_cast<std::uint64_t>(t.numNodes())));
    ChannelLoadMap loads(t);
    const double vol = 1 + static_cast<double>(rng.nextBounded(100));
    accumulateUniformMinimal(t, t.coordOf(a), t.coordOf(b), vol, loads);
    EXPECT_NEAR(loads.totalLoad(), vol * t.distance(a, b), 1e-9 * vol)
        << t.describe() << " " << a << "->" << b;
    // No channel carries more than the full volume or less than zero.
    for (const double v : loads.raw()) {
      EXPECT_GE(v, 0);
      EXPECT_LE(v, vol + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, UniformMinimalConservation,
                         ::testing::Range(0, 12));

TEST(DimensionOrder, FollowsSinglePath) {
  const Torus m = Torus::mesh(Shape{4, 4});
  ChannelLoadMap loads(m);
  accumulateDimensionOrder(m, Coord{0, 0}, Coord{2, 1}, 10, loads);
  // Dim 0 first: (0,0)->(1,0)->(2,0), then dim 1: (2,0)->(2,1).
  EXPECT_DOUBLE_EQ(loads.load(m.channelId(m.nodeId(Coord{0, 0}), 0, Dir::Plus)), 10);
  EXPECT_DOUBLE_EQ(loads.load(m.channelId(m.nodeId(Coord{1, 0}), 0, Dir::Plus)), 10);
  EXPECT_DOUBLE_EQ(loads.load(m.channelId(m.nodeId(Coord{2, 0}), 1, Dir::Plus)), 10);
  EXPECT_DOUBLE_EQ(loads.totalLoad(), 30);
  EXPECT_DOUBLE_EQ(loads.maxLoad(), 10);
}

TEST(ChannelLoadMapTest, ArithmeticAndStats) {
  const Torus t = Torus::torus(Shape{4});
  ChannelLoadMap a(t), b(t);
  a.add(t.channelId(0, 0, Dir::Plus), 5);
  b.add(t.channelId(0, 0, Dir::Plus), 3);
  b.add(t.channelId(1, 0, Dir::Plus), 7);
  a.addMap(b);
  EXPECT_DOUBLE_EQ(a.load(t.channelId(0, 0, Dir::Plus)), 8);
  EXPECT_DOUBLE_EQ(a.maxLoad(), 8);
  a.subtractMap(b);
  EXPECT_DOUBLE_EQ(a.load(t.channelId(0, 0, Dir::Plus)), 5);
  EXPECT_DOUBLE_EQ(a.load(t.channelId(1, 0, Dir::Plus)), 0);
  a.clear();
  EXPECT_DOUBLE_EQ(a.totalLoad(), 0);
}

TEST(Fig1, MclPrefersDiagonalUnderMar) {
  // The paper's motivating example (§III-A, Fig. 1): 4 processes on a 2x2
  // mesh. P1<->P2 communicate heavily (weight 100); other edges are light.
  // Hop-bytes places P1,P2 adjacent (one link carries 100); MCL-aware
  // mapping places them on the diagonal so MAR splits the load (50/50).
  const Torus m = Torus::mesh(Shape{2, 2});
  CommGraph g(4);
  g.addExchange(0, 1, 100);  // P1 <-> P2 heavy
  g.addExchange(0, 2, 1);
  g.addExchange(1, 3, 1);
  g.addExchange(2, 3, 1);

  // Hop-bytes-style mapping: P1 and P2 adjacent.
  const std::vector<NodeId> adjacent{m.nodeId(Coord{0, 0}),
                                     m.nodeId(Coord{0, 1}),
                                     m.nodeId(Coord{1, 0}),
                                     m.nodeId(Coord{1, 1})};
  // MCL-aware mapping: P1 and P2 on the diagonal.
  const std::vector<NodeId> diagonal{m.nodeId(Coord{0, 0}),
                                     m.nodeId(Coord{1, 1}),
                                     m.nodeId(Coord{0, 1}),
                                     m.nodeId(Coord{1, 0})};

  const double adjacentMcl = placementMcl(m, g, adjacent);
  const double diagonalMcl = placementMcl(m, g, diagonal);
  EXPECT_GE(adjacentMcl, 100.0);  // the heavy flow saturates one link
  EXPECT_LT(diagonalMcl, 60.0);   // split across both L-paths
  EXPECT_LT(diagonalMcl, adjacentMcl);

  // Hop-bytes ranks them the other way: the metric is misleading under MAR.
  EXPECT_LT(hopBytes(g, m, adjacent), hopBytes(g, m, diagonal));
}

TEST(PlacementLoads, CoLocatedFlowsAddNothing) {
  const Torus t = Torus::torus(Shape{2, 2});
  CommGraph g(4);
  g.addFlow(0, 1, 50);
  // Both vertices on the same node.
  const double mcl = placementMcl(t, g, {0, 0, 1, 2});
  EXPECT_DOUBLE_EQ(mcl, 0);
}

// ---- Optimal-routing LP ------------------------------------------------------

TEST(LpRouting, MatchesUniformOnSymmetricInstance) {
  // Single diagonal flow on a 2x2 mesh: optimal split == uniform split.
  const Torus m = Torus::mesh(Shape{2, 2});
  CommGraph g(2);
  g.addFlow(0, 1, 100);
  const std::vector<NodeId> place{m.nodeId(Coord{0, 0}), m.nodeId(Coord{1, 1})};
  const auto r = optimalMinimalMcl(m, g, place);
  ASSERT_EQ(r.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(r.mcl, 50.0, 1e-6);
}

TEST(LpRouting, NeverWorseThanUniform) {
  Rng rng(2024);
  const Torus t = Torus::torus(Shape{2, 2, 2});
  for (int trial = 0; trial < 10; ++trial) {
    CommGraph g(8);
    for (int i = 0; i < 6; ++i) {
      const auto a = static_cast<RankId>(rng.nextBounded(8));
      const auto b = static_cast<RankId>(rng.nextBounded(8));
      if (a != b) g.addFlow(a, b, 1 + static_cast<double>(rng.nextBounded(20)));
    }
    std::vector<NodeId> place(8);
    for (int i = 0; i < 8; ++i) place[static_cast<std::size_t>(i)] = i;
    const double uniform = placementMcl(t, g, place);
    const auto lp = optimalMinimalMcl(t, g, place);
    ASSERT_EQ(lp.status, lp::SolveStatus::Optimal);
    EXPECT_LE(lp.mcl, uniform + 1e-6);
  }
}

TEST(LpRouting, SingleUnsplittablePath) {
  // 1D mesh: only one minimal path; LP must equal the flow volume.
  const Torus m = Torus::mesh(Shape{4});
  CommGraph g(2);
  g.addFlow(0, 1, 42);
  const auto r = optimalMinimalMcl(m, g, {0, 3});
  ASSERT_EQ(r.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(r.mcl, 42.0, 1e-6);
}

}  // namespace
}  // namespace rahtm
