// Integration tests for the full RAHTM pipeline: validity of produced
// mappings, MCL quality against baselines, concentration clustering
// behaviour, ablation switches, and end-to-end consistency with the
// simulator.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/rahtm.hpp"
#include "graph/stats.hpp"
#include "mapping/permutation.hpp"
#include "profile/profile.hpp"
#include "routing/oblivious.hpp"
#include "topology/presets.hpp"
#include "workloads/workload.hpp"

namespace rahtm {
namespace {

RahtmConfig fastConfig() {
  RahtmConfig cfg;
  // Exhaustive leaf solves (exact under the oblivious metric) keep the test
  // suite fast; dedicated MILP coverage lives in test_milp_mapper.
  cfg.subproblem.milpMaxVerts = 0;
  cfg.subproblem.annealRestarts = 3;
  cfg.subproblem.annealIters = 4000;
  cfg.merge.beamWidth = 16;
  return cfg;
}

/// Oblivious-model MCL of a full mapping, counting only inter-node traffic.
double mappingMcl(const CommGraph& g, const Torus& t, const Mapping& m) {
  return placementMcl(t, g, m.nodeVector());
}

TEST(Rahtm, ProducesValidMappingBT) {
  const Torus t = Torus::torus(Shape{4, 4, 2});  // 32 nodes
  const Workload w = makeBT(64);                 // c = 2
  RahtmMapper mapper(fastConfig());
  const Mapping m = mapper.mapWorkload(w, t, 2);
  EXPECT_TRUE(m.validate(t, 2).empty()) << m.validate(t, 2);
  EXPECT_GT(mapper.stats().subproblemsSolved, 0);
  EXPECT_GT(mapper.stats().totalSeconds, 0);
}

TEST(Rahtm, ProducesValidMappingCG) {
  const Torus t = Torus::torus(Shape{2, 2, 2, 2});  // 16 nodes
  const Workload w = makeCG(64);                    // c = 4
  RahtmMapper mapper(fastConfig());
  const Mapping m = mapper.mapWorkload(w, t, 4);
  EXPECT_TRUE(m.validate(t, 4).empty()) << m.validate(t, 4);
}

TEST(Rahtm, ClusteringAbsorbsHeavyPairsIntoNodes) {
  // Ranks 2i and 2i+1 exchange heavily; with concentration 2 the clustering
  // phase must co-locate every pair, zeroing their network traffic.
  const Torus t = Torus::torus(Shape{2, 2, 2});
  CommGraph g(16);
  for (RankId r = 0; r < 16; r += 2) g.addExchange(r, r + 1, 1000);
  for (RankId r = 0; r + 2 < 16; ++r) g.addExchange(r, r + 2, 1);
  RahtmConfig cfg = fastConfig();
  cfg.logicalGrid = Shape{1, 16};  // pairs adjacent along the row
  RahtmMapper mapper(cfg);
  const Mapping m = mapper.map(g, t, 2);
  EXPECT_TRUE(m.validate(t, 2).empty());
  for (RankId r = 0; r < 16; r += 2) {
    EXPECT_EQ(m.nodeOf(r), m.nodeOf(r + 1)) << "pair " << r;
  }
  EXPECT_DOUBLE_EQ(mapper.stats().intraNodeVolume, 2 * 8 * 1000.0);
}

TEST(Rahtm, BeatsOrMatchesDefaultMappingOnMcl) {
  // The headline property: routing-aware mapping lowers the oblivious-model
  // MCL versus the ABCDET baseline on the paper's workload family.
  const Torus t = Torus::torus(Shape{4, 4, 2});
  for (const char* name : {"BT", "SP", "CG"}) {
    const Workload w = makeNasByName(name, 64);
    const CommGraph g = w.commGraph();
    RahtmMapper rahtm(fastConfig());
    DefaultMapper def;
    const double mclRahtm = mappingMcl(g, t, rahtm.mapWorkload(w, t, 2));
    const double mclDef = mappingMcl(g, t, def.map(g, t, 2));
    EXPECT_LE(mclRahtm, mclDef * 1.05) << name;  // never meaningfully worse
  }
}

TEST(Rahtm, MergePhaseImprovesOrMatchesPinsOnly) {
  const Torus t = Torus::torus(Shape{4, 4, 2});
  const Workload w = makeCG(64);
  const CommGraph g = w.commGraph();

  RahtmConfig withMerge = fastConfig();
  RahtmConfig pinsOnly = fastConfig();
  pinsOnly.enableMerge = false;
  RahtmMapper a(withMerge), b(pinsOnly);
  const double mclMerge = mappingMcl(g, t, a.mapWorkload(w, t, 2));
  const double mclPins = mappingMcl(g, t, b.mapWorkload(w, t, 2));
  EXPECT_LE(mclMerge, mclPins + 1e-9);
}

TEST(Rahtm, RootObjectiveMatchesMappingMcl) {
  // The root merge objective is the oblivious MCL of the final mapping at
  // node granularity (all flows of the contracted graph, full machine).
  const Torus t = Torus::torus(Shape{2, 2, 2});
  const Workload w = makeBT(16);
  RahtmMapper mapper(fastConfig());
  const Mapping m = mapper.mapWorkload(w, t, 2);
  const double mcl = mappingMcl(w.commGraph(), t, m);
  EXPECT_NEAR(mapper.stats().rootObjective, mcl, 1e-6);
}

TEST(Rahtm, HopBytesObjectiveAblation) {
  const Torus t = Torus::torus(Shape{2, 2, 2});
  const Workload w = makeBT(16);
  const CommGraph g = w.commGraph();
  RahtmConfig hb = fastConfig();
  hb.subproblem.objective = MapObjective::HopBytes;
  hb.merge.objective = MapObjective::HopBytes;
  RahtmMapper hbMapper(hb);
  const Mapping mHb = hbMapper.mapWorkload(w, t, 2);
  EXPECT_TRUE(mHb.validate(t, 2).empty());
  RahtmMapper mclMapper(fastConfig());
  const Mapping mMcl = mclMapper.mapWorkload(w, t, 2);
  // The hop-bytes variant optimizes distance, so it must win (or tie) on
  // hop-bytes; the MCL variant must win (or tie) on MCL.
  EXPECT_LE(mappingMcl(g, t, mMcl), mappingMcl(g, t, mHb) + 1e-9);
  EXPECT_LE(hopBytes(g, t, mHb.nodeVector()),
            hopBytes(g, t, mMcl.nodeVector()) * 1.10 + 1e-9);
}

TEST(Rahtm, StatsBreakdownIsConsistent) {
  const Torus t = Torus::torus(Shape{2, 2, 2});
  const Workload w = makeCG(16);
  RahtmMapper mapper(fastConfig());
  mapper.mapWorkload(w, t, 2);
  const RahtmStats& s = mapper.stats();
  EXPECT_GE(s.totalSeconds,
            s.clusterSeconds + s.pinSeconds + s.mergeSeconds - 1e-6);
  int methodTotal = 0;
  for (const auto& [method, count] : s.solverMethodCounts) methodTotal += count;
  EXPECT_EQ(methodTotal, s.subproblemsSolved);
  EXPECT_DOUBLE_EQ(s.intraNodeVolume + s.interNodeVolume,
                   w.commGraph().totalVolume());
}

TEST(Rahtm, RejectsMismatchedInputs) {
  const Torus t = Torus::torus(Shape{2, 2});
  RahtmMapper mapper(fastConfig());
  CommGraph g(7);  // not nodes * concentration
  EXPECT_THROW(mapper.map(g, t, 2), PreconditionError);

  RahtmConfig cfg = fastConfig();
  cfg.logicalGrid = Shape{3, 3};  // volume != ranks
  RahtmMapper bad(cfg);
  CommGraph g8(8);
  EXPECT_THROW(bad.map(g8, t, 2), PreconditionError);
}

TEST(Rahtm, WorksWithOneDimensionalFallbackGrid) {
  // No logical grid: ranks treated as a 1D row.
  const Torus t = Torus::torus(Shape{2, 2});
  CommGraph g(8);
  for (RankId r = 0; r + 1 < 8; ++r) g.addExchange(r, r + 1, 10);
  RahtmMapper mapper(fastConfig());
  const Mapping m = mapper.map(g, t, 2);
  EXPECT_TRUE(m.validate(t, 2).empty());
}

TEST(Rahtm, EndToEndLowersSimulatedCommTime) {
  // Full-loop check on CG (the mapping-sensitive benchmark): RAHTM's
  // simulated communication time must not exceed the default mapping's.
  const Torus t = Torus::torus(Shape{2, 2, 2, 2});
  const Workload w = makeCG(64, NasParams{2048, 1});
  simnet::SimConfig sim;
  RahtmMapper rahtm(fastConfig());
  DefaultMapper def;
  const auto cyclesRahtm =
      commCyclesPerIteration(w, t, rahtm.mapWorkload(w, t, 4), sim);
  const auto cyclesDef =
      commCyclesPerIteration(w, t, def.map(w.commGraph(), t, 4), sim);
  EXPECT_LE(cyclesRahtm, cyclesDef * 1.05);
}

TEST(Rahtm, LargerBeamNeverHurtsRootObjective) {
  const Torus t = Torus::torus(Shape{4, 4});
  const Workload w = makeCG(32);
  RahtmConfig narrow = fastConfig();
  narrow.merge.beamWidth = 1;
  RahtmConfig wide = fastConfig();
  wide.merge.beamWidth = 64;
  RahtmMapper a(narrow), b(wide);
  a.mapWorkload(w, t, 2);
  b.mapWorkload(w, t, 2);
  EXPECT_LE(b.stats().rootObjective, a.stats().rootObjective + 1e-9);
}

}  // namespace
}  // namespace rahtm
