// Tests for the routing-unaware greedy hop-bytes baseline mapper.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/greedy_mapper.hpp"
#include "graph/stats.hpp"
#include "mapping/permutation.hpp"
#include "routing/oblivious.hpp"
#include "topology/presets.hpp"
#include "workloads/workload.hpp"

namespace rahtm {
namespace {

TEST(GreedyMapper, ProducesValidMappings) {
  const Torus t = Torus::torus(Shape{4, 4, 2});
  const Workload w = makeBT(64);
  GreedyHopBytesMapper mapper(w.logicalGrid);
  const Mapping m = mapper.map(w.commGraph(), t, 2);
  EXPECT_TRUE(m.validate(t, 2).empty()) << m.validate(t, 2);
}

TEST(GreedyMapper, PlacesHeavyPairAdjacent) {
  // Two clusters exchanging heavily end up at distance 1 — the defining
  // (and under MAR, counterproductive) behaviour of hop-bytes greed.
  const Torus t = Torus::mesh(Shape{2, 2});
  CommGraph g(4);
  g.addExchange(0, 1, 100);
  g.addExchange(2, 3, 1);
  GreedyHopBytesMapper mapper;
  const Mapping m = mapper.map(g, t, 1);
  EXPECT_EQ(t.distance(m.nodeOf(0), m.nodeOf(1)), 1);
}

TEST(GreedyMapper, BeatsRandomOnHopBytes) {
  const Torus t = Torus::torus(Shape{4, 4});
  const Workload w = makeCG(32);
  const CommGraph g = w.commGraph();
  GreedyHopBytesMapper greedy(w.logicalGrid);
  RandomMapper random(11);
  const double hbGreedy = hopBytes(g, t, greedy.map(g, t, 2).nodeVector());
  const double hbRandom = hopBytes(g, t, random.map(g, t, 2).nodeVector());
  EXPECT_LT(hbGreedy, hbRandom);
}

TEST(GreedyMapper, ConcentrationClusteringAbsorbsPairs) {
  // Heavy consecutive pairs must land on the same node (the shared
  // tile-search clustering at work).
  const Torus t = Torus::torus(Shape{2, 2, 2});
  CommGraph g(16);
  for (RankId r = 0; r < 16; r += 2) g.addExchange(r, r + 1, 500);
  for (RankId r = 0; r + 2 < 16; ++r) g.addExchange(r, r + 2, 1);
  GreedyHopBytesMapper mapper(Shape{1, 16});
  const Mapping m = mapper.map(g, t, 2);
  for (RankId r = 0; r < 16; r += 2) {
    EXPECT_EQ(m.nodeOf(r), m.nodeOf(r + 1)) << r;
  }
}

TEST(GreedyMapper, HandlesEmptyGraph) {
  const Torus t = Torus::torus(Shape{2, 2});
  const CommGraph g(8);
  GreedyHopBytesMapper mapper;
  const Mapping m = mapper.map(g, t, 2);
  EXPECT_TRUE(m.validate(t, 2).empty());
}

TEST(GreedyMapper, RejectsMismatchedRanks) {
  const Torus t = Torus::torus(Shape{2, 2});
  CommGraph g(7);
  GreedyHopBytesMapper mapper;
  EXPECT_THROW(mapper.map(g, t, 2), PreconditionError);
}

}  // namespace
}  // namespace rahtm
