// Unit tests for the common utilities: SmallVec, RNG, exact combinatorics,
// string parsing and the CLI flag parser.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/math.hpp"
#include "common/rng.hpp"
#include "common/small_vec.hpp"
#include "common/strings.hpp"

namespace rahtm {
namespace {

TEST(SmallVec, BasicOperations) {
  Coord c{1, 2, 3};
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], 1);
  EXPECT_EQ(c.back(), 3);
  c.push_back(4);
  EXPECT_EQ(c.size(), 4u);
  c.pop_back();
  EXPECT_EQ(c, (Coord{1, 2, 3}));
  EXPECT_NE(c, (Coord{1, 2}));
  EXPECT_LT((Coord{1, 2}), (Coord{1, 3}));
}

TEST(SmallVec, OverflowThrows) {
  SmallVec<int, 2> v;
  v.push_back(1);
  v.push_back(2);
  EXPECT_THROW(v.push_back(3), PreconditionError);
  EXPECT_THROW((SmallVec<int, 2>{1, 2, 3}), PreconditionError);
}

TEST(SmallVec, AtChecksBounds) {
  Coord c{1};
  EXPECT_THROW(c.at(1), PreconditionError);
  EXPECT_THROW((SmallVec<int, 4>{}).front(), PreconditionError);
}

TEST(SmallVec, ResizeAndFill) {
  Shape s(3, 7);
  EXPECT_EQ(s, (Shape{7, 7, 7}));
  s.resize(5, 1);
  EXPECT_EQ(s, (Shape{7, 7, 7, 1, 1}));
  s.resize(2);
  EXPECT_EQ(s, (Shape{7, 7}));
}

TEST(SmallVec, HashDistinguishes) {
  const std::hash<Coord> h;
  EXPECT_NE(h(Coord{1, 2}), h(Coord{2, 1}));
  EXPECT_EQ(h(Coord{1, 2}), h(Coord{1, 2}));
}

TEST(Rng, DeterministicAndSeedSensitive) {
  Rng a(1), b(1), c(2);
  EXPECT_EQ(a.next(), b.next());
  Rng a2(1);
  EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.nextBounded(7), 7u);
    const auto v = rng.nextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    const double d = rng.nextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextIntHandlesWideRanges) {
  // Intervals wider than INT64_MAX used to compute hi - lo in signed
  // arithmetic (UB, and the full-width span wrapped to nextBounded(0)).
  Rng rng(7);
  constexpr auto kMin = std::numeric_limits<std::int64_t>::min();
  constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
  for (int i = 0; i < 200; ++i) {
    const auto half = rng.nextInt(kMin, 0);
    EXPECT_LE(half, 0);
    const auto wide = rng.nextInt(kMin + 1, kMax - 1);
    EXPECT_GT(wide, kMin);
    EXPECT_LT(wide, kMax);
    rng.nextInt(kMin, kMax);  // full width: any value is valid
  }
  // Degenerate single-point interval.
  EXPECT_EQ(rng.nextInt(42, 42), 42);
  // Full-width draws hit both halves of the range.
  bool sawNeg = false;
  bool sawPos = false;
  for (int i = 0; i < 200 && !(sawNeg && sawPos); ++i) {
    const auto v = rng.nextInt(kMin, kMax);
    sawNeg |= v < 0;
    sawPos |= v > 0;
  }
  EXPECT_TRUE(sawNeg);
  EXPECT_TRUE(sawPos);
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(123);
  int counts[4] = {0, 0, 0, 0};
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) ++counts[rng.nextBounded(4)];
  for (const int c : counts) {
    EXPECT_NEAR(c, trials / 4, trials / 40);  // within 10%
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 8u);
}

TEST(MathTest, PowerOfTwo) {
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(2));
  EXPECT_TRUE(isPowerOfTwo(1024));
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_FALSE(isPowerOfTwo(-2));
  EXPECT_FALSE(isPowerOfTwo(12));
}

TEST(MathTest, Ilog2) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(1024), 10);
  EXPECT_THROW(ilog2(0), PreconditionError);
}

TEST(MathTest, BinomialExactValues) {
  EXPECT_DOUBLE_EQ(binomial(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial(10, 5), 252.0);
  EXPECT_DOUBLE_EQ(binomial(20, 10), 184756.0);
  EXPECT_DOUBLE_EQ(binomial(4, 5), 0.0);
  EXPECT_DOUBLE_EQ(binomial(4, -1), 0.0);
}

TEST(MathTest, PascalIdentityHolds) {
  for (int n = 1; n <= 25; ++n) {
    for (int k = 1; k < n; ++k) {
      EXPECT_DOUBLE_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(MathTest, MultinomialMatchesPathCounts) {
  // Number of monotone lattice paths in a 2x2 grid: C(4,2) = 6.
  EXPECT_DOUBLE_EQ(multinomial(SmallVec<std::int32_t, kMaxDims>{2, 2}), 6.0);
  // 3 dimensions: 9!/(2!3!4!) = 1260.
  EXPECT_DOUBLE_EQ(multinomial(SmallVec<std::int32_t, kMaxDims>{2, 3, 4}),
                   1260.0);
  // Degenerate parts contribute nothing.
  EXPECT_DOUBLE_EQ(multinomial(SmallVec<std::int32_t, kMaxDims>{0, 0, 5}), 1.0);
  EXPECT_DOUBLE_EQ(multinomial(SmallVec<std::int32_t, kMaxDims>{}), 1.0);
}

TEST(MathTest, OrderedFactorizationsMatchFig2) {
  // Fig. 2 of the paper: a size-8 tile over a 2D grid of extents >= 8
  // admits 8x1, 4x2, 2x4, 1x8.
  const auto shapes = orderedFactorizations(8, Shape{8, 8});
  ASSERT_EQ(shapes.size(), 4u);
  EXPECT_EQ(shapes[0], (Shape{1, 8}));
  EXPECT_EQ(shapes[1], (Shape{2, 4}));
  EXPECT_EQ(shapes[2], (Shape{4, 2}));
  EXPECT_EQ(shapes[3], (Shape{8, 1}));
}

TEST(MathTest, OrderedFactorizationsRespectCaps) {
  const auto shapes = orderedFactorizations(8, Shape{4, 4});
  ASSERT_EQ(shapes.size(), 2u);  // only 2x4 and 4x2 fit
  EXPECT_EQ(shapes[0], (Shape{2, 4}));
  EXPECT_EQ(shapes[1], (Shape{4, 2}));
}

TEST(MathTest, IpowAndGcd) {
  EXPECT_EQ(ipow(2, 10), 1024);
  EXPECT_EQ(ipow(7, 0), 1);
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(7, 0), 7);
  EXPECT_EQ(gcd64(0, 0), 0);
}

TEST(Strings, SplitAndTrim) {
  EXPECT_EQ(split("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(splitWhitespace("  a\tb  c \n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
}

TEST(Strings, ParseNumbers) {
  EXPECT_EQ(parseInt(" 42 "), 42);
  EXPECT_EQ(parseInt("-7"), -7);
  EXPECT_DOUBLE_EQ(parseDouble("2.5e3"), 2500.0);
  EXPECT_THROW(parseInt("12x"), ParseError);
  EXPECT_THROW(parseInt(""), ParseError);
  EXPECT_THROW(parseDouble("nope"), ParseError);
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog",   "--alpha", "3",    "--name=bt",
                        "file1",  "--flag",  "--x", "2.5"};
  CliArgs args(8, argv);
  EXPECT_EQ(args.getInt("alpha", 0), 3);
  EXPECT_EQ(args.getString("name", ""), "bt");
  EXPECT_TRUE(args.getBool("flag"));
  EXPECT_FALSE(args.getBool("missing"));
  EXPECT_DOUBLE_EQ(args.getDouble("x", 0), 2.5);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "file1");
  EXPECT_EQ(args.getInt("absent", -1), -1);
}

TEST(Cli, MalformedBooleanThrows) {
  const char* argv[] = {"prog", "--b=banana"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.getBool("b"), ParseError);
}

// Compile-level check that RAHTM_LOG expands to a single complete
// statement: inside an unbraced if/else, the else must attach to the
// *outer* if. With the old `if (enabled) stream` expansion this else
// bound to the macro's hidden if and the branch flipped.
TEST(Log, MacroIsDanglingElseSafe) {
  bool tookElse = false;
  if (false)
    RAHTM_LOG(Error) << "never printed";
  else
    tookElse = true;
  EXPECT_TRUE(tookElse);

  // And the degenerate single-statement form still compiles.
  if (true) RAHTM_LOG(Debug) << "below threshold, dropped";
}

TEST(Log, LevelRoundTrip) {
  const LogLevel before = logLevel();
  setLogLevel(LogLevel::Error);
  EXPECT_EQ(logLevel(), LogLevel::Error);
  setLogLevel(before);
}

}  // namespace
}  // namespace rahtm
