// Tests for the fat-tree topology, its up/down load model, and the
// clustering-based fat-tree mapper (§VI extension).

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/error.hpp"
#include "core/fattree_mapper.hpp"
#include "topology/fattree.hpp"
#include "workloads/workload.hpp"

namespace rahtm {
namespace {

TEST(FatTreeTopology, GroupArithmetic) {
  const FatTree t({4, 2, 2}, {1, 2, 4});  // 16 nodes, 3 levels
  EXPECT_EQ(t.numNodes(), 16);
  EXPECT_EQ(t.levels(), 3);
  EXPECT_EQ(t.groupsAt(0), 16);
  EXPECT_EQ(t.groupsAt(1), 4);   // leaf switches of 4 nodes
  EXPECT_EQ(t.groupsAt(2), 2);
  EXPECT_EQ(t.groupsAt(3), 1);   // the root
  EXPECT_EQ(t.groupOf(5, 1), 1);
  EXPECT_EQ(t.groupOf(5, 2), 0);
  EXPECT_EQ(t.groupOf(15, 2), 1);
}

TEST(FatTreeTopology, NcaLevels) {
  const FatTree t = FatTree::uniform(2, 3, false);  // 8 nodes
  EXPECT_EQ(t.ncaLevel(0, 0), 0);
  EXPECT_EQ(t.ncaLevel(0, 1), 1);  // same leaf switch
  EXPECT_EQ(t.ncaLevel(0, 2), 2);
  EXPECT_EQ(t.ncaLevel(0, 7), 3);  // through the root
  EXPECT_EQ(t.ncaLevel(3, 4), 3);
}

TEST(FatTreeTopology, RejectsBadShapes) {
  EXPECT_THROW(FatTree({}, {}), PreconditionError);
  EXPECT_THROW(FatTree({1}, {1}), PreconditionError);
  EXPECT_THROW(FatTree({2, 2}, {1}), PreconditionError);
  EXPECT_THROW(FatTree({2}, {0}), PreconditionError);
}

TEST(FatTreeLoadsTest, UpDownAccountingHandChecked) {
  const FatTree t = FatTree::uniform(2, 2, false);  // 4 nodes
  FatTreeLoads loads(t);
  loads.addFlow(0, 3, 10);  // NCA at the root (level 2)
  // Level 0 bundles: node 0 up, node 3 down. Level 1: group 0 up, group 1
  // down. Each carries 10.
  EXPECT_DOUBLE_EQ(loads.levelVolume(0), 20);
  EXPECT_DOUBLE_EQ(loads.levelVolume(1), 20);
  EXPECT_DOUBLE_EQ(loads.maxLinkLoad(), 10);
  loads.addFlow(0, 1, 4);  // NCA at level 1: only level-0 bundles
  EXPECT_DOUBLE_EQ(loads.levelVolume(0), 28);
  EXPECT_DOUBLE_EQ(loads.levelVolume(1), 20);
  // Node 0's up bundle now carries 14: the new maximum.
  EXPECT_DOUBLE_EQ(loads.maxLinkLoad(), 14);
}

TEST(FatTreeLoadsTest, FatteningDividesLinkLoad) {
  const FatTree skinny = FatTree::uniform(2, 3, false);
  const FatTree fat = FatTree::uniform(2, 3, true);  // mult 1,2,4
  FatTreeLoads ls(skinny), lf(fat);
  ls.addFlow(0, 7, 80);
  lf.addFlow(0, 7, 80);
  EXPECT_DOUBLE_EQ(ls.maxLinkLoad(), 80);
  // Fat tree: level-2 bundle has multiplicity 4 -> per-link 20; level 0
  // stays 80 though (multiplicity 1) so the max is still at the leaf.
  EXPECT_DOUBLE_EQ(lf.maxLinkLoad(), 80);
  EXPECT_DOUBLE_EQ(lf.levelVolume(2), ls.levelVolume(2));
  // With traffic that never touches the leaves' own bundles more than
  // once, the fat upper levels stop being the bottleneck: check directly.
  FatTreeLoads lf2(fat);
  lf2.addFlow(0, 7, 80);
  lf2.addFlow(1, 6, 80);
  lf2.addFlow(2, 5, 80);
  lf2.addFlow(3, 4, 80);
  // Root bundles carry 4*80 = 320 over multiplicity 4 = 80 per link: equal
  // to the leaf links, not worse.
  EXPECT_DOUBLE_EQ(lf2.maxLinkLoad(), 80);
}

TEST(FatTreeMclTest, SelfAndCoLocatedFlowsFree) {
  const FatTree t = FatTree::uniform(2, 2, false);
  CommGraph g(2);
  g.addFlow(0, 1, 100);
  // Both vertices on node 2: no bundle touched.
  EXPECT_DOUBLE_EQ(fatTreeMcl(t, g, {2, 2}), 0);
}

TEST(FatTreeMapper, ClusteringBeatsLinearOnClusteredTraffic) {
  // A 8x4 rank grid with heavy COLUMN-neighbor traffic: linear mapping
  // pairs row neighbors onto nodes (splitting the heavy edges), while the
  // tile search picks column tiles and keeps them off the network.
  const FatTree t = FatTree::uniform(4, 2, false);  // 16 nodes
  const int c = 2;
  const auto ranks = static_cast<RankId>(t.numNodes() * c);  // 32 = 8x4
  CommGraph g(ranks);
  const auto rankAt = [](int i, int j) {
    return static_cast<RankId>(i * 4 + j);
  };
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i + 1 < 8) g.addExchange(rankAt(i, j), rankAt(i + 1, j), 100);
      if (j + 1 < 4) g.addExchange(rankAt(i, j), rankAt(i, j + 1), 1);
    }
  }
  const auto linear = linearFatTreeMapping(ranks, c);
  const auto mapped = mapToFatTree(g, t, c, Shape{8, 4});
  EXPECT_LT(fatTreeMcl(t, g, mapped), fatTreeMcl(t, g, linear));
  // Validity: a bijection onto node slots.
  std::vector<int> perNode(static_cast<std::size_t>(t.numNodes()), 0);
  for (const NodeId n : mapped) {
    ASSERT_GE(n, 0);
    ASSERT_LT(n, t.numNodes());
    ++perNode[static_cast<std::size_t>(n)];
  }
  for (const int k : perNode) EXPECT_EQ(k, c);
}

TEST(FatTreeMapper, NasWorkloadsMapValidly) {
  const FatTree t = FatTree::uniform(4, 2, true);  // 16 nodes
  const int c = 4;                                 // 64 ranks = 8^2 = 2^6
  for (const char* name : {"BT", "CG"}) {
    const Workload w =
        makeNasByName(name, static_cast<RankId>(t.numNodes() * c));
    const auto mapped = mapToFatTree(w.commGraph(), t, c, w.logicalGrid);
    const auto linear =
        linearFatTreeMapping(static_cast<RankId>(t.numNodes() * c), c);
    EXPECT_LE(fatTreeMcl(t, w.commGraph(), mapped),
              fatTreeMcl(t, w.commGraph(), linear) * 1.2)
        << name;  // never catastrophically worse
  }
}

TEST(FatTreeMapper, SiblingsShareGroups) {
  // With communities matching the leaf-switch size, every community must
  // land entirely inside one leaf group.
  const FatTree t = FatTree::uniform(2, 3, false);  // 8 nodes
  const int c = 2;
  CommGraph g(16);
  for (RankId base = 0; base < 16; base += 4) {
    for (RankId i = 0; i < 4; ++i) {
      for (RankId j = 0; j < 4; ++j) {
        if (i != j) g.addFlow(base + i, base + j, 25);
      }
    }
  }
  const auto mapped = mapToFatTree(g, t, c);
  for (RankId base = 0; base < 16; base += 4) {
    std::set<std::int64_t> groups;
    for (RankId i = 0; i < 4; ++i) {
      groups.insert(t.groupOf(mapped[static_cast<std::size_t>(base + i)], 1));
    }
    EXPECT_EQ(groups.size(), 1u) << "community at " << base;
  }
}

TEST(FatTreeMapper, RejectsMismatchedCounts) {
  const FatTree t = FatTree::uniform(2, 2, false);
  CommGraph g(7);
  EXPECT_THROW(mapToFatTree(g, t, 2), PreconditionError);
}

}  // namespace
}  // namespace rahtm
