// Tests for the rank-pipelined iteration simulation (per-rank stage
// dependencies) and the UniformMinimal routing mode.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "mapping/permutation.hpp"
#include "profile/profile.hpp"
#include "routing/oblivious.hpp"
#include "simnet/simulator.hpp"
#include "topology/torus.hpp"
#include "workloads/workload.hpp"

namespace rahtm {
namespace {

using simnet::Message;
using simnet::Phase;
using simnet::PhaseResult;
using simnet::RoutingMode;
using simnet::SimConfig;

Mapping oneRankPerNode(const Torus& t) {
  Mapping m(static_cast<RankId>(t.numNodes()));
  for (RankId r = 0; r < m.numRanks(); ++r) m.assign(r, r, 0);
  return m;
}

SimConfig cfg1() {
  SimConfig cfg;
  cfg.bytesPerFlit = 1;
  cfg.packetFlits = 4;
  return cfg;
}

TEST(Iteration, SingleStageEqualsPhase) {
  const Torus t = Torus::torus(Shape{2, 2, 2});
  const Mapping m = oneRankPerNode(t);
  Phase phase;
  for (RankId r = 0; r < 8; ++r) phase.push_back({r, static_cast<RankId>((r + 3) % 8), 33});
  const PhaseResult a = simulatePhase(t, m, phase, cfg1());
  const PhaseResult b = simulateIteration(t, m, {phase}, cfg1());
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.networkFlits, b.networkFlits);
}

TEST(Iteration, DependencyDelaysSecondStage) {
  // Rank 0 sends a long message in stage 0; its stage-1 message must wait
  // for the stage-0 exchange to complete, so the total exceeds the
  // concurrent lower bound.
  const Torus t = Torus::mesh(Shape{2});
  Mapping m(2);
  m.assign(0, 0, 0);
  m.assign(1, 1, 0);
  const Phase s0{{0, 1, 64}};
  const Phase s1{{0, 1, 64}};
  const auto both = simulateIteration(t, m, {s0, s1}, cfg1());
  const auto one = simulateIteration(t, m, {s0}, cfg1());
  // Serial stages: roughly twice the single-stage drain.
  EXPECT_GE(both.cycles, 2 * one.cycles - 4);
}

TEST(Iteration, IndependentRanksOverlapStages) {
  // Two disjoint rank pairs: pair A has two serial stages; pair B idles in
  // stage 0 and transmits in stage 1. B's stage-1 message may start only
  // after B's (empty) stage 0, i.e. immediately — no global barrier.
  const Torus t = Torus::mesh(Shape{4});
  Mapping m(4);
  for (RankId r = 0; r < 4; ++r) m.assign(r, r, 0);
  const Phase s0{{0, 1, 256}};
  const Phase s1{{2, 3, 8}};
  const auto res = simulateIteration(t, m, {s0, s1}, cfg1());
  // If a global barrier separated the stages the total would exceed the
  // long message's drain plus the short one; with pipelining the short
  // message finishes inside the long one's shadow.
  const auto longOnly = simulateIteration(t, m, {s0}, cfg1());
  EXPECT_LE(res.cycles, longOnly.cycles + 4);
}

TEST(Iteration, ReceiveDependencyBlocks) {
  // Rank 2's stage-1 send depends on receiving rank 0's stage-0 message.
  const Torus t = Torus::mesh(Shape{3});
  Mapping m(3);
  for (RankId r = 0; r < 3; ++r) m.assign(r, r, 0);
  const Phase s0{{0, 2, 128}};  // long transfer into rank 2
  const Phase s1{{2, 1, 4}};    // rank 2 forwards a small message
  const auto res = simulateIteration(t, m, {s0, s1}, cfg1());
  const auto firstOnly = simulateIteration(t, m, {s0}, cfg1());
  EXPECT_GT(res.cycles, firstOnly.cycles);  // the forward waited
}

TEST(Iteration, FlitConservationAcrossStages) {
  const Torus t = Torus::torus(Shape{2, 2});
  const Workload w = makeCG(4, NasParams{96, 1});
  Mapping m(4);
  for (RankId r = 0; r < 4; ++r) m.assign(r, r, 0);
  std::int64_t totalFlits = 0;
  for (const Phase& p : w.phases) {
    for (const Message& msg : p) {
      totalFlits += std::max<std::int64_t>(1, (msg.bytes + 0) / 1);
    }
  }
  const auto res = simulateIteration(t, m, w.phases, cfg1());
  EXPECT_EQ(res.networkFlits + res.localFlits, totalFlits);
}

TEST(Iteration, RepetitionReachesSteadyState) {
  const Torus t = Torus::torus(Shape{2, 2, 2});
  const Workload w = makeCG(8, NasParams{512, 1});
  const Mapping m = oneRankPerNode(t);
  SimConfig cfg;
  cfg.injectionBandwidth = 4;
  const auto one = commCyclesPerIteration(w, t, m, cfg,
                                          IterationModel::RankPipelined, 1);
  const auto four = commCyclesPerIteration(w, t, m, cfg,
                                           IterationModel::RankPipelined, 4);
  // Per-iteration steady-state time is within 2x of the cold-start time
  // (sanity: repetition amortizes, it does not blow up).
  EXPECT_LE(four, 2 * one);
  EXPECT_GT(four, 0);
}

TEST(RoutingModes, UniformMinimalSpreadsTies) {
  // A single heavy diagonal flow on a 2x2 mesh: uniform-minimal routing
  // must use both L-paths roughly evenly.
  const Torus t = Torus::mesh(Shape{2, 2});
  Mapping m(4);
  for (RankId r = 0; r < 4; ++r) m.assign(r, r, 0);
  Phase phase;
  const auto diag = static_cast<RankId>(t.nodeId(Coord{1, 1}));
  for (int i = 0; i < 64; ++i) phase.push_back({0, diag, 16});
  SimConfig cfg = cfg1();
  cfg.routing = RoutingMode::UniformMinimal;
  cfg.injectionBandwidth = 8;
  const auto res = simulatePhase(t, m, phase, cfg);
  // 64 messages x 16 flits = 1024 flits over two 2-hop paths: the busiest
  // link should carry close to half the traffic, not all of it.
  EXPECT_LT(res.maxChannelFlits, 0.7 * 1024);
  EXPECT_GT(res.maxChannelFlits, 0.3 * 1024);
}

TEST(RoutingModes, AdaptiveTieBreakIsSeedStable) {
  const Torus t = Torus::torus(Shape{2, 2, 2});
  const Workload w = makeCG(8, NasParams{256, 1});
  Mapping m(8);
  for (RankId r = 0; r < 8; ++r) m.assign(r, r, 0);
  SimConfig a = cfg1(), b = cfg1(), c = cfg1();
  c.seed = 999;
  const auto ra = simulateIteration(t, m, w.phases, a);
  const auto rb = simulateIteration(t, m, w.phases, b);
  const auto rc = simulateIteration(t, m, w.phases, c);
  EXPECT_EQ(ra.cycles, rb.cycles);  // same seed, same run
  (void)rc;                         // different seed must still complete
  EXPECT_EQ(rc.networkFlits + rc.localFlits, ra.networkFlits + ra.localFlits);
}

}  // namespace
}  // namespace rahtm
