// Tests for the mapping-quality report module.

#include <gtest/gtest.h>

#include <numeric>

#include "routing/oblivious.hpp"
#include "routing/report.hpp"
#include "topology/torus.hpp"
#include "workloads/workload.hpp"

namespace rahtm {
namespace {

TEST(LoadReport, EmptyTrafficIsPerfectlyFairAndIdle) {
  const Torus t = Torus::torus(Shape{4, 4});
  const ChannelLoadMap loads(t);
  const LoadDistribution d = summarizeLoads(loads);
  EXPECT_EQ(d.channels, t.numChannels());
  EXPECT_EQ(d.idleChannels, d.channels);
  EXPECT_DOUBLE_EQ(d.max, 0);
  EXPECT_DOUBLE_EQ(d.fairness, 1.0);  // degenerate all-zero case
}

TEST(LoadReport, SingleHotChannel) {
  const Torus t = Torus::torus(Shape{4});
  ChannelLoadMap loads(t);
  loads.add(t.channelId(0, 0, Dir::Plus), 80);
  const LoadDistribution d = summarizeLoads(loads);
  EXPECT_DOUBLE_EQ(d.max, 80);
  EXPECT_EQ(d.channels, 8);
  EXPECT_EQ(d.idleChannels, 7);
  EXPECT_DOUBLE_EQ(d.mean, 10);
  // Jain's index for one active channel out of 8 = 1/8.
  EXPECT_NEAR(d.fairness, 1.0 / 8, 1e-12);
}

TEST(LoadReport, UniformLoadsAreFair) {
  const Torus t = Torus::torus(Shape{4});
  ChannelLoadMap loads(t);
  for (NodeId n = 0; n < 4; ++n) {
    loads.add(t.channelId(n, 0, Dir::Plus), 5);
    loads.add(t.channelId(n, 0, Dir::Minus), 5);
  }
  const LoadDistribution d = summarizeLoads(loads);
  EXPECT_NEAR(d.fairness, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.p50, 5);
  EXPECT_DOUBLE_EQ(d.p95, 5);
  EXPECT_EQ(d.idleChannels, 0);
}

TEST(MappingReportTest, ConsistentWithDirectEvaluators) {
  const Torus t = Torus::torus(Shape{2, 2, 2});
  const Workload w = makeCG(8);
  const CommGraph g = w.commGraph();
  std::vector<NodeId> place(8);
  std::iota(place.begin(), place.end(), 0);
  const MappingReport r = reportMapping(t, g, place);
  EXPECT_NEAR(r.uniformMinimal.max, placementMcl(t, g, place), 1e-9);
  EXPECT_NEAR(
      r.dimensionOrder.max,
      placementMcl(t, g, place, LoadModel::DimensionOrder), 1e-9);
  // DOR concentrates on fewer channels: fairness cannot exceed MAR's.
  EXPECT_LE(r.dimensionOrder.fairness, r.uniformMinimal.fairness + 1e-9);
  EXPECT_GT(r.hopBytes, 0);
  EXPECT_GT(r.avgHops, 0);
  const std::string text = formatReport(r);
  EXPECT_NE(text.find("MAR model"), std::string::npos);
  EXPECT_NE(text.find("hop-bytes"), std::string::npos);
}

}  // namespace
}  // namespace rahtm
