/// Tests for the run-forensics layer: flight-recorder ring semantics,
/// heartbeat monotonicity under the thread pool, watchdog escalation on an
/// artificial stall, post-mortem artifact schema, and the tracer event cap.

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "exec/thread_pool.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heartbeat.hpp"
#include "obs/json_reader.hpp"
#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace rahtm::obs {
namespace {

// ---- Flight recorder ------------------------------------------------------

TEST(FlightRecorder, RingWrapsKeepingNewestEvents) {
  FlightRecorder rec(/*capacityPerThread=*/8, /*maxThreads=*/2);
  for (int i = 0; i < 20; ++i) {
    rec.record(FrEvent::Custom, i, 100 + i);
  }
  EXPECT_EQ(rec.droppedEvents(), 0);  // overwrites are not drops
  EXPECT_EQ(rec.totalRecorded(), 20u);

  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].total, 20u);
  ASSERT_EQ(snap[0].events.size(), 8u);  // ring capacity
  for (std::size_t i = 0; i < snap[0].events.size(); ++i) {
    // Newest 8 of 20, oldest first: a = 12..19.
    EXPECT_EQ(snap[0].events[i].a, static_cast<std::int64_t>(12 + i));
    EXPECT_EQ(snap[0].events[i].code,
              static_cast<std::uint16_t>(FrEvent::Custom));
  }
}

TEST(FlightRecorder, CopySlotReturnsNewestBoundedByMax) {
  FlightRecorder rec(8, 1);
  for (int i = 0; i < 20; ++i) rec.record(FrEvent::Custom, i);
  FlightEventRecord out[4];
  std::uint64_t total = 0;
  const std::size_t n = rec.copySlot(0, out, 4, &total);
  ASSERT_EQ(n, 4u);
  EXPECT_EQ(total, 20u);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i].a, static_cast<std::int64_t>(16 + i));
  }
}

TEST(FlightRecorder, SlotExhaustionCountsDrops) {
  FlightRecorder rec(8, /*maxThreads=*/1);
  rec.record(FrEvent::Custom, 1);  // this thread claims the only slot
  std::thread other([&] {
    for (int i = 0; i < 3; ++i) rec.record(FrEvent::Custom, i);
  });
  other.join();
  EXPECT_EQ(rec.droppedEvents(), 3);
  EXPECT_EQ(rec.totalRecorded(), 1u);
  EXPECT_EQ(rec.threadSlots(), 1);
}

TEST(FlightRecorder, DisabledRecorderIsSilent) {
  FlightRecorder rec(8, 2);
  rec.setEnabled(false);
  for (int i = 0; i < 5; ++i) rec.record(FrEvent::Custom, i);
  EXPECT_EQ(rec.totalRecorded(), 0u);
  EXPECT_EQ(rec.droppedEvents(), 0);  // off is off, not dropping
  rec.setEnabled(true);
  rec.record(FrEvent::Custom, 42);
  EXPECT_EQ(rec.totalRecorded(), 1u);
}

TEST(FlightRecorder, EventNamesCoverAllCodes) {
  for (int c = 0; c < static_cast<int>(FrEvent::kCount); ++c) {
    EXPECT_STRNE(frEventName(static_cast<FrEvent>(c)), "unknown");
  }
}

// ---- Heartbeats -----------------------------------------------------------

TEST(Heartbeats, MonotoneUnderThreadPool) {
  Heartbeats& hb = Heartbeats::instance();
  const std::uint64_t pulseBefore = hb.value(Pulse::AnnealIterations);
  const std::uint64_t poolBefore = hb.value(Pulse::PoolTasks);

  exec::ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  pool.parallelFor(kTasks, [&](std::size_t) {
    hb.beat(Pulse::AnnealIterations);
  });

  // Each task beats once, and the pool itself beats PoolTasks per task.
  EXPECT_EQ(hb.value(Pulse::AnnealIterations), pulseBefore + kTasks);
  EXPECT_GE(hb.value(Pulse::PoolTasks), poolBefore + kTasks);

  // Successive reads never go backwards.
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t v = hb.value(Pulse::AnnealIterations);
    EXPECT_GE(v, last);
    last = v;
  }
}

TEST(Heartbeats, PhaseStackNestsAndUnwinds) {
  Heartbeats& hb = Heartbeats::instance();
  const int base = hb.phaseDepth();
  {
    PhaseScope outer("test.outer");
    EXPECT_EQ(hb.phaseDepth(), base + 1);
    EXPECT_STREQ(hb.currentPhase(), "test.outer");
    EXPECT_GT(hb.currentPhaseStartUs(), 0);
    {
      PhaseScope inner("test.inner");
      EXPECT_EQ(hb.phaseDepth(), base + 2);
      EXPECT_STREQ(hb.currentPhase(), "test.inner");
      EXPECT_STREQ(hb.phaseAt(base), "test.outer");
    }
    EXPECT_STREQ(hb.currentPhase(), "test.outer");
  }
  EXPECT_EQ(hb.phaseDepth(), base);
}

// ---- Watchdog -------------------------------------------------------------

TEST(Watchdog, ParsePhaseDeadlines) {
  const auto d = parsePhaseDeadlines("rahtm.map=120,simnet=30.5");
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].first, "rahtm.map");
  EXPECT_DOUBLE_EQ(d[0].second, 120.0);
  EXPECT_EQ(d[1].first, "simnet");
  EXPECT_DOUBLE_EQ(d[1].second, 30.5);
  EXPECT_TRUE(parsePhaseDeadlines("").empty());
  EXPECT_THROW(parsePhaseDeadlines("oops"), ParseError);
  EXPECT_THROW(parsePhaseDeadlines("a=notanumber"), ParseError);
}

TEST(Watchdog, DeadlineForUsesLongestApplicablePrefix) {
  WatchdogConfig cfg;
  cfg.defaultDeadlineSec = 60.0;
  cfg.phaseDeadlines = {{"rahtm.phase", 5.0}, {"simnet", 7.0}};
  Watchdog wd(cfg);
  EXPECT_DOUBLE_EQ(wd.deadlineFor("rahtm.phase.cluster"), 5.0);
  EXPECT_DOUBLE_EQ(wd.deadlineFor("simnet.run"), 7.0);
  EXPECT_DOUBLE_EQ(wd.deadlineFor("rahtm.map"), 60.0);
  EXPECT_DOUBLE_EQ(wd.deadlineFor(nullptr), 60.0);
}

TEST(Watchdog, QuietOutsideAnyPhase) {
  WatchdogConfig cfg;
  cfg.pollMs = 5;
  cfg.defaultDeadlineSec = 0.02;
  cfg.action = WatchdogAction::Log;
  Watchdog wd(cfg);
  wd.start();
  ASSERT_TRUE(wd.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  wd.stop();
  EXPECT_EQ(wd.stallsDetected(), 0);
}

TEST(Watchdog, EscalatesOnArtificialStallAndDumpsArtifact) {
  const std::string dir = ::testing::TempDir();
  WatchdogConfig cfg;
  cfg.pollMs = 5;
  cfg.defaultDeadlineSec = 0.03;
  cfg.action = WatchdogAction::Abort;  // hook below replaces the abort
  cfg.postmortemDir = dir;

  std::atomic<int> maxStage{0};
  std::string stalledPhase;
  std::mutex mu;
  Watchdog wd(cfg);
  wd.setOnStall([&](int stage, const std::string& phase, double) {
    std::lock_guard<std::mutex> lock(mu);
    maxStage.store(stage);
    stalledPhase = phase;
  });
  wd.start();

  {
    PhaseScope phase("test.stall");
    const auto start = std::chrono::steady_clock::now();
    while (maxStage.load() < 3 &&
           std::chrono::steady_clock::now() - start <
               std::chrono::seconds(10)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  wd.stop();

  EXPECT_GE(wd.stallsDetected(), 1);
  EXPECT_EQ(maxStage.load(), 3);
  EXPECT_EQ(wd.lastStage(), 3);
  {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(stalledPhase, "test.stall");
  }

  // The stage-2 escalation wrote a stall artifact; it must parse and
  // validate as rahtm.postmortem/v1.
  const std::string path = postmortemPathFor("stall", dir);
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const JsonValue doc = parseJson(ss.str());
  const std::vector<std::string> problems = validatePostmortemJson(doc);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
  EXPECT_EQ(doc.stringOr("reason", ""), "stall");
}

TEST(Watchdog, ProgressSuppressesEscalation) {
  WatchdogConfig cfg;
  cfg.pollMs = 5;
  cfg.defaultDeadlineSec = 0.05;
  cfg.action = WatchdogAction::Log;
  Watchdog wd(cfg);
  wd.start();
  {
    PhaseScope phase("test.live");
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start <
           std::chrono::milliseconds(200)) {
      Heartbeats::instance().beat(Pulse::RefineProbes);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  wd.stop();
  EXPECT_EQ(wd.stallsDetected(), 0);
}

// ---- Post-mortem artifact schema ------------------------------------------

TEST(Postmortem, ManualDumpMatchesSchema) {
  // Make sure there is traffic to capture: a metrics registry, recorder
  // events, heartbeats and an open phase.
  MetricsRegistry reg;
  registerStandardMetrics(reg);
  MetricsRegistry* prev = metrics();
  setMetrics(&reg);
  reg.counter("rahtm.subproblems").add(3);
  FlightRecorder::instance().record(FrEvent::Custom, 7, 9);
  Heartbeats::instance().beat(Pulse::SimplexPivots, 11);
  PhaseScope phase("test.postmortem");

  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(writePostmortemNow("manual", dir.c_str()));
  setMetrics(prev);

  const std::string path = postmortemPathFor("manual", dir);
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const JsonValue doc = parseJson(ss.str());

  const std::vector<std::string> problems = validatePostmortemJson(doc);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());

  // Golden structural expectations, test_report_ledger style.
  EXPECT_EQ(doc.stringOr("schema", ""), kPostmortemSchema);
  EXPECT_EQ(doc.stringOr("reason", ""), "manual");
  const JsonValue* hb = doc.find("heartbeats");
  ASSERT_NE(hb, nullptr);
  EXPECT_GE(hb->numberOr("simplex_pivots", 0), 11.0);
  const JsonValue* rec = doc.find("recorder");
  ASSERT_NE(rec, nullptr);
  EXPECT_GT(rec->numberOr("capacity", 0), 0.0);
  ASSERT_NE(rec->find("threads"), nullptr);
  const JsonValue* env = doc.find("environment");
  ASSERT_NE(env, nullptr);
  EXPECT_FALSE(env->stringOr("os", "").empty());
  const JsonValue* met = doc.find("metrics");
  ASSERT_NE(met, nullptr);
  const JsonValue* counters = met->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->numberOr("rahtm.subproblems", 0), 3.0);
  const JsonValue* stack = doc.find("phase_stack");
  ASSERT_NE(stack, nullptr);
  // The memory section: per-account counters from the MemRegistry plus the
  // budget state, written from relaxed atomics (signal-safe path).
  const JsonValue* mem = doc.find("memory");
  ASSERT_NE(mem, nullptr);
  const JsonValue* accounts = mem->find("accounts");
  ASSERT_NE(accounts, nullptr);
  const JsonValue* obsAccount = accounts->find("obs");
  ASSERT_NE(obsAccount, nullptr);
  // stateLocked() tracks the post-mortem buffers under "obs" before the
  // dump, so this account is live by construction.
  EXPECT_GT(obsAccount->numberOr("peak_bytes", 0), 0.0);
  EXPECT_GE(mem->numberOr("accounted_peak_bytes", -1), 0.0);
  EXPECT_GE(mem->numberOr("budget_stage", -1), 0.0);
}

TEST(Postmortem, ValidatorRejectsWrongSchema) {
  const JsonValue doc = parseJson("{\"schema\": \"bogus/v9\"}");
  EXPECT_FALSE(validatePostmortemJson(doc).empty());
}

TEST(Postmortem, PathNaming) {
  EXPECT_EQ(postmortemPathFor("sigsegv", "/tmp/x"),
            "/tmp/x/postmortem.sigsegv.json");
  EXPECT_EQ(postmortemPathFor("stall", ""), "./postmortem.stall.json");
}

// ---- Tracer event cap -----------------------------------------------------

TEST(TraceCap, DropsBeyondCapAndCountsThem) {
  Tracer t;
  t.setEventCap(4);
  for (int i = 0; i < 4; ++i) {
    t.instant("burst", "test");
  }
  EXPECT_EQ(t.droppedEvents(), 0);
  t.instant("overflow", "test");
  EXPECT_EQ(t.droppedEvents(), 1);
  const SpanId id = t.beginSpan("late", "test");
  EXPECT_EQ(id, kNoSpan);
  EXPECT_EQ(t.droppedEvents(), 2);
  // endSpan/attr tolerate the sentinel.
  EXPECT_EQ(t.endSpan(kNoSpan), 0);
  t.attr(kNoSpan, "k", "1");

  std::ostringstream os;
  t.writeSummary(os);
  EXPECT_NE(os.str().find("\"dropped_events\":2"), std::string::npos)
      << os.str();
}

TEST(TraceCap, ScopedSpanStillTimesWhenDropped) {
  Tracer t;
  t.setEventCap(0);  // everything drops
  ScopedSpan span(&t, "work", "test");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double sec = span.close();
  EXPECT_GE(sec, 0.004);  // steady-clock fallback still measured the span
  EXPECT_GE(t.droppedEvents(), 1);
}

}  // namespace
}  // namespace rahtm::obs
