// Tests for the IPM-style profiler: simulated profiling runs, comm/compute
// calibration (the Fig. 9 substitution), and profile serialization.

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "mapping/permutation.hpp"
#include "profile/profile.hpp"
#include "topology/torus.hpp"

namespace rahtm {
namespace {

simnet::SimConfig testSim() {
  simnet::SimConfig cfg;
  cfg.bytesPerFlit = 8;
  cfg.packetFlits = 8;
  return cfg;
}

TEST(Calibration, MatchesTargetFraction) {
  // compute = comm * (1-f)/f makes comm/(comm+compute) == f.
  const double comm = 1000;
  for (const double f : {0.35, 0.5, 0.7}) {
    const double compute = calibrateComputeCycles(comm, f);
    EXPECT_NEAR(comm / (comm + compute), f, 1e-12);
  }
  EXPECT_THROW(calibrateComputeCycles(100, 0.0), PreconditionError);
  EXPECT_THROW(calibrateComputeCycles(100, 1.0), PreconditionError);
}

TEST(ProfileRun, RecordsMatrixAndTimes) {
  const Torus t = Torus::torus(Shape{2, 2});
  const Workload w = makeBT(16, NasParams{256, 3});
  DefaultMapper mapper;
  const Mapping m = mapper.map(w.commGraph(), t, 4);
  const Profile p = profileRun(w, t, m, testSim(), 500);
  EXPECT_EQ(p.benchmark, "BT");
  EXPECT_EQ(p.ranks, 16);
  EXPECT_EQ(p.iterations, 3);
  EXPECT_GT(p.commTimePerIter, 0);
  EXPECT_DOUBLE_EQ(p.computeTimePerIter, 500);
  EXPECT_DOUBLE_EQ(p.matrix.totalVolume(), w.bytesPerIteration());
  EXPECT_GT(p.totalTime(), 0);
  EXPECT_GT(p.commFraction(), 0);
  EXPECT_LT(p.commFraction(), 1);
}

TEST(ProfileRun, CommFractionCalibratesToPaperTarget) {
  const Torus t = Torus::torus(Shape{2, 2});
  const Workload w = makeCG(16, NasParams{512, 2});
  DefaultMapper mapper;
  const Mapping m = mapper.map(w.commGraph(), t, 4);
  const auto comm = static_cast<double>(
      commCyclesPerIteration(w, t, m, testSim()));
  const double compute = calibrateComputeCycles(comm, w.commFraction);
  const Profile p = profileRun(w, t, m, testSim(), compute);
  EXPECT_NEAR(p.commFraction(), 0.70, 1e-9);
}

TEST(ProfileIo, RoundTrips) {
  Profile p;
  p.benchmark = "CG";
  p.ranks = 8;
  p.iterations = 5;
  p.commTimePerIter = 123.5;
  p.computeTimePerIter = 456.25;
  p.matrix = CommGraph(8);
  p.matrix.addFlow(0, 1, 100);
  p.matrix.addFlow(3, 7, 2.5);
  std::stringstream ss;
  writeProfile(ss, p);
  const Profile back = readProfile(ss);
  EXPECT_EQ(back.benchmark, "CG");
  EXPECT_EQ(back.ranks, 8);
  EXPECT_EQ(back.iterations, 5);
  EXPECT_DOUBLE_EQ(back.commTimePerIter, 123.5);
  EXPECT_DOUBLE_EQ(back.computeTimePerIter, 456.25);
  EXPECT_TRUE(back.matrix == p.matrix);
}

TEST(ProfileIo, RejectsMalformedInput) {
  {
    std::stringstream ss("benchmark X\n");  // missing ranks
    EXPECT_THROW(readProfile(ss), ParseError);
  }
  {
    std::stringstream ss("ranks 4\nflows 2\n0 1 5\n");  // flow count short
    EXPECT_THROW(readProfile(ss), ParseError);
  }
  {
    std::stringstream ss("ranks 4\nbogus_key 1\n");
    EXPECT_THROW(readProfile(ss), ParseError);
  }
  {
    std::stringstream ss("ranks 4\nflows 1\n0 1\n");  // malformed flow
    EXPECT_THROW(readProfile(ss), ParseError);
  }
}

TEST(CommRecorderTest, AggregatesSends) {
  CommRecorder rec(4);
  rec.recordSend(0, 1, 10);
  rec.recordSend(0, 1, 20);
  rec.recordSend(2, 3, 5);
  EXPECT_DOUBLE_EQ(rec.matrix().volume(0, 1), 30);
  EXPECT_DOUBLE_EQ(rec.matrix().volume(2, 3), 5);
  EXPECT_EQ(rec.matrix().numFlows(), 2u);
}

TEST(ProfileRun, BetterMappingLowersCommTime) {
  // The profiler must reflect mapping quality: co-locating heavy pairs cuts
  // simulated communication time.
  const Torus t = Torus::torus(Shape{2, 2});
  Workload w;
  w.name = "pairs";
  w.ranks = 8;
  w.iterations = 1;
  w.logicalGrid = Shape{8};
  simnet::Phase phase;
  for (RankId r = 0; r < 8; r += 2) {
    phase.push_back({r, static_cast<RankId>(r + 1), 4096});
  }
  w.phases.push_back(phase);

  Mapping together(8);  // heavy pairs co-located
  for (RankId r = 0; r < 8; ++r) {
    together.assign(r, static_cast<NodeId>(r / 2), r % 2);
  }
  Mapping apart(8);  // pairs split across nodes
  for (RankId r = 0; r < 8; ++r) {
    apart.assign(r, static_cast<NodeId>(r % 4), static_cast<int>(r / 4));
  }
  const auto ct = commCyclesPerIteration(w, t, together, testSim());
  const auto ca = commCyclesPerIteration(w, t, apart, testSim());
  EXPECT_LT(ct, ca);
}

}  // namespace
}  // namespace rahtm
