// Tests for the Mapping type, mapfile I/O and the baseline mappers:
// dimension permutations (ABCDET family), Hilbert curve and Rubik-style
// hierarchical tiling.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/error.hpp"
#include "mapping/hilbert.hpp"
#include "mapping/mapfile.hpp"
#include "mapping/permutation.hpp"
#include "mapping/rubik.hpp"
#include "topology/presets.hpp"

namespace rahtm {
namespace {

CommGraph emptyGraph(RankId ranks) { return CommGraph(ranks); }

/// Every mapper must produce a complete, concentration-respecting mapping.
void expectValid(const Mapping& m, const Torus& topo, int c) {
  EXPECT_TRUE(m.complete());
  const std::string err = m.validate(topo, c);
  EXPECT_TRUE(err.empty()) << err;
}

TEST(MappingType, ValidateCatchesViolations) {
  const Torus t = Torus::torus(Shape{2, 2});
  Mapping m(8);
  for (RankId r = 0; r < 8; ++r) m.assign(r, static_cast<NodeId>(r / 2), r % 2);
  EXPECT_TRUE(m.validate(t, 2).empty());

  Mapping overfull(8);
  for (RankId r = 0; r < 8; ++r) overfull.assign(r, 0, r);
  EXPECT_FALSE(overfull.validate(t, 2).empty());  // slots out of range

  Mapping dupSlot(2);
  dupSlot.assign(0, 1, 0);
  dupSlot.assign(1, 1, 0);
  EXPECT_FALSE(dupSlot.validate(t, 2).empty());

  Mapping incomplete(2);
  incomplete.assign(0, 0, 0);
  EXPECT_FALSE(incomplete.complete());
  EXPECT_FALSE(incomplete.validate(t, 2).empty());
}

TEST(MappingType, RanksOnNodeOrderedBySlot) {
  Mapping m(4);
  m.assign(0, 1, 1);
  m.assign(1, 1, 0);
  m.assign(2, 0, 0);
  m.assign(3, 1, 2);
  EXPECT_EQ(m.ranksOnNode(1), (std::vector<RankId>{1, 0, 3}));
  EXPECT_EQ(m.ranksOnNode(0), (std::vector<RankId>{2}));
  EXPECT_TRUE(m.ranksOnNode(2).empty());
}

TEST(PermutationMapperTest, DefaultEqualsAbcdet) {
  const Torus t = bgqPartition128();  // 4x4x4x2 => spec letters ABCD + T
  const int c = 4;
  const CommGraph g = emptyGraph(static_cast<RankId>(t.numNodes() * c));
  DefaultMapper def;
  PermutationMapper abcdt("ABCDT");
  const Mapping m1 = def.map(g, t, c);
  const Mapping m2 = abcdt.map(g, t, c);
  for (RankId r = 0; r < g.numRanks(); ++r) {
    EXPECT_EQ(m1.nodeOf(r), m2.nodeOf(r)) << r;
    EXPECT_EQ(m1.slotOf(r), m2.slotOf(r)) << r;
  }
}

TEST(PermutationMapperTest, RightmostLetterVariesFastest) {
  const Torus t = Torus::torus(Shape{2, 2});
  PermutationMapper tab("TAB");  // T slowest: consecutive ranks walk B
  const CommGraph g = emptyGraph(8);
  const Mapping m = tab.map(g, t, 2);
  // rank 0 -> (0,0) slot 0; rank 1 -> (0,1) slot 0; rank 2 -> (1,0) slot 0.
  EXPECT_EQ(m.nodeOf(0), t.nodeId(Coord{0, 0}));
  EXPECT_EQ(m.slotOf(0), 0);
  EXPECT_EQ(m.nodeOf(1), t.nodeId(Coord{0, 1}));
  EXPECT_EQ(m.nodeOf(2), t.nodeId(Coord{1, 0}));
  EXPECT_EQ(m.nodeOf(4), t.nodeId(Coord{0, 0}));  // wraps into slot 1
  EXPECT_EQ(m.slotOf(4), 1);
}

TEST(PermutationMapperTest, AllSpecsProduceValidMappings) {
  const Torus t = bgqPartition128();
  const int c = 2;
  const CommGraph g = emptyGraph(static_cast<RankId>(t.numNodes() * c));
  for (const std::string spec : {"ABCDT", "TABCD", "ACBDT", "DCBAT", "TDCBA"}) {
    PermutationMapper pm(spec);
    expectValid(pm.map(g, t, c), t, c);
  }
}

TEST(PermutationMapperTest, RejectsBadSpecs) {
  const Torus t = Torus::torus(Shape{2, 2});
  const CommGraph g = emptyGraph(8);
  EXPECT_THROW(PermutationMapper("AB").map(g, t, 2), ParseError);    // no T
  EXPECT_THROW(PermutationMapper("AAT").map(g, t, 2), ParseError);   // dup
  EXPECT_THROW(PermutationMapper("AXT").map(g, t, 2), ParseError);   // bad dim
  EXPECT_THROW(PermutationMapper("ABCT").map(g, t, 2), ParseError);  // too long
}

TEST(PermutationMapperTest, RankCountMustMatch) {
  const Torus t = Torus::torus(Shape{2, 2});
  PermutationMapper pm("ABT");
  const CommGraph g = emptyGraph(7);
  EXPECT_THROW(pm.map(g, t, 2), PreconditionError);
}

TEST(RandomMapperTest, ValidAndSeedDeterministic) {
  const Torus t = Torus::torus(Shape{2, 2, 2});
  const CommGraph g = emptyGraph(16);
  RandomMapper a(7), b(7), c(8);
  const Mapping ma = a.map(g, t, 2);
  const Mapping mb = b.map(g, t, 2);
  const Mapping mc = c.map(g, t, 2);
  expectValid(ma, t, 2);
  bool sameAsDifferentSeed = true;
  for (RankId r = 0; r < 16; ++r) {
    EXPECT_EQ(ma.nodeOf(r), mb.nodeOf(r));
    sameAsDifferentSeed &= (ma.nodeOf(r) == mc.nodeOf(r));
  }
  EXPECT_FALSE(sameAsDifferentSeed);
}

// ---- Hilbert ---------------------------------------------------------------

TEST(HilbertCurve, VisitsEveryCellOnce) {
  for (const auto& [bits, dims] : std::vector<std::pair<int, int>>{
           {2, 2}, {1, 4}, {3, 2}, {2, 3}}) {
    const std::uint64_t total = std::uint64_t{1}
                                << static_cast<unsigned>(bits * dims);
    std::set<std::vector<std::uint32_t>> seen;
    for (std::uint64_t i = 0; i < total; ++i) {
      seen.insert(hilbertIndexToCoords(i, bits, dims));
    }
    EXPECT_EQ(seen.size(), total) << bits << "b " << dims << "d";
  }
}

TEST(HilbertCurve, ConsecutiveIndicesAreNeighbors) {
  const int bits = 2, dims = 4;  // the paper's ABCD case: 4x4x4x4
  const std::uint64_t total = std::uint64_t{1}
                              << static_cast<unsigned>(bits * dims);
  auto prev = hilbertIndexToCoords(0, bits, dims);
  for (std::uint64_t i = 1; i < total; ++i) {
    const auto cur = hilbertIndexToCoords(i, bits, dims);
    int diff = 0;
    for (int d = 0; d < dims; ++d) {
      diff += std::abs(static_cast<int>(cur[static_cast<std::size_t>(d)]) -
                       static_cast<int>(prev[static_cast<std::size_t>(d)]));
    }
    EXPECT_EQ(diff, 1) << "step " << i;
    prev = cur;
  }
}

TEST(HilbertCurve, IndexCoordsRoundTrip) {
  const int bits = 3, dims = 3;
  for (std::uint64_t i = 0; i < 512; ++i) {
    EXPECT_EQ(hilbertCoordsToIndex(hilbertIndexToCoords(i, bits, dims), bits),
              i);
  }
}

TEST(HilbertMapperTest, ValidOnBgqShape) {
  const Torus t = bgqPartition512();  // Hilbert over ABCD, dimension order E,T
  const int c = 2;
  const CommGraph g = emptyGraph(static_cast<RankId>(t.numNodes() * c));
  HilbertMapper hm;
  const Mapping m = hm.map(g, t, c);
  expectValid(m, t, c);
  // Consecutive node-groups follow the curve: ranks 2c-1 and 2c (crossing
  // an E/T boundary into the next Hilbert cell) sit on adjacent ABCD cells.
  const Coord a = t.coordOf(m.nodeOf(static_cast<RankId>(2 * c - 1)));
  const Coord b = t.coordOf(m.nodeOf(static_cast<RankId>(2 * c)));
  int diff = 0;
  for (std::size_t d = 0; d + 1 < t.ndims(); ++d) diff += std::abs(a[d] - b[d]);
  EXPECT_EQ(diff, 1);
}

// ---- Rubik / RHT -------------------------------------------------------------

TEST(RubikMapperTest, AutoConfigIsValid) {
  const Torus t = bgqPartition128();
  const int c = 2;
  const auto ranks = static_cast<RankId>(t.numNodes() * c);
  RubikMapper rm = RubikMapper::autoFor(ranks, t, c);
  const CommGraph g = emptyGraph(ranks);
  expectValid(rm.map(g, t, c), t, c);
  // Tiles hold one block's worth of ranks.
  const auto& cfg = rm.config();
  std::int64_t tileVol = 1, blockVol = 1;
  for (std::size_t d = 0; d < cfg.appTile.size(); ++d) tileVol *= cfg.appTile[d];
  for (std::size_t d = 0; d < cfg.machineBlock.size(); ++d) {
    blockVol *= cfg.machineBlock[d];
  }
  EXPECT_EQ(tileVol, blockVol * c);
}

TEST(RubikMapperTest, TileRanksLandInOneBlock) {
  const Torus t = Torus::torus(Shape{4, 4});
  const int c = 2;
  RubikConfig cfg;
  cfg.appShape = Shape{4, 8};
  cfg.appTile = Shape{2, 4};  // 8 ranks per tile = 4 nodes x c
  cfg.machineBlock = Shape{2, 2};
  RubikMapper rm(cfg);
  const CommGraph g = emptyGraph(32);
  const Mapping m = rm.map(g, t, c);
  expectValid(m, t, c);
  // All ranks of the first tile occupy the first 2x2 machine block.
  const Torus appGrid = Torus::mesh(cfg.appShape);
  for (RankId r = 0; r < 32; ++r) {
    const Coord ap = appGrid.coordOf(r);
    if (ap[0] < 2 && ap[1] < 4) {
      const Coord mc = t.coordOf(m.nodeOf(r));
      EXPECT_LT(mc[0], 2);
      EXPECT_LT(mc[1], 2);
    }
  }
}

TEST(RubikMapperTest, RejectsMismatchedShapes) {
  const Torus t = Torus::torus(Shape{4, 4});
  RubikConfig cfg;
  cfg.appShape = Shape{4, 8};
  cfg.appTile = Shape{3, 4};  // does not divide
  cfg.machineBlock = Shape{2, 2};
  EXPECT_THROW(RubikMapper{cfg}, PreconditionError);
}

// ---- Mapfile ----------------------------------------------------------------

TEST(Mapfile, RoundTrips) {
  const Torus t = Torus::torus(Shape{2, 2, 2});
  const CommGraph g = emptyGraph(16);
  RandomMapper rm(3);
  const Mapping m = rm.map(g, t, 2);
  std::stringstream ss;
  writeMapfile(ss, m, t);
  const Mapping back = readMapfile(ss, t);
  ASSERT_EQ(back.numRanks(), m.numRanks());
  for (RankId r = 0; r < m.numRanks(); ++r) {
    EXPECT_EQ(back.nodeOf(r), m.nodeOf(r));
    EXPECT_EQ(back.slotOf(r), m.slotOf(r));
  }
}

TEST(Mapfile, RejectsMalformedLines) {
  const Torus t = Torus::torus(Shape{2, 2});
  {
    std::stringstream ss("0 0\n");  // too few fields
    EXPECT_THROW(readMapfile(ss, t), ParseError);
  }
  {
    std::stringstream ss("0 5 0\n");  // coordinate out of range
    EXPECT_THROW(readMapfile(ss, t), ParseError);
  }
  {
    std::stringstream ss("0 0 -1\n");  // negative slot
    EXPECT_THROW(readMapfile(ss, t), ParseError);
  }
  {
    std::stringstream ss("# comment only\n");
    const Mapping m = readMapfile(ss, t);
    EXPECT_EQ(m.numRanks(), 0);
  }
}

}  // namespace
}  // namespace rahtm
