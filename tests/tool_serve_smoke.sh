#!/usr/bin/env bash
# End-to-end pin of the serve daemon's batch mode against the one-shot tool:
# the same request solved through `rahtm_serve --stdin` must produce a
# mapfile byte-identical to `rahtm_map`'s, responses must come back in
# request order, and the NDJSON response stream must pass
# `rahtm_bench --validate`.
#
# usage: tool_serve_smoke.sh RAHTM_MAP RAHTM_SERVE RAHTM_BENCH WORKDIR
set -euo pipefail

MAP=$1
SERVE=$2
BENCH=$3
DIR=$4

rm -rf "$DIR"
mkdir -p "$DIR"

# Reference: the offline tool, one shot.
"$MAP" --machine 2x2x2 --concentration 2 --benchmark CG --leaf-milp 4 \
  --out "$DIR/oneshot.map"

# The same solve twice through the daemon: the first request populates the
# artifact cache, the second must reuse it — and both mapfiles must still be
# bit-identical to the one-shot reference.
cat > "$DIR/requests.ndjson" <<'EOF'
{"schema":"rahtm.serve.request/v1","id":"cold","machine":"2x2x2","concentration":2,"benchmark":"CG","leaf_milp":4}
{"schema":"rahtm.serve.request/v1","id":"warm","machine":"2x2x2","concentration":2,"benchmark":"CG","leaf_milp":4}
EOF
"$SERVE" --stdin --threads 2 --map-out-dir "$DIR" \
  < "$DIR/requests.ndjson" > "$DIR/responses.ndjson"

cmp "$DIR/oneshot.map" "$DIR/cold.map"
cmp "$DIR/oneshot.map" "$DIR/warm.map"

# Responses come back in request order.
ids=$(sed -n 's/.*"id":"\([a-z]*\)".*/\1/p' "$DIR/responses.ndjson" | tr '\n' ' ')
if [ "$ids" != "cold warm " ]; then
  echo "response order wrong: got '$ids', want 'cold warm '" >&2
  exit 1
fi

# The response stream is schema-valid NDJSON.
"$BENCH" --validate "$DIR/responses.ndjson"

# The cache actually served hits: the warm request's cache snapshot (the
# last response line) must report nonzero route-table hits.
if tail -n 1 "$DIR/responses.ndjson" | grep -q '"route_hits":0,'; then
  echo "no route-table cache hits recorded across the batch" >&2
  exit 1
fi
echo "serve smoke OK"
